//! Observation 3.2 tightness — two-choice EDF with independent copies is no
//! better than `2`-competitive.
//!
//! Per interval of `d` rounds, `2d` identical requests `(S0|S1)` arrive at
//! once. Both resources run EDF over the request *copies* in the same
//! (deadline, id) order, so each round both pick the same request: one
//! serves it, the other wastes its slot on the duplicate. Independent-copy
//! EDF serves `d` of `2d`; OPT serves all. The sibling-cancelling variant
//! (`EDF-cancel`) skips the duplicates and serves everything — the measured
//! gap between the two is reported by the harness as an ablation.

use crate::Scenario;
use reqsched_model::{Instance, Round, TraceBuilder};

/// Build the EDF worst case for deadline `d ≥ 1` over `intervals`
/// repetitions.
pub fn scenario(d: u32, intervals: u32) -> Scenario {
    assert!(d >= 1 && intervals >= 1);
    let mut b = TraceBuilder::new(d);
    for j in 0..intervals as u64 {
        let t = Round(j * d as u64);
        for _ in 0..2 * d {
            b.push(t, 0u32, 1u32);
        }
    }
    let total = (2 * d * intervals) as usize;
    Scenario {
        name: format!("edf-worst(d={d}, intervals={intervals})"),
        instance: Instance::new(2, d, b.build()),
        opt_hint: Some(total),
        predicted_ratio: 2.0,
        expected_alg: Some((d * intervals) as usize),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::check_opt;

    #[test]
    fn counts_and_opt() {
        for d in [1u32, 3, 6] {
            let s = scenario(d, 2);
            assert_eq!(s.instance.total_requests(), (4 * d) as usize);
            check_opt(&s);
        }
    }

    #[test]
    fn closed_form_is_two() {
        let s = scenario(4, 5);
        assert_eq!(s.closed_form_ratio(), Some(2.0));
    }
}
