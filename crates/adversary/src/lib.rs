//! # reqsched-adversary
//!
//! Executable adversarial constructions: one generator per lower-bound
//! theorem of *Berenbrink, Riedel & Scheideler, SPAA 1999*. Each generator
//! produces the paper's input sequence (with tie-breaking [`Hint`]s that
//! select the pessimal member of the targeted strategy class) plus the
//! closed-form optimum and the competitive ratio the construction converges
//! to; the `table1` harness and the integration tests replay them against
//! the strategies and compare the measured ratio to the paper's bound.
//!
//! | Module | Theorem | Target | Bound approached |
//! |---|---|---|---|
//! | [`thm21`] | 2.1 | `A_fix` | `2 − 1/d` |
//! | [`thm22`] | 2.2 | `A_current` | `e/(e−1)` as `ℓ, d → ∞` |
//! | [`thm23`] | 2.3 | `A_fix_balance` | `3d/(2d+2)` |
//! | [`thm24`] | 2.4 | `A_eager` (and all at `d = 2`) | `4/3` |
//! | [`thm25`] | 2.5 | `A_balance` | `(5d+2)/(4d+1)` |
//! | [`thm26`] | 2.6 | *every* online algorithm (adaptive) | `45/41` |
//! | [`thm37`] | 3.7 | `A_local_fix` | `2` |
//! | [`edf_worst`] | Obs. 3.2 | two-choice EDF | `2` |
//!
//! [`Hint`]: reqsched_model::Hint

pub mod edf_worst;
pub mod thm21;
pub mod thm22;
pub mod thm23;
pub mod thm24;
pub mod thm25;
pub mod thm26;
pub mod thm37;

use reqsched_model::Instance;

/// A fixed (oblivious) adversarial scenario.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Short identifier, e.g. `"thm2.1(d=8, phases=20)"`.
    pub name: String,
    /// The generated instance (trace includes tie-break hints).
    pub instance: Instance,
    /// Closed-form optimum, when the construction admits one. The offline
    /// solver must reproduce this exactly (checked in tests).
    pub opt_hint: Option<usize>,
    /// The competitive ratio this construction forces in the limit of
    /// infinitely many phases (the paper's bound for this `d`).
    pub predicted_ratio: f64,
    /// The number of requests the targeted pessimal strategy member is
    /// expected to serve, when the construction admits a closed form.
    pub expected_alg: Option<usize>,
}

impl Scenario {
    /// The ratio implied by the closed forms, if both are present.
    pub fn closed_form_ratio(&self) -> Option<f64> {
        match (self.opt_hint, self.expected_alg) {
            (Some(opt), Some(alg)) if alg > 0 => Some(opt as f64 / alg as f64),
            _ => None,
        }
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    /// Check a scenario's `opt_hint` against the exact offline optimum.
    ///
    /// Uses the streaming matching engine (one augmenting search per
    /// request) rather than a full horizon re-solve — the theorem tests
    /// call this once per phase count, so across a generator's phase loop
    /// the full solves used to dominate the suite's runtime.
    pub fn check_opt(s: &Scenario) {
        if let Some(opt) = s.opt_hint {
            let mut sopt = reqsched_offline::StreamingOpt::new(s.instance.n_resources);
            for req in s.instance.trace.requests() {
                sopt.ingest(req);
            }
            assert_eq!(
                sopt.opt(),
                opt,
                "{}: closed-form OPT {} != streaming maximum matching {}",
                s.name,
                opt,
                sopt.opt()
            );
        }
    }
}
