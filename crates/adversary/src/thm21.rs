//! Theorem 2.1 — `A_fix` is at least `(2 − 1/d)`-competitive.
//!
//! Four resources. An initial `block(2,d)` saturates the shared pair
//! `(S1, S2)`. Every phase then plays the same two-step trap:
//!
//! 1. In the last round of the current block's occupancy, `2(d−1)` requests
//!    arrive in two groups: `R1 = (S0|S1)` and `R2 = (S3|S2)`. The hinted
//!    `A_fix` member parks them on the *shared* resources' future slots
//!    (`S1` resp. `S2`) even though the private resources `S0`/`S3` are
//!    free — a choice the `A_fix` rules allow, since either way all new
//!    requests are scheduled.
//! 2. One round later a fresh `block(2,d)` on `(S1, S2)` arrives. Only its
//!    last-round pair of slots is still free, so `A_fix` — which may never
//!    reschedule — serves 2 of its `2d` requests; those two services keep
//!    the pair busy into the next phase, closing the loop.
//!
//! Per phase the adversary injects `4d − 2` requests, the trapped `A_fix`
//! serves `2d`, and the optimum serves everything:
//! `ratio → (4d−2)/2d = 2 − 1/d`.

use crate::Scenario;
use reqsched_model::{Hint, Instance, ResourceId, Round, TraceBuilder};

/// Build the Theorem 2.1 scenario for deadline `d ≥ 2` over `phases ≥ 1`
/// repetitions.
pub fn scenario(d: u32, phases: u32) -> Scenario {
    assert!(d >= 2, "theorem 2.1 needs d >= 2");
    assert!(phases >= 1);
    let mut b = TraceBuilder::new(d);
    let (s0, s1, s2, s3) = (ResourceId(0), ResourceId(1), ResourceId(2), ResourceId(3));

    // Initial block saturating (S1, S2) for rounds 0 .. d-1.
    b.block2(Round(0), s1, s2, 0);

    // Phase p (1-based) starts in round p*d - 1: the shared pair is busy for
    // exactly one more round.
    for p in 1..=phases as u64 {
        let t = p * d as u64 - 1;
        for _ in 0..d - 1 {
            b.push_hinted(Round(t), s0, s1, Hint::with(s1, 0)); // R1 parks on S1
        }
        for _ in 0..d - 1 {
            b.push_hinted(Round(t), s3, s2, Hint::with(s2, 0)); // R2 parks on S2
        }
        // The fresh block on the shared pair, one round later.
        b.block2(Round(t + 1), s1, s2, p as u32);
    }

    let total = 2 * d as usize + phases as usize * (4 * d as usize - 2);
    let expected_alg = 2 * d as usize + phases as usize * 2 * d as usize;
    Scenario {
        name: format!("thm2.1(d={d}, phases={phases})"),
        instance: Instance::new(4, d, b.build()),
        opt_hint: Some(total),
        predicted_ratio: 2.0 - 1.0 / d as f64,
        expected_alg: Some(expected_alg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::check_opt;

    #[test]
    fn counts_and_opt() {
        for d in [2u32, 3, 5, 8] {
            let s = scenario(d, 3);
            assert_eq!(
                s.instance.total_requests(),
                2 * d as usize + 3 * (4 * d as usize - 2)
            );
            check_opt(&s);
        }
    }

    #[test]
    fn predicted_ratio_matches_closed_form_in_the_limit() {
        let d = 6u32;
        // With many phases the initial block's contribution washes out.
        let s = scenario(d, 100);
        let cf = s.closed_form_ratio().unwrap();
        assert!((cf - s.predicted_ratio).abs() < 0.01, "{cf}");
    }

    #[test]
    fn hints_point_at_shared_resources() {
        let s = scenario(4, 1);
        let hinted: Vec<_> = s
            .instance
            .trace
            .requests()
            .iter()
            .filter(|r| r.hint.prefer.is_some())
            .collect();
        assert_eq!(hinted.len(), 2 * 3); // 2(d-1) per phase
        for r in hinted {
            let p = r.hint.prefer.unwrap();
            assert!(p == ResourceId(1) || p == ResourceId(2));
            assert!(r.alternatives.contains(p));
        }
    }
}
