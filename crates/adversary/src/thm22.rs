//! Theorem 2.2 — `A_current` is at least `e/(e−1) ≈ 1.58`-competitive as
//! `d → ∞`.
//!
//! `ℓ` resources, `d` divisible by `1..ℓ-1` (the paper takes `d = ℓ!`; we
//! use `lcm(1..ℓ-1)·scale` for compactness). Every phase of `d` rounds
//! injects `ℓ` groups of `d` requests at once. Group `R_i` (`i < ℓ`) spreads
//! its first alternatives evenly over `S_0 .. S_{ℓ-i-1}` and points every
//! second alternative at `S_{ℓ-i}`; `R_ℓ` repeats `R_{ℓ-1}`.
//!
//! The optimum serves group `R_i` entirely on the common second alternative
//! `S_{ℓ-i}` (and `R_ℓ` on `S_0`) — everything fits. The myopic
//! `A_current`, which only ever matches the current round's `ℓ` slots, can
//! be steered (priority hints: lower group index first) to burn *all*
//! resources on `R_1` first, then `R_2` (which no longer reaches the now
//! idle `S_{ℓ-1}`), and so on — group `R_i` drains at rate `ℓ−i+1` per
//! round, so only the first `k` groups with `Σ_{i≤k} d/(ℓ−i+1) ≤ d` finish
//! before the phase's deadlines strike. As `ℓ → ∞` the served fraction
//! tends to `1 − 1/e`.

use crate::Scenario;
use reqsched_model::{Hint, Instance, ResourceId, Round, TraceBuilder};

/// Least common multiple of `1..=k`.
fn lcm_upto(k: u32) -> u32 {
    fn gcd(a: u64, b: u64) -> u64 {
        if b == 0 {
            a
        } else {
            gcd(b, a % b)
        }
    }
    let mut l: u64 = 1;
    for i in 1..=k as u64 {
        l = l / gcd(l, i) * i;
    }
    // lint: lcm(1..=k) for the k the constructions use fits u32; a caller pushing past it must hear about it loudly
    u32::try_from(l).expect("lcm overflow")
}

/// The deadline this construction uses for `ℓ` resources:
/// `lcm(1..=ℓ-1) * scale`.
pub fn deadline_for(l: u32, scale: u32) -> u32 {
    lcm_upto(l - 1) * scale
}

/// Expected number of requests the pessimal `A_current` member serves per
/// phase, by exact simulation of the idealized draining process.
///
/// Group `i` (1-based, `i < ℓ`) is adjacent to `ℓ−i+1` resources; groups are
/// drained in index order at full adjacency rate until the phase's `d`
/// rounds run out.
pub fn expected_alg_per_phase(l: u32, d: u32) -> usize {
    let mut rounds_left = d as f64;
    let mut served = 0.0;
    for i in 1..=l {
        let rate = if i < l { (l - i + 1) as f64 } else { 1.0 };
        // Group l shares S_1's… its drain overlaps group l-1; the paper
        // treats R_l like R_{l-1}: they jointly drain at the same rate
        // window. We model groups 1..l-1 sequentially and give R_l whatever
        // rounds remain at rate 1 per resource pair — conservative; tests
        // compare against measurement with tolerance.
        let need = d as f64 / rate;
        if rounds_left <= 0.0 {
            break;
        }
        let used = need.min(rounds_left);
        served += used * rate;
        rounds_left -= used;
        let _ = i;
    }
    served.round() as usize
}

/// Build the Theorem 2.2 scenario: `ℓ` resources, deadline
/// `lcm(1..ℓ-1)·scale`, `phases` repetitions.
pub fn scenario(l: u32, scale: u32, phases: u32) -> Scenario {
    assert!(l >= 3, "theorem 2.2 needs at least 3 resources");
    assert!(scale >= 1 && phases >= 1);
    let d = deadline_for(l, scale);
    let mut b = TraceBuilder::new(d);

    for p in 0..phases as u64 {
        let t = Round(p * d as u64);
        for i in 1..=l {
            // Group R_i: first alternatives evenly over S_0..S_{l-i-1},
            // second alternative S_{l-i}; R_l duplicates R_{l-1}.
            let (spread, second) = if i < l {
                (l - i, ResourceId(l - i))
            } else {
                (1, ResourceId(1))
            };
            let per = d / spread;
            debug_assert_eq!(per * spread, d, "d must be divisible by {spread}");
            for first in 0..spread {
                for _ in 0..per {
                    b.push_hinted(t, first, second.0, Hint::priority(i));
                }
            }
        }
    }

    let total = (phases * l * d) as usize;
    Scenario {
        name: format!("thm2.2(l={l}, d={d}, phases={phases})"),
        instance: Instance::new(l, d, b.build()),
        opt_hint: Some(total),
        predicted_ratio: std::f64::consts::E / (std::f64::consts::E - 1.0),
        expected_alg: Some(phases as usize * expected_alg_per_phase(l, d)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::check_opt;

    #[test]
    fn lcm_values() {
        assert_eq!(lcm_upto(1), 1);
        assert_eq!(lcm_upto(4), 12);
        assert_eq!(lcm_upto(5), 60);
        assert_eq!(deadline_for(5, 1), 12);
    }

    #[test]
    fn counts_and_opt() {
        for l in [3u32, 4, 5] {
            let s = scenario(l, 1, 2);
            let d = deadline_for(l, 1);
            assert_eq!(s.instance.total_requests(), (2 * l * d) as usize);
            check_opt(&s);
        }
    }

    #[test]
    fn groups_have_correct_structure() {
        let l = 4;
        let s = scenario(l, 1, 1);
        let d = deadline_for(l, 1);
        // Group 1 (priority 1): spread over S0..S2, second alt S3.
        let g1: Vec<_> = s
            .instance
            .trace
            .requests()
            .iter()
            .filter(|r| r.hint.priority == 1)
            .collect();
        assert_eq!(g1.len(), d as usize);
        for r in &g1 {
            assert_eq!(r.alternatives.as_slice()[1], ResourceId(3));
            assert!(r.alternatives.as_slice()[0].0 < 3);
        }
        // Last group duplicates R_{l-1}: alternatives {S0, S1}.
        let gl: Vec<_> = s
            .instance
            .trace
            .requests()
            .iter()
            .filter(|r| r.hint.priority == l)
            .collect();
        assert_eq!(gl.len(), d as usize);
        for r in &gl {
            assert_eq!(r.alternatives.as_slice(), &[ResourceId(0), ResourceId(1)]);
        }
    }

    #[test]
    fn drain_model_is_sane() {
        // l=3, d=2: group1 drains at rate 3 (2/3 rounds), group2 at rate 2
        // (1 round), group3 at rate 1 with the remaining 1/3 rounds.
        let served = expected_alg_per_phase(3, 6);
        assert!((12..=18).contains(&served), "served = {served}");
    }
}
