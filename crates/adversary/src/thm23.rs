//! Theorem 2.3 — `A_fix_balance` is at least `3d/(2d+2)`-competitive
//! (`d` even, ≥ 6 resources).
//!
//! Six resources in three pairs. A `block(2,d)` saturates pair 0. Each phase
//! starts when the currently blocked pair has `d/2` rounds of occupancy
//! left; the adversary injects `R1`, `R2` (`d/2` requests each) whose
//! alternatives straddle the blocked pair and the next pair. The *balancing
//! rule itself* — serve as early as possible — forces them onto the free
//! next pair (no hints needed!); one round later a `block(2,d)` on that next
//! pair arrives, and the no-rescheduling rule strands all but `d+2` of its
//! `2d` requests. Pairs rotate round-robin.
//!
//! Per steady-state phase: injected `3d`, `A_fix_balance` serves `2d+2`,
//! OPT serves all ⇒ ratio `→ 3d/(2d+2)`.

use crate::Scenario;
use reqsched_model::{Hint, Instance, ResourceId, Round, TraceBuilder};

/// Resource pair `k` (`k ∈ 0..3`): `(S_{2k}, S_{2k+1})`.
fn pair(k: u32) -> (ResourceId, ResourceId) {
    (ResourceId(2 * k), ResourceId(2 * k + 1))
}

/// Build the Theorem 2.3 scenario for even `d ≥ 2` over `phases`
/// repetitions.
pub fn scenario(d: u32, phases: u32) -> Scenario {
    assert!(
        d >= 2 && d.is_multiple_of(2),
        "theorem 2.3 needs even d >= 2"
    );
    assert!(phases >= 1);
    let mut b = TraceBuilder::new(d);
    let half = (d / 2) as u64;

    // Initial block on pair 0 (rounds 0 .. d-1).
    let (a0, a1) = pair(0);
    b.block2(Round(0), a0, a1, 0);

    // Phase p (0-based) starts at round d/2 + p*(d/2 + 1); blocked pair is
    // p mod 3, parking pair is (p+1) mod 3.
    for p in 0..phases {
        let t = half + p as u64 * (half + 1);
        let (b0, b1) = pair(p % 3); // blocked: d/2 rounds of occupancy left
        let (q0, q1) = pair((p + 1) % 3); // free: F forces the requests here
        for _ in 0..d / 2 {
            b.push_hinted(Round(t), b0, q0, Hint::priority(0)); // R1
        }
        for _ in 0..d / 2 {
            b.push_hinted(Round(t), b1, q1, Hint::priority(0)); // R2
        }
        // One round later: block on the parking pair.
        b.block2(Round(t + 1), q0, q1, p + 1);
    }

    let total = 2 * d as usize + phases as usize * 3 * d as usize;
    let expected_alg = 2 * d as usize + phases as usize * (2 * d as usize + 2);
    Scenario {
        name: format!("thm2.3(d={d}, phases={phases})"),
        instance: Instance::new(6, d, b.build()),
        opt_hint: Some(total),
        predicted_ratio: 3.0 * d as f64 / (2.0 * d as f64 + 2.0),
        expected_alg: Some(expected_alg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::check_opt;

    #[test]
    fn counts_and_opt() {
        for d in [2u32, 4, 6, 10] {
            let s = scenario(d, 4);
            assert_eq!(
                s.instance.total_requests(),
                2 * d as usize + 4 * 3 * d as usize
            );
            check_opt(&s);
        }
    }

    #[test]
    fn rotation_covers_all_three_pairs() {
        let s = scenario(4, 3);
        // Blocks with tags 1..=3 target pairs 1, 2, 0.
        for (tag, expect) in [(1u32, 1u32), (2, 2), (3, 0)] {
            let reqs: Vec<_> = s
                .instance
                .trace
                .requests()
                .iter()
                .filter(|r| r.tag == tag && r.hint.priority == u32::MAX)
                .collect();
            assert_eq!(reqs.len(), 8, "block(2,4) has 2d requests");
            let (p0, p1) = pair(expect);
            for r in reqs {
                assert!(r.alternatives.contains(p0) && r.alternatives.contains(p1));
            }
        }
    }

    #[test]
    #[should_panic]
    fn odd_d_rejected() {
        let _ = scenario(3, 1);
    }

    #[test]
    fn closed_form_converges_to_bound() {
        let d = 8;
        let s = scenario(d, 200);
        let cf = s.closed_form_ratio().unwrap();
        assert!((cf - s.predicted_ratio).abs() < 0.01, "{cf}");
    }
}
