//! Theorem 2.4 — `A_eager` is at least `4/3`-competitive for every `d ≥ 2`;
//! at `d = 2` the same input also forces `4/3` on `A_current`,
//! `A_fix_balance` and `A_balance`.
//!
//! Four resources in a *middle* pair `M` and an *outer* pair `O`, swapping
//! roles every phase. At a phase start the outer pair is still blocked for
//! `d/2` rounds (by the previous phase's block). The adversary injects
//! `R1 = d/2 × (O₀|M₀)`, `R2 = d/2 × (M₁|O₁)` and `R3 = d × (M₀|M₁)`.
//! `A_eager`'s serve-now rule together with the hints burns the middle
//! pair's first `d/2` rounds on `R1`, `R2` (instead of on the inflexible
//! `R3`, which OPT serves there); `R3` parks on the middle pair's remaining
//! `d/2` rounds. The `block(2,d)` on `M` arriving `d/2` rounds later then
//! finds only `d` free slots: the strategy serves `3d` of the phase's `4d`
//! requests while OPT serves all ⇒ ratio `→ 4/3`.

use crate::Scenario;
use reqsched_model::{Hint, Instance, ResourceId, Round, TraceBuilder};

/// Build the Theorem 2.4 scenario for even `d ≥ 2` over `phases`
/// repetitions.
pub fn scenario(d: u32, phases: u32) -> Scenario {
    assert!(
        d >= 2 && d.is_multiple_of(2),
        "theorem 2.4 needs even d >= 2"
    );
    assert!(phases >= 1);
    let mut b = TraceBuilder::new(d);
    let half = (d / 2) as u64;
    let inner = (ResourceId(1), ResourceId(2));
    let outer = (ResourceId(0), ResourceId(3));

    // Initial block on the outer pair (= phase 1's blocked pair), rounds
    // 0 .. d-1; phase 1 starts at d/2 so the pair has d/2 rounds left.
    b.block2(Round(0), outer.0, outer.1, 0);

    for p in 0..phases {
        let t = half + p as u64 * d as u64;
        // Odd phases (p even here): M = inner, O = outer; then swap.
        let (m, o) = if p % 2 == 0 {
            (inner, outer)
        } else {
            (outer, inner)
        };
        for _ in 0..d / 2 {
            // R1: (O0 | M0), steered onto M0 and served before R3.
            b.push_hinted(Round(t), o.0, m.0, Hint::with(m.0, 0));
        }
        for _ in 0..d / 2 {
            // R2: (M1 | O1), steered onto M1.
            b.push_hinted(Round(t), m.1, o.1, Hint::with(m.1, 0));
        }
        for _ in 0..d {
            // R3: the inflexible middle-pair requests, considered last.
            b.push_hinted(Round(t), m.0, m.1, Hint::priority(1));
        }
        // After d/2 rounds: the block on the middle pair.
        b.block2(Round(t + half), m.0, m.1, p + 1);
    }

    let total = 2 * d as usize + phases as usize * 4 * d as usize;
    let expected_alg = 2 * d as usize + phases as usize * 3 * d as usize;
    Scenario {
        name: format!("thm2.4(d={d}, phases={phases})"),
        instance: Instance::new(4, d, b.build()),
        opt_hint: Some(total),
        predicted_ratio: 4.0 / 3.0,
        expected_alg: Some(expected_alg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::check_opt;

    #[test]
    fn counts_and_opt() {
        for d in [2u32, 4, 8] {
            let s = scenario(d, 3);
            assert_eq!(
                s.instance.total_requests(),
                2 * d as usize + 3 * 4 * d as usize
            );
            check_opt(&s);
        }
    }

    #[test]
    fn phases_alternate_pairs() {
        let s = scenario(2, 2);
        // Block tag 1 (phase 0) on inner pair (S1,S2); tag 2 on outer.
        let block1: Vec<_> = s
            .instance
            .trace
            .requests()
            .iter()
            .filter(|r| r.tag == 1)
            .collect();
        for r in &block1 {
            assert!(r.alternatives.contains(ResourceId(1)));
            assert!(r.alternatives.contains(ResourceId(2)));
        }
        let block2: Vec<_> = s
            .instance
            .trace
            .requests()
            .iter()
            .filter(|r| r.tag == 2)
            .collect();
        for r in &block2 {
            assert!(r.alternatives.contains(ResourceId(0)));
            assert!(r.alternatives.contains(ResourceId(3)));
        }
    }

    #[test]
    fn closed_form_converges_to_four_thirds() {
        let s = scenario(6, 300);
        let cf = s.closed_form_ratio().unwrap();
        assert!((cf - 4.0 / 3.0).abs() < 0.005, "{cf}");
    }
}
