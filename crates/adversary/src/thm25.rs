//! Theorem 2.5 — `A_balance` is at least `(5d+2)/(4d+1)`-competitive for
//! `d = 3x − 1` (in the limit of many resource groups).
//!
//! The construction exploits that `A_balance` has *no rule preferring
//! requests whose second alternative is heavily loaded*: requests that could
//! only ever be saved by serving them late on a temporarily blocked resource
//! are instead served early on the open one, which the next `block(1,d)`
//! then needs.
//!
//! Layout: two permanently saturated resources `S'`, `S''` plus `k`
//! independent groups of three resources that rotate through the roles
//! `A` (blocked), `B` (active), `C` (idle) every interval of `2x` rounds:
//!
//! * Phase 1 (round `x(2j+1)`): `R1 = x × (A|B)` and `R2 = x × (B|S')`.
//!   `F` forces both onto `B` consecutively (earliest-slot rule); the hinted
//!   member serves `R1` before `R2` — OPT instead serves `R2` early on `B`
//!   and `R1` *late* on `A` once it frees.
//! * Phase 2 (round `2x(j+1)`): `block(1,d)` at `B` — `d = 3x−1` requests
//!   `(B|S')` of which the strategy fits only `2x−1`; OPT fits all.
//!
//! Per interval and group: injected `5x−1`, served `4x−1`, so the ratio
//! tends to `(5x−1)/(4x−1) = (5d+2)/(4d+1)` as the shared maintenance
//! traffic on `S'`, `S''` is amortized over many groups (`k → ∞`, the
//! paper's `n → ∞`).
//!
//! **Substitution note (documented in DESIGN.md):** the paper keeps `S'`,
//! `S''` blocked with ad-hoc batches of `(S'|S'')` requests; we keep them
//! saturated with two deadline-1 `(S'|S'')` requests per round (priority 0).
//! Both the online strategies and OPT serve every maintenance request, so
//! the substitution shifts numerator and denominator by the same count and
//! preserves the forced ratio in the many-groups limit.

use crate::Scenario;
use reqsched_model::{Hint, Instance, ResourceId, Round, TraceBuilder};

/// Build the Theorem 2.5 scenario.
///
/// * `x ≥ 1` — the paper's phase parameter; the deadline is `d = 3x − 1`.
/// * `groups` — number of independent 3-resource groups (`k`; the bound is
///   approached as `k → ∞`).
/// * `intervals` — repetitions of the two-phase interval.
pub fn scenario(x: u32, groups: u32, intervals: u32) -> Scenario {
    assert!(x >= 1 && groups >= 1 && intervals >= 1);
    let d = 3 * x - 1;
    let mut b = TraceBuilder::new(d);
    let s_prime = ResourceId(0);
    let s_second = ResourceId(1);

    let res = |g: u32, role: u32| ResourceId(2 + 3 * g + role);
    let xe = x as u64;

    // Last emission round: phase 2 of the last interval.
    let t_last_block = 2 * xe * intervals as u64;
    let t_end = t_last_block + d as u64 - 1;

    // Maintenance: keep S' and S'' saturated with deadline-1 pairs.
    let mut maintenance = 0usize;
    for t in 0..=t_end {
        for s in [s_prime, s_second] {
            b.push_full(
                Round(t),
                reqsched_model::Alternatives::two(s, if s == s_prime { s_second } else { s_prime }),
                1,
                u32::MAX,
                Hint::priority(0),
            );
            maintenance += 1;
        }
    }

    // Initial block(1,d) at every group's role-0 resource.
    for g in 0..groups {
        b.block1(Round(0), res(g, 0), s_prime, 1000 + g);
    }

    for j in 0..intervals {
        // Roles rotate: interval j has A = role j%3, B = (j+1)%3, C unused.
        let ra = j % 3;
        let rb = (j + 1) % 3;
        let t1 = xe * (2 * j as u64 + 1);
        let t2 = 2 * xe * (j as u64 + 1);
        for g in 0..groups {
            let a = res(g, ra);
            let bb = res(g, rb);
            for _ in 0..x {
                // R1 = (A|B): F forces it onto B now; priority 2 puts it
                // ahead of R2 there.
                b.push_hinted(Round(t1), a, bb, Hint::with(bb, 2));
            }
            for _ in 0..x {
                // R2 = (B|S').
                b.push_hinted(Round(t1), bb, s_prime, Hint::with(bb, 3));
            }
            // Phase 2: block(1,d) at B.
            b.block1(Round(t2), bb, s_prime, 2000 + j);
        }
    }

    let per_interval_injected = (5 * x - 1) as usize;
    let per_interval_served = (4 * x - 1) as usize;
    let total = maintenance
        + (groups * d) as usize
        + groups as usize * intervals as usize * per_interval_injected;
    let expected_alg = maintenance
        + (groups * d) as usize
        + groups as usize * intervals as usize * per_interval_served;
    let df = d as f64;
    Scenario {
        name: format!("thm2.5(x={x}, d={d}, groups={groups}, intervals={intervals})"),
        instance: Instance::new(2 + 3 * groups, d, b.build()),
        opt_hint: Some(total),
        predicted_ratio: (5.0 * df + 2.0) / (4.0 * df + 1.0),
        expected_alg: Some(expected_alg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::check_opt;

    #[test]
    fn counts_and_opt() {
        for (x, g, m) in [(1u32, 1u32, 2u32), (2, 2, 2), (3, 1, 3)] {
            let s = scenario(x, g, m);
            check_opt(&s);
            assert_eq!(s.instance.d, 3 * x - 1);
            assert_eq!(s.instance.n_resources, 2 + 3 * g);
        }
    }

    #[test]
    fn predicted_matches_paper_formula() {
        let s = scenario(4, 1, 1);
        let d = 11.0;
        assert!((s.predicted_ratio - (5.0 * d + 2.0) / (4.0 * d + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn maintenance_is_all_deadline_one() {
        let s = scenario(2, 1, 1);
        for r in s
            .instance
            .trace
            .requests()
            .iter()
            .filter(|r| r.tag == u32::MAX)
        {
            assert_eq!(r.deadline, 1);
            assert_eq!(r.hint.priority, 0);
        }
    }

    #[test]
    fn roles_rotate_between_intervals() {
        let s = scenario(2, 1, 3);
        // Phase-2 blocks (tags 2000+j) target role (j+1)%3 = resources
        // 2 + (j+1)%3.
        for j in 0..3u32 {
            let target = ResourceId(2 + (j + 1) % 3);
            let reqs: Vec<_> = s
                .instance
                .trace
                .requests()
                .iter()
                .filter(|r| r.tag == 2000 + j)
                .collect();
            assert_eq!(reqs.len(), (3 * 2 - 1) as usize);
            for r in reqs {
                assert_eq!(r.alternatives.first(), target);
            }
        }
    }
}
