//! Theorem 2.6 — **every** deterministic online algorithm is at least
//! `45/41 ≈ 1.098`-competitive (10 resources, `3 | d`).
//!
//! This is the paper's only *adaptive* adversary, so it is implemented as a
//! [`RequestSource`] rather than a fixed trace. Ten resources form five
//! pairs; three pairs are "blocked", two are "open", and the roles rotate:
//!
//! * Round 0: a `block(6,d)` saturates the three blocked pairs.
//! * Phase 1 (starts `d/3` rounds before the blocks expire): `4d` *coloured*
//!   requests in three groups; first alternatives spread evenly over the 4
//!   open resources, second alternatives over one blocked pair per colour.
//!   Only `4d/3` of them fit before the blocks expire, so at least
//!   `⌈8d/9⌉` requests of some colour are still unserved …
//! * Phase 2: … and the adversary — having **observed** the per-colour
//!   service counts — saturates exactly that colour's pair (together with
//!   the open pairs) with a `block(6,d)`, dooming those requests. Roles are
//!   renamed and the game repeats.
//!
//! OPT serves everything (`10d` per interval); any online algorithm misses
//! at least `⌈8d/9⌉`, forcing `ratio ≥ 10d/(10d − 8d/9) = 45/41`.

use reqsched_model::{Alternatives, Hint, Request, RequestId, RequestSource, Round, StateView};

/// Number of resources the construction uses.
pub const N_RESOURCES: u32 = 10;

/// The bound this adversary forces on every online algorithm.
pub const PREDICTED_RATIO: f64 = 45.0 / 41.0;

/// The adaptive adversary of Theorem 2.6.
pub struct Thm26Adversary {
    d: u32,
    intervals: u32,
    /// Pair indices 0..5; first three are currently blocked, last two open.
    blocked: [u32; 3],
    open: [u32; 2],
    next_id: u32,
    emitted_blocks: u32,
    total_emitted: usize,
}

impl Thm26Adversary {
    /// Create the adversary for deadline `d` (divisible by 3) and the given
    /// number of intervals.
    pub fn new(d: u32, intervals: u32) -> Thm26Adversary {
        assert!(d >= 3 && d.is_multiple_of(3), "theorem 2.6 needs 3 | d");
        assert!(intervals >= 1);
        Thm26Adversary {
            d,
            intervals,
            blocked: [0, 1, 2],
            open: [3, 4],
            next_id: 0,
            emitted_blocks: 0,
            total_emitted: 0,
        }
    }

    /// Total number of requests this source will emit.
    pub fn total_requests(&self) -> usize {
        // Initial block + per interval: 4d coloured + 6d block.
        (6 * self.d + self.intervals * 10 * self.d) as usize
    }

    /// Colour tag for interval `j`, colour `c`.
    fn colour_tag(interval: u32, c: u32) -> u32 {
        interval * 3 + c
    }

    fn fresh(&mut self, round: Round, alts: Alternatives, tag: u32) -> Request {
        let id = RequestId(self.next_id);
        self.next_id += 1;
        self.total_emitted += 1;
        Request {
            id,
            arrival: round,
            alternatives: alts,
            deadline: self.d,
            tag,
            hint: Hint::default(),
        }
    }

    /// `block(6, d)` over the six resources of the given three pairs.
    fn block6(&mut self, round: Round, pairs: [u32; 3], tag: u32) -> Vec<Request> {
        let mut rs = Vec::with_capacity(6);
        for p in pairs {
            rs.push(2 * p);
            rs.push(2 * p + 1);
        }
        let mut out = Vec::with_capacity(6 * self.d as usize);
        for i in 0..6 {
            let a = reqsched_model::ResourceId(rs[i]);
            let b = reqsched_model::ResourceId(rs[(i + 1) % 6]);
            for _ in 0..self.d {
                out.push(self.fresh(round, Alternatives::two(a, b), tag));
            }
        }
        out
    }
}

impl RequestSource for Thm26Adversary {
    fn arrivals(&mut self, round: Round, view: &dyn StateView) -> Vec<Request> {
        let d = self.d as u64;
        let t = round.get();
        if t == 0 {
            // Initial block over the blocked pairs.
            let pairs = self.blocked;
            return self.block6(round, pairs, u32::MAX);
        }
        // Interval j: phase 1 at 2d/3 + j*d, phase 2 at d + j*d.
        let interval_of_p1 =
            (t >= 2 * d / 3 && (t - 2 * d / 3).is_multiple_of(d)).then(|| (t - 2 * d / 3) / d);
        let interval_of_p2 = (t >= d && (t - d).is_multiple_of(d)).then(|| (t - d) / d);

        if let Some(j) = interval_of_p1 {
            if (j as u32) < self.intervals {
                // 4d coloured requests: 4d/3 per colour.
                let open_res: Vec<u32> =
                    self.open.iter().flat_map(|&p| [2 * p, 2 * p + 1]).collect();
                let mut out = Vec::with_capacity(4 * self.d as usize);
                let per_colour = 4 * self.d / 3;
                for c in 0..3u32 {
                    let pair = self.blocked[c as usize];
                    let tag = Self::colour_tag(j as u32, c);
                    for q in 0..per_colour {
                        let first = reqsched_model::ResourceId(open_res[(q % 4) as usize]);
                        let second = reqsched_model::ResourceId(2 * pair + q % 2);
                        out.push(self.fresh(round, Alternatives::two(first, second), tag));
                    }
                }
                return out;
            }
        }
        if let Some(j) = interval_of_p2 {
            if (j as u32) < self.intervals {
                // Adaptivity: find the colour with the most unserved requests.
                let mut worst_c = 0u32;
                let mut worst_unserved = 0usize;
                for c in 0..3u32 {
                    let tag = Self::colour_tag(j as u32, c);
                    let unserved = view
                        .injected_with_tag(tag)
                        .saturating_sub(view.served_with_tag(tag));
                    if unserved > worst_unserved {
                        worst_unserved = unserved;
                        worst_c = c;
                    }
                }
                let doomed_pair = self.blocked[worst_c as usize];
                let new_blocked = [self.open[0], self.open[1], doomed_pair];
                let survivors: Vec<u32> = self
                    .blocked
                    .iter()
                    .copied()
                    .filter(|&p| p != doomed_pair)
                    .collect();
                self.emitted_blocks += 1;
                let out = self.block6(round, new_blocked, u32::MAX - 1 - j as u32);
                self.blocked = new_blocked;
                self.open = [survivors[0], survivors[1]];
                return out;
            }
        }
        Vec::new()
    }

    fn exhausted(&self, round: Round) -> bool {
        // Last emission: phase 2 of the final interval at round
        // d + (intervals-1)*d = intervals*d.
        round.get() > (self.intervals as u64) * (self.d as u64)
    }

    fn describe(&self) -> String {
        format!(
            "thm2.6 adaptive adversary (d={}, intervals={})",
            self.d, self.intervals
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct NullView;
    impl StateView for NullView {
        fn is_served(&self, _id: RequestId) -> bool {
            false
        }
        fn served_with_tag(&self, _tag: u32) -> usize {
            0
        }
        fn injected_with_tag(&self, tag: u32) -> usize {
            // Pretend every colour has its full complement injected.
            if tag < 1000 {
                4
            } else {
                0
            }
        }
        fn round(&self) -> Round {
            Round::ZERO
        }
    }

    #[test]
    fn emission_schedule() {
        let d = 6u32;
        let mut adv = Thm26Adversary::new(d, 2);
        let mut total = 0;
        let mut round = Round::ZERO;
        while !adv.exhausted(round) {
            let batch = adv.arrivals(round, &NullView);
            match round.get() {
                0 => assert_eq!(batch.len(), 6 * d as usize),
                4 | 10 => assert_eq!(batch.len(), 4 * d as usize), // 2d/3 + j*d
                6 | 12 => assert_eq!(batch.len(), 6 * d as usize), // d + j*d
                _ => assert!(batch.is_empty(), "unexpected batch at {round:?}"),
            }
            total += batch.len();
            round = round.next();
        }
        assert_eq!(total, adv.total_requests());
    }

    #[test]
    fn ids_are_consecutive() {
        let mut adv = Thm26Adversary::new(3, 1);
        let mut expected = 0u32;
        for t in 0..=4u64 {
            for r in adv.arrivals(Round(t), &NullView) {
                assert_eq!(r.id, RequestId(expected));
                expected += 1;
            }
        }
    }

    #[test]
    fn roles_rotate_after_each_block() {
        let mut adv = Thm26Adversary::new(3, 3);
        let before = adv.blocked;
        // Drive to the first phase-2 round (d = 3 -> round 3).
        for t in 0..=3u64 {
            adv.arrivals(Round(t), &NullView);
        }
        assert_ne!(adv.blocked, before);
        // The doomed pair (colour 0 under NullView ties) moved into blocked.
        assert!(adv.blocked.contains(&before[0]));
        // Old open pairs are now blocked.
        assert!(adv.blocked.contains(&3) && adv.blocked.contains(&4));
    }

    #[test]
    #[should_panic]
    fn rejects_d_not_divisible_by_three() {
        let _ = Thm26Adversary::new(4, 1);
    }
}
