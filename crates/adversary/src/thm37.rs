//! Theorem 3.7 — `A_local_fix` is exactly `2`-competitive (lower-bound
//! input).
//!
//! Four resources, intervals of `d` rounds, requests only in the first round
//! of each interval:
//!
//! * `R1 = d × (S0, S1)` — first alternative `S0`;
//! * `R2 = d × (S2, S3)` — first alternative `S2`;
//! * `R3 = 2d × (S0, S2)` — first alternative `S0`.
//!
//! In communication round 1, `S0` receives `3d` messages but — with the
//! model's bandwidth cap of `d` per communication round and LDF admission
//! breaking ties towards earlier injected requests — accepts exactly `R1`,
//! filling its `d` slots. `S2` accepts `R2`. In communication round 2 all of
//! `R3` knocks on `S2`, which is already full. `A_local_fix` serves `2d` of
//! the `4d` requests; OPT serves all (`R1 → S1`, `R2 → S3`, `R3` split over
//! `S0` and `S2`).

use crate::Scenario;
use reqsched_model::{Instance, Round, TraceBuilder};

/// Build the Theorem 3.7 scenario for deadline `d ≥ 1` over `intervals`
/// repetitions.
pub fn scenario(d: u32, intervals: u32) -> Scenario {
    assert!(d >= 1 && intervals >= 1);
    let mut b = TraceBuilder::new(d);
    for j in 0..intervals as u64 {
        let t = Round(j * d as u64);
        for _ in 0..d {
            b.push(t, 0u32, 1u32); // R1, first alternative S0
        }
        for _ in 0..d {
            b.push(t, 2u32, 3u32); // R2, first alternative S2
        }
        for _ in 0..2 * d {
            b.push(t, 0u32, 2u32); // R3, first alternative S0
        }
    }
    let total = (4 * d * intervals) as usize;
    Scenario {
        name: format!("thm3.7(d={d}, intervals={intervals})"),
        instance: Instance::new(4, d, b.build()),
        opt_hint: Some(total),
        predicted_ratio: 2.0,
        expected_alg: Some((2 * d * intervals) as usize),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::check_opt;

    #[test]
    fn counts_and_opt() {
        for d in [1u32, 2, 4, 7] {
            let s = scenario(d, 3);
            assert_eq!(s.instance.total_requests(), (12 * d) as usize);
            check_opt(&s);
        }
    }

    #[test]
    fn first_alternatives_point_at_contested_resources() {
        let s = scenario(2, 1);
        let reqs = s.instance.trace.requests();
        // R1 block: ids 0..d first-alt S0; R3: last 2d first-alt S0.
        assert_eq!(reqs[0].alternatives.first().0, 0);
        assert_eq!(reqs[2].alternatives.first().0, 2);
        assert_eq!(reqs[4].alternatives.first().0, 0);
        assert_eq!(reqs[4].alternatives.as_slice()[1].0, 2);
    }

    #[test]
    fn closed_form_is_two() {
        let s = scenario(5, 10);
        assert_eq!(s.closed_form_ratio(), Some(2.0));
    }
}
