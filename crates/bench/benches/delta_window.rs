//! Delta-matching round-engine macro-benchmark: measures the per-round
//! strategy cost of the matching-based strategies solved the old way — a
//! fresh window graph built and re-solved from zero every round — against
//! the delta engine, which carries one maintained matching across rounds
//! (`crates/core/src/delta.rs`). Records the results in `BENCH_PR3.json`
//! at the workspace root.
//!
//! Parity is asserted, not sampled: for every workload and strategy the two
//! paths must serve exactly the same requests on exactly the same resources
//! in **every** round before any timing is reported.
//!
//! Runs under `cargo bench -p reqsched-bench --bench delta_window`. Set
//! `STREAMING_OPT_QUICK=1` (or `DELTA_WINDOW_QUICK=1`) for the smoke-test
//! configuration. `DELTA_PROFILE_BASELINE_MS`, when set, is echoed into the
//! report's `release_profile` section as the pre-LTO baseline total (see
//! `scripts/bench_smoke.sh`).

use criterion::black_box;
use reqsched_adversary::{thm21, thm25};
use reqsched_core::{
    ABalance, ACurrent, AEager, AFixBalance, ALazyMax, OnlineScheduler, Service, SolveMode,
    StrategyKind, TieBreak,
};
use reqsched_model::{Instance, Round};
use std::time::Instant;

/// The strategies with a delta path (`StrategyKind::GLOBAL` minus `A_fix`,
/// which decides per arrival and never re-solves, plus the lazy-maximum
/// ablation).
const KINDS: [StrategyKind; 5] = [
    StrategyKind::ACurrent,
    StrategyKind::AFixBalance,
    StrategyKind::AEager,
    StrategyKind::ABalance,
    StrategyKind::LazyMax,
];

/// Drive one scheduler over the instance (horizon plus drain), returning
/// the per-round services and the summed `on_round` time in milliseconds.
fn drive(s: &mut dyn OnlineScheduler, inst: &Instance) -> (Vec<Vec<Service>>, f64) {
    let rounds = inst.horizon().get() + inst.d as u64;
    let mut services = Vec::with_capacity(rounds as usize);
    let mut total = 0.0;
    for t in 0..rounds {
        let arrivals = inst.trace.arrivals_at(Round(t));
        let t0 = Instant::now();
        let served = black_box(s.on_round(Round(t), arrivals));
        total += t0.elapsed().as_secs_f64() * 1e3;
        services.push(served);
    }
    (services, total)
}

/// Run `kind` in the given mode; also harvest the delta engine's
/// edge-scan counter (0 on the fresh path, which has no such counter —
/// its work is the full rebuild + re-solve every round).
fn run_kind(kind: StrategyKind, inst: &Instance, mode: SolveMode) -> (Vec<Vec<Service>>, f64, u64) {
    let (n, d, tie) = (inst.n_resources, inst.d, TieBreak::FirstFit);
    macro_rules! go {
        ($ty:ident) => {{
            let mut s = $ty::with_mode(n, d, tie, mode);
            let (sv, ms) = drive(&mut s, inst);
            (sv, ms, s.delta_work().unwrap_or(0))
        }};
    }
    match kind {
        StrategyKind::ACurrent => go!(ACurrent),
        StrategyKind::AFixBalance => go!(AFixBalance),
        StrategyKind::AEager => go!(AEager),
        StrategyKind::ABalance => go!(ABalance),
        StrategyKind::LazyMax => go!(ALazyMax),
        _ => unreachable!("no delta path for {:?}", kind),
    }
}

struct StrategyRow {
    name: &'static str,
    fresh_ms: f64,
    delta_ms: f64,
    speedup: f64,
}

struct WorkloadResult {
    name: String,
    requests: usize,
    rounds: u64,
    fresh_ms: f64,
    delta_ms: f64,
    round_speedup: f64,
    delta_edges: u64,
    rows: Vec<StrategyRow>,
}

fn measure(name: &str, inst: &Instance) -> WorkloadResult {
    let mut rows = Vec::new();
    let (mut fresh_total, mut delta_total, mut edges_total) = (0.0, 0.0, 0u64);
    for kind in KINDS {
        let (sv_fresh, fresh_ms, _) = run_kind(kind, inst, SolveMode::Fresh);
        let (sv_delta, delta_ms, edges) = run_kind(kind, inst, SolveMode::Delta);
        assert_eq!(
            sv_fresh,
            sv_delta,
            "{name}: {} delta schedule diverges from fresh",
            kind.name()
        );
        fresh_total += fresh_ms;
        delta_total += delta_ms;
        edges_total += edges;
        rows.push(StrategyRow {
            name: kind.name(),
            fresh_ms,
            delta_ms,
            speedup: fresh_ms / delta_ms.max(1e-6),
        });
    }
    WorkloadResult {
        name: name.to_string(),
        requests: inst.trace.len(),
        rounds: inst.horizon().get() + inst.d as u64,
        fresh_ms: fresh_total,
        delta_ms: delta_total,
        round_speedup: fresh_total / delta_total.max(1e-6),
        delta_edges: edges_total,
        rows,
    }
}

fn main() {
    let quick = ["STREAMING_OPT_QUICK", "DELTA_WINDOW_QUICK"]
        .iter()
        .any(|v| std::env::var(v).is_ok_and(|x| x == "1"));
    let (phases, rounds) = if quick { (6u32, 150u64) } else { (24, 600) };

    let workloads: Vec<(String, Instance)> = vec![
        (
            format!("thm2.1(d=40, phases={phases})"),
            thm21::scenario(40, phases).instance,
        ),
        (
            format!("thm2.5(x=6, groups=8, intervals={phases})"),
            thm25::scenario(6, 8, phases).instance,
        ),
        (
            format!("uniform-overload(n=32, d=8, rate=64, rounds={rounds})"),
            reqsched_workloads::uniform_two_choice(32, 8, 64, rounds, 7),
        ),
        (
            format!("zipf(n=32, d=6, alpha=1.5, rate=60, rounds={rounds})"),
            reqsched_workloads::zipf_replicated(32, 6, 100, 1.5, 60, rounds, 9),
        ),
        (
            format!("flash(n=32, d=6, burst=120, rounds={rounds})"),
            reqsched_workloads::flash_crowd(32, 6, 10, 120, 30, 60, rounds, 11),
        ),
    ];

    let mut results = Vec::new();
    for (name, inst) in &workloads {
        let r = measure(name, inst);
        println!(
            "{:<42} {:>5} rounds x5 strategies: {:>8.1} ms fresh -> {:>7.1} ms delta ({} edge scans), {:>5.1}x",
            r.name, r.rounds, r.fresh_ms, r.delta_ms, r.delta_edges, r.round_speedup,
        );
        for row in &r.rows {
            println!(
                "    {:<16} {:>8.2} ms -> {:>7.2} ms  {:>5.1}x",
                row.name, row.fresh_ms, row.delta_ms, row.speedup,
            );
        }
        results.push(r);
    }

    // Headline: the worst per-workload speedup — the acceptance bar holds
    // for every workload, not just a favourable one.
    let round_speedup = results
        .iter()
        .map(|r| r.round_speedup)
        .fold(f64::INFINITY, f64::min);
    println!("round_speedup (worst-case across workloads): {round_speedup:.1}x");
    assert!(
        round_speedup >= 2.0,
        "acceptance: expected >= 2x per-round strategy speedup on every workload, got {round_speedup:.1}x"
    );

    let total_ms: f64 = results.iter().map(|r| r.fresh_ms + r.delta_ms).sum();
    let baseline = std::env::var("DELTA_PROFILE_BASELINE_MS")
        .ok()
        .and_then(|v| v.parse::<f64>().ok());

    // Hand-formatted JSON: the serde stack is not needed for a flat report.
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"delta_window\",\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str("  \"parity\": true,\n");
    out.push_str(&format!("  \"round_speedup\": {round_speedup:.2},\n"));
    out.push_str("  \"release_profile\": { \"lto\": \"thin\", \"codegen_units\": 1, ");
    match baseline {
        Some(b) => out.push_str(&format!(
            "\"baseline_total_ms\": {b:.2}, \"total_ms\": {total_ms:.2}, \"profile_speedup\": {:.3} }},\n",
            b / total_ms.max(1e-6),
        )),
        None => out.push_str(&format!(
            "\"baseline_total_ms\": null, \"total_ms\": {total_ms:.2} }},\n"
        )),
    }
    out.push_str("  \"workloads\": [\n");
    for (i, r) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{ \"name\": \"{}\", \"requests\": {}, \"rounds\": {}, \"fresh_ms\": {:.2}, \"delta_ms\": {:.2}, \"round_speedup\": {:.2}, \"delta_edges\": {},\n      \"strategies\": [\n",
            r.name, r.requests, r.rounds, r.fresh_ms, r.delta_ms, r.round_speedup, r.delta_edges,
        ));
        for (j, row) in r.rows.iter().enumerate() {
            let rsep = if j + 1 == r.rows.len() { "" } else { "," };
            out.push_str(&format!(
                "        {{ \"name\": \"{}\", \"fresh_ms\": {:.2}, \"delta_ms\": {:.2}, \"speedup\": {:.2} }}{rsep}\n",
                row.name, row.fresh_ms, row.delta_ms, row.speedup,
            ));
        }
        out.push_str(&format!("      ] }}{sep}\n"));
    }
    out.push_str("  ]\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR3.json");
    std::fs::write(path, out).expect("write BENCH_PR3.json");
    println!("wrote {path}");
}
