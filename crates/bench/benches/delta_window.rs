//! Delta-matching round-engine macro-benchmark: measures the per-round
//! strategy cost of the matching-based strategies solved the old way — a
//! fresh window graph built and re-solved from zero every round — against
//! the delta engine, which carries one maintained matching across rounds
//! (`crates/core/src/delta.rs`). Records the results in `BENCH_PR3.json`
//! at the workspace root.
//!
//! Parity is asserted, not sampled: for every workload and strategy the two
//! paths must serve exactly the same requests on exactly the same resources
//! in **every** round before any timing is reported.
//!
//! Runs under `cargo bench -p reqsched-bench --bench delta_window`. Set
//! `BENCH_QUICK=1` (or the legacy aliases `STREAMING_OPT_QUICK=1` /
//! `DELTA_WINDOW_QUICK=1`) for the smoke-test configuration.
//! `DELTA_PROFILE_BASELINE_MS`, when set, is echoed into the report's
//! `release_profile` section as the pre-LTO baseline total (see
//! `scripts/bench_smoke.sh`).

use reqsched_bench::report::{self, workload_row, Obj, Report, Value};
use reqsched_bench::roundbench::{measure_round_engine, round_engine_workloads};
use reqsched_model::Instance;

fn main() {
    let quick = report::quick_mode(&["STREAMING_OPT_QUICK", "DELTA_WINDOW_QUICK"]);
    let (phases, rounds) = if quick { (6u32, 150u64) } else { (24, 600) };

    let workloads: Vec<(String, Instance)> = round_engine_workloads(phases, rounds);

    let mut results = Vec::new();
    for (name, inst) in &workloads {
        let r = measure_round_engine(name, inst);
        println!(
            "{:<42} {:>5} rounds x5 strategies: {:>8.1} ms fresh -> {:>7.1} ms delta ({} edge scans), {:>5.1}x",
            r.name, r.rounds, r.fresh_ms, r.delta_ms, r.delta_edges, r.round_speedup,
        );
        for row in &r.rows {
            println!(
                "    {:<16} {:>8.2} ms -> {:>7.2} ms  {:>5.1}x",
                row.name, row.fresh_ms, row.delta_ms, row.speedup,
            );
        }
        results.push(r);
    }

    // Headline: the worst per-workload speedup — the acceptance bar holds
    // for every workload, not just a favourable one.
    let round_speedup = results
        .iter()
        .map(|r| r.round_speedup)
        .fold(f64::INFINITY, f64::min);
    println!("round_speedup (worst-case across workloads): {round_speedup:.1}x");
    assert!(
        round_speedup >= 2.0,
        "acceptance: expected >= 2x per-round strategy speedup on every workload, got {round_speedup:.1}x"
    );

    let total_ms: f64 = results.iter().map(|r| r.fresh_ms + r.delta_ms).sum();
    let baseline = std::env::var("DELTA_PROFILE_BASELINE_MS")
        .ok()
        .and_then(|v| v.parse::<f64>().ok());

    // Shared report schema (the serde stack is stubbed in dev containers).
    let mut profile = Obj::new()
        .set("lto", Value::s("thin"))
        .set("codegen_units", Value::u(1));
    profile = match baseline {
        Some(b) => profile
            .set("baseline_total_ms", Value::f(b, 2))
            .set("total_ms", Value::f(total_ms, 2))
            .set("profile_speedup", Value::f(b / total_ms.max(1e-6), 3)),
        None => profile
            .set("baseline_total_ms", Value::Null)
            .set("total_ms", Value::f(total_ms, 2)),
    };
    Report::new("delta_window", quick)
        .set("parity", Value::Bool(true))
        .set("round_speedup", Value::f(round_speedup, 2))
        .set("release_profile", Value::Obj(profile))
        .set(
            "workloads",
            Value::Arr(
                results
                    .iter()
                    .map(|r| {
                        Value::Obj(
                            workload_row(&r.name, r.fresh_ms, r.delta_ms, r.round_speedup)
                                .set("requests", Value::u(r.requests as u64))
                                .set("rounds", Value::u(r.rounds))
                                .set("fresh_ms", Value::f(r.fresh_ms, 2))
                                .set("delta_ms", Value::f(r.delta_ms, 2))
                                .set("round_speedup", Value::f(r.round_speedup, 2))
                                .set("delta_edges", Value::u(r.delta_edges))
                                .set(
                                    "strategies",
                                    Value::Arr(
                                        r.rows
                                            .iter()
                                            .map(|row| {
                                                Value::Obj(
                                                    Obj::new()
                                                        .set("name", Value::s(row.name))
                                                        .set("fresh_ms", Value::f(row.fresh_ms, 2))
                                                        .set("delta_ms", Value::f(row.delta_ms, 2))
                                                        .set("speedup", Value::f(row.speedup, 2)),
                                                )
                                            })
                                            .collect(),
                                    ),
                                ),
                        )
                    })
                    .collect(),
            ),
        )
        .write("BENCH_PR3.json");
}
