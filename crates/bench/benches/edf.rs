//! EDF benchmarks: the heap-based strategies' throughput (they do no
//! matching, so they set the baseline cost floor) and the ablation between
//! independent copies and sibling cancellation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use reqsched_core::{build_strategy, StrategyKind, TieBreak};
use reqsched_sim::run_fixed;
use reqsched_workloads::{single_alternative, uniform_two_choice};

fn bench_edf_single(c: &mut Criterion) {
    let mut g = c.benchmark_group("edf_single");
    for n in [8u32, 64, 512] {
        let inst = single_alternative(n, 4, n, 200, 3);
        g.throughput(Throughput::Elements(inst.total_requests() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| {
                let mut s = build_strategy(
                    StrategyKind::EdfSingle,
                    inst.n_resources,
                    inst.d,
                    TieBreak::FirstFit,
                );
                run_fixed(s.as_mut(), inst).served
            })
        });
    }
    g.finish();
}

fn bench_edf_two_choice_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("edf_two_choice");
    let inst = uniform_two_choice(32, 4, 48, 200, 5);
    g.throughput(Throughput::Elements(inst.total_requests() as u64));
    for cancel in [false, true] {
        g.bench_with_input(BenchmarkId::new("cancel", cancel), &inst, |b, inst| {
            b.iter(|| {
                let mut s = build_strategy(
                    StrategyKind::Edf {
                        cancel_sibling: cancel,
                    },
                    inst.n_resources,
                    inst.d,
                    TieBreak::FirstFit,
                );
                run_fixed(s.as_mut(), inst).served
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_edf_single, bench_edf_two_choice_ablation);
criterion_main!(benches);
