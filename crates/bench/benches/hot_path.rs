//! Hot-path macro-benchmark: proves the zero-redundancy claims of the
//! scheduling fast path and records them in `BENCH_PR1.json` at the
//! workspace root.
//!
//! Three measurements:
//!
//! 1. **Horizon solves** — a Table-1-style sweep (every global strategy ×
//!    two tie-breaks over the shared validation battery) run the old way
//!    (one exact-OPT solve per job, via [`run_fixed`]) vs. through a shared
//!    [`OptCache`]. The acceptance bar is ≥ 5× fewer Hopcroft–Karp horizon
//!    solves; solves are counted exactly with
//!    [`reqsched_offline::horizon_solve_count`].
//! 2. **Time per round** — the full strategy round loop (`on_round` with
//!    window build, Kuhn augmentation, saturation) on a sustained uniform
//!    workload, measured per scheduling round.
//! 3. **Steady-state allocations** — heap allocations per round in the same
//!    loop after warm-up, counted by a global counting allocator. The
//!    recycled scratch path should allocate (amortised) ~zero per round.
//!
//! Runs under `cargo bench -p reqsched-bench --bench hot_path`. Set
//! `BENCH_QUICK=1` (or the legacy alias `HOT_PATH_QUICK=1`) for the
//! smoke-test configuration (fewer deadlines, shorter workload).

use criterion::black_box;
use reqsched_bench::report::{self, Obj, Report, Value};
use reqsched_bench::{validation_battery, TABLE1_DS};
use reqsched_core::{StrategyKind, TieBreak};
use reqsched_model::{Instance, Round};
use reqsched_sim::{run_fixed, run_fixed_cached, Job, OptCache};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// System allocator wrapped with an allocation counter.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// The Table-1-style job grid: global strategies × ties × battery(d).
fn sweep_jobs(ds: &[u32]) -> Vec<Job> {
    let mut jobs = Vec::new();
    for &kind in StrategyKind::GLOBAL.iter() {
        for &d in ds {
            for (name, inst) in validation_battery(d, 77) {
                for tie in [TieBreak::FirstFit, TieBreak::HintGuided] {
                    jobs.push(Job::new(
                        format!("{}/{name}/d{d}/{}", kind.name(), tie.label()),
                        std::sync::Arc::clone(&inst),
                        kind,
                        tie,
                    ));
                }
            }
        }
    }
    jobs
}

struct SweepResult {
    jobs: usize,
    solves_fresh: u64,
    solves_cached: u64,
    time_fresh_ms: f64,
    time_cached_ms: f64,
}

/// Measurement 1: horizon solves and wall time, per-job OPT vs shared cache.
fn measure_sweep(ds: &[u32]) -> SweepResult {
    let jobs = sweep_jobs(ds);

    let before = reqsched_offline::horizon_solve_count();
    let t0 = Instant::now();
    for job in &jobs {
        let mut s = job.strategy.build(job.instance.n_resources, job.instance.d);
        black_box(run_fixed(s.as_mut(), &job.instance));
    }
    let time_fresh_ms = t0.elapsed().as_secs_f64() * 1e3;
    let solves_fresh = reqsched_offline::horizon_solve_count() - before;

    let cache = OptCache::new();
    let before = reqsched_offline::horizon_solve_count();
    let t0 = Instant::now();
    for job in &jobs {
        let mut s = job.strategy.build(job.instance.n_resources, job.instance.d);
        black_box(run_fixed_cached(s.as_mut(), &job.instance, &cache));
    }
    let time_cached_ms = t0.elapsed().as_secs_f64() * 1e3;
    let solves_cached = reqsched_offline::horizon_solve_count() - before;
    assert_eq!(
        solves_cached,
        cache.misses() as u64,
        "every cached-path solve must be a cache miss"
    );

    SweepResult {
        jobs: jobs.len(),
        solves_fresh,
        solves_cached,
        time_fresh_ms,
        time_cached_ms,
    }
}

struct RoundLoop {
    rounds: u64,
    ns_per_round: f64,
    allocs_per_round: f64,
}

/// Measurements 2 & 3: ns/round and steady-state allocations/round of the
/// strategy round loop on a sustained workload.
fn measure_round_loop(kind: StrategyKind, inst: &Instance, warmup: u64) -> RoundLoop {
    let mut s = reqsched_core::build_strategy(kind, inst.n_resources, inst.d, TieBreak::HintGuided);
    let horizon = inst.horizon().get();
    assert!(horizon > warmup, "workload too short for warm-up");
    for t in 0..warmup {
        black_box(s.on_round(Round(t), inst.trace.arrivals_at(Round(t))));
    }
    let a0 = allocations();
    let t0 = Instant::now();
    for t in warmup..horizon {
        black_box(s.on_round(Round(t), inst.trace.arrivals_at(Round(t))));
    }
    let elapsed = t0.elapsed();
    let allocs = allocations() - a0;
    let rounds = horizon - warmup;
    RoundLoop {
        rounds,
        ns_per_round: elapsed.as_nanos() as f64 / rounds as f64,
        allocs_per_round: allocs as f64 / rounds as f64,
    }
}

fn main() {
    let quick = report::quick_mode(&["HOT_PATH_QUICK"]);
    let ds: &[u32] = if quick { &TABLE1_DS[..2] } else { &TABLE1_DS };
    let (rounds, rate) = if quick { (200u64, 6u32) } else { (2_000, 6) };

    let sweep = measure_sweep(ds);
    let solve_reduction = sweep.solves_fresh as f64 / sweep.solves_cached.max(1) as f64;
    println!(
        "sweep: {} jobs, {} -> {} horizon solves ({solve_reduction:.1}x fewer), {:.1} ms -> {:.1} ms",
        sweep.jobs, sweep.solves_fresh, sweep.solves_cached, sweep.time_fresh_ms, sweep.time_cached_ms,
    );
    assert!(
        solve_reduction >= 5.0,
        "acceptance: expected >= 5x fewer horizon solves, got {solve_reduction:.1}x"
    );

    let inst = reqsched_workloads::uniform_two_choice(16, 8, rate, rounds, 2024);
    let mut loops = Vec::new();
    for kind in StrategyKind::GLOBAL {
        let r = measure_round_loop(kind, &inst, rounds / 10);
        println!(
            "round loop {:<14} {:>9.0} ns/round  {:>7.3} allocs/round  ({} rounds)",
            kind.name(),
            r.ns_per_round,
            r.allocs_per_round,
            r.rounds,
        );
        loops.push((kind.name().to_string(), r));
    }

    // Shared report schema (the serde stack is stubbed in dev containers).
    let mut strategies = Obj::new();
    for (name, r) in &loops {
        strategies = strategies.set(
            name,
            Value::Obj(
                Obj::new()
                    .set("ns_per_round", Value::f(r.ns_per_round, 0))
                    .set("allocs_per_round", Value::f(r.allocs_per_round, 3))
                    .set("rounds", Value::u(r.rounds)),
            ),
        );
    }
    Report::new("hot_path", quick)
        .set(
            "sweep",
            Value::Obj(
                Obj::new()
                    .set("jobs", Value::u(sweep.jobs as u64))
                    .set("horizon_solves_fresh", Value::u(sweep.solves_fresh))
                    .set("horizon_solves_cached", Value::u(sweep.solves_cached))
                    .set("solve_reduction", Value::f(solve_reduction, 2))
                    .set("time_fresh_ms", Value::f(sweep.time_fresh_ms, 2))
                    .set("time_cached_ms", Value::f(sweep.time_cached_ms, 2)),
            ),
        )
        .set(
            "round_loop",
            Value::Obj(
                Obj::new()
                    .set(
                        "workload",
                        Value::s(format!(
                            "uniform_two_choice(n=16, d=8, rate={rate}, rounds={rounds})"
                        )),
                    )
                    .set("strategies", Value::Obj(strategies)),
            ),
        )
        .write("BENCH_PR1.json");
}
