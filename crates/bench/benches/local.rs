//! Local-strategy benchmarks: simulation throughput of the message-passing
//! protocols and the cost gap between the 2-round and the 9-round protocol.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use reqsched_sim::{run_fixed, AnyStrategy};
use reqsched_workloads::{flash_crowd, uniform_two_choice};

fn bench_local_uniform(c: &mut Criterion) {
    let mut g = c.benchmark_group("local_uniform");
    g.sample_size(20);
    for n in [8u32, 32, 128] {
        let inst = uniform_two_choice(n, 4, n, 100, 17);
        g.throughput(Throughput::Elements(inst.total_requests() as u64));
        for strat in [AnyStrategy::LocalFix, AnyStrategy::LocalEager] {
            g.bench_with_input(BenchmarkId::new(strat.name(), n), &inst, |b, inst| {
                b.iter(|| {
                    let mut s = strat.build(inst.n_resources, inst.d);
                    run_fixed(s.as_mut(), inst).served
                })
            });
        }
    }
    g.finish();
}

fn bench_local_flash_crowd(c: &mut Criterion) {
    let mut g = c.benchmark_group("local_flash_crowd");
    g.sample_size(20);
    let inst = flash_crowd(16, 4, 6, 40, 30, 20, 120, 23);
    g.throughput(Throughput::Elements(inst.total_requests() as u64));
    for strat in [AnyStrategy::LocalFix, AnyStrategy::LocalEager] {
        g.bench_with_input(
            BenchmarkId::from_parameter(strat.name()),
            &inst,
            |b, inst| {
                b.iter(|| {
                    let mut s = strat.build(inst.n_resources, inst.d);
                    run_fixed(s.as_mut(), inst).served
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_local_uniform, bench_local_flash_crowd);
criterion_main!(benches);
