//! One benchmark per Table-1 row: generate each theorem's adversarial input
//! and replay it against the pessimal member of the targeted strategy
//! (generation + simulation + exact OPT). These are the workloads the
//! `table1` harness runs; benching them tracks the end-to-end cost of the
//! reproduction itself.

use criterion::{criterion_group, criterion_main, Criterion};
use reqsched_adversary::{edf_worst, thm21, thm22, thm23, thm24, thm25, thm37};
use reqsched_core::{build_strategy, StrategyKind, TieBreak};
use reqsched_sim::{run_fixed, AnyStrategy};

fn bench_lower_bounds(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_rows");
    g.sample_size(15);

    g.bench_function("thm2.1/A_fix", |b| {
        b.iter(|| {
            let s = thm21::scenario(8, 10);
            let mut alg = build_strategy(StrategyKind::AFix, 4, 8, TieBreak::HintGuided);
            run_fixed(alg.as_mut(), &s.instance).ratio()
        })
    });

    g.bench_function("thm2.2/A_current", |b| {
        b.iter(|| {
            let s = thm22::scenario(5, 1, 3);
            let d = s.instance.d;
            let mut alg = build_strategy(StrategyKind::ACurrent, 5, d, TieBreak::HintGuided);
            run_fixed(alg.as_mut(), &s.instance).ratio()
        })
    });

    g.bench_function("thm2.3/A_fix_balance", |b| {
        b.iter(|| {
            let s = thm23::scenario(8, 10);
            let mut alg = build_strategy(StrategyKind::AFixBalance, 6, 8, TieBreak::HintGuided);
            run_fixed(alg.as_mut(), &s.instance).ratio()
        })
    });

    g.bench_function("thm2.4/A_eager", |b| {
        b.iter(|| {
            let s = thm24::scenario(8, 10);
            let mut alg = build_strategy(StrategyKind::AEager, 4, 8, TieBreak::HintGuided);
            run_fixed(alg.as_mut(), &s.instance).ratio()
        })
    });

    g.bench_function("thm2.5/A_balance", |b| {
        b.iter(|| {
            let s = thm25::scenario(3, 4, 6);
            let inst = &s.instance;
            let mut alg = build_strategy(
                StrategyKind::ABalance,
                inst.n_resources,
                inst.d,
                TieBreak::HintGuided,
            );
            run_fixed(alg.as_mut(), inst).ratio()
        })
    });

    g.bench_function("thm3.7/A_local_fix", |b| {
        b.iter(|| {
            let s = thm37::scenario(8, 8);
            let mut alg = AnyStrategy::LocalFix.build(4, 8);
            run_fixed(alg.as_mut(), &s.instance).ratio()
        })
    });

    g.bench_function("obs3.2/EDF", |b| {
        b.iter(|| {
            let s = edf_worst::scenario(8, 8);
            let mut alg = build_strategy(
                StrategyKind::Edf {
                    cancel_sibling: false,
                },
                2,
                8,
                TieBreak::FirstFit,
            );
            run_fixed(alg.as_mut(), &s.instance).ratio()
        })
    });

    g.finish();
}

criterion_group!(benches, bench_lower_bounds);
criterion_main!(benches);
