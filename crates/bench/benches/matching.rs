//! Microbenchmarks of the matching engine: Hopcroft–Karp and Kuhn on random
//! bipartite graphs of growing size, plus the lexicographic saturation pass
//! (the inner loop of `A_balance`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::Rng;
use rand::SeedableRng;
use reqsched_matching::{hopcroft_karp, kuhn_in_order, saturate_levels, BipartiteGraph, Matching};

fn random_graph(nl: u32, nr: u32, degree: usize, seed: u64) -> BipartiteGraph {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let mut b = BipartiteGraph::builder(nr);
    let mut adj = Vec::with_capacity(degree);
    for _ in 0..nl {
        adj.clear();
        for _ in 0..degree {
            adj.push(rng.gen_range(0..nr));
        }
        adj.sort_unstable();
        adj.dedup();
        b.add_left(&adj);
    }
    b.finish()
}

fn bench_hopcroft_karp(c: &mut Criterion) {
    let mut g = c.benchmark_group("hopcroft_karp");
    for size in [100u32, 1_000, 10_000] {
        let graph = random_graph(size, size, 4, 42);
        g.throughput(Throughput::Elements(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &graph, |b, graph| {
            b.iter(|| hopcroft_karp(graph).size())
        });
    }
    g.finish();
}

fn bench_kuhn(c: &mut Criterion) {
    let mut g = c.benchmark_group("kuhn_in_order");
    for size in [100u32, 1_000, 10_000] {
        let graph = random_graph(size, size, 4, 43);
        let order: Vec<u32> = (0..size).collect();
        g.throughput(Throughput::Elements(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &graph, |b, graph| {
            b.iter(|| {
                let mut m = Matching::empty(graph.n_left(), graph.n_right());
                kuhn_in_order(graph, &mut m, &order)
            })
        });
    }
    g.finish();
}

fn bench_saturation(c: &mut Criterion) {
    let mut g = c.benchmark_group("saturate_levels");
    for (nl, levels) in [(500u32, 4u32), (2_000, 8), (2_000, 16)] {
        let graph = random_graph(nl, nl, 4, 44);
        let level: Vec<u32> = (0..nl).map(|r| r % levels).collect();
        let base = hopcroft_karp(&graph);
        g.bench_with_input(
            BenchmarkId::new("lex", format!("n={nl},levels={levels}")),
            &graph,
            |b, graph| {
                b.iter(|| {
                    let mut m = base.clone();
                    saturate_levels(graph, &mut m, &level)
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_hopcroft_karp, bench_kuhn, bench_saturation);
criterion_main!(benches);
