//! Parallel-OPT gate benchmark: the pipelined ALG∥OPT paired runner
//! ([`reqsched_sim::run_fixed_pair_parallel`]) against the serial paired
//! baseline (plain strategy + serial streaming OPT,
//! [`reqsched_sim::run_fixed_traced`]), with **whole-`RunStats` parity —
//! every prefix of `opt_prefix` included — asserted before any timing
//! counts**. Records the results in `BENCH_PR8.json` at the workspace root.
//!
//! Three measurements:
//!
//! 1. **Paired-run ladder** — the BENCH_PR7 `rotating_flash` ladder
//!    (n = 100k and, in full mode, 1M) driven as full ALG-vs-OPT traced
//!    runs. Baseline: unsharded strategy with the serial per-arrival
//!    streaming OPT on the same thread. Measured: sharded ALG engine with
//!    the sharded, batch-augmenting OPT on a pipelined worker, S ∈ {1,2,4}
//!    under the range partitioner. The acceptance gate is S=4 ≥ 2× over
//!    the serial baseline on an n ≥ 100k row. On a single core the win is
//!    algorithmic — idle-shard round compression on the ALG side, one
//!    shared Hopcroft–Karp phase per round instead of k augmenting
//!    searches on the OPT side — so the bar holds with or without a pool.
//! 2. **OPT in isolation** — the same traces pushed through the serial
//!    `StreamingOpt` (one search per arrival) and `ShardedStreamingOpt`
//!    (one batched phase per round), no strategy in the loop, for honest
//!    attribution of the OPT-side share of the paired win.
//! 3. **Auto-shard fallback** — the BENCH_PR7 small-n regression point
//!    (n = 10k, where forced S=4 was 0.98×): `ShardMap::auto` must resolve
//!    to one shard there and thereby stay at (or above) serial speed.
//!
//! Runs under `cargo bench -p reqsched-bench --bench parallel_opt`. Set
//! `BENCH_QUICK=1` (or the alias `PARALLEL_OPT_QUICK=1`) for the
//! smoke-test configuration.

use reqsched_bench::report::{self, workload_row, Obj, Report, Value};
use reqsched_core::{build_strategy_with_mode, ShardMap, SolveMode, StrategyKind, TieBreak};
use reqsched_model::Instance;
use reqsched_offline::{ShardedStreamingOpt, StreamingOpt};
use reqsched_sim::{run_fixed_pair_parallel, run_fixed_traced, RunStats};
use std::time::Instant;

const SHARD_COUNTS: [u32; 3] = [1, 2, 4];

/// Timing repetitions per configuration; the minimum is reported (the runs
/// are deterministic, so min-of-k estimates the true cost).
const REPS: usize = 3;

struct PairRow {
    shards: u32,
    ms: f64,
    speedup: f64, // vs. the serial paired baseline
}

struct PairResult {
    name: String,
    kind: StrategyKind,
    n: u32,
    requests: usize,
    rounds: u64,
    opt: usize,
    serial_ms: f64,
    s4_ms: f64,
    rows: Vec<PairRow>,
}

/// Serial paired baseline vs. the pipelined parallel pair at every shard
/// count, asserting bit-identical `RunStats` (served, assignment, opt and
/// the complete per-round `opt_prefix`) before the timing is kept.
fn measure_paired(name: &str, inst: &Instance, kind: StrategyKind) -> PairResult {
    let tie = TieBreak::FirstFit;
    let mut serial_ms = f64::INFINITY;
    let mut baseline: Option<RunStats> = None;
    for _ in 0..REPS {
        let mut plain =
            build_strategy_with_mode(kind, inst.n_resources, inst.d, tie, SolveMode::Delta);
        let t = Instant::now();
        let stats = run_fixed_traced(plain.as_mut(), inst);
        serial_ms = serial_ms.min(t.elapsed().as_secs_f64() * 1e3);
        baseline = Some(stats);
    }
    let baseline = baseline.expect("REPS >= 1");
    let mut rows = Vec::new();
    let mut s4_ms = f64::INFINITY;
    for s in SHARD_COUNTS {
        let map = ShardMap::range(inst.n_resources, s);
        let mut ms = f64::INFINITY;
        for _ in 0..REPS {
            let t = Instant::now();
            let stats = run_fixed_pair_parallel(kind, inst, tie, SolveMode::Delta, map.clone());
            let elapsed = t.elapsed().as_secs_f64() * 1e3;
            assert_eq!(
                stats, baseline,
                "{name}: S={s} parallel paired run diverges from the serial baseline"
            );
            ms = ms.min(elapsed);
        }
        if s == 4 {
            s4_ms = ms;
        }
        rows.push(PairRow {
            shards: s,
            ms,
            speedup: serial_ms / ms.max(1e-6),
        });
    }
    PairResult {
        name: name.to_string(),
        kind,
        n: inst.n_resources,
        requests: inst.trace.len(),
        rounds: baseline.rounds,
        opt: baseline.opt,
        serial_ms,
        s4_ms,
        rows,
    }
}

struct OptOnlyRow {
    name: String,
    requests: usize,
    serial_ms: f64,
    sharded_s4_ms: f64,
    speedup: f64,
}

/// OPT in isolation: one augmenting search per arrival (serial) vs. one
/// batched phase per round over S=4 groups, per-round optimum asserted
/// equal along the way.
fn measure_opt_only(name: &str, inst: &Instance) -> OptOnlyRow {
    let reqs = inst.trace.requests();
    let mut serial_ms = f64::INFINITY;
    for _ in 0..REPS {
        let mut sopt = StreamingOpt::new(inst.n_resources);
        let t = Instant::now();
        for req in reqs {
            sopt.ingest(req);
        }
        serial_ms = serial_ms.min(t.elapsed().as_secs_f64() * 1e3);
    }
    let map = ShardMap::range(inst.n_resources, 4);
    let mut sharded_ms = f64::INFINITY;
    for rep in 0..REPS {
        let mut sopt = ShardedStreamingOpt::new(inst.n_resources, &map);
        let mut reference = (rep == 0).then(|| StreamingOpt::new(inst.n_resources));
        let t = Instant::now();
        let mut i = 0;
        while i < reqs.len() {
            let mut j = i;
            while j < reqs.len() && reqs[j].arrival == reqs[i].arrival {
                j += 1;
            }
            let got = sopt.ingest_round(&reqs[i..j]);
            if let Some(r) = reference.as_mut() {
                let mut want = 0;
                for req in &reqs[i..j] {
                    want = r.ingest(req);
                }
                assert_eq!(
                    got, want,
                    "{name}: OPT diverges at round {:?}",
                    reqs[i].arrival
                );
            }
            i = j;
        }
        let elapsed = t.elapsed().as_secs_f64() * 1e3;
        if reference.is_none() {
            sharded_ms = sharded_ms.min(elapsed); // parity rep excluded from timing
        }
    }
    OptOnlyRow {
        name: name.to_string(),
        requests: reqs.len(),
        serial_ms,
        sharded_s4_ms: sharded_ms,
        speedup: serial_ms / sharded_ms.max(1e-6),
    }
}

fn main() {
    let quick = report::quick_mode(&["PARALLEL_OPT_QUICK"]);

    // Measurement 1: the paired-run ladder (BENCH_PR7 instances).
    let ladder: Vec<(String, Instance, StrategyKind)> = {
        let mut v = Vec::new();
        let (rate_100k, rounds_100k) = if quick { (100, 32) } else { (100, 96) };
        for kind in [StrategyKind::AFixBalance, StrategyKind::ACurrent] {
            v.push((
                format!(
                    "rotating-flash(n=100k, d=4, rate={rate_100k}, rounds={rounds_100k}) {}",
                    kind.name()
                ),
                reqsched_workloads::rotating_flash(100_000, 4, 4, 16, rate_100k, rounds_100k, 73),
                kind,
            ));
        }
        if !quick {
            v.push((
                "rotating-flash(n=1M, d=4, rate=500, rounds=64) A_current".to_string(),
                reqsched_workloads::rotating_flash(1_000_000, 4, 4, 16, 500, 64, 79),
                StrategyKind::ACurrent,
            ));
        }
        v
    };

    let mut results = Vec::new();
    for (name, inst, kind) in &ladder {
        let r = measure_paired(name, inst, *kind);
        println!("{:<62} serial {:>9.1} ms", r.name, r.serial_ms);
        for row in &r.rows {
            println!(
                "{:<62} S={}    {:>9.1} ms  {:>5.2}x",
                r.name, row.shards, row.ms, row.speedup
            );
        }
        results.push(r);
    }

    // The acceptance gate: parallel pair at S=4 vs the serial paired
    // baseline, best n >= 100k row.
    let gate = results
        .iter()
        .filter(|r| r.n >= 100_000)
        .max_by(|a, b| {
            let (sa, sb) = (
                a.serial_ms / a.s4_ms.max(1e-6),
                b.serial_ms / b.s4_ms.max(1e-6),
            );
            sa.partial_cmp(&sb).unwrap_or(std::cmp::Ordering::Equal)
        })
        .expect("the ladder always contains an n >= 100k workload");
    let gate_speedup = gate.serial_ms / gate.s4_ms.max(1e-6);
    println!(
        "gate {}: serial {:.1} ms -> parallel S=4 {:.1} ms, {:.2}x",
        gate.name, gate.serial_ms, gate.s4_ms, gate_speedup
    );
    assert!(
        gate_speedup >= 2.0,
        "acceptance: parallel pair at S=4 must clear 2x over the serial paired baseline on {}, got {gate_speedup:.2}x",
        gate.name
    );

    // Measurement 2: OPT in isolation on the same traces.
    let opt_rows: Vec<OptOnlyRow> = ladder
        .iter()
        .map(|(name, inst, _)| measure_opt_only(name, inst))
        .collect();
    for row in &opt_rows {
        println!(
            "opt-only {:<58} serial {:>8.1} ms  sharded-S4 {:>8.1} ms  {:>5.2}x",
            row.name, row.serial_ms, row.sharded_s4_ms, row.speedup
        );
    }

    // Measurement 3: the auto-shard fallback at the small-n regression
    // point. `auto` must pick S=1 at n=10k and match serial speed; forced
    // S=4 documents the regression it avoids.
    let (rate_10k, rounds_10k) = if quick { (200, 24) } else { (500, 64) };
    let small = reqsched_workloads::rotating_flash(10_000, 4, 4, 8, rate_10k, rounds_10k, 71);
    let predicted = ShardMap::range(10_000, 4).straddler_fraction(&small.trace);
    let auto_effective = ShardMap::auto_shards(10_000, 4, predicted);
    assert_eq!(auto_effective, 1, "n=10k must fall back to one shard");
    let small_result = measure_paired(
        &format!("rotating-flash(n=10k, d=4, rate={rate_10k}, rounds={rounds_10k}) A_fix_balance"),
        &small,
        StrategyKind::AFixBalance,
    );
    let auto_map = ShardMap::auto(10_000, 4, predicted);
    let mut auto_ms = f64::INFINITY;
    for _ in 0..REPS {
        let t = Instant::now();
        let stats = run_fixed_pair_parallel(
            StrategyKind::AFixBalance,
            &small,
            TieBreak::FirstFit,
            SolveMode::Delta,
            auto_map.clone(),
        );
        let elapsed = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(stats.opt, small_result.opt);
        auto_ms = auto_ms.min(elapsed);
    }
    println!(
        "auto-shards n=10k: requested 4 -> effective {auto_effective}; auto {:.1} ms vs forced-S4 {:.1} ms (serial {:.1} ms)",
        auto_ms, small_result.s4_ms, small_result.serial_ms
    );

    let gate_name = gate.name.clone();
    Report::new("parallel_opt", quick)
        .set("parity", Value::Bool(true))
        .set("gate_workload", Value::s(&gate_name))
        .set("paired_s4_speedup", Value::f(gate_speedup, 2))
        .set(
            "workloads",
            Value::Arr(
                results
                    .iter()
                    .map(|r| {
                        Value::Obj(
                            workload_row(
                                &r.name,
                                r.serial_ms,
                                r.s4_ms,
                                r.serial_ms / r.s4_ms.max(1e-6),
                            )
                            .set("strategy", Value::s(r.kind.name()))
                            .set("n", Value::u(u64::from(r.n)))
                            .set("requests", Value::u(r.requests as u64))
                            .set("rounds", Value::u(r.rounds))
                            .set("opt", Value::u(r.opt as u64))
                            .set(
                                "shards",
                                Value::Arr(
                                    r.rows
                                        .iter()
                                        .map(|row| {
                                            Value::Obj(
                                                Obj::new()
                                                    .set("shards", Value::u(u64::from(row.shards)))
                                                    .set("ms", Value::f(row.ms, 3))
                                                    .set("speedup", Value::f(row.speedup, 2))
                                                    .set(
                                                        "round_latency_us",
                                                        Value::f(row.ms * 1e3 / r.rounds as f64, 2),
                                                    ),
                                            )
                                        })
                                        .collect(),
                                ),
                            ),
                        )
                    })
                    .collect(),
            ),
        )
        .set(
            "opt_only",
            Value::Arr(
                opt_rows
                    .iter()
                    .map(|row| {
                        Value::Obj(
                            Obj::new()
                                .set("workload", Value::s(&row.name))
                                .set("requests", Value::u(row.requests as u64))
                                .set("serial_ms", Value::f(row.serial_ms, 3))
                                .set("sharded_s4_ms", Value::f(row.sharded_s4_ms, 3))
                                .set("speedup", Value::f(row.speedup, 2)),
                        )
                    })
                    .collect(),
            ),
        )
        .set(
            "auto_shards",
            Value::Obj(
                Obj::new()
                    .set("n", Value::u(10_000))
                    .set("requested", Value::u(4))
                    .set("effective", Value::u(u64::from(auto_effective)))
                    .set("predicted_straddler_fraction", Value::f(predicted, 4))
                    .set("serial_ms", Value::f(small_result.serial_ms, 3))
                    .set("auto_ms", Value::f(auto_ms, 3))
                    .set("forced_s4_ms", Value::f(small_result.s4_ms, 3))
                    .set(
                        "auto_speedup_vs_serial",
                        Value::f(small_result.serial_ms / auto_ms.max(1e-6), 2),
                    ),
            ),
        )
        .write("BENCH_PR8.json");
}
