//! Sharded-round-engine gate benchmark: scaling of the Rayon-driven
//! multi-shard scheduler against the unsharded reference, with per-round
//! parity asserted before any timing is reported. Records the results in
//! `BENCH_PR7.json` at the workspace root.
//!
//! Three measurements:
//!
//! 1. **Scaling ladder** — `A_current` on the `rotating_flash` workload
//!    (one contiguous cluster active per episode) at n = 10k / 100k / 1M,
//!    shard counts S ∈ {1, 2, 4, 8} under the range partitioner. Every
//!    sharded run's per-round service schedule is asserted equal to the
//!    unsharded strategy's before its timing counts. The acceptance gate
//!    is S=4 round throughput ≥ 1.5× over S=1 on the n ≥ 100k workload:
//!    on a single core the win is purely algorithmic (idle shards skip
//!    rounds and compress them out of their local clocks), so the bar
//!    holds with or without a thread pool.
//! 2. **Delta-window strategies at n = 10k** — `A_fix_balance`, `A_eager`
//!    and `A_balance` ride the same ladder at the scale their
//!    round-indexed delta columns can hold.
//! 3. **Partitioner quality** — hash vs. range vs. pair-affinity on the
//!    scrambled `clustered_two_choice` placement: predicted (static)
//!    straddler fraction against the fraction the engine actually
//!    measures while routing, plus the group fusions that straddlers
//!    trigger.
//!
//! Runs under `cargo bench -p reqsched-bench --bench sharded_round`. Set
//! `BENCH_QUICK=1` (or the alias `SHARDED_ROUND_QUICK=1`) for the
//! smoke-test configuration.

use reqsched_bench::report::{self, workload_row, Obj, Report, Value};
use reqsched_bench::roundbench::drive;
use reqsched_core::{
    build_strategy_with_mode, Partitioner, ShardMap, SolveMode, StrategyKind, TieBreak,
};
use reqsched_model::Instance;
use reqsched_sim::ShardedScheduler;

const SHARD_COUNTS: [u32; 4] = [1, 2, 4, 8];

struct ShardRow {
    shards: u32,
    ms: f64,
    speedup: f64,
    straddler_fraction: f64,
    fusions: u64,
    groups: usize,
}

struct ScalingResult {
    name: String,
    kind: StrategyKind,
    n: u32,
    requests: usize,
    rounds: u64,
    s1_ms: f64,
    s4_ms: f64,
    rows: Vec<ShardRow>,
}

/// Timing repetitions per configuration; the minimum is reported. One
/// pass at the quick scale is only a few ms, well inside this box's
/// scheduling jitter, and the runs are deterministic, so min-of-k is the
/// right estimator of the true cost.
const REPS: usize = 3;

/// Drive `kind` unsharded and at every shard count, asserting per-round
/// schedule parity between each sharded run and the unsharded reference.
fn measure_scaling(
    name: &str,
    inst: &Instance,
    kind: StrategyKind,
    partitioner: Partitioner,
) -> ScalingResult {
    let tie = TieBreak::FirstFit;
    let mut sv_ref = Vec::new();
    for _ in 0..REPS {
        let mut plain =
            build_strategy_with_mode(kind, inst.n_resources, inst.d, tie, SolveMode::Delta);
        (sv_ref, _) = drive(plain.as_mut(), inst);
    }
    let mut rows = Vec::new();
    let (mut s1_ms, mut s4_ms) = (0.0, 0.0);
    for s in SHARD_COUNTS {
        let mut ms = f64::INFINITY;
        let map = ShardMap::build_with(partitioner, inst.n_resources, s, &inst.trace);
        let mut sh = ShardedScheduler::new(kind, inst.d, tie, SolveMode::Delta, map.clone());
        for rep in 0..REPS {
            if rep > 0 {
                sh = ShardedScheduler::new(kind, inst.d, tie, SolveMode::Delta, map.clone());
            }
            let (sv, rep_ms) = drive(&mut sh, inst);
            assert_eq!(
                sv_ref, sv,
                "{name}: S={s} sharded schedule diverges from the unsharded reference"
            );
            ms = ms.min(rep_ms);
        }
        if s == 1 {
            s1_ms = ms;
        }
        if s == 4 {
            s4_ms = ms;
        }
        rows.push(ShardRow {
            shards: s,
            ms,
            speedup: 0.0, // filled below, once S=1 is known
            straddler_fraction: sh.straddlers() as f64 / (sh.routed() as f64).max(1.0),
            fusions: sh.fusions(),
            groups: sh.groups_alive(),
        });
    }
    for row in &mut rows {
        row.speedup = s1_ms / row.ms.max(1e-6);
    }
    ScalingResult {
        name: name.to_string(),
        kind,
        n: inst.n_resources,
        requests: inst.trace.len(),
        rounds: inst.horizon().get() + inst.d as u64,
        s1_ms,
        s4_ms,
        rows,
    }
}

struct PartitionerRow {
    partitioner: Partitioner,
    predicted_fraction: f64,
    measured_fraction: f64,
    fusions: u64,
    groups: usize,
    ms: f64,
}

/// Route the scrambled clustered workload through every partitioner at
/// S=8, comparing the map's static straddler prediction with what the
/// engine measures while routing (parity asserted as everywhere else).
fn measure_partitioners(inst: &Instance) -> Vec<PartitionerRow> {
    let tie = TieBreak::FirstFit;
    let kind = StrategyKind::ACurrent;
    let mut plain = build_strategy_with_mode(kind, inst.n_resources, inst.d, tie, SolveMode::Delta);
    let (sv_ref, _) = drive(plain.as_mut(), inst);
    [
        Partitioner::Hash,
        Partitioner::Range,
        Partitioner::PairAffinity,
    ]
    .into_iter()
    .map(|p| {
        let map = ShardMap::build_with(p, inst.n_resources, 8, &inst.trace);
        let predicted = map.straddler_fraction(&inst.trace);
        let mut sh = ShardedScheduler::new(kind, inst.d, tie, SolveMode::Delta, map);
        let (sv, ms) = drive(&mut sh, inst);
        assert_eq!(sv_ref, sv, "{}: sharded schedule diverges", p.label());
        PartitionerRow {
            partitioner: p,
            predicted_fraction: predicted,
            measured_fraction: sh.straddlers() as f64 / (sh.routed() as f64).max(1.0),
            fusions: sh.fusions(),
            groups: sh.groups_alive(),
            ms,
        }
    })
    .collect()
}

fn main() {
    let quick = report::quick_mode(&["SHARDED_ROUND_QUICK"]);

    // Measurement 1 + 2: the scaling ladder. Episodes rotate over 4
    // contiguous clusters, so under the range partitioner 3 of 4 shards
    // are idle at any time; `A_current` carries the large rows (its delta
    // column is round-free, so memory stays O(n)), the delta-window
    // strategies ride at n = 10k.
    let ladder: Vec<(String, Instance, StrategyKind)> = {
        let mut v = Vec::new();
        let (rate_10k, rounds_10k) = if quick { (200, 24) } else { (500, 64) };
        for kind in [
            StrategyKind::ACurrent,
            StrategyKind::AFixBalance,
            StrategyKind::AEager,
            StrategyKind::ABalance,
        ] {
            v.push((
                format!(
                    "rotating-flash(n=10k, d=4, rate={rate_10k}, rounds={rounds_10k}) {}",
                    kind.name()
                ),
                reqsched_workloads::rotating_flash(10_000, 4, 4, 8, rate_10k, rounds_10k, 71),
                kind,
            ));
        }
        let (rate_100k, rounds_100k) = if quick { (100, 32) } else { (100, 96) };
        for kind in [StrategyKind::ACurrent, StrategyKind::AFixBalance] {
            v.push((
                format!(
                    "rotating-flash(n=100k, d=4, rate={rate_100k}, rounds={rounds_100k}) {}",
                    kind.name()
                ),
                reqsched_workloads::rotating_flash(100_000, 4, 4, 16, rate_100k, rounds_100k, 73),
                kind,
            ));
        }
        if !quick {
            v.push((
                "rotating-flash(n=1M, d=4, rate=500, rounds=64) A_current".to_string(),
                reqsched_workloads::rotating_flash(1_000_000, 4, 4, 16, 500, 64, 79),
                StrategyKind::ACurrent,
            ));
        }
        v
    };

    let mut results = Vec::new();
    for (name, inst, kind) in &ladder {
        let r = measure_scaling(name, inst, *kind, Partitioner::Range);
        for row in &r.rows {
            println!(
                "{:<58} S={} {:>9.1} ms  {:>5.2}x  straddlers {:>5.3}  fusions {}",
                r.name, row.shards, row.ms, row.speedup, row.straddler_fraction, row.fusions,
            );
        }
        results.push(r);
    }

    // The acceptance gate: S=4 vs S=1 on the best-scaling n >= 100k row.
    // (`A_current`'s cost at n = 100k is already dominated by per-live
    // augmentation the busy cluster keeps regardless of sharding — its row
    // documents that ceiling; the delta-window strategies' O(n·d) column
    // churn is what sharding eliminates, and the gate holds there.)
    let gate = results
        .iter()
        .filter(|r| r.n >= 100_000)
        .max_by(|a, b| {
            let (sa, sb) = (a.s1_ms / a.s4_ms.max(1e-6), b.s1_ms / b.s4_ms.max(1e-6));
            sa.partial_cmp(&sb).unwrap_or(std::cmp::Ordering::Equal)
        })
        .expect("the ladder always contains an n >= 100k workload");
    let s4_speedup = gate.s1_ms / gate.s4_ms.max(1e-6);
    println!(
        "gate {}: S=1 {:.1} ms -> S=4 {:.1} ms, {:.2}x",
        gate.name, gate.s1_ms, gate.s4_ms, s4_speedup
    );
    assert!(
        s4_speedup >= 1.5,
        "acceptance: S=4 must clear 1.5x over S=1 on {}, got {s4_speedup:.2}x",
        gate.name
    );

    // Measurement 3: partitioner quality on the scrambled placement.
    let part_inst = if quick {
        reqsched_workloads::clustered_two_choice(512, 4, 8, 64, 24, 83)
    } else {
        reqsched_workloads::clustered_two_choice(4_096, 4, 8, 256, 48, 83)
    };
    let partitioners = measure_partitioners(&part_inst);
    for row in &partitioners {
        println!(
            "partitioner {:<14} predicted {:>5.3}  measured {:>5.3}  fusions {}  groups left {}",
            row.partitioner.label(),
            row.predicted_fraction,
            row.measured_fraction,
            row.fusions,
            row.groups,
        );
    }

    let gate_name = gate.name.clone();
    Report::new("sharded_round", quick)
        .set("parity", Value::Bool(true))
        .set("gate_workload", Value::s(&gate_name))
        .set("s4_speedup", Value::f(s4_speedup, 2))
        .set(
            "workloads",
            Value::Arr(
                results
                    .iter()
                    .map(|r| {
                        let secs = |ms: f64| (ms / 1e3).max(1e-9);
                        Value::Obj(
                            workload_row(&r.name, r.s1_ms, r.s4_ms, r.s1_ms / r.s4_ms.max(1e-6))
                                .set("strategy", Value::s(r.kind.name()))
                                .set("n", Value::u(u64::from(r.n)))
                                .set("requests", Value::u(r.requests as u64))
                                .set("rounds", Value::u(r.rounds))
                                .set(
                                    "shards",
                                    Value::Arr(
                                        r.rows
                                            .iter()
                                            .map(|row| {
                                                Value::Obj(
                                                    Obj::new()
                                                        .set(
                                                            "shards",
                                                            Value::u(u64::from(row.shards)),
                                                        )
                                                        .set("ms", Value::f(row.ms, 3))
                                                        .set("speedup", Value::f(row.speedup, 2))
                                                        .set(
                                                            "rounds_per_sec",
                                                            Value::f(
                                                                r.rounds as f64 / secs(row.ms),
                                                                1,
                                                            ),
                                                        )
                                                        .set(
                                                            "requests_per_sec",
                                                            Value::f(
                                                                r.requests as f64 / secs(row.ms),
                                                                1,
                                                            ),
                                                        )
                                                        .set(
                                                            "round_latency_us",
                                                            Value::f(
                                                                row.ms * 1e3 / r.rounds as f64,
                                                                2,
                                                            ),
                                                        )
                                                        .set(
                                                            "straddler_fraction",
                                                            Value::f(row.straddler_fraction, 4),
                                                        )
                                                        .set("fusions", Value::u(row.fusions))
                                                        .set(
                                                            "groups_left",
                                                            Value::u(row.groups as u64),
                                                        ),
                                                )
                                            })
                                            .collect(),
                                    ),
                                ),
                        )
                    })
                    .collect(),
            ),
        )
        .set(
            "partitioners",
            Value::Arr(
                partitioners
                    .iter()
                    .map(|row| {
                        Value::Obj(
                            Obj::new()
                                .set("partitioner", Value::s(row.partitioner.label()))
                                .set("predicted_fraction", Value::f(row.predicted_fraction, 4))
                                .set("measured_fraction", Value::f(row.measured_fraction, 4))
                                .set("fusions", Value::u(row.fusions))
                                .set("groups_left", Value::u(row.groups as u64))
                                .set("ms", Value::f(row.ms, 3)),
                        )
                    })
                    .collect(),
            ),
        )
        .write("BENCH_PR7.json");
}
