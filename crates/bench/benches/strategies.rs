//! Macro-benchmarks: full simulation throughput of every global strategy on
//! a uniform two-choice workload, swept over the number of resources and the
//! deadline (how expensive is each strategy's per-round matching work?).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use reqsched_core::{StrategyKind, TieBreak};
use reqsched_sim::run_fixed;
use reqsched_workloads::uniform_two_choice;

fn bench_strategies_by_n(c: &mut Criterion) {
    let mut g = c.benchmark_group("strategy_round_throughput_by_n");
    g.sample_size(20);
    for n in [8u32, 32, 128] {
        let inst = uniform_two_choice(n, 4, n, 100, 7);
        g.throughput(Throughput::Elements(inst.total_requests() as u64));
        for kind in StrategyKind::GLOBAL {
            g.bench_with_input(BenchmarkId::new(kind.name(), n), &inst, |b, inst| {
                b.iter(|| {
                    let mut s = reqsched_core::build_strategy(
                        kind,
                        inst.n_resources,
                        inst.d,
                        TieBreak::FirstFit,
                    );
                    run_fixed(s.as_mut(), inst).served
                })
            });
        }
    }
    g.finish();
}

fn bench_strategies_by_d(c: &mut Criterion) {
    let mut g = c.benchmark_group("strategy_round_throughput_by_d");
    g.sample_size(20);
    for d in [2u32, 8, 16] {
        let inst = uniform_two_choice(16, d, 16, 100, 11);
        g.throughput(Throughput::Elements(inst.total_requests() as u64));
        for kind in [
            StrategyKind::AFix,
            StrategyKind::AEager,
            StrategyKind::ABalance,
        ] {
            g.bench_with_input(BenchmarkId::new(kind.name(), d), &inst, |b, inst| {
                b.iter(|| {
                    let mut s = reqsched_core::build_strategy(
                        kind,
                        inst.n_resources,
                        inst.d,
                        TieBreak::FirstFit,
                    );
                    run_fixed(s.as_mut(), inst).served
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_strategies_by_n, bench_strategies_by_d);
criterion_main!(benches);
