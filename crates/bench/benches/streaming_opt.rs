//! Streaming-OPT macro-benchmark: measures the per-prefix ratio-trace
//! workload (the optimum of *every* prefix of a request stream) computed the
//! old way — one full `optimal_count` horizon solve per prefix — against the
//! incremental matching engine, which maintains one maximum matching across
//! the whole stream at one augmenting search per arrival. Records the
//! results in `BENCH_PR2.json` at the workspace root.
//!
//! Parity is asserted, not sampled: for every workload the streaming
//! per-prefix optima must equal the full-solve optima on **every** prefix
//! before any timing is reported.
//!
//! Runs under `cargo bench -p reqsched-bench --bench streaming_opt`. Set
//! `BENCH_QUICK=1` (or the legacy alias `STREAMING_OPT_QUICK=1`) for the
//! smoke-test configuration (smaller horizons).

use criterion::black_box;
use reqsched_adversary::{thm21, thm24};
use reqsched_bench::report::{self, workload_row, Report, Value};
use reqsched_model::Instance;
use reqsched_offline::{optimal_count, StreamingOpt};
use std::time::Instant;

struct WorkloadResult {
    name: String,
    requests: usize,
    prefixes: usize,
    solves_full: u64,
    solves_streaming: u64,
    full_ms: f64,
    streaming_ms: f64,
    speedup: f64,
}

/// Compute every prefix optimum of `inst` twice — repeated full solves vs.
/// one streaming pass — assert exact parity, and time both.
fn measure(name: &str, inst: &Instance) -> WorkloadResult {
    use reqsched_model::TraceBuilder;

    // Old way: rebuild the prefix instance and fully re-solve its horizon
    // graph after every arrival (what ratio traces and phase generators used
    // to do).
    let solves_before = reqsched_offline::horizon_solve_count();
    let t0 = Instant::now();
    let mut full = Vec::with_capacity(inst.trace.len());
    let mut b = TraceBuilder::new(inst.d);
    for req in inst.trace.requests() {
        b.push_full(
            req.arrival,
            req.alternatives.clone(),
            req.deadline,
            req.tag,
            req.hint,
        );
        let prefix = Instance::new(inst.n_resources, inst.d, b.clone().build());
        full.push(black_box(optimal_count(&prefix)) as u32);
    }
    let full_ms = t0.elapsed().as_secs_f64() * 1e3;
    let solves_full = reqsched_offline::horizon_solve_count() - solves_before;

    // New way: one incremental engine across the whole stream.
    let solves_before = reqsched_offline::horizon_solve_count();
    let t0 = Instant::now();
    let mut sopt = StreamingOpt::new(inst.n_resources);
    let mut streaming = Vec::with_capacity(inst.trace.len());
    for req in inst.trace.requests() {
        streaming.push(black_box(sopt.ingest(req)) as u32);
    }
    let streaming_ms = t0.elapsed().as_secs_f64() * 1e3;
    let solves_streaming = reqsched_offline::horizon_solve_count() - solves_before;

    assert_eq!(
        full, streaming,
        "{name}: streaming prefix optima diverge from full solves"
    );

    WorkloadResult {
        name: name.to_string(),
        requests: inst.trace.len(),
        prefixes: full.len(),
        solves_full,
        solves_streaming,
        full_ms,
        streaming_ms,
        speedup: full_ms / streaming_ms.max(1e-6),
    }
}

fn main() {
    let quick = report::quick_mode(&["STREAMING_OPT_QUICK"]);
    // Workload scale: phase counts for the adversarial generators, round
    // horizons for the random workloads.
    let (phases, rounds) = if quick { (6u32, 150u64) } else { (24, 600) };

    let workloads: Vec<(String, Instance)> = vec![
        (
            format!("thm2.1(d=8, phases={phases})"),
            thm21::scenario(8, phases).instance,
        ),
        (
            format!("thm2.4(d=6, phases={phases})"),
            thm24::scenario(6, phases).instance,
        ),
        (
            format!("uniform(n=8, d=4, rate=4, rounds={rounds})"),
            reqsched_workloads::uniform_two_choice(8, 4, 4, rounds, 7),
        ),
        (
            format!("flash(n=6, d=3, rounds={rounds})"),
            reqsched_workloads::flash_crowd(6, 3, 3, 12, 10, 8, rounds, 11),
        ),
    ];

    let mut results = Vec::new();
    for (name, inst) in &workloads {
        let r = measure(name, inst);
        println!(
            "{:<38} {:>5} prefixes: {:>9.1} ms full ({} solves) -> {:>7.1} ms streaming ({} solve-equivalents), {:>6.1}x",
            r.name, r.prefixes, r.full_ms, r.solves_full, r.streaming_ms, r.solves_streaming, r.speedup,
        );
        results.push(r);
    }

    // Headline number: the worst (smallest) speedup across workloads — the
    // acceptance bar holds for every workload, not just a favourable one.
    let solve_reduction = results
        .iter()
        .map(|r| r.speedup)
        .fold(f64::INFINITY, f64::min);
    println!("solve_reduction (worst-case across workloads): {solve_reduction:.1}x");
    assert!(
        solve_reduction >= 5.0,
        "acceptance: expected >= 5x reduction in horizon-solve time, got {solve_reduction:.1}x"
    );

    // Shared report schema (the serde stack is stubbed in dev containers).
    Report::new("streaming_opt", quick)
        .set("parity", Value::Bool(true))
        .set("solve_reduction", Value::f(solve_reduction, 2))
        .set(
            "workloads",
            Value::Arr(
                results
                    .iter()
                    .map(|r| {
                        Value::Obj(
                            workload_row(&r.name, r.full_ms, r.streaming_ms, r.speedup)
                                .set("requests", Value::u(r.requests as u64))
                                .set("prefixes", Value::u(r.prefixes as u64))
                                .set("solves_full", Value::u(r.solves_full))
                                .set("solves_streaming", Value::u(r.solves_streaming))
                                .set("full_ms", Value::f(r.full_ms, 2))
                                .set("streaming_ms", Value::f(r.streaming_ms, 2)),
                        )
                    })
                    .collect(),
            ),
        )
        .write("BENCH_PR2.json");
}
