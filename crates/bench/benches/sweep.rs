//! Sweep scaling: how the Rayon-parallel harness scales with the number of
//! independent (strategy × instance) jobs, and the cost of the exact offline
//! optimum that every job computes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use reqsched_core::{StrategyKind, TieBreak};
use reqsched_offline::optimal_count;
use reqsched_sim::{par_run, Job};
use reqsched_workloads::uniform_two_choice;
use std::sync::Arc;

fn bench_par_run_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("par_run_scaling");
    g.sample_size(10);
    let inst = Arc::new(uniform_two_choice(12, 4, 16, 80, 31));
    for njobs in [4usize, 16, 64] {
        let jobs: Vec<Job> = (0..njobs)
            .map(|i| {
                let kind = StrategyKind::GLOBAL[i % StrategyKind::GLOBAL.len()];
                Job::new(
                    format!("j{i}"),
                    Arc::clone(&inst),
                    kind,
                    TieBreak::Random(i as u64),
                )
            })
            .collect();
        g.throughput(Throughput::Elements(njobs as u64));
        g.bench_with_input(BenchmarkId::from_parameter(njobs), &jobs, |b, jobs| {
            b.iter(|| par_run(jobs).len())
        });
    }
    g.finish();
}

fn bench_offline_opt(c: &mut Criterion) {
    let mut g = c.benchmark_group("offline_optimum");
    for rounds in [50u64, 200, 800] {
        let inst = uniform_two_choice(16, 4, 24, rounds, 37);
        g.throughput(Throughput::Elements(inst.total_requests() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(rounds), &inst, |b, inst| {
            b.iter(|| optimal_count(inst))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_par_run_scaling, bench_offline_opt);
criterion_main!(benches);
