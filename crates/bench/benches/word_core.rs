//! Word-parallel-core gate benchmark: measures the round engine on the
//! struct-of-arrays request arena + u64 bitset adjacency masks, and the
//! EDF bucket ring against the pre-ring binary-heap round loop. Records
//! the results in `BENCH_PR6.json` at the workspace root.
//!
//! Two measurements:
//!
//! 1. **Round engine** — the exact BENCH_PR3 battery (same five workloads,
//!    same five strategies, same driver, via
//!    [`reqsched_bench::roundbench`]), fresh rebuild vs. delta-maintained
//!    matching, now running on the word-parallel core: `ScheduleState`
//!    keeps live requests in a SoA [`RequestArena`], the window graph's
//!    participation mask and the matching engines' visited/alive/usable
//!    sets are u64 `BitSet`s, and delta-column retirement is word-wise.
//!    The acceptance bar is the BENCH_PR3 bar re-held on the new core:
//!    ≥ 2× per-round speedup on **every** workload, with exact per-round
//!    schedule parity asserted before any timing is reported.
//! 2. **EDF bucket ring** — the branch-free circular-bucket EDF queues
//!    (`BitMatrix` occupancy + masked `trailing_zeros` scans) against the
//!    pre-ring `BinaryHeap` round loop, kept here verbatim as the
//!    baseline. Per-round services and wasted slots must match
//!    bit-for-bit on every round; deadlines beyond 64 force ring growth.
//!
//! Runs under `cargo bench -p reqsched-bench --bench word_core`. Set
//! `BENCH_QUICK=1` (or the alias `WORD_CORE_QUICK=1`) for the smoke-test
//! configuration.

use reqsched_bench::report::{self, workload_row, Obj, Report, Value};
use reqsched_bench::roundbench::{drive, measure_round_engine, round_engine_workloads};
use reqsched_core::{EdfTwoChoice, OnlineScheduler, Service};
use reqsched_model::{Instance, Request, RequestId, ResourceId, Round};
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};

/// The pre-ring EDF round loop over plain binary heaps — the baseline the
/// bucket ring is gated against (same shape as the differential oracle in
/// `crates/core/src/edf.rs`, minus faults, which this bench doesn't inject).
struct HeapEdf {
    queues: Vec<BinaryHeap<Reverse<(Round, RequestId)>>>,
    served: BTreeSet<RequestId>,
    cancel_sibling: bool,
    wasted_slots: u64,
}

impl HeapEdf {
    fn new(n: u32, cancel_sibling: bool) -> HeapEdf {
        HeapEdf {
            queues: (0..n).map(|_| BinaryHeap::new()).collect(),
            served: BTreeSet::new(),
            cancel_sibling,
            wasted_slots: 0,
        }
    }
}

impl OnlineScheduler for HeapEdf {
    fn name(&self) -> &str {
        "EDF(heap)"
    }

    fn on_round(&mut self, round: Round, arrivals: &[Request]) -> Vec<Service> {
        for req in arrivals {
            for &alt in req.alternatives.as_slice() {
                self.queues[alt.index()].push(Reverse((req.expiry(), req.id)));
            }
        }
        let mut out = Vec::new();
        for (i, q) in self.queues.iter_mut().enumerate() {
            while let Some(&Reverse((expiry, id))) = q.peek() {
                if expiry < round {
                    q.pop();
                    continue;
                }
                if self.served.contains(&id) {
                    q.pop();
                    if self.cancel_sibling {
                        continue;
                    }
                    self.wasted_slots += 1;
                    break;
                }
                q.pop();
                self.served.insert(id);
                out.push(Service {
                    resource: ResourceId(i as u32),
                    request: id,
                });
                break;
            }
        }
        out
    }
}

struct EdfResult {
    name: String,
    heap_ms: f64,
    ring_ms: f64,
    speedup: f64,
}

/// Ring vs. heap on one workload, both copy modes, bit-for-bit parity.
fn measure_edf(name: &str, inst: &Instance) -> EdfResult {
    let (mut heap_total, mut ring_total) = (0.0, 0.0);
    for cancel in [false, true] {
        let mut heap = HeapEdf::new(inst.n_resources, cancel);
        let (sv_heap, heap_ms) = drive(&mut heap, inst);
        let mut ring = EdfTwoChoice::new(inst.n_resources, cancel);
        let (sv_ring, ring_ms) = drive(&mut ring, inst);
        assert_eq!(
            sv_heap, sv_ring,
            "{name}: ring EDF (cancel={cancel}) diverges from the heap baseline"
        );
        assert_eq!(
            heap.wasted_slots,
            ring.wasted_slots(),
            "{name}: wasted-slot counters diverge (cancel={cancel})"
        );
        heap_total += heap_ms;
        ring_total += ring_ms;
    }
    EdfResult {
        name: name.to_string(),
        heap_ms: heap_total,
        ring_ms: ring_total,
        speedup: heap_total / ring_total.max(1e-6),
    }
}

fn main() {
    let quick = report::quick_mode(&["WORD_CORE_QUICK"]);
    let (phases, rounds) = if quick { (6u32, 150u64) } else { (24, 600) };

    // Measurement 1: the BENCH_PR3 battery on the word-parallel core.
    let mut results = Vec::new();
    for (name, inst) in &round_engine_workloads(phases, rounds) {
        let r = measure_round_engine(name, inst);
        println!(
            "{:<42} {:>5} rounds x5 strategies: {:>8.1} ms fresh -> {:>7.1} ms delta, {:>5.1}x",
            r.name, r.rounds, r.fresh_ms, r.delta_ms, r.round_speedup,
        );
        results.push(r);
    }
    let round_speedup = results
        .iter()
        .map(|r| r.round_speedup)
        .fold(f64::INFINITY, f64::min);
    println!("round_speedup (worst-case across workloads): {round_speedup:.1}x");
    assert!(
        round_speedup >= 2.0,
        "acceptance: the word-parallel core must re-hold the >= 2x per-round \
         bar on every BENCH_PR3 workload, got {round_speedup:.1}x"
    );

    // Measurement 2: EDF bucket ring vs. the heap baseline. The second
    // workload's deadline (96) exceeds the ring's initial 64-bucket word,
    // so growth-by-rebuild is on the timed path.
    let edf_workloads: Vec<(String, Instance)> = vec![
        (
            format!("uniform-overload(n=32, d=8, rate=64, rounds={rounds})"),
            reqsched_workloads::uniform_two_choice(32, 8, 64, rounds, 7),
        ),
        (
            format!("zipf-long-deadline(n=32, d=96, rate=60, rounds={rounds})"),
            reqsched_workloads::zipf_replicated(32, 96, 100, 1.5, 60, rounds, 9),
        ),
    ];
    let mut edf_results = Vec::new();
    for (name, inst) in &edf_workloads {
        let r = measure_edf(name, inst);
        println!(
            "edf {:<46} {:>7.2} ms heap -> {:>6.2} ms ring, {:>4.2}x",
            r.name, r.heap_ms, r.ring_ms, r.speedup,
        );
        edf_results.push(r);
    }

    // Shared report schema (the serde stack is stubbed in dev containers).
    Report::new("word_core", quick)
        .set("parity", Value::Bool(true))
        .set("round_speedup", Value::f(round_speedup, 2))
        .set(
            "workloads",
            Value::Arr(
                results
                    .iter()
                    .map(|r| {
                        Value::Obj(
                            workload_row(&r.name, r.fresh_ms, r.delta_ms, r.round_speedup)
                                .set("requests", Value::u(r.requests as u64))
                                .set("rounds", Value::u(r.rounds))
                                .set("round_speedup", Value::f(r.round_speedup, 2))
                                .set(
                                    "strategies",
                                    Value::Arr(
                                        r.rows
                                            .iter()
                                            .map(|row| {
                                                Value::Obj(
                                                    Obj::new()
                                                        .set("name", Value::s(row.name))
                                                        .set("fresh_ms", Value::f(row.fresh_ms, 2))
                                                        .set("delta_ms", Value::f(row.delta_ms, 2))
                                                        .set("speedup", Value::f(row.speedup, 2)),
                                                )
                                            })
                                            .collect(),
                                    ),
                                ),
                        )
                    })
                    .collect(),
            ),
        )
        .set(
            "edf_ring",
            Value::Arr(
                edf_results
                    .iter()
                    .map(|r| Value::Obj(workload_row(&r.name, r.heap_ms, r.ring_ms, r.speedup)))
                    .collect(),
            ),
        )
        .write("BENCH_PR6.json");
}
