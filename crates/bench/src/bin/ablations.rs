//! Ablations of the design choices DESIGN.md calls out: what each rule or
//! mechanism is worth, measured as competitive ratios on the same inputs.
//!
//! * **Serve-now rule** (`A_eager` vs the `A_lazy_max` ablation): drop rule 1
//!   and keep only "maximum matching, keep scheduled" — procrastination
//!   wastes current slots forever.
//! * **Sibling cancellation** (independent-copy `EDF` vs `EDF-cancel`): the
//!   engineering fix that defuses Observation 3.2's worst case.
//! * **Hint-guided vs natural members**: the same adversarial input against
//!   the pessimal and the first-fit member of each class — how much of each
//!   lower bound is *existential* (member choice) rather than forced.
//! * **Rival exchange** (`A_local_eager` vs `A_local_fix`): what phase 2+3's
//!   seven extra communication rounds buy.
//!
//! Usage: `cargo run --release -p reqsched-bench --bin ablations [phases]`

use reqsched_adversary::{edf_worst, thm21, thm24, thm37};
use reqsched_core::{StrategyKind, TieBreak};
use reqsched_sim::{par_run, AnyStrategy, Job};
use reqsched_stats::Table;
use std::sync::Arc;

fn main() {
    let phases: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(10);
    let d = 6;

    let thm24_inst = Arc::new(thm24::scenario(d, phases).instance);
    let thm21_inst = Arc::new(thm21::scenario(d, phases).instance);
    let edf_inst = Arc::new(edf_worst::scenario(d, phases).instance);
    let thm37_inst = Arc::new(thm37::scenario(d, phases).instance);
    let flash = Arc::new(reqsched_workloads::flash_crowd(6, d, 3, 14, 12, 10, 60, 4));

    let jobs = vec![
        // Serve-now rule.
        Job::new(
            "thm2.4",
            Arc::clone(&thm24_inst),
            StrategyKind::AEager,
            TieBreak::FirstFit,
        ),
        Job::new(
            "thm2.4",
            Arc::clone(&thm24_inst),
            StrategyKind::LazyMax,
            TieBreak::LatestFit,
        ),
        Job::new(
            "flash",
            Arc::clone(&flash),
            StrategyKind::AEager,
            TieBreak::FirstFit,
        ),
        Job::new(
            "flash",
            Arc::clone(&flash),
            StrategyKind::LazyMax,
            TieBreak::LatestFit,
        ),
        // Sibling cancellation.
        Job::new(
            "edf-worst",
            Arc::clone(&edf_inst),
            StrategyKind::Edf {
                cancel_sibling: false,
            },
            TieBreak::FirstFit,
        ),
        Job::new(
            "edf-worst",
            Arc::clone(&edf_inst),
            StrategyKind::Edf {
                cancel_sibling: true,
            },
            TieBreak::FirstFit,
        ),
        // Member choice: pessimal vs natural on thm2.1.
        Job::new(
            "thm2.1",
            Arc::clone(&thm21_inst),
            StrategyKind::AFix,
            TieBreak::HintGuided,
        ),
        Job::new(
            "thm2.1",
            Arc::clone(&thm21_inst),
            StrategyKind::AFix,
            TieBreak::FirstFit,
        ),
        Job::new(
            "thm2.1",
            Arc::clone(&thm21_inst),
            StrategyKind::AFix,
            TieBreak::Random(1),
        ),
        // Rival exchange.
        Job::any("thm3.7", Arc::clone(&thm37_inst), AnyStrategy::LocalFix),
        Job::any("thm3.7", Arc::clone(&thm37_inst), AnyStrategy::LocalEager),
    ];
    let records = par_run(&jobs);

    let mut table = Table::new(&["input", "strategy", "tie-break", "served", "opt", "ratio"]);
    for r in &records {
        table.row(&[
            r.label.clone(),
            r.stats.strategy.clone(),
            r.tie.clone(),
            r.stats.served.to_string(),
            r.stats.opt.to_string(),
            format!("{:.4}", r.ratio),
        ]);
    }
    println!("Ablations (d = {d}, phases = {phases})\n");
    print!("{}", table.render());
    println!();
    println!("Readings: removing the serve-now rule costs on both adversarial");
    println!("and bursty inputs; sibling cancellation collapses EDF's factor-2");
    println!("input to ratio 1; the hint-guided member realizes the lower");
    println!("bound while natural members of the same class often dodge it;");
    println!("the rival-exchange phases erase A_local_fix's factor 2.");
}
