//! Chaos harness: sweep strategies × fault rates under seeded, replayable
//! fault plans and record how gracefully each strategy degrades.
//!
//! For every (strategy, chaos level, seed) cell the harness draws a
//! [`FaultPlan`] from the level's [`ChaosConfig`], runs the strategy under
//! the plan with the fault-aware streaming optimum
//! ([`run_fixed_faulty_traced`]), and emits one CSV row. The optimum sees
//! the same plan, so the reported ratio compares ALG and OPT on identical
//! masked feasibility graphs.
//!
//! Determinism is asserted, not assumed: the whole sweep runs **twice** from
//! scratch and the two CSV renderings must be byte-identical before anything
//! is written. Outputs land in `results/chaos.csv` and `BENCH_PR5.json` at
//! the workspace root.
//!
//! `BENCH_QUICK=1` (or the legacy alias `CHAOS_QUICK=1`) shrinks the sweep
//! to a smoke-test size (used by `scripts/bench_smoke.sh` and CI, where the
//! run is additionally armed with `--features audit` so every round boundary
//! replays the invariant auditor).
//!
//! `--shards N` (default 1) routes every supported matching-based global
//! strategy through the sharded round engine over a hash partition of the
//! resources; the EDF and local strategies keep the unsharded path. Sharding
//! is exact, so the CSV rows must not change except for the `shards` column
//! — the double-sweep determinism gate holds either way. `--shards auto`
//! resolves the count with [`ShardMap::auto_shards`] from the sweep's
//! resource count and a probe trace's straddler fraction (the chaos shapes
//! sit far below the calibrated shard floor, so `auto` resolves to 1).
//!
//! `--parallel-opt` computes every eligible cell's fault-aware optimum on
//! the pipelined sharded engine ([`run_fixed_pair_parallel_faulty`]) —
//! and **also** runs the cell's serial path, asserting the two `RunStats`
//! bit-identical before the row is emitted. The flag therefore cannot
//! change a byte of `results/chaos.csv`; it exists to prove exactly that,
//! on top of the double-sweep determinism gate which holds in both modes.

use reqsched_bench::report::{self, Obj, Report, Value};
use reqsched_core::{OnlineScheduler, ShardMap, SolveMode, StrategyKind, TieBreak};
use reqsched_faults::{ChaosConfig, FaultPlan};
use reqsched_sim::{
    run_fixed_faulty_traced, run_fixed_pair_parallel_faulty, AnyStrategy, ShardedScheduler,
};
use std::process::exit;
use std::sync::Arc;

/// A named fault-intensity level for the sweep.
struct ChaosLevel {
    name: &'static str,
    cfg: ChaosConfig,
}

/// The swept levels: a fault-free control plus three escalating rates.
/// `high` adds fabric delay and duplication on top of loss.
fn levels() -> [ChaosLevel; 4] {
    [
        ChaosLevel {
            name: "none",
            cfg: ChaosConfig::CALM,
        },
        ChaosLevel {
            name: "low",
            cfg: ChaosConfig {
                crash_prob: 0.02,
                mttr: 3.0,
                stall_prob: 0.02,
                loss: 0.02,
                ..ChaosConfig::CALM
            },
        },
        ChaosLevel {
            name: "medium",
            cfg: ChaosConfig {
                crash_prob: 0.05,
                mttr: 3.0,
                stall_prob: 0.05,
                loss: 0.05,
                ..ChaosConfig::CALM
            },
        },
        ChaosLevel {
            name: "high",
            cfg: ChaosConfig {
                crash_prob: 0.10,
                mttr: 3.0,
                stall_prob: 0.10,
                loss: 0.10,
                delay: 0.05,
                duplication: 0.02,
            },
        },
    ]
}

/// The strategies under chaos: two matching-based global strategies, EDF,
/// and both local protocols (whose retry/backoff paths only light up under
/// fabric faults). The workload is two-choice, which the local strategies
/// require.
fn strategies() -> [AnyStrategy; 5] {
    [
        AnyStrategy::Global(StrategyKind::ABalance, TieBreak::FirstFit),
        AnyStrategy::Global(StrategyKind::AEager, TieBreak::FirstFit),
        AnyStrategy::Global(
            StrategyKind::Edf {
                cancel_sibling: false,
            },
            TieBreak::FirstFit,
        ),
        AnyStrategy::LocalFix,
        AnyStrategy::LocalEager,
    ]
}

struct SweepShape {
    n: u32,
    d: u32,
    per_round: u32,
    rounds: u64,
    seeds: &'static [u64],
    /// Resource shards for the sharded round engine (`--shards N`). With
    /// `1` (the default) every strategy takes the plain unsharded path.
    shards: u32,
    /// `--parallel-opt`: compute eligible cells' optima on the pipelined
    /// sharded engine, self-checked against the serial path per cell.
    parallel_opt: bool,
}

/// Build the scheduler for one sweep cell. With `shards > 1`, supported
/// matching-based global strategies run through [`ShardedScheduler`] over a
/// hash partition; everything else (EDF, local protocols) is unaffected.
/// Sharding is exact, so only timings — never stats — may differ.
fn build_cell_scheduler(strat: &AnyStrategy, shape: &SweepShape) -> Box<dyn OnlineScheduler> {
    if shape.shards > 1 {
        if let AnyStrategy::Global(kind, tie) = strat {
            if ShardedScheduler::supported(*kind) {
                return Box::new(ShardedScheduler::new(
                    *kind,
                    shape.d,
                    *tie,
                    SolveMode::Delta,
                    ShardMap::hash(shape.n, shape.shards),
                ));
            }
        }
    }
    strat.build(shape.n, shape.d)
}

/// Run one sweep cell. Without `--parallel-opt` this is the plain serial
/// traced run (over whatever engine [`build_cell_scheduler`] picked). With
/// it, eligible cells (supported matching-based global strategies) run the
/// fully pipelined ALG∥OPT pair **and** the serial path, and the two stat
/// blocks must agree bit-for-bit — so the emitted CSV is identical either
/// way, by construction rather than by hope.
fn run_cell(
    strat: &AnyStrategy,
    shape: &SweepShape,
    inst: &reqsched_model::Instance,
    plan: &Arc<FaultPlan>,
) -> reqsched_sim::RunStats {
    let mut s = build_cell_scheduler(strat, shape);
    let serial = run_fixed_faulty_traced(s.as_mut(), inst, plan);
    if shape.parallel_opt {
        if let AnyStrategy::Global(kind, tie) = strat {
            if ShardedScheduler::supported(*kind) {
                let map = ShardMap::hash(shape.n, shape.shards);
                let stats =
                    run_fixed_pair_parallel_faulty(*kind, inst, *tie, SolveMode::Delta, map, plan);
                assert_eq!(
                    stats,
                    serial,
                    "{}: --parallel-opt cell diverges from the serial path",
                    strat.name()
                );
                return stats;
            }
        }
    }
    serial
}

/// One aggregated cell of the sweep (a strategy at a level, averaged over
/// seeds), kept for the JSON report.
struct Cell {
    strategy: String,
    level: &'static str,
    crash_prob: f64,
    goodput: f64,
    ratio: f64,
}

/// Run the full sweep once and render the CSV; also return the per-cell
/// aggregates. Pure function of the shape — calling it twice must produce
/// byte-identical CSV text.
fn sweep(shape: &SweepShape) -> (String, Vec<Cell>) {
    let mut csv = String::from(
        "strategy,level,crash_prob,loss,seed,injected,served,expired,opt,ratio,goodput,downtime_frac,comm_rounds,messages,shards\n",
    );
    let mut cells = Vec::new();
    for level in levels() {
        for strat in strategies() {
            let (mut goodput_sum, mut ratio_sum) = (0.0, 0.0);
            for &seed in shape.seeds {
                let inst = reqsched_workloads::uniform_two_choice(
                    shape.n,
                    shape.d,
                    shape.per_round,
                    shape.rounds,
                    seed,
                );
                let horizon = shape.rounds + u64::from(shape.d);
                // One plan per (level, seed): every strategy and the optimum
                // face the same fault trace.
                let plan = Arc::new(FaultPlan::random(
                    shape.n,
                    horizon,
                    &level.cfg,
                    seed ^ 0xC0FF_EE00,
                ));
                let stats = run_cell(&strat, shape, &inst, &plan);
                // Floor `served` at 1 so a fully starved run reports a large
                // finite ratio instead of poisoning the JSON with `inf`.
                let ratio = stats.opt as f64 / stats.served.max(1) as f64;
                let goodput = stats.served as f64 / (stats.injected.max(1)) as f64;
                let downtime =
                    plan.downtime_slots(horizon) as f64 / (f64::from(shape.n) * horizon as f64);
                // The last column records which engine served the cell: the
                // shard count for sharded runs, 1 for the unsharded path
                // (including strategies the sharded engine does not support).
                let cell_shards = if shape.shards > 1
                    && matches!(&strat, AnyStrategy::Global(kind, _) if ShardedScheduler::supported(*kind))
                {
                    shape.shards
                } else {
                    1
                };
                csv.push_str(&format!(
                    "{},{},{:.3},{:.3},{},{},{},{},{},{:.4},{:.4},{:.4},{},{},{}\n",
                    strat.name(),
                    level.name,
                    level.cfg.crash_prob,
                    level.cfg.loss,
                    seed,
                    stats.injected,
                    stats.served,
                    stats.expired,
                    stats.opt,
                    ratio,
                    goodput,
                    downtime,
                    stats.comm_rounds,
                    stats.messages,
                    cell_shards,
                ));
                goodput_sum += goodput;
                ratio_sum += ratio;
            }
            let k = shape.seeds.len() as f64;
            cells.push(Cell {
                strategy: strat.name(),
                level: level.name,
                crash_prob: level.cfg.crash_prob,
                goodput: goodput_sum / k,
                ratio: ratio_sum / k,
            });
        }
    }
    (csv, cells)
}

fn fail(msg: &str) -> ! {
    eprintln!("chaos: {msg}");
    exit(2);
}

/// `--shards` argument: a fixed count, or `auto` (resolved against the
/// sweep shape once that is known).
enum ShardArg {
    Fixed(u32),
    Auto,
}

/// Strict CLI parsing: the recognised flags are `--shards N|auto` (also
/// `--shards=…`) and `--parallel-opt`; anything else — unknown flags, a
/// missing or non-positive value — exits 2, so typos never silently run
/// the default sweep.
fn parse_args() -> (ShardArg, bool) {
    fn parse_count(v: &str) -> ShardArg {
        if v == "auto" {
            return ShardArg::Auto;
        }
        match v.parse::<u32>() {
            Ok(s) if s >= 1 => ShardArg::Fixed(s),
            _ => fail(&format!(
                "--shards expects a positive integer or \"auto\", got {v:?}"
            )),
        }
    }
    let mut shards = ShardArg::Fixed(1);
    let mut parallel_opt = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--shards" {
            match args.next() {
                Some(v) => shards = parse_count(&v),
                None => fail("--shards expects a value"),
            }
        } else if let Some(v) = arg.strip_prefix("--shards=") {
            shards = parse_count(v);
        } else if arg == "--parallel-opt" {
            parallel_opt = true;
        } else {
            fail(&format!(
                "unknown argument {arg:?} (usage: chaos [--shards N|auto] [--parallel-opt])"
            ));
        }
    }
    (shards, parallel_opt)
}

fn main() {
    let (shard_arg, parallel_opt) = parse_args();
    let quick = report::quick_mode(&["CHAOS_QUICK"]);
    let mut shape = if quick {
        SweepShape {
            n: 6,
            d: 3,
            per_round: 5,
            rounds: 60,
            seeds: &[7],
            shards: 1,
            parallel_opt,
        }
    } else {
        SweepShape {
            n: 16,
            d: 6,
            per_round: 14,
            rounds: 400,
            seeds: &[7, 11, 13],
            shards: 1,
            parallel_opt,
        }
    };
    shape.shards = match shard_arg {
        ShardArg::Fixed(s) => s,
        ShardArg::Auto => {
            // Resolve against a probe instance from the first seed: same
            // resource count and hash layout as every cell of the sweep.
            const AUTO_REQUESTED: u32 = 4;
            let probe = reqsched_workloads::uniform_two_choice(
                shape.n,
                shape.d,
                shape.per_round,
                shape.rounds,
                shape.seeds[0],
            );
            let predicted =
                ShardMap::hash(shape.n, AUTO_REQUESTED).straddler_fraction(&probe.trace);
            let effective = ShardMap::auto_shards(shape.n, AUTO_REQUESTED, predicted);
            eprintln!(
                "--shards auto: n={}, predicted straddler fraction {predicted:.3} -> {effective} shard(s)",
                shape.n
            );
            effective
        }
    };

    // Determinism gate: two complete, independent sweeps must agree to the
    // byte before anything is published.
    let (csv_a, cells) = sweep(&shape);
    let (csv_b, _) = sweep(&shape);
    assert_eq!(
        csv_a, csv_b,
        "chaos sweep is nondeterministic: two runs from the same seeds disagree"
    );

    for line in csv_a.lines() {
        println!("{line}");
    }

    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let results_dir = format!("{root}/results");
    if let Err(e) = std::fs::create_dir_all(&results_dir) {
        fail(&format!("cannot create {results_dir}: {e}"));
    }
    let csv_path = format!("{results_dir}/chaos.csv");
    if let Err(e) = std::fs::write(&csv_path, &csv_a) {
        fail(&format!("cannot write {csv_path}: {e}"));
    }
    println!("wrote {csv_path}");

    // Shared report schema (the serde stack is stubbed in dev containers).
    let level_list = levels();
    let strat_list = strategies();
    Report::new("chaos", quick)
        .set("deterministic", Value::Bool(true))
        .set("strategies", Value::u(strat_list.len() as u64))
        .set(
            "fault_levels",
            Value::u(level_list.iter().filter(|l| l.cfg.crash_prob > 0.0).count() as u64),
        )
        .set(
            "shape",
            Value::Obj(
                Obj::new()
                    .set("n", Value::u(shape.n as u64))
                    .set("d", Value::u(shape.d as u64))
                    .set("per_round", Value::u(shape.per_round as u64))
                    .set("rounds", Value::u(shape.rounds as u64))
                    .set("seeds", Value::u(shape.seeds.len() as u64))
                    .set("shards", Value::u(shape.shards as u64))
                    .set("parallel_opt", Value::Bool(shape.parallel_opt)),
            ),
        )
        .set(
            "cells",
            Value::Arr(
                cells
                    .iter()
                    .map(|c| {
                        Value::Obj(
                            Obj::new()
                                .set("strategy", Value::s(&*c.strategy))
                                .set("level", Value::s(c.level))
                                .set("crash_prob", Value::f(c.crash_prob, 3))
                                .set("goodput", Value::f(c.goodput, 4))
                                .set("ratio", Value::f(c.ratio, 4)),
                        )
                    })
                    .collect(),
            ),
        )
        .write("BENCH_PR5.json");
}
