//! Derived figure F-2: communication cost of the local strategies.
//!
//! For `A_local_fix` and `A_local_eager` across workloads, print the
//! maximum and mean communication rounds per scheduling round (the paper's
//! claims: 2 and ≤ 9), message volume, and the achieved ratio.
//!
//! Usage: `cargo run --release -p reqsched-bench --bin local_comm`

use reqsched_bench::{local_comm_profile, validation_battery};
use reqsched_sim::AnyStrategy;
use reqsched_stats::{Summary, Table};

fn main() {
    let mut table = Table::new(&[
        "strategy",
        "workload",
        "d",
        "comm rounds/round (mean)",
        "comm rounds/round (max)",
        "messages/round (mean)",
        "ratio",
    ]);
    for d in [2u32, 4, 8] {
        for (name, inst) in validation_battery(d, 4242) {
            for strat in [AnyStrategy::LocalFix, AnyStrategy::LocalEager] {
                let (profile, ratio) = local_comm_profile(strat, &inst);
                let crs: Vec<f64> = profile.iter().map(|&(c, _)| c as f64).collect();
                let msgs: Vec<f64> = profile.iter().map(|&(_, m)| m as f64).collect();
                let cr_sum = Summary::of(&crs);
                let msg_sum = Summary::of(&msgs);
                table.row(&[
                    strat.name(),
                    name.clone(),
                    d.to_string(),
                    format!("{:.2}", cr_sum.mean),
                    format!("{:.0}", cr_sum.max),
                    format!("{:.1}", msg_sum.mean),
                    format!("{ratio:.4}"),
                ]);
            }
        }
    }
    println!("Local strategies: communication cost per scheduling round");
    println!("(paper: A_local_fix = 2 comm rounds, A_local_eager ≤ 9)\n");
    print!("{}", table.render());
}
