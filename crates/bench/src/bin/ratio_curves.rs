//! Derived figure F-1: measured competitive ratio versus deadline `d` for
//! every global strategy on its own adversarial generator — Table 1 as
//! curves. Emits CSV (columns: strategy, d, measured ratio, paper LB,
//! paper UB).
//!
//! Usage: `cargo run --release -p reqsched-bench --bin ratio_curves [phases] [--trace]`
//!
//! With `--trace`, additionally dump the per-round live-ratio trace of every
//! global strategy at `d = 8` (streaming prefix optimum vs. cumulative
//! services, one row per simulated round) to `results/ratio_trace.csv`.

use reqsched_bench::{ratio_curve, ratio_trace};
use reqsched_core::StrategyKind;
use reqsched_stats::render_csv;

/// Write the per-round ratio trace CSV for every global strategy.
fn dump_trace(phases: u32) -> std::io::Result<()> {
    const TRACE_D: u32 = 8;
    let mut rows: Vec<Vec<String>> = vec![vec![
        "strategy".into(),
        "d".into(),
        "round".into(),
        "opt_prefix".into(),
        "alg_cum".into(),
        "ratio".into(),
    ]];
    for kind in StrategyKind::GLOBAL {
        for p in ratio_trace(kind, TRACE_D, phases) {
            rows.push(vec![
                kind.name().to_string(),
                TRACE_D.to_string(),
                p.round.to_string(),
                p.opt_prefix.to_string(),
                p.alg_cum.to_string(),
                format!("{:.5}", p.ratio),
            ]);
        }
    }
    std::fs::create_dir_all("results")?;
    std::fs::write("results/ratio_trace.csv", render_csv(&rows))?;
    eprintln!("wrote results/ratio_trace.csv ({} rows)", rows.len() - 1);
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let phases: u32 = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .and_then(|a| a.parse().ok())
        .unwrap_or(12);
    if args.iter().any(|a| a == "--trace") {
        dump_trace(phases).expect("write ratio trace");
    }
    let ds: Vec<u32> = (2..=16).collect();
    let mut rows: Vec<Vec<String>> = vec![vec![
        "strategy".into(),
        "d".into(),
        "measured".into(),
        "paper_lb".into(),
        "paper_ub".into(),
    ]];
    for kind in StrategyKind::GLOBAL {
        for (d, ratio) in ratio_curve(kind, &ds, phases) {
            rows.push(vec![
                kind.name().to_string(),
                d.to_string(),
                format!("{ratio:.5}"),
                kind.lower_bound(d)
                    .map(|v| format!("{v:.5}"))
                    .unwrap_or_default(),
                kind.upper_bound(d)
                    .map(|v| format!("{v:.5}"))
                    .unwrap_or_default(),
            ]);
        }
    }
    print!("{}", render_csv(&rows));
}
