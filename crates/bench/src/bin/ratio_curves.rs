//! Derived figure F-1: measured competitive ratio versus deadline `d` for
//! every global strategy on its own adversarial generator — Table 1 as
//! curves. Emits CSV (columns: strategy, d, measured ratio, paper LB,
//! paper UB).
//!
//! Usage: `cargo run --release -p reqsched-bench --bin ratio_curves \
//!     [phases] [--trace] [--parallel-opt] [--out <path>]`
//!
//! The curves CSV is printed to stdout *and* written to `--out` (default:
//! the repository's `results/ratio_curves.csv`, so a plain run regenerates
//! the checked-in artifact from any working directory). With `--trace`,
//! additionally dump the per-round live-ratio trace of every global
//! strategy at `d = 8` (streaming prefix optimum vs. cumulative services,
//! one row per simulated round) to `ratio_trace.csv` next to the curves
//! file.
//!
//! With `--parallel-opt`, every traced run computes its prefix optimum on
//! the pipelined sharded engine instead of the inline serial one — and
//! **also** runs the serial engine, asserting the two `RunStats` (every
//! `opt_prefix` entry included) bit-identical before anything is emitted.
//! The flag therefore cannot change a byte of either CSV; it exists to
//! prove exactly that on the checked-in artifacts.

use reqsched_bench::{
    ratio_curve, ratio_curve_parallel_opt, ratio_trace, ratio_trace_parallel_opt,
};
use reqsched_core::StrategyKind;
use reqsched_stats::render_csv;
use std::path::{Path, PathBuf};

/// Default output file: `results/ratio_curves.csv` at the workspace root.
fn default_out() -> PathBuf {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
        .join("results")
        .join("ratio_curves.csv")
}

fn fail(msg: &str) -> ! {
    eprintln!("ratio_curves: {msg}");
    eprintln!("usage: ratio_curves [phases] [--trace] [--parallel-opt] [--out <path>]");
    std::process::exit(2);
}

/// Extract `--out <path>` from the argument list, consuming both tokens.
fn take_out_flag(args: &mut Vec<String>) -> PathBuf {
    match args.iter().position(|a| a == "--out") {
        Some(i) if i + 1 < args.len() => {
            args.remove(i);
            PathBuf::from(args.remove(i))
        }
        Some(_) => fail("--out needs a path"),
        None => default_out(),
    }
}

/// Strict parse of what remains after `--out`: one optional positive
/// integer (`phases`) and the `--trace` / `--parallel-opt` flags. Garbage
/// is rejected with a nonzero exit, never silently defaulted.
fn parse_args(args: &[String]) -> (u32, bool, bool) {
    let mut trace = false;
    let mut parallel_opt = false;
    let mut positional: Vec<&str> = Vec::new();
    for a in args {
        match a.as_str() {
            "--trace" => trace = true,
            "--parallel-opt" => parallel_opt = true,
            s if s.starts_with("--") => fail(&format!("unknown flag {s:?}")),
            s => positional.push(s),
        }
    }
    if positional.len() > 1 {
        fail(&format!(
            "expected at most one positional argument (phases), got {positional:?}"
        ));
    }
    let phases = match positional.first() {
        None => 12,
        Some(p) => match p.parse::<u32>() {
            Ok(v) if v > 0 => v,
            _ => fail(&format!(
                "invalid phases value {p:?}: expected a positive integer"
            )),
        },
    };
    (phases, trace, parallel_opt)
}

/// Write the per-round ratio trace CSV for every global strategy.
fn dump_trace(phases: u32, parallel_opt: bool, out: &Path) -> std::io::Result<()> {
    const TRACE_D: u32 = 8;
    let mut rows: Vec<Vec<String>> = vec![vec![
        "strategy".into(),
        "d".into(),
        "round".into(),
        "opt_prefix".into(),
        "alg_cum".into(),
        "ratio".into(),
    ]];
    for kind in StrategyKind::GLOBAL {
        let points = if parallel_opt {
            ratio_trace_parallel_opt(kind, TRACE_D, phases)
        } else {
            ratio_trace(kind, TRACE_D, phases)
        };
        for p in points {
            rows.push(vec![
                kind.name().to_string(),
                TRACE_D.to_string(),
                p.round.to_string(),
                p.opt_prefix.to_string(),
                p.alg_cum.to_string(),
                format!("{:.5}", p.ratio),
            ]);
        }
    }
    if let Some(dir) = out.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(out, render_csv(&rows))?;
    eprintln!("wrote {} ({} rows)", out.display(), rows.len() - 1);
    Ok(())
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let out = take_out_flag(&mut args);
    let (phases, trace, parallel_opt) = parse_args(&args);
    if trace {
        let trace_out = out.with_file_name("ratio_trace.csv");
        if let Err(e) = dump_trace(phases, parallel_opt, &trace_out) {
            fail(&format!("cannot write {}: {e}", trace_out.display()));
        }
    }
    let ds: Vec<u32> = (2..=16).collect();
    let mut rows: Vec<Vec<String>> = vec![vec![
        "strategy".into(),
        "d".into(),
        "measured".into(),
        "paper_lb".into(),
        "paper_ub".into(),
    ]];
    for kind in StrategyKind::GLOBAL {
        let curve = if parallel_opt {
            ratio_curve_parallel_opt(kind, &ds, phases)
        } else {
            ratio_curve(kind, &ds, phases)
        };
        for (d, ratio) in curve {
            rows.push(vec![
                kind.name().to_string(),
                d.to_string(),
                format!("{ratio:.5}"),
                kind.lower_bound(d)
                    .map(|v| format!("{v:.5}"))
                    .unwrap_or_default(),
                kind.upper_bound(d)
                    .map(|v| format!("{v:.5}"))
                    .unwrap_or_default(),
            ]);
        }
    }
    let csv = render_csv(&rows);
    print!("{csv}");
    if let Some(dir) = out.parent() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            fail(&format!("cannot create {}: {e}", dir.display()));
        }
    }
    if let Err(e) = std::fs::write(&out, &csv) {
        fail(&format!("cannot write {}: {e}", out.display()));
    }
    eprintln!("wrote {} ({} rows)", out.display(), rows.len() - 1);
}
