//! Derived figure F-1: measured competitive ratio versus deadline `d` for
//! every global strategy on its own adversarial generator — Table 1 as
//! curves. Emits CSV (columns: strategy, d, measured ratio, paper LB,
//! paper UB).
//!
//! Usage: `cargo run --release -p reqsched-bench --bin ratio_curves [phases]`

use reqsched_bench::ratio_curve;
use reqsched_core::StrategyKind;
use reqsched_stats::render_csv;

fn main() {
    let phases: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(12);
    let ds: Vec<u32> = (2..=16).collect();
    let mut rows: Vec<Vec<String>> = vec![vec![
        "strategy".into(),
        "d".into(),
        "measured".into(),
        "paper_lb".into(),
        "paper_ub".into(),
    ]];
    for kind in StrategyKind::GLOBAL {
        for (d, ratio) in ratio_curve(kind, &ds, phases) {
            rows.push(vec![
                kind.name().to_string(),
                d.to_string(),
                format!("{ratio:.5}"),
                kind.lower_bound(d)
                    .map(|v| format!("{v:.5}"))
                    .unwrap_or_default(),
                kind.upper_bound(d)
                    .map(|v| format!("{v:.5}"))
                    .unwrap_or_default(),
            ]);
        }
    }
    print!("{}", render_csv(&rows));
}
