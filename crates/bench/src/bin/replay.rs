//! Replay an archived instance (JSON, as produced by serializing
//! [`Instance`]) against any strategy and print the run statistics plus
//! an ASCII schedule timeline.
//!
//! ```text
//! cargo run --release -p reqsched-bench --bin replay -- <instance.json> \
//!     [strategy] [tie] [--out <path>]
//! # strategy ∈ {edf, edf-cancel, a_fix, a_current, a_fix_balance, a_eager,
//! #             a_balance, a_lazy_max, local_fix, local_eager}   (default a_balance)
//! # tie      ∈ {first-fit, latest-fit, hint, random:<seed>}      (default first-fit)
//! ```
//!
//! The replay report (stats, live-ratio marks, timeline) is printed and
//! also written to `--out` (default: the repository's `results/replay.txt`,
//! so a plain run regenerates the checked-in artifact from any working
//! directory).
//!
//! With no arguments, a demo instance (Theorem 2.1, d = 4) is generated,
//! archived to a temp file, re-loaded and replayed — a self-contained
//! round-trip demonstration.

use reqsched_core::{StrategyKind, TieBreak};
use reqsched_model::Instance;
use reqsched_sim::{run_fixed_traced, AnyStrategy};
use reqsched_stats::render_timeline;
use std::fmt::Write as _;
use std::path::PathBuf;

/// Default report file: `results/replay.txt` at the workspace root.
fn default_out() -> PathBuf {
    std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
        .join("results")
        .join("replay.txt")
}

fn parse_strategy(name: &str, tie: TieBreak) -> Option<AnyStrategy> {
    let kind = match name {
        "edf" => StrategyKind::Edf {
            cancel_sibling: false,
        },
        "edf-cancel" => StrategyKind::Edf {
            cancel_sibling: true,
        },
        "edf-1" => StrategyKind::EdfSingle,
        "a_fix" => StrategyKind::AFix,
        "a_current" => StrategyKind::ACurrent,
        "a_fix_balance" => StrategyKind::AFixBalance,
        "a_eager" => StrategyKind::AEager,
        "a_balance" => StrategyKind::ABalance,
        "a_lazy_max" => StrategyKind::LazyMax,
        "local_fix" => return Some(AnyStrategy::LocalFix),
        "local_eager" => return Some(AnyStrategy::LocalEager),
        _ => return None,
    };
    Some(AnyStrategy::Global(kind, tie))
}

fn parse_tie(s: &str) -> Result<TieBreak, String> {
    match s {
        "first-fit" => Ok(TieBreak::FirstFit),
        "latest-fit" => Ok(TieBreak::LatestFit),
        "hint" => Ok(TieBreak::HintGuided),
        other => match other.strip_prefix("random:") {
            Some(seed) => seed
                .parse()
                .map(TieBreak::Random)
                .map_err(|_| format!("invalid random tie-break seed {seed:?}")),
            None => Err(format!(
                "unknown tie-break {other:?} (try: first-fit, latest-fit, hint, random:<seed>)"
            )),
        },
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let fail = |msg: String| -> ! {
        eprintln!("error: {msg}");
        std::process::exit(2);
    };
    let out = match args.iter().position(|a| a == "--out") {
        Some(i) if i + 1 < args.len() => {
            args.remove(i);
            PathBuf::from(args.remove(i))
        }
        Some(_) => fail("--out needs a path".into()),
        None => default_out(),
    };
    if args.len() > 3 {
        fail(format!(
            "unexpected extra arguments {:?} (usage: replay [instance.json] [strategy] [tie] [--out <path>])",
            &args[3..]
        ));
    }
    let inst: Instance = match args.first() {
        Some(path) => {
            let json = std::fs::read_to_string(path)
                .unwrap_or_else(|e| fail(format!("cannot read {path}: {e}")));
            serde_json::from_str(&json)
                .unwrap_or_else(|e| fail(format!("{path} is not an instance: {e}")))
        }
        None => {
            // Self-contained demo: archive + reload Theorem 2.1's trap.
            let inst = reqsched_adversary::thm21::scenario(4, 2).instance;
            let path = std::env::temp_dir().join("reqsched-demo-instance.json");
            let json = serde_json::to_string_pretty(&inst)
                .unwrap_or_else(|e| fail(format!("cannot serialize demo instance: {e}")));
            if let Err(e) = std::fs::write(&path, json) {
                fail(format!("cannot write {}: {e}", path.display()));
            }
            println!("archived demo instance to {}", path.display());
            let reread = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| fail(format!("cannot re-read {}: {e}", path.display())));
            match serde_json::from_str(&reread) {
                Ok(reloaded) => reloaded,
                // Offline dev containers vendor a stub serde_json whose
                // deserializer always errors; keep the demo self-contained
                // there by replaying the in-memory instance instead. The
                // reload path is exercised against the real serde stack.
                Err(e) if reqsched_testsupport::serde_is_stubbed() => {
                    eprintln!("note: reload skipped (stub serde_json): {e}");
                    inst
                }
                Err(e) => fail(format!("demo reload failed: {e}")),
            }
        }
    };

    let tie = parse_tie(args.get(2).map(String::as_str).unwrap_or("first-fit"))
        .unwrap_or_else(|e| fail(e));
    let strat_name = args.get(1).map(String::as_str).unwrap_or("a_balance");
    let strat = parse_strategy(strat_name, tie).unwrap_or_else(|| {
        fail(format!(
            "unknown strategy {strat_name:?} (try: edf, edf-cancel, edf-1, a_fix, \
             a_current, a_fix_balance, a_eager, a_balance, a_lazy_max, local_fix, \
             local_eager)"
        ))
    });

    let mut s = strat.build(inst.n_resources, inst.d);
    // Traced replay: the streaming engine maintains the prefix optimum
    // during the run, giving both the final OPT and the live ratio curve
    // without a horizon solve.
    let stats = run_fixed_traced(s.as_mut(), &inst);

    let mut report = String::new();
    let _ = writeln!(
        report,
        "{} on n={}, d={}, {} requests",
        stats.strategy, inst.n_resources, inst.d, stats.injected
    );
    let _ = writeln!(
        report,
        "served {} / OPT {}  (ratio {:.4}), {} expired",
        stats.served,
        stats.opt,
        stats.ratio(),
        stats.expired
    );
    let curve = stats.live_ratios();
    if !curve.is_empty() {
        let at = |frac: f64| {
            let idx = ((curve.len() - 1) as f64 * frac) as usize;
            (idx, curve[idx])
        };
        let marks: Vec<String> = [0.25, 0.5, 0.75, 1.0]
            .iter()
            .map(|&f| {
                let (t, r) = at(f);
                format!("round {t}: {r:.4}")
            })
            .collect();
        let _ = writeln!(
            report,
            "live ratio (streaming OPT prefix): {}",
            marks.join(", ")
        );
    }
    if stats.comm_rounds > 0 {
        let _ = writeln!(
            report,
            "communication: {} rounds, {} messages",
            stats.comm_rounds, stats.messages
        );
    }
    let tags: Vec<u32> = inst.trace.requests().iter().map(|r| r.tag).collect();
    let horizon = inst.trace.service_horizon().get();
    if horizon <= 200 && inst.n_resources <= 32 {
        let _ = writeln!(
            report,
            "\n{}",
            render_timeline(inst.n_resources, horizon, &stats.assignment, &tags, true,)
        );
    }
    println!("\n{report}");
    if let Some(dir) = out.parent() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            fail(format!("cannot create {}: {e}", dir.display()));
        }
    }
    if let Err(e) = std::fs::write(&out, &report) {
        fail(format!("cannot write {}: {e}", out.display()));
    }
    eprintln!("wrote {}", out.display());
}
