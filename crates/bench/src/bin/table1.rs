//! Regenerate the paper's **Table 1**: for every strategy and several
//! deadlines, print the paper's lower/upper bounds next to the ratios we
//! measure by replaying each theorem's adversarial construction against the
//! pessimal strategy member, and the worst ratio observed across the
//! upper-bound validation battery.
//!
//! Usage: `cargo run --release -p reqsched-bench --bin table1 [phases] [--csv]`

use reqsched_bench::{extra_rows, table1_rows};
use reqsched_stats::Table;

fn fmt_opt(x: Option<f64>) -> String {
    x.map(|v| format!("{v:.4}")).unwrap_or_else(|| "—".into())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let phases: u32 = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .and_then(|a| a.parse().ok())
        .unwrap_or(12);
    let csv = args.iter().any(|a| a == "--csv");

    let mut table = Table::new(&[
        "strategy",
        "d",
        "paper LB",
        "measured LB",
        "paper UB",
        "worst observed",
        "LB generator",
    ]);
    for r in table1_rows(phases).into_iter().chain(extra_rows(phases)) {
        let ub_ok = r.paper_ub.is_none_or(|ub| r.measured_worst <= ub + 1e-9);
        table.row(&[
            r.strategy.clone(),
            r.d.to_string(),
            fmt_opt(r.paper_lb),
            format!("{:.4}", r.measured_lb),
            fmt_opt(r.paper_ub),
            format!(
                "{:.4}{}",
                r.measured_worst,
                if ub_ok { "" } else { "  ** ABOVE UB **" }
            ),
            r.generator.clone(),
        ]);
    }
    if csv {
        print!("{}", table.to_csv());
    } else {
        println!("Table 1 reproduction (phases = {phases})");
        println!("measured LB: pessimal (hint-guided) member on its theorem's input;");
        println!("worst observed: max ratio across the upper-bound validation battery\n");
        print!("{}", table.render());
    }
}
