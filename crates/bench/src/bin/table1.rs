//! Regenerate the paper's **Table 1**: for every strategy and several
//! deadlines, print the paper's lower/upper bounds next to the ratios we
//! measure by replaying each theorem's adversarial construction against the
//! pessimal strategy member, and the worst ratio observed across the
//! upper-bound validation battery.
//!
//! Usage: `cargo run --release -p reqsched-bench --bin table1 [phases] [--csv]`

use reqsched_bench::{extra_rows, table1_rows};
use reqsched_stats::Table;

fn fmt_opt(x: Option<f64>) -> String {
    x.map(|v| format!("{v:.4}")).unwrap_or_else(|| "—".into())
}

fn fail(msg: &str) -> ! {
    eprintln!("table1: {msg}");
    eprintln!("usage: table1 [phases] [--csv]");
    std::process::exit(2);
}

/// Strict CLI parse: one optional positive-integer positional (`phases`)
/// and the `--csv` flag. Anything else is an error, not a silent default.
fn parse_args(args: &[String]) -> (u32, bool) {
    let mut csv = false;
    let mut positional: Vec<&str> = Vec::new();
    for a in args {
        match a.as_str() {
            "--csv" => csv = true,
            s if s.starts_with("--") => fail(&format!("unknown flag {s:?}")),
            s => positional.push(s),
        }
    }
    if positional.len() > 1 {
        fail(&format!(
            "expected at most one positional argument (phases), got {positional:?}"
        ));
    }
    let phases = match positional.first() {
        None => 12,
        Some(p) => match p.parse::<u32>() {
            Ok(v) if v > 0 => v,
            _ => fail(&format!(
                "invalid phases value {p:?}: expected a positive integer"
            )),
        },
    };
    (phases, csv)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (phases, csv) = parse_args(&args);

    let mut table = Table::new(&[
        "strategy",
        "d",
        "paper LB",
        "measured LB",
        "paper UB",
        "worst observed",
        "LB generator",
    ]);
    for r in table1_rows(phases).into_iter().chain(extra_rows(phases)) {
        let ub_ok = r.paper_ub.is_none_or(|ub| r.measured_worst <= ub + 1e-9);
        table.row(&[
            r.strategy.clone(),
            r.d.to_string(),
            fmt_opt(r.paper_lb),
            format!("{:.4}", r.measured_lb),
            fmt_opt(r.paper_ub),
            format!(
                "{:.4}{}",
                r.measured_worst,
                if ub_ok { "" } else { "  ** ABOVE UB **" }
            ),
            r.generator.clone(),
        ]);
    }
    if csv {
        print!("{}", table.to_csv());
    } else {
        println!("Table 1 reproduction (phases = {phases})");
        println!("measured LB: pessimal (hint-guided) member on its theorem's input;");
        println!("worst observed: max ratio across the upper-bound validation battery\n");
        print!("{}", table.render());
    }
}
