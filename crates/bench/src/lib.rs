//! # reqsched-bench
//!
//! The experiment harness that regenerates the paper's evaluation artifacts:
//!
//! * **Table 1** (the paper's only table) — [`table1_rows`] replays every
//!   lower-bound construction against the hint-guided (pessimal) member of
//!   its target strategy and validates every upper bound against a workload
//!   battery; the `table1` binary renders the comparison.
//! * **Figure F-1** (derived) — [`ratio_curve`] produces measured
//!   ratio-vs-`d` series per strategy (`ratio_curves` binary).
//! * **Figure F-2** (derived) — [`local_comm_profile`] measures
//!   communication rounds and messages per scheduling round for the local
//!   strategies (`local_comm` binary).
//!
//! Criterion micro/macro benchmarks live in `benches/`.

pub mod report;
pub mod roundbench;

use rayon::prelude::*;
use reqsched_adversary::{edf_worst, thm21, thm22, thm23, thm24, thm25, thm26, thm37};
use reqsched_core::{ShardMap, StrategyKind, TieBreak};
use reqsched_model::{Instance, Round};
use reqsched_sim::{
    par_run_with_cache, run_fixed_traced, run_fixed_traced_parallel, run_source_traced,
    AnyStrategy, Job, OptCache, RunStats,
};
use std::sync::Arc;

/// One rendered row of the Table-1 reproduction.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Strategy name (paper notation).
    pub strategy: String,
    /// Deadline parameter of the measurement.
    pub d: u32,
    /// The paper's lower bound for this `d`, if stated.
    pub paper_lb: Option<f64>,
    /// Measured ratio of the pessimal member on its adversarial input.
    pub measured_lb: f64,
    /// The paper's upper bound for this `d`.
    pub paper_ub: Option<f64>,
    /// Worst measured ratio across the validation battery (must be ≤ UB).
    pub measured_worst: f64,
    /// Name of the generator that produced `measured_lb`.
    pub generator: String,
}

/// The deadline values the Table-1 harness measures at.
pub const TABLE1_DS: [u32; 4] = [2, 4, 6, 8];

fn lb_scenario(kind: StrategyKind, d: u32, phases: u32) -> (Instance, String) {
    match kind {
        StrategyKind::AFix => {
            let s = thm21::scenario(d, phases);
            (s.instance, "thm2.1".into())
        }
        StrategyKind::ACurrent => {
            // Theorem 2.2 fixes d = lcm(1..l-1)·scale; pick the largest l
            // (≤ 6) admissible for the requested d, falling back to the
            // shared d=2 trap (Theorem 2.4) when none is.
            let l = if d == 2 {
                // Paper's Table-1 row for d = 2 (4/3) comes from Thm 2.4.
                0
            } else {
                (3..=6u32)
                    .rev()
                    .find(|&l| d.is_multiple_of(thm22::deadline_for(l, 1)))
                    .unwrap_or(0)
            };
            if l >= 3 {
                let scale = d / thm22::deadline_for(l, 1);
                let s = thm22::scenario(l, scale, phases.min(4));
                (s.instance, format!("thm2.2(l={l})"))
            } else {
                let s = thm24::scenario(d & !1, phases);
                (s.instance, "thm2.4".into())
            }
        }
        StrategyKind::AFixBalance => {
            if d == 2 {
                // Theorem 2.3's bound degenerates to 1 at d = 2; the paper's
                // 4/3 row comes from the shared Theorem 2.4 construction.
                let s = thm24::scenario(2, phases);
                (s.instance, "thm2.4(d=2)".into())
            } else {
                let s = thm23::scenario(d & !1, phases);
                (s.instance, "thm2.3".into())
            }
        }
        StrategyKind::AEager => {
            let s = thm24::scenario(d & !1, phases);
            (s.instance, "thm2.4".into())
        }
        StrategyKind::ABalance => {
            if d == 2 {
                let s = thm24::scenario(2, phases);
                (s.instance, "thm2.4(d=2)".into())
            } else {
                // d = 3x - 1: pick the closest admissible x. Many groups
                // amortize the shared S'/S'' maintenance traffic (the
                // paper's n -> infinity).
                let x = (d + 1).div_ceil(3).max(1);
                let s = thm25::scenario(x, 16, phases.min(8));
                (s.instance, format!("thm2.5(x={x})"))
            }
        }
        _ => unreachable!("only the global Table-1 strategies have LB rows"),
    }
}

/// The validation battery for upper bounds at deadline `d`.
pub fn validation_battery(d: u32, seed: u64) -> Vec<(String, Arc<Instance>)> {
    let mut out: Vec<(String, Arc<Instance>)> = Vec::new();
    if d >= 2 && d.is_multiple_of(2) {
        out.push(("thm2.1".into(), Arc::new(thm21::scenario(d, 6).instance)));
        out.push(("thm2.3".into(), Arc::new(thm23::scenario(d, 6).instance)));
        out.push(("thm2.4".into(), Arc::new(thm24::scenario(d, 6).instance)));
    }
    out.push(("thm3.7".into(), Arc::new(thm37::scenario(d, 4).instance)));
    out.push((
        "uniform".into(),
        Arc::new(reqsched_workloads::uniform_two_choice(6, d, 8, 60, seed)),
    ));
    out.push((
        "zipf".into(),
        Arc::new(reqsched_workloads::zipf_replicated(
            8,
            d,
            40,
            1.1,
            9,
            60,
            seed + 1,
        )),
    ));
    out.push((
        "flash".into(),
        Arc::new(reqsched_workloads::flash_crowd(
            6,
            d,
            3,
            12,
            10,
            8,
            50,
            seed + 2,
        )),
    ));
    out
}

/// Compute the Table-1 reproduction rows (in parallel across strategies and
/// deadlines).
pub fn table1_rows(phases: u32) -> Vec<Table1Row> {
    let mut work: Vec<(StrategyKind, u32)> = Vec::new();
    for kind in StrategyKind::GLOBAL {
        for &d in &TABLE1_DS {
            work.push((kind, d));
        }
    }
    // One cache across the whole table: every strategy kind validates against
    // the same battery instances (rebuilt per kind, equal in content), so the
    // cache's content-dedup pays for each horizon solve once instead of once
    // per (kind × tie-break).
    let opt_cache = OptCache::new();
    work.par_iter()
        .map(|&(kind, d)| {
            // Lower bound: pessimal member on its adversarial input.
            let (inst, generator) = lb_scenario(kind, d, phases);
            let mut strategy =
                reqsched_core::build_strategy(kind, inst.n_resources, inst.d, TieBreak::HintGuided);
            // Traced run: OPT comes from the streaming matching engine, so
            // the adversarial replay never solves the horizon graph at all.
            let stats = run_fixed_traced(strategy.as_mut(), &inst);
            let measured_lb = stats.ratio();
            // Upper bound validation: worst ratio across the battery under
            // the natural member.
            let jobs: Vec<Job> = validation_battery(d, 77)
                .into_iter()
                .flat_map(|(name, i)| {
                    [TieBreak::FirstFit, TieBreak::HintGuided].map(|tie| {
                        Job::new(format!("{name}/{}", tie.label()), Arc::clone(&i), kind, tie)
                    })
                })
                .collect();
            let measured_worst = par_run_with_cache(&jobs, &opt_cache)
                .iter()
                .map(|r| r.ratio)
                .fold(1.0f64, f64::max);
            Table1Row {
                strategy: kind.name().to_string(),
                d,
                paper_lb: kind.lower_bound(d),
                measured_lb,
                paper_ub: kind.upper_bound(d),
                measured_worst,
                generator,
            }
        })
        .collect()
}

/// Extra (non-Table-1) reproduction rows: EDF observations, the universal
/// bound and the local strategies.
pub fn extra_rows(phases: u32) -> Vec<Table1Row> {
    let mut rows = Vec::new();

    // Observation 3.2: EDF with independent copies.
    let s = edf_worst::scenario(4, phases);
    let mut edf = reqsched_core::build_strategy(
        StrategyKind::Edf {
            cancel_sibling: false,
        },
        2,
        4,
        TieBreak::FirstFit,
    );
    let stats = run_fixed_traced(edf.as_mut(), &s.instance);
    rows.push(Table1Row {
        strategy: "EDF".into(),
        d: 4,
        paper_lb: Some(2.0),
        measured_lb: stats.ratio(),
        paper_ub: Some(2.0),
        measured_worst: stats.ratio(),
        generator: "edf-worst".into(),
    });

    // Theorem 3.7: A_local_fix.
    let s = thm37::scenario(4, phases);
    let mut lf = AnyStrategy::LocalFix.build(4, 4);
    let stats = run_fixed_traced(lf.as_mut(), &s.instance);
    rows.push(Table1Row {
        strategy: "A_local_fix".into(),
        d: 4,
        paper_lb: Some(2.0),
        measured_lb: stats.ratio(),
        paper_ub: Some(2.0),
        measured_worst: stats.ratio(),
        generator: "thm3.7".into(),
    });

    // Theorem 3.8: A_local_eager (UB 5/3; worst measured over the battery).
    let worst = validation_battery(4, 177)
        .into_iter()
        .map(|(_, inst)| {
            let mut le = AnyStrategy::LocalEager.build(inst.n_resources, inst.d);
            run_fixed_traced(le.as_mut(), &inst).ratio()
        })
        .fold(1.0f64, f64::max);
    rows.push(Table1Row {
        strategy: "A_local_eager".into(),
        d: 4,
        paper_lb: None,
        measured_lb: worst,
        paper_ub: Some(5.0 / 3.0),
        measured_worst: worst,
        generator: "battery".into(),
    });

    // Theorem 2.6: universal bound, measured on A_balance (any strategy
    // qualifies — the bound is universal).
    let d = 9;
    let mut adv = thm26::Thm26Adversary::new(d, 6);
    let mut s = AnyStrategy::Global(StrategyKind::ABalance, TieBreak::FirstFit)
        .build(thm26::N_RESOURCES, d);
    // The traced run maintains OPT incrementally while the adaptive
    // adversary reacts, so no post-hoc horizon solve is needed.
    let (stats, _trace) = run_source_traced(s.as_mut(), &mut adv, thm26::N_RESOURCES, d);
    rows.push(Table1Row {
        strategy: "any online (A)".into(),
        d,
        paper_lb: Some(45.0 / 41.0),
        measured_lb: stats.ratio(),
        paper_ub: None,
        measured_worst: stats.ratio(),
        generator: "thm2.6 (adaptive)".into(),
    });

    rows
}

/// Measured ratio-vs-`d` series for one strategy on its own adversarial
/// generator (the derived "figure" F-1).
pub fn ratio_curve(kind: StrategyKind, ds: &[u32], phases: u32) -> Vec<(u32, f64)> {
    ds.par_iter()
        .map(|&d| {
            let (inst, _) = lb_scenario(kind, d.max(2), phases);
            let mut s =
                reqsched_core::build_strategy(kind, inst.n_resources, inst.d, TieBreak::HintGuided);
            let stats = run_fixed_traced(s.as_mut(), &inst);
            (d, stats.ratio())
        })
        .collect()
}

/// Traced run of `kind` on an instance with the **pipelined parallel
/// optimum** ([`run_fixed_traced_parallel`]), self-checked: the serial run
/// executes too and the two [`RunStats`] must be bit-identical — every
/// `opt_prefix` entry included — before the parallel result is returned.
/// The shard map is [`ShardMap::auto`], so the adversarial scenarios (tiny
/// `n`) run the sharded engine in its serial-layout fallback while still
/// exercising the pipelined worker and batched augmentation.
fn traced_parallel_checked(kind: StrategyKind, inst: &Instance) -> RunStats {
    let mut serial_s =
        reqsched_core::build_strategy(kind, inst.n_resources, inst.d, TieBreak::HintGuided);
    let serial = run_fixed_traced(serial_s.as_mut(), inst);
    let predicted = ShardMap::range(inst.n_resources, 4).straddler_fraction(&inst.trace);
    let map = ShardMap::auto(inst.n_resources, 4, predicted);
    let mut s = reqsched_core::build_strategy(kind, inst.n_resources, inst.d, TieBreak::HintGuided);
    let stats = run_fixed_traced_parallel(s.as_mut(), inst, &map);
    assert_eq!(
        stats,
        serial,
        "{}: parallel-opt run diverges from the serial baseline",
        kind.name()
    );
    stats
}

/// [`ratio_curve`] computed through the parallel optimum, with the serial
/// run asserted bit-identical at every `d` (the `ratio_curves
/// --parallel-opt` path — the emitted CSV cannot differ from the serial
/// one, by construction).
pub fn ratio_curve_parallel_opt(kind: StrategyKind, ds: &[u32], phases: u32) -> Vec<(u32, f64)> {
    ds.par_iter()
        .map(|&d| {
            let (inst, _) = lb_scenario(kind, d.max(2), phases);
            (d, traced_parallel_checked(kind, &inst).ratio())
        })
        .collect()
}

/// One row of the per-round live ratio trace (see [`ratio_trace`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RatioTracePoint {
    /// Simulated round.
    pub round: u64,
    /// Streaming optimum of everything injected through this round.
    pub opt_prefix: u32,
    /// Requests the algorithm has served through this round.
    pub alg_cum: u32,
    /// Live competitive ratio `opt_prefix / alg_cum`.
    pub ratio: f64,
}

/// Per-round live competitive-ratio trace of one strategy on its adversarial
/// generator, from a single traced run — the streaming engine maintains the
/// prefix optimum as the run unfolds, so the whole curve costs one run, not
/// one horizon solve per round.
pub fn ratio_trace(kind: StrategyKind, d: u32, phases: u32) -> Vec<RatioTracePoint> {
    let (inst, _) = lb_scenario(kind, d.max(2), phases);
    let mut s = reqsched_core::build_strategy(kind, inst.n_resources, inst.d, TieBreak::HintGuided);
    let stats = run_fixed_traced(s.as_mut(), &inst);
    trace_points(&stats)
}

/// [`ratio_trace`] through the parallel optimum, serial run asserted
/// bit-identical (the `ratio_curves --trace --parallel-opt` path).
pub fn ratio_trace_parallel_opt(kind: StrategyKind, d: u32, phases: u32) -> Vec<RatioTracePoint> {
    let (inst, _) = lb_scenario(kind, d.max(2), phases);
    trace_points(&traced_parallel_checked(kind, &inst))
}

fn trace_points(stats: &RunStats) -> Vec<RatioTracePoint> {
    let ratios = stats.live_ratios();
    let mut alg_cum = 0u32;
    stats
        .opt_prefix
        .iter()
        .zip(&stats.per_round_served)
        .zip(ratios)
        .enumerate()
        .map(|(t, ((&opt, &served), ratio))| {
            alg_cum += served;
            RatioTracePoint {
                round: t as u64,
                opt_prefix: opt,
                alg_cum,
                ratio,
            }
        })
        .collect()
}

/// Communication profile of a local strategy on an instance: per scheduling
/// round `(comm_rounds, messages)` deltas, plus the final ratio.
pub fn local_comm_profile(strat: AnyStrategy, inst: &Instance) -> (Vec<(u64, u64)>, f64) {
    let mut s = strat.build(inst.n_resources, inst.d);
    let mut profile = Vec::new();
    let (mut last_cr, mut last_msg) = (0u64, 0u64);
    for t in 0..inst.horizon().get() {
        s.on_round(Round(t), inst.trace.arrivals_at(Round(t)));
        profile.push((
            s.comm_rounds_total() - last_cr,
            s.messages_total() - last_msg,
        ));
        last_cr = s.comm_rounds_total();
        last_msg = s.messages_total();
    }
    let mut s2 = strat.build(inst.n_resources, inst.d);
    let stats = run_fixed_traced(s2.as_mut(), inst);
    (profile, stats.ratio())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_rows_cover_all_strategies_and_ds() {
        let rows = table1_rows(4);
        assert_eq!(rows.len(), StrategyKind::GLOBAL.len() * TABLE1_DS.len());
        for r in &rows {
            assert!(r.measured_lb >= 1.0);
            if let Some(ub) = r.paper_ub {
                assert!(
                    r.measured_worst <= ub + 1e-9,
                    "{} d={}: {} > {}",
                    r.strategy,
                    r.d,
                    r.measured_worst,
                    ub
                );
                assert!(
                    r.measured_lb <= ub + 1e-9,
                    "{} d={}: LB run {} above UB {}",
                    r.strategy,
                    r.d,
                    r.measured_lb,
                    ub
                );
            }
        }
    }

    #[test]
    fn extra_rows_match_paper_values() {
        let rows = extra_rows(6);
        let edf = rows.iter().find(|r| r.strategy == "EDF").unwrap();
        assert!((edf.measured_lb - 2.0).abs() < 1e-9);
        let lf = rows.iter().find(|r| r.strategy == "A_local_fix").unwrap();
        assert!((lf.measured_lb - 2.0).abs() < 1e-9);
        let le = rows.iter().find(|r| r.strategy == "A_local_eager").unwrap();
        assert!(le.measured_lb <= 5.0 / 3.0 + 1e-9);
        let any = rows.iter().find(|r| r.strategy.starts_with("any")).unwrap();
        assert!(any.measured_lb >= 45.0 / 41.0 * 0.97);
    }

    #[test]
    fn ratio_curves_shape() {
        let curve = ratio_curve(StrategyKind::AFix, &[2, 4, 8], 6);
        assert_eq!(curve.len(), 3);
        // 2 - 1/d increases with d.
        assert!(curve[0].1 < curve[2].1);
    }

    #[test]
    fn ratio_trace_is_consistent() {
        let trace = ratio_trace(StrategyKind::AFix, 4, 4);
        assert!(!trace.is_empty());
        // Rounds are consecutive, the prefix optimum never decreases, and
        // the final live ratio equals the closed-form run ratio.
        assert!(trace.iter().enumerate().all(|(i, p)| p.round == i as u64));
        assert!(trace.windows(2).all(|w| w[0].opt_prefix <= w[1].opt_prefix));
        assert!(trace.windows(2).all(|w| w[0].alg_cum <= w[1].alg_cum));
        let last = trace.last().unwrap();
        assert!((last.ratio - last.opt_prefix as f64 / last.alg_cum as f64).abs() < 1e-12);
    }

    #[test]
    fn local_profile_bounds() {
        let inst = reqsched_workloads::uniform_two_choice(5, 3, 6, 25, 3);
        let (profile, ratio) = local_comm_profile(AnyStrategy::LocalEager, &inst);
        assert_eq!(profile.len(), inst.horizon().get() as usize);
        assert!(profile.iter().all(|&(cr, _)| cr <= 9));
        assert!(ratio <= 5.0 / 3.0 + 1e-9);
        let (profile, _) = local_comm_profile(AnyStrategy::LocalFix, &inst);
        assert!(profile.iter().all(|&(cr, _)| cr <= 2));
    }
}
