//! Shared schema for the `BENCH_PR*.json` reports.
//!
//! Every benchmark that persists a machine-readable report at the workspace
//! root goes through this module so the artifacts stay structurally uniform:
//!
//! * the top level always opens with `"bench"` and `"quick"`;
//! * workload entries always carry the normalized quartet
//!   `name` / `baseline_ms` / `measured_ms` / `speedup` (benches may add
//!   extra keys after it, e.g. per-strategy breakdowns);
//! * quick-mode detection is unified behind [`quick_mode`]: the single
//!   `BENCH_QUICK=1` switch covers every bench, while each bench's historic
//!   variable (`HOT_PATH_QUICK`, `STREAMING_OPT_QUICK`, ...) keeps working
//!   as an alias.
//!
//! The builder is deliberately hand-rolled: the dev containers vendor a
//! stubbed `serde_json` whose parser always errors, so the reports must be
//! producible (and are consumed by `scripts/bench_smoke.sh` via `python3`)
//! without serde. Field order is preserved as inserted, which keeps the
//! artifacts diffable across regenerations.

use std::fmt::Write as _;

/// Name of the unified quick-mode environment variable.
pub const BENCH_QUICK: &str = "BENCH_QUICK";

/// The workspace root (where the `BENCH_PR*.json` artifacts live).
pub fn workspace_root() -> &'static str {
    concat!(env!("CARGO_MANIFEST_DIR"), "/../..")
}

/// `true` when the bench should run its smoke-test configuration.
///
/// `BENCH_QUICK=1` switches every bench at once; the per-bench `aliases`
/// (e.g. `HOT_PATH_QUICK`) are honored for backwards compatibility with
/// existing scripts and muscle memory.
pub fn quick_mode(aliases: &[&str]) -> bool {
    std::iter::once(BENCH_QUICK)
        .chain(aliases.iter().copied())
        .any(|var| std::env::var(var).is_ok_and(|v| v == "1"))
}

/// One JSON value in a report. Numbers are stored pre-formatted so each
/// bench keeps control of its precision (`{:.2}` vs `{:.3}` vs integer).
#[derive(Clone, Debug)]
pub enum Value {
    /// JSON `null` (e.g. "no baseline recorded").
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A pre-formatted numeric literal (must be valid JSON, e.g. `"3.14"`).
    Num(String),
    /// A string (escaped on render).
    Str(String),
    /// An ordered array.
    Arr(Vec<Value>),
    /// An ordered object.
    Obj(Obj),
}

impl Value {
    /// Float with fixed precision.
    pub fn f(x: f64, precision: usize) -> Value {
        Value::Num(format!("{x:.precision$}"))
    }

    /// Unsigned integer.
    pub fn u(x: u64) -> Value {
        Value::Num(x.to_string())
    }

    /// String value.
    pub fn s(x: impl Into<String>) -> Value {
        Value::Str(x.into())
    }

    fn render(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Value::Num(n) => out.push_str(n),
            Value::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, indent + 1);
                    item.render(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                pad(out, indent);
                out.push(']');
            }
            Value::Obj(o) => o.render(out, indent),
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// An insertion-ordered JSON object.
#[derive(Clone, Debug, Default)]
pub struct Obj {
    fields: Vec<(String, Value)>,
}

impl Obj {
    /// Empty object.
    pub fn new() -> Obj {
        Obj::default()
    }

    /// Append a field (builder style).
    pub fn set(mut self, key: &str, value: Value) -> Obj {
        self.fields.push((key.to_string(), value));
        self
    }

    fn render(&self, out: &mut String, indent: usize) {
        if self.fields.is_empty() {
            out.push_str("{}");
            return;
        }
        out.push_str("{\n");
        for (i, (key, value)) in self.fields.iter().enumerate() {
            pad(out, indent + 1);
            let _ = write!(out, "\"{key}\": ");
            value.render(out, indent + 1);
            out.push_str(if i + 1 < self.fields.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        pad(out, indent);
        out.push('}');
    }
}

/// The normalized workload quartet every report's `workloads` array leads
/// with. Extra bench-specific keys append after it via [`Obj::set`].
pub fn workload_row(name: &str, baseline_ms: f64, measured_ms: f64, speedup: f64) -> Obj {
    Obj::new()
        .set("name", Value::s(name))
        .set("baseline_ms", Value::f(baseline_ms, 3))
        .set("measured_ms", Value::f(measured_ms, 3))
        .set("speedup", Value::f(speedup, 2))
}

/// A `BENCH_PR*.json` report under construction.
#[derive(Clone, Debug)]
pub struct Report {
    root: Obj,
}

impl Report {
    /// Start a report; `"bench"` and `"quick"` always lead.
    pub fn new(bench: &str, quick: bool) -> Report {
        Report {
            root: Obj::new()
                .set("bench", Value::s(bench))
                .set("quick", Value::Bool(quick)),
        }
    }

    /// Append a top-level field.
    pub fn set(mut self, key: &str, value: Value) -> Report {
        self.root = self.root.set(key, value);
        self
    }

    /// Render to a JSON string (trailing newline included).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.root.render(&mut out, 0);
        out.push('\n');
        out
    }

    /// Write to `file_name` at the workspace root and echo the path.
    pub fn write(&self, file_name: &str) {
        let path = format!("{}/{file_name}", workspace_root());
        std::fs::write(&path, self.render()).unwrap_or_else(|e| panic!("write {file_name}: {e}"));
        println!("wrote {path}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_leads_with_bench_and_quick() {
        let r = Report::new("demo", true)
            .set("parity", Value::Bool(true))
            .set("solve_reduction", Value::f(7.25, 2));
        let json = r.render();
        assert!(json.starts_with("{\n  \"bench\": \"demo\",\n  \"quick\": true,\n"));
        // The exact spellings the smoke script greps for.
        assert!(json.contains("\"parity\": true"));
        assert!(json.contains("\"solve_reduction\": 7.25"));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn workload_rows_carry_the_normalized_quartet() {
        let row = workload_row("uniform", 12.5, 2.5, 5.0).set("rounds", Value::u(600));
        let mut out = String::new();
        row.render(&mut out, 0);
        for key in [
            "\"name\"",
            "\"baseline_ms\"",
            "\"measured_ms\"",
            "\"speedup\"",
        ] {
            assert!(out.contains(key), "missing {key} in {out}");
        }
        assert!(out.contains("\"speedup\": 5.00"));
        assert!(out.contains("\"rounds\": 600"));
    }

    #[test]
    fn strings_are_escaped() {
        let mut out = String::new();
        Value::s("a\"b\\c\nd").render(&mut out, 0);
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn nested_arrays_and_objects_render_parseably() {
        let r = Report::new("nest", false).set(
            "workloads",
            Value::Arr(vec![
                Value::Obj(workload_row("a", 1.0, 0.5, 2.0)),
                Value::Obj(workload_row("b", 2.0, 0.5, 4.0).set(
                    "strategies",
                    Value::Arr(vec![Value::Obj(
                        Obj::new().set("name", Value::s("EDF")).set("speedup", Value::f(3.0, 2)),
                    )]),
                )),
            ]),
        );
        let json = r.render();
        // Balanced braces/brackets — cheap structural sanity without a parser.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"strategies\": ["));
    }

    #[test]
    fn quick_mode_honors_unified_switch_and_aliases() {
        // Env-var probes use process-global state; exercised with unique
        // names so parallel tests don't race.
        std::env::set_var("REPORT_TEST_ALIAS_QUICK", "1");
        assert!(quick_mode(&["REPORT_TEST_ALIAS_QUICK"]));
        std::env::set_var("REPORT_TEST_ALIAS_QUICK", "0");
        assert!(!quick_mode(&["REPORT_TEST_ALIAS_QUICK"]));
        std::env::remove_var("REPORT_TEST_ALIAS_QUICK");
        assert!(!quick_mode(&["REPORT_TEST_ALIAS_QUICK"]));
    }
}
