//! Shared round-engine measurement harness for the `delta_window` and
//! `word_core` macro-benchmarks.
//!
//! Both benches drive the same five workloads (the BENCH_PR3 battery:
//! two adversarial constructions plus three random generators at overload
//! rates) through the same five matching-based strategies, fresh-rebuild
//! vs. delta-maintained, asserting exact per-round schedule parity before
//! any timing is reported. Keeping the harness here guarantees the
//! `BENCH_PR6.json` word-core numbers are measured on *identical* inputs
//! and drivers as the `BENCH_PR3.json` baseline they are compared against.

use reqsched_adversary::{thm21, thm25};
use reqsched_core::{
    ABalance, ACurrent, AEager, AFixBalance, ALazyMax, OnlineScheduler, Service, SolveMode,
    StrategyKind, TieBreak,
};
use reqsched_model::{Instance, Round};
use std::hint::black_box;
use std::time::Instant;

/// The strategies with a delta path (`StrategyKind::GLOBAL` minus `A_fix`,
/// which decides per arrival and never re-solves, plus the lazy-maximum
/// ablation).
pub const KINDS: [StrategyKind; 5] = [
    StrategyKind::ACurrent,
    StrategyKind::AFixBalance,
    StrategyKind::AEager,
    StrategyKind::ABalance,
    StrategyKind::LazyMax,
];

/// The five BENCH_PR3 workloads at the given scale. `quick` scale is
/// `(6, 150)`, full is `(24, 600)`.
pub fn round_engine_workloads(phases: u32, rounds: u64) -> Vec<(String, Instance)> {
    vec![
        (
            format!("thm2.1(d=40, phases={phases})"),
            thm21::scenario(40, phases).instance,
        ),
        (
            format!("thm2.5(x=6, groups=8, intervals={phases})"),
            thm25::scenario(6, 8, phases).instance,
        ),
        (
            format!("uniform-overload(n=32, d=8, rate=64, rounds={rounds})"),
            reqsched_workloads::uniform_two_choice(32, 8, 64, rounds, 7),
        ),
        (
            format!("zipf(n=32, d=6, alpha=1.5, rate=60, rounds={rounds})"),
            reqsched_workloads::zipf_replicated(32, 6, 100, 1.5, 60, rounds, 9),
        ),
        (
            format!("flash(n=32, d=6, burst=120, rounds={rounds})"),
            reqsched_workloads::flash_crowd(32, 6, 10, 120, 30, 60, rounds, 11),
        ),
    ]
}

/// Drive one scheduler over the instance (horizon plus drain), returning
/// the per-round services and the summed `on_round` time in milliseconds.
pub fn drive(s: &mut dyn OnlineScheduler, inst: &Instance) -> (Vec<Vec<Service>>, f64) {
    let rounds = inst.horizon().get() + inst.d as u64;
    let mut services = Vec::with_capacity(rounds as usize);
    let mut total = 0.0;
    for t in 0..rounds {
        let arrivals = inst.trace.arrivals_at(Round(t));
        let t0 = Instant::now();
        let served = black_box(s.on_round(Round(t), arrivals));
        total += t0.elapsed().as_secs_f64() * 1e3;
        services.push(served);
    }
    (services, total)
}

/// Run `kind` in the given mode; also harvest the delta engine's
/// edge-scan counter (0 on the fresh path, which has no such counter —
/// its work is the full rebuild + re-solve every round).
pub fn run_kind(
    kind: StrategyKind,
    inst: &Instance,
    mode: SolveMode,
) -> (Vec<Vec<Service>>, f64, u64) {
    let (n, d, tie) = (inst.n_resources, inst.d, TieBreak::FirstFit);
    macro_rules! go {
        ($ty:ident) => {{
            let mut s = $ty::with_mode(n, d, tie, mode);
            let (sv, ms) = drive(&mut s, inst);
            (sv, ms, s.delta_work().unwrap_or(0))
        }};
    }
    match kind {
        StrategyKind::ACurrent => go!(ACurrent),
        StrategyKind::AFixBalance => go!(AFixBalance),
        StrategyKind::AEager => go!(AEager),
        StrategyKind::ABalance => go!(ABalance),
        StrategyKind::LazyMax => go!(ALazyMax),
        _ => unreachable!("no delta path for {:?}", kind),
    }
}

/// Fresh-vs-delta timing of one strategy on one workload.
pub struct StrategyRow {
    /// Strategy name (paper notation).
    pub name: &'static str,
    /// Summed `on_round` ms with a fresh window solve every round.
    pub fresh_ms: f64,
    /// Summed `on_round` ms with the delta-maintained matching.
    pub delta_ms: f64,
    /// `fresh_ms / delta_ms`.
    pub speedup: f64,
}

/// Fresh-vs-delta timing of the whole strategy set on one workload.
pub struct WorkloadResult {
    /// Workload label (generator + parameters).
    pub name: String,
    /// Requests injected over the horizon.
    pub requests: usize,
    /// Rounds driven (horizon + drain).
    pub rounds: u64,
    /// Summed fresh-path ms across all strategies.
    pub fresh_ms: f64,
    /// Summed delta-path ms across all strategies.
    pub delta_ms: f64,
    /// `fresh_ms / delta_ms` for the workload.
    pub round_speedup: f64,
    /// Delta-engine edge scans summed across strategies.
    pub delta_edges: u64,
    /// Per-strategy breakdown.
    pub rows: Vec<StrategyRow>,
}

/// Measure every strategy on `inst` fresh vs. delta, asserting exact
/// per-round schedule parity for each before timing is aggregated.
pub fn measure_round_engine(name: &str, inst: &Instance) -> WorkloadResult {
    let mut rows = Vec::new();
    let (mut fresh_total, mut delta_total, mut edges_total) = (0.0, 0.0, 0u64);
    for kind in KINDS {
        let (sv_fresh, fresh_ms, _) = run_kind(kind, inst, SolveMode::Fresh);
        let (sv_delta, delta_ms, edges) = run_kind(kind, inst, SolveMode::Delta);
        assert_eq!(
            sv_fresh,
            sv_delta,
            "{name}: {} delta schedule diverges from fresh",
            kind.name()
        );
        fresh_total += fresh_ms;
        delta_total += delta_ms;
        edges_total += edges;
        rows.push(StrategyRow {
            name: kind.name(),
            fresh_ms,
            delta_ms,
            speedup: fresh_ms / delta_ms.max(1e-6),
        });
    }
    WorkloadResult {
        name: name.to_string(),
        requests: inst.trace.len(),
        rounds: inst.horizon().get() + inst.d as u64,
        fresh_ms: fresh_total,
        delta_ms: delta_total,
        round_speedup: fresh_total / delta_total.max(1e-6),
        delta_edges: edges_total,
        rows,
    }
}
