//! `A_current`: a fresh maximum matching on the current round's slots only.
//!
//! Paper rule (§1.3): *"For every round t, choose any maximum matching
//! between all nodes representing requests not yet fulfilled and all nodes
//! representing time slots of the current round. All nodes that belong to
//! later time steps are not considered."* Lower bound `e/(e−1)` as `d → ∞`
//! (Theorem 2.2), upper bound `2 − 1/d` (Theorem 3.3).
//!
//! Unserved requests stay live until their deadlines expire; nothing is ever
//! tentatively assigned to a future slot.

use crate::delta::{CurrentDelta, SolveMode};
use crate::schedule::{ScheduleState, Service};
use crate::tiebreak::TieBreak;
use crate::window::{WindowGraph, WindowScratch};
use crate::OnlineScheduler;
use reqsched_matching::kuhn_in_order_with;
use reqsched_model::{Request, Round};

/// The `A_current` strategy. See module docs.
pub struct ACurrent {
    state: ScheduleState,
    tie: TieBreak,
    scratch: WindowScratch,
    delta: Option<CurrentDelta>,
}

impl ACurrent {
    /// Create an `A_current` scheduler for `n` resources and deadline `d`.
    pub fn new(n: u32, d: u32, tie: TieBreak) -> ACurrent {
        ACurrent::with_mode(n, d, tie, SolveMode::Delta)
    }

    /// [`ACurrent::new`] with an explicit [`SolveMode`] (the `Fresh` path
    /// is the from-scratch reference used by parity tests and benchmarks).
    pub fn with_mode(n: u32, d: u32, tie: TieBreak, mode: SolveMode) -> ACurrent {
        ACurrent {
            state: ScheduleState::new(n, d),
            tie,
            scratch: WindowScratch::new(),
            delta: mode.delta_active(&tie).then(|| CurrentDelta::new(n)),
        }
    }

    /// Edges scanned by the delta engine's searches, if it is active.
    pub fn delta_work(&self) -> Option<u64> {
        self.delta.as_ref().map(|d| d.edges_scanned())
    }

    /// Read-only view of the internal schedule window (observability: used
    /// by compliance tests that verify the strategy's defining rule against
    /// brute-force enumeration, and handy for instrumentation).
    pub fn schedule(&self) -> &crate::schedule::ScheduleState {
        &self.state
    }
}

impl OnlineScheduler for ACurrent {
    fn name(&self) -> &str {
        "A_current"
    }

    fn set_fault_plan(&mut self, plan: std::sync::Arc<reqsched_faults::FaultPlan>) {
        // CurrentDelta freezes each request's adjacency once, against a
        // single reusable "current round" column — that snapshot cannot
        // express a slot that exists in some rounds and not in others, so
        // under resource faults A_current falls back to the fresh per-round
        // solve (which rebuilds the one-column graph with masking applied).
        if plan.has_resource_faults() {
            self.delta = None;
        }
        self.state.set_fault_plan(plan);
    }

    fn on_round(&mut self, round: Round, arrivals: &[Request]) -> Vec<Service> {
        if let Some(cd) = &mut self.delta {
            return cd.round(&mut self.state, round, arrivals);
        }
        assert_eq!(round, self.state.front(), "rounds must be consecutive");
        for req in arrivals {
            self.state.insert(req);
        }
        // All live requests compete for the n current-round slots. No
        // assignments persist across rounds (matched requests are served
        // immediately), so the matching starts empty every round.
        let mut lefts = self.scratch.take_lefts();
        lefts.extend(self.state.live_iter().map(|l| l.id()));
        if !lefts.is_empty() {
            let (wg, mut m) =
                WindowGraph::build_with(&self.state, lefts, 1, false, &self.tie, &mut self.scratch);
            let order = wg.left_order(&self.state, 0..wg.graph.n_left(), &self.tie);
            kuhn_in_order_with(&wg.graph, &mut m, &order, &mut self.scratch.ws);
            debug_assert!(m.is_maximum(&wg.graph));
            wg.apply(&mut self.state, &m);
            self.scratch.recycle(wg, m);
        } else {
            self.scratch.return_lefts(lefts);
        }
        self.state.finish_round().served
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reqsched_model::{Hint, Instance, TraceBuilder};

    fn run(strategy: &mut dyn OnlineScheduler, inst: &Instance) -> usize {
        let mut served = 0;
        for t in 0..inst.horizon().get() {
            served += strategy
                .on_round(Round(t), inst.trace.arrivals_at(Round(t)))
                .len();
        }
        served
    }

    #[test]
    fn drains_backlog_within_deadline() {
        // 3 requests on one pair of resources with d = 2: capacity is
        // 2/round, so all 3 fit (2 in round 0, 1 in round 1).
        let mut b = TraceBuilder::new(2);
        b.push(0u64, 0u32, 1u32);
        b.push(0u64, 0u32, 1u32);
        b.push(0u64, 0u32, 1u32);
        let inst = Instance::new(2, 2, b.build());
        let mut a = ACurrent::new(2, 2, TieBreak::FirstFit);
        assert_eq!(run(&mut a, &inst), 3);
    }

    #[test]
    fn expired_requests_are_lost() {
        // 4 requests, d = 1, one pair: only 2 can go.
        let mut b = TraceBuilder::new(1);
        for _ in 0..4 {
            b.push(0u64, 0u32, 1u32);
        }
        let inst = Instance::new(2, 1, b.build());
        let mut a = ACurrent::new(2, 1, TieBreak::FirstFit);
        assert_eq!(run(&mut a, &inst), 2);
    }

    #[test]
    fn priority_hints_select_who_is_served() {
        // Two requests, one resource pair, d = 1: hint-guided serves the
        // prioritized one.
        let mut b = TraceBuilder::new(1);
        b.push_hinted(0u64, 0u32, 1u32, Hint::priority(10));
        let favoured = b.push_hinted(0u64, 0u32, 1u32, Hint::priority(1));
        let inst = Instance::new(2, 1, b.build());
        let mut a = ACurrent::new(2, 1, TieBreak::HintGuided);
        let mut served_ids = Vec::new();
        for t in 0..inst.horizon().get() {
            for s in a.on_round(Round(t), inst.trace.arrivals_at(Round(t))) {
                served_ids.push(s.request);
            }
        }
        // Both are served (2 slots, 2 requests) — but with one slot the
        // favoured one wins; here check the favoured is among served.
        assert!(served_ids.contains(&favoured));
    }

    #[test]
    fn myopia_misses_future_structure() {
        // d = 2, resources S0, S1. Round 0: one request (S0|S1) and one
        // request (S0 only, d=1 effectively via deadline 1).
        // A maximum current matching serves both in round 0. Fine. But a
        // myopic variant of Theorem 2.2: requests q1=(S0|S1) and q2=(S0|S1);
        // plus next round a block on S0,S1 — A_current still served 2
        // early; this test just checks it behaves and counts stay sane.
        let mut b = TraceBuilder::new(2);
        b.push(0u64, 0u32, 1u32);
        b.push(0u64, 0u32, 1u32);
        b.block2(1u64, 0u32, 1u32, 0);
        let inst = Instance::new(2, 2, b.build());
        let mut a = ACurrent::new(2, 2, TieBreak::FirstFit);
        let served = run(&mut a, &inst);
        // Capacity over rounds 0..=2 is 6 slots; 2 + 2d = 6 requests but the
        // block only has rounds 1..=2 (4 slots) -> best possible is 2 + 4 = 6
        // ... however round-0 matching serves both early requests, so all
        // block requests compete for 4 slots: 2+4 = 6 served? No: block has
        // 2d = 4 requests, all fit. Everything served.
        assert_eq!(served, 6);
    }
}
