//! `A_fix`: schedule new arrivals maximally, never reschedule.
//!
//! Paper rule (§1.3): *"For every round t, choose any maximal matching in
//! `G_t` with the property that 1) every request already matched to some time
//! slot stays matched to **that slot**, and 2) a maximum number of requests
//! generated at `t` is scheduled."* Competitive ratio exactly `2 − 1/d`
//! (Theorems 2.1 and 3.3).
//!
//! Because assignments are permanent and slots are only ever consumed, a
//! request that cannot be matched on arrival can never be matched later (its
//! feasible slots all lie within `t .. t+d-1`, all present in `G_t` at
//! arrival); `A_fix` therefore drops failed arrivals immediately.

use crate::schedule::{ScheduleState, Service};
use crate::tiebreak::TieBreak;
use crate::window::{WindowGraph, WindowScratch};
use crate::OnlineScheduler;
use reqsched_matching::kuhn_in_order_with;
use reqsched_model::{Request, RequestId, Round};

/// The `A_fix` strategy. See module docs.
pub struct AFix {
    state: ScheduleState,
    tie: TieBreak,
    scratch: WindowScratch,
}

impl AFix {
    /// Create an `A_fix` scheduler for `n` resources and deadline `d`.
    pub fn new(n: u32, d: u32, tie: TieBreak) -> AFix {
        AFix {
            state: ScheduleState::new(n, d),
            tie,
            scratch: WindowScratch::new(),
        }
    }

    /// Read-only view of the internal schedule window (observability: used
    /// by compliance tests that verify the strategy's defining rule against
    /// brute-force enumeration, and handy for instrumentation).
    pub fn schedule(&self) -> &crate::schedule::ScheduleState {
        &self.state
    }
}

impl OnlineScheduler for AFix {
    fn name(&self) -> &str {
        "A_fix"
    }

    fn set_fault_plan(&mut self, plan: std::sync::Arc<reqsched_faults::FaultPlan>) {
        self.state.set_fault_plan(plan);
    }

    fn on_round(&mut self, round: Round, arrivals: &[Request]) -> Vec<Service> {
        assert_eq!(round, self.state.front(), "rounds must be consecutive");
        for req in arrivals {
            self.state.insert(req);
        }
        let mut new_ids = self.scratch.take_lefts();
        new_ids.extend(arrivals.iter().map(|r| r.id));
        new_ids.sort_unstable();

        if !new_ids.is_empty() {
            // Maximum matching of the new requests into the free slots, in
            // tie-break order; old assignments are untouchable (their slots
            // are simply absent from the graph).
            let (wg, mut m) = WindowGraph::build_with(
                &self.state,
                new_ids,
                self.state.d(),
                false,
                &self.tie,
                &mut self.scratch,
            );
            let order = wg.left_order(&self.state, 0..wg.graph.n_left(), &self.tie);
            kuhn_in_order_with(&wg.graph, &mut m, &order, &mut self.scratch.ws);
            if self.tie.is_hint_guided() {
                wg.priority_position_pass(&self.state, &mut m);
            }
            // Unmatched arrivals are permanently failed under A_fix.
            let failed: Vec<RequestId> = m.free_lefts().map(|l| wg.lefts[l as usize]).collect();
            wg.apply(&mut self.state, &m);
            for id in failed {
                self.state.drop_request(id);
            }
            self.scratch.recycle(wg, m);
        } else {
            self.scratch.return_lefts(new_ids);
        }
        self.state.finish_round().served
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reqsched_model::{Instance, TraceBuilder};

    fn run(strategy: &mut dyn OnlineScheduler, inst: &Instance) -> usize {
        let mut served = 0;
        let horizon = inst.horizon().get();
        for t in 0..horizon {
            let s = strategy.on_round(Round(t), inst.trace.arrivals_at(Round(t)));
            served += s.len();
        }
        served
    }

    #[test]
    fn serves_everything_when_capacity_suffices() {
        let mut b = TraceBuilder::new(2);
        b.push(0u64, 0u32, 1u32);
        b.push(0u64, 0u32, 1u32);
        b.push(0u64, 2u32, 3u32);
        let inst = Instance::new(4, 2, b.build());
        let mut a = AFix::new(4, 2, TieBreak::FirstFit);
        assert_eq!(run(&mut a, &inst), 3);
    }

    #[test]
    fn block_saturates_resources() {
        // block(2, d) on 2 resources: exactly 2d requests served over d rounds.
        let d = 3;
        let mut b = TraceBuilder::new(d);
        b.block2(0u64, 0u32, 1u32, 0);
        let inst = Instance::new(2, d, b.build());
        let mut a = AFix::new(2, d, TieBreak::FirstFit);
        assert_eq!(run(&mut a, &inst), 2 * d as usize);
    }

    #[test]
    fn overload_drops_excess() {
        // 3d requests on two resources: only 2d can be served by anyone.
        let d = 2;
        let mut b = TraceBuilder::new(d);
        b.block2(0u64, 0u32, 1u32, 0);
        b.push_group(0u64, 0u32, 1u32, d, 1, Default::default());
        let inst = Instance::new(2, d, b.build());
        let mut a = AFix::new(2, d, TieBreak::FirstFit);
        assert_eq!(run(&mut a, &inst), 2 * d as usize);
    }

    #[test]
    fn no_rescheduling_hurts_when_hinted_adversarially() {
        // Miniature of Theorem 2.1's trap at d=2. S1, S2 start busy (an
        // initial block), so the hinted requests are *parked* on future
        // slots of S1/S2 instead of being served immediately; a second
        // block then arrives at the shared resources and partially starves.
        use reqsched_model::Hint;
        let d = 2u32;
        let mut b = TraceBuilder::new(d);
        b.block2(0u64, 1u32, 2u32, 0); // S1, S2 busy rounds 0..=1
                                       // Round 1: R1 (S0|S1) hinted to S1, R2 (S3|S2) hinted to S2; both
                                       // park at round-2 slots of the blocked pair.
        b.push_hinted(
            1u64,
            0u32,
            1u32,
            Hint::prefer(reqsched_model::ResourceId(1)),
        );
        b.push_hinted(
            1u64,
            3u32,
            2u32,
            Hint::prefer(reqsched_model::ResourceId(2)),
        );
        // Round 2: second block(2, d) on (S1, S2): only 2 of its 4 fit now.
        b.block2(2u64, 1u32, 2u32, 0);
        let inst = Instance::new(4, d, b.build());
        let mut a = AFix::new(4, d, TieBreak::HintGuided);
        let served = run(&mut a, &inst);
        // OPT = 10 (R1 -> S0, R2 -> S3, both blocks on S1/S2); trapped A_fix
        // serves 4 + 2 + 2 = 8.
        assert_eq!(served, 8);
        assert_eq!(inst.total_requests(), 10);
    }
}
