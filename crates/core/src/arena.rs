//! Struct-of-arrays storage for live requests (the request arena).
//!
//! The schedule window used to keep one `LiveReq { req: Request, assigned }`
//! struct per live request in a `BTreeMap`. Every hot-path consumer touches
//! only a narrow slice of that struct — the graph builder wants
//! `(arrival, deadline, alternatives)`, the tie-break passes want `hint`,
//! the write-back wants `assigned` — yet each access dragged the whole
//! ~80-byte struct through cache. [`RequestArena`] splits the fields into
//! parallel columns indexed by a dense slot number, so a scan over one
//! attribute walks one tightly packed array.
//!
//! ## Handles
//!
//! Slots are recycled through a free list, so a slot index is only
//! meaningful while its request is live. Callers outside this module never
//! see raw slots: lookups go through the id index and hand back a copyable
//! [`ReqRef`] view whose accessors read the columns. The id index is a
//! `BTreeMap`, preserving the deterministic id-order iteration the previous
//! `BTreeMap<RequestId, LiveReq>` gave every strategy and test.

use reqsched_model::{Alternatives, Hint, Request, RequestId, ResourceId, Round};
use std::collections::BTreeMap;

/// Sentinel in the packed assignment column: "unassigned".
const NO_RES: u32 = u32::MAX;

/// Columnar store of live requests. See module docs.
#[derive(Clone, Debug, Default)]
pub struct RequestArena {
    ids: Vec<RequestId>,
    arrivals: Vec<Round>,
    deadlines: Vec<u32>,
    alternatives: Vec<Alternatives>,
    tags: Vec<u32>,
    hints: Vec<Hint>,
    /// Assigned resource per slot; [`NO_RES`] = unassigned.
    assigned_res: Vec<u32>,
    /// Assigned round per slot; meaningful only when `assigned_res != NO_RES`.
    assigned_round: Vec<u64>,
    /// Recycled slots of removed requests.
    free: Vec<u32>,
    /// Live id → slot (deterministic id-order iteration).
    index: BTreeMap<RequestId, u32>,
}

impl RequestArena {
    /// An empty arena; columns grow on first use.
    pub fn new() -> RequestArena {
        RequestArena::default()
    }

    /// Number of live requests.
    #[inline]
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// `true` iff no request is live.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Insert `req` unassigned. Returns `false` (and stores nothing) if its
    /// id is already live.
    pub fn insert(&mut self, req: &Request) -> bool {
        if self.index.contains_key(&req.id) {
            return false;
        }
        let slot = match self.free.pop() {
            Some(slot) => {
                let s = slot as usize;
                self.ids[s] = req.id;
                self.arrivals[s] = req.arrival;
                self.deadlines[s] = req.deadline;
                self.alternatives[s] = req.alternatives.clone();
                self.tags[s] = req.tag;
                self.hints[s] = req.hint;
                self.assigned_res[s] = NO_RES;
                slot
            }
            None => {
                let slot = self.ids.len() as u32;
                self.ids.push(req.id);
                self.arrivals.push(req.arrival);
                self.deadlines.push(req.deadline);
                self.alternatives.push(req.alternatives.clone());
                self.tags.push(req.tag);
                self.hints.push(req.hint);
                self.assigned_res.push(NO_RES);
                self.assigned_round.push(0);
                slot
            }
        };
        self.index.insert(req.id, slot);
        true
    }

    /// The slot of live request `id`, if any.
    #[inline]
    pub fn slot_of(&self, id: RequestId) -> Option<u32> {
        self.index.get(&id).copied()
    }

    /// A column view of the request in `slot`. The slot must be live.
    #[inline]
    pub fn at(&self, slot: u32) -> ReqRef<'_> {
        debug_assert!((slot as usize) < self.ids.len());
        ReqRef { arena: self, slot }
    }

    /// A column view of live request `id`, if any.
    #[inline]
    pub fn get(&self, id: RequestId) -> Option<ReqRef<'_>> {
        self.slot_of(id).map(|slot| self.at(slot))
    }

    /// Iterate over all live requests in id order.
    pub fn iter(&self) -> impl Iterator<Item = ReqRef<'_>> {
        self.index.values().map(|&slot| self.at(slot))
    }

    /// Remove live request `id`, recycling its slot. Returns whether it was
    /// live.
    pub fn remove(&mut self, id: RequestId) -> bool {
        match self.index.remove(&id) {
            Some(slot) => {
                self.assigned_res[slot as usize] = NO_RES;
                self.free.push(slot);
                true
            }
            None => false,
        }
    }

    /// Current assignment of the request in `slot`.
    #[inline]
    pub fn assigned(&self, slot: u32) -> Option<(ResourceId, Round)> {
        let res = self.assigned_res[slot as usize];
        (res != NO_RES).then(|| (ResourceId(res), Round(self.assigned_round[slot as usize])))
    }

    /// Record the assignment of the request in `slot`.
    #[inline]
    pub fn set_assigned(&mut self, slot: u32, resource: ResourceId, round: Round) {
        debug_assert_ne!(resource.0, NO_RES);
        self.assigned_res[slot as usize] = resource.0;
        self.assigned_round[slot as usize] = round.get();
    }

    /// Clear and return the assignment of the request in `slot`.
    #[inline]
    pub fn take_assigned(&mut self, slot: u32) -> Option<(ResourceId, Round)> {
        let taken = self.assigned(slot);
        self.assigned_res[slot as usize] = NO_RES;
        taken
    }

    /// Unassign every live request — one column fill, no per-request walk
    /// (free slots hold the sentinel already, so blanket-filling is safe).
    pub fn clear_assignments(&mut self) {
        self.assigned_res.fill(NO_RES);
    }

    /// Remove every live request `f` rejects (in id order), recycling their
    /// slots.
    pub fn retain(&mut self, mut f: impl FnMut(ReqRef<'_>) -> bool) {
        let mut doomed: Vec<RequestId> = Vec::new();
        for (&id, &slot) in self.index.iter() {
            if !f(self.at(slot)) {
                doomed.push(id);
            }
        }
        for id in doomed {
            self.remove(id);
        }
    }
}

/// Copyable read-only view of one live request's columns.
///
/// Accessors read individual arena columns, so e.g. a priority scan touches
/// only the `hints` array. The view borrows the arena; take plain values
/// out of it (ids, rounds, hints are all `Copy`) before mutating.
#[derive(Clone, Copy)]
pub struct ReqRef<'a> {
    arena: &'a RequestArena,
    slot: u32,
}

impl<'a> ReqRef<'a> {
    /// The request's id.
    #[inline]
    pub fn id(&self) -> RequestId {
        self.arena.ids[self.slot as usize]
    }

    /// Arrival round.
    #[inline]
    pub fn arrival(&self) -> Round {
        self.arena.arrivals[self.slot as usize]
    }

    /// Relative deadline (window length).
    #[inline]
    pub fn deadline(&self) -> u32 {
        self.arena.deadlines[self.slot as usize]
    }

    /// Last round (inclusive) the request may still be served.
    #[inline]
    pub fn expiry(&self) -> Round {
        self.arrival() + (self.deadline() as u64 - 1)
    }

    /// Admissible resources (lifetime of the arena, not of this view).
    #[inline]
    pub fn alternatives(&self) -> &'a Alternatives {
        &self.arena.alternatives[self.slot as usize]
    }

    /// Generator tag.
    #[inline]
    pub fn tag(&self) -> u32 {
        self.arena.tags[self.slot as usize]
    }

    /// Tie-breaking hint.
    #[inline]
    pub fn hint(&self) -> Hint {
        self.arena.hints[self.slot as usize]
    }

    /// Current tentative assignment, if any.
    #[inline]
    pub fn assigned(&self) -> Option<(ResourceId, Round)> {
        self.arena.assigned(self.slot)
    }

    /// Whether the request may be served in `round`.
    #[inline]
    pub fn window_contains(&self, round: Round) -> bool {
        round >= self.arrival() && round <= self.expiry()
    }

    /// Whether serving this request on `resource` in `round` is feasible.
    #[inline]
    pub fn can_be_served(&self, resource: ResourceId, round: Round) -> bool {
        self.window_contains(round) && self.alternatives().contains(resource)
    }
}

impl std::fmt::Debug for ReqRef<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReqRef")
            .field("id", &self.id())
            .field("arrival", &self.arrival())
            .field("deadline", &self.deadline())
            .field("alternatives", self.alternatives())
            .field("tag", &self.tag())
            .field("hint", &self.hint())
            .field("assigned", &self.assigned())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u32, arrival: u64, deadline: u32) -> Request {
        Request {
            id: RequestId(id),
            arrival: Round(arrival),
            alternatives: Alternatives::two(ResourceId(0), ResourceId(1)),
            deadline,
            tag: id * 10,
            hint: Hint::priority(id),
        }
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut a = RequestArena::new();
        assert!(a.insert(&req(3, 5, 2)));
        assert!(!a.insert(&req(3, 5, 2)), "duplicate id rejected");
        let r = a.get(RequestId(3)).expect("live");
        assert_eq!(r.id(), RequestId(3));
        assert_eq!(r.arrival(), Round(5));
        assert_eq!(r.deadline(), 2);
        assert_eq!(r.expiry(), Round(6));
        assert_eq!(r.tag(), 30);
        assert_eq!(r.hint().priority, 3);
        assert!(r.assigned().is_none());
        assert!(r.can_be_served(ResourceId(1), Round(6)));
        assert!(!r.can_be_served(ResourceId(2), Round(6)));
        assert!(!r.can_be_served(ResourceId(0), Round(7)));
    }

    #[test]
    fn slots_recycle_without_losing_live_entries() {
        let mut a = RequestArena::new();
        for i in 0..4 {
            a.insert(&req(i, 0, 3));
        }
        assert!(a.remove(RequestId(1)));
        assert!(!a.remove(RequestId(1)));
        a.insert(&req(9, 1, 1));
        // Slot of the removed request was reused; all live entries intact.
        let ids: Vec<RequestId> = a.iter().map(|r| r.id()).collect();
        assert_eq!(
            ids,
            vec![RequestId(0), RequestId(2), RequestId(3), RequestId(9)]
        );
        assert_eq!(a.len(), 4);
        assert_eq!(a.get(RequestId(9)).unwrap().arrival(), Round(1));
    }

    #[test]
    fn assignment_column_roundtrip() {
        let mut a = RequestArena::new();
        a.insert(&req(0, 0, 2));
        let slot = a.slot_of(RequestId(0)).unwrap();
        a.set_assigned(slot, ResourceId(1), Round(1));
        assert_eq!(a.assigned(slot), Some((ResourceId(1), Round(1))));
        assert_eq!(a.take_assigned(slot), Some((ResourceId(1), Round(1))));
        assert_eq!(a.assigned(slot), None);
        assert_eq!(a.take_assigned(slot), None);
    }

    #[test]
    fn recycled_slot_starts_unassigned() {
        let mut a = RequestArena::new();
        a.insert(&req(0, 0, 2));
        let slot = a.slot_of(RequestId(0)).unwrap();
        a.set_assigned(slot, ResourceId(0), Round(0));
        a.remove(RequestId(0));
        a.insert(&req(1, 0, 2));
        let slot2 = a.slot_of(RequestId(1)).unwrap();
        assert_eq!(slot, slot2, "slot is recycled");
        assert!(a.assigned(slot2).is_none());
    }

    #[test]
    fn clear_assignments_is_blanket() {
        let mut a = RequestArena::new();
        for i in 0..3 {
            a.insert(&req(i, 0, 3));
            let slot = a.slot_of(RequestId(i)).unwrap();
            a.set_assigned(slot, ResourceId(0), Round(i as u64));
        }
        a.clear_assignments();
        assert!(a.iter().all(|r| r.assigned().is_none()));
    }

    #[test]
    fn retain_removes_in_id_order() {
        let mut a = RequestArena::new();
        for i in 0..5 {
            a.insert(&req(i, i as u64, 1));
        }
        let mut dropped = Vec::new();
        a.retain(|r| {
            let keep = r.arrival() >= Round(2);
            if !keep {
                dropped.push(r.id());
            }
            keep
        });
        assert_eq!(dropped, vec![RequestId(0), RequestId(1)]);
        assert_eq!(a.len(), 3);
    }
}
