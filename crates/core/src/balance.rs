//! `A_balance`: maximum matching over the whole known subgraph, maximizing
//! the balancing function `F`; rescheduling allowed.
//!
//! Paper rule (§1.3): *"For every round t, choose any maximum matching in
//! `G_t` with the property that 1) the function
//! `F = Σ_{j=0}^{d-1} X_{t+j} (n+1)^{d-j}` is maximized and 2) all
//! previously scheduled requests remain scheduled (but are allowed to be
//! moved to other time slots)."* Bounds: LB `(5d+2)/(4d+1)` for `d = 3x−1`
//! (Thm 2.5), UB `4/3` for `d = 2` and `6(d−1)/(4d−3)` for `d > 2`
//! (Thm 3.6) — the best upper bound in the paper.
//!
//! `F` is a lexicographic objective on per-round matched-slot counts
//! `(X_t, X_{t+1}, …)` (because `X ≤ n < n+1`), realized by the staged
//! alternating-path exchange in
//! [`saturate_levels`](reqsched_matching::saturate_levels) with level =
//! round offset. Note `F`'s leading term is the current round, so
//! `A_balance` serves at least as eagerly as `A_eager` and additionally
//! fills the near future as early (= as balanced) as possible.

use crate::delta::{DeltaWindow, Saturation, SolveMode};
use crate::eager::AEager;
use crate::schedule::{ScheduleState, Service};
use crate::tiebreak::TieBreak;
use crate::window::WindowScratch;
use crate::OnlineScheduler;
use reqsched_model::{Request, Round};

/// The `A_balance` strategy. See module docs.
pub struct ABalance {
    state: ScheduleState,
    tie: TieBreak,
    scratch: WindowScratch,
    delta: Option<DeltaWindow>,
}

impl ABalance {
    /// Create an `A_balance` scheduler for `n` resources and deadline `d`.
    pub fn new(n: u32, d: u32, tie: TieBreak) -> ABalance {
        ABalance::with_mode(n, d, tie, SolveMode::Delta)
    }

    /// [`ABalance::new`] with an explicit [`SolveMode`] (the `Fresh` path
    /// is the from-scratch reference used by parity tests and benchmarks).
    pub fn with_mode(n: u32, d: u32, tie: TieBreak, mode: SolveMode) -> ABalance {
        ABalance {
            state: ScheduleState::new(n, d),
            tie,
            scratch: WindowScratch::new(),
            delta: mode.delta_active(&tie).then(|| DeltaWindow::new(n, d)),
        }
    }

    /// Edges scanned by the delta engine's searches, if it is active.
    pub fn delta_work(&self) -> Option<u64> {
        self.delta.as_ref().map(|d| d.edges_scanned())
    }

    /// Read-only view of the internal schedule window (observability: used
    /// by compliance tests that verify the strategy's defining rule against
    /// brute-force enumeration, and handy for instrumentation).
    pub fn schedule(&self) -> &crate::schedule::ScheduleState {
        &self.state
    }
}

impl OnlineScheduler for ABalance {
    fn name(&self) -> &str {
        "A_balance"
    }

    fn set_fault_plan(&mut self, plan: std::sync::Arc<reqsched_faults::FaultPlan>) {
        self.state.set_fault_plan(plan);
    }

    fn on_round(&mut self, round: Round, arrivals: &[Request]) -> Vec<Service> {
        if let Some(dw) = &mut self.delta {
            dw.round_reschedulable(
                &mut self.state,
                &self.tie,
                round,
                arrivals,
                Saturation::ByRound,
            )
        } else {
            AEager::round_body(
                &mut self.state,
                &self.tie,
                &mut self.scratch,
                round,
                arrivals,
                true,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reqsched_model::{Instance, ResourceId, TraceBuilder};

    fn run_log(strategy: &mut dyn OnlineScheduler, inst: &Instance) -> Vec<(u64, Service)> {
        let mut log = Vec::new();
        for t in 0..inst.horizon().get() {
            for s in strategy.on_round(Round(t), inst.trace.arrivals_at(Round(t))) {
                log.push((t, s));
            }
        }
        log
    }

    #[test]
    fn fills_earliest_rounds_first() {
        // 4 requests (S0|S1), d = 3: F demands rounds 0 and 1 full before
        // touching round 2.
        let mut b = TraceBuilder::new(3);
        for _ in 0..4 {
            b.push(0u64, 0u32, 1u32);
        }
        let inst = Instance::new(2, 3, b.build());
        let mut a = ABalance::new(2, 3, TieBreak::FirstFit);
        let log = run_log(&mut a, &inst);
        assert_eq!(log.len(), 4);
        let rounds: Vec<u64> = log.iter().map(|(t, _)| *t).collect();
        assert_eq!(rounds, vec![0, 0, 1, 1]);
    }

    #[test]
    fn balances_per_resource_within_a_round() {
        // Two independent pairs: (S0|S1) x2 and (S2|S3) x2, d = 2.
        // All four must be served in round 0 across four distinct resources.
        let mut b = TraceBuilder::new(2);
        b.push(0u64, 0u32, 1u32);
        b.push(0u64, 0u32, 1u32);
        b.push(0u64, 2u32, 3u32);
        b.push(0u64, 2u32, 3u32);
        let inst = Instance::new(4, 2, b.build());
        let mut a = ABalance::new(4, 2, TieBreak::FirstFit);
        let log = run_log(&mut a, &inst);
        assert!(log.iter().all(|(t, _)| *t == 0));
        let mut res: Vec<ResourceId> = log.iter().map(|(_, s)| s.resource).collect();
        res.sort();
        assert_eq!(
            res,
            vec![ResourceId(0), ResourceId(1), ResourceId(2), ResourceId(3)]
        );
    }

    #[test]
    fn reschedules_like_eager() {
        // Same trap as in the eager tests: must reschedule to serve all.
        use reqsched_model::Hint;
        let d = 3u32;
        let mut b = TraceBuilder::new(d);
        b.block2(0u64, 1u32, 2u32, 0);
        b.push_hinted(2u64, 0u32, 1u32, Hint::prefer(ResourceId(1)));
        b.push_hinted(2u64, 3u32, 2u32, Hint::prefer(ResourceId(2)));
        b.block2(3u64, 1u32, 2u32, 0);
        let inst = Instance::new(4, d, b.build());
        let mut a = ABalance::new(4, d, TieBreak::HintGuided);
        assert_eq!(run_log(&mut a, &inst).len(), inst.total_requests());
    }

    #[test]
    fn no_rule_prefers_loaded_second_alternatives() {
        // Theorem 2.5's exploited blind spot: requests whose second
        // alternative is a permanently blocked resource are NOT preferred
        // over requests with two open alternatives — with equal hints, the
        // id-ordered member serves the flexible request first.
        let mut b = TraceBuilder::new(2);
        // S2 blocked by a block(2,2) with S3.
        b.block2(0u64, 2u32, 3u32, 9);
        // q (id after block): flexible (S0|S1); r: constrained (S0|S2).
        b.push(0u64, 0u32, 1u32);
        b.push(0u64, 0u32, 2u32);
        let inst = Instance::new(4, 2, b.build());
        let mut a = ABalance::new(4, 2, TieBreak::FirstFit);
        let log = run_log(&mut a, &inst);
        // Everything can be served here (q -> S1, r -> S0, block -> S2,S3);
        // max matching + F finds it regardless of the blind spot.
        assert_eq!(log.len(), inst.total_requests());
    }
}
