//! The delta round engine: carry each strategy's matching from round `t` to
//! `t+1` by applying the round delta instead of rebuilding `G_t` and
//! re-solving from scratch.
//!
//! Consecutive window graphs differ only by the round delta — arrivals in,
//! slot column `t+d` in, served/expired requests and column `t` out. The
//! paper's own symmetric-difference machinery (§1.2) bounds how a maximum
//! matching degrades under each of those changes: one alternating search per
//! lost matched vertex. [`DeltaWindow`] exploits that via
//! [`DynamicMatching`], turning the per-round cost from `O(HK(G_t))` into
//! `O(changes × augmenting-path)`.
//!
//! ## Exactness, not approximation
//!
//! The delta path is **bit-for-bit equivalent** to the from-scratch path for
//! the [`TieBreak::FirstFit`] and [`TieBreak::LatestFit`] members, because
//! for those tie-breaks the from-scratch solve is replayable incrementally:
//!
//! * **Frozen adjacency.** A request's feasible slot set is fixed at
//!   arrival: the window at arrival covers its whole feasible range
//!   (`expiry ≤ arrival + d − 1`), later rounds only *retire* columns from
//!   it, and retired edges are skipped during search. First/latest-fit slot
//!   preference depends only on `(round, alternative position)`, so the
//!   order frozen at arrival stays correct as the window slides. (The
//!   `HintGuided` priority pass and `Random`'s per-round reshuffle do not
//!   have this property — those members keep the from-scratch path.)
//! * **No-op searches are skipped, not replayed.** The from-scratch path
//!   re-runs an augmenting search from every still-unmatched request each
//!   round; at a maximum matching those searches fail without touching the
//!   matching, and the window only ever *shrinks* for an old request, so a
//!   failed request stays failed until it expires. The delta path searches
//!   only from new arrivals — in the same id order the fresh path uses.
//! * **By-round saturation is a fixpoint across idle rounds.** Sliding the
//!   window maps level `j+1` exchanges onto level `j` exchanges (relative
//!   column order is preserved); serving removes both endpoints of every
//!   front-column pair and expiry removes free vertices only, neither of
//!   which can create a new improving exchange. So `A_balance`'s pass is
//!   only needed in rounds with arrivals. `A_eager`'s two-level "current
//!   first" ranking is *not* shift-invariant (the slide promotes column
//!   `t+1` into the preferred class), so its pass runs every round — still
//!   without any graph rebuild.
//!
//! Each converted strategy keeps its original body as the *fresh-solve
//! reference path* (`SolveMode::Fresh`), which the parity tests drive
//! against the delta path round by round.

use crate::schedule::{RoundOutcome, ScheduleState, Service};
use crate::tiebreak::TieBreak;
use crate::window::order_slots;
use reqsched_matching::DynamicMatching;
use reqsched_model::{Request, RequestId, ResourceId, Round};

/// How a strategy solves its per-round matching problem.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolveMode {
    /// Carry the matching across rounds, repairing by the round delta
    /// (default). Falls back to `Fresh` for tie-breaks whose member choice
    /// is not replayable incrementally (`HintGuided`, `Random`).
    Delta,
    /// Rebuild the window graph and re-solve from scratch every round — the
    /// reference path, kept for tests and differential benchmarks.
    Fresh,
}

impl SolveMode {
    /// Whether the delta engine runs for this mode + tie-break combination.
    pub fn delta_active(self, tie: &TieBreak) -> bool {
        self == SolveMode::Delta && matches!(tie, TieBreak::FirstFit | TieBreak::LatestFit)
    }
}

/// Which lexicographic saturation pass a rescheduling strategy runs after
/// reaching a maximum matching.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Saturation {
    /// No exchange pass (`A_lazy_max`).
    None,
    /// Two levels: current round ≻ everything later (`A_eager`'s rule 1).
    CurrentFirst,
    /// Level = round offset: the full balancing function `F` (`A_balance`,
    /// and `A_fix_balance` restricted to its new arrivals).
    ByRound,
}

/// Sliding-window delta state shared by the full-window strategies
/// (`A_eager`, `A_balance`, `A_lazy_max`, `A_fix_balance`).
///
/// Owns a [`DynamicMatching`] whose columns are the schedule window rounds
/// `front .. front+d` and whose left vertices are every request ever added
/// (dead ones stay as tombstones). Absolute right id = `round * n +
/// resource`, so adjacency frozen at arrival stays valid as the window
/// slides.
pub struct DeltaWindow {
    dm: DynamicMatching,
    /// Left index → request id (append-only; ids arrive in increasing
    /// order, so lookup is a binary search).
    ids: Vec<RequestId>,
    n: u32,
    d: u32,
    started: bool,
    /// Slot-candidate staging for one request: `(round, alt pos, right)`.
    slots: Vec<(u64, u32, u32)>,
    /// Adjacency staging for one request.
    adj: Vec<u32>,
    /// Per-column saturation levels.
    levels: Vec<u32>,
    /// Drained dirty-left buffer for the state write-back.
    dirty: Vec<u32>,
}

impl DeltaWindow {
    /// A delta window for `n` resources and deadline parameter `d`.
    pub fn new(n: u32, d: u32) -> DeltaWindow {
        assert!(n >= 1 && d >= 1);
        DeltaWindow {
            dm: DynamicMatching::new(n),
            ids: Vec::new(),
            n,
            d,
            started: false,
            slots: Vec::new(),
            adj: Vec::new(),
            levels: Vec::new(),
            dirty: Vec::new(),
        }
    }

    /// Total edges scanned by the engine's alternating searches — the
    /// delta path's solve-work counter.
    pub fn edges_scanned(&self) -> u64 {
        self.dm.edges_scanned()
    }

    /// Repair searches run for displaced partners of retired columns.
    pub fn repairs(&self) -> u64 {
        self.dm.repairs()
    }

    fn begin(&mut self, state: &ScheduleState) {
        if !self.started {
            self.started = true;
            let front = state.front().get();
            self.dm.set_base(front);
            self.dm.ensure_cols(front + self.d as u64);
        }
    }

    fn left_of(&self, id: RequestId) -> u32 {
        self.ids
            .binary_search(&id)
            // lint: callers only pass ids inserted into `ids`, which is append-only and sorted
            .expect("request tracked by the delta window") as u32
    }

    /// Add a just-inserted request as a new left vertex with its adjacency
    /// frozen at arrival. `only_free` restricts edges to slots free at the
    /// start of the round (the `A_fix` family's no-rescheduling graph).
    fn add_request(
        &mut self,
        state: &ScheduleState,
        req: &Request,
        tie: &TieBreak,
        only_free: bool,
    ) -> u32 {
        let front = state.front();
        debug_assert_eq!(req.arrival, front);
        self.slots.clear();
        let lo = req.arrival.get();
        let hi = req.expiry().get().min(front.get() + self.d as u64 - 1);
        for round in lo..=hi {
            for (pos, &res) in req.alternatives.as_slice().iter().enumerate() {
                // The fault plan is static, so masking crashed/stalled slots
                // at arrival stays exact for the frozen adjacency: a masked
                // slot never becomes usable for this request again.
                if !state.slot_usable(res, Round(round)) {
                    continue;
                }
                if only_free && !state.slot_free(res, Round(round)) {
                    continue;
                }
                let right = crate::fit_u32(round * self.n as u64 + res.0 as u64);
                self.slots.push((round, pos as u32, right));
            }
        }
        order_slots(
            &mut self.slots,
            req.hint.prefer,
            req.alternatives.as_slice(),
            tie,
            front,
        );
        self.adj.clear();
        self.adj.extend(self.slots.iter().map(|&(_, _, r)| r));
        let l = self.dm.add_left(&self.adj);
        debug_assert_eq!(l as usize, self.ids.len());
        debug_assert!(
            self.ids.last().is_none_or(|&last| last < req.id),
            "request ids must arrive in increasing order"
        );
        self.ids.push(req.id);
        l
    }

    /// Write the matching delta back into the schedule state: every left
    /// whose mate changed since the last sync is unassigned, then
    /// re-assigned per its current mate.
    fn sync(&mut self, state: &mut ScheduleState) {
        self.dirty.clear();
        self.dm.take_dirty(&mut self.dirty);
        // Two passes so a slot freed by one displaced request can be taken
        // by another in the same delta.
        for &l in &self.dirty {
            state.unassign(self.ids[l as usize]);
        }
        for &l in &self.dirty {
            if !self.dm.is_alive(l) {
                continue;
            }
            if let Some(r) = self.dm.left_mate(l) {
                let round = Round(r as u64 / self.n as u64);
                let res = ResourceId(r % self.n);
                state.assign(self.ids[l as usize], res, round);
            }
        }
        debug_assert!(state.check_consistency());
    }

    /// Apply the end-of-round delta: served and expired requests leave the
    /// matching, the front column retires, column `front + d` opens.
    fn advance(&mut self, state: &ScheduleState, outcome: &RoundOutcome) {
        for s in &outcome.served {
            self.dm.remove_left(self.left_of(s.request), false);
        }
        for &id in &outcome.expired {
            let l = self.left_of(id);
            if self.dm.is_alive(l) {
                self.dm.remove_left(l, false);
            }
        }
        // `finish_round` already advanced the state's front.
        let front = state.front().get();
        self.dm.retire_cols(front);
        self.dm.ensure_cols(front + self.d as u64);
    }

    /// One round of a rescheduling strategy (`A_eager` / `A_balance` /
    /// `A_lazy_max`): all live requests participate, previously scheduled
    /// requests stay scheduled but may move, then the chosen saturation
    /// pass runs.
    pub(crate) fn round_reschedulable(
        &mut self,
        state: &mut ScheduleState,
        tie: &TieBreak,
        round: Round,
        arrivals: &[Request],
        sat: Saturation,
    ) -> Vec<Service> {
        assert_eq!(round, state.front(), "rounds must be consecutive");
        self.begin(state);
        for req in arrivals {
            state.insert(req);
        }
        // Augment from each arrival in id order — exactly the searches the
        // fresh path's kuhn pass performs that can change the matching
        // (searches from old still-unmatched requests provably fail).
        for req in arrivals {
            let l = self.add_request(state, req, tie, false);
            self.dm.augment(l);
        }
        let DeltaWindow { dm, levels, d, .. } = self;
        match sat {
            Saturation::None => {}
            // The two-level ranking is *not* shift-invariant: sliding the
            // window promotes column t+1 from "later" to "current", which
            // can expose an improving exchange even without arrivals — so
            // A_eager's pass must run every round.
            Saturation::CurrentFirst => {
                levels.clear();
                levels.extend((0..*d).map(|j| u32::from(j != 0)));
                dm.saturate_columns(levels, 0);
            }
            // The full by-round ranking is shift-invariant (relative column
            // order is preserved; serving removes whole pairs, expiry only
            // free vertices, the new bottom column starts edge-free), so the
            // previous fixpoint survives idle rounds (see module docs).
            Saturation::ByRound => {
                if !arrivals.is_empty() {
                    levels.clear();
                    levels.extend(0..*d);
                    dm.saturate_columns(levels, 0);
                }
            }
        }
        self.sync(state);
        // The matching must be *maximum* here, not merely consistent — the
        // competitive guarantees of the rescheduling strategies ride on it.
        #[cfg(feature = "audit")]
        self.dm.audit();
        let outcome = state.finish_round();
        self.advance(state, &outcome);
        outcome.served
    }

    /// One round of `A_fix_balance`: only the new arrivals are matched, on
    /// slots free at the start of the round; old assignments are fixed.
    /// Arrivals that cannot be scheduled are dropped (they can never be
    /// scheduled later under the no-rescheduling rule).
    pub(crate) fn round_fix_balance(
        &mut self,
        state: &mut ScheduleState,
        tie: &TieBreak,
        round: Round,
        arrivals: &[Request],
    ) -> Vec<Service> {
        assert_eq!(round, state.front(), "rounds must be consecutive");
        self.begin(state);
        for req in arrivals {
            state.insert(req);
        }
        if !arrivals.is_empty() {
            let min_left = self.dm.n_left();
            // Adjacency for *all* arrivals is clipped to the free slots of
            // the round start, before any of them is matched.
            for req in arrivals {
                self.add_request(state, req, tie, true);
            }
            // 1) Maximum number of new requests scheduled…
            for l in min_left..self.dm.n_left() {
                self.dm.augment(l);
            }
            // 2) …then F-maximal. Old assignments are fixed constants of F
            // and their slots are not edges here, so restricting the
            // exchange pass to the new lefts optimizes exactly F.
            let DeltaWindow { dm, levels, d, .. } = self;
            levels.clear();
            levels.extend(0..*d);
            dm.saturate_columns(levels, min_left);
            self.sync(state);
            for l in min_left..self.dm.n_left() {
                if self.dm.left_mate(l).is_none() {
                    self.dm.remove_left(l, false);
                    state.drop_request(self.ids[l as usize]);
                }
            }
        }
        // After dropping unmatched arrivals every live left is matched, so
        // the fresh re-solve doubles as a check that no drop was premature.
        #[cfg(feature = "audit")]
        self.dm.audit();
        let outcome = state.finish_round();
        self.advance(state, &outcome);
        outcome.served
    }
}

/// Delta state for `A_current`: a single fixed slot column (right vertex =
/// resource id), since the strategy only ever matches the current round.
///
/// The matching itself empties every round (everything matched is served
/// immediately), so the win over the fresh path is skipping the per-round
/// graph rebuild: adjacency never changes, it is the request's alternative
/// list in preference order, frozen at arrival.
pub struct CurrentDelta {
    dm: DynamicMatching,
    ids: Vec<RequestId>,
    /// Alive left indices in id order — the strategy re-matches all of
    /// them from scratch each round.
    live: Vec<u32>,
    n: u32,
    adj: Vec<u32>,
    dirty: Vec<u32>,
}

impl CurrentDelta {
    /// A current-round delta state for `n` resources.
    pub fn new(n: u32) -> CurrentDelta {
        assert!(n >= 1);
        let mut dm = DynamicMatching::new(n);
        dm.ensure_cols(1);
        CurrentDelta {
            dm,
            ids: Vec::new(),
            live: Vec::new(),
            n,
            adj: Vec::new(),
            dirty: Vec::new(),
        }
    }

    /// Total edges scanned by the matching searches.
    pub fn edges_scanned(&self) -> u64 {
        self.dm.edges_scanned()
    }

    fn left_of(&self, id: RequestId) -> u32 {
        self.ids
            .binary_search(&id)
            // lint: callers only pass ids inserted into `ids`, which is append-only and sorted
            .expect("request tracked by the delta state") as u32
    }

    /// One `A_current` round: every live request competes for the current
    /// round's `n` slots, matched ones are served immediately.
    pub(crate) fn round(
        &mut self,
        state: &mut ScheduleState,
        round: Round,
        arrivals: &[Request],
    ) -> Vec<Service> {
        assert_eq!(round, state.front(), "rounds must be consecutive");
        for req in arrivals {
            state.insert(req);
            // Single-round window: first/latest-fit both reduce to
            // alternative-position order.
            self.adj.clear();
            self.adj
                .extend(req.alternatives.as_slice().iter().map(|r| r.0));
            let l = self.dm.add_left(&self.adj);
            debug_assert_eq!(l as usize, self.ids.len());
            debug_assert!(
                self.ids.last().is_none_or(|&last| last < req.id),
                "request ids must arrive in increasing order"
            );
            self.ids.push(req.id);
            self.live.push(l);
        }
        // The matching emptied at the end of the previous round (matched ⇒
        // served ⇒ removed), so augmenting every live request in id order
        // replays the fresh path's kuhn pass exactly.
        for i in 0..self.live.len() {
            self.dm.augment(self.live[i]);
        }
        self.dirty.clear();
        self.dm.take_dirty(&mut self.dirty);
        let front = state.front();
        for &l in &self.dirty {
            if !self.dm.is_alive(l) {
                continue; // tombstone from last round's removals
            }
            if let Some(r) = self.dm.left_mate(l) {
                state.assign(self.ids[l as usize], ResourceId(r % self.n), front);
            }
        }
        debug_assert!(state.check_consistency());
        // Audit before serving empties the matching: augmenting every live
        // request must have produced a maximum matching on the single
        // current column.
        #[cfg(feature = "audit")]
        self.dm.audit();
        let outcome = state.finish_round();
        for s in &outcome.served {
            self.dm.remove_left(self.left_of(s.request), false);
        }
        for &id in &outcome.expired {
            let l = self.left_of(id);
            if self.dm.is_alive(l) {
                self.dm.remove_left(l, false);
            }
        }
        let dm = &self.dm;
        self.live.retain(|&l| dm.is_alive(l));
        outcome.served
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ABalance, ACurrent, AEager, AFixBalance, ALazyMax, OnlineScheduler};
    use reqsched_model::{Instance, TraceBuilder};

    /// Deterministic pseudo-random trace: bursts of 2-choice requests with
    /// mixed deadlines, enough pressure that requests fail, expire and get
    /// rescheduled.
    fn scramble_trace(n: u32, d: u32, rounds: u64, seed: u64) -> Instance {
        let mut b = TraceBuilder::new(d);
        let mut s = seed | 1;
        let mut rng = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for t in 0..rounds {
            let burst = (rng() % (n as u64 + 2)) as u32;
            for _ in 0..burst {
                let a = (rng() % n as u64) as u32;
                let mut bb = (rng() % n as u64) as u32;
                if bb == a {
                    bb = (bb + 1) % n;
                }
                let deadline = 1 + (rng() % d as u64) as u32;
                b.push_full(
                    Round(t),
                    reqsched_model::Alternatives::two(ResourceId(a), ResourceId(bb)),
                    deadline,
                    0,
                    Default::default(),
                );
            }
        }
        Instance::new(n, d, b.build())
    }

    fn assert_round_parity(
        mut delta: impl FnMut(Round, &[Request]) -> Vec<Service>,
        fresh: &mut dyn OnlineScheduler,
        inst: &Instance,
    ) {
        for t in 0..inst.horizon().get() + inst.d as u64 {
            let arrivals = inst.trace.arrivals_at(Round(t));
            let got = delta(Round(t), arrivals);
            let want = fresh.on_round(Round(t), arrivals);
            assert_eq!(got, want, "round {t} diverged");
        }
    }

    #[test]
    fn eager_delta_matches_fresh() {
        for tie in [TieBreak::FirstFit, TieBreak::LatestFit] {
            for (n, d, seed) in [(3, 2, 5), (4, 3, 11), (2, 4, 23), (5, 5, 41)] {
                let inst = scramble_trace(n, d, 40, seed);
                let mut st = ScheduleState::new(n, d);
                let mut dw = DeltaWindow::new(n, d);
                let mut fresh = AEager::with_mode(n, d, tie, SolveMode::Fresh);
                assert_round_parity(
                    |r, a| dw.round_reschedulable(&mut st, &tie, r, a, Saturation::CurrentFirst),
                    &mut fresh,
                    &inst,
                );
            }
        }
    }

    #[test]
    fn balance_delta_matches_fresh() {
        for tie in [TieBreak::FirstFit, TieBreak::LatestFit] {
            for (n, d, seed) in [(3, 2, 7), (4, 3, 13), (2, 5, 29)] {
                let inst = scramble_trace(n, d, 40, seed);
                let mut st = ScheduleState::new(n, d);
                let mut dw = DeltaWindow::new(n, d);
                let mut fresh = ABalance::with_mode(n, d, tie, SolveMode::Fresh);
                assert_round_parity(
                    |r, a| dw.round_reschedulable(&mut st, &tie, r, a, Saturation::ByRound),
                    &mut fresh,
                    &inst,
                );
            }
        }
    }

    #[test]
    fn lazy_delta_matches_fresh() {
        for tie in [TieBreak::FirstFit, TieBreak::LatestFit] {
            for (n, d, seed) in [(3, 3, 17), (4, 2, 19), (2, 4, 31)] {
                let inst = scramble_trace(n, d, 40, seed);
                let mut st = ScheduleState::new(n, d);
                let mut dw = DeltaWindow::new(n, d);
                let mut fresh = ALazyMax::with_mode(n, d, tie, SolveMode::Fresh);
                assert_round_parity(
                    |r, a| dw.round_reschedulable(&mut st, &tie, r, a, Saturation::None),
                    &mut fresh,
                    &inst,
                );
            }
        }
    }

    #[test]
    fn fix_balance_delta_matches_fresh() {
        for tie in [TieBreak::FirstFit, TieBreak::LatestFit] {
            for (n, d, seed) in [(3, 2, 3), (4, 3, 37), (2, 5, 43), (6, 4, 53)] {
                let inst = scramble_trace(n, d, 40, seed);
                let mut st = ScheduleState::new(n, d);
                let mut dw = DeltaWindow::new(n, d);
                let mut fresh = AFixBalance::with_mode(n, d, tie, SolveMode::Fresh);
                assert_round_parity(
                    |r, a| dw.round_fix_balance(&mut st, &tie, r, a),
                    &mut fresh,
                    &inst,
                );
            }
        }
    }

    #[test]
    fn current_delta_matches_fresh() {
        for tie in [TieBreak::FirstFit, TieBreak::LatestFit] {
            for (n, d, seed) in [(3, 2, 9), (4, 3, 15), (2, 4, 27), (5, 1, 61)] {
                let inst = scramble_trace(n, d, 40, seed);
                let mut st = ScheduleState::new(n, d);
                let mut cd = CurrentDelta::new(n);
                let mut fresh = ACurrent::with_mode(n, d, tie, SolveMode::Fresh);
                assert_round_parity(|r, a| cd.round(&mut st, r, a), &mut fresh, &inst);
            }
        }
    }

    #[test]
    fn converted_strategies_default_to_delta_and_agree() {
        // The public constructors run the delta path for FirstFit; a fresh
        // twin must produce the identical service sequence.
        let inst = scramble_trace(4, 3, 60, 71);
        let pairs: Vec<(Box<dyn OnlineScheduler>, Box<dyn OnlineScheduler>)> = vec![
            (
                Box::new(AEager::new(4, 3, TieBreak::FirstFit)),
                Box::new(AEager::with_mode(
                    4,
                    3,
                    TieBreak::FirstFit,
                    SolveMode::Fresh,
                )),
            ),
            (
                Box::new(ABalance::new(4, 3, TieBreak::FirstFit)),
                Box::new(ABalance::with_mode(
                    4,
                    3,
                    TieBreak::FirstFit,
                    SolveMode::Fresh,
                )),
            ),
            (
                Box::new(ACurrent::new(4, 3, TieBreak::FirstFit)),
                Box::new(ACurrent::with_mode(
                    4,
                    3,
                    TieBreak::FirstFit,
                    SolveMode::Fresh,
                )),
            ),
            (
                Box::new(AFixBalance::new(4, 3, TieBreak::FirstFit)),
                Box::new(AFixBalance::with_mode(
                    4,
                    3,
                    TieBreak::FirstFit,
                    SolveMode::Fresh,
                )),
            ),
            (
                Box::new(ALazyMax::new(4, 3, TieBreak::FirstFit)),
                Box::new(ALazyMax::with_mode(
                    4,
                    3,
                    TieBreak::FirstFit,
                    SolveMode::Fresh,
                )),
            ),
        ];
        for (mut a, mut b) in pairs {
            for t in 0..inst.horizon().get() + 3 {
                let arr = inst.trace.arrivals_at(Round(t));
                assert_eq!(
                    a.on_round(Round(t), arr),
                    b.on_round(Round(t), arr),
                    "{} round {t}",
                    a.name()
                );
            }
        }
    }

    #[test]
    fn hint_guided_and_random_fall_back_to_fresh() {
        // Non-replayable tie-breaks must not activate the delta engine; the
        // constructors stay usable and behave like the fresh path trivially.
        assert!(!SolveMode::Delta.delta_active(&TieBreak::HintGuided));
        assert!(!SolveMode::Delta.delta_active(&TieBreak::Random(7)));
        assert!(SolveMode::Delta.delta_active(&TieBreak::FirstFit));
        assert!(SolveMode::Delta.delta_active(&TieBreak::LatestFit));
        assert!(!SolveMode::Fresh.delta_active(&TieBreak::FirstFit));
    }
}
