//! `A_eager`: maximum matching over the whole known subgraph, serving as
//! many requests as possible *right now*; rescheduling allowed.
//!
//! Paper rule (§1.3): *"For every round t, choose any maximum matching in
//! `G_t` with the property that 1) a maximum possible number of requests is
//! scheduled at round t and 2) all previously scheduled requests remain
//! scheduled (but are allowed to be moved to other time slots)."*
//! Bounds: LB `4/3` (Thm 2.4), UB `(3d−2)/(2d−1)` (Thm 3.5) — tight at
//! `d = 2`.
//!
//! Implementation: carry the previous matching into `G_t` (expired slots
//! have been sliced off, served requests removed), augment every unmatched
//! live request (augmenting paths never unmatch a matched request — that is
//! exactly rule 2), then apply the coverage exchange of
//! [`saturate_levels`](reqsched_matching::saturate_levels) with the
//! two-level priority "current round ≻ everything later" — rule 1 — which
//! keeps both cardinality and the set of matched requests intact.

use crate::delta::{DeltaWindow, Saturation, SolveMode};
use crate::schedule::{ScheduleState, Service};
use crate::tiebreak::TieBreak;
use crate::window::{WindowGraph, WindowScratch};
use crate::OnlineScheduler;
use reqsched_matching::{kuhn_in_order_with, saturate_levels_with};
use reqsched_model::{Request, Round};

/// The `A_eager` strategy. See module docs.
pub struct AEager {
    state: ScheduleState,
    tie: TieBreak,
    scratch: WindowScratch,
    delta: Option<DeltaWindow>,
}

impl AEager {
    /// Create an `A_eager` scheduler for `n` resources and deadline `d`.
    pub fn new(n: u32, d: u32, tie: TieBreak) -> AEager {
        AEager::with_mode(n, d, tie, SolveMode::Delta)
    }

    /// [`AEager::new`] with an explicit [`SolveMode`] (the `Fresh` path is
    /// the from-scratch reference used by parity tests and benchmarks).
    pub fn with_mode(n: u32, d: u32, tie: TieBreak, mode: SolveMode) -> AEager {
        AEager {
            state: ScheduleState::new(n, d),
            tie,
            scratch: WindowScratch::new(),
            delta: mode.delta_active(&tie).then(|| DeltaWindow::new(n, d)),
        }
    }

    /// Edges scanned by the delta engine's searches, if it is active.
    pub fn delta_work(&self) -> Option<u64> {
        self.delta.as_ref().map(|d| d.edges_scanned())
    }

    /// Read-only view of the internal schedule window (observability: used
    /// by compliance tests that verify the strategy's defining rule against
    /// brute-force enumeration, and handy for instrumentation).
    pub fn schedule(&self) -> &crate::schedule::ScheduleState {
        &self.state
    }

    /// Shared round body for `A_eager` and `A_balance` (they differ only in
    /// the right-vertex priority levels).
    pub(crate) fn round_body(
        state: &mut ScheduleState,
        tie: &TieBreak,
        scratch: &mut WindowScratch,
        round: Round,
        arrivals: &[Request],
        levels_by_round: bool,
    ) -> Vec<Service> {
        assert_eq!(round, state.front(), "rounds must be consecutive");
        for req in arrivals {
            state.insert(req);
        }
        let mut lefts = scratch.take_lefts();
        lefts.extend(state.live_iter().map(|l| l.id()));
        if !lefts.is_empty() {
            let (wg, mut m) = WindowGraph::build_with(state, lefts, state.d(), true, tie, scratch);
            // Rule 2 first: the initial matching is the carried schedule;
            // augmentation keeps all of it matched while reaching a maximum
            // matching of G_t. Unmatched lefts (new arrivals and previously
            // failed-but-alive requests) are tried in tie-break order.
            let unmatched: Vec<u32> = (0..wg.graph.n_left()).filter(|&l| m.left_free(l)).collect();
            let order = wg.left_order(state, unmatched.into_iter(), tie);
            kuhn_in_order_with(&wg.graph, &mut m, &order, &mut scratch.ws);
            debug_assert!(m.is_maximum(&wg.graph));
            // Rule 1: maximize service *now* (or the full lexicographic F
            // for A_balance) without losing cardinality or matched requests.
            if levels_by_round {
                wg.write_levels_by_round(&mut scratch.levels);
            } else {
                wg.write_levels_current_first(&mut scratch.levels);
            }
            saturate_levels_with(&wg.graph, &mut m, &scratch.levels, &mut scratch.ws);
            if tie.is_hint_guided() {
                wg.priority_position_pass_with(
                    state,
                    &mut m,
                    &mut scratch.prio,
                    &mut scratch.pairs,
                );
            }
            wg.apply(state, &m);
            scratch.recycle(wg, m);
        } else {
            scratch.return_lefts(lefts);
        }
        state.finish_round().served
    }
}

impl OnlineScheduler for AEager {
    fn name(&self) -> &str {
        "A_eager"
    }

    fn set_fault_plan(&mut self, plan: std::sync::Arc<reqsched_faults::FaultPlan>) {
        self.state.set_fault_plan(plan);
    }

    fn on_round(&mut self, round: Round, arrivals: &[Request]) -> Vec<Service> {
        if let Some(dw) = &mut self.delta {
            dw.round_reschedulable(
                &mut self.state,
                &self.tie,
                round,
                arrivals,
                Saturation::CurrentFirst,
            )
        } else {
            AEager::round_body(
                &mut self.state,
                &self.tie,
                &mut self.scratch,
                round,
                arrivals,
                false,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reqsched_model::{Instance, ResourceId, TraceBuilder};

    fn run(strategy: &mut dyn OnlineScheduler, inst: &Instance) -> usize {
        (0..inst.horizon().get())
            .map(|t| {
                strategy
                    .on_round(Round(t), inst.trace.arrivals_at(Round(t)))
                    .len()
            })
            .sum()
    }

    #[test]
    fn rescheduling_beats_afix_trap() {
        // The Theorem 2.1 trap: A_fix loses because it cannot move R1 off
        // the soon-blocked resource; A_eager moves it and serves everything.
        use crate::afix::AFix;
        use reqsched_model::Hint;
        let d = 3u32;
        let mut b = TraceBuilder::new(d);
        b.block2(0u64, 1u32, 2u32, 0); // S1, S2 busy rounds 0..=2
                                       // Round 2: hinted requests park on future S1/S2 slots.
        b.push_hinted(2u64, 0u32, 1u32, Hint::prefer(ResourceId(1)));
        b.push_hinted(2u64, 3u32, 2u32, Hint::prefer(ResourceId(2)));
        // Round 3: second block on the shared pair.
        b.block2(3u64, 1u32, 2u32, 0);
        let inst = Instance::new(4, d, b.build());
        let total = inst.total_requests();

        let mut eager = AEager::new(4, d, TieBreak::HintGuided);
        let eager_served = run(&mut eager, &inst);
        let mut afix = AFix::new(4, d, TieBreak::HintGuided);
        let afix_served = run(&mut afix, &inst);

        assert_eq!(eager_served, total, "A_eager reschedules and serves all");
        assert!(afix_served < total, "A_fix stays trapped");
    }

    #[test]
    fn serves_now_rather_than_later() {
        // One request, d = 3: eager must serve it in round 0, not round 2.
        let mut b = TraceBuilder::new(3);
        b.push(0u64, 0u32, 1u32);
        let inst = Instance::new(2, 3, b.build());
        let mut a = AEager::new(2, 3, TieBreak::FirstFit);
        let served_round0 = a.on_round(Round(0), inst.trace.arrivals_at(Round(0)));
        assert_eq!(served_round0.len(), 1);
    }

    #[test]
    fn previously_failed_request_rescued_by_cascade() {
        // d = 2, one resource S0 only usable via alternatives pairs.
        // Round 0: q0=(S0|S1), q1=(S0|S1), q2=(S0|S1): capacity of window
        // rounds {0,1} × {S0,S1} is 4, so all 3 get matched. Add q3=(S0|S1):
        // 4 requests, 4 slots — all matched. One more q4: 5 requests cannot
        // all fit; one fails but stays live. In round 1 a fresh row appears:
        // new slots (round 2) are NOT feasible for q4 (expiry = 1), so q4
        // expires. Sanity: total served = 4.
        let mut b = TraceBuilder::new(2);
        for _ in 0..5 {
            b.push(0u64, 0u32, 1u32);
        }
        let inst = Instance::new(2, 2, b.build());
        let mut a = AEager::new(2, 2, TieBreak::FirstFit);
        assert_eq!(run(&mut a, &inst), 4);
    }

    #[test]
    fn maximum_matching_across_window_beats_current_only() {
        use crate::acurrent::ACurrent;
        // Theorem 2.2-flavoured myopia test at l=2, d=2:
        // R1: 2 requests with alternatives (S0|S1); R2: 2 requests (S0|S1)?
        // Use: R1 = {(S0|S1), (S0|S1)}, R2 = {(S0|S2), (S0|S2)} and S2 very
        // slow... simpler canonical case:
        //   q0 = (S0|S1) d=2, q1 = (S0|S1) d=2, plus round-1 block on S0,S1.
        // A_current serves q0,q1 in round 0 (fine) — both behave the same
        // here; instead test a case where looking ahead matters:
        //   round 0: q0=(S0|S1); q1..q2 block-ish (S0|S1) with deadline 1.
        // Max current matching must serve the deadline-1 requests first to
        // win; A_eager's full-window maximum does.
        let mut b = TraceBuilder::new(2);
        b.push(0u64, 0u32, 1u32); // q0, d=2
        b.push_full(
            Round(0),
            reqsched_model::Alternatives::two(ResourceId(0), ResourceId(1)),
            1,
            0,
            Default::default(),
        );
        b.push_full(
            Round(0),
            reqsched_model::Alternatives::two(ResourceId(0), ResourceId(1)),
            1,
            0,
            Default::default(),
        );
        let inst = Instance::new(2, 2, b.build());
        let mut eager = AEager::new(2, 2, TieBreak::FirstFit);
        let eager_served = run(&mut eager, &inst);
        assert_eq!(eager_served, 3, "window-aware matching serves all three");
        let mut current = ACurrent::new(2, 2, TieBreak::FirstFit);
        let current_served = run(&mut current, &inst);
        // A_current's maximum matching on round 0 can also serve the two
        // deadline-1 requests (max cardinality on 2 slots is 2 either way),
        // and q0 in round 1 — FirstFit id-order would pick q0 first though,
        // wasting a deadline-1 request.
        assert!(current_served <= eager_served);
    }
}
