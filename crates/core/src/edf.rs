//! Earliest-Deadline-First strategies (Observations 3.1 and 3.2).
//!
//! * [`EdfSingle`] — each resource independently serves its queued requests
//!   in order of increasing deadline. For single-alternative requests this
//!   is **1-competitive** (Observation 3.1), even with heterogeneous
//!   deadlines.
//! * [`EdfTwoChoice`] — every request places one *copy* in the EDF queue of
//!   each of its `c` alternatives, and the copies are handled independently;
//!   a request is fulfilled when its first copy is served, and any further
//!   copy served afterwards wastes the slot. `c`-competitive (Observation
//!   3.2 for `c = 2`, tight). `cancel_sibling = true` gives the natural
//!   engineering refinement that drops the remaining copies once a request
//!   is fulfilled — still 2-competitive in the worst case (Theorem 3.7's
//!   input defeats it too) but much better on benign inputs.
//!
//! EDF is fully *local*: each resource only looks at its own queue.

use crate::schedule::Service;
use crate::OnlineScheduler;
use reqsched_faults::FaultPlan;
use reqsched_matching::BitMatrix;
use reqsched_model::{Request, RequestId, ResourceId, Round};
use std::collections::BTreeSet;
use std::collections::VecDeque;
use std::sync::Arc;

/// Whether resource `i` may serve in `round` under an optional fault plan.
/// A crashed or stalled resource keeps its queue (copies still expire from
/// it naturally) and resumes service on recovery.
fn resource_serves(faults: &Option<Arc<FaultPlan>>, i: usize, round: Round) -> bool {
    match faults {
        Some(plan) => plan.slot_usable(ResourceId(i as u32), round),
        None => true,
    }
}

/// Per-resource EDF queues over request *copies*, stored as a circular
/// expiry-bucket ring instead of binary heaps.
///
/// Bucket `expiry % cap` of a resource holds the ids of its queued copies
/// with that expiry, in ascending id order; a per-resource occupancy row in
/// a [`BitMatrix`] has bit `b` set iff bucket `b` is non-empty. All stored
/// expiries lie in `[base, base + cap)` (the ring grows by rebuild when a
/// deadline outruns it), so the EDF minimum — the `(expiry, id)`-least
/// copy the heaps used to surface — is found by one circular
/// `trailing_zeros` word scan of the occupancy row starting at
/// `base % cap`, then taking the front of that bucket. No per-entry
/// compare-and-branch sift; the scan touches `cap / 64` words.
///
/// Expired buckets (`expiry < round`) are purged wholesale as `base`
/// advances — the word-level analogue of the heaps' lazy pop-and-skip, with
/// the identical served sequence since expired copies are never served.
struct EdfQueues {
    n: usize,
    /// Ring size (power of two); all live expiries fit in `base..base+cap`.
    cap: usize,
    /// `buckets[res * cap + expiry % cap]` = queued ids, ascending.
    buckets: Vec<VecDeque<RequestId>>,
    /// Row = resource, bit = "bucket non-empty".
    occ: BitMatrix,
    /// Lower bound of the ring's expiry span; advanced by `advance_to`.
    base: u64,
    started: bool,
}

impl EdfQueues {
    const INITIAL_CAP: usize = 64;

    fn new(n: u32) -> EdfQueues {
        let n = n as usize;
        EdfQueues {
            n,
            cap: Self::INITIAL_CAP,
            buckets: (0..n * Self::INITIAL_CAP)
                .map(|_| VecDeque::new())
                .collect(),
            occ: BitMatrix::new(n, Self::INITIAL_CAP),
            base: 0,
            started: false,
        }
    }

    /// Drop every bucket of expiries `< round` (their copies are expired
    /// everywhere) and move the ring's base up to `round`.
    fn advance_to(&mut self, round: Round) {
        let round = round.get();
        if !self.started {
            self.started = true;
            self.base = round;
            return;
        }
        while self.base < round {
            let col = (self.base % self.cap as u64) as usize;
            for res in 0..self.n {
                if self.occ.contains(res, col) {
                    self.buckets[res * self.cap + col].clear();
                    self.occ.clear(res, col);
                }
            }
            self.base += 1;
        }
    }

    /// Grow the ring (rebuilding bucket positions) until `expiry` fits.
    fn ensure(&mut self, expiry: u64) {
        if expiry < self.base + self.cap as u64 {
            return;
        }
        let mut new_cap = self.cap * 2;
        while expiry >= self.base + new_cap as u64 {
            new_cap *= 2;
        }
        let mut buckets: Vec<VecDeque<RequestId>> =
            (0..self.n * new_cap).map(|_| VecDeque::new()).collect();
        let mut occ = BitMatrix::new(self.n, new_cap);
        for res in 0..self.n {
            // Walk the old ring in expiry order from its base.
            for off in 0..self.cap as u64 {
                let e = self.base + off;
                let old = std::mem::take(
                    &mut self.buckets[res * self.cap + (e % self.cap as u64) as usize],
                );
                if !old.is_empty() {
                    occ.set(res, (e % new_cap as u64) as usize);
                    buckets[res * new_cap + (e % new_cap as u64) as usize] = old;
                }
            }
        }
        self.cap = new_cap;
        self.buckets = buckets;
        self.occ = occ;
    }

    fn push(&mut self, resource: ResourceId, expiry: Round, id: RequestId) {
        let expiry = expiry.get();
        debug_assert!(
            !self.started || expiry >= self.base,
            "copies never arrive already expired"
        );
        if !self.started {
            self.started = true;
            self.base = expiry;
        }
        self.ensure(expiry);
        let res = resource.index();
        let col = (expiry % self.cap as u64) as usize;
        let q = &mut self.buckets[res * self.cap + col];
        match q.back() {
            // Ids almost always arrive in increasing order (trace order);
            // fall back to a sorted insert so the `(expiry, id)` pop order
            // is exact regardless of how the trace was built.
            Some(&last) if last > id => {
                let pos = q.iter().position(|&x| x > id).unwrap_or(q.len());
                q.insert(pos, id);
            }
            _ => q.push_back(id),
        }
        self.occ.set(res, col);
    }

    /// Pop the `(expiry, id)`-least unexpired copy of `resource`, if any.
    /// `advance_to(round)` must have run this round, so every stored copy
    /// is unexpired and the circular occupancy scan from `base` finds the
    /// minimum expiry directly.
    fn pop_min(&mut self, resource: usize) -> Option<(Round, RequestId)> {
        let from = (self.base % self.cap as u64) as usize;
        let col = self.occ.first_one_circular(resource, from)?;
        let expiry = self.base + (col + self.cap - from) as u64 % self.cap as u64;
        let q = &mut self.buckets[resource * self.cap + col];
        // lint: the occupancy bit is set iff the bucket is non-empty
        let id = q.pop_front().expect("occupied bucket");
        if q.is_empty() {
            self.occ.clear(resource, col);
        }
        Some((Round(expiry), id))
    }
}

/// EDF for single-alternative requests (Observation 3.1). See module docs.
pub struct EdfSingle {
    queues: EdfQueues,
    faults: Option<Arc<FaultPlan>>,
}

impl EdfSingle {
    /// Create an EDF scheduler for `n` resources.
    pub fn new(n: u32) -> EdfSingle {
        EdfSingle {
            queues: EdfQueues::new(n),
            faults: None,
        }
    }
}

impl OnlineScheduler for EdfSingle {
    fn name(&self) -> &str {
        "EDF-1"
    }

    fn set_fault_plan(&mut self, plan: Arc<FaultPlan>) {
        self.faults = Some(plan);
    }

    fn on_round(&mut self, round: Round, arrivals: &[Request]) -> Vec<Service> {
        self.queues.advance_to(round);
        for req in arrivals {
            assert_eq!(
                req.alternatives.len(),
                1,
                "EdfSingle requires single-alternative requests"
            );
            self.queues
                .push(req.alternatives.first(), req.expiry(), req.id);
        }
        let mut served = Vec::new();
        for i in 0..self.queues.n {
            if !resource_serves(&self.faults, i, round) {
                continue; // crashed/stalled: queue intact, serve nothing
            }
            // Expired copies were purged by `advance_to`, so the ring
            // minimum (if any) is served directly.
            if let Some((_, id)) = self.queues.pop_min(i) {
                served.push(Service {
                    resource: ResourceId(i as u32),
                    request: id,
                });
            }
        }
        served
    }
}

/// EDF with one independent copy per alternative (Observation 3.2).
/// See module docs.
pub struct EdfTwoChoice {
    queues: EdfQueues,
    served: BTreeSet<RequestId>,
    cancel_sibling: bool,
    wasted_slots: u64,
    faults: Option<Arc<FaultPlan>>,
}

impl EdfTwoChoice {
    /// Create an EDF scheduler for `n` resources.
    ///
    /// With `cancel_sibling = false` the copies are fully independent, as in
    /// the paper's analysis: a resource serving the copy of an
    /// already-fulfilled request wastes its slot. With `true`, fulfilled
    /// requests' remaining copies are skipped.
    pub fn new(n: u32, cancel_sibling: bool) -> EdfTwoChoice {
        EdfTwoChoice {
            queues: EdfQueues::new(n),
            served: BTreeSet::new(),
            cancel_sibling,
            wasted_slots: 0,
            faults: None,
        }
    }

    /// Slots burnt on duplicate copies so far (independent-copy mode only).
    pub fn wasted_slots(&self) -> u64 {
        self.wasted_slots
    }
}

impl OnlineScheduler for EdfTwoChoice {
    fn name(&self) -> &str {
        if self.cancel_sibling {
            "EDF-cancel"
        } else {
            "EDF"
        }
    }

    fn set_fault_plan(&mut self, plan: Arc<FaultPlan>) {
        self.faults = Some(plan);
    }

    fn on_round(&mut self, round: Round, arrivals: &[Request]) -> Vec<Service> {
        self.queues.advance_to(round);
        for req in arrivals {
            for &alt in req.alternatives.as_slice() {
                self.queues.push(alt, req.expiry(), req.id);
            }
        }
        let mut out = Vec::new();
        for i in 0..self.queues.n {
            if !resource_serves(&self.faults, i, round) {
                continue; // crashed/stalled: queue intact, serve nothing
            }
            // Expired copies were purged by `advance_to`; only dead copies
            // of already-fulfilled requests still need skipping/burning.
            while let Some((_, id)) = self.queues.pop_min(i) {
                if self.served.contains(&id) {
                    if self.cancel_sibling {
                        continue; // skip the dead copy, try the next
                    }
                    // Independent copies: the slot is burnt on a duplicate.
                    self.wasted_slots += 1;
                    break;
                }
                self.served.insert(id);
                out.push(Service {
                    resource: ResourceId(i as u32),
                    request: id,
                });
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reqsched_model::{Instance, TraceBuilder};

    fn run(strategy: &mut dyn OnlineScheduler, inst: &Instance) -> usize {
        (0..inst.horizon().get())
            .map(|t| {
                strategy
                    .on_round(Round(t), inst.trace.arrivals_at(Round(t)))
                    .len()
            })
            .sum()
    }

    #[test]
    fn edf_single_serves_in_deadline_order() {
        let mut b = TraceBuilder::new(3);
        // Tight-deadline request arrives with a loose one; tight goes first.
        b.push_full(
            Round(0),
            reqsched_model::Alternatives::one(ResourceId(0)),
            3,
            0,
            Default::default(),
        );
        b.push_full(
            Round(0),
            reqsched_model::Alternatives::one(ResourceId(0)),
            1,
            1,
            Default::default(),
        );
        let inst = Instance::new(1, 3, b.build());
        let mut a = EdfSingle::new(1);
        let first = a.on_round(Round(0), inst.trace.arrivals_at(Round(0)));
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].request, RequestId(1), "tight deadline first");
        let second = a.on_round(Round(1), &[]);
        assert_eq!(second[0].request, RequestId(0));
    }

    #[test]
    fn edf_single_serves_all_feasible() {
        // d requests with deadline d on one resource: all served.
        let d = 4u32;
        let mut b = TraceBuilder::new(d);
        for _ in 0..d {
            b.push_full(
                Round(0),
                reqsched_model::Alternatives::one(ResourceId(0)),
                d,
                0,
                Default::default(),
            );
        }
        let inst = Instance::new(1, d, b.build());
        let mut a = EdfSingle::new(1);
        assert_eq!(run(&mut a, &inst), d as usize);
    }

    #[test]
    fn two_choice_duplicate_copy_wastes_slot() {
        // One request (S0|S1), d = 1: both copies are head-of-queue in round
        // 0; one resource serves it, the other wastes the round.
        let mut b = TraceBuilder::new(1);
        b.push(0u64, 0u32, 1u32);
        let inst = Instance::new(2, 1, b.build());
        let mut a = EdfTwoChoice::new(2, false);
        let served = run(&mut a, &inst);
        assert_eq!(served, 1);
        assert_eq!(a.wasted_slots(), 1);
    }

    #[test]
    fn cancel_sibling_reclaims_the_slot() {
        // Same as above plus a second request queued at S1 behind the copy:
        // with cancellation the dead copy is skipped and q1 is served.
        let mut b = TraceBuilder::new(1);
        b.push(0u64, 0u32, 1u32); // q0: copies at S0, S1
        b.push(0u64, 1u32, 2u32); // q1: copies at S1, S2
        let inst = Instance::new(3, 1, b.build());

        let mut cancel = EdfTwoChoice::new(3, true);
        assert_eq!(run(&mut cancel, &inst), 2);
        assert_eq!(cancel.wasted_slots(), 0);
    }

    #[test]
    fn expired_copies_are_skipped() {
        let mut b = TraceBuilder::new(2);
        b.push(0u64, 0u32, 1u32);
        let inst = Instance::new(2, 2, b.build());
        let mut a = EdfTwoChoice::new(2, false);
        // Round 0 serves it at S0; round 5 (long after expiry) serves nothing.
        let s0 = a.on_round(Round(0), inst.trace.arrivals_at(Round(0)));
        assert_eq!(s0.len(), 1);
        let s1 = a.on_round(Round(1), &[]);
        // The sibling copy is still within deadline in round 1 -> wasted.
        assert!(s1.is_empty());
        assert_eq!(a.wasted_slots(), 1);
        let s2 = a.on_round(Round(2), &[]);
        assert!(s2.is_empty());
    }

    #[test]
    fn crashed_resource_serves_nothing_until_recovery() {
        // One single-alternative request with a long deadline; its resource
        // is down for rounds [0, 2). EDF keeps the queue and serves at
        // recovery time (round 2) instead.
        let mut b = TraceBuilder::new(4);
        b.push_full(
            Round(0),
            reqsched_model::Alternatives::one(ResourceId(0)),
            4,
            0,
            Default::default(),
        );
        let inst = Instance::new(1, 4, b.build());
        let mut a = EdfSingle::new(1);
        a.set_fault_plan(Arc::new(FaultPlan::empty(1).with_crash(
            ResourceId(0),
            Round(0),
            Round(2),
        )));
        assert!(a
            .on_round(Round(0), inst.trace.arrivals_at(Round(0)))
            .is_empty());
        assert!(a.on_round(Round(1), &[]).is_empty());
        let s = a.on_round(Round(2), &[]);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].request, RequestId(0));
    }

    #[test]
    fn two_choice_degrades_to_surviving_replica() {
        // Request (S0|S1), S0 permanently down: the S1 copy serves it.
        let mut b = TraceBuilder::new(2);
        b.push(0u64, 0u32, 1u32);
        let inst = Instance::new(2, 2, b.build());
        let mut a = EdfTwoChoice::new(2, true);
        a.set_fault_plan(Arc::new(FaultPlan::empty(2).with_crash(
            ResourceId(0),
            Round(0),
            Round(u64::MAX),
        )));
        let s = a.on_round(Round(0), inst.trace.arrivals_at(Round(0)));
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].resource, ResourceId(1));
    }

    /// The pre-ring `EdfTwoChoice` round loop over plain binary heaps, kept
    /// verbatim as a differential oracle for the bucket ring.
    struct HeapTwoChoice {
        queues: Vec<std::collections::BinaryHeap<std::cmp::Reverse<(Round, RequestId)>>>,
        served: BTreeSet<RequestId>,
        cancel_sibling: bool,
        wasted_slots: u64,
        faults: Option<Arc<FaultPlan>>,
    }

    impl HeapTwoChoice {
        fn new(n: u32, cancel_sibling: bool) -> HeapTwoChoice {
            HeapTwoChoice {
                queues: (0..n).map(|_| Default::default()).collect(),
                served: BTreeSet::new(),
                cancel_sibling,
                wasted_slots: 0,
                faults: None,
            }
        }

        fn on_round(&mut self, round: Round, arrivals: &[Request]) -> Vec<Service> {
            use std::cmp::Reverse;
            for req in arrivals {
                for &alt in req.alternatives.as_slice() {
                    self.queues[alt.index()].push(Reverse((req.expiry(), req.id)));
                }
            }
            let mut out = Vec::new();
            for (i, q) in self.queues.iter_mut().enumerate() {
                if !resource_serves(&self.faults, i, round) {
                    continue;
                }
                while let Some(&Reverse((expiry, id))) = q.peek() {
                    if expiry < round {
                        q.pop();
                        continue;
                    }
                    if self.served.contains(&id) {
                        q.pop();
                        if self.cancel_sibling {
                            continue;
                        }
                        self.wasted_slots += 1;
                        break;
                    }
                    q.pop();
                    self.served.insert(id);
                    out.push(Service {
                        resource: ResourceId(i as u32),
                        request: id,
                    });
                    break;
                }
            }
            out
        }
    }

    /// The bucket ring must replay the heap's `(expiry, id)` pop order
    /// bit-for-bit: same services, same wasted slots, both copy modes,
    /// with and without faults, across deadlines long enough to force the
    /// ring to grow past its initial 64-bucket word.
    #[test]
    fn ring_matches_heap_reference() {
        for (n, max_d, seed, faulty) in [
            (3u32, 4u32, 0x5eed1_u64, false),
            (5, 7, 0x5eed2, false),
            (2, 3, 0x5eed3, true),
            (4, 90, 0x5eed4, false), // deadlines beyond INITIAL_CAP
            (4, 90, 0x5eed5, true),
        ] {
            let mut b = TraceBuilder::new(max_d);
            let mut s = seed | 1;
            let mut rng = move || {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                s
            };
            let rounds = 120u64;
            for t in 0..rounds {
                for _ in 0..rng() % (n as u64 + 1) {
                    let a = (rng() % n as u64) as u32;
                    let mut c = (rng() % n as u64) as u32;
                    if c == a {
                        c = (c + 1) % n;
                    }
                    b.push_full(
                        Round(t),
                        reqsched_model::Alternatives::two(ResourceId(a), ResourceId(c)),
                        1 + (rng() % max_d as u64) as u32,
                        0,
                        Default::default(),
                    );
                }
            }
            let inst = Instance::new(n, max_d, b.build());
            let plan = faulty.then(|| {
                Arc::new(
                    FaultPlan::empty(n)
                        .with_crash(ResourceId(0), Round(3), Round(20))
                        .with_stall(ResourceId(n - 1), Round(10))
                        .with_stall(ResourceId(n - 1), Round(14)),
                )
            });
            for cancel in [false, true] {
                let mut ring = EdfTwoChoice::new(n, cancel);
                let mut heap = HeapTwoChoice::new(n, cancel);
                if let Some(p) = &plan {
                    ring.set_fault_plan(Arc::clone(p));
                    heap.faults = Some(Arc::clone(p));
                }
                for t in 0..rounds + max_d as u64 {
                    let arrivals = inst.trace.arrivals_at(Round(t));
                    assert_eq!(
                        ring.on_round(Round(t), arrivals),
                        heap.on_round(Round(t), arrivals),
                        "n={n} max_d={max_d} cancel={cancel} round {t} diverged"
                    );
                }
                assert_eq!(ring.wasted_slots(), heap.wasted_slots);
            }
        }
    }

    #[test]
    fn ring_growth_preserves_entries() {
        // A single queue with expiries straddling several growth steps.
        let mut q = EdfQueues::new(1);
        q.advance_to(Round(0));
        let expiries = [0u64, 63, 64, 65, 200, 1000, 7];
        for (i, &e) in expiries.iter().enumerate() {
            q.push(ResourceId(0), Round(e), RequestId(i as u32));
        }
        let mut sorted: Vec<(u64, u32)> = expiries
            .iter()
            .enumerate()
            .map(|(i, &e)| (e, i as u32))
            .collect();
        sorted.sort_unstable();
        for (e, id) in sorted {
            assert_eq!(q.pop_min(0), Some((Round(e), RequestId(id))));
        }
        assert_eq!(q.pop_min(0), None);
    }

    #[test]
    fn same_bucket_pops_in_id_order_even_with_out_of_order_pushes() {
        let mut q = EdfQueues::new(1);
        q.advance_to(Round(0));
        for id in [5u32, 1, 3, 2, 4] {
            q.push(ResourceId(0), Round(9), RequestId(id));
        }
        for want in 1..=5u32 {
            assert_eq!(q.pop_min(0), Some((Round(9), RequestId(want))));
        }
    }

    #[test]
    fn two_choice_spreads_load() {
        // 2d requests (S0|S1), d rounds of deadline: EDF serves 2 per round
        // (one per resource), fulfilling all 2d distinct requests only if
        // copies do not collide; with independent copies some waste can
        // occur, but with cancel_sibling all 2d are served.
        let d = 3u32;
        let mut b = TraceBuilder::new(d);
        b.block2(0u64, 0u32, 1u32, 0);
        let inst = Instance::new(2, d, b.build());
        let mut a = EdfTwoChoice::new(2, true);
        assert_eq!(run(&mut a, &inst), 2 * d as usize);
    }
}
