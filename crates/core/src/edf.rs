//! Earliest-Deadline-First strategies (Observations 3.1 and 3.2).
//!
//! * [`EdfSingle`] — each resource independently serves its queued requests
//!   in order of increasing deadline. For single-alternative requests this
//!   is **1-competitive** (Observation 3.1), even with heterogeneous
//!   deadlines.
//! * [`EdfTwoChoice`] — every request places one *copy* in the EDF queue of
//!   each of its `c` alternatives, and the copies are handled independently;
//!   a request is fulfilled when its first copy is served, and any further
//!   copy served afterwards wastes the slot. `c`-competitive (Observation
//!   3.2 for `c = 2`, tight). `cancel_sibling = true` gives the natural
//!   engineering refinement that drops the remaining copies once a request
//!   is fulfilled — still 2-competitive in the worst case (Theorem 3.7's
//!   input defeats it too) but much better on benign inputs.
//!
//! EDF is fully *local*: each resource only looks at its own queue.

use crate::schedule::Service;
use crate::OnlineScheduler;
use reqsched_faults::FaultPlan;
use reqsched_model::{Request, RequestId, ResourceId, Round};
use std::cmp::Reverse;
use std::collections::BTreeSet;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Whether resource `i` may serve in `round` under an optional fault plan.
/// A crashed or stalled resource keeps its queue (copies still expire from
/// it naturally) and resumes service on recovery.
fn resource_serves(faults: &Option<Arc<FaultPlan>>, i: usize, round: Round) -> bool {
    match faults {
        Some(plan) => plan.slot_usable(ResourceId(i as u32), round),
        None => true,
    }
}

/// Min-heap entry: earliest expiry first, ties by request id (FIFO-ish).
type Entry = Reverse<(Round, RequestId)>;

/// Per-resource EDF queues over request *copies*.
struct EdfQueues {
    queues: Vec<BinaryHeap<Entry>>,
}

impl EdfQueues {
    fn new(n: u32) -> EdfQueues {
        EdfQueues {
            queues: (0..n).map(|_| BinaryHeap::new()).collect(),
        }
    }

    fn push(&mut self, resource: ResourceId, expiry: Round, id: RequestId) {
        self.queues[resource.index()].push(Reverse((expiry, id)));
    }
}

/// EDF for single-alternative requests (Observation 3.1). See module docs.
pub struct EdfSingle {
    queues: EdfQueues,
    faults: Option<Arc<FaultPlan>>,
}

impl EdfSingle {
    /// Create an EDF scheduler for `n` resources.
    pub fn new(n: u32) -> EdfSingle {
        EdfSingle {
            queues: EdfQueues::new(n),
            faults: None,
        }
    }
}

impl OnlineScheduler for EdfSingle {
    fn name(&self) -> &str {
        "EDF-1"
    }

    fn set_fault_plan(&mut self, plan: Arc<FaultPlan>) {
        self.faults = Some(plan);
    }

    fn on_round(&mut self, round: Round, arrivals: &[Request]) -> Vec<Service> {
        for req in arrivals {
            assert_eq!(
                req.alternatives.len(),
                1,
                "EdfSingle requires single-alternative requests"
            );
            self.queues
                .push(req.alternatives.first(), req.expiry(), req.id);
        }
        let mut served = Vec::new();
        for (i, q) in self.queues.queues.iter_mut().enumerate() {
            if !resource_serves(&self.faults, i, round) {
                continue; // crashed/stalled: queue intact, serve nothing
            }
            while let Some(&Reverse((expiry, id))) = q.peek() {
                q.pop();
                if expiry < round {
                    continue; // expired in the queue
                }
                served.push(Service {
                    resource: ResourceId(i as u32),
                    request: id,
                });
                break;
            }
        }
        served
    }
}

/// EDF with one independent copy per alternative (Observation 3.2).
/// See module docs.
pub struct EdfTwoChoice {
    queues: EdfQueues,
    served: BTreeSet<RequestId>,
    cancel_sibling: bool,
    wasted_slots: u64,
    faults: Option<Arc<FaultPlan>>,
}

impl EdfTwoChoice {
    /// Create an EDF scheduler for `n` resources.
    ///
    /// With `cancel_sibling = false` the copies are fully independent, as in
    /// the paper's analysis: a resource serving the copy of an
    /// already-fulfilled request wastes its slot. With `true`, fulfilled
    /// requests' remaining copies are skipped.
    pub fn new(n: u32, cancel_sibling: bool) -> EdfTwoChoice {
        EdfTwoChoice {
            queues: EdfQueues::new(n),
            served: BTreeSet::new(),
            cancel_sibling,
            wasted_slots: 0,
            faults: None,
        }
    }

    /// Slots burnt on duplicate copies so far (independent-copy mode only).
    pub fn wasted_slots(&self) -> u64 {
        self.wasted_slots
    }
}

impl OnlineScheduler for EdfTwoChoice {
    fn name(&self) -> &str {
        if self.cancel_sibling {
            "EDF-cancel"
        } else {
            "EDF"
        }
    }

    fn set_fault_plan(&mut self, plan: Arc<FaultPlan>) {
        self.faults = Some(plan);
    }

    fn on_round(&mut self, round: Round, arrivals: &[Request]) -> Vec<Service> {
        for req in arrivals {
            for &alt in req.alternatives.as_slice() {
                self.queues.push(alt, req.expiry(), req.id);
            }
        }
        let mut out = Vec::new();
        for (i, q) in self.queues.queues.iter_mut().enumerate() {
            if !resource_serves(&self.faults, i, round) {
                continue; // crashed/stalled: queue intact, serve nothing
            }
            while let Some(&Reverse((expiry, id))) = q.peek() {
                if expiry < round {
                    q.pop();
                    continue;
                }
                if self.served.contains(&id) {
                    q.pop();
                    if self.cancel_sibling {
                        continue; // skip the dead copy, try the next
                    }
                    // Independent copies: the slot is burnt on a duplicate.
                    self.wasted_slots += 1;
                    break;
                }
                q.pop();
                self.served.insert(id);
                out.push(Service {
                    resource: ResourceId(i as u32),
                    request: id,
                });
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reqsched_model::{Instance, TraceBuilder};

    fn run(strategy: &mut dyn OnlineScheduler, inst: &Instance) -> usize {
        (0..inst.horizon().get())
            .map(|t| {
                strategy
                    .on_round(Round(t), inst.trace.arrivals_at(Round(t)))
                    .len()
            })
            .sum()
    }

    #[test]
    fn edf_single_serves_in_deadline_order() {
        let mut b = TraceBuilder::new(3);
        // Tight-deadline request arrives with a loose one; tight goes first.
        b.push_full(
            Round(0),
            reqsched_model::Alternatives::one(ResourceId(0)),
            3,
            0,
            Default::default(),
        );
        b.push_full(
            Round(0),
            reqsched_model::Alternatives::one(ResourceId(0)),
            1,
            1,
            Default::default(),
        );
        let inst = Instance::new(1, 3, b.build());
        let mut a = EdfSingle::new(1);
        let first = a.on_round(Round(0), inst.trace.arrivals_at(Round(0)));
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].request, RequestId(1), "tight deadline first");
        let second = a.on_round(Round(1), &[]);
        assert_eq!(second[0].request, RequestId(0));
    }

    #[test]
    fn edf_single_serves_all_feasible() {
        // d requests with deadline d on one resource: all served.
        let d = 4u32;
        let mut b = TraceBuilder::new(d);
        for _ in 0..d {
            b.push_full(
                Round(0),
                reqsched_model::Alternatives::one(ResourceId(0)),
                d,
                0,
                Default::default(),
            );
        }
        let inst = Instance::new(1, d, b.build());
        let mut a = EdfSingle::new(1);
        assert_eq!(run(&mut a, &inst), d as usize);
    }

    #[test]
    fn two_choice_duplicate_copy_wastes_slot() {
        // One request (S0|S1), d = 1: both copies are head-of-queue in round
        // 0; one resource serves it, the other wastes the round.
        let mut b = TraceBuilder::new(1);
        b.push(0u64, 0u32, 1u32);
        let inst = Instance::new(2, 1, b.build());
        let mut a = EdfTwoChoice::new(2, false);
        let served = run(&mut a, &inst);
        assert_eq!(served, 1);
        assert_eq!(a.wasted_slots(), 1);
    }

    #[test]
    fn cancel_sibling_reclaims_the_slot() {
        // Same as above plus a second request queued at S1 behind the copy:
        // with cancellation the dead copy is skipped and q1 is served.
        let mut b = TraceBuilder::new(1);
        b.push(0u64, 0u32, 1u32); // q0: copies at S0, S1
        b.push(0u64, 1u32, 2u32); // q1: copies at S1, S2
        let inst = Instance::new(3, 1, b.build());

        let mut cancel = EdfTwoChoice::new(3, true);
        assert_eq!(run(&mut cancel, &inst), 2);
        assert_eq!(cancel.wasted_slots(), 0);
    }

    #[test]
    fn expired_copies_are_skipped() {
        let mut b = TraceBuilder::new(2);
        b.push(0u64, 0u32, 1u32);
        let inst = Instance::new(2, 2, b.build());
        let mut a = EdfTwoChoice::new(2, false);
        // Round 0 serves it at S0; round 5 (long after expiry) serves nothing.
        let s0 = a.on_round(Round(0), inst.trace.arrivals_at(Round(0)));
        assert_eq!(s0.len(), 1);
        let s1 = a.on_round(Round(1), &[]);
        // The sibling copy is still within deadline in round 1 -> wasted.
        assert!(s1.is_empty());
        assert_eq!(a.wasted_slots(), 1);
        let s2 = a.on_round(Round(2), &[]);
        assert!(s2.is_empty());
    }

    #[test]
    fn crashed_resource_serves_nothing_until_recovery() {
        // One single-alternative request with a long deadline; its resource
        // is down for rounds [0, 2). EDF keeps the queue and serves at
        // recovery time (round 2) instead.
        let mut b = TraceBuilder::new(4);
        b.push_full(
            Round(0),
            reqsched_model::Alternatives::one(ResourceId(0)),
            4,
            0,
            Default::default(),
        );
        let inst = Instance::new(1, 4, b.build());
        let mut a = EdfSingle::new(1);
        a.set_fault_plan(Arc::new(FaultPlan::empty(1).with_crash(
            ResourceId(0),
            Round(0),
            Round(2),
        )));
        assert!(a
            .on_round(Round(0), inst.trace.arrivals_at(Round(0)))
            .is_empty());
        assert!(a.on_round(Round(1), &[]).is_empty());
        let s = a.on_round(Round(2), &[]);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].request, RequestId(0));
    }

    #[test]
    fn two_choice_degrades_to_surviving_replica() {
        // Request (S0|S1), S0 permanently down: the S1 copy serves it.
        let mut b = TraceBuilder::new(2);
        b.push(0u64, 0u32, 1u32);
        let inst = Instance::new(2, 2, b.build());
        let mut a = EdfTwoChoice::new(2, true);
        a.set_fault_plan(Arc::new(FaultPlan::empty(2).with_crash(
            ResourceId(0),
            Round(0),
            Round(u64::MAX),
        )));
        let s = a.on_round(Round(0), inst.trace.arrivals_at(Round(0)));
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].resource, ResourceId(1));
    }

    #[test]
    fn two_choice_spreads_load() {
        // 2d requests (S0|S1), d rounds of deadline: EDF serves 2 per round
        // (one per resource), fulfilling all 2d distinct requests only if
        // copies do not collide; with independent copies some waste can
        // occur, but with cancel_sibling all 2d are served.
        let d = 3u32;
        let mut b = TraceBuilder::new(d);
        b.block2(0u64, 0u32, 1u32, 0);
        let inst = Instance::new(2, d, b.build());
        let mut a = EdfTwoChoice::new(2, true);
        assert_eq!(run(&mut a, &inst), 2 * d as usize);
    }
}
