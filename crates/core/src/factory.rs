//! Uniform construction of strategies, for sweeps and harnesses.

use crate::{
    ABalance, ACurrent, AEager, AFix, AFixBalance, EdfSingle, EdfTwoChoice, OnlineScheduler,
    SolveMode, TieBreak,
};

/// Identifies one of the paper's strategies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// Per-resource EDF for single-alternative requests (Obs. 3.1).
    EdfSingle,
    /// Two-choice EDF with independent copies (Obs. 3.2); `cancel_sibling`
    /// skips copies of already-fulfilled requests.
    Edf {
        /// Skip copies of already-fulfilled requests instead of wasting the
        /// slot.
        cancel_sibling: bool,
    },
    /// `A_fix` (ratio exactly `2 − 1/d`).
    AFix,
    /// `A_current` (LB `e/(e−1)`, UB `2 − 1/d`).
    ACurrent,
    /// `A_fix_balance` (LB `3d/(2d+2)`, UB `2 − 2/d` for `d > 3`).
    AFixBalance,
    /// `A_eager` (LB `4/3`, UB `(3d−2)/(2d−1)`).
    AEager,
    /// `A_balance` (LB `(5d+2)/(4d+1)`, UB `6(d−1)/(4d−3)`).
    ABalance,
    /// **Ablation, not in the paper**: `A_eager` without the serve-now rule
    /// (maximum matching only). No bounds are claimed; the ablation bench
    /// measures what rule 1 is worth.
    LazyMax,
}

impl StrategyKind {
    /// All matching-based global strategies (the five of Table 1).
    pub const GLOBAL: [StrategyKind; 5] = [
        StrategyKind::AFix,
        StrategyKind::ACurrent,
        StrategyKind::AFixBalance,
        StrategyKind::AEager,
        StrategyKind::ABalance,
    ];

    /// The strategy's display name (matches the paper's notation).
    pub fn name(&self) -> &'static str {
        match self {
            StrategyKind::EdfSingle => "EDF-1",
            StrategyKind::Edf {
                cancel_sibling: false,
            } => "EDF",
            StrategyKind::Edf {
                cancel_sibling: true,
            } => "EDF-cancel",
            StrategyKind::AFix => "A_fix",
            StrategyKind::ACurrent => "A_current",
            StrategyKind::AFixBalance => "A_fix_balance",
            StrategyKind::AEager => "A_eager",
            StrategyKind::ABalance => "A_balance",
            StrategyKind::LazyMax => "A_lazy_max",
        }
    }

    /// The paper's proven upper bound on the competitive ratio for deadline
    /// `d` (Table 1; `None` where the paper proves none for this `d`).
    pub fn upper_bound(&self, d: u32) -> Option<f64> {
        if d <= 1 && !matches!(self, StrategyKind::Edf { .. }) {
            // Degenerate d = 1: requests never span rounds, every
            // matching-based strategy computes a per-round maximum matching
            // and OPT decomposes per round — ratio 1. (EDF's duplicate
            // copies can still waste slots, so its bound stays.)
            return Some(1.0);
        }
        let d = d as f64;
        match self {
            StrategyKind::EdfSingle => Some(1.0),
            StrategyKind::Edf { .. } => Some(2.0),
            StrategyKind::AFix | StrategyKind::ACurrent => Some(2.0 - 1.0 / d),
            StrategyKind::AFixBalance => Some(match d as u32 {
                0 | 1 => 1.0,
                2 => 4.0 / 3.0,
                3 => 7.0 / 5.0,
                _ => 2.0 - 2.0 / d,
            }),
            StrategyKind::AEager => Some(if d as u32 == 2 {
                4.0 / 3.0
            } else {
                (3.0 * d - 2.0) / (2.0 * d - 1.0)
            }),
            StrategyKind::ABalance => Some(if d as u32 == 2 {
                4.0 / 3.0
            } else {
                6.0 * (d - 1.0) / (4.0 * d - 3.0)
            }),
            // Ablation: no bound is claimed in the paper.
            StrategyKind::LazyMax => None,
        }
    }

    /// The paper's proven lower bound on the competitive ratio for deadline
    /// `d` (Table 1), where stated for this `d`.
    pub fn lower_bound(&self, d: u32) -> Option<f64> {
        let df = d as f64;
        match self {
            StrategyKind::EdfSingle => Some(1.0),
            StrategyKind::Edf { .. } => Some(2.0),
            StrategyKind::AFix => Some(2.0 - 1.0 / df),
            StrategyKind::ACurrent => match d {
                2 => Some(4.0 / 3.0),
                // e/(e-1) holds in the limit d -> infinity.
                _ => None,
            },
            StrategyKind::AFixBalance => Some(if d == 2 {
                4.0 / 3.0
            } else {
                3.0 * df / (2.0 * df + 2.0)
            }),
            StrategyKind::AEager => Some(4.0 / 3.0),
            StrategyKind::ABalance => {
                if d == 2 {
                    Some(4.0 / 3.0)
                } else if d % 3 == 2 {
                    // d = 3x - 1
                    Some((5.0 * df + 2.0) / (4.0 * df + 1.0))
                } else {
                    None
                }
            }
            StrategyKind::LazyMax => None,
        }
    }
}

/// Construct a boxed strategy instance (delta solve mode, the default).
pub fn build_strategy(
    kind: StrategyKind,
    n: u32,
    d: u32,
    tie: TieBreak,
) -> Box<dyn OnlineScheduler> {
    build_strategy_with_mode(kind, n, d, tie, SolveMode::Delta)
}

/// [`build_strategy`] with an explicit [`SolveMode`]. `Fresh` selects the
/// from-scratch reference path on the matching-based strategies (the EDF
/// strategies have no matching to carry; the mode is ignored for them, and
/// `A_fix` decides per arrival, so it has no delta path either).
pub fn build_strategy_with_mode(
    kind: StrategyKind,
    n: u32,
    d: u32,
    tie: TieBreak,
    mode: SolveMode,
) -> Box<dyn OnlineScheduler> {
    match kind {
        StrategyKind::EdfSingle => Box::new(EdfSingle::new(n)),
        StrategyKind::Edf { cancel_sibling } => Box::new(EdfTwoChoice::new(n, cancel_sibling)),
        StrategyKind::AFix => Box::new(AFix::new(n, d, tie)),
        StrategyKind::ACurrent => Box::new(ACurrent::with_mode(n, d, tie, mode)),
        StrategyKind::AFixBalance => Box::new(AFixBalance::with_mode(n, d, tie, mode)),
        StrategyKind::AEager => Box::new(AEager::with_mode(n, d, tie, mode)),
        StrategyKind::ABalance => Box::new(ABalance::with_mode(n, d, tie, mode)),
        StrategyKind::LazyMax => Box::new(crate::ALazyMax::with_mode(n, d, tie, mode)),
    }
}

/// [`build_strategy`] returning a `Send` trait object, for drivers that
/// move strategies across threads (the sharded round engine runs one
/// strategy instance per shard group under Rayon).
pub fn build_strategy_send(
    kind: StrategyKind,
    n: u32,
    d: u32,
    tie: TieBreak,
) -> Box<dyn OnlineScheduler + Send> {
    build_strategy_send_with_mode(kind, n, d, tie, SolveMode::Delta)
}

/// [`build_strategy_with_mode`] returning a `Send` trait object (see
/// [`build_strategy_send`]). Every concrete strategy is `Send`; only the
/// trait-object coercion differs from the plain builder.
pub fn build_strategy_send_with_mode(
    kind: StrategyKind,
    n: u32,
    d: u32,
    tie: TieBreak,
    mode: SolveMode,
) -> Box<dyn OnlineScheduler + Send> {
    match kind {
        StrategyKind::EdfSingle => Box::new(EdfSingle::new(n)),
        StrategyKind::Edf { cancel_sibling } => Box::new(EdfTwoChoice::new(n, cancel_sibling)),
        StrategyKind::AFix => Box::new(AFix::new(n, d, tie)),
        StrategyKind::ACurrent => Box::new(ACurrent::with_mode(n, d, tie, mode)),
        StrategyKind::AFixBalance => Box::new(AFixBalance::with_mode(n, d, tie, mode)),
        StrategyKind::AEager => Box::new(AEager::with_mode(n, d, tie, mode)),
        StrategyKind::ABalance => Box::new(ABalance::with_mode(n, d, tie, mode)),
        StrategyKind::LazyMax => Box::new(crate::ALazyMax::with_mode(n, d, tie, mode)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper_notation() {
        assert_eq!(StrategyKind::AFix.name(), "A_fix");
        assert_eq!(StrategyKind::ABalance.name(), "A_balance");
        assert_eq!(
            StrategyKind::Edf {
                cancel_sibling: false
            }
            .name(),
            "EDF"
        );
    }

    #[test]
    fn table1_bounds_spot_checks() {
        // A_fix at d=4: 2 - 1/4 = 1.75, tight.
        assert_eq!(StrategyKind::AFix.upper_bound(4), Some(1.75));
        assert_eq!(StrategyKind::AFix.lower_bound(4), Some(1.75));
        // A_eager d=2: both 4/3.
        assert_eq!(StrategyKind::AEager.upper_bound(2), Some(4.0 / 3.0));
        assert_eq!(StrategyKind::AEager.lower_bound(2), Some(4.0 / 3.0));
        // A_fix_balance d=3: UB 7/5.
        assert_eq!(StrategyKind::AFixBalance.upper_bound(3), Some(1.4));
        // A_balance d=5 (= 3*2-1): LB 27/21.
        let lb = StrategyKind::ABalance.lower_bound(5).unwrap();
        assert!((lb - 27.0 / 21.0).abs() < 1e-12);
        // A_balance d=4: no stated LB.
        assert_eq!(StrategyKind::ABalance.lower_bound(4), None);
    }

    #[test]
    fn lower_bounds_never_exceed_upper_bounds() {
        for kind in StrategyKind::GLOBAL {
            for d in 2..40 {
                if let (Some(lb), Some(ub)) = (kind.lower_bound(d), kind.upper_bound(d)) {
                    assert!(lb <= ub + 1e-12, "{} d={d}: lb {lb} > ub {ub}", kind.name());
                }
            }
        }
    }

    #[test]
    fn factory_builds_every_kind() {
        let kinds = [
            StrategyKind::EdfSingle,
            StrategyKind::Edf {
                cancel_sibling: true,
            },
            StrategyKind::Edf {
                cancel_sibling: false,
            },
            StrategyKind::AFix,
            StrategyKind::ACurrent,
            StrategyKind::AFixBalance,
            StrategyKind::AEager,
            StrategyKind::ABalance,
        ];
        for k in kinds {
            let s = build_strategy(k, 4, 3, TieBreak::FirstFit);
            assert_eq!(s.name(), k.name());
        }
    }
}
