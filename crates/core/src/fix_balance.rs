//! `A_fix_balance`: like `A_fix`, but new arrivals are placed balanced.
//!
//! Paper rule (§1.3): among the maximal matchings that keep old assignments
//! fixed and schedule a maximum number of new requests, choose one maximizing
//! `F = Σ_{j=0}^{d-1} X_{t+j} · (n+1)^{d-j}` where `X_{t+j}` counts matched
//! slots of round `t+j`. Since `X ≤ n`, maximizing `F` is the lexicographic
//! maximization of `(X_t, X_{t+1}, …)` — requests are served as early as
//! possible, which spreads them across resources ("as balanced as
//! possible"). Bounds: LB `3d/(2d+2)` (Thm 2.3), UB `4/3 | 7/5 | 2−2/d`
//! (Thm 3.4).

use crate::delta::{DeltaWindow, SolveMode};
use crate::schedule::{ScheduleState, Service};
use crate::tiebreak::TieBreak;
use crate::window::{WindowGraph, WindowScratch};
use crate::OnlineScheduler;
use reqsched_matching::{kuhn_in_order_with, saturate_levels_with};
use reqsched_model::{Request, RequestId, Round};

/// The `A_fix_balance` strategy. See module docs.
pub struct AFixBalance {
    state: ScheduleState,
    tie: TieBreak,
    scratch: WindowScratch,
    delta: Option<DeltaWindow>,
}

impl AFixBalance {
    /// Create an `A_fix_balance` scheduler for `n` resources, deadline `d`.
    pub fn new(n: u32, d: u32, tie: TieBreak) -> AFixBalance {
        AFixBalance::with_mode(n, d, tie, SolveMode::Delta)
    }

    /// [`AFixBalance::new`] with an explicit [`SolveMode`] (the `Fresh`
    /// path is the from-scratch reference used by parity tests and
    /// benchmarks).
    pub fn with_mode(n: u32, d: u32, tie: TieBreak, mode: SolveMode) -> AFixBalance {
        AFixBalance {
            state: ScheduleState::new(n, d),
            tie,
            scratch: WindowScratch::new(),
            delta: mode.delta_active(&tie).then(|| DeltaWindow::new(n, d)),
        }
    }

    /// Edges scanned by the delta engine's searches, if it is active.
    pub fn delta_work(&self) -> Option<u64> {
        self.delta.as_ref().map(|d| d.edges_scanned())
    }

    /// Read-only view of the internal schedule window (observability: used
    /// by compliance tests that verify the strategy's defining rule against
    /// brute-force enumeration, and handy for instrumentation).
    pub fn schedule(&self) -> &crate::schedule::ScheduleState {
        &self.state
    }
}

impl OnlineScheduler for AFixBalance {
    fn name(&self) -> &str {
        "A_fix_balance"
    }

    fn set_fault_plan(&mut self, plan: std::sync::Arc<reqsched_faults::FaultPlan>) {
        self.state.set_fault_plan(plan);
    }

    fn on_round(&mut self, round: Round, arrivals: &[Request]) -> Vec<Service> {
        if let Some(dw) = &mut self.delta {
            return dw.round_fix_balance(&mut self.state, &self.tie, round, arrivals);
        }
        assert_eq!(round, self.state.front(), "rounds must be consecutive");
        for req in arrivals {
            self.state.insert(req);
        }
        let mut new_ids = self.scratch.take_lefts();
        new_ids.extend(arrivals.iter().map(|r| r.id));
        new_ids.sort_unstable();

        if !new_ids.is_empty() {
            let (wg, mut m) = WindowGraph::build_with(
                &self.state,
                new_ids,
                self.state.d(),
                false,
                &self.tie,
                &mut self.scratch,
            );
            // 1) Maximum number of new requests scheduled…
            let order = wg.left_order(&self.state, 0..wg.graph.n_left(), &self.tie);
            kuhn_in_order_with(&wg.graph, &mut m, &order, &mut self.scratch.ws);
            // 2) …then F-maximal = lexicographically earliest-round-heavy.
            // Old assignments are fixed constants of F, so optimizing the
            // new requests' slot coverage per round is exactly optimizing F.
            wg.write_levels_by_round(&mut self.scratch.levels);
            saturate_levels_with(
                &wg.graph,
                &mut m,
                &self.scratch.levels,
                &mut self.scratch.ws,
            );
            if self.tie.is_hint_guided() {
                wg.priority_position_pass(&self.state, &mut m);
            }
            let failed: Vec<RequestId> = m.free_lefts().map(|l| wg.lefts[l as usize]).collect();
            wg.apply(&mut self.state, &m);
            for id in failed {
                self.state.drop_request(id);
            }
            self.scratch.recycle(wg, m);
        } else {
            self.scratch.return_lefts(new_ids);
        }
        self.state.finish_round().served
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reqsched_model::{Instance, ResourceId, TraceBuilder};

    fn run_with_log(strategy: &mut dyn OnlineScheduler, inst: &Instance) -> Vec<(u64, Service)> {
        let mut log = Vec::new();
        for t in 0..inst.horizon().get() {
            for s in strategy.on_round(Round(t), inst.trace.arrivals_at(Round(t))) {
                log.push((t, s));
            }
        }
        log
    }

    #[test]
    fn balances_across_resources() {
        // 2 requests (S0|S1), d = 2. Unbalanced members could stack both on
        // S0 (rounds 0 and 1); F forces one per resource in round 0.
        let mut b = TraceBuilder::new(2);
        b.push(0u64, 0u32, 1u32);
        b.push(0u64, 0u32, 1u32);
        let inst = Instance::new(2, 2, b.build());
        let mut a = AFixBalance::new(2, 2, TieBreak::FirstFit);
        let log = run_with_log(&mut a, &inst);
        assert_eq!(log.len(), 2);
        assert!(log.iter().all(|(t, _)| *t == 0), "both served in round 0");
        let mut resources: Vec<ResourceId> = log.iter().map(|(_, s)| s.resource).collect();
        resources.sort();
        assert_eq!(resources, vec![ResourceId(0), ResourceId(1)]);
    }

    #[test]
    fn prefers_free_resource_over_blocked_one() {
        // Theorem 2.3's crux: S0 blocked now; a new request (S0|S1) goes to
        // S1 immediately rather than waiting for S0 (earliest-round rule).
        let d = 4;
        let mut b = TraceBuilder::new(d);
        b.block2(0u64, 0u32, 2u32, 0); // block S0 (and S2) for d rounds
        b.push(1u64, 0u32, 1u32); // new request (S0|S1)
        let inst = Instance::new(3, d, b.build());
        let mut a = AFixBalance::new(3, d, TieBreak::FirstFit);
        let log = run_with_log(&mut a, &inst);
        let new_req = log
            .iter()
            .find(|(_, s)| s.request == reqsched_model::RequestId(2 * d))
            .expect("new request served");
        assert_eq!(new_req.0, 1, "served immediately in its arrival round");
        assert_eq!(new_req.1.resource, ResourceId(1));
    }

    #[test]
    fn schedules_maximum_number_of_new_requests() {
        // 3 requests, 1 resource pair, d = 1: exactly 2 served; the third
        // is dropped (cannot be scheduled later under no-rescheduling).
        let mut b = TraceBuilder::new(1);
        for _ in 0..3 {
            b.push(0u64, 0u32, 1u32);
        }
        let inst = Instance::new(2, 1, b.build());
        let mut a = AFixBalance::new(2, 1, TieBreak::FirstFit);
        assert_eq!(run_with_log(&mut a, &inst).len(), 2);
    }
}
