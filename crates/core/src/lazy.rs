//! `A_lazy_max` — an **ablation**, not a paper strategy: `A_eager` with its
//! rule 1 ("serve a maximum possible number of requests *now*") removed.
//!
//! Each round it still maintains a maximum matching of `G_t` and keeps every
//! previously scheduled request scheduled, but makes no attempt to pull
//! service into the current round; under the `LatestFit` tie-break it even
//! actively procrastinates. Comparing it against `A_eager` isolates the
//! value of the serve-now rule: a lazy maximum matching lets current slots
//! idle, and the capacity wasted that way is gone forever once the window
//! slides — which is exactly what Theorem 2.4's phases punish.

use crate::delta::{DeltaWindow, Saturation, SolveMode};
use crate::schedule::{ScheduleState, Service};
use crate::tiebreak::TieBreak;
use crate::window::{WindowGraph, WindowScratch};
use crate::OnlineScheduler;
use reqsched_matching::kuhn_in_order_with;
use reqsched_model::{Request, Round};

/// The `A_lazy_max` ablation strategy. See module docs.
pub struct ALazyMax {
    state: ScheduleState,
    tie: TieBreak,
    scratch: WindowScratch,
    delta: Option<DeltaWindow>,
}

impl ALazyMax {
    /// Create an `A_lazy_max` scheduler; `TieBreak::LatestFit` gives the
    /// fully procrastinating member.
    pub fn new(n: u32, d: u32, tie: TieBreak) -> ALazyMax {
        ALazyMax::with_mode(n, d, tie, SolveMode::Delta)
    }

    /// [`ALazyMax::new`] with an explicit [`SolveMode`] (the `Fresh` path
    /// is the from-scratch reference used by parity tests and benchmarks).
    pub fn with_mode(n: u32, d: u32, tie: TieBreak, mode: SolveMode) -> ALazyMax {
        ALazyMax {
            state: ScheduleState::new(n, d),
            tie,
            scratch: WindowScratch::new(),
            delta: mode.delta_active(&tie).then(|| DeltaWindow::new(n, d)),
        }
    }

    /// Edges scanned by the delta engine's searches, if it is active.
    pub fn delta_work(&self) -> Option<u64> {
        self.delta.as_ref().map(|d| d.edges_scanned())
    }

    /// Read-only view of the internal schedule window.
    pub fn schedule(&self) -> &ScheduleState {
        &self.state
    }
}

impl OnlineScheduler for ALazyMax {
    fn name(&self) -> &str {
        "A_lazy_max"
    }

    fn set_fault_plan(&mut self, plan: std::sync::Arc<reqsched_faults::FaultPlan>) {
        self.state.set_fault_plan(plan);
    }

    fn on_round(&mut self, round: Round, arrivals: &[Request]) -> Vec<Service> {
        if let Some(dw) = &mut self.delta {
            return dw.round_reschedulable(
                &mut self.state,
                &self.tie,
                round,
                arrivals,
                Saturation::None,
            );
        }
        assert_eq!(round, self.state.front(), "rounds must be consecutive");
        for req in arrivals {
            self.state.insert(req);
        }
        let mut lefts = self.scratch.take_lefts();
        lefts.extend(self.state.live_iter().map(|l| l.id()));
        if !lefts.is_empty() {
            let (wg, mut m) = WindowGraph::build_with(
                &self.state,
                lefts,
                self.state.d(),
                true,
                &self.tie,
                &mut self.scratch,
            );
            let unmatched: Vec<u32> = (0..wg.graph.n_left()).filter(|&l| m.left_free(l)).collect();
            let order = wg.left_order(&self.state, unmatched.into_iter(), &self.tie);
            kuhn_in_order_with(&wg.graph, &mut m, &order, &mut self.scratch.ws);
            debug_assert!(m.is_maximum(&wg.graph));
            // No saturation: whatever slots the augmentation picked stand.
            wg.apply(&mut self.state, &m);
            self.scratch.recycle(wg, m);
        } else {
            self.scratch.return_lefts(lefts);
        }
        self.state.finish_round().served
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eager::AEager;
    use reqsched_model::{Instance, TraceBuilder};

    fn run(s: &mut dyn OnlineScheduler, inst: &Instance) -> usize {
        (0..inst.horizon().get())
            .map(|t| s.on_round(Round(t), inst.trace.arrivals_at(Round(t))).len())
            .sum()
    }

    #[test]
    fn procrastination_wastes_capacity() {
        // Round 0: one request (S0|S1), d = 2; round 1: 4 deadline-2
        // requests on the pair. Lazy parks the early request at round 1,
        // leaving round 0 fully idle; eager serves it immediately. Capacity
        // rounds 0..2 = 6 slots for 5 requests: eager serves all 5, lazy
        // cannot.
        let mut b = TraceBuilder::new(2);
        b.push(0u64, 0u32, 1u32);
        for _ in 0..4 {
            b.push(1u64, 0u32, 1u32);
        }
        let inst = Instance::new(2, 2, b.build());

        let mut eager = AEager::new(2, 2, TieBreak::FirstFit);
        assert_eq!(run(&mut eager, &inst), 5);

        let mut lazy = ALazyMax::new(2, 2, TieBreak::LatestFit);
        let lazy_served = run(&mut lazy, &inst);
        assert!(lazy_served < 5, "lazy should lose a request: {lazy_served}");
    }

    #[test]
    fn still_maintains_maximum_matchings() {
        // Despite procrastination, nothing feasible-by-matching is dropped
        // when no later conflicts arise.
        let mut b = TraceBuilder::new(3);
        for _ in 0..6 {
            b.push(0u64, 0u32, 1u32);
        }
        let inst = Instance::new(2, 3, b.build());
        let mut lazy = ALazyMax::new(2, 3, TieBreak::LatestFit);
        assert_eq!(run(&mut lazy, &inst), 6);
    }
}
