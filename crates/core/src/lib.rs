//! # reqsched-core
//!
//! The paper's primary contribution as executable code: the **global online
//! scheduling strategies** of *Berenbrink, Riedel & Scheideler, SPAA 1999*.
//!
//! Every strategy maintains, round by round, a matching between the live
//! requests and the time slots of the scheduling window `t .. t+d-1`:
//!
//! | Strategy | Defining rule (paper §1.3) |
//! |---|---|
//! | [`EdfSingle`] | per-resource Earliest-Deadline-First; 1-competitive for single-alternative requests (Obs. 3.1) |
//! | [`EdfTwoChoice`] | independent EDF copies at both alternatives; 2-competitive (Obs. 3.2) |
//! | [`AFix`] | maximal matching, max #new requests scheduled, **no rescheduling** (ratio `2−1/d`, tight) |
//! | [`ACurrent`] | fresh maximum matching on the *current round's* slots only (LB `e/(e−1)`, UB `2−1/d`) |
//! | [`AFixBalance`] | like `A_fix` but lexicographically balanced via `F = Σ X_{t+j}(n+1)^{d-j}` |
//! | [`AEager`] | maximum matching on `G_t`, max #served *now*, rescheduling allowed (UB `(3d−2)/(2d−1)`) |
//! | [`ABalance`] | maximum matching on `G_t` maximizing `F`, rescheduling allowed (UB `6(d−1)/(4d−3)`) |
//!
//! Each paper strategy is a *class* ("choose **any** maximal/maximum matching
//! such that …"); the [`TieBreak`] policy selects the member: `FirstFit` is a
//! natural deterministic member, `HintGuided` follows the adversary's
//! [`Hint`](reqsched_model::Hint)s (realizing the pessimal member the lower
//! bound proofs posit), `Random` samples members reproducibly.

mod acurrent;
mod afix;
mod arena;
mod balance;
mod delta;
mod eager;
mod edf;
mod factory;
mod fix_balance;
mod lazy;
mod schedule;
mod shard;
mod tiebreak;
mod window;

pub use acurrent::ACurrent;
pub use afix::AFix;
pub use arena::{ReqRef, RequestArena};
pub use balance::ABalance;
pub use delta::{CurrentDelta, DeltaWindow, SolveMode};
pub use eager::AEager;
pub use edf::{EdfSingle, EdfTwoChoice};
pub use factory::{
    build_strategy, build_strategy_send, build_strategy_send_with_mode, build_strategy_with_mode,
    StrategyKind,
};
pub use fix_balance::AFixBalance;
pub use lazy::ALazyMax;
pub use schedule::{RoundOutcome, ScheduleState, Service};
pub use shard::{Partitioner, ShardMap, AUTO_MAX_STRADDLER_FRACTION, AUTO_MIN_RESOURCES};
pub use tiebreak::TieBreak;
pub use window::{WindowGraph, WindowScratch};

use std::sync::Arc;

use reqsched_faults::FaultPlan;
use reqsched_model::{Request, Round};

/// Narrow a `u64` produced by round/slot arithmetic to `u32`.
///
/// Slot encodings (`round * n + resource`) and window-relative columns
/// (`round - front`) fit `u32` by the capacity bounds the engines enforce
/// (window width, shard size, `rounds * n` slot range). This is the one
/// audited narrowing point: the bound is asserted in debug builds instead
/// of letting a bare `as` truncate silently.
#[inline]
pub fn fit_u32(v: u64) -> u32 {
    debug_assert!(v <= u64::from(u32::MAX), "value {v} exceeds u32 range");
    v as u32
}

/// A global online scheduling strategy, driven one round at a time.
///
/// The driver calls [`OnlineScheduler::on_round`] for consecutive rounds
/// starting at 0, passing that round's arrivals; the strategy returns the
/// services it performs **in that round** (at most one per resource). All
/// bookkeeping about served/expired requests is re-derived and validated by
/// the simulation driver.
pub trait OnlineScheduler {
    /// Human-readable strategy name (e.g. `"A_eager"`).
    fn name(&self) -> &str;

    /// Process round `round`: ingest `arrivals`, update the internal
    /// schedule according to the strategy's rule, and return the services
    /// performed this round.
    fn on_round(&mut self, round: Round, arrivals: &[Request]) -> Vec<Service>;

    /// Total communication rounds used so far (0 for global strategies,
    /// which the model grants free global knowledge).
    fn comm_rounds_total(&self) -> u64 {
        0
    }

    /// Total point-to-point messages sent so far (local strategies only).
    fn messages_total(&self) -> u64 {
        0
    }

    /// Install a fault plan before the first round.
    ///
    /// A strategy that honors the plan never serves on a crashed or stalled
    /// slot: the masked slots simply vanish from its feasibility graphs, so
    /// requests degrade to their surviving replica. The default is a no-op;
    /// the simulation driver independently validates every service against
    /// the plan, so a strategy that ignores it fails loudly rather than
    /// silently cheating.
    fn set_fault_plan(&mut self, _plan: Arc<FaultPlan>) {}
}
