//! The schedule window: per-resource slot assignments over `t .. t+d-1`.

use crate::arena::{ReqRef, RequestArena};
use reqsched_faults::FaultPlan;
use reqsched_model::{Request, RequestId, ResourceId, Round, NO_REQUEST};
use std::collections::VecDeque;
use std::sync::Arc;

/// One service performed: `resource` executes `request` in the round the
/// enclosing [`crate::OnlineScheduler::on_round`] call belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Service {
    /// The executing resource.
    pub resource: ResourceId,
    /// The request served.
    pub request: RequestId,
}

/// What happened when a round was finished.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RoundOutcome {
    /// Services performed this round (at most one per resource).
    pub served: Vec<Service>,
    /// Requests whose deadline expired unserved at the end of this round.
    pub expired: Vec<RequestId>,
}

/// The mutable scheduling window shared by all matching-based strategies.
///
/// Holds, for the rounds `front .. front+d-1`, which request every resource
/// slot is tentatively assigned, plus the set of live (arrived, unserved,
/// unexpired) requests. Strategies differ only in *how* they update the
/// assignment; the window enforces the physical constraints (one request per
/// slot, assignments within the request's feasible set).
///
/// Live requests are stored columnarly in a [`RequestArena`]; lookups hand
/// back copyable [`ReqRef`] views instead of per-request structs.
#[derive(Clone, Debug)]
pub struct ScheduleState {
    n: u32,
    d: u32,
    front: Round,
    /// `rows[j][i]` = occupant of resource `i` in round `front + j`.
    rows: VecDeque<Vec<RequestId>>,
    /// Live requests, struct-of-arrays (deterministic id-order iteration).
    live: RequestArena,
    /// Installed fault plan; masked slots don't exist for this window.
    faults: Option<Arc<FaultPlan>>,
}

impl ScheduleState {
    /// Create an empty window for `n` resources and deadline parameter `d`.
    pub fn new(n: u32, d: u32) -> ScheduleState {
        assert!(n >= 1 && d >= 1);
        let rows = (0..d)
            .map(|_| vec![NO_REQUEST; n as usize])
            .collect::<VecDeque<_>>();
        ScheduleState {
            n,
            d,
            front: Round::ZERO,
            rows,
            live: RequestArena::new(),
            faults: None,
        }
    }

    /// Install a fault plan: crashed/stalled slots vanish from the window.
    ///
    /// Must happen before the first round; [`ScheduleState::assign`] rejects
    /// masked slots from then on, and the graph builders skip them.
    pub fn set_fault_plan(&mut self, plan: Arc<FaultPlan>) {
        assert_eq!(plan.n(), self.n, "fault plan resource count mismatch");
        self.faults = Some(plan);
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.faults.as_ref()
    }

    /// Whether the slot `(resource, round)` exists under the fault plan:
    /// the resource is up and not stalled (trivially true with no plan).
    #[inline]
    pub fn slot_usable(&self, resource: ResourceId, round: Round) -> bool {
        match &self.faults {
            Some(plan) => plan.slot_usable(resource, round),
            None => true,
        }
    }

    /// Number of resources.
    #[inline]
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Deadline parameter (window depth).
    #[inline]
    pub fn d(&self) -> u32 {
        self.d
    }

    /// The current round (= first row of the window).
    #[inline]
    pub fn front(&self) -> Round {
        self.front
    }

    /// Insert a newly arrived request into the live set (unassigned).
    ///
    /// # Panics
    /// Panics if the request's arrival is not the current round or its
    /// deadline exceeds the window depth.
    pub fn insert(&mut self, req: &Request) {
        assert_eq!(req.arrival, self.front, "arrival must be the current round");
        assert!(req.deadline <= self.d, "deadline exceeds window depth");
        let fresh = self.live.insert(req);
        assert!(fresh, "duplicate request id {:?}", req.id);
    }

    /// The live request with the given id, if present.
    pub fn live(&self, id: RequestId) -> Option<ReqRef<'_>> {
        self.live.get(id)
    }

    /// Iterate over all live requests in id order.
    pub fn live_iter(&self) -> impl Iterator<Item = ReqRef<'_>> {
        self.live.iter()
    }

    /// Ids of live requests currently without an assignment, in id order.
    pub fn unassigned(&self) -> Vec<RequestId> {
        self.live
            .iter()
            .filter(|l| l.assigned().is_none())
            .map(|l| l.id())
            .collect()
    }

    /// Number of live requests.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Occupant of `resource` in `round`, if the slot is within the window
    /// and assigned.
    pub fn occupant(&self, resource: ResourceId, round: Round) -> Option<RequestId> {
        let j = self.row_index(round)?;
        let occ = self.rows[j][resource.index()];
        (occ != NO_REQUEST).then_some(occ)
    }

    /// Whether the slot `(resource, round)` is inside the window and free.
    pub fn slot_free(&self, resource: ResourceId, round: Round) -> bool {
        match self.row_index(round) {
            Some(j) => self.rows[j][resource.index()] == NO_REQUEST,
            None => false,
        }
    }

    fn row_index(&self, round: Round) -> Option<usize> {
        if round < self.front {
            return None;
        }
        let j = (round - self.front) as usize;
        (j < self.d as usize).then_some(j)
    }

    /// Assign live request `id` to slot `(resource, round)`.
    ///
    /// # Panics
    /// Panics if the request is not live, already assigned, the slot is
    /// occupied or outside the window, or the assignment is infeasible
    /// (wrong resource / outside the request's deadline window).
    pub fn assign(&mut self, id: RequestId, resource: ResourceId, round: Round) {
        let j = self
            .row_index(round)
            .unwrap_or_else(|| panic!("slot {resource:?}@{round:?} outside window"));
        let arena_slot = self
            .live
            .slot_of(id)
            .unwrap_or_else(|| panic!("{id:?} is not live"));
        let entry = self.live.at(arena_slot);
        assert!(entry.assigned().is_none(), "{id:?} already assigned");
        assert!(
            entry.can_be_served(resource, round),
            "infeasible assignment {id:?} -> {resource:?}@{round:?}"
        );
        if let Some(plan) = &self.faults {
            assert!(
                plan.slot_usable(resource, round),
                "assignment {id:?} -> {resource:?}@{round:?} lands on a crashed or stalled slot"
            );
        }
        let slot = &mut self.rows[j][resource.index()];
        assert_eq!(*slot, NO_REQUEST, "slot {resource:?}@{round:?} occupied");
        *slot = id;
        self.live.set_assigned(arena_slot, resource, round);
    }

    /// Remove the assignment of live request `id` (no-op if unassigned).
    pub fn unassign(&mut self, id: RequestId) {
        if let Some(arena_slot) = self.live.slot_of(id) {
            if let Some((resource, round)) = self.live.take_assigned(arena_slot) {
                // lint: `assigned` rounds are produced by `assign`, which validated the window
                let j = self.row_index(round).expect("assignment inside window");
                debug_assert_eq!(self.rows[j][resource.index()], id);
                self.rows[j][resource.index()] = NO_REQUEST;
            }
        }
    }

    /// Clear every assignment (used by strategies that rebuild the matching
    /// from scratch each round).
    pub fn clear_assignments(&mut self) {
        for row in &mut self.rows {
            row.fill(NO_REQUEST);
        }
        self.live.clear_assignments();
    }

    /// Serve the current row, advance the window by one round, and expire
    /// requests whose deadline has now passed.
    ///
    /// Returns the services performed in the (just finished) current round
    /// and the requests that expired unserved at its end.
    pub fn finish_round(&mut self) -> RoundOutcome {
        // Audit builds gate every round boundary on the full window
        // invariant; finish_round is the one chokepoint every
        // matching-based strategy passes through each round.
        #[cfg(feature = "audit")]
        self.audit();
        // 1. Serve the occupants of the current row, clearing it in place so
        //    it can be recycled as the window's new back row (no per-round
        //    row allocation).
        // lint: the constructor seeds d rows and finish_round pushes one back per pop
        let mut row = self.rows.pop_front().expect("window is never empty");
        let mut served = Vec::new();
        for (i, occ) in row.iter_mut().enumerate() {
            let id = std::mem::replace(occ, NO_REQUEST);
            if id != NO_REQUEST {
                let removed = self.live.remove(id);
                debug_assert!(removed);
                served.push(Service {
                    resource: ResourceId(i as u32),
                    request: id,
                });
            }
        }
        // 2. Advance the window, reusing the served row.
        self.rows.push_back(row);
        self.front = self.front.next();
        // 3. Expire requests whose last usable round has passed.
        let mut expired = Vec::new();
        let front = self.front;
        self.live.retain(|entry| {
            if entry.expiry() < front {
                debug_assert!(
                    entry.assigned().is_none(),
                    "{:?} expired while assigned to a future slot — strategies \
                     must never assign outside the request window",
                    entry.id()
                );
                expired.push(entry.id());
                false
            } else {
                true
            }
        });
        RoundOutcome { served, expired }
    }

    /// Drop a live request without serving it (e.g. `A_fix` discards
    /// requests that failed at arrival, as they can never be scheduled
    /// later under its no-rescheduling rule). Returns whether it was live.
    pub fn drop_request(&mut self, id: RequestId) -> bool {
        if let Some(entry) = self.live.get(id) {
            assert!(
                entry.assigned().is_none(),
                "cannot drop an assigned request"
            );
            self.live.remove(id);
            true
        } else {
            false
        }
    }

    /// Hard invariant audit (the `audit` feature). Checks, in order:
    ///
    /// 1. **slot exclusivity** — no request occupies two window slots;
    /// 2. **mate-array symmetry** — every occupied slot points at a live
    ///    request whose `assigned` back-pointer names that exact slot, and
    ///    vice versa;
    /// 3. **window feasibility** — every assignment is a slot the request
    ///    can legally be served in (right resource, within its
    ///    arrival/deadline window);
    /// 4. **deadline respect** — no live request has already expired;
    /// 5. **fault respect** — no assignment lands on a slot the installed
    ///    fault plan masks (crashed resource or stalled slot).
    ///
    /// [`ScheduleState::finish_round`] runs this at every round boundary
    /// when the feature is on.
    ///
    /// # Panics
    /// Panics on the first violated invariant, naming it.
    #[cfg(feature = "audit")]
    pub fn audit(&self) {
        let mut seen: std::collections::BTreeSet<RequestId> = std::collections::BTreeSet::new();
        for (j, row) in self.rows.iter().enumerate() {
            let round = self.front + j as u64;
            for (i, &occ) in row.iter().enumerate() {
                if occ == NO_REQUEST {
                    continue;
                }
                let res = ResourceId(i as u32);
                assert!(
                    seen.insert(occ),
                    "audit: {occ:?} occupies two window slots (second: {res:?}@{round:?})"
                );
                let entry = self.live.get(occ).unwrap_or_else(|| {
                    panic!("audit: slot {res:?}@{round:?} holds non-live {occ:?}")
                });
                assert_eq!(
                    entry.assigned(),
                    Some((res, round)),
                    "audit: back-pointer of {occ:?} disagrees with slot {res:?}@{round:?}"
                );
                assert!(
                    entry.can_be_served(res, round),
                    "audit: infeasible assignment {occ:?} -> {res:?}@{round:?} \
                     (arrival {:?}, deadline {}, alternatives {:?})",
                    entry.arrival(),
                    entry.deadline(),
                    entry.alternatives().as_slice(),
                );
                if let Some(plan) = &self.faults {
                    assert!(
                        plan.slot_usable(res, round),
                        "audit: {occ:?} assigned to crashed/stalled slot {res:?}@{round:?}"
                    );
                }
            }
        }
        for entry in self.live.iter() {
            let id = entry.id();
            assert!(
                entry.expiry() >= self.front,
                "audit: {id:?} expired at {:?} but is still live at {:?}",
                entry.expiry(),
                self.front,
            );
            if let Some((res, round)) = entry.assigned() {
                let j = self.row_index(round).unwrap_or_else(|| {
                    panic!("audit: {id:?} assigned outside the window at {round:?}")
                });
                assert_eq!(
                    self.rows[j][res.index()],
                    id,
                    "audit: slot {res:?}@{round:?} does not hold its claimed occupant {id:?}"
                );
            }
        }
    }

    /// Debug validation: both sides of the assignment tables agree.
    pub fn check_consistency(&self) -> bool {
        for (j, row) in self.rows.iter().enumerate() {
            for (i, &occ) in row.iter().enumerate() {
                if occ == NO_REQUEST {
                    continue;
                }
                match self.live.get(occ) {
                    Some(l) => {
                        if l.assigned() != Some((ResourceId(i as u32), self.front + j as u64)) {
                            return false;
                        }
                    }
                    None => return false,
                }
            }
        }
        for l in self.live.iter() {
            if let Some((res, round)) = l.assigned() {
                match self.row_index(round) {
                    Some(j) => {
                        if self.rows[j][res.index()] != l.id() {
                            return false;
                        }
                    }
                    None => return false,
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reqsched_model::{Alternatives, Hint};

    fn req(id: u32, arrival: u64, d: u32, a: u32, b: u32) -> Request {
        Request {
            id: RequestId(id),
            arrival: Round(arrival),
            alternatives: Alternatives::two(ResourceId(a), ResourceId(b)),
            deadline: d,
            tag: 0,
            hint: Hint::default(),
        }
    }

    #[test]
    fn insert_assign_serve() {
        let mut st = ScheduleState::new(2, 2);
        let r = req(0, 0, 2, 0, 1);
        st.insert(&r);
        assert_eq!(st.unassigned(), vec![RequestId(0)]);
        st.assign(RequestId(0), ResourceId(1), Round(0));
        assert!(st.check_consistency());
        assert_eq!(st.occupant(ResourceId(1), Round(0)), Some(RequestId(0)));
        let out = st.finish_round();
        assert_eq!(out.served.len(), 1);
        assert_eq!(out.served[0].resource, ResourceId(1));
        assert!(out.expired.is_empty());
        assert_eq!(st.live_count(), 0);
        assert_eq!(st.front(), Round(1));
    }

    /// The auditor must fire on a corrupted window, not just pass on a
    /// healthy one (the audit-mode analogue of the lint fixtures).
    #[cfg(feature = "audit")]
    #[test]
    #[should_panic(expected = "audit")]
    fn audit_catches_dangling_back_pointer() {
        let mut st = ScheduleState::new(2, 2);
        let r = req(0, 0, 2, 0, 1);
        st.insert(&r);
        st.assign(RequestId(0), ResourceId(0), Round(0));
        // Corrupt the slot behind the back-pointer's back.
        st.rows[0][0] = NO_REQUEST;
        st.audit();
    }

    fn req1(id: u32, arrival: u64, d: u32, only: u32) -> Request {
        Request {
            id: RequestId(id),
            arrival: Round(arrival),
            alternatives: Alternatives::one(ResourceId(only)),
            deadline: d,
            tag: 0,
            hint: Hint::default(),
        }
    }

    #[test]
    fn future_assignment_survives_round() {
        let mut st = ScheduleState::new(1, 3);
        let r = req1(0, 0, 3, 0);
        st.insert(&r);
        st.assign(RequestId(0), ResourceId(0), Round(2));
        let out = st.finish_round();
        assert!(out.served.is_empty());
        assert!(out.expired.is_empty());
        assert!(st.check_consistency());
        assert_eq!(st.occupant(ResourceId(0), Round(2)), Some(RequestId(0)));
        st.finish_round();
        let out = st.finish_round(); // round 2 -> served now
        assert_eq!(out.served.len(), 1);
    }

    #[test]
    fn expiry_reported_once_window_passes() {
        let mut st = ScheduleState::new(1, 2);
        let r = req1(0, 0, 1, 0);
        st.insert(&r);
        // Deadline 1: usable only in round 0; never assigned.
        let out = st.finish_round();
        assert_eq!(out.expired, vec![RequestId(0)]);
        assert_eq!(st.live_count(), 0);
    }

    #[test]
    fn unassign_frees_slot() {
        let mut st = ScheduleState::new(2, 2);
        let r = req(0, 0, 2, 0, 1);
        st.insert(&r);
        st.assign(RequestId(0), ResourceId(0), Round(1));
        assert!(!st.slot_free(ResourceId(0), Round(1)));
        st.unassign(RequestId(0));
        assert!(st.slot_free(ResourceId(0), Round(1)));
        assert_eq!(st.unassigned(), vec![RequestId(0)]);
        assert!(st.check_consistency());
    }

    #[test]
    fn clear_assignments_resets_everything() {
        let mut st = ScheduleState::new(2, 2);
        st.insert(&req(0, 0, 2, 0, 1));
        st.insert(&req(1, 0, 2, 0, 1));
        st.assign(RequestId(0), ResourceId(0), Round(0));
        st.assign(RequestId(1), ResourceId(1), Round(1));
        st.clear_assignments();
        assert_eq!(st.unassigned().len(), 2);
        assert!(st.slot_free(ResourceId(0), Round(0)));
        assert!(st.check_consistency());
    }

    #[test]
    #[should_panic]
    fn double_assignment_panics() {
        let mut st = ScheduleState::new(2, 2);
        st.insert(&req(0, 0, 2, 0, 1));
        st.insert(&req(1, 0, 2, 0, 1));
        st.assign(RequestId(0), ResourceId(0), Round(0));
        st.assign(RequestId(1), ResourceId(0), Round(0));
    }

    #[test]
    #[should_panic]
    fn infeasible_resource_panics() {
        let mut st = ScheduleState::new(3, 2);
        st.insert(&req(0, 0, 2, 0, 1));
        st.assign(RequestId(0), ResourceId(2), Round(0));
    }

    #[test]
    #[should_panic]
    fn assignment_outside_deadline_panics() {
        let mut st = ScheduleState::new(2, 3);
        st.insert(&req(0, 0, 1, 0, 1)); // only round 0 usable
        st.assign(RequestId(0), ResourceId(0), Round(1));
    }

    #[test]
    fn drop_request_removes_unassigned() {
        let mut st = ScheduleState::new(2, 2);
        st.insert(&req(0, 0, 2, 0, 1));
        assert!(st.drop_request(RequestId(0)));
        assert!(!st.drop_request(RequestId(0)));
        assert_eq!(st.live_count(), 0);
    }

    #[test]
    #[should_panic(expected = "crashed or stalled")]
    fn assign_on_crashed_slot_panics() {
        let mut st = ScheduleState::new(2, 2);
        st.set_fault_plan(Arc::new(FaultPlan::empty(2).with_crash(
            ResourceId(0),
            Round(0),
            Round(4),
        )));
        st.insert(&req(0, 0, 2, 0, 1));
        st.assign(RequestId(0), ResourceId(0), Round(0));
    }

    #[test]
    fn fault_plan_masks_slots_but_leaves_survivor() {
        let mut st = ScheduleState::new(2, 2);
        st.set_fault_plan(Arc::new(FaultPlan::empty(2).with_crash(
            ResourceId(0),
            Round(0),
            Round(4),
        )));
        assert!(!st.slot_usable(ResourceId(0), Round(1)));
        assert!(st.slot_usable(ResourceId(1), Round(1)));
        // Degrade to the surviving replica.
        st.insert(&req(0, 0, 2, 0, 1));
        st.assign(RequestId(0), ResourceId(1), Round(0));
        let out = st.finish_round();
        assert_eq!(out.served.len(), 1);
        assert_eq!(out.served[0].resource, ResourceId(1));
    }

    #[test]
    fn slot_free_outside_window() {
        let st = ScheduleState::new(1, 2);
        assert!(!st.slot_free(ResourceId(0), Round(5)));
        assert!(st.slot_free(ResourceId(0), Round(1)));
    }
}
