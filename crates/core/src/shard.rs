//! Resource sharding for the parallel round engine.
//!
//! A [`ShardMap`] assigns every resource to one of `S` shards. The sharded
//! round driver (in `reqsched-sim`) gives each shard its own schedule state
//! and matching; a request whose alternatives all land in one shard is
//! handled entirely inside it, while a **straddler** (alternatives in
//! different shards) forces the driver to fuse those shards' solver groups.
//! The partitioner therefore decides how much parallel structure survives:
//!
//! * [`Partitioner::Hash`] — placement-oblivious baseline: a fixed bit-mix
//!   of the resource id. Uniform shard sizes, but correlated replica pairs
//!   straddle with probability `≈ 1 − 1/S`.
//! * [`Partitioner::Range`] — contiguous blocks of the id space. Ideal when
//!   replica pairs are placed near each other (e.g. clustered catalogs laid
//!   out contiguously), useless when placement is scattered.
//! * [`Partitioner::PairAffinity`] — correlation-aware: reads a trace,
//!   counts how often each resource pair is named together, greedily unions
//!   the heaviest pairs under a balance cap, and packs the resulting
//!   affinity components onto shards. This is the replica-aware variant
//!   that drives the straddler fraction towards zero whenever the workload
//!   has co-access structure to find.
//!
//! All three are deterministic: same inputs, same map, on every platform.

use reqsched_model::{ResourceId, Trace};
use std::collections::BTreeMap;

/// How resources are assigned to shards (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Partitioner {
    /// Fixed bit-mix of the resource id.
    Hash,
    /// Contiguous id-space blocks.
    Range,
    /// Trace-driven co-access clustering (needs a trace to learn from).
    PairAffinity,
}

impl Partitioner {
    /// Short label for reports and CSV columns.
    pub fn label(&self) -> &'static str {
        match self {
            Partitioner::Hash => "hash",
            Partitioner::Range => "range",
            Partitioner::PairAffinity => "pair-affinity",
        }
    }
}

/// SplitMix64 finalizer: a fixed, platform-independent bit mix.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Smallest catalog for which sharding beats the serial engine.
///
/// Calibrated from BENCH_PR7's range-partitioned ladder: at n = 10k, S = 4
/// was 0.98× (per-shard state too small to amortize the fan-out), while at
/// n = 100k it was 3.25×. The threshold sits between those measured points.
pub const AUTO_MIN_RESOURCES: u32 = 32_768;

/// Straddler fraction above which [`ShardMap::auto`] refuses to shard:
/// beyond this, group fusion collapses the decomposition early enough that
/// most of the run executes on one fused group anyway, paying the routing
/// and history-recording overhead for nothing.
pub const AUTO_MAX_STRADDLER_FRACTION: f64 = 0.25;

/// A deterministic resource → shard assignment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardMap {
    n: u32,
    shards: u32,
    assign: Vec<u32>, // resource index -> shard
}

impl ShardMap {
    /// Hash-partitioned map: shard = bit-mix(resource) mod `shards`.
    pub fn hash(n: u32, shards: u32) -> ShardMap {
        Self::build(n, shards, |r| {
            (mix64(u64::from(r)) % u64::from(shards)) as u32
        })
    }

    /// Range-partitioned map: `shards` contiguous blocks of near-equal size.
    pub fn range(n: u32, shards: u32) -> ShardMap {
        Self::build(n, shards, |r| {
            ((u64::from(r) * u64::from(shards)) / u64::from(n)) as u32
        })
    }

    /// Correlation-aware map learned from `trace` (see module docs):
    /// resources frequently requested together are co-located, subject to a
    /// per-component size cap of `ceil(n / shards)` that keeps any single
    /// shard from absorbing the whole catalog.
    pub fn pair_affinity(n: u32, shards: u32, trace: &Trace) -> ShardMap {
        assert!(n >= 1 && shards >= 1);
        if shards == 1 {
            return ShardMap {
                n,
                shards,
                assign: vec![0; n as usize],
            };
        }
        // 1) Pair co-access counts over the trace.
        let mut counts: BTreeMap<(u32, u32), u64> = BTreeMap::new();
        for req in trace.requests() {
            let alts = req.alternatives.as_slice();
            for (i, a) in alts.iter().enumerate() {
                for b in &alts[i + 1..] {
                    let key = (a.0.min(b.0), a.0.max(b.0));
                    *counts.entry(key).or_insert(0) += 1;
                }
            }
        }
        // 2) Heaviest pairs first (ties by pair id for determinism).
        let mut edges: Vec<((u32, u32), u64)> = counts.into_iter().collect();
        edges.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        // 3) Union-find under a balance cap.
        let cap = n.div_ceil(shards) as usize;
        let mut parent: Vec<u32> = (0..n).collect();
        let mut size: Vec<u32> = vec![1; n as usize];
        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                parent[x as usize] = parent[parent[x as usize] as usize];
                x = parent[x as usize];
            }
            x
        }
        for ((a, b), _) in &edges {
            let (ra, rb) = (find(&mut parent, *a), find(&mut parent, *b));
            if ra == rb {
                continue;
            }
            if (size[ra as usize] + size[rb as usize]) as usize > cap {
                continue; // keep shard balance: refuse oversized components
            }
            // Union by root id (smaller root wins) for determinism.
            let (lo, hi) = (ra.min(rb), ra.max(rb));
            parent[hi as usize] = lo;
            size[lo as usize] += size[hi as usize];
        }
        // 4) Components sorted by (size desc, root asc), packed onto the
        //    least-loaded shard (ties to the lowest shard index).
        let mut members: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        for r in 0..n {
            members.entry(find(&mut parent, r)).or_default().push(r);
        }
        let mut comps: Vec<Vec<u32>> = members.into_values().collect();
        comps.sort_by(|a, b| b.len().cmp(&a.len()).then(a[0].cmp(&b[0])));
        let mut load = vec![0usize; shards as usize];
        let mut assign = vec![0u32; n as usize];
        for comp in comps {
            let target = (0..shards as usize)
                .min_by_key(|&s| (load[s], s))
                // lint: shards >= 1 is asserted in build(), the range is never empty
                .expect("at least one shard");
            load[target] += comp.len();
            for r in comp {
                assign[r as usize] = target as u32;
            }
        }
        ShardMap { n, shards, assign }
    }

    /// Range-partitioned map with an automatic serial fallback: `shards`
    /// groups when the catalog is big enough and the workload shard-friendly
    /// enough to profit, otherwise a single group (identical to the serial
    /// engine, no fan-out cost). `straddler_fraction` is the caller's
    /// estimate — typically [`ShardMap::straddler_fraction`] of a candidate
    /// map over the trace, or `0.0` when placement is known-contiguous.
    pub fn auto(n: u32, shards: u32, straddler_fraction: f64) -> ShardMap {
        ShardMap::range(n, ShardMap::auto_shards(n, shards, straddler_fraction))
    }

    /// The effective shard count [`ShardMap::auto`] would pick: `shards`,
    /// unless `n` is below [`AUTO_MIN_RESOURCES`] or the predicted
    /// straddler fraction exceeds [`AUTO_MAX_STRADDLER_FRACTION`], in which
    /// case 1.
    pub fn auto_shards(n: u32, shards: u32, straddler_fraction: f64) -> u32 {
        if n < AUTO_MIN_RESOURCES || straddler_fraction > AUTO_MAX_STRADDLER_FRACTION {
            1
        } else {
            shards.max(1)
        }
    }

    fn build(n: u32, shards: u32, f: impl Fn(u32) -> u32) -> ShardMap {
        assert!(n >= 1 && shards >= 1);
        ShardMap {
            n,
            shards,
            assign: (0..n).map(f).collect(),
        }
    }

    /// Build with the given partitioner; `PairAffinity` learns from `trace`.
    pub fn build_with(partitioner: Partitioner, n: u32, shards: u32, trace: &Trace) -> ShardMap {
        match partitioner {
            Partitioner::Hash => ShardMap::hash(n, shards),
            Partitioner::Range => ShardMap::range(n, shards),
            Partitioner::PairAffinity => ShardMap::pair_affinity(n, shards, trace),
        }
    }

    /// Number of resources.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Number of shards.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The shard owning `res`.
    pub fn shard_of(&self, res: ResourceId) -> u32 {
        self.assign[res.index()]
    }

    /// The resources of shard `s`, in ascending id order.
    pub fn members(&self, s: u32) -> Vec<u32> {
        (0..self.n)
            .filter(|&r| self.assign[r as usize] == s)
            .collect()
    }

    /// True iff the alternatives span more than one shard.
    pub fn is_straddler(&self, alts: &[ResourceId]) -> bool {
        alts.iter()
            .any(|a| self.shard_of(*a) != self.shard_of(alts[0]))
    }

    /// Fraction of the trace's requests whose alternatives straddle shards.
    pub fn straddler_fraction(&self, trace: &Trace) -> f64 {
        let total = trace.len();
        if total == 0 {
            return 0.0;
        }
        let straddlers = trace
            .requests()
            .iter()
            .filter(|r| self.is_straddler(r.alternatives.as_slice()))
            .count();
        straddlers as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reqsched_model::{Round, TraceBuilder};

    #[test]
    fn hash_and_range_cover_all_shards() {
        for s in [1u32, 2, 4, 8] {
            for map in [ShardMap::hash(64, s), ShardMap::range(64, s)] {
                assert_eq!(map.shards(), s);
                let hit: std::collections::BTreeSet<u32> =
                    (0..64).map(|r| map.shard_of(ResourceId(r))).collect();
                assert_eq!(hit.len(), s as usize, "every shard owns something");
                assert!(hit.iter().all(|&x| x < s));
            }
        }
    }

    #[test]
    fn range_blocks_are_contiguous_and_balanced() {
        let map = ShardMap::range(10, 4);
        let shards: Vec<u32> = (0..10).map(|r| map.shard_of(ResourceId(r))).collect();
        assert!(shards.windows(2).all(|w| w[0] <= w[1]), "{shards:?}");
        for s in 0..4 {
            let k = map.members(s).len();
            assert!((2..=3).contains(&k), "shard {s} owns {k}");
        }
    }

    #[test]
    fn maps_are_deterministic() {
        assert_eq!(ShardMap::hash(100, 4), ShardMap::hash(100, 4));
        assert_eq!(ShardMap::range(100, 4), ShardMap::range(100, 4));
    }

    #[test]
    fn pair_affinity_colocates_hot_pairs() {
        // Catalog of 8 resources, requests always pair (2i, 2i+1): the
        // affinity map must put every pair in one shard — zero straddlers —
        // while the hash map (oblivious) splits some pair.
        let mut b = TraceBuilder::new(3);
        for t in 0..20u64 {
            for i in 0..4u32 {
                b.push(Round(t), 2 * i, 2 * i + 1);
            }
        }
        let trace = b.build();
        let affinity = ShardMap::pair_affinity(8, 4, &trace);
        assert_eq!(affinity.straddler_fraction(&trace), 0.0);
        // Balance cap respected: no shard owns more than ceil(8/4) = 2.
        for s in 0..4 {
            assert!(affinity.members(s).len() <= 2);
        }
    }

    #[test]
    fn pair_affinity_on_scrambled_ids_beats_range() {
        // Pairs (i, i + 16): contiguous range blocks of 8 split every pair,
        // the learned map reunites them.
        let mut b = TraceBuilder::new(3);
        for t in 0..10u64 {
            for i in 0..16u32 {
                b.push(Round(t), i, i + 16);
            }
        }
        let trace = b.build();
        let range = ShardMap::range(32, 4);
        let affinity = ShardMap::pair_affinity(32, 4, &trace);
        assert_eq!(range.straddler_fraction(&trace), 1.0);
        assert_eq!(affinity.straddler_fraction(&trace), 0.0);
    }

    #[test]
    fn straddler_fraction_of_empty_trace_is_zero() {
        let map = ShardMap::hash(4, 2);
        assert_eq!(map.straddler_fraction(&Trace::empty()), 0.0);
    }

    #[test]
    fn auto_falls_back_to_serial_below_the_calibrated_floor() {
        // The BENCH_PR7 regression point: 10k resources must NOT shard.
        assert_eq!(ShardMap::auto(10_000, 4, 0.0).shards(), 1);
        // The measured win point keeps its requested width.
        let map = ShardMap::auto(100_000, 4, 0.0);
        assert_eq!(map.shards(), 4);
        assert_eq!(map, ShardMap::range(100_000, 4));
        // Exactly at the floor counts as big enough.
        assert_eq!(ShardMap::auto(AUTO_MIN_RESOURCES, 4, 0.0).shards(), 4);
        assert_eq!(ShardMap::auto(AUTO_MIN_RESOURCES - 1, 4, 0.0).shards(), 1);
    }

    #[test]
    fn auto_falls_back_when_straddlers_would_fuse_everything() {
        assert_eq!(ShardMap::auto(100_000, 4, 0.5).shards(), 1);
        // At the cap is still allowed; only strictly above falls back.
        assert_eq!(
            ShardMap::auto(100_000, 4, AUTO_MAX_STRADDLER_FRACTION).shards(),
            4
        );
        assert_eq!(ShardMap::auto_shards(100_000, 8, 0.26), 1);
        assert_eq!(ShardMap::auto_shards(100_000, 0, 0.0), 1, "clamped up");
    }

    #[test]
    fn single_shard_never_straddles() {
        let map = ShardMap::hash(16, 1);
        assert!(!map.is_straddler(&[ResourceId(0), ResourceId(15)]));
    }
}
