//! Tie-breaking policies: which member of a strategy *class* runs.
//!
//! The paper defines each strategy by constraints on the matching ("any
//! maximal matching such that …") and proves lower bounds existentially:
//! *"the strategy can be implemented in a way that the adversary forces …"*.
//! A [`TieBreak`] selects the implementation:
//!
//! * [`TieBreak::FirstFit`] — a natural deterministic member: requests are
//!   considered in id order, slots earliest-round-first.
//! * [`TieBreak::HintGuided`] — follows the [`Hint`]s embedded in the trace
//!   by an adversarial generator, realizing exactly the pessimal member the
//!   lower-bound proofs posit.
//! * [`TieBreak::Random`] — samples a member reproducibly from a seed, used
//!   to measure how *typical* members behave on the adversarial inputs.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use reqsched_model::{Hint, RequestId, Round};

/// Tie-breaking policy (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TieBreak {
    /// Request-id order, earliest-slot-first.
    FirstFit,
    /// Request-id order, **latest**-slot-first — the procrastinating member
    /// (used by the `A_lazy_max` ablation and to widen member sampling).
    LatestFit,
    /// Follow the generator's per-request hints.
    HintGuided,
    /// Reproducibly random member; the `u64` is the seed.
    Random(u64),
}

impl TieBreak {
    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            TieBreak::FirstFit => "first-fit".into(),
            TieBreak::LatestFit => "latest-fit".into(),
            TieBreak::HintGuided => "hint-guided".into(),
            TieBreak::Random(s) => format!("random({s})"),
        }
    }

    /// Order left vertices (request, hint) pairs for augmentation.
    ///
    /// Returns indices into `entries`. `FirstFit` keeps id order,
    /// `HintGuided` sorts by `(priority, id)`, `Random` shuffles with a
    /// per-round seed.
    pub fn order_lefts(&self, entries: &[(RequestId, Hint)], round: Round) -> Vec<u32> {
        let mut idx: Vec<u32> = (0..entries.len() as u32).collect();
        match self {
            TieBreak::FirstFit | TieBreak::LatestFit => {
                idx.sort_by_key(|&i| entries[i as usize].0);
            }
            TieBreak::HintGuided => {
                idx.sort_by_key(|&i| {
                    let (id, hint) = entries[i as usize];
                    (hint.priority, id)
                });
            }
            TieBreak::Random(seed) => {
                let mut rng = self.rng(round, 0x5EED_1E57);
                let _ = seed;
                idx.shuffle(&mut rng);
            }
        }
        idx
    }

    /// Per-round RNG for slot-order shuffling (`Random` only).
    pub fn rng(&self, round: Round, salt: u64) -> ChaCha8Rng {
        let seed = match self {
            TieBreak::Random(s) => *s,
            _ => 0,
        };
        ChaCha8Rng::seed_from_u64(seed ^ round.get().wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt)
    }

    /// Whether slot candidates should be hint-reordered.
    pub fn is_hint_guided(&self) -> bool {
        matches!(self, TieBreak::HintGuided)
    }

    /// Whether slot candidates should be shuffled.
    pub fn is_random(&self) -> bool {
        matches!(self, TieBreak::Random(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries() -> Vec<(RequestId, Hint)> {
        vec![
            (RequestId(0), Hint::priority(5)),
            (RequestId(1), Hint::priority(1)),
            (RequestId(2), Hint::default()),
        ]
    }

    #[test]
    fn first_fit_keeps_id_order() {
        let order = TieBreak::FirstFit.order_lefts(&entries(), Round(0));
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn hint_guided_sorts_by_priority() {
        let order = TieBreak::HintGuided.order_lefts(&entries(), Round(0));
        assert_eq!(order, vec![1, 0, 2]); // priorities 1, 5, MAX
    }

    #[test]
    fn random_is_reproducible_and_round_dependent() {
        let e = entries();
        let a = TieBreak::Random(7).order_lefts(&e, Round(3));
        let b = TieBreak::Random(7).order_lefts(&e, Round(3));
        assert_eq!(a, b);
        // Different rounds eventually differ (not guaranteed per round, but
        // over several rounds at least one permutation must differ).
        let mut differs = false;
        for r in 0..20 {
            if TieBreak::Random(7).order_lefts(&e, Round(r)) != a {
                differs = true;
                break;
            }
        }
        assert!(differs);
    }

    #[test]
    fn labels() {
        assert_eq!(TieBreak::FirstFit.label(), "first-fit");
        assert_eq!(TieBreak::HintGuided.label(), "hint-guided");
        assert_eq!(TieBreak::Random(3).label(), "random(3)");
    }
}
