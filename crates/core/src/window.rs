//! Building the per-round bipartite graph `G_t` (or a sub-window of it)
//! from the schedule state, and writing a computed matching back.

use crate::schedule::ScheduleState;
use crate::tiebreak::TieBreak;
use rand::seq::SliceRandom;
use reqsched_matching::{BipartiteGraph, BitSet, GraphBuilder, Matching, MatchingWorkspace};
use reqsched_model::{RequestId, ResourceId, Round};

/// Densest participation-mask span we are willing to pay for, as a multiple
/// of the participant count (plus slack for tiny sets). Sparser id ranges
/// fall back to binary search.
const MASK_DENSITY: usize = 4;
const MASK_SLACK: usize = 1024;

/// Reusable per-strategy working memory for the round loop.
///
/// [`WindowGraph::build_with`] and the strategies' matching calls draw all
/// of their buffers from here: the CSR graph builder, the slot-candidate
/// scratch, the participation bitmask, the recycled [`Matching`], the
/// right-vertex level buffer and the [`MatchingWorkspace`] for the
/// augmenting-path searches. Buffers grow to the largest round seen and are
/// then reused, so a steady-state round performs (almost) no heap
/// allocation. Handing the graph and matching back via
/// [`WindowScratch::recycle`] at the end of a round completes the loop.
#[derive(Debug, Default)]
pub struct WindowScratch {
    /// CSR builder whose buffers shuttle in/out of the round's graph.
    builder: GraphBuilder,
    /// Slot candidates of one left vertex: `(round, alt pos, right idx)`.
    slots: Vec<(u64, u32, u32)>,
    /// Adjacency staging for one left vertex.
    adj: Vec<u32>,
    /// Initial matched pairs `(left, right)` from carried assignments.
    init: Vec<(u32, u32)>,
    /// Participation bitmask over the id span `mask_base ..` (one bit per
    /// id; membership tests are single word probes).
    mask: BitSet,
    mask_base: u32,
    /// Recycled matching buffer.
    matching: Matching,
    /// Recycled left-vertex id buffer (returned through `recycle`).
    lefts_pool: Vec<RequestId>,
    /// Right-vertex priority levels for the saturation pass.
    pub(crate) levels: Vec<u32>,
    /// Left-vertex priorities for the hint-guided position pass.
    pub(crate) prio: Vec<u32>,
    /// Matched pairs sorted by right vertex, for the position pass.
    pub(crate) pairs: Vec<(u32, u32)>,
    /// Scratch for the matching algorithms (`*_with` variants).
    pub(crate) ws: MatchingWorkspace,
}

impl WindowScratch {
    /// A scratch with no capacity yet; buffers grow on first use.
    pub fn new() -> WindowScratch {
        WindowScratch::default()
    }

    /// Borrow the matching-algorithm workspace (for callers outside this
    /// crate that drive the `*_with` matching routines themselves).
    pub fn matching_workspace(&mut self) -> &mut MatchingWorkspace {
        &mut self.ws
    }

    /// An empty, capacity-retaining `Vec` for the round's participant ids.
    /// Pair with [`WindowScratch::recycle`] (which recovers the buffer from
    /// the consumed [`WindowGraph`]) or [`WindowScratch::return_lefts`].
    pub fn take_lefts(&mut self) -> Vec<RequestId> {
        let mut v = std::mem::take(&mut self.lefts_pool);
        v.clear();
        v
    }

    /// Hand back a lefts buffer unused (the no-participants round).
    pub fn return_lefts(&mut self, lefts: Vec<RequestId>) {
        self.lefts_pool = lefts;
    }

    /// Recycle a finished round's graph, participant list and matching so
    /// the next round reuses their allocations.
    pub fn recycle(&mut self, wg: WindowGraph, m: Matching) {
        self.builder.reclaim(wg.graph, 0);
        self.lefts_pool = wg.lefts;
        self.matching = m;
    }
}

/// The known subgraph the strategies match on.
///
/// Left vertices are the participating live requests (`lefts[i]` is the id of
/// left vertex `i`); right vertices are the window slots, indexed
/// `j * n + resource` for round offset `j ∈ 0..rows`. Adjacency order encodes
/// the tie-break's slot preference, which the augmenting-path searches in
/// `reqsched-matching` follow.
pub struct WindowGraph {
    /// The bipartite graph (adjacency order = slot preference).
    pub graph: BipartiteGraph,
    /// Left-vertex index → request id.
    pub lefts: Vec<RequestId>,
    n: u32,
    rows: u32,
    front: Round,
}

impl WindowGraph {
    /// Build the graph over the given participating requests.
    ///
    /// * `rows` — how many window rows to include: 1 for `A_current`
    ///   (current-round slots only), `d` for everything else.
    /// * `include_occupied` — if true, edges to slots currently occupied by
    ///   *participating* requests are included (rescheduling strategies);
    ///   otherwise only free slots are edges (`A_fix` family). Slots held by
    ///   non-participants are never edges.
    ///
    /// Returns the graph plus the initial matching induced by the current
    /// assignments of the participating requests.
    pub fn build(
        state: &ScheduleState,
        lefts: Vec<RequestId>,
        rows: u32,
        include_occupied: bool,
        tie: &TieBreak,
    ) -> (WindowGraph, Matching) {
        WindowGraph::build_with(
            state,
            lefts,
            rows,
            include_occupied,
            tie,
            &mut WindowScratch::new(),
        )
    }

    /// [`WindowGraph::build`] drawing every buffer from `scratch` instead of
    /// allocating: the graph's CSR arrays come out of the scratch builder,
    /// the matching reuses the recycled buffer, and participation is tested
    /// against a dense bitmask over the participant id span (falling back to
    /// binary search when the span is sparse). Hand the graph and matching
    /// back via [`WindowScratch::recycle`] once the round is applied.
    pub fn build_with(
        state: &ScheduleState,
        lefts: Vec<RequestId>,
        rows: u32,
        include_occupied: bool,
        tie: &TieBreak,
        scratch: &mut WindowScratch,
    ) -> (WindowGraph, Matching) {
        let n = state.n();
        let front = state.front();
        let n_right = rows * n;

        debug_assert!(
            lefts.windows(2).all(|w| w[0] < w[1]),
            "lefts must be sorted"
        );
        // Membership mask so `include_occupied` can check participation.
        // Participant ids are typically a dense range (arrival order), so a
        // bitmask over the span beats a per-edge binary search.
        let id_span = lefts
            .first()
            .zip(lefts.last())
            .map(|(lo, hi)| (hi.0 - lo.0) as usize + 1);
        let use_mask = include_occupied
            && id_span.is_some_and(|span| span <= MASK_DENSITY * lefts.len() + MASK_SLACK + 1);
        if let (true, Some(span)) = (use_mask, id_span) {
            scratch.mask_base = lefts[0].0;
            scratch.mask.reset(span);
            for &id in &lefts {
                scratch.mask.set((id.0 - scratch.mask_base) as usize);
            }
        }
        let mask = &scratch.mask;
        let mask_base = scratch.mask_base;
        let participating = |id: RequestId| {
            if use_mask {
                id.0 >= mask_base
                    && ((id.0 - mask_base) as usize) < mask.len()
                    && mask.contains((id.0 - mask_base) as usize)
            } else {
                lefts.binary_search(&id).is_ok()
            }
        };

        scratch.builder.reset(n_right);
        scratch.init.clear();

        for (li, &id) in lefts.iter().enumerate() {
            // lint: `lefts` is rebuilt from `state` live ids immediately before this call
            let live = state.live(id).expect("participant must be live");
            scratch.slots.clear();
            let lo = live.arrival().get().max(front.get());
            let hi = live.expiry().get().min(front.get() + rows as u64 - 1);
            for round in lo..=hi {
                let j = crate::fit_u32(round - front.get());
                for (pos, &res) in live.alternatives().as_slice().iter().enumerate() {
                    let slot_round = Round(round);
                    // A crashed or stalled slot doesn't exist: its edges
                    // vanish and the request degrades to whatever slots its
                    // surviving alternative still offers.
                    if !state.slot_usable(res, slot_round) {
                        continue;
                    }
                    let usable = if state.slot_free(res, slot_round) {
                        true
                    } else if include_occupied {
                        match state.occupant(res, slot_round) {
                            Some(occ) => participating(occ),
                            None => false,
                        }
                    } else {
                        false
                    };
                    if usable {
                        scratch.slots.push((round, pos as u32, j * n + res.0));
                    }
                }
            }
            order_slots(
                &mut scratch.slots,
                live.hint().prefer,
                live.alternatives().as_slice(),
                tie,
                front,
            );
            scratch.adj.clear();
            scratch.adj.extend(scratch.slots.iter().map(|&(_, _, r)| r));
            scratch.builder.add_left(&scratch.adj);
            if let Some((res, round)) = live.assigned() {
                let j = crate::fit_u32(round - front);
                scratch.init.push((li as u32, j * n + res.0));
            }
        }

        let graph = scratch.builder.take_graph();
        let mut matching = std::mem::replace(&mut scratch.matching, Matching::empty(0, 0));
        matching.reset(graph.n_left(), graph.n_right());
        for &(l, r) in &scratch.init {
            debug_assert!(graph.has_edge(l, r), "assigned slot must be an edge");
            matching.set(l, r);
        }
        (
            WindowGraph {
                graph,
                lefts,
                n,
                rows,
                front,
            },
            matching,
        )
    }

    /// Decode a right-vertex index into `(resource, round)`.
    pub fn slot(&self, right: u32) -> (ResourceId, Round) {
        let j = right / self.n;
        let i = right % self.n;
        debug_assert!(j < self.rows);
        (ResourceId(i), self.front + j as u64)
    }

    /// Right-vertex levels for lexicographic balancing: level = round offset
    /// (`A_balance`'s `F`: earlier rounds are higher priority).
    pub fn levels_by_round(&self) -> Vec<u32> {
        let mut out = Vec::new();
        self.write_levels_by_round(&mut out);
        out
    }

    /// [`WindowGraph::levels_by_round`] into a caller-owned buffer.
    pub fn write_levels_by_round(&self, out: &mut Vec<u32>) {
        out.clear();
        out.extend((0..self.rows * self.n).map(|r| r / self.n));
    }

    /// Right-vertex levels for `A_eager`: current round = 0, all later = 1.
    pub fn levels_current_first(&self) -> Vec<u32> {
        let mut out = Vec::new();
        self.write_levels_current_first(&mut out);
        out
    }

    /// [`WindowGraph::levels_current_first`] into a caller-owned buffer.
    pub fn write_levels_current_first(&self, out: &mut Vec<u32>) {
        out.clear();
        out.extend((0..self.rows * self.n).map(|r| u32::from(r / self.n != 0)));
    }

    /// Tie-break-ordered left-vertex order for augmentation, over an
    /// arbitrary subset of left indices.
    pub fn left_order(
        &self,
        state: &ScheduleState,
        subset: impl Iterator<Item = u32>,
        tie: &TieBreak,
    ) -> Vec<u32> {
        let subset: Vec<u32> = subset.collect();
        let entries: Vec<_> = subset
            .iter()
            .map(|&li| {
                let id = self.lefts[li as usize];
                // lint: `lefts` holds only ids live in `state` for this round
                let hint = state.live(id).expect("live").hint();
                (id, hint)
            })
            .collect();
        tie.order_lefts(&entries, self.front)
            .into_iter()
            .map(|i| subset[i as usize])
            .collect()
    }

    /// Tie-break pass: permute matched occupants so that higher-priority
    /// (numerically lower [`Hint::priority`](reqsched_model::Hint)) requests
    /// sit on *earlier* slots wherever a feasible pairwise swap exists.
    ///
    /// The paper's strategies leave open which of several equally good
    /// matchings to use; its lower-bound proofs pick members that serve the
    /// adversary's designated requests first. A swap never changes the
    /// matching's cardinality or the set of covered slots (so every strategy
    /// rule — maximality, maximum cardinality, the balance function `F`,
    /// current-round coverage — is preserved); it only reorders occupants,
    /// which is exactly the freedom tie-breaking may use.
    pub fn priority_position_pass(&self, state: &ScheduleState, m: &mut Matching) {
        self.priority_position_pass_with(state, m, &mut Vec::new(), &mut Vec::new());
    }

    /// [`WindowGraph::priority_position_pass`] with caller-owned buffers
    /// (recycled via [`WindowScratch`] in the round loop).
    pub fn priority_position_pass_with(
        &self,
        state: &ScheduleState,
        m: &mut Matching,
        prio: &mut Vec<u32>,
        pairs: &mut Vec<(u32, u32)>,
    ) {
        prio.clear();
        prio.extend(
            self.lefts
                .iter()
                // lint: `lefts` holds only ids live in `state` for this round
                .map(|&id| state.live(id).expect("live").hint().priority),
        );
        // Bounded bubble pass: each swap strictly decreases the sum of
        // slot-rank × priority, so a fixpoint is reached; cap defensively.
        // A swap exchanges the occupants of two positions, never the
        // positions themselves, so the right-vertex-sorted `pairs` built
        // here stays valid across iterations.
        pairs.clear();
        pairs.extend(m.pairs());
        pairs.sort_by_key(|&(_, r)| r);
        for _ in 0..self.lefts.len().max(4) {
            let mut changed = false;
            for i in 0..pairs.len() {
                for j in i + 1..pairs.len() {
                    let (a, ra) = pairs[i];
                    let (b, rb) = pairs[j];
                    if prio[b as usize] < prio[a as usize]
                        && self.graph.has_edge(b, ra)
                        && self.graph.has_edge(a, rb)
                    {
                        m.unset_left(a);
                        m.unset_left(b);
                        m.set(a, rb);
                        m.set(b, ra);
                        pairs[i] = (b, ra);
                        pairs[j] = (a, rb);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// Write `matching` back into the schedule: every participating request
    /// is unassigned, then re-assigned per its matched slot (requests left
    /// unmatched stay unassigned).
    pub fn apply(&self, state: &mut ScheduleState, matching: &Matching) {
        for &id in &self.lefts {
            state.unassign(id);
        }
        for (l, r) in matching.pairs() {
            let (res, round) = self.slot(r);
            state.assign(self.lefts[l as usize], res, round);
        }
        debug_assert!(state.check_consistency());
    }
}

/// Order slot candidates per tie-break (see [`TieBreak`] docs). Shared with
/// the delta round engine, which freezes the order at arrival.
pub(crate) fn order_slots(
    scratch: &mut [(u64, u32, u32)],
    prefer: Option<ResourceId>,
    alts: &[ResourceId],
    tie: &TieBreak,
    front: Round,
) {
    match tie {
        TieBreak::FirstFit => {
            scratch.sort_by_key(|&(round, pos, _)| (round, pos));
        }
        TieBreak::LatestFit => {
            scratch.sort_by_key(|&(round, pos, _)| (std::cmp::Reverse(round), pos));
        }
        TieBreak::HintGuided => match prefer {
            Some(p) => {
                let ppos = alts.iter().position(|&a| a == p);
                scratch.sort_by_key(|&(round, pos, _)| {
                    let preferred = Some(pos as usize) == ppos;
                    (!preferred, round, pos)
                });
            }
            None => scratch.sort_by_key(|&(round, pos, _)| (round, pos)),
        },
        TieBreak::Random(_) => {
            let mut rng = tie.rng(front, 0xAD7A_CE0C);
            scratch.shuffle(&mut rng);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reqsched_model::{Alternatives, Hint, Request};

    fn insert(state: &mut ScheduleState, id: u32, a: u32, b: u32, hint: Hint) {
        state.insert(&Request {
            id: RequestId(id),
            arrival: state.front(),
            alternatives: Alternatives::two(ResourceId(a), ResourceId(b)),
            deadline: state.d(),
            tag: 0,
            hint,
        });
    }

    #[test]
    fn graph_covers_feasible_free_slots() {
        let mut st = ScheduleState::new(2, 2);
        insert(&mut st, 0, 0, 1, Hint::default());
        let (wg, m) = WindowGraph::build(&st, vec![RequestId(0)], 2, false, &TieBreak::FirstFit);
        assert_eq!(wg.graph.n_left(), 1);
        assert_eq!(wg.graph.n_right(), 4);
        // Feasible: both resources, both rounds = 4 edges.
        assert_eq!(wg.graph.n_edges(), 4);
        assert_eq!(m.size(), 0);
        // FirstFit order: round 0 alt0, round 0 alt1, round 1 alt0, round 1 alt1.
        assert_eq!(wg.graph.neighbors(0), &[0, 1, 2, 3]);
    }

    #[test]
    fn occupied_slots_excluded_without_flag() {
        let mut st = ScheduleState::new(2, 2);
        insert(&mut st, 0, 0, 1, Hint::default());
        st.assign(RequestId(0), ResourceId(0), Round(0));
        insert(&mut st, 1, 0, 1, Hint::default());
        let (wg, _) = WindowGraph::build(&st, vec![RequestId(1)], 2, false, &TieBreak::FirstFit);
        // Slot (S0, t0) occupied by non-participant r0 -> excluded.
        assert_eq!(wg.graph.neighbors(0), &[1, 2, 3]);
    }

    #[test]
    fn occupied_slots_included_for_participants() {
        let mut st = ScheduleState::new(2, 2);
        insert(&mut st, 0, 0, 1, Hint::default());
        st.assign(RequestId(0), ResourceId(0), Round(0));
        insert(&mut st, 1, 0, 1, Hint::default());
        let (wg, m) = WindowGraph::build(
            &st,
            vec![RequestId(0), RequestId(1)],
            2,
            true,
            &TieBreak::FirstFit,
        );
        assert_eq!(wg.graph.neighbors(1), &[0, 1, 2, 3]);
        // Initial matching carries r0's assignment.
        assert_eq!(m.size(), 1);
        assert_eq!(m.left_mate(0), Some(0));
    }

    #[test]
    fn hint_prefers_resource_over_earliness() {
        let mut st = ScheduleState::new(2, 2);
        insert(&mut st, 0, 0, 1, Hint::prefer(ResourceId(1)));
        let (wg, _) = WindowGraph::build(&st, vec![RequestId(0)], 2, false, &TieBreak::HintGuided);
        // S1's slots (indices 1, 3) come before S0's (0, 2).
        assert_eq!(wg.graph.neighbors(0), &[1, 3, 0, 2]);
    }

    #[test]
    fn single_row_restriction() {
        let mut st = ScheduleState::new(2, 3);
        insert(&mut st, 0, 0, 1, Hint::default());
        let (wg, _) = WindowGraph::build(&st, vec![RequestId(0)], 1, false, &TieBreak::FirstFit);
        assert_eq!(wg.graph.n_right(), 2);
        assert_eq!(wg.graph.neighbors(0), &[0, 1]);
    }

    #[test]
    fn apply_rewrites_assignments() {
        let mut st = ScheduleState::new(2, 2);
        insert(&mut st, 0, 0, 1, Hint::default());
        insert(&mut st, 1, 0, 1, Hint::default());
        let (wg, mut m) = WindowGraph::build(
            &st,
            vec![RequestId(0), RequestId(1)],
            2,
            true,
            &TieBreak::FirstFit,
        );
        reqsched_matching::kuhn_in_order(&wg.graph, &mut m, &[0, 1]);
        assert_eq!(m.size(), 2);
        wg.apply(&mut st, &m);
        assert_eq!(st.unassigned().len(), 0);
        assert!(st.check_consistency());
    }

    #[test]
    fn levels_shapes() {
        let mut st = ScheduleState::new(2, 3);
        insert(&mut st, 0, 0, 1, Hint::default());
        let (wg, _) = WindowGraph::build(&st, vec![RequestId(0)], 3, false, &TieBreak::FirstFit);
        assert_eq!(wg.levels_by_round(), vec![0, 0, 1, 1, 2, 2]);
        assert_eq!(wg.levels_current_first(), vec![0, 0, 1, 1, 1, 1]);
    }

    #[test]
    fn slot_decoding_roundtrip() {
        let mut st = ScheduleState::new(3, 2);
        insert(&mut st, 0, 0, 1, Hint::default());
        let (wg, _) = WindowGraph::build(&st, vec![RequestId(0)], 2, false, &TieBreak::FirstFit);
        assert_eq!(wg.slot(0), (ResourceId(0), Round(0)));
        assert_eq!(wg.slot(4), (ResourceId(1), Round(1)));
    }

    /// The pre-hoist `priority_position_pass`: rebuilds the sorted pair
    /// list on every outer iteration. Kept as a differential oracle for the
    /// hoisted version.
    fn priority_pass_reference(wg: &WindowGraph, state: &ScheduleState, m: &mut Matching) {
        let prio: Vec<u32> = wg
            .lefts
            .iter()
            .map(|&id| state.live(id).expect("live").hint().priority)
            .collect();
        for _ in 0..wg.lefts.len().max(4) {
            let mut pairs: Vec<(u32, u32)> = m.pairs().collect();
            pairs.sort_by_key(|&(_, r)| r);
            let mut changed = false;
            for i in 0..pairs.len() {
                for j in i + 1..pairs.len() {
                    let (a, ra) = pairs[i];
                    let (b, rb) = pairs[j];
                    if prio[b as usize] < prio[a as usize]
                        && wg.graph.has_edge(b, ra)
                        && wg.graph.has_edge(a, rb)
                    {
                        m.unset_left(a);
                        m.unset_left(b);
                        m.set(a, rb);
                        m.set(b, ra);
                        pairs[i] = (b, ra);
                        pairs[j] = (a, rb);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    #[test]
    fn hoisted_priority_pass_matches_reference_fixpoint() {
        // Several priority layouts over a 3-request window; the hoisted
        // pass and the rebuild-every-iteration reference must agree exactly.
        for prios in [[3u32, 2, 1], [1, 3, 2], [2, 1, 3], [1, 1, 1], [9, 1, 5]] {
            let mut st = ScheduleState::new(2, 3);
            for (i, &p) in prios.iter().enumerate() {
                insert(&mut st, i as u32, 0, 1, Hint::priority(p));
            }
            let lefts: Vec<RequestId> = (0..3).map(RequestId).collect();
            let (wg, mut m) = WindowGraph::build(&st, lefts, 3, true, &TieBreak::HintGuided);
            reqsched_matching::kuhn_in_order(&wg.graph, &mut m, &[0, 1, 2]);
            let mut m_ref = m.clone();
            wg.priority_position_pass(&st, &mut m);
            priority_pass_reference(&wg, &st, &mut m_ref);
            assert_eq!(m, m_ref, "prios {prios:?}");
        }
    }

    #[test]
    fn build_with_matches_build_and_recycles() {
        let mut st = ScheduleState::new(3, 3);
        insert(&mut st, 0, 0, 1, Hint::default());
        insert(&mut st, 1, 1, 2, Hint::default());
        st.assign(RequestId(0), ResourceId(0), Round(1));
        insert(&mut st, 2, 0, 2, Hint::default());
        let lefts: Vec<RequestId> = (0..3).map(RequestId).collect();
        let (wg_fresh, m_fresh) =
            WindowGraph::build(&st, lefts.clone(), 3, true, &TieBreak::FirstFit);
        let mut scratch = WindowScratch::new();
        for pass in 0..3 {
            let mut ls = scratch.take_lefts();
            ls.extend(lefts.iter().copied());
            let (wg, m) =
                WindowGraph::build_with(&st, ls, 3, true, &TieBreak::FirstFit, &mut scratch);
            assert_eq!(wg.graph, wg_fresh.graph, "pass {pass}");
            assert_eq!(wg.lefts, wg_fresh.lefts);
            assert_eq!(m, m_fresh);
            scratch.recycle(wg, m);
        }
    }

    #[test]
    fn build_with_mask_fallback_on_sparse_ids() {
        // Ids far apart force the binary-search fallback; occupied-slot
        // participation checks must still work.
        let mut st = ScheduleState::new(2, 2);
        insert(&mut st, 0, 0, 1, Hint::default());
        st.assign(RequestId(0), ResourceId(0), Round(0));
        insert(&mut st, 3_000_000, 0, 1, Hint::default());
        let lefts = vec![RequestId(0), RequestId(3_000_000)];
        let mut scratch = WindowScratch::new();
        let (wg, m) = WindowGraph::build_with(
            &st,
            lefts.clone(),
            2,
            true,
            &TieBreak::FirstFit,
            &mut scratch,
        );
        let (wg_fresh, m_fresh) = WindowGraph::build(&st, lefts, 2, true, &TieBreak::FirstFit);
        assert_eq!(wg.graph, wg_fresh.graph);
        assert_eq!(m, m_fresh);
        // The occupied slot of the participating r0 is an edge for both.
        assert!(wg.graph.neighbors(1).contains(&0));
    }

    #[test]
    fn window_respects_request_expiry() {
        let mut st = ScheduleState::new(2, 3);
        // Deadline 1: only the current round is feasible.
        st.insert(&Request {
            id: RequestId(0),
            arrival: Round(0),
            alternatives: Alternatives::two(ResourceId(0), ResourceId(1)),
            deadline: 1,
            tag: 0,
            hint: Hint::default(),
        });
        let (wg, _) = WindowGraph::build(&st, vec![RequestId(0)], 3, false, &TieBreak::FirstFit);
        assert_eq!(wg.graph.neighbors(0), &[0, 1]);
    }
}
