//! Building the per-round bipartite graph `G_t` (or a sub-window of it)
//! from the schedule state, and writing a computed matching back.

use crate::schedule::ScheduleState;
use crate::tiebreak::TieBreak;
use rand::seq::SliceRandom;
use reqsched_matching::{BipartiteGraph, Matching};
use reqsched_model::{RequestId, ResourceId, Round};

/// The known subgraph the strategies match on.
///
/// Left vertices are the participating live requests (`lefts[i]` is the id of
/// left vertex `i`); right vertices are the window slots, indexed
/// `j * n + resource` for round offset `j ∈ 0..rows`. Adjacency order encodes
/// the tie-break's slot preference, which the augmenting-path searches in
/// `reqsched-matching` follow.
pub struct WindowGraph {
    /// The bipartite graph (adjacency order = slot preference).
    pub graph: BipartiteGraph,
    /// Left-vertex index → request id.
    pub lefts: Vec<RequestId>,
    n: u32,
    rows: u32,
    front: Round,
}

impl WindowGraph {
    /// Build the graph over the given participating requests.
    ///
    /// * `rows` — how many window rows to include: 1 for `A_current`
    ///   (current-round slots only), `d` for everything else.
    /// * `include_occupied` — if true, edges to slots currently occupied by
    ///   *participating* requests are included (rescheduling strategies);
    ///   otherwise only free slots are edges (`A_fix` family). Slots held by
    ///   non-participants are never edges.
    ///
    /// Returns the graph plus the initial matching induced by the current
    /// assignments of the participating requests.
    pub fn build(
        state: &ScheduleState,
        lefts: Vec<RequestId>,
        rows: u32,
        include_occupied: bool,
        tie: &TieBreak,
    ) -> (WindowGraph, Matching) {
        let n = state.n();
        let front = state.front();
        let n_right = rows * n;

        // Membership mask so `include_occupied` can check participation.
        let participating = |id: RequestId| lefts.binary_search(&id).is_ok();
        debug_assert!(lefts.windows(2).all(|w| w[0] < w[1]), "lefts must be sorted");

        let mut builder = BipartiteGraph::builder(n_right);
        let mut init = Vec::new();
        let mut scratch: Vec<(u64, u32, u32)> = Vec::new(); // (round, alt pos, right idx)

        for (li, &id) in lefts.iter().enumerate() {
            let live = state.live(id).expect("participant must be live");
            let req = &live.req;
            scratch.clear();
            let lo = req.arrival.get().max(front.get());
            let hi = req.expiry().get().min(front.get() + rows as u64 - 1);
            for round in lo..=hi {
                let j = (round - front.get()) as u32;
                for (pos, &res) in req.alternatives.as_slice().iter().enumerate() {
                    let slot_round = Round(round);
                    let usable = if state.slot_free(res, slot_round) {
                        true
                    } else if include_occupied {
                        match state.occupant(res, slot_round) {
                            Some(occ) => participating(occ),
                            None => false,
                        }
                    } else {
                        false
                    };
                    if usable {
                        scratch.push((round, pos as u32, j * n + res.0));
                    }
                }
            }
            order_slots(&mut scratch, req.hint.prefer, req.alternatives.as_slice(), tie, front);
            let adj: Vec<u32> = scratch.iter().map(|&(_, _, r)| r).collect();
            builder.add_left(&adj);
            if let Some((res, round)) = live.assigned {
                let j = (round - front) as u32;
                init.push((li as u32, j * n + res.0));
            }
        }

        let graph = builder.finish();
        let mut matching = Matching::empty(graph.n_left(), graph.n_right());
        for (l, r) in init {
            debug_assert!(graph.has_edge(l, r), "assigned slot must be an edge");
            matching.set(l, r);
        }
        (
            WindowGraph {
                graph,
                lefts,
                n,
                rows,
                front,
            },
            matching,
        )
    }

    /// Decode a right-vertex index into `(resource, round)`.
    pub fn slot(&self, right: u32) -> (ResourceId, Round) {
        let j = right / self.n;
        let i = right % self.n;
        debug_assert!(j < self.rows);
        (ResourceId(i), self.front + j as u64)
    }

    /// Right-vertex levels for lexicographic balancing: level = round offset
    /// (`A_balance`'s `F`: earlier rounds are higher priority).
    pub fn levels_by_round(&self) -> Vec<u32> {
        (0..self.rows * self.n).map(|r| r / self.n).collect()
    }

    /// Right-vertex levels for `A_eager`: current round = 0, all later = 1.
    pub fn levels_current_first(&self) -> Vec<u32> {
        (0..self.rows * self.n)
            .map(|r| u32::from(r / self.n != 0))
            .collect()
    }

    /// Tie-break-ordered left-vertex order for augmentation, over an
    /// arbitrary subset of left indices.
    pub fn left_order(
        &self,
        state: &ScheduleState,
        subset: impl Iterator<Item = u32>,
        tie: &TieBreak,
    ) -> Vec<u32> {
        let subset: Vec<u32> = subset.collect();
        let entries: Vec<_> = subset
            .iter()
            .map(|&li| {
                let id = self.lefts[li as usize];
                let hint = state.live(id).expect("live").req.hint;
                (id, hint)
            })
            .collect();
        tie.order_lefts(&entries, self.front)
            .into_iter()
            .map(|i| subset[i as usize])
            .collect()
    }

    /// Tie-break pass: permute matched occupants so that higher-priority
    /// (numerically lower [`Hint::priority`](reqsched_model::Hint)) requests
    /// sit on *earlier* slots wherever a feasible pairwise swap exists.
    ///
    /// The paper's strategies leave open which of several equally good
    /// matchings to use; its lower-bound proofs pick members that serve the
    /// adversary's designated requests first. A swap never changes the
    /// matching's cardinality or the set of covered slots (so every strategy
    /// rule — maximality, maximum cardinality, the balance function `F`,
    /// current-round coverage — is preserved); it only reorders occupants,
    /// which is exactly the freedom tie-breaking may use.
    pub fn priority_position_pass(&self, state: &ScheduleState, m: &mut Matching) {
        let prio: Vec<u32> = self
            .lefts
            .iter()
            .map(|&id| state.live(id).expect("live").req.hint.priority)
            .collect();
        // Bounded bubble pass: each swap strictly decreases the sum of
        // slot-rank × priority, so a fixpoint is reached; cap defensively.
        for _ in 0..self.lefts.len().max(4) {
            let mut pairs: Vec<(u32, u32)> = m.pairs().collect();
            pairs.sort_by_key(|&(_, r)| r);
            let mut changed = false;
            for i in 0..pairs.len() {
                for j in i + 1..pairs.len() {
                    let (a, ra) = pairs[i];
                    let (b, rb) = pairs[j];
                    if prio[b as usize] < prio[a as usize]
                        && self.graph.has_edge(b, ra)
                        && self.graph.has_edge(a, rb)
                    {
                        m.unset_left(a);
                        m.unset_left(b);
                        m.set(a, rb);
                        m.set(b, ra);
                        pairs[i] = (b, ra);
                        pairs[j] = (a, rb);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// Write `matching` back into the schedule: every participating request
    /// is unassigned, then re-assigned per its matched slot (requests left
    /// unmatched stay unassigned).
    pub fn apply(&self, state: &mut ScheduleState, matching: &Matching) {
        for &id in &self.lefts {
            state.unassign(id);
        }
        for (l, r) in matching.pairs() {
            let (res, round) = self.slot(r);
            state.assign(self.lefts[l as usize], res, round);
        }
        debug_assert!(state.check_consistency());
    }
}

/// Order slot candidates per tie-break (see [`TieBreak`] docs).
fn order_slots(
    scratch: &mut [(u64, u32, u32)],
    prefer: Option<ResourceId>,
    alts: &[ResourceId],
    tie: &TieBreak,
    front: Round,
) {
    match tie {
        TieBreak::FirstFit => {
            scratch.sort_by_key(|&(round, pos, _)| (round, pos));
        }
        TieBreak::LatestFit => {
            scratch.sort_by_key(|&(round, pos, _)| (std::cmp::Reverse(round), pos));
        }
        TieBreak::HintGuided => match prefer {
            Some(p) => {
                let ppos = alts.iter().position(|&a| a == p);
                scratch.sort_by_key(|&(round, pos, _)| {
                    let preferred = Some(pos as usize) == ppos;
                    (!preferred, round, pos)
                });
            }
            None => scratch.sort_by_key(|&(round, pos, _)| (round, pos)),
        },
        TieBreak::Random(_) => {
            let mut rng = tie.rng(front, 0xAD7A_CE0C);
            scratch.shuffle(&mut rng);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reqsched_model::{Alternatives, Hint, Request};

    fn insert(state: &mut ScheduleState, id: u32, a: u32, b: u32, hint: Hint) {
        state.insert(&Request {
            id: RequestId(id),
            arrival: state.front(),
            alternatives: Alternatives::two(ResourceId(a), ResourceId(b)),
            deadline: state.d(),
            tag: 0,
            hint,
        });
    }

    #[test]
    fn graph_covers_feasible_free_slots() {
        let mut st = ScheduleState::new(2, 2);
        insert(&mut st, 0, 0, 1, Hint::default());
        let (wg, m) = WindowGraph::build(&st, vec![RequestId(0)], 2, false, &TieBreak::FirstFit);
        assert_eq!(wg.graph.n_left(), 1);
        assert_eq!(wg.graph.n_right(), 4);
        // Feasible: both resources, both rounds = 4 edges.
        assert_eq!(wg.graph.n_edges(), 4);
        assert_eq!(m.size(), 0);
        // FirstFit order: round 0 alt0, round 0 alt1, round 1 alt0, round 1 alt1.
        assert_eq!(wg.graph.neighbors(0), &[0, 1, 2, 3]);
    }

    #[test]
    fn occupied_slots_excluded_without_flag() {
        let mut st = ScheduleState::new(2, 2);
        insert(&mut st, 0, 0, 1, Hint::default());
        st.assign(RequestId(0), ResourceId(0), Round(0));
        insert(&mut st, 1, 0, 1, Hint::default());
        let (wg, _) =
            WindowGraph::build(&st, vec![RequestId(1)], 2, false, &TieBreak::FirstFit);
        // Slot (S0, t0) occupied by non-participant r0 -> excluded.
        assert_eq!(wg.graph.neighbors(0), &[1, 2, 3]);
    }

    #[test]
    fn occupied_slots_included_for_participants() {
        let mut st = ScheduleState::new(2, 2);
        insert(&mut st, 0, 0, 1, Hint::default());
        st.assign(RequestId(0), ResourceId(0), Round(0));
        insert(&mut st, 1, 0, 1, Hint::default());
        let (wg, m) = WindowGraph::build(
            &st,
            vec![RequestId(0), RequestId(1)],
            2,
            true,
            &TieBreak::FirstFit,
        );
        assert_eq!(wg.graph.neighbors(1), &[0, 1, 2, 3]);
        // Initial matching carries r0's assignment.
        assert_eq!(m.size(), 1);
        assert_eq!(m.left_mate(0), Some(0));
    }

    #[test]
    fn hint_prefers_resource_over_earliness() {
        let mut st = ScheduleState::new(2, 2);
        insert(&mut st, 0, 0, 1, Hint::prefer(ResourceId(1)));
        let (wg, _) =
            WindowGraph::build(&st, vec![RequestId(0)], 2, false, &TieBreak::HintGuided);
        // S1's slots (indices 1, 3) come before S0's (0, 2).
        assert_eq!(wg.graph.neighbors(0), &[1, 3, 0, 2]);
    }

    #[test]
    fn single_row_restriction() {
        let mut st = ScheduleState::new(2, 3);
        insert(&mut st, 0, 0, 1, Hint::default());
        let (wg, _) = WindowGraph::build(&st, vec![RequestId(0)], 1, false, &TieBreak::FirstFit);
        assert_eq!(wg.graph.n_right(), 2);
        assert_eq!(wg.graph.neighbors(0), &[0, 1]);
    }

    #[test]
    fn apply_rewrites_assignments() {
        let mut st = ScheduleState::new(2, 2);
        insert(&mut st, 0, 0, 1, Hint::default());
        insert(&mut st, 1, 0, 1, Hint::default());
        let (wg, mut m) = WindowGraph::build(
            &st,
            vec![RequestId(0), RequestId(1)],
            2,
            true,
            &TieBreak::FirstFit,
        );
        reqsched_matching::kuhn_in_order(&wg.graph, &mut m, &[0, 1]);
        assert_eq!(m.size(), 2);
        wg.apply(&mut st, &m);
        assert_eq!(st.unassigned().len(), 0);
        assert!(st.check_consistency());
    }

    #[test]
    fn levels_shapes() {
        let mut st = ScheduleState::new(2, 3);
        insert(&mut st, 0, 0, 1, Hint::default());
        let (wg, _) = WindowGraph::build(&st, vec![RequestId(0)], 3, false, &TieBreak::FirstFit);
        assert_eq!(wg.levels_by_round(), vec![0, 0, 1, 1, 2, 2]);
        assert_eq!(wg.levels_current_first(), vec![0, 0, 1, 1, 1, 1]);
    }

    #[test]
    fn slot_decoding_roundtrip() {
        let mut st = ScheduleState::new(3, 2);
        insert(&mut st, 0, 0, 1, Hint::default());
        let (wg, _) = WindowGraph::build(&st, vec![RequestId(0)], 2, false, &TieBreak::FirstFit);
        assert_eq!(wg.slot(0), (ResourceId(0), Round(0)));
        assert_eq!(wg.slot(4), (ResourceId(1), Round(1)));
    }

    #[test]
    fn window_respects_request_expiry() {
        let mut st = ScheduleState::new(2, 3);
        // Deadline 1: only the current round is feasible.
        st.insert(&Request {
            id: RequestId(0),
            arrival: Round(0),
            alternatives: Alternatives::two(ResourceId(0), ResourceId(1)),
            deadline: 1,
            tag: 0,
            hint: Hint::default(),
        });
        let (wg, _) = WindowGraph::build(&st, vec![RequestId(0)], 3, false, &TieBreak::FirstFit);
        assert_eq!(wg.graph.neighbors(0), &[0, 1]);
    }
}
