//! Rule-compliance oracles: verify, round by round and against brute-force
//! enumeration, that each strategy's output satisfies its *defining rule*
//! from the paper (§1.3) — not just that it produces feasible schedules.
//!
//! * `A_fix` / `A_fix_balance`: the number of newly scheduled requests each
//!   round equals the maximum matching of (new requests × free slots).
//! * `A_current`: the number served each round equals the maximum matching
//!   of (live requests × current-round slots).
//! * `A_eager`: the number served each round equals the best achievable
//!   current-round coverage over all maximum matchings of `G_t`.
//! * `A_balance`: the entire per-round occupancy vector after the round
//!   equals the lexicographically optimal `F` vector over all maximum
//!   matchings of `G_t`.
//!
//! All oracles are exponential-time (`reqsched_matching::brute`), so the
//! instances are tiny — but they enumerate *every* matching, leaving no
//! hiding place.

use proptest::prelude::*;
use reqsched_core::{
    ABalance, ACurrent, AEager, AFix, AFixBalance, OnlineScheduler, ScheduleState, TieBreak,
    WindowGraph,
};
use reqsched_matching::brute;
use reqsched_model::{Instance, RequestId, ResourceId, Round};
use reqsched_workloads::uniform_two_choice;

/// Tiny random instances so brute-force enumeration stays feasible.
fn tiny_instance() -> impl Strategy<Value = Instance> {
    (2u32..4, 1u32..4, 1u32..4, 3u64..8, 0u64..1_000_000).prop_map(
        |(n, d, per_round, rounds, seed)| uniform_two_choice(n, d, per_round, rounds, seed),
    )
}

/// Best lexicographic coverage over max matchings of G_t, built from a
/// snapshot of the strategy state plus this round's arrivals.
fn oracle_lex(
    snapshot: &ScheduleState,
    inst: &Instance,
    t: Round,
    rows: u32,
    include_occupied: bool,
    only_new: bool,
    by_round: bool,
) -> Vec<usize> {
    let mut st = snapshot.clone();
    for req in inst.trace.arrivals_at(t) {
        st.insert(req);
    }
    let lefts: Vec<RequestId> = if only_new {
        inst.trace.arrivals_at(t).iter().map(|r| r.id).collect()
    } else {
        st.live_iter().map(|l| l.id()).collect()
    };
    if lefts.is_empty() {
        return vec![0; rows as usize];
    }
    let (wg, _) = WindowGraph::build(&st, lefts, rows, include_occupied, &TieBreak::FirstFit);
    let levels = if by_round {
        wg.levels_by_round()
    } else {
        wg.levels_current_first()
    };
    let mut cov = brute::best_lex_coverage(&wg.graph, &levels);
    cov.resize(rows as usize, 0);
    cov
}

/// Max matching size of (new requests × free slots) — the A_fix rule.
fn oracle_new_max(snapshot: &ScheduleState, inst: &Instance, t: Round) -> usize {
    let mut st = snapshot.clone();
    for req in inst.trace.arrivals_at(t) {
        st.insert(req);
    }
    let lefts: Vec<RequestId> = inst.trace.arrivals_at(t).iter().map(|r| r.id).collect();
    if lefts.is_empty() {
        return 0;
    }
    let (wg, _) = WindowGraph::build(&st, lefts, st.d(), false, &TieBreak::FirstFit);
    brute::max_matching_size(&wg.graph)
}

/// Count the occupancy of the strategy's window per row offset.
fn occupancy(state: &ScheduleState, n: u32, d: u32) -> Vec<usize> {
    (0..d as u64)
        .map(|j| {
            (0..n)
                .filter(|&i| state.occupant(ResourceId(i), state.front() + j).is_some())
                .count()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn afix_schedules_max_new_each_round(inst in tiny_instance()) {
        let (n, d) = (inst.n_resources, inst.d);
        let mut a = AFix::new(n, d, TieBreak::FirstFit);
        for t in 0..inst.horizon().get() {
            let snap = a.schedule().clone();
            let expected = oracle_new_max(&snap, &inst, Round(t));
            let served = a.on_round(Round(t), inst.trace.arrivals_at(Round(t)));
            // Newly scheduled = served now with arrival t + assigned later.
            let arrivals: Vec<RequestId> =
                inst.trace.arrivals_at(Round(t)).iter().map(|r| r.id).collect();
            let served_new = served
                .iter()
                .filter(|s| arrivals.contains(&s.request))
                .count();
            let assigned_new = arrivals
                .iter()
                .filter(|&&id| a.schedule().live(id).is_some_and(|l| l.assigned().is_some()))
                .count();
            prop_assert_eq!(
                served_new + assigned_new,
                expected,
                "round {}: A_fix must schedule a maximum number of new requests",
                t
            );
        }
    }

    #[test]
    fn afix_balance_schedules_max_new_each_round(inst in tiny_instance()) {
        let (n, d) = (inst.n_resources, inst.d);
        let mut a = AFixBalance::new(n, d, TieBreak::FirstFit);
        for t in 0..inst.horizon().get() {
            let snap = a.schedule().clone();
            let expected = oracle_new_max(&snap, &inst, Round(t));
            let served = a.on_round(Round(t), inst.trace.arrivals_at(Round(t)));
            let arrivals: Vec<RequestId> =
                inst.trace.arrivals_at(Round(t)).iter().map(|r| r.id).collect();
            let scheduled_new = served
                .iter()
                .filter(|s| arrivals.contains(&s.request))
                .count()
                + arrivals
                    .iter()
                    .filter(|&&id| {
                        a.schedule().live(id).is_some_and(|l| l.assigned().is_some())
                    })
                    .count();
            prop_assert_eq!(scheduled_new, expected);
        }
    }

    #[test]
    fn acurrent_serves_maximum_of_current_row(inst in tiny_instance()) {
        let (n, d) = (inst.n_resources, inst.d);
        let mut a = ACurrent::new(n, d, TieBreak::FirstFit);
        for t in 0..inst.horizon().get() {
            let snap = a.schedule().clone();
            let expected =
                oracle_lex(&snap, &inst, Round(t), 1, false, false, false)[0];
            let served = a
                .on_round(Round(t), inst.trace.arrivals_at(Round(t)))
                .len();
            prop_assert_eq!(
                served, expected,
                "round {}: A_current must serve a maximum current matching", t
            );
        }
    }

    #[test]
    fn aeager_serves_best_possible_now(inst in tiny_instance()) {
        let (n, d) = (inst.n_resources, inst.d);
        let mut a = AEager::new(n, d, TieBreak::FirstFit);
        for t in 0..inst.horizon().get() {
            let snap = a.schedule().clone();
            let expected =
                oracle_lex(&snap, &inst, Round(t), d, true, false, false)[0];
            let served = a
                .on_round(Round(t), inst.trace.arrivals_at(Round(t)))
                .len();
            prop_assert_eq!(
                served, expected,
                "round {}: A_eager must serve the max-current coverage of a \
                 maximum matching of G_t", t
            );
        }
    }

    #[test]
    fn abalance_realizes_the_lexicographic_f_vector(inst in tiny_instance()) {
        let (n, d) = (inst.n_resources, inst.d);
        let mut a = ABalance::new(n, d, TieBreak::FirstFit);
        for t in 0..inst.horizon().get() {
            let snap = a.schedule().clone();
            let expected = oracle_lex(&snap, &inst, Round(t), d, true, false, true);
            let served = a
                .on_round(Round(t), inst.trace.arrivals_at(Round(t)))
                .len();
            // Observed F vector: services now + post-round window occupancy
            // (rows t+1 .. t+d-1 of the round-t matching).
            let mut observed = vec![served];
            let occ = occupancy(a.schedule(), n, d);
            observed.extend(occ.iter().take(d as usize - 1));
            prop_assert_eq!(
                observed, expected,
                "round {}: A_balance must realize the lexicographically \
                 optimal per-round coverage vector", t
            );
        }
    }
}
