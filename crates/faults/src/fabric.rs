//! Per-run envelope fate stream for fabric-level message faults.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::plan::FabricFaults;

/// What happens to one envelope in flight.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EnvelopeFate {
    /// Delivered normally.
    Deliver,
    /// Silently lost; the sender gets no response this round.
    Lose,
    /// Arrives late: demoted behind all on-time traffic, so it only gets
    /// the bandwidth left after on-time admission.
    Delay,
    /// Duplicated in flight; the copy consumes bandwidth too.
    Duplicate,
}

/// The seeded RNG stream mapping [`FabricFaults`] rates onto individual
/// envelope fates.
///
/// One draw per non-control envelope, in exchange order — the communication
/// fabric is driven single-threaded and deterministically, so the stream
/// replays exactly for a given plan seed.
#[derive(Clone, Debug)]
pub struct FabricFaultState {
    rng: ChaCha8Rng,
    loss: f64,
    delay: f64,
    duplication: f64,
}

impl FabricFaultState {
    /// Build the fate stream, or `None` when the rates can never fire
    /// (so a fault-free fabric skips the draw entirely and stays
    /// bit-identical to one with no fault plan at all).
    pub fn new(f: &FabricFaults) -> Option<FabricFaultState> {
        if f.is_none() {
            return None;
        }
        Some(FabricFaultState {
            rng: ChaCha8Rng::seed_from_u64(f.seed),
            loss: f.loss,
            delay: f.delay,
            duplication: f.duplication,
        })
    }

    /// Draw the fate of the next envelope.
    pub fn fate(&mut self) -> EnvelopeFate {
        let u: f64 = self.rng.gen();
        if u < self.loss {
            EnvelopeFate::Lose
        } else if u < self.loss + self.delay {
            EnvelopeFate::Delay
        } else if u < self.loss + self.delay + self.duplication {
            EnvelopeFate::Duplicate
        } else {
            EnvelopeFate::Deliver
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliable_fabric_has_no_state() {
        assert!(FabricFaultState::new(&FabricFaults::NONE).is_none());
        let calm = FabricFaults {
            loss: 0.0,
            delay: 0.0,
            duplication: 0.0,
            seed: 99,
        };
        assert!(FabricFaultState::new(&calm).is_none());
    }

    #[test]
    fn fate_stream_is_deterministic() {
        let f = FabricFaults {
            loss: 0.3,
            delay: 0.2,
            duplication: 0.1,
            seed: 7,
        };
        let mut a = FabricFaultState::new(&f).unwrap();
        let mut b = FabricFaultState::new(&f).unwrap();
        let fates_a: Vec<_> = (0..256).map(|_| a.fate()).collect();
        let fates_b: Vec<_> = (0..256).map(|_| b.fate()).collect();
        assert_eq!(fates_a, fates_b);
        // All four fates occur at these rates over 256 draws.
        for want in [
            EnvelopeFate::Deliver,
            EnvelopeFate::Lose,
            EnvelopeFate::Delay,
            EnvelopeFate::Duplicate,
        ] {
            assert!(fates_a.contains(&want), "missing fate {want:?}");
        }
    }

    #[test]
    fn pure_loss_only_loses_or_delivers() {
        let f = FabricFaults {
            loss: 0.5,
            delay: 0.0,
            duplication: 0.0,
            seed: 3,
        };
        let mut s = FabricFaultState::new(&f).unwrap();
        for _ in 0..128 {
            let fate = s.fate();
            assert!(matches!(fate, EnvelopeFate::Deliver | EnvelopeFate::Lose));
        }
    }
}
