//! Deterministic fault injection for the request-scheduling engine.
//!
//! The paper's whole premise is redundancy — every request names two
//! alternative disks holding its replicas — yet competitive analysis is only
//! meaningful on a faulty substrate if ALG and OPT are measured against the
//! *same* fault trace (Zavou & Fernández Anta, "Online Distributed Scheduling
//! on a Fault-prone Parallel System"). This crate provides that trace as a
//! first-class, replayable value:
//!
//! * [`FaultPlan`] — a fully deterministic schedule of resource crash/recover
//!   intervals, transient per-round slot stalls, and fabric-level message
//!   fault rates (loss / delay / duplication). A plan is fixed before the run
//!   starts, so every consumer (online strategies, the delta engines, the
//!   streaming OPT, the offline horizon solver) masks exactly the same
//!   `(resource, round)` slots and the ALG/OPT ratio compares schedules over
//!   identical feasibility graphs.
//! * [`ChaosConfig`] + [`FaultPlan::random`] — seeded generators
//!   (ChaCha8-based; same seed ⇒ same plan, byte for byte).
//! * [`script`] — a small text format for scripted adversarial fault traces
//!   (`parse` / `render` round-trip exactly).
//! * [`FabricFaultState`] — the per-run RNG stream that maps the plan's
//!   fabric rates onto individual envelope fates.
//!
//! Nothing here reads the wall clock or a global RNG: a `FaultPlan` is data,
//! and replaying it is always bit-exact.

mod fabric;
mod plan;
pub mod script;

pub use fabric::{EnvelopeFate, FabricFaultState};
pub use plan::{ChaosConfig, CrashInterval, FabricFaults, FaultPlan};
