//! The [`FaultPlan`] value: a deterministic, replayable fault trace.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use reqsched_model::{ResourceId, Round};

/// A half-open downtime interval `[down_from, up_at)` of one resource.
///
/// The resource serves nothing and accepts no fabric messages during the
/// interval; it is fully available again from round `up_at` on. `up_at ==
/// u64::MAX` means the crash is permanent.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct CrashInterval {
    /// The crashed resource.
    pub resource: ResourceId,
    /// First round of downtime.
    pub down_from: Round,
    /// First round the resource is back up (exclusive end).
    pub up_at: Round,
}

/// Fabric-level message fault rates.
///
/// Each non-control envelope entering an exchange independently draws one
/// fate from these rates (see [`crate::FabricFaultState`]): lost envelopes
/// vanish without a response, delayed envelopes lose their admission
/// priority for the round (they only get leftover bandwidth), duplicated
/// envelopes consume bandwidth twice. The draw stream is seeded by `seed`,
/// so a run is replayable.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FabricFaults {
    /// Probability an envelope is silently lost.
    pub loss: f64,
    /// Probability an envelope is delayed (demoted to leftover bandwidth).
    pub delay: f64,
    /// Probability an envelope is duplicated in flight.
    pub duplication: f64,
    /// Seed of the per-run fate stream.
    pub seed: u64,
}

impl FabricFaults {
    /// A perfectly reliable fabric.
    pub const NONE: FabricFaults = FabricFaults {
        loss: 0.0,
        delay: 0.0,
        duplication: 0.0,
        seed: 0,
    };

    /// True when no message fault can ever fire.
    pub fn is_none(&self) -> bool {
        self.loss <= 0.0 && self.delay <= 0.0 && self.duplication <= 0.0
    }
}

/// Rates for the seeded random plan generator ([`FaultPlan::random`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChaosConfig {
    /// Per-resource, per-round probability a healthy resource crashes.
    pub crash_prob: f64,
    /// Mean time to repair, in rounds (geometric; always at least one round).
    pub mttr: f64,
    /// Per-resource, per-round probability of a transient one-round stall.
    pub stall_prob: f64,
    /// Fabric message-loss probability.
    pub loss: f64,
    /// Fabric message-delay probability.
    pub delay: f64,
    /// Fabric message-duplication probability.
    pub duplication: f64,
}

impl ChaosConfig {
    /// No faults at all; `random` with this config yields an empty plan.
    pub const CALM: ChaosConfig = ChaosConfig {
        crash_prob: 0.0,
        mttr: 1.0,
        stall_prob: 0.0,
        loss: 0.0,
        delay: 0.0,
        duplication: 0.0,
    };
}

/// A deterministic fault trace over `n` resources.
///
/// The plan is immutable once handed to a run and is shared (`Arc`) between
/// the online strategy, the engine's validation layer, and the fault-aware
/// OPT, so all of them agree on which `(resource, round)` slots exist.
///
/// Two kinds of resource fault are distinguished:
/// * **crashes** ([`FaultPlan::is_up`] is false): the resource serves
///   nothing and fabric envelopes addressed to it are lost;
/// * **stalls** ([`FaultPlan::is_stalled`]): the service slot of that single
///   round is unusable, but the resource stays reachable on the fabric.
///
/// [`FaultPlan::slot_usable`] combines both and is the single predicate the
/// feasibility-graph builders consult.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    n: u32,
    /// Per-resource sorted, disjoint, merged half-open down intervals.
    down: Vec<Vec<(u64, u64)>>,
    /// Per-resource sorted, deduplicated stall rounds.
    stalls: Vec<Vec<u64>>,
    fabric: FabricFaults,
}

impl FaultPlan {
    /// The empty plan: every resource up forever, a perfect fabric.
    ///
    /// Running the engine under the empty plan is bit-identical to running
    /// it with no plan at all (proptest-enforced in `reqsched-sim`).
    pub fn empty(n: u32) -> FaultPlan {
        FaultPlan {
            n,
            down: vec![Vec::new(); n as usize],
            stalls: vec![Vec::new(); n as usize],
            fabric: FabricFaults::NONE,
        }
    }

    /// Number of resources the plan covers.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Add a downtime interval `[down_from, up_at)` for `resource`.
    ///
    /// Overlapping or adjacent intervals are merged, so the stored intervals
    /// stay sorted and disjoint. Empty intervals are ignored.
    pub fn add_crash(&mut self, resource: ResourceId, down_from: Round, up_at: Round) {
        assert!(
            resource.index() < self.n as usize,
            "crash: resource out of range"
        );
        let (from, until) = (down_from.get(), up_at.get());
        if from >= until {
            return;
        }
        let iv = &mut self.down[resource.index()];
        iv.push((from, until));
        iv.sort_unstable();
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(iv.len());
        for &(a, b) in iv.iter() {
            match merged.last_mut() {
                Some(last) if a <= last.1 => last.1 = last.1.max(b),
                _ => merged.push((a, b)),
            }
        }
        *iv = merged;
    }

    /// Mark the single slot `(resource, round)` as stalled.
    pub fn add_stall(&mut self, resource: ResourceId, round: Round) {
        assert!(
            resource.index() < self.n as usize,
            "stall: resource out of range"
        );
        let st = &mut self.stalls[resource.index()];
        if let Err(pos) = st.binary_search(&round.get()) {
            st.insert(pos, round.get());
        }
    }

    /// Set the fabric fault rates.
    pub fn set_fabric(&mut self, fabric: FabricFaults) {
        self.fabric = fabric;
    }

    /// Chainable [`FaultPlan::add_crash`].
    pub fn with_crash(mut self, resource: ResourceId, down_from: Round, up_at: Round) -> Self {
        self.add_crash(resource, down_from, up_at);
        self
    }

    /// Chainable [`FaultPlan::add_stall`].
    pub fn with_stall(mut self, resource: ResourceId, round: Round) -> Self {
        self.add_stall(resource, round);
        self
    }

    /// Chainable [`FaultPlan::set_fabric`].
    pub fn with_fabric(mut self, fabric: FabricFaults) -> Self {
        self.set_fabric(fabric);
        self
    }

    /// True iff `resource` is not crashed at `round`.
    #[inline]
    pub fn is_up(&self, resource: ResourceId, round: Round) -> bool {
        let iv = &self.down[resource.index()];
        if iv.is_empty() {
            return true;
        }
        let t = round.get();
        // Last interval starting at or before t, if any, decides.
        match iv.partition_point(|&(a, _)| a <= t) {
            0 => true,
            p => t >= iv[p - 1].1,
        }
    }

    /// True iff the slot `(resource, round)` suffers a transient stall.
    #[inline]
    pub fn is_stalled(&self, resource: ResourceId, round: Round) -> bool {
        let st = &self.stalls[resource.index()];
        !st.is_empty() && st.binary_search(&round.get()).is_ok()
    }

    /// True iff the service slot `(resource, round)` exists at all: the
    /// resource is up and not stalled. This is the single predicate every
    /// feasibility-graph builder (window graphs, delta adjacency, streaming
    /// OPT, horizon solves) consults, which is what keeps ALG and OPT on
    /// identical graphs.
    #[inline]
    pub fn slot_usable(&self, resource: ResourceId, round: Round) -> bool {
        self.is_up(resource, round) && !self.is_stalled(resource, round)
    }

    /// True iff any crash or stall is scheduled.
    pub fn has_resource_faults(&self) -> bool {
        self.down.iter().any(|iv| !iv.is_empty()) || self.stalls.iter().any(|st| !st.is_empty())
    }

    /// True iff the fabric can lose, delay or duplicate messages.
    pub fn has_fabric_faults(&self) -> bool {
        !self.fabric.is_none()
    }

    /// True iff the plan injects no fault of any kind.
    pub fn is_empty(&self) -> bool {
        !self.has_resource_faults() && !self.has_fabric_faults()
    }

    /// The fabric fault rates.
    pub fn fabric(&self) -> &FabricFaults {
        &self.fabric
    }

    /// All crash intervals, sorted by resource then start round.
    pub fn crash_intervals(&self) -> Vec<CrashInterval> {
        let mut out = Vec::new();
        for (res, iv) in self.down.iter().enumerate() {
            for &(a, b) in iv {
                out.push(CrashInterval {
                    resource: ResourceId(res as u32),
                    down_from: Round(a),
                    up_at: Round(b),
                });
            }
        }
        out
    }

    /// All stalled slots, sorted by resource then round.
    pub fn stall_slots(&self) -> Vec<(ResourceId, Round)> {
        let mut out = Vec::new();
        for (res, st) in self.stalls.iter().enumerate() {
            for &t in st {
                out.push((ResourceId(res as u32), Round(t)));
            }
        }
        out
    }

    /// Total number of crashed `(resource, round)` slots within the first
    /// `rounds` rounds (for reporting downtime fractions).
    pub fn downtime_slots(&self, rounds: u64) -> u64 {
        let mut total = 0;
        for iv in &self.down {
            for &(a, b) in iv {
                total += b.min(rounds).saturating_sub(a);
            }
        }
        total
    }

    /// Generate a random plan over `rounds` rounds from seeded chaos rates.
    ///
    /// Fully deterministic in `(n, rounds, cfg, seed)`: per resource, a
    /// healthy round crashes with probability `crash_prob` and repair time
    /// is geometric with mean `mttr` (at least one round); healthy rounds
    /// stall with probability `stall_prob`. The fabric rates are copied
    /// verbatim with a seed derived from `seed`.
    pub fn random(n: u32, rounds: u64, cfg: &ChaosConfig, seed: u64) -> FaultPlan {
        let mut plan = FaultPlan::empty(n);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let repair_p = if cfg.mttr > 1.0 { 1.0 / cfg.mttr } else { 1.0 };
        for res in 0..n {
            let mut t = 0u64;
            while t < rounds {
                if cfg.crash_prob > 0.0 && rng.gen::<f64>() < cfg.crash_prob {
                    // Geometric repair time with mean mttr, >= 1 round.
                    let mut dur = 1u64;
                    while dur < rounds && rng.gen::<f64>() >= repair_p {
                        dur += 1;
                    }
                    plan.add_crash(ResourceId(res), Round(t), Round(t + dur));
                    t += dur;
                } else {
                    if cfg.stall_prob > 0.0 && rng.gen::<f64>() < cfg.stall_prob {
                        plan.add_stall(ResourceId(res), Round(t));
                    }
                    t += 1;
                }
            }
        }
        if cfg.loss > 0.0 || cfg.delay > 0.0 || cfg.duplication > 0.0 {
            plan.set_fabric(FabricFaults {
                loss: cfg.loss,
                delay: cfg.delay,
                duplication: cfg.duplication,
                // Decorrelate the fate stream from the structural draws.
                seed: seed ^ 0x9E37_79B9_7F4A_7C15,
            });
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(v: u32) -> ResourceId {
        ResourceId(v)
    }

    #[test]
    fn empty_plan_is_empty() {
        let p = FaultPlan::empty(4);
        assert!(p.is_empty());
        assert!(!p.has_resource_faults());
        assert!(!p.has_fabric_faults());
        for res in 0..4 {
            for t in 0..32 {
                assert!(p.is_up(r(res), Round(t)));
                assert!(p.slot_usable(r(res), Round(t)));
            }
        }
    }

    #[test]
    fn crash_interval_is_half_open() {
        let p = FaultPlan::empty(2).with_crash(r(1), Round(3), Round(6));
        assert!(p.is_up(r(1), Round(2)));
        assert!(!p.is_up(r(1), Round(3)));
        assert!(!p.is_up(r(1), Round(5)));
        assert!(p.is_up(r(1), Round(6)));
        // The other resource is untouched.
        assert!(p.is_up(r(0), Round(4)));
        assert!(p.has_resource_faults());
    }

    #[test]
    fn overlapping_crashes_merge() {
        let mut p = FaultPlan::empty(1);
        p.add_crash(r(0), Round(2), Round(5));
        p.add_crash(r(0), Round(4), Round(8));
        p.add_crash(r(0), Round(8), Round(9)); // adjacent: also merged
        p.add_crash(r(0), Round(20), Round(21));
        assert_eq!(
            p.crash_intervals(),
            vec![
                CrashInterval {
                    resource: r(0),
                    down_from: Round(2),
                    up_at: Round(9)
                },
                CrashInterval {
                    resource: r(0),
                    down_from: Round(20),
                    up_at: Round(21)
                },
            ]
        );
        assert_eq!(p.downtime_slots(100), 8);
        assert_eq!(p.downtime_slots(8), 6);
    }

    #[test]
    fn empty_interval_ignored() {
        let mut p = FaultPlan::empty(1);
        p.add_crash(r(0), Round(5), Round(5));
        assert!(p.is_empty());
    }

    #[test]
    fn stalls_are_single_round_and_leave_resource_up() {
        let p = FaultPlan::empty(2).with_stall(r(0), Round(7));
        assert!(p.is_up(r(0), Round(7)));
        assert!(p.is_stalled(r(0), Round(7)));
        assert!(!p.slot_usable(r(0), Round(7)));
        assert!(p.slot_usable(r(0), Round(6)));
        assert!(p.slot_usable(r(0), Round(8)));
    }

    #[test]
    fn stall_dedup() {
        let mut p = FaultPlan::empty(1);
        p.add_stall(r(0), Round(3));
        p.add_stall(r(0), Round(3));
        p.add_stall(r(0), Round(1));
        assert_eq!(p.stall_slots(), vec![(r(0), Round(1)), (r(0), Round(3))]);
    }

    #[test]
    fn random_is_deterministic() {
        let cfg = ChaosConfig {
            crash_prob: 0.05,
            mttr: 4.0,
            stall_prob: 0.02,
            loss: 0.1,
            delay: 0.05,
            duplication: 0.01,
        };
        let a = FaultPlan::random(8, 200, &cfg, 42);
        let b = FaultPlan::random(8, 200, &cfg, 42);
        assert_eq!(a, b);
        let c = FaultPlan::random(8, 200, &cfg, 43);
        assert_ne!(a, c);
        assert!(a.has_resource_faults());
        assert!(a.has_fabric_faults());
    }

    #[test]
    fn calm_config_yields_empty_plan() {
        let p = FaultPlan::random(8, 200, &ChaosConfig::CALM, 7);
        assert!(p.is_empty());
        assert_eq!(p, FaultPlan::empty(8));
    }

    #[test]
    fn random_respects_horizon() {
        let cfg = ChaosConfig {
            crash_prob: 0.5,
            mttr: 3.0,
            ..ChaosConfig::CALM
        };
        let p = FaultPlan::random(4, 50, &cfg, 1);
        for iv in p.crash_intervals() {
            assert!(iv.down_from.get() < 50);
        }
    }
}
