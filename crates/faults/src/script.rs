//! A small text format for scripted (adversarial) fault traces.
//!
//! ```text
//! # lines starting with '#' are comments, blank lines are skipped
//! n 4                                    # number of resources (required, first)
//! crash 2 5..9                           # resource 2 down in rounds [5, 9)
//! crash 3 12..                           # resource 3 down permanently from round 12
//! stall 1 3                              # slot (resource 1, round 3) stalls
//! fabric loss=0.05 delay=0.02 dup=0.01 seed=99
//! ```
//!
//! [`parse`] and [`render`] round-trip exactly: `parse(&render(&p)) == Ok(p)`
//! for every normalized plan (rendering normalizes interval order and
//! merging the same way the builder does).

use std::fmt;

use reqsched_model::{ResourceId, Round};

use crate::plan::{FabricFaults, FaultPlan};

/// A parse failure, with the 1-based line it occurred on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScriptError {
    /// 1-based line number of the offending line (0 for whole-file errors).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "fault script: {}", self.message)
        } else {
            write!(f, "fault script line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ScriptError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ScriptError> {
    Err(ScriptError {
        line,
        message: message.into(),
    })
}

fn parse_u64(line: usize, what: &str, tok: &str) -> Result<u64, ScriptError> {
    match tok.parse::<u64>() {
        Ok(v) => Ok(v),
        Err(_) => err(
            line,
            format!("invalid {what} '{tok}' (expected an unsigned integer)"),
        ),
    }
}

fn parse_f64(line: usize, what: &str, tok: &str) -> Result<f64, ScriptError> {
    match tok.parse::<f64>() {
        Ok(v) if (0.0..=1.0).contains(&v) => Ok(v),
        Ok(_) => err(line, format!("{what} must be within [0, 1], got '{tok}'")),
        Err(_) => err(
            line,
            format!("invalid {what} '{tok}' (expected a probability)"),
        ),
    }
}

/// Parse a fault script into a [`FaultPlan`].
pub fn parse(text: &str) -> Result<FaultPlan, ScriptError> {
    let mut plan: Option<FaultPlan> = None;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = match raw.find('#') {
            Some(p) => &raw[..p],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        let mut toks = line.split_whitespace();
        let Some(keyword) = toks.next() else { continue };
        if keyword == "n" {
            if plan.is_some() {
                return err(lineno, "duplicate 'n' directive");
            }
            let Some(tok) = toks.next() else {
                return err(lineno, "'n' needs a resource count");
            };
            let n = parse_u64(lineno, "resource count", tok)?;
            if n == 0 || n > u32::MAX as u64 {
                return err(lineno, format!("resource count {n} out of range"));
            }
            plan = Some(FaultPlan::empty(n as u32));
            continue;
        }
        let Some(plan) = plan.as_mut() else {
            return err(
                lineno,
                format!("'{keyword}' before the 'n <resources>' directive"),
            );
        };
        match keyword {
            "crash" => {
                let (Some(res_tok), Some(range_tok)) = (toks.next(), toks.next()) else {
                    return err(lineno, "usage: crash <resource> <from>..<until>");
                };
                let res = parse_u64(lineno, "resource", res_tok)?;
                if res >= plan.n() as u64 {
                    return err(
                        lineno,
                        format!("resource {res} out of range (n = {})", plan.n()),
                    );
                }
                let Some((from_tok, until_tok)) = range_tok.split_once("..") else {
                    return err(
                        lineno,
                        format!(
                            "invalid interval '{range_tok}' (expected <from>..<until> or <from>..)"
                        ),
                    );
                };
                let from = parse_u64(lineno, "interval start", from_tok)?;
                let until = if until_tok.is_empty() {
                    u64::MAX
                } else {
                    parse_u64(lineno, "interval end", until_tok)?
                };
                if from >= until {
                    return err(lineno, format!("empty interval {from}..{until}"));
                }
                plan.add_crash(ResourceId(res as u32), Round(from), Round(until));
            }
            "stall" => {
                let (Some(res_tok), Some(round_tok)) = (toks.next(), toks.next()) else {
                    return err(lineno, "usage: stall <resource> <round>");
                };
                let res = parse_u64(lineno, "resource", res_tok)?;
                if res >= plan.n() as u64 {
                    return err(
                        lineno,
                        format!("resource {res} out of range (n = {})", plan.n()),
                    );
                }
                let round = parse_u64(lineno, "round", round_tok)?;
                plan.add_stall(ResourceId(res as u32), Round(round));
            }
            "fabric" => {
                let mut fabric = FabricFaults::NONE;
                for kv in toks {
                    let Some((key, val)) = kv.split_once('=') else {
                        return err(
                            lineno,
                            format!("invalid fabric setting '{kv}' (expected key=value)"),
                        );
                    };
                    match key {
                        "loss" => fabric.loss = parse_f64(lineno, "loss rate", val)?,
                        "delay" => fabric.delay = parse_f64(lineno, "delay rate", val)?,
                        "dup" => fabric.duplication = parse_f64(lineno, "duplication rate", val)?,
                        "seed" => fabric.seed = parse_u64(lineno, "fabric seed", val)?,
                        other => return err(lineno, format!("unknown fabric setting '{other}'")),
                    }
                }
                plan.set_fabric(fabric);
            }
            other => return err(lineno, format!("unknown directive '{other}'")),
        }
    }
    match plan {
        Some(p) => Ok(p),
        None => err(0, "missing 'n <resources>' directive"),
    }
}

/// Render a plan in the script format; [`parse`] inverts it exactly.
pub fn render(plan: &FaultPlan) -> String {
    use fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "n {}", plan.n());
    for iv in plan.crash_intervals() {
        if iv.up_at.get() == u64::MAX {
            let _ = writeln!(out, "crash {} {}..", iv.resource.0, iv.down_from.get());
        } else {
            let _ = writeln!(
                out,
                "crash {} {}..{}",
                iv.resource.0,
                iv.down_from.get(),
                iv.up_at.get()
            );
        }
    }
    for (res, round) in plan.stall_slots() {
        let _ = writeln!(out, "stall {} {}", res.0, round.get());
    }
    let f = plan.fabric();
    if !f.is_none() {
        let _ = writeln!(
            out,
            "fabric loss={} delay={} dup={} seed={}",
            f.loss, f.delay, f.duplication, f.seed
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ChaosConfig;

    #[test]
    fn parses_documented_example() {
        let text = "\
# adversarial trace
n 4
crash 2 5..9
crash 3 12..
stall 1 3    # transient
fabric loss=0.05 delay=0.02 dup=0.01 seed=99
";
        let p = parse(text).unwrap();
        assert_eq!(p.n(), 4);
        assert!(!p.is_up(ResourceId(2), Round(5)));
        assert!(p.is_up(ResourceId(2), Round(9)));
        assert!(!p.is_up(ResourceId(3), Round(1_000_000)));
        assert!(p.is_stalled(ResourceId(1), Round(3)));
        assert_eq!(p.fabric().loss, 0.05);
        assert_eq!(p.fabric().seed, 99);
    }

    #[test]
    fn roundtrips_exactly() {
        let cfg = ChaosConfig {
            crash_prob: 0.08,
            mttr: 5.0,
            stall_prob: 0.03,
            loss: 0.1,
            delay: 0.05,
            duplication: 0.02,
        };
        let p = FaultPlan::random(6, 120, &cfg, 17);
        assert_eq!(parse(&render(&p)), Ok(p));
        let empty = FaultPlan::empty(3);
        assert_eq!(parse(&render(&empty)), Ok(empty));
    }

    #[test]
    fn rejects_bad_input_with_line_numbers() {
        for (text, want_line) in [
            ("crash 0 1..2", 1),         // before n
            ("n 2\ncrash 5 1..2", 2),    // resource out of range
            ("n 2\ncrash 1 9..3", 2),    // empty interval
            ("n 2\nstall 0", 2),         // missing round
            ("n 2\nfabric loss=2.0", 2), // rate out of range
            ("n 2\nfabric loss", 2),     // not key=value
            ("n 2\nwarp 0 1", 2),        // unknown directive
            ("n 2\nn 3", 2),             // duplicate n
            ("n potato", 1),             // bad count
        ] {
            let e = parse(text).unwrap_err();
            assert_eq!(e.line, want_line, "text: {text:?} -> {e}");
        }
        assert_eq!(parse("# nothing\n").unwrap_err().line, 0);
    }

    #[test]
    fn error_display_mentions_line() {
        let e = parse("n 2\nwarp").unwrap_err();
        assert!(e.to_string().contains("line 2"), "{e}");
    }
}
