//! The synchronous communication substrate: bandwidth-capped message
//! exchange with LDF admission.

use reqsched_core::ScheduleState;
use reqsched_faults::{EnvelopeFate, FabricFaultState, FaultPlan};
use reqsched_model::{RequestId, ResourceId, Round};
use std::sync::Arc;

/// One message from a request (client) to a resource.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Destination resource.
    pub to: ResourceId,
    /// Sending request.
    pub from: RequestId,
    /// The sender's deadline expiry — the admission key for the LDF rule.
    pub ldf_key: Round,
    /// High-priority tag (guaranteed delivery; `A_local_eager` hands out at
    /// most one per resource per scheduling round).
    pub high_priority: bool,
    /// Protocol payload.
    pub payload: M,
}

/// Result of one communication round.
#[derive(Clone, Debug)]
pub struct ExchangeOutcome<M> {
    /// Messages delivered, per resource, in admission (LDF) order.
    pub per_resource: Vec<Vec<Envelope<M>>>,
    /// Messages that exceeded the bandwidth cap; their senders have been
    /// notified of the failure.
    pub bounced: Vec<Envelope<M>>,
    /// Messages that never arrived: addressed to a crashed resource, or
    /// eaten by the fabric's loss rate. **No notification reaches the
    /// sender** — this list exists for the driver, which plays the role of
    /// each sender's local timeout and feeds retry-with-backoff wrappers.
    pub lost: Vec<Envelope<M>>,
}

impl<M> ExchangeOutcome<M> {
    /// Total number of delivered messages.
    pub fn delivered_count(&self) -> usize {
        self.per_resource.iter().map(Vec::len).sum()
    }
}

/// The message fabric: delivers batches of envelopes subject to the model's
/// per-resource bandwidth cap, counting communication rounds and messages.
///
/// Delivery can run serially or on a crossbeam-scoped worker pool
/// ([`CommFabric::new_threaded`]): each worker performs the admission
/// (sort + cap) of a disjoint shard of resources, mirroring how the model's
/// resources decide admission independently and locally. Both modes produce
/// bit-identical outcomes (equivalence is property-tested), so threading is
/// purely a throughput knob for large simulations.
#[derive(Clone, Debug)]
pub struct CommFabric {
    n: u32,
    cap: usize,
    comm_rounds: u64,
    messages: u64,
    workers: usize,
    /// Fault plan (crashed resources receive nothing), if installed.
    plan: Option<Arc<FaultPlan>>,
    /// Seeded per-envelope fate stream for loss/delay/duplication.
    fate: Option<FabricFaultState>,
    /// Current scheduling round (for crash lookups), set by `begin_round`.
    round: Round,
}

impl CommFabric {
    /// A fabric for `n` resources with a bandwidth cap of `cap` messages
    /// per resource per communication round (the paper uses `cap = d`).
    pub fn new(n: u32, cap: usize) -> CommFabric {
        assert!(cap >= 1);
        CommFabric {
            n,
            cap,
            comm_rounds: 0,
            messages: 0,
            workers: 1,
            plan: None,
            fate: None,
            round: Round::ZERO,
        }
    }

    /// Install a fault plan: envelopes to crashed resources are lost, and
    /// the plan's fabric rates drive per-envelope loss/delay/duplication.
    pub fn set_fault_plan(&mut self, plan: Arc<FaultPlan>) {
        assert_eq!(plan.n(), self.n, "fault plan resource count mismatch");
        self.fate = FabricFaultState::new(plan.fabric());
        self.plan = Some(plan);
    }

    /// Tell the fabric which scheduling round the next exchanges belong to
    /// (local strategies call this at the top of every `on_round`).
    pub fn begin_round(&mut self, round: Round) {
        self.round = round;
    }

    /// Like [`CommFabric::new`], but admission runs on `workers` scoped
    /// threads (resources are sharded across workers).
    pub fn new_threaded(n: u32, cap: usize, workers: usize) -> CommFabric {
        assert!(workers >= 1);
        CommFabric {
            workers,
            ..CommFabric::new(n, cap)
        }
    }

    /// Communication rounds used so far (empty exchanges are free: no
    /// messages, no round).
    pub fn comm_rounds(&self) -> u64 {
        self.comm_rounds
    }

    /// Total messages sent so far (requests → resources; the model's
    /// response messages ride the same exchange and are not double-counted).
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Perform one communication round: deliver up to `cap` messages per
    /// resource. High-priority envelopes are admitted first, then LDF order
    /// (latest expiry first, ties towards earlier request ids).
    ///
    /// Under an installed fault plan, envelopes addressed to a crashed
    /// resource are lost, and every other non-priority envelope draws a
    /// fate from the plan's fabric rates: lost envelopes vanish silently,
    /// delayed ones arrive behind all on-time traffic (they only get the
    /// bandwidth left over), duplicated ones consume bandwidth twice but
    /// deliver at most once. High-priority envelopes ride the fabric's
    /// reserved control channel: they are never lost, delayed, duplicated
    /// — or bounced (see [`ExchangeOutcome::bounced`]).
    pub fn exchange<M: Send + Clone>(&mut self, msgs: Vec<Envelope<M>>) -> ExchangeOutcome<M> {
        let mut per_resource: Vec<Vec<Envelope<M>>> = (0..self.n).map(|_| Vec::new()).collect();
        if msgs.is_empty() {
            return ExchangeOutcome {
                per_resource,
                bounced: Vec::new(),
                lost: Vec::new(),
            };
        }
        self.comm_rounds += 1;
        self.messages += msgs.len() as u64;
        let mut lost: Vec<Envelope<M>> = Vec::new();
        let mut delayed: Vec<Envelope<M>> = Vec::new();
        let mut duplicated = false;
        for env in msgs {
            if let Some(plan) = &self.plan {
                if !plan.is_up(env.to, self.round) {
                    lost.push(env); // crashed receiver: the message evaporates
                    continue;
                }
            }
            if !env.high_priority {
                if let Some(fate) = &mut self.fate {
                    match fate.fate() {
                        EnvelopeFate::Deliver => {}
                        EnvelopeFate::Lose => {
                            lost.push(env);
                            continue;
                        }
                        EnvelopeFate::Delay => {
                            delayed.push(env);
                            continue;
                        }
                        EnvelopeFate::Duplicate => {
                            duplicated = true;
                            per_resource[env.to.index()].push(env.clone());
                        }
                    }
                }
            }
            per_resource[env.to.index()].push(env);
        }
        let mut bounced = if self.workers <= 1 || per_resource.len() < 2 {
            let mut bounced = Vec::new();
            for inbox in &mut per_resource {
                Self::admit(inbox, self.cap, &mut bounced);
            }
            bounced
        } else {
            self.admit_threaded(&mut per_resource)
        };
        if !delayed.is_empty() {
            // Late arrivals compete only for the bandwidth left after
            // on-time admission; within the late batch the normal LDF
            // admission order applies.
            let mut late: Vec<Vec<Envelope<M>>> = (0..self.n).map(|_| Vec::new()).collect();
            for env in delayed {
                late[env.to.index()].push(env);
            }
            for (inbox, late_inbox) in per_resource.iter_mut().zip(late.iter_mut()) {
                if late_inbox.is_empty() {
                    continue;
                }
                let room = self.cap.saturating_sub(inbox.len());
                Self::admit(late_inbox, room, &mut bounced);
                inbox.append(late_inbox);
            }
        }
        if duplicated {
            // At most one copy of a duplicated envelope is delivered; the
            // surplus copy burnt bandwidth during admission but produces no
            // notification of any kind (the sender only sent once).
            for inbox in &mut per_resource {
                let mut seen = std::collections::BTreeSet::new();
                inbox.retain(|e| seen.insert(e.from));
            }
            bounced.retain(|e| !per_resource[e.to.index()].iter().any(|d| d.from == e.from));
            let mut seen = std::collections::BTreeSet::new();
            bounced.retain(|e| seen.insert((e.to, e.from)));
        }
        ExchangeOutcome {
            per_resource,
            bounced,
            lost,
        }
    }

    /// Per-resource admission: priority tag first, then latest deadline
    /// first, ties by request id. Everything past the cap bounces — except
    /// high-priority envelopes, which are **cap-exempt**: the control tags
    /// the local protocols hand out must never bounce, so when they alone
    /// exceed the cap the admission keeps all of them (and no normal
    /// traffic). With at most `cap` priority envelopes the admitted count
    /// is exactly `min(len, cap)`, as before.
    fn admit<M>(inbox: &mut Vec<Envelope<M>>, cap: usize, bounced: &mut Vec<Envelope<M>>) {
        inbox.sort_by(|a, b| {
            b.high_priority
                .cmp(&a.high_priority)
                .then(b.ldf_key.cmp(&a.ldf_key))
                .then(a.from.cmp(&b.from))
        });
        let priority = inbox.iter().take_while(|e| e.high_priority).count();
        let keep = cap.max(priority);
        // Pop order (worst-first) is part of the bounce protocol; `rev()`
        // preserves it while avoiding per-element emptiness checks.
        if inbox.len() > keep {
            bounced.extend(inbox.drain(keep..).rev());
        }
    }

    /// Shard the per-resource admission across crossbeam-scoped workers.
    /// Each resource's inbox is processed by exactly one worker, exactly as
    /// in serial mode, so outcomes are identical; bounced messages are
    /// gathered per shard and concatenated in resource order to keep
    /// determinism.
    fn admit_threaded<M: Send>(&self, per_resource: &mut [Vec<Envelope<M>>]) -> Vec<Envelope<M>> {
        let cap = self.cap;
        let shards: Vec<(usize, &mut [Vec<Envelope<M>>])> = {
            let workers = self.workers.min(per_resource.len());
            let chunk = per_resource.len().div_ceil(workers);
            per_resource.chunks_mut(chunk).enumerate().collect()
        };
        let results = parking_lot::Mutex::new(Vec::new());
        crossbeam::scope(|scope| {
            for (shard_idx, shard) in shards {
                let results = &results;
                scope.spawn(move |_| {
                    let mut bounced = Vec::new();
                    for inbox in shard.iter_mut() {
                        Self::admit(inbox, cap, &mut bounced);
                    }
                    results.lock().push((shard_idx, bounced));
                });
            }
        })
        .expect("fabric worker panicked"); // lint: re-raise worker panics on the coordinator thread
        let mut results = results.into_inner();
        results.sort_by_key(|&(idx, _)| idx);
        results.into_iter().flat_map(|(_, b)| b).collect()
    }
}

/// Greedy per-resource acceptance used by both local strategies: process
/// requests in the delivered (LDF) order and assign each to the **latest**
/// free feasible slot of `res`. For windows sharing their left endpoint —
/// the situation every probe round is in — this mirrored-EDF greedy accepts
/// a maximum-cardinality subset, which is what the paper's "maximal
/// selection … according to the LDF rule" requires.
///
/// Returns `(accepted, rejected)` request ids in processing order.
pub fn accept_latest_fit(
    state: &mut ScheduleState,
    res: ResourceId,
    delivered: &[(RequestId, Round)],
) -> (Vec<RequestId>, Vec<RequestId>) {
    let mut accepted = Vec::new();
    let mut rejected = Vec::new();
    let front = state.front().get();
    let last_window = front + state.d() as u64 - 1;
    for &(id, expiry) in delivered {
        let hi = expiry.get().min(last_window);
        let mut placed = false;
        let mut r = hi;
        loop {
            // A crashed or stalled slot is skipped exactly like an occupied
            // one: the request degrades to an earlier usable slot, or is
            // rejected (and will fall back to its surviving alternative).
            if state.slot_free(res, Round(r)) && state.slot_usable(res, Round(r)) {
                state.assign(id, res, Round(r));
                accepted.push(id);
                placed = true;
                break;
            }
            if r == front {
                break;
            }
            r -= 1;
        }
        if !placed {
            rejected.push(id);
        }
    }
    (accepted, rejected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use reqsched_faults::FabricFaults;

    fn env(to: u32, from: u32, expiry: u64) -> Envelope<()> {
        Envelope {
            to: ResourceId(to),
            from: RequestId(from),
            ldf_key: Round(expiry),
            high_priority: false,
            payload: (),
        }
    }

    #[test]
    fn empty_exchange_is_free() {
        let mut f = CommFabric::new(2, 3);
        let out = f.exchange::<()>(vec![]);
        assert_eq!(f.comm_rounds(), 0);
        assert_eq!(out.delivered_count(), 0);
    }

    #[test]
    fn cap_bounces_lowest_rank() {
        let mut f = CommFabric::new(1, 2);
        let out = f.exchange(vec![env(0, 0, 5), env(0, 1, 9), env(0, 2, 5)]);
        assert_eq!(f.comm_rounds(), 1);
        assert_eq!(f.messages(), 3);
        // LDF: expiry 9 first, then expiry 5 with lower id (0); id 2 bounced.
        let inbox = &out.per_resource[0];
        assert_eq!(inbox.len(), 2);
        assert_eq!(inbox[0].from, RequestId(1));
        assert_eq!(inbox[1].from, RequestId(0));
        assert_eq!(out.bounced.len(), 1);
        assert_eq!(out.bounced[0].from, RequestId(2));
    }

    #[test]
    fn priority_tag_beats_ldf() {
        let mut f = CommFabric::new(1, 1);
        let mut hi = env(0, 5, 1);
        hi.high_priority = true;
        let out = f.exchange(vec![env(0, 0, 99), hi]);
        assert_eq!(out.per_resource[0][0].from, RequestId(5));
        assert_eq!(out.bounced[0].from, RequestId(0));
    }

    #[test]
    fn accept_latest_fit_maximizes_mixed_deadlines() {
        use reqsched_model::{Alternatives, Hint, Request};
        let mut st = ScheduleState::new(1, 2);
        for (id, dl) in [(0u32, 2u32), (1, 1)] {
            st.insert(&Request {
                id: RequestId(id),
                arrival: Round(0),
                alternatives: Alternatives::one(ResourceId(0)),
                deadline: dl,
                tag: 0,
                hint: Hint::default(),
            });
        }
        // LDF order: id 0 (expiry 1) before id 1 (expiry 0).
        let delivered = vec![(RequestId(0), Round(1)), (RequestId(1), Round(0))];
        let (acc, rej) = accept_latest_fit(&mut st, ResourceId(0), &delivered);
        assert_eq!(acc.len(), 2, "latest-fit must save the tight request");
        assert!(rej.is_empty());
        assert_eq!(st.occupant(ResourceId(0), Round(0)), Some(RequestId(1)));
        assert_eq!(st.occupant(ResourceId(0), Round(1)), Some(RequestId(0)));
    }

    #[test]
    fn threaded_equals_serial() {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        for case in 0..40 {
            let n = rng.gen_range(1..12u32);
            let cap = rng.gen_range(1..5usize);
            let msgs: Vec<Envelope<u32>> = (0..rng.gen_range(0..60u32))
                .map(|i| Envelope {
                    to: ResourceId(rng.gen_range(0..n)),
                    from: RequestId(i),
                    ldf_key: Round(rng.gen_range(0..6u64)),
                    high_priority: rng.gen_bool(0.1),
                    payload: i,
                })
                .collect();
            let mut serial = CommFabric::new(n, cap);
            let mut threaded = CommFabric::new_threaded(n, cap, 4);
            let a = serial.exchange(msgs.clone());
            let b = threaded.exchange(msgs);
            assert_eq!(a.per_resource, b.per_resource, "case {case}");
            assert_eq!(a.bounced, b.bounced, "case {case}");
            assert_eq!(serial.comm_rounds(), threaded.comm_rounds());
            assert_eq!(serial.messages(), threaded.messages());
        }
    }

    #[test]
    fn crashed_receiver_loses_every_envelope() {
        let plan = FaultPlan::empty(2).with_crash(ResourceId(0), Round(0), Round(5));
        let mut f = CommFabric::new(2, 4);
        f.set_fault_plan(Arc::new(plan));
        f.begin_round(Round(1));
        let mut hp = env(0, 7, 9);
        hp.high_priority = true; // even priority tags die with the receiver
        let out = f.exchange(vec![env(0, 1, 3), hp, env(1, 2, 3)]);
        assert_eq!(out.per_resource[0].len(), 0);
        assert_eq!(out.per_resource[1].len(), 1);
        assert!(out.bounced.is_empty(), "loss is silent, not a bounce");
        let mut lost: Vec<u32> = out.lost.iter().map(|e| e.from.0).collect();
        lost.sort_unstable();
        assert_eq!(lost, vec![1, 7]);
        // After recovery the same fabric delivers again.
        f.begin_round(Round(5));
        let out = f.exchange(vec![env(0, 1, 8)]);
        assert_eq!(out.per_resource[0].len(), 1);
        assert!(out.lost.is_empty());
    }

    #[test]
    fn every_bounced_sender_is_notified_and_reenqueues_next_round() {
        // Satellite pinning: an over-cap exchange must account for every
        // envelope — delivered + bounced partitions the batch exactly (no
        // silent drops), each bounced envelope comes back intact so its
        // sender can re-enqueue it, and the re-send next round succeeds.
        let mut f = CommFabric::new(1, 2);
        let sent: Vec<Envelope<()>> = (0..5).map(|i| env(0, i, 3 + u64::from(i))).collect();
        let out = f.exchange(sent.clone());
        assert_eq!(
            out.delivered_count() + out.bounced.len(),
            sent.len(),
            "every envelope is either delivered or bounced back"
        );
        assert!(out.lost.is_empty());
        for b in &out.bounced {
            let original = sent.iter().find(|e| e.from == b.from);
            assert_eq!(original, Some(b), "bounce returns the envelope intact");
        }
        // The notified senders retry in the next communication round.
        let retry: Vec<Envelope<()>> = out.bounced.clone();
        assert_eq!(retry.len(), 3);
        let out2 = f.exchange(retry);
        assert_eq!(out2.delivered_count(), 2);
        assert_eq!(out2.bounced.len(), 1);
    }

    #[test]
    fn high_priority_is_never_bounced_even_over_cap() {
        let mut f = CommFabric::new(1, 2);
        let mut msgs: Vec<Envelope<()>> = (0..3)
            .map(|i| {
                let mut e = env(0, i, 1);
                e.high_priority = true;
                e
            })
            .collect();
        msgs.push(env(0, 9, 99)); // best LDF key, but no priority tag
        let out = f.exchange(msgs);
        let inbox = &out.per_resource[0];
        assert_eq!(inbox.len(), 3, "cap-exempt: all priority tags admitted");
        assert!(inbox.iter().all(|e| e.high_priority));
        assert_eq!(out.bounced.len(), 1);
        assert_eq!(out.bounced[0].from, RequestId(9));
    }

    #[test]
    fn fabric_loss_spares_priority_and_is_deterministic() {
        let fabric = FabricFaults {
            loss: 1.0,
            delay: 0.0,
            duplication: 0.0,
            seed: 11,
        };
        let plan = Arc::new(FaultPlan::empty(1).with_fabric(fabric));
        let mut f = CommFabric::new(1, 8);
        f.set_fault_plan(Arc::clone(&plan));
        let mut hp = env(0, 3, 1);
        hp.high_priority = true;
        let out = f.exchange(vec![env(0, 0, 5), env(0, 1, 5), hp]);
        assert_eq!(out.per_resource[0].len(), 1, "only the tag survives");
        assert!(out.per_resource[0][0].high_priority);
        assert_eq!(out.lost.len(), 2);
        // Identical seed + identical traffic => identical fates.
        let mut g = CommFabric::new(1, 8);
        g.set_fault_plan(plan);
        let mut hp = env(0, 3, 1);
        hp.high_priority = true;
        let out2 = g.exchange(vec![env(0, 0, 5), env(0, 1, 5), hp]);
        assert_eq!(out.per_resource, out2.per_resource);
        assert_eq!(out.lost, out2.lost);
    }

    #[test]
    fn delayed_envelopes_only_get_leftover_bandwidth() {
        let fabric = FabricFaults {
            loss: 0.0,
            delay: 1.0,
            duplication: 0.0,
            seed: 0,
        };
        let mut f = CommFabric::new(1, 2);
        f.set_fault_plan(Arc::new(FaultPlan::empty(1).with_fabric(fabric)));
        let mut hp = env(0, 3, 1);
        hp.high_priority = true;
        // The on-time tag takes one of the two slots; the delayed pair
        // competes for the single leftover slot and the better LDF key wins.
        let out = f.exchange(vec![env(0, 0, 9), env(0, 1, 2), hp]);
        let inbox = &out.per_resource[0];
        assert_eq!(inbox.len(), 2);
        assert_eq!(inbox[0].from, RequestId(3), "on-time traffic first");
        assert_eq!(inbox[1].from, RequestId(0), "late winner by LDF");
        assert_eq!(out.bounced.len(), 1);
        assert_eq!(out.bounced[0].from, RequestId(1));
        assert!(out.lost.is_empty());
    }

    #[test]
    fn duplicated_envelopes_deliver_and_bounce_at_most_once() {
        let fabric = FabricFaults {
            loss: 0.0,
            delay: 0.0,
            duplication: 1.0,
            seed: 0,
        };
        let mut f = CommFabric::new(1, 2);
        f.set_fault_plan(Arc::new(FaultPlan::empty(1).with_fabric(fabric)));
        // Two envelopes, each duplicated: four copies compete for cap 2.
        // Both admitted copies belong to the LDF winner, which must still be
        // delivered exactly once; the loser is bounced exactly once.
        let out = f.exchange(vec![env(0, 0, 9), env(0, 1, 2)]);
        let inbox = &out.per_resource[0];
        assert_eq!(inbox.len(), 1);
        assert_eq!(inbox[0].from, RequestId(0));
        assert_eq!(out.bounced.len(), 1, "surplus bounce copies are deduped");
        assert_eq!(out.bounced[0].from, RequestId(1));
        // With room for everything, duplication is invisible to the outcome.
        let mut g = CommFabric::new(1, 8);
        g.set_fault_plan(Arc::new(FaultPlan::empty(1).with_fabric(fabric)));
        let out = g.exchange(vec![env(0, 0, 9), env(0, 1, 2)]);
        assert_eq!(out.per_resource[0].len(), 2);
        assert!(out.bounced.is_empty());
    }

    #[test]
    fn accept_latest_fit_degrades_around_masked_slots() {
        use reqsched_model::{Alternatives, Hint, Request};
        let mut st = ScheduleState::new(1, 3);
        st.set_fault_plan(Arc::new(
            FaultPlan::empty(1).with_stall(ResourceId(0), Round(2)),
        ));
        st.insert(&Request {
            id: RequestId(0),
            arrival: Round(0),
            alternatives: Alternatives::one(ResourceId(0)),
            deadline: 3,
            tag: 0,
            hint: Hint::default(),
        });
        // Latest fit would pick round 2, but that slot is stalled: the
        // request degrades to round 1.
        let delivered = vec![(RequestId(0), Round(2))];
        let (acc, rej) = accept_latest_fit(&mut st, ResourceId(0), &delivered);
        assert_eq!(acc, vec![RequestId(0)]);
        assert!(rej.is_empty());
        assert_eq!(st.occupant(ResourceId(0), Round(1)), Some(RequestId(0)));
    }

    #[test]
    fn accept_rejects_when_full() {
        use reqsched_model::{Alternatives, Hint, Request};
        let mut st = ScheduleState::new(1, 1);
        for id in 0..2u32 {
            st.insert(&Request {
                id: RequestId(id),
                arrival: Round(0),
                alternatives: Alternatives::one(ResourceId(0)),
                deadline: 1,
                tag: 0,
                hint: Hint::default(),
            });
        }
        let delivered = vec![(RequestId(0), Round(0)), (RequestId(1), Round(0))];
        let (acc, rej) = accept_latest_fit(&mut st, ResourceId(0), &delivered);
        assert_eq!(acc, vec![RequestId(0)]);
        assert_eq!(rej, vec![RequestId(1)]);
    }
}
