//! The synchronous communication substrate: bandwidth-capped message
//! exchange with LDF admission.

use reqsched_core::ScheduleState;
use reqsched_model::{RequestId, ResourceId, Round};

/// One message from a request (client) to a resource.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Destination resource.
    pub to: ResourceId,
    /// Sending request.
    pub from: RequestId,
    /// The sender's deadline expiry — the admission key for the LDF rule.
    pub ldf_key: Round,
    /// High-priority tag (guaranteed delivery; `A_local_eager` hands out at
    /// most one per resource per scheduling round).
    pub high_priority: bool,
    /// Protocol payload.
    pub payload: M,
}

/// Result of one communication round.
#[derive(Clone, Debug)]
pub struct ExchangeOutcome<M> {
    /// Messages delivered, per resource, in admission (LDF) order.
    pub per_resource: Vec<Vec<Envelope<M>>>,
    /// Messages that exceeded the bandwidth cap; their senders have been
    /// notified of the failure.
    pub bounced: Vec<Envelope<M>>,
}

impl<M> ExchangeOutcome<M> {
    /// Total number of delivered messages.
    pub fn delivered_count(&self) -> usize {
        self.per_resource.iter().map(Vec::len).sum()
    }
}

/// The message fabric: delivers batches of envelopes subject to the model's
/// per-resource bandwidth cap, counting communication rounds and messages.
///
/// Delivery can run serially or on a crossbeam-scoped worker pool
/// ([`CommFabric::new_threaded`]): each worker performs the admission
/// (sort + cap) of a disjoint shard of resources, mirroring how the model's
/// resources decide admission independently and locally. Both modes produce
/// bit-identical outcomes (equivalence is property-tested), so threading is
/// purely a throughput knob for large simulations.
#[derive(Clone, Debug)]
pub struct CommFabric {
    n: u32,
    cap: usize,
    comm_rounds: u64,
    messages: u64,
    workers: usize,
}

impl CommFabric {
    /// A fabric for `n` resources with a bandwidth cap of `cap` messages
    /// per resource per communication round (the paper uses `cap = d`).
    pub fn new(n: u32, cap: usize) -> CommFabric {
        assert!(cap >= 1);
        CommFabric {
            n,
            cap,
            comm_rounds: 0,
            messages: 0,
            workers: 1,
        }
    }

    /// Like [`CommFabric::new`], but admission runs on `workers` scoped
    /// threads (resources are sharded across workers).
    pub fn new_threaded(n: u32, cap: usize, workers: usize) -> CommFabric {
        assert!(workers >= 1);
        CommFabric {
            workers,
            ..CommFabric::new(n, cap)
        }
    }

    /// Communication rounds used so far (empty exchanges are free: no
    /// messages, no round).
    pub fn comm_rounds(&self) -> u64 {
        self.comm_rounds
    }

    /// Total messages sent so far (requests → resources; the model's
    /// response messages ride the same exchange and are not double-counted).
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Perform one communication round: deliver up to `cap` messages per
    /// resource. High-priority envelopes are admitted first, then LDF order
    /// (latest expiry first, ties towards earlier request ids).
    pub fn exchange<M: Send>(&mut self, msgs: Vec<Envelope<M>>) -> ExchangeOutcome<M> {
        let mut per_resource: Vec<Vec<Envelope<M>>> = (0..self.n).map(|_| Vec::new()).collect();
        if msgs.is_empty() {
            return ExchangeOutcome {
                per_resource,
                bounced: Vec::new(),
            };
        }
        self.comm_rounds += 1;
        self.messages += msgs.len() as u64;
        for env in msgs {
            per_resource[env.to.index()].push(env);
        }
        let bounced = if self.workers <= 1 || per_resource.len() < 2 {
            let mut bounced = Vec::new();
            for inbox in &mut per_resource {
                Self::admit(inbox, self.cap, &mut bounced);
            }
            bounced
        } else {
            self.admit_threaded(&mut per_resource)
        };
        ExchangeOutcome {
            per_resource,
            bounced,
        }
    }

    /// Per-resource admission: priority tag first, then latest deadline
    /// first, ties by request id; everything past the cap bounces.
    fn admit<M>(inbox: &mut Vec<Envelope<M>>, cap: usize, bounced: &mut Vec<Envelope<M>>) {
        inbox.sort_by(|a, b| {
            b.high_priority
                .cmp(&a.high_priority)
                .then(b.ldf_key.cmp(&a.ldf_key))
                .then(a.from.cmp(&b.from))
        });
        // Pop order (worst-first) is part of the bounce protocol; `rev()`
        // preserves it while avoiding per-element emptiness checks.
        if inbox.len() > cap {
            bounced.extend(inbox.drain(cap..).rev());
        }
    }

    /// Shard the per-resource admission across crossbeam-scoped workers.
    /// Each resource's inbox is processed by exactly one worker, exactly as
    /// in serial mode, so outcomes are identical; bounced messages are
    /// gathered per shard and concatenated in resource order to keep
    /// determinism.
    fn admit_threaded<M: Send>(&self, per_resource: &mut [Vec<Envelope<M>>]) -> Vec<Envelope<M>> {
        let cap = self.cap;
        let shards: Vec<(usize, &mut [Vec<Envelope<M>>])> = {
            let workers = self.workers.min(per_resource.len());
            let chunk = per_resource.len().div_ceil(workers);
            per_resource.chunks_mut(chunk).enumerate().collect()
        };
        let results = parking_lot::Mutex::new(Vec::new());
        crossbeam::scope(|scope| {
            for (shard_idx, shard) in shards {
                let results = &results;
                scope.spawn(move |_| {
                    let mut bounced = Vec::new();
                    for inbox in shard.iter_mut() {
                        Self::admit(inbox, cap, &mut bounced);
                    }
                    results.lock().push((shard_idx, bounced));
                });
            }
        })
        .expect("fabric worker panicked"); // lint: re-raise worker panics on the coordinator thread
        let mut results = results.into_inner();
        results.sort_by_key(|&(idx, _)| idx);
        results.into_iter().flat_map(|(_, b)| b).collect()
    }
}

/// Greedy per-resource acceptance used by both local strategies: process
/// requests in the delivered (LDF) order and assign each to the **latest**
/// free feasible slot of `res`. For windows sharing their left endpoint —
/// the situation every probe round is in — this mirrored-EDF greedy accepts
/// a maximum-cardinality subset, which is what the paper's "maximal
/// selection … according to the LDF rule" requires.
///
/// Returns `(accepted, rejected)` request ids in processing order.
pub fn accept_latest_fit(
    state: &mut ScheduleState,
    res: ResourceId,
    delivered: &[(RequestId, Round)],
) -> (Vec<RequestId>, Vec<RequestId>) {
    let mut accepted = Vec::new();
    let mut rejected = Vec::new();
    let front = state.front().get();
    let last_window = front + state.d() as u64 - 1;
    for &(id, expiry) in delivered {
        let hi = expiry.get().min(last_window);
        let mut placed = false;
        let mut r = hi;
        loop {
            if state.slot_free(res, Round(r)) {
                state.assign(id, res, Round(r));
                accepted.push(id);
                placed = true;
                break;
            }
            if r == front {
                break;
            }
            r -= 1;
        }
        if !placed {
            rejected.push(id);
        }
    }
    (accepted, rejected)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(to: u32, from: u32, expiry: u64) -> Envelope<()> {
        Envelope {
            to: ResourceId(to),
            from: RequestId(from),
            ldf_key: Round(expiry),
            high_priority: false,
            payload: (),
        }
    }

    #[test]
    fn empty_exchange_is_free() {
        let mut f = CommFabric::new(2, 3);
        let out = f.exchange::<()>(vec![]);
        assert_eq!(f.comm_rounds(), 0);
        assert_eq!(out.delivered_count(), 0);
    }

    #[test]
    fn cap_bounces_lowest_rank() {
        let mut f = CommFabric::new(1, 2);
        let out = f.exchange(vec![env(0, 0, 5), env(0, 1, 9), env(0, 2, 5)]);
        assert_eq!(f.comm_rounds(), 1);
        assert_eq!(f.messages(), 3);
        // LDF: expiry 9 first, then expiry 5 with lower id (0); id 2 bounced.
        let inbox = &out.per_resource[0];
        assert_eq!(inbox.len(), 2);
        assert_eq!(inbox[0].from, RequestId(1));
        assert_eq!(inbox[1].from, RequestId(0));
        assert_eq!(out.bounced.len(), 1);
        assert_eq!(out.bounced[0].from, RequestId(2));
    }

    #[test]
    fn priority_tag_beats_ldf() {
        let mut f = CommFabric::new(1, 1);
        let mut hi = env(0, 5, 1);
        hi.high_priority = true;
        let out = f.exchange(vec![env(0, 0, 99), hi]);
        assert_eq!(out.per_resource[0][0].from, RequestId(5));
        assert_eq!(out.bounced[0].from, RequestId(0));
    }

    #[test]
    fn accept_latest_fit_maximizes_mixed_deadlines() {
        use reqsched_model::{Alternatives, Hint, Request};
        let mut st = ScheduleState::new(1, 2);
        for (id, dl) in [(0u32, 2u32), (1, 1)] {
            st.insert(&Request {
                id: RequestId(id),
                arrival: Round(0),
                alternatives: Alternatives::one(ResourceId(0)),
                deadline: dl,
                tag: 0,
                hint: Hint::default(),
            });
        }
        // LDF order: id 0 (expiry 1) before id 1 (expiry 0).
        let delivered = vec![(RequestId(0), Round(1)), (RequestId(1), Round(0))];
        let (acc, rej) = accept_latest_fit(&mut st, ResourceId(0), &delivered);
        assert_eq!(acc.len(), 2, "latest-fit must save the tight request");
        assert!(rej.is_empty());
        assert_eq!(st.occupant(ResourceId(0), Round(0)), Some(RequestId(1)));
        assert_eq!(st.occupant(ResourceId(0), Round(1)), Some(RequestId(0)));
    }

    #[test]
    fn threaded_equals_serial() {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        for case in 0..40 {
            let n = rng.gen_range(1..12u32);
            let cap = rng.gen_range(1..5usize);
            let msgs: Vec<Envelope<u32>> = (0..rng.gen_range(0..60u32))
                .map(|i| Envelope {
                    to: ResourceId(rng.gen_range(0..n)),
                    from: RequestId(i),
                    ldf_key: Round(rng.gen_range(0..6u64)),
                    high_priority: rng.gen_bool(0.1),
                    payload: i,
                })
                .collect();
            let mut serial = CommFabric::new(n, cap);
            let mut threaded = CommFabric::new_threaded(n, cap, 4);
            let a = serial.exchange(msgs.clone());
            let b = threaded.exchange(msgs);
            assert_eq!(a.per_resource, b.per_resource, "case {case}");
            assert_eq!(a.bounced, b.bounced, "case {case}");
            assert_eq!(serial.comm_rounds(), threaded.comm_rounds());
            assert_eq!(serial.messages(), threaded.messages());
        }
    }

    #[test]
    fn accept_rejects_when_full() {
        use reqsched_model::{Alternatives, Hint, Request};
        let mut st = ScheduleState::new(1, 1);
        for id in 0..2u32 {
            st.insert(&Request {
                id: RequestId(id),
                arrival: Round(0),
                alternatives: Alternatives::one(ResourceId(0)),
                deadline: 1,
                tag: 0,
                hint: Hint::default(),
            });
        }
        let delivered = vec![(RequestId(0), Round(0)), (RequestId(1), Round(0))];
        let (acc, rej) = accept_latest_fit(&mut st, ResourceId(0), &delivered);
        assert_eq!(acc, vec![RequestId(0)]);
        assert_eq!(rej, vec![RequestId(1)]);
    }
}
