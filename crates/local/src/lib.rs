//! # reqsched-local
//!
//! The paper's **local (distributed) strategies** over a faithful synchronous
//! message-passing substrate (paper §1.3 "Local Strategies" and §3.2).
//!
//! In the local model, requests know nothing about each other; scheduling
//! decisions emerge from *communication rounds* in which requests exchange
//! fixed-size messages with resources. The model's constraints, all enforced
//! by [`CommFabric`]:
//!
//! * per communication round, at most `d` messages **reach** a resource;
//! * excess messages are admitted by the **LDF** (latest deadline first)
//!   rule and the spurned senders are notified of the failure;
//! * one high-priority tag per resource bypasses contention (used by
//!   `A_local_eager`'s phase 3, which hands out at most one tag per
//!   resource per round).
//!
//! Strategies:
//!
//! * [`ALocalFix`] — the local `A_fix` variant: new requests probe their
//!   first alternative, failures probe their second; **2 communication
//!   rounds**, competitive ratio exactly 2 (Theorem 3.7).
//! * [`ALocalEager`] — three phases (probe-all, pull-forward,
//!   rival-exchange) in **at most 9 communication rounds**, competitive
//!   ratio at most 5/3 (Theorem 3.8).
//!
//! The substrate is simulated deterministically in-process; "locality" is
//! enforced structurally — every decision a resource takes depends only on
//! the messages delivered to it and its own slot table, and every decision a
//! request takes depends only on the responses it received.

mod fabric;
mod local_eager;
mod local_fix;

pub use fabric::{CommFabric, Envelope, ExchangeOutcome};
pub use local_eager::ALocalEager;
pub use local_fix::ALocalFix;
