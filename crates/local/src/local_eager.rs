//! `A_local_eager`: the nine-communication-round local strategy
//! (paper §3.2, Theorem 3.8 — at most 5/3-competitive).
//!
//! Each scheduling round runs three phases:
//!
//! * **Phase 1 (≤ 2 CRs)** — like `A_local_fix`, but *all* unscheduled live
//!   requests (new and old) probe their first, then their second
//!   alternative. Failed requests stay alive for later phases and rounds.
//! * **Phase 2 (≤ 2 CRs)** — *pull-forward*: every request scheduled at a
//!   future slot offers itself to its other alternative; each resource with
//!   a free **current** slot acknowledges one of them, which then cancels
//!   its old reservation and is served now. This kills augmenting paths of
//!   order 2 running into the past.
//! * **Phase 3 (≤ 5 CRs)** — *rival exchange*: every still-unscheduled
//!   request `q` petitions its first alternative `S_q1`; the resource
//!   nominates one rival `q`, telling it the request `r` occupying the
//!   current slot and `r`'s other alternative `S_r`. `q` asks `S_r` to take
//!   `r`; on success `q` claims the freed current slot using a one-per-
//!   resource high-priority tag. Unsuccessful rivals repeat the dance at
//!   their second alternative (overlapping the tag round, as in the paper).
//!
//! Communication rounds are counted by the [`CommFabric`]; empty waves cost
//! nothing, so the total is at most 9 per scheduling round (the paper's
//! figure).
//!
//! # Fault handling
//!
//! The protocol is synchronous, so a missing response *within the round* is
//! detectable: a request whose first-alternative probe vanished simply
//! joins the second-alternative wave (an implicit timeout), and a rival
//! whose take-request got lost counts as an attempt-1 loser. Everything
//! else retries for free: phases 1 and 3 re-run every scheduling round for
//! all still-unscheduled requests, which bounds the retrying by the
//! request's own deadline. Crashed or stalled current slots are skipped
//! wherever the protocol would grant them.

use crate::fabric::{accept_latest_fit, CommFabric, Envelope};
use reqsched_core::{OnlineScheduler, ScheduleState, Service};
use reqsched_faults::FaultPlan;
use reqsched_model::{Request, RequestId, ResourceId, Round};
use std::sync::Arc;

/// The `A_local_eager` strategy. See module docs.
pub struct ALocalEager {
    state: ScheduleState,
    fabric: CommFabric,
}

/// A nomination: `(petitioner q, host resource, occupant r, r's other
/// alternative)`.
type Nomination = (RequestId, ResourceId, RequestId, ResourceId);

/// A granted rival exchange, waiting for the tag round to be applied.
struct PlannedExchange {
    /// The petitioning (unscheduled) request.
    q: RequestId,
    /// The resource whose current slot changes hands.
    host: ResourceId,
    /// The current occupant being moved away.
    r: RequestId,
    /// Where `r` goes.
    target: ResourceId,
    /// The slot reserved for `r` at `target`.
    slot: Round,
}

impl ALocalEager {
    /// Create an `A_local_eager` scheduler for `n` resources and deadline
    /// `d` (bandwidth cap = `d`).
    pub fn new(n: u32, d: u32) -> ALocalEager {
        ALocalEager::with_fabric(n, d, CommFabric::new(n, d as usize))
    }

    /// Create an `A_local_eager` scheduler over a custom fabric (e.g. the
    /// crossbeam-threaded one from [`CommFabric::new_threaded`]).
    pub fn with_fabric(n: u32, d: u32, fabric: CommFabric) -> ALocalEager {
        ALocalEager {
            state: ScheduleState::new(n, d),
            fabric,
        }
    }

    fn alt(&self, id: RequestId, which: usize) -> ResourceId {
        // lint: ids flow straight from this round's live set
        let req = self.state.live(id).expect("live");
        assert!(
            req.alternatives().len() == 2,
            "local strategies need two-choice requests"
        );
        req.alternatives().as_slice()[which]
    }

    fn expiry(&self, id: RequestId) -> Round {
        // lint: ids flow straight from this round's live set
        self.state.live(id).expect("live").expiry()
    }

    /// Phase 1 probe wave (same mechanics as `A_local_fix`). Lost envelopes
    /// count as failures: the synchronous round structure lets the sender
    /// treat the missing response as an implicit timeout.
    fn probe_wave(&mut self, ids: &[RequestId], alt: usize) -> Vec<RequestId> {
        let msgs: Vec<Envelope<()>> = ids
            .iter()
            .map(|&id| Envelope {
                to: self.alt(id, alt),
                from: id,
                ldf_key: self.expiry(id),
                high_priority: false,
                payload: (),
            })
            .collect();
        let out = self.fabric.exchange(msgs);
        let mut failed: Vec<RequestId> = out.bounced.iter().map(|e| e.from).collect();
        failed.extend(out.lost.iter().map(|e| e.from));
        for (i, inbox) in out.per_resource.iter().enumerate() {
            if inbox.is_empty() {
                continue;
            }
            let delivered: Vec<(RequestId, Round)> =
                inbox.iter().map(|e| (e.from, e.ldf_key)).collect();
            let (_, rejected) =
                accept_latest_fit(&mut self.state, ResourceId(i as u32), &delivered);
            failed.extend(rejected);
        }
        failed.sort_unstable();
        failed
    }

    /// Phase 2: future-scheduled requests offer to move to their other
    /// alternative's current slot.
    fn pull_forward(&mut self) {
        let front = self.state.front();
        let movers: Vec<(RequestId, ResourceId)> = self
            .state
            .live_iter()
            .filter_map(|l| match l.assigned() {
                Some((res, round)) if round > front => Some((l.id(), l.alternatives().other(res))),
                _ => None,
            })
            .collect();
        let msgs: Vec<Envelope<()>> = movers
            .iter()
            .map(|&(id, other)| Envelope {
                to: other,
                from: id,
                ldf_key: self.expiry(id),
                high_priority: false,
                payload: (),
            })
            .collect();
        let out = self.fabric.exchange(msgs);
        // Each resource with a free current slot acknowledges its first
        // admitted offer; the winners move (their cancel messages to the old
        // resources form the phase's second communication round).
        let mut cancels: Vec<Envelope<()>> = Vec::new();
        for (i, inbox) in out.per_resource.iter().enumerate() {
            let res = ResourceId(i as u32);
            if inbox.is_empty()
                || !self.state.slot_free(res, front)
                || !self.state.slot_usable(res, front)
            {
                continue;
            }
            let winner = inbox[0].from;
            let (old_res, _) = self
                .state
                .live(winner)
                // lint: movers are drawn from assigned live requests this round
                .expect("live")
                .assigned()
                // lint: movers are drawn from assigned live requests this round
                .expect("mover is assigned");
            self.state.unassign(winner);
            self.state.assign(winner, res, front);
            cancels.push(Envelope {
                to: old_res,
                from: winner,
                ldf_key: front,
                high_priority: false,
                payload: (),
            });
        }
        let _ = self.fabric.exchange(cancels);
    }

    /// Build petition envelopes: q -> its `alt`-th alternative.
    fn petition_msgs(&self, qs: &[RequestId], alt: usize) -> Vec<Envelope<()>> {
        qs.iter()
            .map(|&id| Envelope {
                to: self.alt(id, alt),
                from: id,
                ldf_key: self.expiry(id),
                high_priority: false,
                payload: (),
            })
            .collect()
    }

    /// Process delivered petitions: each petitioned resource nominates ONE
    /// rival (first admitted) and tells it who occupies the current slot and
    /// where that occupant's other alternative is; a resource whose current
    /// slot happens to be free grants it directly. Returns the nominations
    /// `(q, host, r, target)` and the losers.
    fn process_petitions(
        &mut self,
        out: &crate::fabric::ExchangeOutcome<()>,
    ) -> (Vec<Nomination>, Vec<RequestId>) {
        let front = self.state.front();
        let mut losers: Vec<RequestId> = out.bounced.iter().map(|e| e.from).collect();
        // Lost petitions: the implicit timeout makes their senders losers
        // (tags are never petitions and never lost while their host is up).
        losers.extend(out.lost.iter().filter(|e| !e.high_priority).map(|e| e.from));
        let mut nominations = Vec::new();
        for (i, inbox) in out.per_resource.iter().enumerate() {
            let host = ResourceId(i as u32);
            // A crashed host loses its inbox before this point; a *stalled*
            // current slot still receives petitions but has nothing to
            // grant, so every petitioner is a loser.
            let host_usable = self.state.slot_usable(host, front);
            let mut nominated = false;
            for env in inbox {
                if env.high_priority {
                    continue; // tag messages ride the same wave; not petitions
                }
                if nominated || !host_usable {
                    losers.push(env.from);
                    continue;
                }
                match self.state.occupant(host, front) {
                    Some(r) => {
                        let target = self
                            .state
                            .live(r)
                            // lint: occupants of window slots are live by ScheduleState's invariant
                            .expect("occupant is live")
                            .alternatives()
                            .other(host);
                        nominations.push((env.from, host, r, target));
                        nominated = true;
                    }
                    None => {
                        // Degenerate case the paper's phase 1 mostly rules
                        // out: the current slot is free; grant it directly.
                        self.state.assign(env.from, host, front);
                        nominated = true;
                    }
                }
            }
        }
        (nominations, losers)
    }

    /// Take-request wave: each nominated q asks `target` to take `r`;
    /// accepted moves are planned (slots reserved), rejected qs are losers.
    fn take_wave(
        &mut self,
        nominations: Vec<Nomination>,
        reserved: &mut std::collections::BTreeSet<(ResourceId, Round)>,
    ) -> (Vec<PlannedExchange>, Vec<RequestId>) {
        let front = self.state.front();
        let take_msgs: Vec<Envelope<(RequestId, ResourceId, RequestId)>> = nominations
            .iter()
            .map(|&(q, host, r, target)| Envelope {
                to: target,
                from: q,
                ldf_key: self.expiry(r),
                high_priority: false,
                payload: (q, host, r),
            })
            .collect();
        let mut planned = Vec::new();
        let mut losers = Vec::new();
        if take_msgs.is_empty() {
            return (planned, losers);
        }
        let out = self.fabric.exchange(take_msgs);
        losers.extend(out.bounced.iter().map(|e| e.from));
        // A lost take-request aborts the planned exchange: no response
        // arrives, so q times out and counts itself a loser.
        losers.extend(out.lost.iter().map(|e| e.from));
        for (i, inbox) in out.per_resource.iter().enumerate() {
            let target = ResourceId(i as u32);
            for env in inbox {
                let (q, host, r) = env.payload;
                // Reserve the latest free feasible slot for r at target.
                let r_expiry = self.expiry(r);
                let hi = r_expiry.get().min(front.get() + self.state.d() as u64 - 1);
                let mut slot = None;
                let mut round = hi;
                loop {
                    let cand = Round(round);
                    if self.state.slot_free(target, cand)
                        && self.state.slot_usable(target, cand)
                        && !reserved.contains(&(target, cand))
                    {
                        slot = Some(cand);
                        break;
                    }
                    if round == front.get() {
                        break;
                    }
                    round -= 1;
                }
                match slot {
                    Some(s) => {
                        reserved.insert((target, s));
                        planned.push(PlannedExchange {
                            q,
                            host,
                            r,
                            target,
                            slot: s,
                        });
                    }
                    None => losers.push(q),
                }
            }
        }
        (planned, losers)
    }

    /// The tag wave: granted qs claim their hosts' current slots with
    /// high-priority tags. The paper overlaps this with the second attempt's
    /// petition wave, so `extra_petitions` ride the same exchange; the
    /// returned outcome contains their deliveries, processed by the caller
    /// *after* the tags are applied.
    fn tag_wave(
        &mut self,
        planned: Vec<PlannedExchange>,
        extra_petitions: Vec<Envelope<()>>,
    ) -> crate::fabric::ExchangeOutcome<()> {
        let mut msgs: Vec<Envelope<()>> = planned
            .iter()
            .map(|p| Envelope {
                to: p.host,
                from: p.q,
                ldf_key: self.expiry(p.q),
                high_priority: true,
                payload: (),
            })
            .collect();
        msgs.extend(extra_petitions);
        let out = self.fabric.exchange(msgs);
        let front = self.state.front();
        for p in planned {
            debug_assert_eq!(self.state.occupant(p.host, front), Some(p.r));
            self.state.unassign(p.r);
            self.state.assign(p.r, p.target, p.slot);
            self.state.assign(p.q, p.host, front);
        }
        out
    }
}

impl OnlineScheduler for ALocalEager {
    fn name(&self) -> &str {
        "A_local_eager"
    }

    fn set_fault_plan(&mut self, plan: Arc<FaultPlan>) {
        self.fabric.set_fault_plan(Arc::clone(&plan));
        self.state.set_fault_plan(plan);
    }

    fn on_round(&mut self, round: Round, arrivals: &[Request]) -> Vec<Service> {
        assert_eq!(round, self.state.front(), "rounds must be consecutive");
        self.fabric.begin_round(round);
        for req in arrivals {
            self.state.insert(req);
        }

        // Phase 1: all unscheduled live requests probe both alternatives.
        let unscheduled = self.state.unassigned();
        if !unscheduled.is_empty() {
            let failed = self.probe_wave(&unscheduled, 0);
            if !failed.is_empty() {
                self.probe_wave(&failed, 1);
            }
        }

        // Phase 2: pull future reservations into free current slots.
        self.pull_forward();

        // Phase 3: rival exchanges — ≤ 5 communication rounds.
        // CR1: attempt-1 petitions; CR2: attempt-1 take-requests;
        // CR3: attempt-1 tags *merged with* attempt-2 petitions (the
        // paper's overlap that keeps the total at 9);
        // CR4: attempt-2 take-requests; CR5: attempt-2 tags.
        let mut reserved = std::collections::BTreeSet::new();
        let qs = self.state.unassigned();
        if !qs.is_empty() {
            let out = self.fabric.exchange(self.petition_msgs(&qs, 0)); // CR1
            let (nominations, mut losers) = self.process_petitions(&out);
            let (planned, more) = self.take_wave(nominations, &mut reserved); // CR2
            losers.extend(more);
            losers.sort_unstable();
            losers.dedup();
            let losers: Vec<RequestId> = losers
                .into_iter()
                .filter(|&id| self.state.live(id).is_some_and(|l| l.assigned().is_none()))
                .collect();
            if !planned.is_empty() || !losers.is_empty() {
                let petitions2 = self.petition_msgs(&losers, 1);
                let out2 = self.tag_wave(planned, petitions2); // CR3
                let (nominations2, _) = self.process_petitions(&out2);
                let (planned2, _) = self.take_wave(nominations2, &mut reserved); // CR4
                if !planned2.is_empty() {
                    self.tag_wave(planned2, Vec::new()); // CR5
                }
            }
        }

        self.state.finish_round().served
    }

    fn comm_rounds_total(&self) -> u64 {
        self.fabric.comm_rounds()
    }

    fn messages_total(&self) -> u64 {
        self.fabric.messages()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reqsched_model::{Instance, TraceBuilder};

    fn run(s: &mut dyn OnlineScheduler, inst: &Instance) -> usize {
        (0..inst.horizon().get())
            .map(|t| s.on_round(Round(t), inst.trace.arrivals_at(Round(t))).len())
            .sum()
    }

    #[test]
    fn serves_simple_load_fully() {
        let mut b = TraceBuilder::new(2);
        for _ in 0..4 {
            b.push(0u64, 0u32, 1u32);
        }
        let inst = Instance::new(2, 2, b.build());
        let mut a = ALocalEager::new(2, 2);
        assert_eq!(run(&mut a, &inst), 4);
    }

    #[test]
    fn pull_forward_fills_current_slots() {
        // Round 0: two requests (S0|S1); both land on S0 via first-alt
        // probing (rounds 0 and 1). Phase 2 must pull one onto S1's free
        // current slot so both are served by round 1.
        let mut b = TraceBuilder::new(2);
        b.push(0u64, 0u32, 1u32);
        b.push(0u64, 0u32, 1u32);
        let inst = Instance::new(2, 2, b.build());
        let mut a = ALocalEager::new(2, 2);
        let served0 = a.on_round(Round(0), inst.trace.arrivals_at(Round(0)));
        assert_eq!(served0.len(), 2, "both current slots used in round 0");
    }

    #[test]
    fn survives_the_local_fix_killer() {
        // Theorem 3.7's input: A_local_fix gets ratio 2; A_local_eager's
        // phases 2 and 3 must recover at least some of R3.
        let d = 4u32;
        let mut b = TraceBuilder::new(d);
        for _ in 0..d {
            b.push(0u64, 0u32, 1u32); // R1
        }
        for _ in 0..d {
            b.push(0u64, 2u32, 3u32); // R2
        }
        for _ in 0..2 * d {
            b.push(0u64, 0u32, 2u32); // R3
        }
        let inst = Instance::new(4, d, b.build());
        let mut eager = ALocalEager::new(4, d);
        let eager_served = run(&mut eager, &inst);
        let mut fix = crate::ALocalFix::new(4, d);
        let fix_served = run(&mut fix, &inst);
        assert!(fix_served <= 2 * d as usize + 1);
        assert!(
            eager_served > fix_served,
            "eager {eager_served} vs fix {fix_served}"
        );
        // 5/3-competitiveness on this input: OPT = 4d.
        assert!(
            4 * d as usize <= (eager_served * 5).div_ceil(3),
            "ratio above 5/3: served {eager_served} of {}",
            4 * d
        );
    }

    #[test]
    fn comm_rounds_bounded_by_nine_per_round() {
        let d = 3u32;
        let mut b = TraceBuilder::new(d);
        for _ in 0..3 * d {
            b.push(0u64, 0u32, 1u32);
        }
        for _ in 0..2 * d {
            b.push(0u64, 1u32, 2u32);
        }
        let inst = Instance::new(3, d, b.build());
        let mut a = ALocalEager::new(3, d);
        let mut last = 0;
        for t in 0..inst.horizon().get() {
            a.on_round(Round(t), inst.trace.arrivals_at(Round(t)));
            let used = a.comm_rounds_total() - last;
            assert!(used <= 9, "round {t} used {used} comm rounds");
            last = a.comm_rounds_total();
        }
    }

    #[test]
    fn crashed_first_alternative_degrades_immediately() {
        use std::sync::Arc;
        // S0 down for good: the synchronous timeout folds the lost probe
        // into the second-alternative wave of the same round, so the
        // request lands on S1 in its arrival round (latest-fit slot).
        let mut b = TraceBuilder::new(2);
        b.push(0u64, 0u32, 1u32);
        let inst = Instance::new(2, 2, b.build());
        let mut a = ALocalEager::new(2, 2);
        let plan = reqsched_faults::FaultPlan::empty(2).with_crash(
            ResourceId(0),
            Round(0),
            Round(u64::MAX),
        );
        a.set_fault_plan(Arc::new(plan));
        let mut services = Vec::new();
        for t in 0..inst.horizon().get() {
            services.extend(a.on_round(Round(t), inst.trace.arrivals_at(Round(t))));
        }
        assert_eq!(services.len(), 1);
        assert_eq!(services[0].resource, ResourceId(1));
    }

    #[test]
    fn stalled_current_slot_is_never_granted() {
        use std::sync::Arc;
        // S1's round-0 slot is stalled: the pull-forward and rival phases
        // must not grant it, and phase 1's latest-fit must place around it.
        let mut b = TraceBuilder::new(2);
        b.push(0u64, 0u32, 1u32);
        b.push(0u64, 0u32, 1u32);
        let inst = Instance::new(2, 2, b.build());
        let mut a = ALocalEager::new(2, 2);
        let plan = reqsched_faults::FaultPlan::empty(2).with_stall(ResourceId(1), Round(0));
        a.set_fault_plan(Arc::new(plan));
        let mut served = 0;
        for t in 0..inst.horizon().get() {
            for s in a.on_round(Round(t), inst.trace.arrivals_at(Round(t))) {
                // Services emitted at round t were served in slot (res, t).
                assert!(
                    !(s.resource == ResourceId(1) && t == 0),
                    "stalled slot was granted"
                );
                served += 1;
            }
        }
        assert_eq!(served, 2, "three usable slots remain for two requests");
    }

    #[test]
    fn empty_fault_plan_changes_nothing() {
        use std::sync::Arc;
        let d = 4u32;
        let mut b = TraceBuilder::new(d);
        for _ in 0..d {
            b.push(0u64, 0u32, 1u32);
        }
        for _ in 0..d {
            b.push(0u64, 2u32, 3u32);
        }
        for _ in 0..2 * d {
            b.push(0u64, 0u32, 2u32);
        }
        let inst = Instance::new(4, d, b.build());
        let mut plain = ALocalEager::new(4, d);
        let mut faulty = ALocalEager::new(4, d);
        faulty.set_fault_plan(Arc::new(reqsched_faults::FaultPlan::empty(4)));
        for t in 0..inst.horizon().get() {
            let a = plain.on_round(Round(t), inst.trace.arrivals_at(Round(t)));
            let b = faulty.on_round(Round(t), inst.trace.arrivals_at(Round(t)));
            assert_eq!(a, b, "round {t}");
        }
        assert_eq!(plain.messages_total(), faulty.messages_total());
        assert_eq!(plain.comm_rounds_total(), faulty.comm_rounds_total());
    }

    #[test]
    fn rival_exchange_recovers_an_order_two_path() {
        // Construct the exact order-2 situation of Theorem 3.8's proof:
        // r occupies S0's current slot, could also run on S1 (free later);
        // q can only use S0. The exchange must move r to S1 and serve q now.
        let mut b = TraceBuilder::new(2);
        b.push(0u64, 0u32, 1u32); // r: (S0|S1)
        b.push(0u64, 0u32, 2u32); // q: (S0|S2) — S2 kept busy below
        b.push(0u64, 2u32, 3u32); // filler occupying S2 now
        b.push(0u64, 2u32, 3u32); // filler occupying S2 later + S3
        b.push(0u64, 2u32, 3u32); // filler: S3
        b.push(0u64, 2u32, 3u32); // filler: S3
        let inst = Instance::new(4, 2, b.build());
        let mut a = ALocalEager::new(4, 2);
        let served = run(&mut a, &inst);
        assert_eq!(served, 6, "everything can and must be served");
    }
}
