//! `A_local_fix`: the two-communication-round local variant of `A_fix`
//! (paper §3.2, Theorem 3.7 — exactly 2-competitive).
//!
//! * **Communication round 1** — every newly injected request is sent to its
//!   *first* alternative. Each resource accepts a maximal selection into its
//!   free slots (LDF admission under the bandwidth cap, latest-fit
//!   placement) and rejects the rest.
//! * **Communication round 2** — every failed request (bandwidth-bounced or
//!   capacity-rejected) is sent to its *second* alternative, which accepts a
//!   maximal selection likewise.
//!
//! Requests failing both rounds are permanently lost, as in `A_fix`: their
//! feasible slots were all occupied at arrival and assignments are never
//! revoked.

use crate::fabric::{accept_latest_fit, CommFabric, Envelope};
use reqsched_core::{OnlineScheduler, ScheduleState, Service};
use reqsched_model::{Request, RequestId, Round};

/// The `A_local_fix` strategy. See module docs.
pub struct ALocalFix {
    state: ScheduleState,
    fabric: CommFabric,
}

impl ALocalFix {
    /// Create an `A_local_fix` scheduler for `n` resources and deadline `d`
    /// (bandwidth cap = `d`, the paper's model).
    pub fn new(n: u32, d: u32) -> ALocalFix {
        ALocalFix::with_fabric(n, d, CommFabric::new(n, d as usize))
    }

    /// Create an `A_local_fix` scheduler over a custom fabric (e.g. the
    /// crossbeam-threaded one from [`CommFabric::new_threaded`]).
    pub fn with_fabric(n: u32, d: u32, fabric: CommFabric) -> ALocalFix {
        ALocalFix {
            state: ScheduleState::new(n, d),
            fabric,
        }
    }

    /// One probe wave: send each request to `alternatives[alt]`, accept
    /// per-resource maximal selections. Returns the requests that failed.
    fn probe_wave(&mut self, ids: &[RequestId], alt: usize) -> Vec<RequestId> {
        let msgs: Vec<Envelope<()>> = ids
            .iter()
            .map(|&id| {
                // lint: ids flow straight from this round's live set
                let req = &self.state.live(id).expect("live").req;
                assert!(
                    req.alternatives.len() == 2,
                    "local strategies need two-choice requests"
                );
                Envelope {
                    to: req.alternatives.as_slice()[alt],
                    from: id,
                    ldf_key: req.expiry(),
                    high_priority: false,
                    payload: (),
                }
            })
            .collect();
        let out = self.fabric.exchange(msgs);
        let mut failed: Vec<RequestId> = out.bounced.iter().map(|e| e.from).collect();
        for (i, inbox) in out.per_resource.iter().enumerate() {
            if inbox.is_empty() {
                continue;
            }
            let delivered: Vec<(RequestId, Round)> =
                inbox.iter().map(|e| (e.from, e.ldf_key)).collect();
            let (_, rejected) = accept_latest_fit(
                &mut self.state,
                reqsched_model::ResourceId(i as u32),
                &delivered,
            );
            failed.extend(rejected);
        }
        failed.sort_unstable();
        failed
    }
}

impl OnlineScheduler for ALocalFix {
    fn name(&self) -> &str {
        "A_local_fix"
    }

    fn on_round(&mut self, round: Round, arrivals: &[Request]) -> Vec<Service> {
        assert_eq!(round, self.state.front(), "rounds must be consecutive");
        for req in arrivals {
            self.state.insert(req);
        }
        let mut new_ids: Vec<RequestId> = arrivals.iter().map(|r| r.id).collect();
        new_ids.sort_unstable();

        if !new_ids.is_empty() {
            let failed = self.probe_wave(&new_ids, 0); // CR 1
            let failed = self.probe_wave(&failed, 1); // CR 2
            for id in failed {
                self.state.drop_request(id); // permanently lost, as in A_fix
            }
        }
        self.state.finish_round().served
    }

    fn comm_rounds_total(&self) -> u64 {
        self.fabric.comm_rounds()
    }

    fn messages_total(&self) -> u64 {
        self.fabric.messages()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reqsched_model::{Instance, TraceBuilder};

    fn run(s: &mut dyn OnlineScheduler, inst: &Instance) -> usize {
        (0..inst.horizon().get())
            .map(|t| s.on_round(Round(t), inst.trace.arrivals_at(Round(t))).len())
            .sum()
    }

    #[test]
    fn uses_two_comm_rounds_per_busy_round() {
        let mut b = TraceBuilder::new(2);
        // Force a CR2: three requests all first-alt S0 (only 2 slots there).
        b.push(0u64, 0u32, 1u32);
        b.push(0u64, 0u32, 1u32);
        b.push(0u64, 0u32, 1u32);
        let inst = Instance::new(2, 2, b.build());
        let mut a = ALocalFix::new(2, 2);
        let served = run(&mut a, &inst);
        assert_eq!(served, 3);
        assert_eq!(a.comm_rounds_total(), 2);
        assert_eq!(a.messages_total(), 3 + 1);
    }

    #[test]
    fn second_alternative_rescues_overflow() {
        // d requests first-alt S0 plus d more first-alt S0: the overflow
        // lands on S1 via CR2.
        let d = 3u32;
        let mut b = TraceBuilder::new(d);
        for _ in 0..2 * d {
            b.push(0u64, 0u32, 1u32);
        }
        let inst = Instance::new(2, d, b.build());
        let mut a = ALocalFix::new(2, d);
        assert_eq!(run(&mut a, &inst), 2 * d as usize);
    }

    #[test]
    fn bandwidth_cap_limits_intake() {
        // 3d requests aimed first at S0 with second alternative S1: CR1
        // delivers only d (cap), accepts d; CR2 gets the other 2d (cap d
        // again — d bounced twice are lost... they were bounced in CR1 and
        // sent to S1 in CR2, where the cap admits d and S1 accepts d.
        let d = 2u32;
        let mut b = TraceBuilder::new(d);
        for _ in 0..3 * d {
            b.push(0u64, 0u32, 1u32);
        }
        let inst = Instance::new(2, d, b.build());
        let mut a = ALocalFix::new(2, d);
        let served = run(&mut a, &inst);
        assert_eq!(served, 2 * d as usize, "both resources fill, rest lost");
    }

    #[test]
    fn no_retry_across_rounds() {
        // One pair saturated in round 0; a failed request is NOT retried in
        // round 1 even though nothing else arrives.
        let d = 1u32;
        let mut b = TraceBuilder::new(d);
        b.push(0u64, 0u32, 1u32);
        b.push(0u64, 0u32, 1u32);
        b.push(0u64, 0u32, 1u32); // fails both alternatives
        let inst = Instance::new(2, d, b.build());
        let mut a = ALocalFix::new(2, d);
        assert_eq!(run(&mut a, &inst), 2);
    }
}
