//! `A_local_fix`: the two-communication-round local variant of `A_fix`
//! (paper §3.2, Theorem 3.7 — exactly 2-competitive).
//!
//! * **Communication round 1** — every newly injected request is sent to its
//!   *first* alternative. Each resource accepts a maximal selection into its
//!   free slots (LDF admission under the bandwidth cap, latest-fit
//!   placement) and rejects the rest.
//! * **Communication round 2** — every failed request (bandwidth-bounced or
//!   capacity-rejected) is sent to its *second* alternative, which accepts a
//!   maximal selection likewise.
//!
//! Requests failing both rounds are permanently lost, as in `A_fix`: their
//! feasible slots were all occupied at arrival and assignments are never
//! revoked.
//!
//! # Fault handling
//!
//! A bounce or a rejection is an explicit NACK: the protocol reacts to it
//! immediately (second alternative, then permanent loss), exactly as
//! before. A **lost** envelope produces no response at all; the sender's
//! local timeout re-sends it to the same alternative with exponential
//! backoff (`1, 2, 4` rounds). After [`MAX_PROBE_ATTEMPTS`] silent losses
//! the alternative is presumed crashed and the request fails over to its
//! other alternative (fresh backoff); if that one is silent too, the
//! request is dropped. Without a fault plan no envelope is ever lost and
//! the strategy is bit-identical to the fault-free implementation.

use crate::fabric::{accept_latest_fit, CommFabric, Envelope};
use reqsched_core::{OnlineScheduler, ScheduleState, Service};
use reqsched_faults::FaultPlan;
use reqsched_model::{Request, RequestId, Round};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Probe re-sends tolerated per alternative before the sender presumes the
/// resource crashed (fails over, or gives up on the second alternative).
pub const MAX_PROBE_ATTEMPTS: u32 = 3;

/// A probe whose envelope the fabric lost: the sender's local timeout
/// re-sends it after an exponential backoff.
struct Retry {
    /// Round at which the re-send fires.
    due: Round,
    /// The probing request.
    id: RequestId,
    /// Which alternative the probe targets.
    alt: usize,
    /// How many sends to this alternative have been lost so far.
    attempt: u32,
}

/// The `A_local_fix` strategy. See module docs.
pub struct ALocalFix {
    state: ScheduleState,
    fabric: CommFabric,
    retries: Vec<Retry>,
}

impl ALocalFix {
    /// Create an `A_local_fix` scheduler for `n` resources and deadline `d`
    /// (bandwidth cap = `d`, the paper's model).
    pub fn new(n: u32, d: u32) -> ALocalFix {
        ALocalFix::with_fabric(n, d, CommFabric::new(n, d as usize))
    }

    /// Create an `A_local_fix` scheduler over a custom fabric (e.g. the
    /// crossbeam-threaded one from [`CommFabric::new_threaded`]).
    pub fn with_fabric(n: u32, d: u32, fabric: CommFabric) -> ALocalFix {
        ALocalFix {
            state: ScheduleState::new(n, d),
            fabric,
            retries: Vec::new(),
        }
    }

    /// One probe wave: send each request to `alternatives[alt]`, accept
    /// per-resource maximal selections. Returns `(failed, lost)`: requests
    /// that got a NACK (bounced or rejected), and requests whose envelope
    /// vanished in the fabric (no response of any kind).
    fn probe_wave(&mut self, ids: &[RequestId], alt: usize) -> (Vec<RequestId>, Vec<RequestId>) {
        let msgs: Vec<Envelope<()>> = ids
            .iter()
            .map(|&id| {
                // lint: ids flow straight from this round's live set
                let req = self.state.live(id).expect("live");
                assert!(
                    req.alternatives().len() == 2,
                    "local strategies need two-choice requests"
                );
                Envelope {
                    to: req.alternatives().as_slice()[alt],
                    from: id,
                    ldf_key: req.expiry(),
                    high_priority: false,
                    payload: (),
                }
            })
            .collect();
        let out = self.fabric.exchange(msgs);
        let mut failed: Vec<RequestId> = out.bounced.iter().map(|e| e.from).collect();
        for (i, inbox) in out.per_resource.iter().enumerate() {
            if inbox.is_empty() {
                continue;
            }
            let delivered: Vec<(RequestId, Round)> =
                inbox.iter().map(|e| (e.from, e.ldf_key)).collect();
            let (_, rejected) = accept_latest_fit(
                &mut self.state,
                reqsched_model::ResourceId(i as u32),
                &delivered,
            );
            failed.extend(rejected);
        }
        failed.sort_unstable();
        let mut lost: Vec<RequestId> = out.lost.iter().map(|e| e.from).collect();
        lost.sort_unstable();
        (failed, lost)
    }

    /// Schedule backoff re-sends for requests whose probe was lost, failing
    /// over to the other alternative once `alt` has soaked up
    /// [`MAX_PROBE_ATTEMPTS`] losses, and dropping requests that are out of
    /// attempts or out of time.
    fn schedule_retries(
        &mut self,
        round: Round,
        lost: Vec<RequestId>,
        alt: usize,
        attempts: &BTreeMap<RequestId, (usize, u32)>,
    ) {
        for id in lost {
            let Some(live) = self.state.live(id) else {
                continue;
            };
            let expiry = live.expiry();
            // The attempt budget is per alternative: a NACK-driven switch
            // to the second alternative starts counting afresh.
            let attempt = match attempts.get(&id) {
                Some(&(a, k)) if a == alt => k + 1,
                _ => 1,
            };
            if attempt > MAX_PROBE_ATTEMPTS {
                if alt == 0 {
                    // The first alternative is presumed crashed: fail over
                    // to the second one with a fresh backoff budget.
                    if round.next() <= expiry {
                        self.retries.push(Retry {
                            due: round.next(),
                            id,
                            alt: 1,
                            attempt: 0,
                        });
                        continue;
                    }
                }
                self.state.drop_request(id);
                continue;
            }
            let due = Round(round.get() + (1u64 << (attempt - 1)));
            if due > expiry {
                self.state.drop_request(id); // backoff overshoots the deadline
            } else {
                self.retries.push(Retry {
                    due,
                    id,
                    alt,
                    attempt,
                });
            }
        }
    }
}

impl OnlineScheduler for ALocalFix {
    fn name(&self) -> &str {
        "A_local_fix"
    }

    fn set_fault_plan(&mut self, plan: Arc<FaultPlan>) {
        self.fabric.set_fault_plan(Arc::clone(&plan));
        self.state.set_fault_plan(plan);
    }

    fn on_round(&mut self, round: Round, arrivals: &[Request]) -> Vec<Service> {
        assert_eq!(round, self.state.front(), "rounds must be consecutive");
        self.fabric.begin_round(round);
        for req in arrivals {
            self.state.insert(req);
        }
        let mut wave1: Vec<RequestId> = arrivals.iter().map(|r| r.id).collect();

        // Fire due local timeouts: each maps a request to the alternative it
        // re-probes and the number of losses that alternative has cost it.
        let mut attempts: BTreeMap<RequestId, (usize, u32)> = BTreeMap::new();
        if !self.retries.is_empty() {
            let mut pending = Vec::new();
            for r in self.retries.drain(..) {
                if r.due > round {
                    pending.push(r);
                } else if self
                    .state
                    .live(r.id)
                    .is_some_and(|l| l.assigned().is_none())
                {
                    attempts.insert(r.id, (r.alt, r.attempt));
                }
            }
            self.retries = pending;
        }
        let mut wave2_extra: Vec<RequestId> = Vec::new();
        for (&id, &(alt, _)) in &attempts {
            if alt == 0 {
                wave1.push(id);
            } else {
                wave2_extra.push(id);
            }
        }
        wave1.sort_unstable();

        if !wave1.is_empty() || !wave2_extra.is_empty() {
            let (failed, lost) = self.probe_wave(&wave1, 0); // CR 1
            self.schedule_retries(round, lost, 0, &attempts);
            let mut wave2 = failed;
            wave2.extend(wave2_extra);
            wave2.sort_unstable();
            let (failed, lost) = self.probe_wave(&wave2, 1); // CR 2
            self.schedule_retries(round, lost, 1, &attempts);
            for id in failed {
                self.state.drop_request(id); // permanently lost, as in A_fix
            }
        }
        self.state.finish_round().served
    }

    fn comm_rounds_total(&self) -> u64 {
        self.fabric.comm_rounds()
    }

    fn messages_total(&self) -> u64 {
        self.fabric.messages()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reqsched_model::{Instance, TraceBuilder};

    fn run(s: &mut dyn OnlineScheduler, inst: &Instance) -> usize {
        (0..inst.horizon().get())
            .map(|t| s.on_round(Round(t), inst.trace.arrivals_at(Round(t))).len())
            .sum()
    }

    #[test]
    fn uses_two_comm_rounds_per_busy_round() {
        let mut b = TraceBuilder::new(2);
        // Force a CR2: three requests all first-alt S0 (only 2 slots there).
        b.push(0u64, 0u32, 1u32);
        b.push(0u64, 0u32, 1u32);
        b.push(0u64, 0u32, 1u32);
        let inst = Instance::new(2, 2, b.build());
        let mut a = ALocalFix::new(2, 2);
        let served = run(&mut a, &inst);
        assert_eq!(served, 3);
        assert_eq!(a.comm_rounds_total(), 2);
        assert_eq!(a.messages_total(), 3 + 1);
    }

    #[test]
    fn second_alternative_rescues_overflow() {
        // d requests first-alt S0 plus d more first-alt S0: the overflow
        // lands on S1 via CR2.
        let d = 3u32;
        let mut b = TraceBuilder::new(d);
        for _ in 0..2 * d {
            b.push(0u64, 0u32, 1u32);
        }
        let inst = Instance::new(2, d, b.build());
        let mut a = ALocalFix::new(2, d);
        assert_eq!(run(&mut a, &inst), 2 * d as usize);
    }

    #[test]
    fn bandwidth_cap_limits_intake() {
        // 3d requests aimed first at S0 with second alternative S1: CR1
        // delivers only d (cap), accepts d; CR2 gets the other 2d (cap d
        // again — d bounced twice are lost... they were bounced in CR1 and
        // sent to S1 in CR2, where the cap admits d and S1 accepts d.
        let d = 2u32;
        let mut b = TraceBuilder::new(d);
        for _ in 0..3 * d {
            b.push(0u64, 0u32, 1u32);
        }
        let inst = Instance::new(2, d, b.build());
        let mut a = ALocalFix::new(2, d);
        let served = run(&mut a, &inst);
        assert_eq!(served, 2 * d as usize, "both resources fill, rest lost");
    }

    #[test]
    fn lost_probes_retry_with_exponential_backoff() {
        use reqsched_faults::FabricFaults;
        use std::sync::Arc;
        // Total loss: the lone request's probes all vanish. The initial
        // send at round 0 is followed by backoff re-sends at rounds 1, 3
        // and 7; the failover to the second alternative would fire at
        // round 8, past the deadline (expiry 7), so the request drops.
        let d = 8u32;
        let mut b = TraceBuilder::new(d);
        b.push(0u64, 0u32, 1u32);
        let inst = Instance::new(2, d, b.build());
        let mut a = ALocalFix::new(2, d);
        let plan = reqsched_faults::FaultPlan::empty(2).with_fabric(FabricFaults {
            loss: 1.0,
            delay: 0.0,
            duplication: 0.0,
            seed: 5,
        });
        a.set_fault_plan(Arc::new(plan));
        let served: usize = (0..u64::from(d) + 1)
            .map(|t| a.on_round(Round(t), inst.trace.arrivals_at(Round(t))).len())
            .sum();
        assert_eq!(served, 0, "a fully lossy fabric serves nothing");
        // Sends: round 0 (initial), then backoff re-sends at 1, 3, 7.
        assert_eq!(a.messages_total(), 4);
    }

    #[test]
    fn crashed_first_alternative_fails_over_to_the_second() {
        use std::sync::Arc;
        // S0 is down for good; the probe envelopes to it are lost (no
        // NACK). After MAX_PROBE_ATTEMPTS silent losses the request fails
        // over to S1 and is served there.
        let d = 12u32;
        let mut b = TraceBuilder::new(d);
        b.push(0u64, 0u32, 1u32);
        let inst = Instance::new(2, d, b.build());
        let mut a = ALocalFix::new(2, d);
        let plan = reqsched_faults::FaultPlan::empty(2).with_crash(
            reqsched_model::ResourceId(0),
            Round(0),
            Round(u64::MAX),
        );
        a.set_fault_plan(Arc::new(plan));
        let served: usize = (0..u64::from(d))
            .map(|t| a.on_round(Round(t), inst.trace.arrivals_at(Round(t))).len())
            .sum();
        assert_eq!(served, 1, "request degrades to the surviving replica");
    }

    #[test]
    fn empty_fault_plan_changes_nothing() {
        use std::sync::Arc;
        let d = 3u32;
        let mut b = TraceBuilder::new(d);
        for _ in 0..3 * d {
            b.push(0u64, 0u32, 1u32);
        }
        let inst = Instance::new(2, d, b.build());
        let mut plain = ALocalFix::new(2, d);
        let mut faulty = ALocalFix::new(2, d);
        faulty.set_fault_plan(Arc::new(reqsched_faults::FaultPlan::empty(2)));
        for t in 0..inst.horizon().get() {
            let a = plain.on_round(Round(t), inst.trace.arrivals_at(Round(t)));
            let b = faulty.on_round(Round(t), inst.trace.arrivals_at(Round(t)));
            assert_eq!(a, b, "round {t}");
        }
        assert_eq!(plain.messages_total(), faulty.messages_total());
        assert_eq!(plain.comm_rounds_total(), faulty.comm_rounds_total());
    }

    #[test]
    fn no_retry_across_rounds() {
        // One pair saturated in round 0; a failed request is NOT retried in
        // round 1 even though nothing else arrives.
        let d = 1u32;
        let mut b = TraceBuilder::new(d);
        b.push(0u64, 0u32, 1u32);
        b.push(0u64, 0u32, 1u32);
        b.push(0u64, 0u32, 1u32); // fails both alternatives
        let inst = Instance::new(2, d, b.build());
        let mut a = ALocalFix::new(2, d);
        assert_eq!(run(&mut a, &inst), 2);
    }
}
