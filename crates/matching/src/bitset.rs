//! Word-parallel bit sets for the matching hot path.
//!
//! Every augmenting search in this crate tracks "have I seen this vertex
//! yet?" and the dynamic engine additionally tracks liveness, dirtiness and
//! failure-trap membership per vertex. Those masks were `Vec<bool>` — one
//! byte per flag, cleared element-wise. A [`BitSet`] packs them 64 per
//! `u64` word, so clearing, growing, and the bulk queries the delta engine
//! performs at column retirement become whole-word operations
//! (`AND`/`ANDNOT`/`trailing_zeros`) instead of per-slot branches.
//!
//! Semantics are exactly those of the `Vec<bool>` they replace: a set is a
//! fixed-length sequence of bits, all-zero after [`BitSet::reset`], growable
//! in place with [`BitSet::grow`] (new bits zero, old bits kept). The
//! matching algorithms only ever need membership tests and single-bit
//! updates on the search path itself — the word-parallel wins are in the
//! maintenance operations (mask clears between searches, scans for set
//! bits at retirement) that used to be `O(len)` byte loops.
//!
//! Layout: bit `i` lives in word `i / 64` at position `i % 64` (LSB first),
//! so [`BitSet::iter_ones`] yields indices in increasing order via
//! `trailing_zeros` — the same ascending order the previous element-wise
//! scans produced, which matters because callers use that order for
//! deterministic tie-breaking.

/// A growable, fixed-semantics bit set over `u64` words. See module docs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    /// Number of addressable bits. Bits `len..` of the last word are zero.
    len: usize,
}

const WORD_BITS: usize = 64;

#[inline]
fn words_for(len: usize) -> usize {
    len.div_ceil(WORD_BITS)
}

impl BitSet {
    /// An empty set; grows on first use.
    pub fn new() -> BitSet {
        BitSet::default()
    }

    /// A set of `len` bits, all zero.
    pub fn with_len(len: usize) -> BitSet {
        BitSet {
            words: vec![0; words_for(len)],
            len,
        }
    }

    /// Number of addressable bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff the set addresses no bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Resize to exactly `len` bits, **all zero** (the word-parallel
    /// equivalent of `buf.clear(); buf.resize(len, false)`).
    pub fn reset(&mut self, len: usize) {
        let n = words_for(len);
        self.words.clear();
        self.words.resize(n, 0);
        self.len = len;
    }

    /// Grow to at least `len` bits, keeping existing bits (the equivalent
    /// of `buf.resize(len, false)` when `len >= buf.len()`). Shrinking
    /// requests are ignored.
    pub fn grow(&mut self, len: usize) {
        if len > self.len {
            self.words.resize(words_for(len), 0);
            self.len = len;
        }
    }

    /// Zero every bit, keeping the length.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Membership test for bit `i`.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / WORD_BITS] & (1u64 << (i % WORD_BITS)) != 0
    }

    /// Set bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
    }

    /// Clear bit `i`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / WORD_BITS] &= !(1u64 << (i % WORD_BITS));
    }

    /// Set bit `i`, returning whether it was previously clear — the fused
    /// `if !visited[i] { visited[i] = true; … }` test the searches run per
    /// edge.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len, "bit {i} out of range {}", self.len);
        let w = &mut self.words[i / WORD_BITS];
        let mask = 1u64 << (i % WORD_BITS);
        let fresh = *w & mask == 0;
        *w |= mask;
        fresh
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Indices of set bits in increasing order (`trailing_zeros` walk).
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// The backing words (LSB-first layout; see module docs).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

/// Iterator over set-bit indices, ascending. See [`BitSet::iter_ones`].
pub struct IterOnes<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1; // drop lowest set bit
        Some(self.word_idx * WORD_BITS + bit)
    }
}

/// A dense 2-D bit matrix: `rows` rows of `cols` bits each, every row
/// starting on a word boundary so per-row scans are word-aligned.
///
/// Used for per-resource occupancy masks (e.g. the EDF bucket scan: row =
/// resource, bit = "bucket non-empty"), where each row is scanned with the
/// same `trailing_zeros` walk as [`BitSet::iter_ones`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BitMatrix {
    words: Vec<u64>,
    rows: usize,
    cols: usize,
    words_per_row: usize,
}

impl BitMatrix {
    /// A matrix of `rows × cols` bits, all zero.
    pub fn new(rows: usize, cols: usize) -> BitMatrix {
        let words_per_row = words_for(cols);
        BitMatrix {
            words: vec![0; rows * words_per_row],
            rows,
            cols,
            words_per_row,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (bits per row).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Resize to `rows × cols`, **all zero**.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.words_per_row = words_for(cols);
        self.rows = rows;
        self.cols = cols;
        self.words.clear();
        self.words.resize(rows * self.words_per_row, 0);
    }

    #[inline]
    fn idx(&self, row: usize, col: usize) -> usize {
        debug_assert!(row < self.rows, "row {row} out of range {}", self.rows);
        debug_assert!(col < self.cols, "col {col} out of range {}", self.cols);
        row * self.words_per_row + col / WORD_BITS
    }

    /// Membership test for `(row, col)`.
    #[inline]
    pub fn contains(&self, row: usize, col: usize) -> bool {
        self.words[self.idx(row, col)] & (1u64 << (col % WORD_BITS)) != 0
    }

    /// Set bit `(row, col)`.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize) {
        let i = self.idx(row, col);
        self.words[i] |= 1u64 << (col % WORD_BITS);
    }

    /// Clear bit `(row, col)`.
    #[inline]
    pub fn clear(&mut self, row: usize, col: usize) {
        let i = self.idx(row, col);
        self.words[i] &= !(1u64 << (col % WORD_BITS));
    }

    /// The words of one row (word-aligned; see [`BitSet::words`] layout).
    #[inline]
    pub fn row_words(&self, row: usize) -> &[u64] {
        let lo = row * self.words_per_row;
        &self.words[lo..lo + self.words_per_row]
    }

    /// Lowest set column of `row` at or after `from`, wrapping to the start
    /// if nothing is set in `from..cols` — the circular-buffer scan the EDF
    /// bucket ring performs. Returns `None` if the row is all-zero.
    ///
    /// Two masked word walks (the `from..` suffix, then the `..from`
    /// prefix), each a `trailing_zeros` per non-zero word.
    pub fn first_one_circular(&self, row: usize, from: usize) -> Option<usize> {
        debug_assert!(from < self.cols.max(1));
        let words = self.row_words(row);
        let start_word = from / WORD_BITS;
        // Suffix: mask off bits below `from` in the first word.
        let masked = words[start_word] & (u64::MAX << (from % WORD_BITS));
        if masked != 0 {
            return Some(start_word * WORD_BITS + masked.trailing_zeros() as usize);
        }
        for (k, &w) in words.iter().enumerate().skip(start_word + 1) {
            if w != 0 {
                return Some(k * WORD_BITS + w.trailing_zeros() as usize);
            }
        }
        // Wrap-around prefix: words before `start_word`, then the masked
        // low bits of the start word itself.
        for (k, &w) in words.iter().enumerate().take(start_word) {
            if w != 0 {
                return Some(k * WORD_BITS + w.trailing_zeros() as usize);
            }
        }
        let low = words[start_word] & !(u64::MAX << (from % WORD_BITS));
        if low != 0 {
            return Some(start_word * WORD_BITS + low.trailing_zeros() as usize);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_clear_contains() {
        let mut b = BitSet::with_len(130);
        assert!(!b.contains(0));
        b.set(0);
        b.set(63);
        b.set(64);
        b.set(129);
        assert!(b.contains(0) && b.contains(63) && b.contains(64) && b.contains(129));
        assert!(!b.contains(1) && !b.contains(65));
        b.clear(64);
        assert!(!b.contains(64));
        assert_eq!(b.count_ones(), 3);
    }

    #[test]
    fn insert_reports_freshness() {
        let mut b = BitSet::with_len(10);
        assert!(b.insert(3));
        assert!(!b.insert(3));
        assert!(b.contains(3));
    }

    #[test]
    fn reset_zeroes_and_resizes() {
        let mut b = BitSet::with_len(100);
        b.set(70);
        b.reset(40);
        assert_eq!(b.len(), 40);
        assert_eq!(b.count_ones(), 0);
        b.reset(200);
        assert_eq!(b.len(), 200);
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    fn grow_preserves_bits() {
        let mut b = BitSet::with_len(5);
        b.set(2);
        b.grow(300);
        assert_eq!(b.len(), 300);
        assert!(b.contains(2));
        assert!(!b.contains(299));
        b.grow(10); // shrink request ignored
        assert_eq!(b.len(), 300);
    }

    #[test]
    fn iter_ones_is_ascending_and_matches_vec_bool() {
        let idxs = [0usize, 1, 63, 64, 65, 127, 128, 190];
        let mut b = BitSet::with_len(191);
        let mut v = [false; 191];
        for &i in &idxs {
            b.set(i);
            v[i] = true;
        }
        let from_bits: Vec<usize> = b.iter_ones().collect();
        let from_vec: Vec<usize> = (0..v.len()).filter(|&i| v[i]).collect();
        assert_eq!(from_bits, from_vec);
    }

    #[test]
    fn clear_all_keeps_len() {
        let mut b = BitSet::with_len(77);
        b.set(76);
        b.clear_all();
        assert_eq!(b.len(), 77);
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    fn matrix_rows_independent() {
        let mut m = BitMatrix::new(3, 70);
        m.set(0, 69);
        m.set(1, 0);
        assert!(m.contains(0, 69) && m.contains(1, 0));
        assert!(!m.contains(2, 0) && !m.contains(0, 0));
        m.clear(0, 69);
        assert!(!m.contains(0, 69));
    }

    #[test]
    fn matrix_circular_scan() {
        let mut m = BitMatrix::new(1, 130);
        assert_eq!(m.first_one_circular(0, 0), None);
        m.set(0, 10);
        m.set(0, 120);
        assert_eq!(m.first_one_circular(0, 0), Some(10));
        assert_eq!(m.first_one_circular(0, 10), Some(10));
        assert_eq!(m.first_one_circular(0, 11), Some(120));
        // Wraps past the end back to the low bit.
        assert_eq!(m.first_one_circular(0, 121), Some(10));
        m.clear(0, 10);
        assert_eq!(m.first_one_circular(0, 121), Some(120));
    }

    #[test]
    fn matrix_reset() {
        let mut m = BitMatrix::new(2, 64);
        m.set(1, 63);
        m.reset(4, 100);
        assert_eq!((m.rows(), m.cols()), (4, 100));
        assert!(!m.contains(1, 63));
    }
}
