//! Exponential-time exact solvers, used only to cross-validate the fast
//! algorithms on small graphs (unit and property tests).

use crate::graph::BipartiteGraph;

/// Size of a maximum matching, by exhaustive backtracking over left
/// vertices. Only sensible for tiny graphs (≲ 20 left vertices).
pub fn max_matching_size(g: &BipartiteGraph) -> usize {
    let mut used = vec![false; g.n_right() as usize];
    recurse_size(g, 0, &mut used)
}

fn recurse_size(g: &BipartiteGraph, l: u32, used: &mut [bool]) -> usize {
    if l == g.n_left() {
        return 0;
    }
    // Option 1: leave l unmatched.
    let mut best = recurse_size(g, l + 1, used);
    // Option 2: match l to each free neighbour.
    for &r in g.neighbors(l) {
        if !used[r as usize] {
            used[r as usize] = true;
            best = best.max(1 + recurse_size(g, l + 1, used));
            used[r as usize] = false;
        }
    }
    best
}

/// Lexicographically best per-level right-coverage vector achievable by any
/// **maximum** matching of `g` (level 0 counts first). Exhaustive.
pub fn best_lex_coverage(g: &BipartiteGraph, level: &[u32]) -> Vec<usize> {
    let max_size = max_matching_size(g);
    let n_levels = level.iter().copied().max().map_or(0, |v| v as usize + 1);
    let mut best: Option<Vec<usize>> = None;
    let mut used = vec![false; g.n_right() as usize];
    let mut counts = vec![0usize; n_levels];
    enumerate(g, 0, 0, max_size, level, &mut used, &mut counts, &mut best);
    best.unwrap_or(counts)
}

#[allow(clippy::too_many_arguments)] // lint: recursion carries the full search state by design
fn enumerate(
    g: &BipartiteGraph,
    l: u32,
    size: usize,
    target: usize,
    level: &[u32],
    used: &mut [bool],
    counts: &mut Vec<usize>,
    best: &mut Option<Vec<usize>>,
) {
    if l == g.n_left() {
        if size == target {
            match best {
                None => *best = Some(counts.clone()),
                Some(b) => {
                    if counts.as_slice() > b.as_slice() {
                        *best = Some(counts.clone());
                    }
                }
            }
        }
        return;
    }
    enumerate(g, l + 1, size, target, level, used, counts, best);
    for &r in g.neighbors(l) {
        if !used[r as usize] {
            used[r as usize] = true;
            counts[level[r as usize] as usize] += 1;
            enumerate(g, l + 1, size + 1, target, level, used, counts, best);
            counts[level[r as usize] as usize] -= 1;
            used[r as usize] = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brute_on_trivial_graphs() {
        let g = BipartiteGraph::from_adjacency(2, &[vec![0, 1], vec![0]]);
        assert_eq!(max_matching_size(&g), 2);
        let g2 = BipartiteGraph::from_adjacency(1, &[vec![0], vec![0], vec![0]]);
        assert_eq!(max_matching_size(&g2), 1);
        let g3 = BipartiteGraph::from_adjacency(2, &[vec![], vec![]]);
        assert_eq!(max_matching_size(&g3), 0);
    }

    #[test]
    fn lex_coverage_prefers_level_zero() {
        // One request, two slots; can cover either; must pick level 0.
        let g = BipartiteGraph::from_adjacency(2, &[vec![0, 1]]);
        assert_eq!(best_lex_coverage(&g, &[1, 0]), vec![1, 0]);
    }

    #[test]
    fn lex_coverage_requires_maximum_cardinality() {
        // Covering the level-0 slot alone would strand a request; maximum
        // cardinality is enforced first, so counts are over max matchings.
        // l0: {r0}, l1: {r0, r1}; levels [0, 1]: only max matching is
        // l0->r0, l1->r1 => [1, 1].
        let g = BipartiteGraph::from_adjacency(2, &[vec![0], vec![0, 1]]);
        assert_eq!(best_lex_coverage(&g, &[0, 1]), vec![1, 1]);
    }
}
