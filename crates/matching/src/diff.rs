//! Symmetric-difference decomposition of two matchings — the paper's central
//! proof tool (Section 1.2).
//!
//! For matchings `M₁` (an online algorithm's schedule) and `M₂` (a fixed
//! optimal schedule) in the same graph, `M₁ ⊕ M₂` decomposes into paths and
//! cycles that alternate between the two matchings. Every path whose end
//! edges both belong to `M₂` is an *augmenting path* for `M₁`; the paper
//! measures them by **order** — the number of request (left) vertices on the
//! path — and proves per-strategy lemmas such as "`A_fix` leaves no
//! augmenting path of order 1" and "`A_eager` leaves none of order ≤ 2".
//! Tests in this workspace verify those lemmas hold for the implementations.

use crate::matching::Matching;

/// One alternating component of `M₁ ⊕ M₂`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AltComponent {
    /// An alternating path; `lefts`/`rights` are the distinct vertices on it,
    /// `augmenting_for_m1` is true iff both end edges belong to `M₂` (so
    /// flipping the path would grow `M₁` by one).
    Path {
        lefts: Vec<u32>,
        rights: Vec<u32>,
        augmenting_for_m1: bool,
    },
    /// An alternating cycle (equal numbers of `M₁` and `M₂` edges; flipping
    /// changes assignments but not cardinality).
    Cycle { lefts: Vec<u32>, rights: Vec<u32> },
}

/// Summary of `M₁ ⊕ M₂`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DiffReport {
    /// All components.
    pub components: Vec<AltComponent>,
    /// Orders (number of left vertices) of the augmenting paths for `M₁`,
    /// ascending.
    pub augmenting_orders: Vec<usize>,
}

impl DiffReport {
    /// Number of augmenting paths for `M₁`.
    pub fn n_augmenting(&self) -> usize {
        self.augmenting_orders.len()
    }

    /// Smallest augmenting-path order, if any augmenting path exists.
    pub fn min_order(&self) -> Option<usize> {
        self.augmenting_orders.first().copied()
    }

    /// `|M₂| - |M₁|` equals the number of augmenting paths (sanity identity).
    pub fn cardinality_gap(&self) -> usize {
        self.n_augmenting()
    }
}

/// Decompose the symmetric difference of two matchings over the same vertex
/// sets.
///
/// # Panics
/// Panics if the matchings disagree on vertex-set sizes.
pub fn symmetric_difference(m1: &Matching, m2: &Matching) -> DiffReport {
    assert_eq!(m1.n_left(), m2.n_left(), "left vertex sets differ");
    assert_eq!(m1.n_right(), m2.n_right(), "right vertex sets differ");
    let nl = m1.n_left() as usize;
    let nr = m1.n_right() as usize;

    // Node encoding: 0..nl = left, nl..nl+nr = right.
    let enc_r = |r: u32| nl as u32 + r;
    let n = nl + nr;

    // Each node has at most two incident diff edges: its M1-only edge and
    // its M2-only edge.
    let mut adj: Vec<Vec<u32>> = vec![Vec::with_capacity(2); n];
    for l in 0..nl as u32 {
        let a = m1.left_mate(l);
        let b = m2.left_mate(l);
        if a != b {
            if let Some(r) = a {
                adj[l as usize].push(enc_r(r));
                adj[enc_r(r) as usize].push(l);
            }
            if let Some(r) = b {
                adj[l as usize].push(enc_r(r));
                adj[enc_r(r) as usize].push(l);
            }
        }
    }

    let mut visited = vec![false; n];
    let mut components = Vec::new();
    let mut augmenting_orders = Vec::new();

    // Paths first: start from degree-1 nodes.
    for start in 0..n as u32 {
        if visited[start as usize] || adj[start as usize].len() != 1 {
            continue;
        }
        let nodes = walk(start, &adj, &mut visited);
        push_path(nodes, nl, m1, &mut components, &mut augmenting_orders);
    }
    // Remaining components with degree-2 everywhere are cycles.
    for start in 0..n as u32 {
        if visited[start as usize] || adj[start as usize].is_empty() {
            continue;
        }
        let nodes = walk(start, &adj, &mut visited);
        let (lefts, rights) = split(&nodes, nl);
        components.push(AltComponent::Cycle { lefts, rights });
    }

    augmenting_orders.sort_unstable();
    DiffReport {
        components,
        augmenting_orders,
    }
}

fn walk(start: u32, adj: &[Vec<u32>], visited: &mut [bool]) -> Vec<u32> {
    let mut nodes = vec![start];
    visited[start as usize] = true;
    let mut prev = u32::MAX;
    let mut cur = start;
    loop {
        let next = adj[cur as usize]
            .iter()
            .copied()
            .find(|&x| x != prev && !visited[x as usize]);
        match next {
            Some(x) => {
                visited[x as usize] = true;
                nodes.push(x);
                prev = cur;
                cur = x;
            }
            None => break,
        }
    }
    nodes
}

fn split(nodes: &[u32], nl: usize) -> (Vec<u32>, Vec<u32>) {
    let mut lefts = Vec::new();
    let mut rights = Vec::new();
    for &v in nodes {
        if (v as usize) < nl {
            lefts.push(v);
        } else {
            rights.push(v - nl as u32);
        }
    }
    (lefts, rights)
}

fn push_path(
    nodes: Vec<u32>,
    nl: usize,
    m1: &Matching,
    components: &mut Vec<AltComponent>,
    augmenting_orders: &mut Vec<usize>,
) {
    let (lefts, rights) = split(&nodes, nl);
    // Augmenting for M1 <=> both endpoints are free in M1. Endpoints that are
    // left vertices must be M1-free for the path to be augmenting; endpoint
    // right vertices likewise.
    let free_in_m1 = |v: u32| {
        if (v as usize) < nl {
            m1.left_free(v)
        } else {
            m1.right_free(v - nl as u32)
        }
    };
    let augmenting = match (nodes.first(), nodes.last()) {
        (Some(&head), Some(&tail)) if nodes.len() >= 2 => free_in_m1(head) && free_in_m1(tail),
        _ => false,
    };
    if augmenting {
        augmenting_orders.push(lefts.len());
    }
    components.push(AltComponent::Path {
        lefts,
        rights,
        augmenting_for_m1: augmenting,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::BipartiteGraph;
    use crate::hopcroft_karp;

    #[test]
    fn identical_matchings_have_empty_diff() {
        let mut m1 = Matching::empty(2, 2);
        m1.set(0, 0);
        let m2 = m1.clone();
        let d = symmetric_difference(&m1, &m2);
        assert!(d.components.is_empty());
        assert_eq!(d.n_augmenting(), 0);
    }

    #[test]
    fn order_one_augmenting_path() {
        // M1 empty, M2 matches l0-r0: path l0 - r0, both M1-free => order 1.
        let m1 = Matching::empty(1, 1);
        let mut m2 = Matching::empty(1, 1);
        m2.set(0, 0);
        let d = symmetric_difference(&m1, &m2);
        assert_eq!(d.augmenting_orders, vec![1]);
        assert_eq!(d.min_order(), Some(1));
    }

    #[test]
    fn order_two_augmenting_path() {
        // Paper structure r1 - s1 - r2 - s2:
        // M1: l1-r0. M2: l0-r0, l1-r1. Diff path: l0, r0, l1, r1.
        let mut m1 = Matching::empty(2, 2);
        m1.set(1, 0);
        let mut m2 = Matching::empty(2, 2);
        m2.set(0, 0);
        m2.set(1, 1);
        let d = symmetric_difference(&m1, &m2);
        assert_eq!(d.augmenting_orders, vec![2]);
        match &d.components[0] {
            AltComponent::Path {
                lefts,
                rights,
                augmenting_for_m1,
            } => {
                assert!(*augmenting_for_m1);
                assert_eq!(lefts.len(), 2);
                assert_eq!(rights.len(), 2);
            }
            other => panic!("expected path, got {other:?}"),
        }
    }

    #[test]
    fn non_augmenting_path_detected() {
        // M1: l0-r0; M2: l0-r1. Diff path r0 - l0 - r1; endpoint r0 is
        // matched in M1? No wait: r0 free in M2 and matched in M1; r1 free in
        // M1. Endpoints: r0 (M1-matched) and r1 (M1-free) -> not augmenting.
        let mut m1 = Matching::empty(1, 2);
        m1.set(0, 0);
        let mut m2 = Matching::empty(1, 2);
        m2.set(0, 1);
        let d = symmetric_difference(&m1, &m2);
        assert_eq!(d.n_augmenting(), 0);
        assert_eq!(d.components.len(), 1);
    }

    #[test]
    fn cycle_detected() {
        // M1: l0-r0, l1-r1; M2: l0-r1, l1-r0 -> one alternating 4-cycle.
        let mut m1 = Matching::empty(2, 2);
        m1.set(0, 0);
        m1.set(1, 1);
        let mut m2 = Matching::empty(2, 2);
        m2.set(0, 1);
        m2.set(1, 0);
        let d = symmetric_difference(&m1, &m2);
        assert_eq!(d.components.len(), 1);
        assert!(matches!(d.components[0], AltComponent::Cycle { .. }));
        assert_eq!(d.n_augmenting(), 0);
    }

    #[test]
    fn gap_identity_against_maximum() {
        // Any suboptimal matching vs a maximum one: number of augmenting
        // paths equals the cardinality gap.
        let g = BipartiteGraph::from_adjacency(4, &[vec![0, 1], vec![0], vec![2, 3], vec![2]]);
        let mut m1 = Matching::empty(4, 4);
        m1.set(0, 0); // strands l1
        m1.set(2, 2); // strands l3
        let m2 = hopcroft_karp(&g);
        assert_eq!(m2.size(), 4);
        let d = symmetric_difference(&m1, &m2);
        assert_eq!(d.cardinality_gap(), m2.size() - m1.size());
        assert_eq!(d.augmenting_orders, vec![2, 2]);
    }
}
