//! Dynamic maximum bipartite matching over a sliding slot window.
//!
//! [`IncrementalMatching`](crate::IncrementalMatching) handles the *growing*
//! side of the streaming problem: left vertices arrive one at a time and one
//! augmenting search per arrival keeps the matching maximum. The online
//! strategies need the full round delta on top of that:
//!
//! * **left removal** — a request is served (its slot leaves with it) or
//!   expires, or a fix-family strategy rejects it at arrival;
//! * **right retirement** — slot column `t` leaves the window when the
//!   simulation advances to round `t + 1`;
//! * **right extension** — slot column `t + d` enters the window.
//!
//! [`DynamicMatching`] maintains a maximum matching across all of these.
//! The repair rule is the paper's Section 1.2 symmetric-difference argument
//! run in reverse: deleting one matched vertex degrades a maximum matching
//! by at most one, and the lost unit is recoverable iff one alternating
//! search from the freed partner finds an augmenting path. So every delta
//! costs `O(changes × one augmenting search)` instead of a from-scratch
//! solve of the whole window graph.
//!
//! Right vertices carry *stable absolute ids*: slot `(round, resource)` is
//! vertex `round * width + resource`, so adjacency recorded at a request's
//! arrival stays valid for that request's whole life. Window state (mate
//! array, reverse adjacency, per-column free counts) lives in `VecDeque`s
//! indexed by `id - rlo`, which makes column retirement a front-pop and
//! column extension a back-push. Retired ids below `rlo` are skipped during
//! search, never rescanned.
//!
//! The struct also maintains everything the saturation passes of
//! `A_balance` / `A_eager` need ([`DynamicMatching::saturate_columns`]
//! mirrors [`saturate_levels_with`](crate::saturate_levels_with) exactly,
//! with per-*column* levels), plus a dirty-left list so callers can sync an
//! external view of the assignment in `O(mate changes)` rather than
//! `O(window)`.

use std::collections::VecDeque;

use crate::bitset::BitSet;
use crate::workspace::MatchingWorkspace;

const NONE: u32 = u32::MAX;

/// Window-relative column of absolute right id `r`. Every caller holds the
/// window invariant `r >= rlo`; the debug assert keeps a violation from
/// wrapping into a silent out-of-range index.
#[inline]
fn rcol(r: u32, rlo: u32) -> usize {
    debug_assert!(r >= rlo, "right id {r} below window front {rlo}");
    (r - rlo) as usize
}

/// A maximum bipartite matching maintained under left insertion/removal and
/// right-column retirement/extension over a sliding window of slot columns.
///
/// Left vertices are appended with [`DynamicMatching::add_left`] and
/// numbered consecutively from 0 for the lifetime of the structure (dead
/// lefts keep their index; they are never scanned again). Right vertices are
/// the absolute slot ids of the current window
/// `[col_lo * width, col_hi * width)`.
#[derive(Debug)]
pub struct DynamicMatching {
    /// Rights per column (the paper's `n` resources).
    width: u32,
    /// Current window of slot columns: `[col_lo, col_hi)`.
    col_lo: u64,
    col_hi: u64,
    /// First live right id: `col_lo * width`. Edges below it are retired.
    rlo: u32,
    /// Per-left adjacency span into `edges` (absolute right ids, frozen at
    /// insertion). Removed lefts get an empty span.
    spans: Vec<(u32, u32)>,
    edges: Vec<u32>,
    /// Left mate array (absolute right id or `NONE`).
    l2r: Vec<u32>,
    /// Lefts still participating; dead lefts are skipped by every scan.
    alive: BitSet,
    /// Window-indexed right mate array: `r2l[r - rlo]`.
    r2l: VecDeque<u32>,
    /// Window-indexed reverse adjacency: lefts adjacent to each live right,
    /// in insertion (= id) order. Fuels the saturation BFS and the removal
    /// repair search.
    rev: VecDeque<Vec<u32>>,
    /// Recycled `rev` entries from retired columns.
    rev_pool: Vec<Vec<u32>>,
    /// Free rights per window column (seed-existence test for saturation).
    free_in_col: VecDeque<u32>,
    size: u32,
    /// Lefts whose mate changed since the last [`DynamicMatching::take_dirty`]
    /// (deduplicated via `dirty_mark`; may include since-removed lefts).
    dirty: Vec<u32>,
    dirty_mark: BitSet,
    /// Marks set by the current search, cleared on exit (touched lists keep
    /// per-delta cost proportional to the explored subgraph).
    touched_l: Vec<u32>,
    touched_r: Vec<u32>,
    /// Rights proven useless for forward augmenting searches. When a search
    /// fails, its visited set `S` is a closed trap: every right in `S` is
    /// matched and its mate's whole in-window adjacency lies inside `S`, so
    /// any later search entering `S` exhausts it and backtracks with nothing
    /// — skipping `S` outright reaches the *same* path (or failure) as the
    /// textbook scan. The trap survives free-left insertion (a free left is
    /// never an interior path vertex), fresh-column extension (edge-free
    /// rights), and even successful augments (the found path can never pass
    /// through `S`, so no mate inside changes); it dies when a matched left
    /// is removed, a column retires, or a saturation pass runs — the clear
    /// points. Window-indexed like `visited_r`; `dead_list` keeps the
    /// absolute ids for `O(marks)` clearing.
    dead_r: BitSet,
    dead_list: Vec<u32>,
    repair_scratch: Vec<u32>,
    ws: MatchingWorkspace,
    edges_scanned: u64,
    repairs: u64,
}

/// The mate arrays plus every piece of bookkeeping a mate change touches,
/// split out of [`DynamicMatching`] so the search loops can borrow the
/// adjacency arena and workspace disjointly.
struct Pairs<'a> {
    l2r: &'a mut Vec<u32>,
    r2l: &'a mut VecDeque<u32>,
    free_in_col: &'a mut VecDeque<u32>,
    size: &'a mut u32,
    dirty: &'a mut Vec<u32>,
    dirty_mark: &'a mut BitSet,
    rlo: u32,
    width: u32,
}

impl Pairs<'_> {
    #[inline]
    fn wi(&self, r: u32) -> usize {
        debug_assert!(r >= self.rlo, "right {r} is retired (rlo={})", self.rlo);
        (r - self.rlo) as usize
    }

    #[inline]
    fn mark_dirty(&mut self, l: u32) {
        if self.dirty_mark.insert(l as usize) {
            self.dirty.push(l);
        }
    }

    fn unset_left(&mut self, l: u32) {
        let r = self.l2r[l as usize];
        if r != NONE {
            let wi = self.wi(r);
            self.l2r[l as usize] = NONE;
            self.r2l[wi] = NONE;
            self.free_in_col[wi / self.width as usize] += 1;
            *self.size -= 1;
            self.mark_dirty(l);
        }
    }

    fn unset_right(&mut self, r: u32) {
        let wi = self.wi(r);
        let l = self.r2l[wi];
        if l != NONE {
            self.r2l[wi] = NONE;
            self.l2r[l as usize] = NONE;
            self.free_in_col[wi / self.width as usize] += 1;
            *self.size -= 1;
            self.mark_dirty(l);
        }
    }

    /// Match `l` with `r`, displacing any previous mates of either — the
    /// same semantics as [`crate::Matching::set`], which the flip walks of
    /// the search routines rely on.
    fn set(&mut self, l: u32, r: u32) {
        self.unset_left(l);
        self.unset_right(r);
        let wi = self.wi(r);
        self.l2r[l as usize] = r;
        self.r2l[wi] = l;
        self.free_in_col[wi / self.width as usize] -= 1;
        *self.size += 1;
        self.mark_dirty(l);
    }
}

/// Flip the alternating path ending at left vertex `end_l`, exactly as the
/// batch saturation's `apply_flip` does: optionally cut `(end_l, freed)`
/// first, then re-match each left to the right it was discovered from,
/// walking `parent_l`/`parent_r` back to the free starting right.
fn apply_flip(p: &mut Pairs, parent_l: &[u32], parent_r: &[u32], end_l: u32, freed: Option<u32>) {
    if let Some(r2) = freed {
        debug_assert_eq!(p.l2r[end_l as usize], r2);
        p.unset_right(r2);
    }
    let mut l = end_l;
    loop {
        let r = parent_l[l as usize];
        debug_assert_ne!(r, NONE);
        p.set(l, r);
        let prev_l = parent_r[rcol(r, p.rlo)];
        if prev_l == NONE {
            break; // reached the free starting right vertex
        }
        l = prev_l;
    }
}

impl DynamicMatching {
    /// An empty matching over zero columns of `width` rights each.
    pub fn new(width: u32) -> DynamicMatching {
        assert!(width > 0, "column width must be positive");
        DynamicMatching {
            width,
            col_lo: 0,
            col_hi: 0,
            rlo: 0,
            spans: Vec::new(),
            edges: Vec::new(),
            l2r: Vec::new(),
            alive: BitSet::new(),
            r2l: VecDeque::new(),
            rev: VecDeque::new(),
            rev_pool: Vec::new(),
            free_in_col: VecDeque::new(),
            size: 0,
            dirty: Vec::new(),
            dirty_mark: BitSet::new(),
            touched_l: Vec::new(),
            touched_r: Vec::new(),
            dead_r: BitSet::new(),
            dead_list: Vec::new(),
            repair_scratch: Vec::new(),
            ws: MatchingWorkspace::new(),
            edges_scanned: 0,
            repairs: 0,
        }
    }

    /// Rights per column.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Current window `[col_lo, col_hi)` of live slot columns.
    #[inline]
    pub fn col_range(&self) -> (u64, u64) {
        (self.col_lo, self.col_hi)
    }

    /// Number of left vertices ever inserted (dead ones included).
    #[inline]
    pub fn n_left(&self) -> u32 {
        self.l2r.len() as u32
    }

    /// Size of the maintained maximum matching.
    #[inline]
    pub fn size(&self) -> usize {
        self.size as usize
    }

    /// Whether left vertex `l` is still participating.
    #[inline]
    pub fn is_alive(&self, l: u32) -> bool {
        self.alive.contains(l as usize)
    }

    /// Mate of left vertex `l` (an absolute right id), if matched.
    #[inline]
    pub fn left_mate(&self, l: u32) -> Option<u32> {
        let r = self.l2r[l as usize];
        (r != NONE).then_some(r)
    }

    /// Mate of the live right vertex `r`, if matched.
    #[inline]
    pub fn right_mate(&self, r: u32) -> Option<u32> {
        let l = self.r2l[rcol(r, self.rlo)];
        (l != NONE).then_some(l)
    }

    /// Total edges scanned by every search since construction — the
    /// engine's lifetime solve work, comparable against the per-round
    /// `O(E)` of a from-scratch solve.
    #[inline]
    pub fn edges_scanned(&self) -> u64 {
        self.edges_scanned
    }

    /// Number of repair searches run for removals/retirements.
    #[inline]
    pub fn repairs(&self) -> u64 {
        self.repairs
    }

    /// Place the (still empty) window at column `col`. Must be called
    /// before any insertion when the simulation does not start at round 0.
    pub fn set_base(&mut self, col: u64) {
        assert!(
            self.l2r.is_empty() && self.col_lo == self.col_hi,
            "set_base on a populated matching"
        );
        Self::check_id_space(col, self.width);
        self.col_lo = col;
        self.col_hi = col;
        self.rlo = (col * self.width as u64) as u32;
    }

    fn check_id_space(col_hi: u64, width: u32) {
        assert!(
            col_hi
                .checked_mul(width as u64)
                .is_some_and(|v| v < u32::MAX as u64),
            "slot id space exhausted at column {col_hi} (width {width})"
        );
    }

    /// Extend the window to `[col_lo, new_col_hi)`, adding free columns.
    pub fn ensure_cols(&mut self, new_col_hi: u64) {
        if new_col_hi <= self.col_hi {
            return;
        }
        Self::check_id_space(new_col_hi, self.width);
        while self.col_hi < new_col_hi {
            for _ in 0..self.width {
                self.r2l.push_back(NONE);
                self.rev.push_back(self.rev_pool.pop().unwrap_or_default());
            }
            self.free_in_col.push_back(self.width);
            self.col_hi += 1;
        }
        let win = ((self.col_hi - self.col_lo) * self.width as u64) as usize;
        // visited_r stays all-false between searches, so growth keeps the
        // invariant; parent_r is only read at indices written by the current
        // search, so its fill value never matters.
        self.ws.visited_r.grow(win);
        if self.ws.parent_r.len() < win {
            self.ws.parent_r.resize(win, NONE);
        }
        // Fresh columns are edge-free, so existing failure traps stay valid.
        self.dead_r.grow(win);
    }

    /// Forget the accumulated failed-search traps (see `dead_r`). Must run
    /// *before* `rlo` moves — the marks are window-indexed.
    fn clear_failure_marks(&mut self) {
        for r in self.dead_list.drain(..) {
            if r >= self.rlo {
                self.dead_r.clear((r - self.rlo) as usize);
            }
        }
    }

    /// Retire every column below `new_col_lo` (they left the window). Any
    /// matched right in a retired column frees its (alive) mate; one forward
    /// augmenting search per freed left restores maximality — the only part
    /// of the optimum a column retirement can cost is what those searches
    /// cannot recover.
    pub fn retire_cols(&mut self, new_col_lo: u64) {
        assert!(
            new_col_lo >= self.col_lo && new_col_lo <= self.col_hi,
            "retire window [{}, {}) to {new_col_lo}",
            self.col_lo,
            self.col_hi
        );
        self.clear_failure_marks();
        let mut to_repair = std::mem::take(&mut self.repair_scratch);
        to_repair.clear();
        while self.col_lo < new_col_lo {
            {
                let mut p = Pairs {
                    l2r: &mut self.l2r,
                    r2l: &mut self.r2l,
                    free_in_col: &mut self.free_in_col,
                    size: &mut self.size,
                    dirty: &mut self.dirty,
                    dirty_mark: &mut self.dirty_mark,
                    rlo: self.rlo,
                    width: self.width,
                };
                for k in 0..self.width {
                    let l = p.r2l[k as usize];
                    if l != NONE {
                        debug_assert!(self.alive.contains(l as usize));
                        p.unset_right(p.rlo + k);
                        to_repair.push(l);
                    }
                }
            }
            for _ in 0..self.width {
                self.r2l.pop_front();
                // lint: r2l and rev are grown in lockstep; the window holds >= width columns here
                let mut v = self.rev.pop_front().expect("window not empty");
                v.clear();
                self.rev_pool.push(v);
            }
            self.free_in_col.pop_front();
            self.col_lo += 1;
            self.rlo = (self.col_lo * self.width as u64) as u32;
        }
        for &l in &to_repair {
            self.repairs += 1;
            self.augment(l);
        }
        self.repair_scratch = to_repair;
    }

    /// Insert a left vertex adjacent to the absolute right ids `neighbors`
    /// (all inside the current window), *without* searching — callers decide
    /// when to [`DynamicMatching::augment`]. Appends the vertex to every
    /// neighbour's reverse list, so insertion order is reverse-scan order.
    pub fn add_left(&mut self, neighbors: &[u32]) -> u32 {
        let l = self.l2r.len() as u32;
        self.l2r.push(NONE);
        self.alive.grow(l as usize + 1);
        self.alive.set(l as usize);
        self.dirty_mark.grow(l as usize + 1);
        let start = self.edges.len() as u32;
        for &r in neighbors {
            debug_assert!(
                r >= self.rlo && ((r - self.rlo) as usize) < self.r2l.len(),
                "neighbor {r} outside window [{}, {})",
                self.rlo,
                self.rlo as u64 + self.r2l.len() as u64
            );
            self.edges.push(r);
            self.rev[rcol(r, self.rlo)].push(l);
        }
        self.spans.push((start, self.edges.len() as u32));
        let nl = self.l2r.len();
        self.ws.visited_l.grow(nl);
        if self.ws.parent_l.len() < nl {
            self.ws.parent_l.resize(nl, NONE);
        }
        l
    }

    /// One forward alternating DFS from the free left `root` over its
    /// frozen adjacency (retired ids skipped); flips the path on success.
    /// Identical traversal to [`crate::IncrementalMatching`]'s insertion
    /// search. Returns whether the matching grew.
    pub fn augment(&mut self, root: u32) -> bool {
        debug_assert!(
            self.alive.contains(root as usize),
            "augment from dead left {root}"
        );
        debug_assert_eq!(
            self.l2r[root as usize], NONE,
            "augment from matched left {root}"
        );
        let DynamicMatching {
            width,
            rlo,
            spans,
            edges,
            l2r,
            r2l,
            free_in_col,
            size,
            dirty,
            dirty_mark,
            touched_r,
            dead_r,
            dead_list,
            ws,
            edges_scanned,
            ..
        } = self;
        let mut p = Pairs {
            l2r,
            r2l,
            free_in_col,
            size,
            dirty,
            dirty_mark,
            rlo: *rlo,
            width: *width,
        };
        let MatchingWorkspace {
            stack, visited_r, ..
        } = ws;
        stack.clear();
        touched_r.clear();
        stack.push((root, 0));
        let mut augmented = false;
        'search: while let Some(&mut (l, ref mut cursor)) = stack.last_mut() {
            let (lo, hi) = spans[l as usize];
            let adj = &edges[lo as usize..hi as usize];
            if (*cursor as usize) < adj.len() {
                let r = adj[*cursor as usize];
                *cursor += 1;
                *edges_scanned += 1;
                if r < p.rlo {
                    continue; // retired column
                }
                let wi = (r - p.rlo) as usize;
                if visited_r.contains(wi) || dead_r.contains(wi) {
                    // Already on this search's path, or inside a known trap:
                    // the textbook scan would exhaust it and back out empty.
                    continue;
                }
                visited_r.set(wi);
                touched_r.push(r);
                let mate = p.r2l[wi];
                if mate == NONE {
                    // Free right: flip deepest first — each parent's chosen
                    // right is its child's just-vacated old mate.
                    p.set(l, r);
                    stack.pop();
                    while let Some((pl, pcursor)) = stack.pop() {
                        let plo = spans[pl as usize].0;
                        // pcursor was already advanced past the chosen edge.
                        let taken = plo as usize + pcursor as usize - 1;
                        let pr = edges[taken];
                        p.set(pl, pr);
                    }
                    augmented = true;
                    break 'search;
                } else {
                    stack.push((mate, 0));
                }
            } else {
                stack.pop();
            }
        }
        if augmented {
            for &r in touched_r.iter() {
                visited_r.clear((r - p.rlo) as usize);
            }
        } else {
            // The explored set is a trap (no free right, closed under
            // mate-adjacency): promote the marks to persistent dead marks so
            // later searches skip it wholesale instead of re-walking it.
            for &r in touched_r.iter() {
                let wi = (r - p.rlo) as usize;
                visited_r.clear(wi);
                dead_r.set(wi);
                dead_list.push(r);
            }
        }
        augmented
    }

    /// Remove left vertex `l` (request served, expired, or rejected). If it
    /// was matched, its slot is freed; with `repair` set, one backward
    /// alternating search from that slot re-fills it if any alternating path
    /// can (e.g. through a previously unmatched request), restoring
    /// maximality. Serving passes `repair = false` because the slot leaves
    /// the window with the request — removing both endpoints of a matched
    /// pair cannot create an augmenting path elsewhere.
    pub fn remove_left(&mut self, l: u32, repair: bool) {
        assert!(
            self.alive.contains(l as usize),
            "double removal of left {l}"
        );
        self.alive.clear(l as usize);
        let span = &mut self.spans[l as usize];
        span.1 = span.0;
        let r = self.l2r[l as usize];
        if r == NONE {
            // A free left leaving only deletes edges; failure traps survive.
            return;
        }
        // Its slot becomes a free right — any trap containing it is stale.
        self.clear_failure_marks();
        {
            let mut p = Pairs {
                l2r: &mut self.l2r,
                r2l: &mut self.r2l,
                free_in_col: &mut self.free_in_col,
                size: &mut self.size,
                dirty: &mut self.dirty,
                dirty_mark: &mut self.dirty_mark,
                rlo: self.rlo,
                width: self.width,
            };
            p.unset_left(l);
        }
        if repair {
            self.repairs += 1;
            self.repair_right(r);
        }
    }

    /// Backward alternating DFS from the free right `root_r`: follow
    /// non-matching edges right→left (reverse lists, insertion order) and
    /// matched edges left→right; a free left completes an augmenting path.
    fn repair_right(&mut self, root_r: u32) -> bool {
        let DynamicMatching {
            width,
            rlo,
            l2r,
            alive,
            r2l,
            rev,
            free_in_col,
            size,
            dirty,
            dirty_mark,
            touched_l,
            ws,
            edges_scanned,
            ..
        } = self;
        let mut p = Pairs {
            l2r,
            r2l,
            free_in_col,
            size,
            dirty,
            dirty_mark,
            rlo: *rlo,
            width: *width,
        };
        let MatchingWorkspace {
            stack, visited_l, ..
        } = ws;
        stack.clear();
        touched_l.clear();
        stack.push((root_r, 0));
        let mut repaired = false;
        'search: while let Some(&mut (r, ref mut cursor)) = stack.last_mut() {
            let list = &rev[rcol(r, p.rlo)];
            if (*cursor as usize) < list.len() {
                let l = list[*cursor as usize];
                *cursor += 1;
                *edges_scanned += 1;
                if !alive.contains(l as usize) || visited_l.contains(l as usize) {
                    continue;
                }
                visited_l.set(l as usize);
                touched_l.push(l);
                let mate = p.l2r[l as usize];
                if mate == NONE {
                    // Free left: flip deepest first, re-matching each
                    // traversal left to the right it was reached from.
                    p.set(l, r);
                    stack.pop();
                    while let Some((pr, pcursor)) = stack.pop() {
                        // pcursor was already advanced past the chosen edge.
                        let taken = pcursor as usize - 1;
                        let pl = rev[rcol(pr, p.rlo)][taken];
                        p.set(pl, pr);
                    }
                    repaired = true;
                    break 'search;
                } else {
                    stack.push((mate, 0));
                }
            } else {
                stack.pop();
            }
        }
        for &l in touched_l.iter() {
            visited_l.clear(l as usize);
        }
        repaired
    }

    /// Lexicographically maximize per-column-level slot coverage, exactly as
    /// [`saturate_levels_with`](crate::saturate_levels_with) does on the
    /// freshly built window graph: for each distinct level ascending, repeat
    /// the improving exchange (alternating path from a free right of that
    /// level that frees a strictly-lower-priority right) until none exists.
    ///
    /// `col_levels[c]` is the level of every slot in window column
    /// `col_lo + c`. Only lefts `>= min_left` participate (`A_fix_balance`
    /// rearranges this round's arrivals only; its older assignments are
    /// fixed). Two exact shortcuts over the batch version: levels with no
    /// free slot are skipped (no seeds ⇒ no exchange), and the bottom
    /// priority level is skipped (an exchange from it could only terminate
    /// by augmenting, impossible at a maximum matching — callers augment
    /// every participating left before saturating).
    pub fn saturate_columns(&mut self, col_levels: &[u32], min_left: u32) {
        let ncols = (self.col_hi - self.col_lo) as usize;
        assert_eq!(col_levels.len(), ncols, "one level per window column");
        let mut levels: Vec<u32> = col_levels.to_vec();
        levels.sort_unstable();
        levels.dedup();
        if levels.len() <= 1 {
            return;
        }
        // Improving exchanges rearrange free rights across levels, which
        // stales any failed-search trap.
        self.clear_failure_marks();
        let Some(&top) = levels.last() else { return };
        for &lvl in &levels {
            if lvl == top {
                break;
            }
            let any_free = col_levels
                .iter()
                .enumerate()
                .any(|(c, &cl)| cl == lvl && self.free_in_col[c] > 0);
            if !any_free {
                continue;
            }
            while self.improve_level(col_levels, lvl, min_left) {}
        }
    }

    /// One improving exchange for `lvl` — a verbatim port of the batch
    /// `improve_level` (same seed order, same FIFO BFS over reverse lists in
    /// left-insertion order, same first-found flip) onto the maintained
    /// window state. Returns whether an improvement was applied.
    fn improve_level(&mut self, col_levels: &[u32], lvl: u32, min_left: u32) -> bool {
        let DynamicMatching {
            width,
            rlo,
            l2r,
            alive,
            r2l,
            rev,
            free_in_col,
            size,
            dirty,
            dirty_mark,
            touched_l,
            touched_r,
            ws,
            edges_scanned,
            ..
        } = self;
        let width_us = *width as usize;
        let mut p = Pairs {
            l2r,
            r2l,
            free_in_col,
            size,
            dirty,
            dirty_mark,
            rlo: *rlo,
            width: *width,
        };
        let MatchingWorkspace {
            queue,
            visited_l,
            visited_r,
            parent_l,
            parent_r,
            ..
        } = ws;
        queue.clear();
        touched_l.clear();
        touched_r.clear();

        // Seeds: every free right of level `lvl`, ascending id (ascending
        // column, ascending resource within the column).
        for (c, &cl) in col_levels.iter().enumerate() {
            if cl != lvl || p.free_in_col[c] == 0 {
                continue;
            }
            for k in 0..width_us {
                let wi = c * width_us + k;
                if p.r2l[wi] == NONE {
                    visited_r.set(wi);
                    parent_r[wi] = NONE;
                    let r = p.rlo + wi as u32;
                    touched_r.push(r);
                    queue.push(r);
                }
            }
        }

        let mut improved = false;
        let mut head = 0;
        'bfs: while head < queue.len() {
            let r = queue[head];
            head += 1;
            let list = &rev[rcol(r, p.rlo)];
            for &l in list.iter() {
                *edges_scanned += 1;
                if !alive.contains(l as usize) || l < min_left || visited_l.contains(l as usize) {
                    continue;
                }
                visited_l.set(l as usize);
                parent_l[l as usize] = r;
                touched_l.push(l);
                let r2 = p.l2r[l as usize];
                if r2 == NONE {
                    // Augmenting path (only reachable when the matching is
                    // not maximum; kept for exact batch-semantics parity).
                    apply_flip(&mut p, parent_l, parent_r, l, None);
                    improved = true;
                    break 'bfs;
                }
                let wi2 = (r2 - p.rlo) as usize;
                if !visited_r.insert(wi2) {
                    continue;
                }
                parent_r[wi2] = l;
                touched_r.push(r2);
                if col_levels[wi2 / width_us] > lvl {
                    // Improving exchange: free r2, flip back along parents.
                    apply_flip(&mut p, parent_l, parent_r, l, Some(r2));
                    improved = true;
                    break 'bfs;
                }
                queue.push(r2);
            }
        }

        for &l in touched_l.iter() {
            visited_l.clear(l as usize);
        }
        for &r in touched_r.iter() {
            visited_r.clear((r - p.rlo) as usize);
        }
        improved
    }

    /// Drain the list of lefts whose mate changed since the last call into
    /// `out` (order unspecified, each at most once; removed lefts may
    /// appear — callers skip them). Lets an external assignment view sync
    /// in `O(mate changes)`.
    pub fn take_dirty(&mut self, out: &mut Vec<u32>) {
        for &l in &self.dirty {
            self.dirty_mark.clear(l as usize);
        }
        out.append(&mut self.dirty);
    }

    /// Whether any alternating search from a free alive left `>= min_left`
    /// reaches a free right — i.e. the matching is *not* maximum over the
    /// participating subgraph. Test/diagnostic helper (full scan).
    pub fn has_augmenting_path(&mut self, min_left: u32) -> bool {
        let frees: Vec<u32> = (min_left..self.n_left())
            .filter(|&l| self.alive.contains(l as usize) && self.l2r[l as usize] == NONE)
            .collect();
        for l in frees {
            if self.augment(l) {
                // Undo is impossible cheaply; callers treat this as a
                // diagnostic that also fixes the matching.
                return true;
            }
        }
        false
    }

    /// Full invariant audit — the `audit` feature's round-boundary hook.
    ///
    /// Runs [`DynamicMatching::check_consistency`] and then re-solves the
    /// live window graph from scratch with Hopcroft–Karp, asserting the
    /// delta-maintained matching has the same cardinality. Consistency
    /// alone cannot tell a *maximal* matching from a *maximum* one, and
    /// every competitive guarantee in the paper rides on maximum.
    ///
    /// # Panics
    /// Panics on the first violated invariant, naming it.
    #[cfg(feature = "audit")]
    pub fn audit(&self) {
        self.check_consistency();
        let fresh = self.fresh_maximum();
        assert_eq!(
            self.size(),
            fresh,
            "delta-maintained matching is not maximum: size {} vs fresh re-solve {}",
            self.size(),
            fresh,
        );
    }

    /// From-scratch maximum-matching size of the current live graph
    /// (compact left indices, window-relative right indices).
    #[cfg(feature = "audit")]
    fn fresh_maximum(&self) -> usize {
        let rlo = self.rlo;
        let nr = ((self.col_hi - self.col_lo) * self.width as u64) as u32;
        let mut lists: Vec<Vec<u32>> = Vec::new();
        for l in 0..self.n_left() {
            if !self.alive.contains(l as usize) {
                continue;
            }
            let (lo, hi) = self.spans[l as usize];
            lists.push(
                self.edges[lo as usize..hi as usize]
                    .iter()
                    .filter(|&&r| r >= rlo)
                    .map(|&r| r - rlo)
                    .collect(),
            );
        }
        let g = crate::graph::BipartiteGraph::from_adjacency(nr, &lists);
        crate::hopcroft_karp(&g).size()
    }

    /// Internal consistency check (debug/test): mate arrays agree, matched
    /// edges exist in live spans, free counts per column are right.
    pub fn check_consistency(&self) {
        let mut size = 0u32;
        for (l, &r) in self.l2r.iter().enumerate() {
            if r == NONE {
                continue;
            }
            size += 1;
            assert!(self.alive.contains(l), "dead left {l} still matched");
            let wi = (r - self.rlo) as usize;
            assert_eq!(self.r2l[wi], l as u32, "mate arrays disagree at left {l}");
            let (lo, hi) = self.spans[l];
            assert!(
                self.edges[lo as usize..hi as usize].contains(&r),
                "matched edge ({l}, {r}) not in adjacency"
            );
        }
        assert_eq!(size, self.size, "size counter out of sync");
        let back = self.r2l.iter().filter(|&&l| l != NONE).count() as u32;
        assert_eq!(back, self.size, "right mate count out of sync");
        for c in 0..(self.col_hi - self.col_lo) as usize {
            let free = (0..self.width as usize)
                .filter(|&k| self.r2l[c * self.width as usize + k] == NONE)
                .count() as u32;
            assert_eq!(free, self.free_in_col[c], "free count wrong in column {c}");
        }
        let dead = self.dead_r.count_ones();
        assert_eq!(
            dead,
            self.dead_list.len(),
            "failure-trap marks out of sync with their id list"
        );
        for &r in &self.dead_list {
            assert!(
                self.r2l[rcol(r, self.rlo)] != NONE,
                "trapped right {r} is free — stale failure mark"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::BipartiteGraph;
    use crate::hopcroft_karp;

    /// Rebuild the current live graph (compact left indices, window right
    /// indices) and return its maximum matching size via Hopcroft–Karp.
    fn fresh_opt(dm: &DynamicMatching) -> usize {
        let (clo, chi) = dm.col_range();
        let rlo = (clo * dm.width() as u64) as u32;
        let nr = ((chi - clo) * dm.width() as u64) as u32;
        let mut lists: Vec<Vec<u32>> = Vec::new();
        for l in 0..dm.n_left() {
            if !dm.is_alive(l) {
                continue;
            }
            let (lo, hi) = dm.spans[l as usize];
            lists.push(
                dm.edges[lo as usize..hi as usize]
                    .iter()
                    .filter(|&&r| r >= rlo)
                    .map(|&r| r - rlo)
                    .collect(),
            );
        }
        let g = BipartiteGraph::from_adjacency(nr, &lists);
        hopcroft_karp(&g).size()
    }

    /// The audit must reject a matching that is consistent but not
    /// maximum — the failure mode `check_consistency` alone cannot see.
    #[cfg(feature = "audit")]
    #[test]
    #[should_panic(expected = "not maximum")]
    fn audit_catches_non_maximum_matching() {
        let mut dm = DynamicMatching::new(1);
        dm.ensure_cols(2);
        let l0 = dm.add_left(&[0, 1]);
        let _l1 = dm.add_left(&[0]);
        assert!(dm.augment(l0));
        // l1 was never augmented: size 1, but the fresh re-solve finds 2.
        dm.audit();
    }

    #[test]
    fn augmentation_rematches_through_chains() {
        let mut dm = DynamicMatching::new(2);
        dm.ensure_cols(1); // rights 0, 1
        let l0 = dm.add_left(&[0, 1]);
        assert!(dm.augment(l0));
        let l1 = dm.add_left(&[0]);
        assert!(dm.augment(l1));
        assert_eq!(dm.size(), 2);
        assert_eq!(dm.left_mate(l1), Some(0));
        assert_eq!(dm.left_mate(l0), Some(1));
        dm.check_consistency();
    }

    #[test]
    fn remove_left_repairs_through_previously_failed_left() {
        // l0 takes r0; l1 (only r0) fails; removing l0 with repair must
        // hand r0 to l1.
        let mut dm = DynamicMatching::new(1);
        dm.ensure_cols(1);
        let l0 = dm.add_left(&[0]);
        assert!(dm.augment(l0));
        let l1 = dm.add_left(&[0]);
        assert!(!dm.augment(l1));
        dm.remove_left(l0, true);
        assert_eq!(dm.size(), 1);
        assert_eq!(dm.left_mate(l1), Some(0));
        dm.check_consistency();
    }

    #[test]
    fn remove_without_repair_leaves_hole() {
        let mut dm = DynamicMatching::new(1);
        dm.ensure_cols(1);
        let l0 = dm.add_left(&[0]);
        assert!(dm.augment(l0));
        let l1 = dm.add_left(&[0]);
        assert!(!dm.augment(l1));
        dm.remove_left(l0, false);
        assert_eq!(dm.size(), 0);
        // The hole is still recoverable by an explicit search.
        assert!(dm.augment(l1));
        assert_eq!(dm.size(), 1);
    }

    #[test]
    fn retire_cols_repairs_displaced_mate() {
        // Two columns, width 1. l0 matched in column 0 but also adjacent to
        // column 1; retiring column 0 must re-home l0 to right 1.
        let mut dm = DynamicMatching::new(1);
        dm.ensure_cols(2);
        let l0 = dm.add_left(&[0, 1]);
        assert!(dm.augment(l0));
        assert_eq!(dm.left_mate(l0), Some(0));
        dm.retire_cols(1);
        assert_eq!(dm.size(), 1);
        assert_eq!(dm.left_mate(l0), Some(1));
        assert_eq!(dm.repairs(), 1);
        dm.check_consistency();
    }

    #[test]
    fn retire_cols_drops_unrecoverable_unit() {
        let mut dm = DynamicMatching::new(1);
        dm.ensure_cols(2);
        let l0 = dm.add_left(&[0]);
        assert!(dm.augment(l0));
        let l1 = dm.add_left(&[1]);
        assert!(dm.augment(l1));
        dm.retire_cols(1);
        assert_eq!(dm.size(), 1);
        assert!(dm.left_mate(l0).is_none());
        assert_eq!(dm.size(), fresh_opt(&dm));
        dm.check_consistency();
    }

    #[test]
    fn sliding_window_tracks_fresh_optimum() {
        // Slide a width-2, 3-column window across 12 rounds with a fixed
        // arrival pattern; after every delta the size must equal a fresh
        // Hopcroft–Karp solve of the live graph.
        let width = 2u32;
        let d = 3u64;
        let mut dm = DynamicMatching::new(width);
        dm.ensure_cols(d);
        let mut live: Vec<(u32, u64)> = Vec::new(); // (left, expiry col)
        for t in 0..12u64 {
            // Two arrivals per round with deterministic pseudo-random slots.
            for a in 0..2u64 {
                let res = ((t * 7 + a * 5 + 3) % width as u64) as u32;
                let life = 1 + ((t + a) % d);
                let adj: Vec<u32> = (t..t + life)
                    .map(|c| (c * width as u64) as u32 + res)
                    .collect();
                let l = dm.add_left(&adj);
                dm.augment(l);
                live.push((l, t + life));
            }
            assert_eq!(dm.size(), fresh_opt(&dm), "round {t} after arrivals");
            // Serve: remove matched lefts whose slot is in the front column.
            let rlo = (t * width as u64) as u32;
            live.retain(|&(l, _)| {
                if let Some(r) = dm.left_mate(l) {
                    if r < rlo + width {
                        dm.remove_left(l, false);
                        return false;
                    }
                }
                true
            });
            // Expire: unmatched lefts at their expiry column.
            live.retain(|&(l, exp)| {
                if exp <= t + 1 && dm.is_alive(l) && dm.left_mate(l).is_none() {
                    dm.remove_left(l, false);
                    return false;
                }
                true
            });
            dm.retire_cols(t + 1);
            dm.ensure_cols(t + 1 + d);
            assert_eq!(dm.size(), fresh_opt(&dm), "round {t} after advance");
            dm.check_consistency();
        }
    }

    #[test]
    fn saturate_columns_matches_batch_saturation() {
        use crate::saturate_levels;
        // Window of 3 columns, width 2; levels by round offset. Compare the
        // final per-column coverage against the batch pass on the same
        // graph, starting from the same maximum matching.
        let width = 2u32;
        let mut dm = DynamicMatching::new(width);
        dm.ensure_cols(3);
        let lists: Vec<Vec<u32>> = vec![
            vec![0, 2, 4],
            vec![0, 1],
            vec![2, 3, 5],
            vec![4, 5],
            vec![1, 3],
        ];
        for adj in &lists {
            let l = dm.add_left(adj);
            dm.augment(l);
        }
        let col_levels = [0u32, 1, 2];
        dm.saturate_columns(&col_levels, 0);
        dm.check_consistency();

        let g = BipartiteGraph::from_adjacency(6, &lists);
        let mut m = hopcroft_karp(&g);
        let per_right: Vec<u32> = (0..6).map(|r| r / width).collect();
        saturate_levels(&g, &mut m, &per_right);
        for c in 0..3usize {
            let batch = (0..width as usize)
                .filter(|&k| m.right_mate((c * 2 + k) as u32).is_some())
                .count() as u32;
            let dyn_cov = width - dm.free_in_col[c];
            assert_eq!(dyn_cov, batch, "column {c} coverage");
        }
    }

    #[test]
    fn dirty_list_covers_every_mate_change() {
        let mut dm = DynamicMatching::new(1);
        dm.ensure_cols(2);
        let l0 = dm.add_left(&[0, 1]);
        dm.augment(l0);
        let mut dirty = Vec::new();
        dm.take_dirty(&mut dirty);
        assert_eq!(dirty, vec![l0]);
        dirty.clear();
        // Chain augmentation moves l0: both lefts must be reported.
        let l1 = dm.add_left(&[0]);
        dm.augment(l1);
        dm.take_dirty(&mut dirty);
        dirty.sort_unstable();
        assert_eq!(dirty, vec![l0, l1]);
        // No changes -> nothing reported.
        dirty.clear();
        dm.take_dirty(&mut dirty);
        assert!(dirty.is_empty());
    }

    #[test]
    fn set_base_starts_window_mid_stream() {
        let mut dm = DynamicMatching::new(3);
        dm.set_base(100);
        dm.ensure_cols(102);
        let r = 100 * 3;
        let l = dm.add_left(&[r, r + 4]);
        assert!(dm.augment(l));
        assert_eq!(dm.left_mate(l), Some(r));
        dm.retire_cols(101);
        assert_eq!(dm.left_mate(l), Some(r + 4));
        dm.check_consistency();
    }
}
