//! Compact CSR bipartite graphs with caller-controlled adjacency order.

/// A bipartite graph in compressed-sparse-row form.
///
/// Left vertices (requests) are `0 .. n_left`, right vertices (time slots)
/// are `0 .. n_right`. Adjacency is stored left-to-right only, in the order
/// the caller supplied it — that order is significant: the augmenting-path
/// searches in this crate try neighbours in adjacency order, which is how
/// strategies realize resource-preference tie-breaking.
///
/// Indices are `u32` to keep the per-round working set small (per the
/// performance guide); a round's graph has at most `n·d` right vertices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BipartiteGraph {
    n_right: u32,
    /// `offsets[l] .. offsets[l+1]` indexes `adjacency` for left vertex `l`.
    offsets: Vec<u32>,
    adjacency: Vec<u32>,
}

impl BipartiteGraph {
    /// Build from per-left-vertex adjacency lists (order preserved).
    ///
    /// # Panics
    /// Panics (in debug builds) if an edge references a right vertex
    /// `>= n_right`.
    pub fn from_adjacency(n_right: u32, lists: &[Vec<u32>]) -> BipartiteGraph {
        let mut b = GraphBuilder::new(n_right);
        for list in lists {
            b.add_left(list);
        }
        b.finish()
    }

    /// Start an incremental builder (avoids the intermediate `Vec<Vec<_>>`).
    pub fn builder(n_right: u32) -> GraphBuilder {
        GraphBuilder::new(n_right)
    }

    /// Number of left vertices.
    #[inline]
    pub fn n_left(&self) -> u32 {
        (self.offsets.len() - 1) as u32
    }

    /// Number of right vertices.
    #[inline]
    pub fn n_right(&self) -> u32 {
        self.n_right
    }

    /// Number of edges.
    #[inline]
    pub fn n_edges(&self) -> usize {
        self.adjacency.len()
    }

    /// Neighbours of left vertex `l`, in insertion order.
    #[inline]
    pub fn neighbors(&self, l: u32) -> &[u32] {
        let lo = self.offsets[l as usize] as usize;
        let hi = self.offsets[l as usize + 1] as usize;
        &self.adjacency[lo..hi]
    }

    /// Whether the edge `(l, r)` exists.
    pub fn has_edge(&self, l: u32, r: u32) -> bool {
        self.neighbors(l).contains(&r)
    }

    /// Right-to-left adjacency, built on demand (used by the symmetric
    /// difference decomposition and the saturation search).
    pub fn reverse_adjacency(&self) -> Vec<Vec<u32>> {
        let mut rev = vec![Vec::new(); self.n_right as usize];
        for l in 0..self.n_left() {
            for &r in self.neighbors(l) {
                rev[r as usize].push(l);
            }
        }
        rev
    }
}

/// Incremental builder for [`BipartiteGraph`].
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n_right: u32,
    offsets: Vec<u32>,
    adjacency: Vec<u32>,
}

impl Default for GraphBuilder {
    /// An empty builder for zero right vertices; [`GraphBuilder::reset`]
    /// re-sizes it for real use.
    fn default() -> GraphBuilder {
        GraphBuilder::new(0)
    }
}

impl GraphBuilder {
    fn new(n_right: u32) -> GraphBuilder {
        GraphBuilder {
            n_right,
            offsets: vec![0],
            adjacency: Vec::new(),
        }
    }

    /// Append a left vertex with the given neighbours (order preserved).
    /// Returns the new vertex's index.
    pub fn add_left(&mut self, neighbors: &[u32]) -> u32 {
        for &r in neighbors {
            debug_assert!(r < self.n_right, "right vertex {r} out of range");
            self.adjacency.push(r);
        }
        self.offsets.push(self.adjacency.len() as u32);
        (self.offsets.len() - 2) as u32
    }

    /// Finish building.
    pub fn finish(self) -> BipartiteGraph {
        BipartiteGraph {
            n_right: self.n_right,
            offsets: self.offsets,
            adjacency: self.adjacency,
        }
    }

    /// Clear the builder for a new graph, keeping the allocated capacity.
    pub fn reset(&mut self, n_right: u32) {
        self.n_right = n_right;
        self.offsets.clear();
        self.offsets.push(0);
        self.adjacency.clear();
    }

    /// Finish building without consuming the builder: the returned graph
    /// takes the accumulated edges, the builder keeps its capacity and is
    /// ready for [`GraphBuilder::reset`]. Callers can hand the graph back
    /// via [`GraphBuilder::reclaim`] to recycle its buffers.
    pub fn take_graph(&mut self) -> BipartiteGraph {
        let offsets = std::mem::replace(&mut self.offsets, vec![0]);
        let adjacency = std::mem::take(&mut self.adjacency);
        BipartiteGraph {
            n_right: self.n_right,
            offsets,
            adjacency,
        }
    }

    /// Recycle a no-longer-needed graph's buffers into this builder
    /// (the inverse of [`GraphBuilder::take_graph`]); leaves the builder
    /// reset for `n_right` right vertices.
    pub fn reclaim(&mut self, g: BipartiteGraph, n_right: u32) {
        self.offsets = g.offsets;
        self.adjacency = g.adjacency;
        self.reset(n_right);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_queries() {
        let g = BipartiteGraph::from_adjacency(3, &[vec![0, 2], vec![], vec![1]]);
        assert_eq!(g.n_left(), 3);
        assert_eq!(g.n_right(), 3);
        assert_eq!(g.n_edges(), 3);
        assert_eq!(g.neighbors(0), &[0, 2]);
        assert_eq!(g.neighbors(1), &[] as &[u32]);
        assert!(g.has_edge(0, 2));
        assert!(!g.has_edge(0, 1));
    }

    #[test]
    fn adjacency_order_is_preserved() {
        let g = BipartiteGraph::from_adjacency(4, &[vec![3, 1, 0]]);
        assert_eq!(g.neighbors(0), &[3, 1, 0]);
    }

    #[test]
    fn reverse_adjacency() {
        let g = BipartiteGraph::from_adjacency(2, &[vec![0, 1], vec![1]]);
        let rev = g.reverse_adjacency();
        assert_eq!(rev[0], vec![0]);
        assert_eq!(rev[1], vec![0, 1]);
    }

    #[test]
    fn incremental_builder_indices() {
        let mut b = BipartiteGraph::builder(5);
        assert_eq!(b.add_left(&[0]), 0);
        assert_eq!(b.add_left(&[1, 2]), 1);
        let g = b.finish();
        assert_eq!(g.n_left(), 2);
        assert_eq!(g.neighbors(1), &[1, 2]);
    }

    #[test]
    fn empty_graph() {
        let g = BipartiteGraph::from_adjacency(0, &[]);
        assert_eq!(g.n_left(), 0);
        assert_eq!(g.n_right(), 0);
        assert_eq!(g.n_edges(), 0);
    }
}
