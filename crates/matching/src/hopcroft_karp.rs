//! Hopcroft–Karp maximum-cardinality bipartite matching, `O(E √V)`.
//!
//! Used wherever an exact maximum matters and graphs get large: the offline
//! optimum over the whole horizon graph (the denominator of every measured
//! competitive ratio) and as the reference implementation the cheaper
//! incremental algorithms are tested against.

use crate::graph::BipartiteGraph;
use crate::matching::Matching;

const INF: u32 = u32::MAX;
const NIL: u32 = u32::MAX;

/// Compute a maximum-cardinality matching of `g`.
pub fn hopcroft_karp(g: &BipartiteGraph) -> Matching {
    let nl = g.n_left() as usize;
    let mut m = Matching::empty(g.n_left(), g.n_right());

    // Greedy warm start (cheap, typically covers most of the matching).
    for l in 0..g.n_left() {
        for &r in g.neighbors(l) {
            if m.right_free(r) {
                m.set(l, r);
                break;
            }
        }
    }

    let mut dist = vec![INF; nl];
    let mut queue = Vec::with_capacity(nl);

    loop {
        // BFS phase: layer free left vertices at distance 0.
        queue.clear();
        #[allow(clippy::needless_range_loop)] // l indexes both dist and the matching
        for l in 0..nl {
            if m.left_free(l as u32) {
                dist[l] = 0;
                queue.push(l as u32);
            } else {
                dist[l] = INF;
            }
        }
        let mut found_free_right = false;
        let mut head = 0;
        while head < queue.len() {
            let l = queue[head];
            head += 1;
            for &r in g.neighbors(l) {
                match m.right_mate(r) {
                    None => found_free_right = true,
                    Some(l2) => {
                        if dist[l2 as usize] == INF {
                            dist[l2 as usize] = dist[l as usize] + 1;
                            queue.push(l2);
                        }
                    }
                }
            }
        }
        if !found_free_right {
            break;
        }

        // DFS phase: vertex-disjoint shortest augmenting paths.
        let mut grown = false;
        for l in 0..nl {
            if m.left_free(l as u32) && dfs(g, &mut m, &mut dist, l as u32) {
                grown = true;
            }
        }
        if !grown {
            break;
        }
    }

    debug_assert!(m.is_valid(g));
    debug_assert!(m.is_maximum(g));
    m
}

fn dfs(g: &BipartiteGraph, m: &mut Matching, dist: &mut [u32], l: u32) -> bool {
    for &r in g.neighbors(l) {
        let next = m.right_mate(r);
        match next {
            None => {
                dist[l as usize] = INF;
                m.set(l, r);
                return true;
            }
            Some(l2) => {
                if dist[l2 as usize] == dist[l as usize].wrapping_add(1)
                    && dfs(g, m, dist, l2)
                {
                    dist[l as usize] = INF;
                    m.set(l, r);
                    return true;
                }
            }
        }
    }
    dist[l as usize] = INF;
    false
}

// NIL currently unused but kept for readability of the algorithm's origin.
#[allow(dead_code)]
const _: u32 = NIL;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;

    #[test]
    fn perfect_matching_on_complete_graph() {
        let lists: Vec<Vec<u32>> = (0..4).map(|_| (0..4).collect()).collect();
        let g = BipartiteGraph::from_adjacency(4, &lists);
        assert_eq!(hopcroft_karp(&g).size(), 4);
    }

    #[test]
    fn handles_unbalanced_sides() {
        let g = BipartiteGraph::from_adjacency(2, &[vec![0], vec![0], vec![1], vec![1]]);
        assert_eq!(hopcroft_karp(&g).size(), 2);
    }

    #[test]
    fn empty_and_edgeless() {
        let g = BipartiteGraph::from_adjacency(0, &[]);
        assert_eq!(hopcroft_karp(&g).size(), 0);
        let g2 = BipartiteGraph::from_adjacency(3, &[vec![], vec![]]);
        assert_eq!(hopcroft_karp(&g2).size(), 0);
    }

    #[test]
    fn needs_augmentation_beyond_greedy() {
        // Chain: l0-{r0,r1}, l1-{r0}: greedy l0->r0 strands l1.
        let g = BipartiteGraph::from_adjacency(2, &[vec![0, 1], vec![0]]);
        assert_eq!(hopcroft_karp(&g).size(), 2);
    }

    #[test]
    fn matches_brute_force_on_small_graphs() {
        // Deterministic battery of small adjacency structures.
        let cases: Vec<(u32, Vec<Vec<u32>>)> = vec![
            (3, vec![vec![0, 1], vec![1, 2], vec![0, 2], vec![1]]),
            (4, vec![vec![0], vec![0, 1], vec![1, 2], vec![2, 3], vec![3]]),
            (2, vec![vec![0, 1], vec![0, 1], vec![0, 1]]),
            (5, vec![vec![4], vec![3, 4], vec![2], vec![2, 3]]),
        ];
        for (nr, lists) in cases {
            let g = BipartiteGraph::from_adjacency(nr, &lists);
            assert_eq!(
                hopcroft_karp(&g).size(),
                brute::max_matching_size(&g),
                "mismatch on {lists:?}"
            );
        }
    }
}
