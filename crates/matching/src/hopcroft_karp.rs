//! Hopcroft–Karp maximum-cardinality bipartite matching, `O(E √V)`.
//!
//! Used wherever an exact maximum matters and graphs get large: the offline
//! optimum over the whole horizon graph (the denominator of every measured
//! competitive ratio) and as the reference implementation the cheaper
//! incremental algorithms are tested against.
//!
//! The DFS phase is iterative (explicit stack in the caller-supplied
//! [`MatchingWorkspace`]); horizon graphs grow with the trace length, and
//! the recursion the textbook formulation uses overflows the thread stack
//! long before the algorithm becomes slow. [`hopcroft_karp_reference`]
//! keeps the recursive formulation for differential testing.

use crate::graph::BipartiteGraph;
use crate::matching::Matching;
use crate::workspace::MatchingWorkspace;

const INF: u32 = u32::MAX;

/// Compute a maximum-cardinality matching of `g`.
///
/// Convenience wrapper over [`hopcroft_karp_with`] with a throwaway
/// workspace; hot loops should hold a [`MatchingWorkspace`] and call the
/// `_with` variant to avoid per-call scratch allocation.
pub fn hopcroft_karp(g: &BipartiteGraph) -> Matching {
    hopcroft_karp_with(g, &mut MatchingWorkspace::new())
}

/// [`hopcroft_karp`] reusing the scratch buffers in `ws`.
///
/// Identical output to [`hopcroft_karp`] (and bit-identical to
/// [`hopcroft_karp_reference`]): the iterative DFS visits neighbours in the
/// same order and performs the same distance updates as the recursive one.
pub fn hopcroft_karp_with(g: &BipartiteGraph, ws: &mut MatchingWorkspace) -> Matching {
    let nl = g.n_left() as usize;
    let mut m = Matching::empty(g.n_left(), g.n_right());
    greedy_warm_start(g, &mut m);
    ws.prepare_hk(nl);

    loop {
        if !bfs_layers(g, &m, &mut ws.dist, &mut ws.queue) {
            break;
        }
        // DFS phase: vertex-disjoint shortest augmenting paths.
        let mut grown = false;
        for l in 0..nl {
            if m.left_free(l as u32)
                && dfs_iterative(g, &mut m, &mut ws.dist, &mut ws.stack, l as u32)
            {
                grown = true;
            }
        }
        if !grown {
            break;
        }
    }

    debug_assert!(m.is_valid(g));
    debug_assert!(m.is_maximum(g));
    m
}

/// Greedy warm start (cheap, typically covers most of the matching).
fn greedy_warm_start(g: &BipartiteGraph, m: &mut Matching) {
    for l in 0..g.n_left() {
        for &r in g.neighbors(l) {
            if m.right_free(r) {
                m.set(l, r);
                break;
            }
        }
    }
}

/// BFS phase: layer free left vertices at distance 0. Returns whether any
/// free right vertex is reachable (i.e. an augmenting path may exist).
fn bfs_layers(g: &BipartiteGraph, m: &Matching, dist: &mut [u32], queue: &mut Vec<u32>) -> bool {
    queue.clear();
    #[allow(clippy::needless_range_loop)] // lint: l indexes both dist and the matching
    for l in 0..dist.len() {
        if m.left_free(l as u32) {
            dist[l] = 0;
            queue.push(l as u32);
        } else {
            dist[l] = INF;
        }
    }
    let mut found_free_right = false;
    let mut head = 0;
    while head < queue.len() {
        let l = queue[head];
        head += 1;
        for &r in g.neighbors(l) {
            match m.right_mate(r) {
                None => found_free_right = true,
                Some(l2) => {
                    if dist[l2 as usize] == INF {
                        dist[l2 as usize] = dist[l as usize] + 1;
                        queue.push(l2);
                    }
                }
            }
        }
    }
    found_free_right
}

/// Iterative replacement for the recursive shortest-augmenting-path DFS.
///
/// Each stack frame is `(left vertex, next neighbour index)`. The traversal
/// order, distance invalidations, and matching updates replicate the
/// recursive version exactly — on success the path edges are committed
/// deepest-first, exactly as the recursion unwinds in
/// [`hopcroft_karp_reference`].
fn dfs_iterative(
    g: &BipartiteGraph,
    m: &mut Matching,
    dist: &mut [u32],
    stack: &mut Vec<(u32, u32)>,
    root: u32,
) -> bool {
    stack.clear();
    stack.push((root, 0));
    while let Some(&mut (l, ref mut cursor)) = stack.last_mut() {
        let neighbors = g.neighbors(l);
        if (*cursor as usize) < neighbors.len() {
            let r = neighbors[*cursor as usize];
            *cursor += 1;
            match m.right_mate(r) {
                None => {
                    // Free right vertex: flip the whole path, deepest first.
                    dist[l as usize] = INF;
                    m.set(l, r);
                    stack.pop();
                    while let Some((pl, pcursor)) = stack.pop() {
                        // pcursor was already advanced past the chosen edge.
                        let taken = pcursor as usize - 1;
                        let pr = g.neighbors(pl)[taken];
                        dist[pl as usize] = INF;
                        m.set(pl, pr);
                    }
                    return true;
                }
                Some(l2) => {
                    if dist[l2 as usize] == dist[l as usize].wrapping_add(1) {
                        stack.push((l2, 0));
                    }
                }
            }
        } else {
            // Exhausted: dead-end this vertex for the rest of the phase.
            dist[l as usize] = INF;
            stack.pop();
        }
    }
    false
}

/// The textbook recursive formulation, kept verbatim as a differential
/// oracle for [`hopcroft_karp_with`]. Not for production use: recursion
/// depth equals augmenting-path length, which on adversarial horizon
/// graphs is `Θ(n_left)` and overflows the stack.
pub fn hopcroft_karp_reference(g: &BipartiteGraph) -> Matching {
    let nl = g.n_left() as usize;
    let mut m = Matching::empty(g.n_left(), g.n_right());
    greedy_warm_start(g, &mut m);

    let mut dist = vec![INF; nl];
    let mut queue = Vec::with_capacity(nl);

    loop {
        if !bfs_layers(g, &m, &mut dist, &mut queue) {
            break;
        }
        let mut grown = false;
        for l in 0..nl {
            if m.left_free(l as u32) && dfs_recursive(g, &mut m, &mut dist, l as u32) {
                grown = true;
            }
        }
        if !grown {
            break;
        }
    }

    debug_assert!(m.is_valid(g));
    debug_assert!(m.is_maximum(g));
    m
}

fn dfs_recursive(g: &BipartiteGraph, m: &mut Matching, dist: &mut [u32], l: u32) -> bool {
    for &r in g.neighbors(l) {
        let next = m.right_mate(r);
        match next {
            None => {
                dist[l as usize] = INF;
                m.set(l, r);
                return true;
            }
            Some(l2) => {
                if dist[l2 as usize] == dist[l as usize].wrapping_add(1)
                    && dfs_recursive(g, m, dist, l2)
                {
                    dist[l as usize] = INF;
                    m.set(l, r);
                    return true;
                }
            }
        }
    }
    dist[l as usize] = INF;
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;

    #[test]
    fn perfect_matching_on_complete_graph() {
        let lists: Vec<Vec<u32>> = (0..4).map(|_| (0..4).collect()).collect();
        let g = BipartiteGraph::from_adjacency(4, &lists);
        assert_eq!(hopcroft_karp(&g).size(), 4);
    }

    #[test]
    fn handles_unbalanced_sides() {
        let g = BipartiteGraph::from_adjacency(2, &[vec![0], vec![0], vec![1], vec![1]]);
        assert_eq!(hopcroft_karp(&g).size(), 2);
    }

    #[test]
    fn empty_and_edgeless() {
        let g = BipartiteGraph::from_adjacency(0, &[]);
        assert_eq!(hopcroft_karp(&g).size(), 0);
        let g2 = BipartiteGraph::from_adjacency(3, &[vec![], vec![]]);
        assert_eq!(hopcroft_karp(&g2).size(), 0);
    }

    #[test]
    fn needs_augmentation_beyond_greedy() {
        // Chain: l0-{r0,r1}, l1-{r0}: greedy l0->r0 strands l1.
        let g = BipartiteGraph::from_adjacency(2, &[vec![0, 1], vec![0]]);
        assert_eq!(hopcroft_karp(&g).size(), 2);
    }

    #[test]
    fn matches_brute_force_on_small_graphs() {
        // Deterministic battery of small adjacency structures.
        let cases: Vec<(u32, Vec<Vec<u32>>)> = vec![
            (3, vec![vec![0, 1], vec![1, 2], vec![0, 2], vec![1]]),
            (
                4,
                vec![vec![0], vec![0, 1], vec![1, 2], vec![2, 3], vec![3]],
            ),
            (2, vec![vec![0, 1], vec![0, 1], vec![0, 1]]),
            (5, vec![vec![4], vec![3, 4], vec![2], vec![2, 3]]),
        ];
        for (nr, lists) in cases {
            let g = BipartiteGraph::from_adjacency(nr, &lists);
            assert_eq!(
                hopcroft_karp(&g).size(),
                brute::max_matching_size(&g),
                "mismatch on {lists:?}"
            );
        }
    }

    #[test]
    fn iterative_bit_identical_to_reference_battery() {
        let cases: Vec<(u32, Vec<Vec<u32>>)> = vec![
            (3, vec![vec![0, 1], vec![1, 2], vec![0, 2], vec![1]]),
            (
                4,
                vec![vec![0], vec![0, 1], vec![1, 2], vec![2, 3], vec![3]],
            ),
            (2, vec![vec![0, 1], vec![0, 1], vec![0, 1]]),
            (5, vec![vec![4], vec![3, 4], vec![2], vec![2, 3]]),
            (
                6,
                vec![
                    vec![5, 0],
                    vec![0, 1],
                    vec![1, 2],
                    vec![2, 3],
                    vec![3, 4],
                    vec![4, 5],
                ],
            ),
        ];
        let mut ws = MatchingWorkspace::new();
        for (nr, lists) in cases {
            let g = BipartiteGraph::from_adjacency(nr, &lists);
            assert_eq!(
                hopcroft_karp_with(&g, &mut ws),
                hopcroft_karp_reference(&g),
                "divergence on {lists:?}"
            );
        }
    }

    #[test]
    fn survives_long_augmenting_chain() {
        // A path graph forcing one augmenting path through every vertex:
        // l_i -> {r_i, r_i+1}, except the last which only sees r_n-1 taken
        // greedily. Depth ~ n would overflow the recursive version's stack
        // for large n; the iterative version must handle it.
        let n: u32 = 200_000;
        let mut b = BipartiteGraph::builder(n);
        for i in 0..n - 1 {
            b.add_left(&[i, i + 1]);
        }
        b.add_left(&[0]);
        let g = b.finish();
        let m = hopcroft_karp(&g);
        assert_eq!(m.size(), n as usize);
    }

    #[test]
    fn workspace_reuse_is_transparent() {
        let g1 = BipartiteGraph::from_adjacency(2, &[vec![0, 1], vec![0]]);
        let g2 = BipartiteGraph::from_adjacency(5, &[vec![4], vec![3, 4], vec![2], vec![2, 3]]);
        let mut ws = MatchingWorkspace::new();
        for _ in 0..3 {
            assert_eq!(hopcroft_karp_with(&g1, &mut ws), hopcroft_karp(&g1));
            assert_eq!(hopcroft_karp_with(&g2, &mut ws), hopcroft_karp(&g2));
        }
    }
}
