//! Dynamic maximum bipartite matching under left-vertex insertion.
//!
//! The offline optimum of a request-scheduling prefix is a maximum matching
//! of the prefix's horizon graph, and prefixes grow one arrival at a time —
//! recomputing Hopcroft–Karp from scratch for every prefix costs
//! `O(R · E √V)` over a run of `R` arrivals. [`IncrementalMatching`]
//! maintains a maximum matching across insertions at one augmenting-path
//! search per new vertex instead:
//!
//! * **Invariant.** After every [`IncrementalMatching::add_left`] the stored
//!   matching is maximum in the graph inserted so far. Adding one left
//!   vertex raises the optimum by at most one, and a single alternating
//!   search from the new vertex finds an augmenting path iff one exists
//!   (the classical incremental-matching lemma), so the invariant is
//!   maintained in `O(E)` worst case and far less in practice.
//! * **Monotonicity.** Augmenting paths start at the newly inserted free
//!   vertex and alternate through *matched* vertices only. Consequently a
//!   matched vertex (either side) never becomes free again, and a left
//!   vertex left unmatched by its own insertion search stays unmatched
//!   forever. Both facts are what makes frontier advancement sound:
//!   exhausted state can be retired because no future search can reach it.
//! * **Scratch reuse.** Searches run on the same [`MatchingWorkspace`]
//!   buffers as the batch algorithms. Visited marks are cleared via a
//!   touched list, so per-insertion cost is proportional to the subgraph
//!   actually explored — stale columns from long-expired rounds are never
//!   rescanned, they are only reachable through genuine alternating paths.

use crate::matching::Matching;
use crate::workspace::MatchingWorkspace;
use rayon::prelude::*;

/// A maximum matching maintained under left-vertex insertions.
///
/// Left vertices are appended with [`IncrementalMatching::add_left`] and
/// numbered consecutively from 0; right vertices are implicit `0..n_right`
/// and grow on demand ([`IncrementalMatching::ensure_right`] or
/// automatically on insertion).
#[derive(Debug, Default)]
pub struct IncrementalMatching {
    n_right: u32,
    /// Per-left adjacency span into `edges` (an append-only arena).
    /// Retired vertices get an empty span.
    spans: Vec<(u32, u32)>,
    edges: Vec<u32>,
    m: Matching,
    ws: MatchingWorkspace,
    /// Total edges scanned by all insertion searches (perf accounting).
    edges_scanned: u64,
    /// Batch-phase BFS layer per left vertex (`u32::MAX` = unreached).
    /// Lazily grown and reset via `btouched`, so a batch costs only the
    /// subgraph it explores, never the full ever-growing left side.
    bdist: Vec<u32>,
    /// Left vertices whose `bdist` entry was written this phase.
    btouched: Vec<u32>,
    /// Batch-phase BFS queue of left vertices.
    bqueue: Vec<u32>,
}

/// Free-right "NIL layer" sentinel for the batch phases.
const UNREACHED: u32 = u32::MAX;

/// Below this many free batch roots the speculative parallel candidate
/// pass costs more than it saves; the phase runs the sequential layered
/// DFS directly.
const PAR_DFS_MIN_ROOTS: usize = 32;

impl IncrementalMatching {
    /// An empty matching over no vertices.
    pub fn new() -> IncrementalMatching {
        IncrementalMatching::default()
    }

    /// Number of left vertices inserted so far.
    #[inline]
    pub fn n_left(&self) -> u32 {
        self.spans.len() as u32
    }

    /// Current size of the right vertex set.
    #[inline]
    pub fn n_right(&self) -> u32 {
        self.n_right
    }

    /// Size of the maintained maximum matching.
    #[inline]
    pub fn size(&self) -> usize {
        self.m.size()
    }

    /// The maintained matching (maximum over everything inserted so far).
    #[inline]
    pub fn matching(&self) -> &Matching {
        &self.m
    }

    /// Total edges scanned across all insertion searches — the incremental
    /// engine's entire lifetime cost, measured in the same unit as one
    /// full solve's `O(E)` passes.
    #[inline]
    pub fn edges_scanned(&self) -> u64 {
        self.edges_scanned
    }

    /// Grow the right side to at least `n_right` vertices.
    pub fn ensure_right(&mut self, n_right: u32) {
        if n_right > self.n_right {
            self.n_right = n_right;
            self.m.ensure_right(n_right);
            // The visited mask must cover every right vertex and stay
            // all-false between searches; growth preserves both.
            self.ws.visited_r.grow(n_right as usize);
        }
    }

    /// Insert a left vertex adjacent to `neighbors` and restore maximality
    /// with one augmenting-path search from it. Returns the new vertex's
    /// index; whether the matching grew (only the new vertex — never any
    /// older one — can have become matched) is visible via
    /// [`Matching::left_free`] on the returned index.
    pub fn add_left(&mut self, neighbors: &[u32]) -> u32 {
        if let Some(&max) = neighbors.iter().max() {
            self.ensure_right(max + 1);
        }
        let l = self.m.push_left();
        debug_assert_eq!(l as usize, self.spans.len());
        let start = self.edges.len() as u32;
        self.edges.extend_from_slice(neighbors);
        self.spans.push((start, self.edges.len() as u32));
        self.augment_from(l);
        l
    }

    /// Retire a left vertex that can no longer participate (e.g. a request
    /// whose deadline window has fully expired while unmatched): its
    /// adjacency span is emptied so no structure ever scans it again.
    ///
    /// By the monotonicity invariant an unmatched vertex can never be
    /// matched later, so retiring it does not change any future optimum.
    ///
    /// # Panics
    /// Panics (debug) if the vertex is still matched — matched vertices
    /// carry the optimum and stay live for alternating paths.
    pub fn retire_left(&mut self, l: u32) {
        debug_assert!(
            self.m.left_free(l),
            "retiring matched left vertex {l} would corrupt the optimum"
        );
        let span = &mut self.spans[l as usize];
        span.1 = span.0;
    }

    /// Insert a whole batch of left vertices at once and restore maximality
    /// with Hopcroft–Karp-style phases instead of one augmenting search per
    /// vertex.
    ///
    /// The batch is given in CSR form: vertex `i` of the batch is adjacent
    /// to `neighbors[offsets[i] as usize..offsets[i + 1] as usize]`, so
    /// `offsets` has one more entry than the batch has vertices (and
    /// `offsets[0] == 0`). Returns the index of the first inserted vertex;
    /// the batch occupies consecutive indices from there.
    ///
    /// Each phase runs one BFS layering from the batch's still-free
    /// vertices and then augments along vertex-disjoint shortest paths —
    /// when many same-round arrivals compete for a saturated region, the
    /// whole batch shares a single `O(E)` proof of unmatchability instead
    /// of paying one failed full-component DFS per arrival. On hosts with
    /// more than one core, large phases additionally compute candidate
    /// paths for all roots in parallel (speculatively, against the frozen
    /// phase snapshot) and accept them sequentially in root order, so the
    /// result is bit-identical at any thread count.
    ///
    /// The matching after the batch is maximum, exactly as if each vertex
    /// had been inserted with [`IncrementalMatching::add_left`] — the two
    /// paths may pick different mate structures (and even different left
    /// supports: shortest-path preference vs. insertion-order preference),
    /// but the **cardinality** — all the streaming optimum ever exposes —
    /// is identical after every batch, and the monotonicity invariant
    /// (free after the batch ⇒ free forever) holds for both;
    /// `tests/batch_proptests.rs` pins this against the serial oracle.
    pub fn add_left_batch(&mut self, offsets: &[u32], neighbors: &[u32]) -> u32 {
        assert_eq!(offsets.first(), Some(&0), "CSR offsets start at 0");
        assert_eq!(
            offsets.last().copied().unwrap_or(0) as usize,
            neighbors.len(),
            "CSR offsets must cover the neighbor buffer"
        );
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        let first = self.n_left();
        match offsets.len() - 1 {
            0 => return first,
            // A singleton batch is exactly one serial insertion.
            1 => return self.add_left(neighbors),
            _ => {}
        }
        if let Some(&max) = neighbors.iter().max() {
            self.ensure_right(max + 1);
        }
        for w in offsets.windows(2) {
            let l = self.m.push_left();
            debug_assert_eq!(l as usize, self.spans.len());
            let start = self.edges.len() as u32;
            self.edges
                .extend_from_slice(&neighbors[w[0] as usize..w[1] as usize]);
            self.spans.push((start, self.edges.len() as u32));
        }
        self.augment_batch(first);
        first
    }

    /// Hopcroft–Karp phase loop over the batch `first..n_left`: BFS-layer
    /// from the still-free batch vertices, augment along vertex-disjoint
    /// shortest paths, repeat until no free right vertex is reachable.
    /// Older free vertices cannot head an augmenting path (monotonicity),
    /// so seeding only from the batch preserves maximality.
    fn augment_batch(&mut self, first: u32) {
        let IncrementalMatching {
            spans,
            edges,
            m,
            ws,
            edges_scanned,
            bdist,
            btouched,
            bqueue,
            ..
        } = self;
        let n_left = spans.len();
        if bdist.len() < n_left {
            bdist.resize(n_left, UNREACHED);
        }
        loop {
            // --- BFS layering from the batch's still-free vertices. ---
            bqueue.clear();
            btouched.clear();
            for l in first..n_left as u32 {
                if m.left_free(l) {
                    bdist[l as usize] = 0;
                    btouched.push(l);
                    bqueue.push(l);
                }
            }
            let roots = bqueue.len();
            if roots == 0 {
                return; // everything matched
            }
            // `dist_free` is the layer of the nearest free right vertex
            // (the classical dist[NIL]); layers past it never matter.
            let mut dist_free = UNREACHED;
            let mut head = 0;
            while head < bqueue.len() {
                let l = bqueue[head];
                head += 1;
                let dl = bdist[l as usize];
                if dl + 1 >= dist_free {
                    continue;
                }
                let (lo, hi) = spans[l as usize];
                for &r in &edges[lo as usize..hi as usize] {
                    *edges_scanned += 1;
                    match m.right_mate(r) {
                        None => dist_free = dist_free.min(dl + 1),
                        Some(l2) => {
                            if bdist[l2 as usize] == UNREACHED {
                                bdist[l2 as usize] = dl + 1;
                                btouched.push(l2);
                                bqueue.push(l2);
                            }
                        }
                    }
                }
            }
            if dist_free == UNREACHED {
                // No augmenting path from any batch vertex: maximum reached.
                for &l in btouched.iter() {
                    bdist[l as usize] = UNREACHED;
                }
                return;
            }
            // --- DFS pass: vertex-disjoint shortest augments. ---
            let before = m.size();
            let speculate = roots >= PAR_DFS_MIN_ROOTS
                && std::thread::available_parallelism().is_ok_and(|p| p.get() > 1);
            if speculate {
                // Speculative parallel pass: every root searches a candidate
                // shortest path against the frozen snapshot (read-only, so
                // the searches are pure functions and any schedule yields
                // the same candidates). Acceptance is sequential in root
                // order; a candidate invalidated by an earlier flip falls
                // back to the exact sequential search below.
                let snapshot = &*m;
                let candidates: Vec<Candidate> = bqueue[..roots]
                    .par_iter()
                    .map(|&root| candidate_path(spans, edges, snapshot, bdist, dist_free, root))
                    .collect();
                for (i, (cand, scanned)) in candidates.into_iter().enumerate() {
                    *edges_scanned += scanned;
                    let root = bqueue[i];
                    if let Some(path) = cand {
                        if accept_path(m, &path) {
                            continue;
                        }
                    }
                    if m.left_free(root) {
                        phase_dfs(spans, edges, m, bdist, dist_free, ws, edges_scanned, root);
                    }
                }
            } else {
                for &root in bqueue[..roots].iter() {
                    if m.left_free(root) {
                        phase_dfs(spans, edges, m, bdist, dist_free, ws, edges_scanned, root);
                    }
                }
            }
            assert!(
                m.size() > before,
                "a batch phase that saw a reachable free right must augment"
            );
            for &l in btouched.iter() {
                bdist[l as usize] = UNREACHED;
            }
        }
    }

    /// One alternating DFS from the (free) vertex `root`; flips the path on
    /// success. Returns whether the matching grew.
    fn augment_from(&mut self, root: u32) -> bool {
        let IncrementalMatching {
            spans,
            edges,
            m,
            ws,
            edges_scanned,
            ..
        } = self;
        let MatchingWorkspace {
            stack,
            visited_r,
            queue: touched,
            ..
        } = ws;
        stack.clear();
        touched.clear();
        stack.push((root, 0));
        let mut augmented = false;
        'search: while let Some(&mut (l, ref mut cursor)) = stack.last_mut() {
            let (lo, hi) = spans[l as usize];
            let adj = &edges[lo as usize..hi as usize];
            if (*cursor as usize) < adj.len() {
                let r = adj[*cursor as usize];
                *cursor += 1;
                *edges_scanned += 1;
                if !visited_r.insert(r as usize) {
                    continue;
                }
                touched.push(r);
                match m.right_mate(r) {
                    None => {
                        // Free right vertex: flip the path, deepest first
                        // (each parent's chosen right vertex is its child's
                        // just-vacated old mate).
                        m.set(l, r);
                        stack.pop();
                        while let Some((pl, pcursor)) = stack.pop() {
                            let plo = spans[pl as usize].0;
                            // pcursor was already advanced past the edge.
                            let taken = plo as usize + pcursor as usize - 1;
                            let pr = edges[taken];
                            m.set(pl, pr);
                        }
                        augmented = true;
                        break 'search;
                    }
                    Some(l2) => stack.push((l2, 0)),
                }
            } else {
                stack.pop();
            }
        }
        // Clear only the marks this search set (touched-list clearing keeps
        // per-insertion cost proportional to the explored subgraph, not to
        // the ever-growing right vertex set).
        for &r in touched.iter() {
            visited_r.clear(r as usize);
        }
        augmented
    }
}

/// A speculative root's result: the `(left, chosen right)` steps of one
/// shortest augmenting path if it found a free right, plus edges scanned.
type Candidate = (Option<Vec<(u32, u32)>>, u64);

/// Read-only candidate search for the speculative parallel pass: a layered
/// DFS from `root` over the frozen phase snapshot, returning the
/// `(left, chosen right)` steps of one shortest augmenting path (ending at
/// a free right in layer `dist_free`) plus the edges scanned. Pure function
/// of the snapshot — safe and deterministic under any parallel schedule.
fn candidate_path(
    spans: &[(u32, u32)],
    edges: &[u32],
    m: &Matching,
    dist: &[u32],
    dist_free: u32,
    root: u32,
) -> Candidate {
    let mut scanned = 0u64;
    // Per-root visited set over right vertices. A shared mask would race
    // across roots; the ordered set keeps the search O(E log E) worst case
    // while staying allocation-light for the short paths typical here.
    let mut visited: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();
    let mut stack: Vec<(u32, u32)> = vec![(root, 0)];
    while let Some(&mut (l, ref mut cursor)) = stack.last_mut() {
        let (lo, hi) = spans[l as usize];
        let adj = &edges[lo as usize..hi as usize];
        if (*cursor as usize) >= adj.len() {
            stack.pop();
            continue;
        }
        let r = adj[*cursor as usize];
        *cursor += 1;
        scanned += 1;
        if !visited.insert(r) {
            continue;
        }
        match m.right_mate(r) {
            None => {
                if dist[l as usize] + 1 == dist_free {
                    let path = stack
                        .iter()
                        .map(|&(pl, pc)| {
                            let plo = spans[pl as usize].0;
                            // pc was already advanced past the chosen edge.
                            let taken = plo as usize + pc as usize - 1;
                            (pl, edges[taken])
                        })
                        .collect();
                    return (Some(path), scanned);
                }
            }
            Some(l2) => {
                if dist[l2 as usize] == dist[l as usize] + 1 {
                    stack.push((l2, 0));
                }
            }
        }
    }
    (None, scanned)
}

/// Validate a speculative candidate against the *current* matching and flip
/// it if still intact: the root must still be free, every interior right
/// must still be mated to the next left on the path, and the terminal right
/// must still be free. Earlier accepted flips this phase change exactly
/// those mate relationships, so a stale candidate always fails one check.
fn accept_path(m: &mut Matching, path: &[(u32, u32)]) -> bool {
    let ok = m.left_free(path[0].0)
        && path
            .windows(2)
            .all(|w| m.right_mate(w[0].1) == Some(w[1].0))
        && path.last().is_some_and(|&(_, r)| m.right_mate(r).is_none());
    if ok {
        for &(l, r) in path {
            m.set(l, r);
        }
    }
    ok
}

/// The exact sequential phase DFS (textbook Hopcroft–Karp): follow only
/// layered edges (`dist[mate] == dist[l] + 1`), accept a free right exactly
/// at the `dist_free` layer, and poison a left's layer on failure so no
/// later root rescans its subtree this phase. Flips the path on success.
#[allow(clippy::too_many_arguments)] // lint: split borrows of one struct, not an API
fn phase_dfs(
    spans: &[(u32, u32)],
    edges: &[u32],
    m: &mut Matching,
    dist: &mut [u32],
    dist_free: u32,
    ws: &mut MatchingWorkspace,
    edges_scanned: &mut u64,
    root: u32,
) -> bool {
    let stack = &mut ws.stack;
    stack.clear();
    stack.push((root, 0));
    while let Some(&mut (l, ref mut cursor)) = stack.last_mut() {
        let (lo, hi) = spans[l as usize];
        let adj = &edges[lo as usize..hi as usize];
        if (*cursor as usize) >= adj.len() {
            dist[l as usize] = UNREACHED; // nothing here this phase
            stack.pop();
            continue;
        }
        let r = adj[*cursor as usize];
        *cursor += 1;
        *edges_scanned += 1;
        match m.right_mate(r) {
            None => {
                if dist[l as usize] + 1 == dist_free {
                    // Flip, deepest first (as in `augment_from`).
                    m.set(l, r);
                    stack.pop();
                    while let Some((pl, pc)) = stack.pop() {
                        let plo = spans[pl as usize].0;
                        // pc was already advanced past the chosen edge.
                        let taken = plo as usize + pc as usize - 1;
                        let pr = edges[taken];
                        m.set(pl, pr);
                    }
                    return true;
                }
            }
            Some(l2) => {
                if dist[l2 as usize] == dist[l as usize] + 1 {
                    stack.push((l2, 0));
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::BipartiteGraph;
    use crate::hopcroft_karp;

    /// Insert every adjacency list in order and compare the running size
    /// against a fresh Hopcroft–Karp solve of each prefix graph.
    fn check_prefix_parity(n_right: u32, lists: &[Vec<u32>]) {
        let mut inc = IncrementalMatching::new();
        inc.ensure_right(n_right);
        for p in 0..lists.len() {
            inc.add_left(&lists[p]);
            let g = BipartiteGraph::from_adjacency(n_right, &lists[..=p]);
            assert_eq!(
                inc.size(),
                hopcroft_karp(&g).size(),
                "prefix {} of {lists:?}",
                p + 1
            );
        }
    }

    #[test]
    fn matches_full_solve_on_every_prefix() {
        let cases: Vec<(u32, Vec<Vec<u32>>)> = vec![
            (3, vec![vec![0, 1], vec![1, 2], vec![0, 2], vec![1]]),
            (
                4,
                vec![vec![0], vec![0, 1], vec![1, 2], vec![2, 3], vec![3]],
            ),
            (2, vec![vec![0, 1], vec![0, 1], vec![0, 1]]),
            (5, vec![vec![4], vec![3, 4], vec![2], vec![2, 3]]),
            (1, vec![vec![0], vec![0], vec![]]),
            (
                6,
                vec![
                    vec![5, 0],
                    vec![0, 1],
                    vec![1, 2],
                    vec![2, 3],
                    vec![3, 4],
                    vec![4, 5],
                ],
            ),
        ];
        for (nr, lists) in cases {
            check_prefix_parity(nr, &lists);
        }
    }

    #[test]
    fn augmentation_rematches_through_chains() {
        // l0 takes r0 greedily; l1 (only r0) forces an augmenting path
        // l1 -> r0 -> l0 -> r1.
        let mut inc = IncrementalMatching::new();
        inc.add_left(&[0, 1]);
        assert_eq!(inc.size(), 1);
        inc.add_left(&[0]);
        assert_eq!(inc.size(), 2);
        assert_eq!(inc.matching().left_mate(1), Some(0));
        assert_eq!(inc.matching().left_mate(0), Some(1));
    }

    #[test]
    fn matched_vertices_never_become_free() {
        let lists: Vec<Vec<u32>> = vec![vec![0, 1], vec![0], vec![1, 2], vec![2, 3], vec![0, 3]];
        let mut inc = IncrementalMatching::new();
        let mut matched_lefts: Vec<u32> = Vec::new();
        for list in &lists {
            let l = inc.add_left(list);
            for &ml in &matched_lefts {
                assert!(
                    inc.matching().left_mate(ml).is_some(),
                    "previously matched left {ml} became free"
                );
            }
            if inc.matching().left_mate(l).is_some() {
                matched_lefts.push(l);
            }
        }
    }

    #[test]
    fn unmatched_vertex_stays_unmatched_and_can_retire() {
        let mut inc = IncrementalMatching::new();
        inc.add_left(&[0]);
        inc.add_left(&[0]); // duplicate demand: stays free forever
        assert_eq!(inc.size(), 1);
        assert!(inc.matching().left_free(1));
        inc.retire_left(1);
        // Later insertions still augment correctly.
        inc.add_left(&[0, 1]);
        assert_eq!(inc.size(), 2);
    }

    #[test]
    fn right_side_grows_on_demand() {
        let mut inc = IncrementalMatching::new();
        inc.add_left(&[7]);
        assert_eq!(inc.n_right(), 8);
        assert_eq!(inc.size(), 1);
        inc.ensure_right(16);
        assert_eq!(inc.n_right(), 16);
        assert_eq!(inc.size(), 1);
    }

    #[test]
    fn empty_adjacency_is_fine() {
        let mut inc = IncrementalMatching::new();
        inc.add_left(&[]);
        assert_eq!(inc.size(), 0);
        inc.add_left(&[0]);
        assert_eq!(inc.size(), 1);
    }

    #[test]
    fn long_chain_does_not_overflow() {
        // Same shape as the Hopcroft–Karp stack test: one augmenting path
        // through every vertex; the iterative search must survive.
        let n: u32 = 200_000;
        let mut inc = IncrementalMatching::new();
        inc.ensure_right(n);
        for i in 0..n - 1 {
            inc.add_left(&[i, i + 1]);
        }
        inc.add_left(&[0]);
        assert_eq!(inc.size(), n as usize);
    }
}
