//! Dynamic maximum bipartite matching under left-vertex insertion.
//!
//! The offline optimum of a request-scheduling prefix is a maximum matching
//! of the prefix's horizon graph, and prefixes grow one arrival at a time —
//! recomputing Hopcroft–Karp from scratch for every prefix costs
//! `O(R · E √V)` over a run of `R` arrivals. [`IncrementalMatching`]
//! maintains a maximum matching across insertions at one augmenting-path
//! search per new vertex instead:
//!
//! * **Invariant.** After every [`IncrementalMatching::add_left`] the stored
//!   matching is maximum in the graph inserted so far. Adding one left
//!   vertex raises the optimum by at most one, and a single alternating
//!   search from the new vertex finds an augmenting path iff one exists
//!   (the classical incremental-matching lemma), so the invariant is
//!   maintained in `O(E)` worst case and far less in practice.
//! * **Monotonicity.** Augmenting paths start at the newly inserted free
//!   vertex and alternate through *matched* vertices only. Consequently a
//!   matched vertex (either side) never becomes free again, and a left
//!   vertex left unmatched by its own insertion search stays unmatched
//!   forever. Both facts are what makes frontier advancement sound:
//!   exhausted state can be retired because no future search can reach it.
//! * **Scratch reuse.** Searches run on the same [`MatchingWorkspace`]
//!   buffers as the batch algorithms. Visited marks are cleared via a
//!   touched list, so per-insertion cost is proportional to the subgraph
//!   actually explored — stale columns from long-expired rounds are never
//!   rescanned, they are only reachable through genuine alternating paths.

use crate::matching::Matching;
use crate::workspace::MatchingWorkspace;

/// A maximum matching maintained under left-vertex insertions.
///
/// Left vertices are appended with [`IncrementalMatching::add_left`] and
/// numbered consecutively from 0; right vertices are implicit `0..n_right`
/// and grow on demand ([`IncrementalMatching::ensure_right`] or
/// automatically on insertion).
#[derive(Debug, Default)]
pub struct IncrementalMatching {
    n_right: u32,
    /// Per-left adjacency span into `edges` (an append-only arena).
    /// Retired vertices get an empty span.
    spans: Vec<(u32, u32)>,
    edges: Vec<u32>,
    m: Matching,
    ws: MatchingWorkspace,
    /// Total edges scanned by all insertion searches (perf accounting).
    edges_scanned: u64,
}

impl IncrementalMatching {
    /// An empty matching over no vertices.
    pub fn new() -> IncrementalMatching {
        IncrementalMatching::default()
    }

    /// Number of left vertices inserted so far.
    #[inline]
    pub fn n_left(&self) -> u32 {
        self.spans.len() as u32
    }

    /// Current size of the right vertex set.
    #[inline]
    pub fn n_right(&self) -> u32 {
        self.n_right
    }

    /// Size of the maintained maximum matching.
    #[inline]
    pub fn size(&self) -> usize {
        self.m.size()
    }

    /// The maintained matching (maximum over everything inserted so far).
    #[inline]
    pub fn matching(&self) -> &Matching {
        &self.m
    }

    /// Total edges scanned across all insertion searches — the incremental
    /// engine's entire lifetime cost, measured in the same unit as one
    /// full solve's `O(E)` passes.
    #[inline]
    pub fn edges_scanned(&self) -> u64 {
        self.edges_scanned
    }

    /// Grow the right side to at least `n_right` vertices.
    pub fn ensure_right(&mut self, n_right: u32) {
        if n_right > self.n_right {
            self.n_right = n_right;
            self.m.ensure_right(n_right);
            // The visited mask must cover every right vertex and stay
            // all-false between searches; growth preserves both.
            self.ws.visited_r.grow(n_right as usize);
        }
    }

    /// Insert a left vertex adjacent to `neighbors` and restore maximality
    /// with one augmenting-path search from it. Returns the new vertex's
    /// index; whether the matching grew (only the new vertex — never any
    /// older one — can have become matched) is visible via
    /// [`Matching::left_free`] on the returned index.
    pub fn add_left(&mut self, neighbors: &[u32]) -> u32 {
        if let Some(&max) = neighbors.iter().max() {
            self.ensure_right(max + 1);
        }
        let l = self.m.push_left();
        debug_assert_eq!(l as usize, self.spans.len());
        let start = self.edges.len() as u32;
        self.edges.extend_from_slice(neighbors);
        self.spans.push((start, self.edges.len() as u32));
        self.augment_from(l);
        l
    }

    /// Retire a left vertex that can no longer participate (e.g. a request
    /// whose deadline window has fully expired while unmatched): its
    /// adjacency span is emptied so no structure ever scans it again.
    ///
    /// By the monotonicity invariant an unmatched vertex can never be
    /// matched later, so retiring it does not change any future optimum.
    ///
    /// # Panics
    /// Panics (debug) if the vertex is still matched — matched vertices
    /// carry the optimum and stay live for alternating paths.
    pub fn retire_left(&mut self, l: u32) {
        debug_assert!(
            self.m.left_free(l),
            "retiring matched left vertex {l} would corrupt the optimum"
        );
        let span = &mut self.spans[l as usize];
        span.1 = span.0;
    }

    /// One alternating DFS from the (free) vertex `root`; flips the path on
    /// success. Returns whether the matching grew.
    fn augment_from(&mut self, root: u32) -> bool {
        let IncrementalMatching {
            spans,
            edges,
            m,
            ws,
            edges_scanned,
            ..
        } = self;
        let MatchingWorkspace {
            stack,
            visited_r,
            queue: touched,
            ..
        } = ws;
        stack.clear();
        touched.clear();
        stack.push((root, 0));
        let mut augmented = false;
        'search: while let Some(&mut (l, ref mut cursor)) = stack.last_mut() {
            let (lo, hi) = spans[l as usize];
            let adj = &edges[lo as usize..hi as usize];
            if (*cursor as usize) < adj.len() {
                let r = adj[*cursor as usize];
                *cursor += 1;
                *edges_scanned += 1;
                if !visited_r.insert(r as usize) {
                    continue;
                }
                touched.push(r);
                match m.right_mate(r) {
                    None => {
                        // Free right vertex: flip the path, deepest first
                        // (each parent's chosen right vertex is its child's
                        // just-vacated old mate).
                        m.set(l, r);
                        stack.pop();
                        while let Some((pl, pcursor)) = stack.pop() {
                            let plo = spans[pl as usize].0;
                            let pr = edges[plo as usize + pcursor as usize - 1];
                            m.set(pl, pr);
                        }
                        augmented = true;
                        break 'search;
                    }
                    Some(l2) => stack.push((l2, 0)),
                }
            } else {
                stack.pop();
            }
        }
        // Clear only the marks this search set (touched-list clearing keeps
        // per-insertion cost proportional to the explored subgraph, not to
        // the ever-growing right vertex set).
        for &r in touched.iter() {
            visited_r.clear(r as usize);
        }
        augmented
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::BipartiteGraph;
    use crate::hopcroft_karp;

    /// Insert every adjacency list in order and compare the running size
    /// against a fresh Hopcroft–Karp solve of each prefix graph.
    fn check_prefix_parity(n_right: u32, lists: &[Vec<u32>]) {
        let mut inc = IncrementalMatching::new();
        inc.ensure_right(n_right);
        for p in 0..lists.len() {
            inc.add_left(&lists[p]);
            let g = BipartiteGraph::from_adjacency(n_right, &lists[..=p]);
            assert_eq!(
                inc.size(),
                hopcroft_karp(&g).size(),
                "prefix {} of {lists:?}",
                p + 1
            );
        }
    }

    #[test]
    fn matches_full_solve_on_every_prefix() {
        let cases: Vec<(u32, Vec<Vec<u32>>)> = vec![
            (3, vec![vec![0, 1], vec![1, 2], vec![0, 2], vec![1]]),
            (
                4,
                vec![vec![0], vec![0, 1], vec![1, 2], vec![2, 3], vec![3]],
            ),
            (2, vec![vec![0, 1], vec![0, 1], vec![0, 1]]),
            (5, vec![vec![4], vec![3, 4], vec![2], vec![2, 3]]),
            (1, vec![vec![0], vec![0], vec![]]),
            (
                6,
                vec![
                    vec![5, 0],
                    vec![0, 1],
                    vec![1, 2],
                    vec![2, 3],
                    vec![3, 4],
                    vec![4, 5],
                ],
            ),
        ];
        for (nr, lists) in cases {
            check_prefix_parity(nr, &lists);
        }
    }

    #[test]
    fn augmentation_rematches_through_chains() {
        // l0 takes r0 greedily; l1 (only r0) forces an augmenting path
        // l1 -> r0 -> l0 -> r1.
        let mut inc = IncrementalMatching::new();
        inc.add_left(&[0, 1]);
        assert_eq!(inc.size(), 1);
        inc.add_left(&[0]);
        assert_eq!(inc.size(), 2);
        assert_eq!(inc.matching().left_mate(1), Some(0));
        assert_eq!(inc.matching().left_mate(0), Some(1));
    }

    #[test]
    fn matched_vertices_never_become_free() {
        let lists: Vec<Vec<u32>> = vec![vec![0, 1], vec![0], vec![1, 2], vec![2, 3], vec![0, 3]];
        let mut inc = IncrementalMatching::new();
        let mut matched_lefts: Vec<u32> = Vec::new();
        for list in &lists {
            let l = inc.add_left(list);
            for &ml in &matched_lefts {
                assert!(
                    inc.matching().left_mate(ml).is_some(),
                    "previously matched left {ml} became free"
                );
            }
            if inc.matching().left_mate(l).is_some() {
                matched_lefts.push(l);
            }
        }
    }

    #[test]
    fn unmatched_vertex_stays_unmatched_and_can_retire() {
        let mut inc = IncrementalMatching::new();
        inc.add_left(&[0]);
        inc.add_left(&[0]); // duplicate demand: stays free forever
        assert_eq!(inc.size(), 1);
        assert!(inc.matching().left_free(1));
        inc.retire_left(1);
        // Later insertions still augment correctly.
        inc.add_left(&[0, 1]);
        assert_eq!(inc.size(), 2);
    }

    #[test]
    fn right_side_grows_on_demand() {
        let mut inc = IncrementalMatching::new();
        inc.add_left(&[7]);
        assert_eq!(inc.n_right(), 8);
        assert_eq!(inc.size(), 1);
        inc.ensure_right(16);
        assert_eq!(inc.n_right(), 16);
        assert_eq!(inc.size(), 1);
    }

    #[test]
    fn empty_adjacency_is_fine() {
        let mut inc = IncrementalMatching::new();
        inc.add_left(&[]);
        assert_eq!(inc.size(), 0);
        inc.add_left(&[0]);
        assert_eq!(inc.size(), 1);
    }

    #[test]
    fn long_chain_does_not_overflow() {
        // Same shape as the Hopcroft–Karp stack test: one augmenting path
        // through every vertex; the iterative search must survive.
        let n: u32 = 200_000;
        let mut inc = IncrementalMatching::new();
        inc.ensure_right(n);
        for i in 0..n - 1 {
            inc.add_left(&[i, i + 1]);
        }
        inc.add_left(&[0]);
        assert_eq!(inc.size(), n as usize);
    }
}
