//! Kuhn-style single-source augmentation with caller-controlled order.
//!
//! Strategies use this in two ways:
//!
//! * **Which requests get scheduled.** Matchable left-vertex subsets form a
//!   transversal matroid, so augmenting left vertices greedily in priority
//!   order yields the priority-lexicographically best matched set among all
//!   maximum matchings. This is how hint-guided strategy members decide which
//!   requests to serve when not all fit (e.g. the group ordering the
//!   adversary of Theorem 2.2 forces on `A_current`).
//! * **Which slot a request lands on.** The search tries neighbours in
//!   adjacency order, so a graph built with the preferred resource's slots
//!   first steers the assignment without affecting cardinality.
//!
//! The search is iterative (explicit stack in the workspace) to keep
//! augmenting-path depth off the thread stack; the traversal order is
//! identical to the recursive textbook version, so results are unchanged.

use crate::bitset::BitSet;
use crate::graph::BipartiteGraph;
use crate::matching::Matching;
use crate::workspace::MatchingWorkspace;

/// Try to enlarge `m` by one via an augmenting path starting at the free
/// left vertex `start`. Returns `true` if the matching grew.
///
/// Matched left vertices are never unmatched (they may change mates), so a
/// sequence of `kuhn_augment` calls preserves every earlier success — the
/// property the `A_eager`/`A_balance` rule "all previously scheduled requests
/// remain scheduled" relies on.
///
/// Convenience wrapper over [`kuhn_augment_with`] with a throwaway
/// workspace; hot loops should reuse a [`MatchingWorkspace`].
pub fn kuhn_augment(g: &BipartiteGraph, m: &mut Matching, start: u32) -> bool {
    kuhn_augment_with(g, m, start, &mut MatchingWorkspace::new())
}

/// [`kuhn_augment`] reusing the scratch buffers in `ws`.
pub fn kuhn_augment_with(
    g: &BipartiteGraph,
    m: &mut Matching,
    start: u32,
    ws: &mut MatchingWorkspace,
) -> bool {
    debug_assert!(m.left_free(start), "kuhn_augment needs a free left vertex");
    ws.prepare_kuhn(g.n_right() as usize);
    try_grow(g, m, start, &mut ws.visited_r, &mut ws.stack)
}

/// Iterative depth-first augmenting-path search. Frames are
/// `(left vertex, next neighbour index)`; on success the path is committed
/// deepest-first, exactly as the recursion it replaces unwound.
fn try_grow(
    g: &BipartiteGraph,
    m: &mut Matching,
    start: u32,
    visited_r: &mut BitSet,
    stack: &mut Vec<(u32, u32)>,
) -> bool {
    stack.clear();
    stack.push((start, 0));
    while let Some(&mut (l, ref mut cursor)) = stack.last_mut() {
        let neighbors = g.neighbors(l);
        if (*cursor as usize) < neighbors.len() {
            let r = neighbors[*cursor as usize];
            *cursor += 1;
            if !visited_r.insert(r as usize) {
                continue;
            }
            match m.right_mate(r) {
                None => {
                    m.set(l, r);
                    stack.pop();
                    while let Some((pl, pcursor)) = stack.pop() {
                        // pcursor was already advanced past the chosen edge.
                        let taken = pcursor as usize - 1;
                        let pr = g.neighbors(pl)[taken];
                        m.set(pl, pr);
                    }
                    return true;
                }
                Some(l2) => stack.push((l2, 0)),
            }
        } else {
            stack.pop();
        }
    }
    false
}

/// Augment every listed free left vertex, in the given order; returns how
/// many succeeded. Vertices already matched are skipped.
///
/// Running this over all left vertices produces a maximum matching (Kuhn's
/// algorithm); running it in priority order additionally fixes *which*
/// left vertices are matched (matroid greedy).
pub fn kuhn_in_order(g: &BipartiteGraph, m: &mut Matching, order: &[u32]) -> usize {
    kuhn_in_order_with(g, m, order, &mut MatchingWorkspace::new())
}

/// [`kuhn_in_order`] reusing the scratch buffers in `ws`.
pub fn kuhn_in_order_with(
    g: &BipartiteGraph,
    m: &mut Matching,
    order: &[u32],
    ws: &mut MatchingWorkspace,
) -> usize {
    let mut grown = 0;
    for &l in order {
        if m.left_free(l) && kuhn_augment_with(g, m, l, ws) {
            grown += 1;
        }
    }
    grown
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hopcroft_karp;

    #[test]
    fn augments_through_occupied_slots() {
        // l0 -> {r0}, l1 -> {r0, r1}: matching l1->r0 first forces a reroute.
        let g = BipartiteGraph::from_adjacency(2, &[vec![0], vec![0, 1]]);
        let mut m = Matching::empty(2, 2);
        m.set(1, 0);
        assert!(kuhn_augment(&g, &mut m, 0));
        assert_eq!(m.size(), 2);
        assert_eq!(m.left_mate(0), Some(0));
        assert_eq!(m.left_mate(1), Some(1));
    }

    #[test]
    fn fails_when_no_augmenting_path() {
        let g = BipartiteGraph::from_adjacency(1, &[vec![0], vec![0]]);
        let mut m = Matching::empty(2, 1);
        m.set(0, 0);
        assert!(!kuhn_augment(&g, &mut m, 1));
        assert_eq!(m.size(), 1);
        assert_eq!(m.left_mate(0), Some(0)); // untouched on failure
    }

    #[test]
    fn priority_order_decides_who_is_matched() {
        // Two requests compete for one slot; the earlier in `order` wins.
        let g = BipartiteGraph::from_adjacency(1, &[vec![0], vec![0]]);
        let mut m = Matching::empty(2, 1);
        assert_eq!(kuhn_in_order(&g, &mut m, &[1, 0]), 1);
        assert_eq!(m.left_mate(1), Some(0));
        assert!(m.left_free(0));
    }

    #[test]
    fn adjacency_order_decides_slot_choice() {
        let g = BipartiteGraph::from_adjacency(2, &[vec![1, 0]]);
        let mut m = Matching::empty(1, 2);
        assert!(kuhn_augment(&g, &mut m, 0));
        assert_eq!(m.left_mate(0), Some(1)); // first listed neighbour
    }

    #[test]
    fn full_order_reaches_maximum() {
        // A graph where greedy strands a vertex but Kuhn does not.
        let g = BipartiteGraph::from_adjacency(3, &[vec![0, 1], vec![0], vec![1, 2]]);
        let mut m = Matching::empty(3, 3);
        let grown = kuhn_in_order(&g, &mut m, &[0, 1, 2]);
        assert_eq!(grown, 3);
        assert_eq!(m.size(), hopcroft_karp(&g).size());
        assert!(m.is_maximum(&g));
    }

    #[test]
    fn preserves_previously_matched_lefts() {
        let g = BipartiteGraph::from_adjacency(3, &[vec![0], vec![0, 1], vec![1, 2]]);
        let mut m = Matching::empty(3, 3);
        m.set(1, 0);
        m.set(2, 1);
        // Augmenting l0 must reroute l1 (and possibly l2) but keep them matched.
        assert!(kuhn_augment(&g, &mut m, 0));
        assert_eq!(m.size(), 3);
        assert!(!m.left_free(1));
        assert!(!m.left_free(2));
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        // Augmenting the tail vertex reroutes the entire pre-built chain in
        // one search of depth ~n.
        let n: u32 = 150_000;
        let mut b = BipartiteGraph::builder(n);
        for i in 0..n - 1 {
            b.add_left(&[i, i + 1]);
        }
        b.add_left(&[0]);
        let g = b.finish();
        let mut m = Matching::empty(n, n);
        for i in 0..n - 1 {
            m.set(i, i);
        }
        let mut ws = MatchingWorkspace::new();
        assert!(kuhn_augment_with(&g, &mut m, n - 1, &mut ws));
        assert_eq!(m.size(), n as usize);
    }

    #[test]
    fn workspace_reuse_matches_fresh_calls() {
        let g = BipartiteGraph::from_adjacency(3, &[vec![0, 1], vec![0], vec![1, 2], vec![2]]);
        let mut ws = MatchingWorkspace::new();
        let mut m1 = Matching::empty(4, 3);
        kuhn_in_order_with(&g, &mut m1, &[0, 1, 2, 3], &mut ws);
        let mut m2 = Matching::empty(4, 3);
        kuhn_in_order(&g, &mut m2, &[0, 1, 2, 3]);
        assert_eq!(m1, m2);
    }
}
