//! # reqsched-matching
//!
//! The bipartite-matching engine under every scheduling strategy in this
//! workspace. In the paper's model, a schedule *is* a matching in the
//! bipartite graph `G = (R ∪ S, E)` of requests `R` versus resource time
//! slots `S`; an optimal offline schedule is a maximum-cardinality matching,
//! and the online strategies differ in which matching of the currently known
//! subgraph `G_t` they maintain.
//!
//! Provided algorithms:
//!
//! * [`greedy_maximal`] — any maximal matching, built greedily in a caller
//!   supplied left-vertex order (tie-break control).
//! * [`kuhn_augment`] / [`kuhn_in_order`] — single-source augmenting-path
//!   search in caller-controlled adjacency order; processing left vertices
//!   in priority order yields the lexicographically best matchable set over
//!   the transversal matroid (how strategies decide *which* requests get
//!   scheduled when not all can be).
//! * [`hopcroft_karp`] — maximum-cardinality matching in `O(E √V)`, used for
//!   the offline optimum.
//! * [`IncrementalMatching`] — dynamic maximum matching under left-vertex
//!   insertion (one augmenting search per arrival), the engine behind the
//!   streaming per-prefix optimum.
//! * [`DynamicMatching`] — dynamic maximum matching over a sliding slot
//!   window: left removal, slot-column retirement/extension, and in-place
//!   level saturation, each repaired by one alternating search. The engine
//!   behind the strategies' delta round path.
//! * [`saturate_levels`] — keep cardinality and every matched left vertex
//!   matched, but rearrange right endpoints to lexicographically maximize
//!   coverage of right-vertex priority levels. This implements the paper's
//!   balancing function `F = Σ_j X_{t+j} (n+1)^{d-j}` (a lexicographic
//!   objective on per-round slot counts) and `A_eager`'s "maximum number of
//!   requests scheduled in the current round" rule.
//! * [`symmetric_difference`] — decompose `M₁ ⊕ M₂` into alternating paths
//!   and cycles and classify augmenting paths by *order* (number of request
//!   vertices), the paper's main proof tool; tests use it to check structural
//!   lemmas like "no augmenting path of order ≤ 2 survives `A_eager`".
//! * [`brute`] — exponential-time exact solvers for cross-validation in
//!   tests.
//! * [`BitSet`] / [`BitMatrix`] — the u64-word visited/liveness masks every
//!   search above runs on (one bit per vertex, word-parallel clears and
//!   `trailing_zeros` scans).

mod bitset;
mod diff;
mod dynamic;
mod graph;
mod hopcroft_karp;
mod incremental;
mod kuhn;
mod matching;
mod saturate;
mod workspace;

pub mod brute;

pub use bitset::{BitMatrix, BitSet};
pub use diff::{symmetric_difference, AltComponent, DiffReport};
pub use dynamic::DynamicMatching;
pub use graph::{BipartiteGraph, GraphBuilder};
pub use hopcroft_karp::{hopcroft_karp, hopcroft_karp_reference, hopcroft_karp_with};
pub use incremental::IncrementalMatching;
pub use kuhn::{kuhn_augment, kuhn_augment_with, kuhn_in_order, kuhn_in_order_with};
pub use matching::Matching;
pub use saturate::{coverage_by_level, saturate_levels, saturate_levels_with};
pub use workspace::MatchingWorkspace;

/// Greedily build a maximal matching, scanning left vertices in `order` and
/// taking each one's first free neighbour (in adjacency order).
///
/// The result is maximal (no free left vertex has a free neighbour) but not
/// necessarily maximum. `order` must be a permutation of `0..g.n_left()`.
pub fn greedy_maximal(g: &BipartiteGraph, order: &[u32]) -> Matching {
    debug_assert_eq!(order.len(), g.n_left() as usize);
    let mut m = Matching::empty(g.n_left(), g.n_right());
    for &l in order {
        for &r in g.neighbors(l) {
            if m.right_mate(r).is_none() {
                m.set(l, r);
                break;
            }
        }
    }
    debug_assert!(m.is_maximal(g));
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_is_maximal_but_maybe_not_maximum() {
        // Classic 2x2 trap: l0 -> {r0, r1}, l1 -> {r0}.
        let g = BipartiteGraph::from_adjacency(2, &[vec![0, 1], vec![0]]);
        let m = greedy_maximal(&g, &[0, 1]);
        assert!(m.is_maximal(&g));
        assert_eq!(m.size(), 1); // greedy trap
        let opt = hopcroft_karp(&g);
        assert_eq!(opt.size(), 2); // the maximum avoids it
    }

    #[test]
    fn greedy_respects_order() {
        let g = BipartiteGraph::from_adjacency(1, &[vec![0], vec![0]]);
        let m = greedy_maximal(&g, &[1, 0]);
        assert_eq!(m.left_mate(1), Some(0));
        assert_eq!(m.left_mate(0), None);
    }
}
