//! The matching data structure shared by all algorithms in this crate.

use crate::bitset::BitSet;
use crate::graph::BipartiteGraph;

const NONE: u32 = u32::MAX;

/// A matching in a [`BipartiteGraph`], stored as mate arrays for both sides.
///
/// `u32::MAX` is the internal "free" sentinel; the public API speaks
/// `Option<u32>`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Matching {
    l2r: Vec<u32>,
    r2l: Vec<u32>,
    size: u32,
}

impl Default for Matching {
    /// The empty matching on a 0 × 0 vertex set ([`Matching::reset`]
    /// re-sizes it for real use).
    fn default() -> Matching {
        Matching::empty(0, 0)
    }
}

impl Matching {
    /// The empty matching on `n_left` × `n_right` vertices.
    pub fn empty(n_left: u32, n_right: u32) -> Matching {
        Matching {
            l2r: vec![NONE; n_left as usize],
            r2l: vec![NONE; n_right as usize],
            size: 0,
        }
    }

    /// Reset to the empty matching on `n_left` × `n_right` vertices,
    /// keeping the allocated capacity (for round-loop reuse).
    pub fn reset(&mut self, n_left: u32, n_right: u32) {
        self.l2r.clear();
        self.l2r.resize(n_left as usize, NONE);
        self.r2l.clear();
        self.r2l.resize(n_right as usize, NONE);
        self.size = 0;
    }

    /// Number of matched pairs.
    #[inline]
    pub fn size(&self) -> usize {
        self.size as usize
    }

    /// Number of left vertices.
    #[inline]
    pub fn n_left(&self) -> u32 {
        self.l2r.len() as u32
    }

    /// Number of right vertices.
    #[inline]
    pub fn n_right(&self) -> u32 {
        self.r2l.len() as u32
    }

    /// Mate of left vertex `l`, if matched.
    #[inline]
    pub fn left_mate(&self, l: u32) -> Option<u32> {
        let r = self.l2r[l as usize];
        (r != NONE).then_some(r)
    }

    /// Mate of right vertex `r`, if matched.
    #[inline]
    pub fn right_mate(&self, r: u32) -> Option<u32> {
        let l = self.r2l[r as usize];
        (l != NONE).then_some(l)
    }

    /// Whether left vertex `l` is free.
    #[inline]
    pub fn left_free(&self, l: u32) -> bool {
        self.l2r[l as usize] == NONE
    }

    /// Whether right vertex `r` is free.
    #[inline]
    pub fn right_free(&self, r: u32) -> bool {
        self.r2l[r as usize] == NONE
    }

    /// Match `l` with `r`, unmatching any previous mates of either.
    pub fn set(&mut self, l: u32, r: u32) {
        self.unset_left(l);
        self.unset_right(r);
        self.l2r[l as usize] = r;
        self.r2l[r as usize] = l;
        self.size += 1;
    }

    /// Remove the matched edge at left vertex `l`, if any.
    pub fn unset_left(&mut self, l: u32) {
        let r = self.l2r[l as usize];
        if r != NONE {
            self.l2r[l as usize] = NONE;
            self.r2l[r as usize] = NONE;
            self.size -= 1;
        }
    }

    /// Remove the matched edge at right vertex `r`, if any.
    pub fn unset_right(&mut self, r: u32) {
        let l = self.r2l[r as usize];
        if l != NONE {
            self.r2l[r as usize] = NONE;
            self.l2r[l as usize] = NONE;
            self.size -= 1;
        }
    }

    /// Append a new (free) left vertex, growing the left side by one.
    /// Returns the new vertex's index. Used by the incremental engine,
    /// which inserts request vertices as they arrive.
    pub fn push_left(&mut self) -> u32 {
        self.l2r.push(NONE);
        (self.l2r.len() - 1) as u32
    }

    /// Grow the right side to at least `n_right` vertices (new ones free).
    /// Never shrinks; existing mates are untouched.
    pub fn ensure_right(&mut self, n_right: u32) {
        if self.r2l.len() < n_right as usize {
            self.r2l.resize(n_right as usize, NONE);
        }
    }

    /// Iterate over matched `(left, right)` pairs in left-vertex order.
    pub fn pairs(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.l2r
            .iter()
            .enumerate()
            .filter(|(_, &r)| r != NONE)
            .map(|(l, &r)| (l as u32, r))
    }

    /// All currently free left vertices.
    pub fn free_lefts(&self) -> impl Iterator<Item = u32> + '_ {
        self.l2r
            .iter()
            .enumerate()
            .filter(|(_, &r)| r == NONE)
            .map(|(l, _)| l as u32)
    }

    /// All currently free right vertices.
    pub fn free_rights(&self) -> impl Iterator<Item = u32> + '_ {
        self.r2l
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == NONE)
            .map(|(r, _)| r as u32)
    }

    /// Check internal consistency and that every matched edge exists in `g`.
    pub fn is_valid(&self, g: &BipartiteGraph) -> bool {
        if self.l2r.len() != g.n_left() as usize || self.r2l.len() != g.n_right() as usize {
            return false;
        }
        let mut count = 0u32;
        for (l, &r) in self.l2r.iter().enumerate() {
            if r == NONE {
                continue;
            }
            count += 1;
            if self.r2l[r as usize] != l as u32 || !g.has_edge(l as u32, r) {
                return false;
            }
        }
        let back = self.r2l.iter().filter(|&&l| l != NONE).count() as u32;
        count == self.size && back == self.size
    }

    /// Whether the matching is maximal in `g` (no free left vertex has a
    /// free neighbour — the defining rule of the `A_fix` family).
    pub fn is_maximal(&self, g: &BipartiteGraph) -> bool {
        for l in self.free_lefts() {
            for &r in g.neighbors(l) {
                if self.right_free(r) {
                    return false;
                }
            }
        }
        true
    }

    /// Whether the matching is maximum in `g` (no augmenting path exists).
    /// Audit-mode symmetry check: the two mate arrays describe the same
    /// pairing and the size counter agrees with both.
    ///
    /// # Panics
    /// Panics on the first violated invariant, naming it.
    #[cfg(feature = "audit")]
    pub fn audit_symmetric(&self) {
        let mut size = 0u32;
        for (l, &r) in self.l2r.iter().enumerate() {
            if r == NONE {
                continue;
            }
            size += 1;
            assert_eq!(
                self.r2l.get(r as usize),
                Some(&(l as u32)),
                "mate arrays disagree at left {l}"
            );
        }
        assert_eq!(size, self.size, "size counter out of sync with l2r");
        let back = self.r2l.iter().filter(|&&l| l != NONE).count() as u32;
        assert_eq!(back, self.size, "size counter out of sync with r2l");
    }

    pub fn is_maximum(&self, g: &BipartiteGraph) -> bool {
        // BFS over alternating levels from all free left vertices.
        let mut visited_l = BitSet::with_len(g.n_left() as usize);
        let mut visited_r = BitSet::with_len(g.n_right() as usize);
        let mut queue: Vec<u32> = self.free_lefts().collect();
        for &l in &queue {
            visited_l.set(l as usize);
        }
        while let Some(l) = queue.pop() {
            for &r in g.neighbors(l) {
                if !visited_r.insert(r as usize) {
                    continue;
                }
                match self.right_mate(r) {
                    None => return false, // augmenting path found
                    Some(l2) => {
                        if visited_l.insert(l2 as usize) {
                            queue.push(l2);
                        }
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_unset_size() {
        let mut m = Matching::empty(3, 3);
        assert_eq!(m.size(), 0);
        m.set(0, 1);
        m.set(1, 2);
        assert_eq!(m.size(), 2);
        assert_eq!(m.left_mate(0), Some(1));
        assert_eq!(m.right_mate(2), Some(1));
        m.unset_left(0);
        assert_eq!(m.size(), 1);
        assert!(m.left_free(0));
        assert!(m.right_free(1));
        m.unset_right(2);
        assert_eq!(m.size(), 0);
    }

    #[test]
    fn set_displaces_previous_mates() {
        let mut m = Matching::empty(2, 2);
        m.set(0, 0);
        m.set(1, 1);
        // Rematch l0 with r1: displaces both old edges' partners.
        m.set(0, 1);
        assert_eq!(m.size(), 1);
        assert_eq!(m.left_mate(0), Some(1));
        assert!(m.left_free(1));
        assert!(m.right_free(0));
    }

    #[test]
    fn pairs_and_free_iterators() {
        let mut m = Matching::empty(3, 4);
        m.set(2, 3);
        m.set(0, 1);
        assert_eq!(m.pairs().collect::<Vec<_>>(), vec![(0, 1), (2, 3)]);
        assert_eq!(m.free_lefts().collect::<Vec<_>>(), vec![1]);
        assert_eq!(m.free_rights().collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn validity_checks_edges_exist() {
        let g = BipartiteGraph::from_adjacency(2, &[vec![0], vec![1]]);
        let mut m = Matching::empty(2, 2);
        m.set(0, 0);
        assert!(m.is_valid(&g));
        let mut bad = Matching::empty(2, 2);
        bad.set(0, 1); // edge (0,1) not in g
        assert!(!bad.is_valid(&g));
    }

    #[test]
    fn maximal_and_maximum_distinction() {
        let g = BipartiteGraph::from_adjacency(2, &[vec![0, 1], vec![0]]);
        let mut m = Matching::empty(2, 2);
        m.set(0, 0); // l1's only neighbour taken -> maximal but not maximum
        assert!(m.is_maximal(&g));
        assert!(!m.is_maximum(&g));
        let mut m2 = Matching::empty(2, 2);
        m2.set(0, 1);
        m2.set(1, 0);
        assert!(m2.is_maximum(&g));
    }

    #[test]
    fn empty_matching_is_maximum_on_edgeless_graph() {
        let g = BipartiteGraph::from_adjacency(3, &[vec![], vec![]]);
        let m = Matching::empty(2, 3);
        assert!(m.is_maximal(&g));
        assert!(m.is_maximum(&g));
    }
}
