//! Lexicographic right-vertex saturation by priority level.
//!
//! Given a matching, rearrange which right vertices (time slots) are covered
//! — without changing cardinality and without unmatching any matched left
//! vertex — so that the vector of per-level coverage counts is
//! lexicographically maximum (level 0 first).
//!
//! This is exactly the paper's balancing function
//! `F = Σ_{j=0}^{d-1} X_{t+j} · (n+1)^{d-j}`: since `X ≤ n`, maximizing `F`
//! equals lexicographically maximizing `(X_t, X_{t+1}, …)`; assigning slot
//! round-offsets as levels implements `A_balance`/`A_fix_balance`. With two
//! levels ("current round" = 0, everything else = 1) it implements
//! `A_eager`'s rule "a maximum possible number of requests is scheduled at
//! round t".
//!
//! The exchange argument: covered right-vertex sets of matchings that keep a
//! fixed left-vertex set matched form (a slice of) a transversal matroid, so
//! repeatedly applying the improving exchange — an alternating path from a
//! free level-`ℓ` slot that ends by freeing a strictly-lower-priority slot —
//! reaches the lexicographic optimum level by level. Tests cross-validate
//! against brute-force enumeration.

use crate::graph::BipartiteGraph;
use crate::matching::Matching;
use crate::workspace::MatchingWorkspace;

/// Coverage counts per level: `out[lvl]` = number of matched right vertices
/// whose level is `lvl`. `level.len()` must equal `g.n_right()`.
pub fn coverage_by_level(m: &Matching, level: &[u32]) -> Vec<usize> {
    let max_level = level.iter().copied().max().map_or(0, |v| v as usize + 1);
    let mut counts = vec![0usize; max_level];
    for (_, r) in m.pairs() {
        counts[level[r as usize] as usize] += 1;
    }
    counts
}

/// Lexicographically maximize per-level coverage (level 0 first).
///
/// Preserves cardinality and keeps every matched left vertex matched; it may
/// also *grow* the matching if an augmenting path is discovered en route
/// (callers normally pass an already-maximum matching). Returns the final
/// coverage counts.
///
/// Convenience wrapper over [`saturate_levels_with`] with a throwaway
/// workspace; hot loops should reuse a [`MatchingWorkspace`].
pub fn saturate_levels(g: &BipartiteGraph, m: &mut Matching, level: &[u32]) -> Vec<usize> {
    saturate_levels_with(g, m, level, &mut MatchingWorkspace::new())
}

/// [`saturate_levels`] reusing the scratch buffers in `ws` — the reverse
/// adjacency (CSR, built once per call) and the per-exchange search state.
pub fn saturate_levels_with(
    g: &BipartiteGraph,
    m: &mut Matching,
    level: &[u32],
    ws: &mut MatchingWorkspace,
) -> Vec<usize> {
    assert_eq!(level.len(), g.n_right() as usize);
    ws.build_reverse(g);

    let mut levels: Vec<u32> = level.to_vec();
    levels.sort_unstable();
    levels.dedup();

    for &lvl in &levels {
        // Repeat improving exchanges until none exists for this level.
        while improve_level(g, m, level, lvl, ws) {}
    }
    coverage_by_level(m, level)
}

/// One improving exchange for `lvl`: find an alternating path starting at a
/// free right vertex of level `lvl` (entered via a non-matching edge) and
/// ending either at a free left vertex (augmentation) or by freeing a right
/// vertex of level `> lvl`. Returns whether an improvement was applied.
fn improve_level(
    g: &BipartiteGraph,
    m: &mut Matching,
    level: &[u32],
    lvl: u32,
    ws: &mut MatchingWorkspace,
) -> bool {
    let nl = g.n_left() as usize;
    let nr = g.n_right() as usize;

    // parent_l[l] = right vertex we came from (via a non-matching edge);
    // parent_r[r] = left vertex we came from (via the matched edge).
    ws.prepare_saturate(nl, nr);

    // queue holds right vertices to expand.
    for r in 0..nr as u32 {
        if level[r as usize] == lvl && m.right_free(r) {
            ws.visited_r.set(r as usize);
            ws.queue.push(r);
        }
    }

    let mut head = 0;
    while head < ws.queue.len() {
        let r = ws.queue[head];
        head += 1;
        let (lo, hi) = (
            ws.rev_offsets[r as usize] as usize,
            ws.rev_offsets[r as usize + 1] as usize,
        );
        for li in lo..hi {
            let l = ws.rev_adjacency[li];
            if !ws.visited_l.insert(l as usize) {
                continue;
            }
            ws.parent_l[l as usize] = r;
            match m.left_mate(l) {
                None => {
                    // Augmenting path: match l back along the parents.
                    apply_flip(m, l, &ws.parent_l, &ws.parent_r, None);
                    return true;
                }
                Some(r2) => {
                    if !ws.visited_r.insert(r2 as usize) {
                        continue;
                    }
                    ws.parent_r[r2 as usize] = l;
                    if level[r2 as usize] > lvl {
                        // Improving exchange: free r2, flip back along parents.
                        apply_flip(m, l, &ws.parent_l, &ws.parent_r, Some(r2));
                        return true;
                    }
                    ws.queue.push(r2);
                }
            }
        }
    }
    false
}

/// Flip the alternating path ending at left vertex `end_l`.
///
/// If `freed` is `Some(r2)` we first cut the matched edge `(end_l, r2)`;
/// then, walking parents towards the start, each left vertex is re-matched
/// to the right vertex it was discovered from.
fn apply_flip(
    m: &mut Matching,
    end_l: u32,
    parent_l: &[u32],
    parent_r: &[u32],
    freed: Option<u32>,
) {
    if let Some(r2) = freed {
        debug_assert_eq!(m.left_mate(end_l), Some(r2));
        m.unset_right(r2);
    }
    let mut l = end_l;
    loop {
        let r = parent_l[l as usize];
        debug_assert_ne!(r, u32::MAX);
        // `r` may currently be matched to the *previous* left on the path;
        // it was entered free (start) or via its matched edge which we are
        // about to re-point.
        m.set(l, r);
        let prev_l = parent_r[r as usize];
        if prev_l == u32::MAX {
            break; // reached the free starting right vertex
        }
        l = prev_l;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;
    use crate::hopcroft_karp;

    /// Saturating with the trivial single level must not change coverage.
    #[test]
    fn single_level_noop_on_maximum_matching() {
        let g = BipartiteGraph::from_adjacency(3, &[vec![0, 1], vec![1, 2]]);
        let mut m = hopcroft_karp(&g);
        let before = m.size();
        let cov = saturate_levels(&g, &mut m, &[0, 0, 0]);
        assert_eq!(m.size(), before);
        assert_eq!(cov, vec![before]);
    }

    #[test]
    fn moves_coverage_to_high_priority_slot() {
        // One request adjacent to both slots; matched on the low-priority
        // one; saturation must move it.
        let g = BipartiteGraph::from_adjacency(2, &[vec![1, 0]]);
        let mut m = Matching::empty(1, 2);
        m.set(0, 1);
        let cov = saturate_levels(&g, &mut m, &[0, 1]);
        assert_eq!(cov, vec![1, 0]);
        assert_eq!(m.left_mate(0), Some(0));
    }

    #[test]
    fn exchange_through_chain() {
        // r0 (level 0) free; l0 matched r1; l1 matched r2; edges allow a
        // 2-step exchange freeing r2 (level 1): l0: {r0, r1}, l1: {r1, r2}.
        let g = BipartiteGraph::from_adjacency(3, &[vec![0, 1], vec![1, 2]]);
        let mut m = Matching::empty(2, 3);
        m.set(0, 1);
        m.set(1, 2);
        let cov = saturate_levels(&g, &mut m, &[0, 0, 1]);
        assert_eq!(cov, vec![2, 0]);
        assert_eq!(m.size(), 2);
        // All lefts still matched.
        assert!(!m.left_free(0));
        assert!(!m.left_free(1));
        // Slots 0 and 1 covered, slot 2 free.
        assert!(m.right_free(2));
    }

    #[test]
    fn never_sacrifices_higher_level_for_lower() {
        // Two requests, three slots with levels [0, 1, 1]:
        // l0: {r0}, l1: {r0, r1}. Best: l0->r0, l1->r1 => cov [1,1].
        let g = BipartiteGraph::from_adjacency(3, &[vec![0], vec![0, 1]]);
        let mut m = Matching::empty(2, 3);
        m.set(1, 0); // wrong occupant of the level-0 slot
        m.set(0, 0); // displaces l1! rebuild properly:
        let mut m = Matching::empty(2, 3);
        m.set(1, 0);
        crate::kuhn_augment(&g, &mut m, 0);
        let cov = saturate_levels(&g, &mut m, &[0, 1, 1]);
        assert_eq!(cov, vec![1, 1]);
    }

    #[test]
    fn picks_up_augmenting_paths() {
        // Matching not maximum: saturation's BFS finds the free left vertex.
        let g = BipartiteGraph::from_adjacency(2, &[vec![0, 1]]);
        let mut m = Matching::empty(1, 2);
        let cov = saturate_levels(&g, &mut m, &[0, 1]);
        assert_eq!(m.size(), 1);
        assert_eq!(cov, vec![1, 0]);
    }

    #[test]
    fn lexicographic_against_brute_force_battery() {
        let cases: Vec<(u32, Vec<Vec<u32>>, Vec<u32>)> = vec![
            (3, vec![vec![0, 1], vec![1, 2], vec![2]], vec![0, 1, 2]),
            (
                4,
                vec![vec![0, 2], vec![1, 2], vec![2, 3]],
                vec![0, 0, 1, 1],
            ),
            (
                4,
                vec![vec![3], vec![2, 3], vec![1, 2], vec![0, 1]],
                vec![0, 1, 0, 1],
            ),
            (
                5,
                vec![vec![0, 4], vec![1, 4], vec![2, 3], vec![3, 4], vec![0, 1]],
                vec![0, 0, 1, 1, 2],
            ),
            (2, vec![vec![0, 1], vec![0, 1], vec![0]], vec![1, 0]),
        ];
        for (nr, lists, levels) in cases {
            let g = BipartiteGraph::from_adjacency(nr, &lists);
            let mut m = hopcroft_karp(&g);
            let cov = saturate_levels(&g, &mut m, &levels);
            let best = brute::best_lex_coverage(&g, &levels);
            assert_eq!(cov, best, "graph {lists:?} levels {levels:?}");
            assert!(m.is_valid(&g));
            assert_eq!(m.size(), hopcroft_karp(&g).size());
        }
    }
}
