//! Reusable scratch buffers for the matching algorithms.
//!
//! Every algorithm in this crate needs per-call working memory proportional
//! to the graph: BFS layer distances and queues for Hopcroft–Karp, a DFS
//! stack for augmenting-path search, visited masks for Kuhn, parent arrays
//! and a CSR reverse adjacency for the saturation passes. The strategies
//! call these routines once (or more) per simulated round, so allocating
//! that memory fresh each call dominates the round loop on small windows.
//!
//! A [`MatchingWorkspace`] owns all of those buffers and hands them to the
//! `*_with` variants ([`crate::hopcroft_karp_with`], [`crate::kuhn_augment_with`],
//! [`crate::kuhn_in_order_with`], [`crate::saturate_levels_with`]). Buffers
//! grow monotonically to the largest graph seen and are then reused, so a
//! steady-state round loop performs no heap allocation inside the matching
//! layer. The convenience wrappers without `_with` construct a fresh
//! workspace per call and remain the simple entry points for tests and
//! one-shot callers.

use crate::bitset::BitSet;
use crate::graph::BipartiteGraph;

/// Reusable working memory for the algorithms in this crate.
///
/// A workspace may be shared freely across graphs of different shapes; each
/// `*_with` call resizes the buffers it needs. Reuse never changes results:
/// every algorithm fully reinitializes the regions it reads.
#[derive(Debug, Default)]
pub struct MatchingWorkspace {
    /// BFS layer distances, indexed by left vertex (Hopcroft–Karp).
    pub(crate) dist: Vec<u32>,
    /// BFS queue of left vertices (Hopcroft–Karp, saturation).
    pub(crate) queue: Vec<u32>,
    /// Explicit DFS stack of `(left vertex, neighbour cursor)` frames.
    pub(crate) stack: Vec<(u32, u32)>,
    /// Visited mask over right vertices (Kuhn, saturation).
    pub(crate) visited_r: BitSet,
    /// Visited mask over left vertices (saturation).
    pub(crate) visited_l: BitSet,
    /// `parent_l[l]` = right vertex `l` was discovered from (saturation).
    pub(crate) parent_l: Vec<u32>,
    /// `parent_r[r]` = left vertex `r` was discovered from (saturation).
    pub(crate) parent_r: Vec<u32>,
    /// CSR reverse adjacency: `rev_offsets[r]..rev_offsets[r+1]` indexes
    /// `rev_adjacency` with the left neighbours of right vertex `r`.
    pub(crate) rev_offsets: Vec<u32>,
    pub(crate) rev_adjacency: Vec<u32>,
}

impl MatchingWorkspace {
    /// A workspace with no capacity yet; buffers grow on first use.
    pub fn new() -> MatchingWorkspace {
        MatchingWorkspace::default()
    }

    /// Resize-and-fill helper: make `buf` exactly `n` long, every slot `val`.
    fn refill<T: Copy>(buf: &mut Vec<T>, n: usize, val: T) {
        buf.clear();
        buf.resize(n, val);
    }

    /// Prepare the Hopcroft–Karp buffers for a graph with `nl` left vertices.
    pub(crate) fn prepare_hk(&mut self, nl: usize) {
        Self::refill(&mut self.dist, nl, u32::MAX);
        self.queue.clear();
        self.queue.reserve(nl.saturating_sub(self.queue.capacity()));
        self.stack.clear();
    }

    /// Prepare the Kuhn visited mask for a graph with `nr` right vertices.
    pub(crate) fn prepare_kuhn(&mut self, nr: usize) {
        self.visited_r.reset(nr);
        self.stack.clear();
    }

    /// Prepare the saturation search buffers.
    pub(crate) fn prepare_saturate(&mut self, nl: usize, nr: usize) {
        self.visited_l.reset(nl);
        self.visited_r.reset(nr);
        Self::refill(&mut self.parent_l, nl, u32::MAX);
        Self::refill(&mut self.parent_r, nr, u32::MAX);
        self.queue.clear();
    }

    /// Build the CSR reverse adjacency of `g` into the workspace buffers
    /// (counting sort; no per-right-vertex `Vec`s).
    pub(crate) fn build_reverse(&mut self, g: &BipartiteGraph) {
        let nr = g.n_right() as usize;
        Self::refill(&mut self.rev_offsets, nr + 1, 0);
        for l in 0..g.n_left() {
            for &r in g.neighbors(l) {
                self.rev_offsets[r as usize + 1] += 1;
            }
        }
        for r in 0..nr {
            self.rev_offsets[r + 1] += self.rev_offsets[r];
        }
        Self::refill(&mut self.rev_adjacency, g.n_edges(), 0);
        // Cursor pass reuses parent_r as the per-right write cursor.
        Self::refill(&mut self.parent_r, nr, 0);
        for l in 0..g.n_left() {
            for &r in g.neighbors(l) {
                let slot = self.rev_offsets[r as usize] + self.parent_r[r as usize];
                self.rev_adjacency[slot as usize] = l;
                self.parent_r[r as usize] += 1;
            }
        }
    }

    /// Left neighbours of right vertex `r` in the previously built reverse
    /// adjacency (insertion order, matching `BipartiteGraph::reverse_adjacency`).
    /// The saturation search indexes `rev_offsets`/`rev_adjacency` directly
    /// to keep the borrow checker happy; this accessor serves the tests.
    #[cfg(test)]
    #[inline]
    pub(crate) fn rev_neighbors(&self, r: u32) -> &[u32] {
        let lo = self.rev_offsets[r as usize] as usize;
        let hi = self.rev_offsets[r as usize + 1] as usize;
        &self.rev_adjacency[lo..hi]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reverse_adjacency_matches_allocating_version() {
        let g = BipartiteGraph::from_adjacency(4, &[vec![0, 3], vec![3, 1], vec![1, 2, 3], vec![]]);
        let mut ws = MatchingWorkspace::new();
        ws.build_reverse(&g);
        let expect = g.reverse_adjacency();
        for r in 0..g.n_right() {
            assert_eq!(ws.rev_neighbors(r), expect[r as usize].as_slice(), "r={r}");
        }
    }

    #[test]
    fn reverse_adjacency_reusable_across_graphs() {
        let mut ws = MatchingWorkspace::new();
        let g1 = BipartiteGraph::from_adjacency(2, &[vec![0, 1], vec![1]]);
        ws.build_reverse(&g1);
        let g2 = BipartiteGraph::from_adjacency(3, &[vec![2], vec![0]]);
        ws.build_reverse(&g2);
        let expect = g2.reverse_adjacency();
        for r in 0..g2.n_right() {
            assert_eq!(ws.rev_neighbors(r), expect[r as usize].as_slice());
        }
    }
}
