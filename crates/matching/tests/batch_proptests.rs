//! Property-based parity of the batched Hopcroft–Karp-phase insertion
//! ([`IncrementalMatching::add_left_batch`]) against the serial
//! one-augment-per-vertex oracle ([`IncrementalMatching::add_left`]).
//!
//! The promise is **cardinality** parity after every batch, not structural
//! equality: the two paths may pick different mate sets and even different
//! left supports (the phase DFS prefers shortest paths, the serial engine
//! prefers insertion order — both maximum), but the size — which is all the
//! streaming optimum ever exposes — must agree exactly. Random streams are
//! chopped into random batch sizes, both engines ingest the same lists, and
//! parity is asserted after each batch plus against a fresh Hopcroft–Karp
//! solve of the full prefix.

use proptest::prelude::*;
use reqsched_matching::{hopcroft_karp, BipartiteGraph, IncrementalMatching};

/// Feed `lists` into both engines, the batched one in chunks given by
/// `cuts`, asserting size parity after every chunk (against the serial
/// engine and a fresh exact solve of the prefix graph).
fn check_batch_parity(n_right: u32, lists: &[Vec<u32>], cuts: &[usize]) {
    let mut serial = IncrementalMatching::new();
    let mut batched = IncrementalMatching::new();
    serial.ensure_right(n_right);
    batched.ensure_right(n_right);
    let mut done = 0usize;
    let mut cut_idx = 0usize;
    while done < lists.len() {
        let take = if cut_idx < cuts.len() {
            cuts[cut_idx].clamp(1, lists.len() - done)
        } else {
            lists.len() - done
        };
        cut_idx += 1;
        let chunk = &lists[done..done + take];
        let mut offsets: Vec<u32> = vec![0];
        let mut neighbors: Vec<u32> = Vec::new();
        for list in chunk {
            serial.add_left(list);
            neighbors.extend_from_slice(list);
            offsets.push(neighbors.len() as u32);
        }
        let first = batched.add_left_batch(&offsets, &neighbors);
        assert_eq!(first as usize, done, "batch insertion index");
        done += take;
        assert_eq!(
            batched.size(),
            serial.size(),
            "batched vs serial after {done} of {} lists (cuts {cuts:?})",
            lists.len()
        );
        let g = BipartiteGraph::from_adjacency(n_right.max(max_right(lists) + 1), &lists[..done]);
        assert_eq!(
            batched.size(),
            hopcroft_karp(&g).size(),
            "batched vs fresh solve after {done} lists"
        );
        // Both engines leave the same *number* free (supports may differ).
        let free_of = |inc: &IncrementalMatching| {
            (0..done as u32)
                .filter(|&l| inc.matching().left_free(l))
                .count()
        };
        assert_eq!(free_of(&batched), free_of(&serial));
    }
}

fn max_right(lists: &[Vec<u32>]) -> u32 {
    lists
        .iter()
        .flat_map(|l| l.iter().copied())
        .max()
        .unwrap_or(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random adjacency streams over a small right side (dense collisions)
    /// chopped at random batch boundaries.
    #[test]
    fn batched_matches_serial_on_random_streams(
        lists in proptest::collection::vec(
            proptest::collection::vec(0u32..12, 0..=4),
            1..40,
        ),
        cuts in proptest::collection::vec(1usize..8, 0..12),
    ) {
        check_batch_parity(12, &lists, &cuts);
    }

    /// Overload shape: many more vertices than right slots, so most batch
    /// members are unmatchable — the exact regime the shared BFS proof of
    /// unmatchability exists for.
    #[test]
    fn batched_matches_serial_under_overload(
        lists in proptest::collection::vec(
            proptest::collection::vec(0u32..4, 1..=2),
            1..60,
        ),
        cut in 1usize..16,
    ) {
        check_batch_parity(4, &lists, &[cut, cut, cut, cut, cut]);
    }
}

/// The whole stream as one giant batch equals the serial engine.
#[test]
fn one_giant_batch_matches_serial() {
    let lists: Vec<Vec<u32>> = (0..200u32).map(|i| vec![i % 7, (i * 3) % 7]).collect();
    check_batch_parity(7, &lists, &[usize::MAX]);
}

/// Chain graph whose only maximum matching needs a long augmenting path:
/// the phase loop must keep iterating past the first (short-path) phase.
#[test]
fn batch_augments_through_long_chains() {
    let n: u32 = 500;
    let mut lists: Vec<Vec<u32>> = (0..n - 1).map(|i| vec![i, i + 1]).collect();
    lists.push(vec![0]); // forces the full-length alternating chain
    check_batch_parity(n, &lists, &[usize::MAX]);
    check_batch_parity(n, &lists, &[7]);
}

/// Empty adjacency rows inside a batch are inserted (and stay free) without
/// disturbing anything.
#[test]
fn batch_with_empty_rows() {
    let lists: Vec<Vec<u32>> = vec![vec![0, 1], vec![], vec![1], vec![], vec![0]];
    check_batch_parity(2, &lists, &[2, 1, 2]);
}

/// Pinned regression: duplicate right ids inside one adjacency list — the
/// candidate search and the serial DFS must both skip the revisit rather
/// than double-match.
#[test]
fn batch_with_duplicate_neighbors() {
    let lists: Vec<Vec<u32>> = vec![vec![0, 0, 1], vec![0, 0], vec![1, 1, 0]];
    check_batch_parity(2, &lists, &[3]);
}

/// Pinned regression: a batch whose offsets describe zero vertices is a
/// no-op, and a singleton batch routes through the serial path.
#[test]
fn degenerate_batches() {
    let mut inc = IncrementalMatching::new();
    assert_eq!(inc.add_left_batch(&[0], &[]), 0);
    assert_eq!(inc.n_left(), 0);
    assert_eq!(inc.add_left_batch(&[0, 2], &[3, 4]), 0);
    assert_eq!(inc.n_left(), 1);
    assert_eq!(inc.size(), 1);
    // Mixing batch and serial insertions keeps the invariant.
    inc.add_left(&[3]);
    assert_eq!(inc.size(), 2);
    // Only rights 3 and 4 exist in this graph, so the new contenders
    // cannot grow the matching past 2.
    inc.add_left_batch(&[0, 1, 2], &[4, 3]);
    assert_eq!(inc.n_left(), 4);
    assert_eq!(inc.size(), 2);
}

/// Retirement after a batch behaves like the serial engine: free batch
/// members can be retired and later insertions still augment correctly.
#[test]
fn batch_then_retire_then_insert() {
    let mut inc = IncrementalMatching::new();
    // Three vertices contending for one right slot: two stay free.
    inc.add_left_batch(&[0, 1, 2, 3], &[0, 0, 0]);
    assert_eq!(inc.size(), 1);
    let free: Vec<u32> = (0..3).filter(|&l| inc.matching().left_free(l)).collect();
    assert_eq!(free.len(), 2);
    for l in free {
        inc.retire_left(l);
    }
    inc.add_left_batch(&[0, 1], &[1]);
    assert_eq!(inc.size(), 2);
}
