//! Property-based cross-validation of [`DynamicMatching`] against
//! from-scratch Hopcroft–Karp on random sliding-window op sequences.
//!
//! The model mirrors how the delta round engine drives the structure: each
//! round inserts lefts with frozen in-window adjacency (augmenting after
//! each), deletes a few lefts with repair, optionally saturates, then
//! slides the window by one column. After every round the maintained
//! cardinality must equal an exact solve on the alive subgraph restricted
//! to the live window, and the internal invariants must hold.

use proptest::prelude::*;
use reqsched_matching::{hopcroft_karp, BipartiteGraph, DynamicMatching};

/// Slots per window column (resources).
const W: u32 = 3;
/// Window depth in columns (deadline d).
const D: u64 = 3;

/// One simulated round of window activity.
#[derive(Clone, Debug)]
struct RoundOps {
    /// New lefts; each is a list of (column offset, slot) pairs inside the
    /// current window `[t, t + D)`.
    adds: Vec<Vec<(u8, u8)>>,
    /// Picks (mod the live count) of lefts to delete this round.
    removes: Vec<u8>,
    /// 0 = no saturation, 1 = two-level (current column preferred, the
    /// `A_eager` shape), 2 = strictly by round (the `A_balance` shape).
    saturate: u8,
}

fn round_ops() -> impl Strategy<Value = RoundOps> {
    (
        proptest::collection::vec(
            proptest::collection::vec((0..D as u8, 0..W as u8), 0..=4),
            0..=3,
        ),
        proptest::collection::vec(0u8..=255, 0..=2),
        0u8..3,
    )
        .prop_map(|(adds, removes, saturate)| RoundOps {
            adds,
            removes,
            saturate,
        })
}

/// Replay `rounds` against both the dynamic structure and a from-scratch
/// exact solver, asserting parity after every round.
fn check_sequence(rounds: &[RoundOps]) {
    let mut dm = DynamicMatching::new(W);
    dm.set_base(0);
    dm.ensure_cols(D);
    // Test-side ground truth: frozen absolute adjacency per left, `None`
    // once deleted (spans are private outside the crate).
    let mut adj: Vec<Option<Vec<u32>>> = Vec::new();

    for (t, ops) in rounds.iter().enumerate() {
        let t = t as u64;
        for spec in &ops.adds {
            let mut rights: Vec<u32> = spec
                .iter()
                .map(|&(off, slot)| ((t + off as u64) * W as u64 + slot as u64) as u32)
                .collect();
            rights.sort_unstable();
            rights.dedup();
            let l = dm.add_left(&rights);
            assert_eq!(l as usize, adj.len(), "dense left ids");
            dm.augment(l);
            adj.push(Some(rights));
        }
        for &pick in &ops.removes {
            let alive: Vec<u32> = (0..adj.len() as u32)
                .filter(|&l| adj[l as usize].is_some())
                .collect();
            if alive.is_empty() {
                break;
            }
            let l = alive[pick as usize % alive.len()];
            dm.remove_left(l, true);
            adj[l as usize] = None;
        }
        match ops.saturate {
            1 => dm.saturate_columns(&[0, 1, 1], 0),
            2 => dm.saturate_columns(&[0, 1, 2], 0),
            _ => {}
        }

        dm.check_consistency();
        // Exact reference on the alive subgraph, rights local to the window.
        let rlo = (t * W as u64) as u32;
        let lists: Vec<Vec<u32>> = adj
            .iter()
            .flatten()
            .map(|ns| ns.iter().filter(|&&r| r >= rlo).map(|&r| r - rlo).collect())
            .collect();
        let g = BipartiteGraph::from_adjacency((D * W as u64) as u32, &lists);
        assert_eq!(
            dm.size(),
            hopcroft_karp(&g).size(),
            "round {t}: maintained matching is not maximum"
        );
        // Mates must be edges the left actually has.
        for (l, ns) in adj.iter().enumerate() {
            if let (Some(ns), Some(r)) = (ns, dm.left_mate(l as u32)) {
                assert!(ns.contains(&r), "round {t}: mate {r} not an edge of {l}");
            }
        }

        // Slide: retire column t, open column t + D.
        dm.retire_cols(t + 1);
        dm.ensure_cols(t + 1 + D);
        dm.check_consistency();
    }
}

proptest! {
    #[test]
    fn dynamic_matching_stays_maximum(ops in proptest::collection::vec(round_ops(), 1..=8)) {
        check_sequence(&ops);
    }
}

/// Hand-distilled regression: a left parked in the last window column while
/// an earlier column stays free — retirement must repair through the frozen
/// adjacency, and two-level saturation must not disturb cardinality.
#[test]
fn retirement_repairs_through_frozen_adjacency() {
    let seq = vec![
        RoundOps {
            // Three lefts contending for column 0 slot 0; the third is
            // displaced to column 2 via augmenting paths.
            adds: vec![
                vec![(0, 0)],
                vec![(0, 0), (1, 0)],
                vec![(0, 0), (1, 0), (2, 0)],
            ],
            removes: vec![],
            saturate: 1,
        },
        RoundOps {
            adds: vec![],
            removes: vec![0],
            saturate: 2,
        },
        RoundOps {
            adds: vec![vec![(0, 1), (2, 2)]],
            removes: vec![],
            saturate: 0,
        },
    ];
    check_sequence(&seq);
}

/// Hand-distilled regression: deleting a matched left must repair from the
/// freed slot so a previously-failed left gets in.
#[test]
fn removal_repair_revives_failed_left() {
    let seq = vec![RoundOps {
        adds: vec![vec![(0, 0)], vec![(0, 0)], vec![(0, 0)]],
        removes: vec![0, 0],
        saturate: 0,
    }];
    check_sequence(&seq);
}
