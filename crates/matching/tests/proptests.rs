//! Property-based cross-validation of the matching engine against the
//! exponential-time exact solvers on small random graphs.

use proptest::prelude::*;
use reqsched_matching::{
    brute, greedy_maximal, hopcroft_karp, hopcroft_karp_with, kuhn_in_order, kuhn_in_order_with,
    saturate_levels, saturate_levels_with, symmetric_difference, BipartiteGraph, Matching,
    MatchingWorkspace,
};

/// A small random bipartite graph: up to 7 left and 7 right vertices.
fn small_graph() -> impl Strategy<Value = BipartiteGraph> {
    (1u32..=7, 1u32..=7).prop_flat_map(|(nl, nr)| {
        proptest::collection::vec(
            proptest::collection::vec(0..nr, 0..=nr as usize),
            nl as usize,
        )
        .prop_map(move |mut lists| {
            for l in &mut lists {
                l.sort_unstable();
                l.dedup();
            }
            BipartiteGraph::from_adjacency(nr, &lists)
        })
    })
}

proptest! {
    #[test]
    fn hopcroft_karp_is_maximum(g in small_graph()) {
        let m = hopcroft_karp(&g);
        prop_assert!(m.is_valid(&g));
        prop_assert!(m.is_maximum(&g));
        prop_assert_eq!(m.size(), brute::max_matching_size(&g));
    }

    #[test]
    fn kuhn_full_order_reaches_maximum(g in small_graph()) {
        let order: Vec<u32> = (0..g.n_left()).collect();
        let mut m = Matching::empty(g.n_left(), g.n_right());
        kuhn_in_order(&g, &mut m, &order);
        prop_assert!(m.is_valid(&g));
        prop_assert_eq!(m.size(), brute::max_matching_size(&g));
    }

    #[test]
    fn greedy_is_maximal_and_at_least_half(g in small_graph()) {
        let order: Vec<u32> = (0..g.n_left()).collect();
        let m = greedy_maximal(&g, &order);
        prop_assert!(m.is_valid(&g));
        prop_assert!(m.is_maximal(&g));
        // Classic fact: any maximal matching is a 2-approximation.
        prop_assert!(2 * m.size() >= brute::max_matching_size(&g));
    }

    #[test]
    fn saturation_is_lexicographically_optimal(
        g in small_graph(),
        seed in 0u32..4,
    ) {
        let n_levels = 1 + (seed % 3);
        let levels: Vec<u32> =
            (0..g.n_right()).map(|r| (r + seed) % n_levels).collect();
        let mut m = hopcroft_karp(&g);
        let size_before = m.size();
        let cov = saturate_levels(&g, &mut m, &levels);
        prop_assert!(m.is_valid(&g));
        prop_assert_eq!(m.size(), size_before, "cardinality preserved");
        let best = brute::best_lex_coverage(&g, &levels);
        prop_assert_eq!(cov, best);
    }

    #[test]
    fn saturation_keeps_matched_lefts_matched(g in small_graph()) {
        let mut m = hopcroft_karp(&g);
        let matched_before: Vec<u32> =
            (0..g.n_left()).filter(|&l| !m.left_free(l)).collect();
        let levels: Vec<u32> = (0..g.n_right()).map(|r| r % 2).collect();
        saturate_levels(&g, &mut m, &levels);
        for l in matched_before {
            prop_assert!(!m.left_free(l), "left {} was unmatched", l);
        }
    }

    #[test]
    fn diff_gap_identity(g in small_graph(), order_seed in 0u32..6) {
        // Any (possibly suboptimal) greedy matching vs the maximum: the
        // number of augmenting paths equals the cardinality gap.
        let mut order: Vec<u32> = (0..g.n_left()).collect();
        let len = order.len().max(1);
        order.rotate_left((order_seed as usize) % len);
        let m1 = greedy_maximal(&g, &order);
        let m2 = hopcroft_karp(&g);
        let report = symmetric_difference(&m1, &m2);
        prop_assert_eq!(report.n_augmenting(), m2.size() - m1.size());
        // Maximal matchings never leave order-1 augmenting paths.
        if let Some(min) = report.min_order() {
            prop_assert!(min >= 2);
        }
    }

    #[test]
    fn reused_workspace_is_bit_identical_to_fresh(
        gs in proptest::collection::vec(small_graph(), 1..6),
    ) {
        // One workspace threaded through a sequence of solves of varying
        // shapes must leave no trace between them: every HK / Kuhn /
        // saturation result is bit-identical to a fresh-state solve.
        let mut ws = MatchingWorkspace::new();
        for g in &gs {
            let m = hopcroft_karp_with(g, &mut ws);
            prop_assert_eq!(&m, &hopcroft_karp(g), "hk drifted with reuse");

            let order: Vec<u32> = (0..g.n_left()).collect();
            let mut mk = Matching::empty(g.n_left(), g.n_right());
            let grown = kuhn_in_order_with(g, &mut mk, &order, &mut ws);
            let mut mk_fresh = Matching::empty(g.n_left(), g.n_right());
            let grown_fresh = kuhn_in_order(g, &mut mk_fresh, &order);
            prop_assert_eq!(grown, grown_fresh);
            prop_assert_eq!(&mk, &mk_fresh, "kuhn drifted with reuse");

            let levels: Vec<u32> = (0..g.n_right()).map(|r| r % 2).collect();
            let mut ms = m.clone();
            let cov = saturate_levels_with(g, &mut ms, &levels, &mut ws);
            let mut ms_fresh = hopcroft_karp(g);
            let cov_fresh = saturate_levels(g, &mut ms_fresh, &levels);
            prop_assert_eq!(cov, cov_fresh);
            prop_assert_eq!(&ms, &ms_fresh, "saturation drifted with reuse");
        }
    }

    #[test]
    fn flipping_one_augmenting_path_grows_matching(g in small_graph()) {
        // If greedy is suboptimal, kuhn can augment exactly gap times.
        let order: Vec<u32> = (0..g.n_left()).collect();
        let mut m = greedy_maximal(&g, &order);
        let before = m.size();
        let grown = kuhn_in_order(&g, &mut m, &order);
        prop_assert_eq!(before + grown, brute::max_matching_size(&g));
    }
}
