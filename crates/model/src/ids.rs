//! Strongly-typed identifiers for resources, requests and rounds.
//!
//! Following the HPC guide's advice we keep these small (`u32` indices where
//! possible) so the hot per-round data structures stay compact.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a resource (a disk of the distributed data server).
///
/// Resources are numbered `0 .. n`. The paper writes them `S_1 .. S_n`; we use
/// zero-based indices throughout and only shift in display output.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ResourceId(pub u32);

impl ResourceId {
    /// The index as a `usize`, for direct vector indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

impl fmt::Display for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

impl From<u32> for ResourceId {
    fn from(v: u32) -> Self {
        ResourceId(v)
    }
}

/// Identifier of a request.
///
/// Requests are numbered consecutively in trace order: primarily by arrival
/// round, secondarily by the order the adversary lists them within a round
/// (the paper's "request identifier").
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RequestId(pub u32);

impl RequestId {
    /// The index as a `usize`, for direct vector indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Sentinel used in dense per-slot tables for "no request scheduled here".
pub const NO_REQUEST: RequestId = RequestId(u32::MAX);

impl fmt::Debug for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == NO_REQUEST {
            write!(f, "r·")
        } else {
            write!(f, "r{}", self.0)
        }
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<u32> for RequestId {
    fn from(v: u32) -> Self {
        RequestId(v)
    }
}

/// A (zero-based) round number of the synchronized system.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Round(pub u64);

impl Round {
    /// Round zero, the first round of every trace.
    pub const ZERO: Round = Round(0);

    /// The round number as a `u64`.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }

    /// The next round.
    #[inline]
    pub fn next(self) -> Round {
        Round(self.0 + 1)
    }

    /// Saturating subtraction of a number of rounds.
    #[inline]
    pub fn saturating_sub(self, delta: u64) -> Round {
        Round(self.0.saturating_sub(delta))
    }

    /// Offset of `self` from `earlier`, panicking if `earlier > self`.
    #[inline]
    pub fn offset_from(self, earlier: Round) -> u64 {
        debug_assert!(earlier.0 <= self.0, "offset_from: {earlier:?} > {self:?}");
        self.0 - earlier.0
    }
}

impl fmt::Debug for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::ops::Add<u64> for Round {
    type Output = Round;
    #[inline]
    fn add(self, rhs: u64) -> Round {
        Round(self.0 + rhs)
    }
}

impl std::ops::AddAssign<u64> for Round {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl std::ops::Sub<Round> for Round {
    type Output = u64;
    #[inline]
    fn sub(self, rhs: Round) -> u64 {
        self.offset_from(rhs)
    }
}

impl From<u64> for Round {
    fn from(v: u64) -> Self {
        Round(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resource_id_roundtrips() {
        let r = ResourceId(7);
        assert_eq!(r.index(), 7);
        assert_eq!(format!("{r}"), "S7");
        assert_eq!(ResourceId::from(7u32), r);
    }

    #[test]
    fn request_id_sentinel_is_distinct() {
        assert_ne!(RequestId(0), NO_REQUEST);
        assert_eq!(format!("{:?}", NO_REQUEST), "r·");
        assert_eq!(format!("{:?}", RequestId(3)), "r3");
    }

    #[test]
    fn round_arithmetic() {
        let t = Round(10);
        assert_eq!(t + 5, Round(15));
        assert_eq!(t.next(), Round(11));
        assert_eq!((t + 5) - t, 5);
        assert_eq!(t.saturating_sub(20), Round(0));
        assert_eq!(Round::ZERO.get(), 0);
    }

    #[test]
    fn round_ordering() {
        assert!(Round(3) < Round(4));
        let mut v = vec![Round(4), Round(1), Round(3)];
        v.sort();
        assert_eq!(v, vec![Round(1), Round(3), Round(4)]);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)] // the check is a debug_assert, absent in release
    fn offset_from_panics_on_underflow_in_debug() {
        // offset_from debug-asserts; `-` uses it.
        let _ = Round(1) - Round(2);
    }
}
