//! Problem instances: a resource count, a deadline parameter and a trace.

use crate::ids::{ResourceId, Round};
use crate::trace::Trace;
use serde::{Deserialize, Serialize};

/// A complete problem instance.
///
/// `d` is the instance-wide deadline parameter of the paper. Individual
/// requests may carry smaller or larger deadlines (the paper's observations
/// about EDF explicitly allow heterogeneous deadlines); `d` is used by
/// strategies to size their scheduling window, so it must be an upper bound
/// on every request's deadline.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Instance {
    /// Number of resources `n`; resources are `S_0 .. S_{n-1}`.
    pub n_resources: u32,
    /// The deadline parameter `d` (maximum over request deadlines).
    pub d: u32,
    /// The adversary's request sequence.
    pub trace: Trace,
}

impl Instance {
    /// Create an instance, validating that the trace fits.
    ///
    /// # Panics
    /// Panics if a request references a resource `>= n_resources`, if a
    /// request's deadline exceeds `d`, or if `d == 0`.
    pub fn new(n_resources: u32, d: u32, trace: Trace) -> Instance {
        assert!(d >= 1, "deadline parameter d must be at least 1");
        for r in trace.requests() {
            assert!(
                r.deadline <= d,
                "request {:?} has deadline {} > instance d = {}",
                r.id,
                r.deadline,
                d
            );
            for s in r.alternatives.as_slice() {
                assert!(
                    s.0 < n_resources,
                    "request {:?} references {:?} but n = {}",
                    r.id,
                    s,
                    n_resources
                );
            }
        }
        Instance {
            n_resources,
            d,
            trace,
        }
    }

    /// Iterator over all resource ids of the instance.
    pub fn resources(&self) -> impl Iterator<Item = ResourceId> {
        (0..self.n_resources).map(ResourceId)
    }

    /// Number of rounds a simulation must run to give every request a chance:
    /// one past the last expiry.
    pub fn horizon(&self) -> Round {
        self.trace.service_horizon().next()
    }

    /// Total number of requests injected.
    pub fn total_requests(&self) -> usize {
        self.trace.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceBuilder;

    #[test]
    fn valid_instance() {
        let mut b = TraceBuilder::new(2);
        b.push(0u64, 0u32, 1u32);
        let inst = Instance::new(4, 2, b.build());
        assert_eq!(inst.resources().count(), 4);
        assert_eq!(inst.total_requests(), 1);
        assert_eq!(inst.horizon(), Round(2)); // expiry round 1, horizon 2
    }

    #[test]
    #[should_panic]
    fn rejects_out_of_range_resource() {
        let mut b = TraceBuilder::new(2);
        b.push(0u64, 0u32, 7u32);
        let _ = Instance::new(4, 2, b.build());
    }

    #[test]
    #[should_panic]
    fn rejects_deadline_above_d() {
        let mut b = TraceBuilder::new(5);
        b.push(0u64, 0u32, 1u32);
        let _ = Instance::new(4, 2, b.build());
    }

    #[test]
    fn empty_instance_horizon() {
        let inst = Instance::new(2, 3, Trace::empty());
        assert_eq!(inst.horizon(), Round(1));
    }
}
