//! # reqsched-model
//!
//! Core vocabulary for the online request-scheduling problem of
//! *Berenbrink, Riedel & Scheideler, "Simple Competitive Request Scheduling
//! Strategies", SPAA 1999*.
//!
//! The model: `n` resources work in synchronized rounds. Every round an
//! adversary injects a set of requests; each request names (usually two)
//! alternative resources and carries a deadline `d` — a request arriving in
//! round `t` must be served during rounds `t ..= t+d-1` or it is lost. Every
//! resource serves at most one request per round. The objective is to maximize
//! the number of requests served before their deadlines expire.
//!
//! This crate defines the identifiers ([`ResourceId`], [`RequestId`],
//! [`Round`]), the [`Request`] type, adversary input sequences ([`Trace`],
//! built with [`TraceBuilder`]), problem [`Instance`]s, the paper's
//! `block(a,d)` input primitive ([`TraceBuilder::block`]), tie-breaking
//! [`Hint`]s (which select the *pessimal member* of a strategy class, as the
//! paper's existential lower bounds require), and the [`RequestSource`]
//! abstraction that lets adaptive adversaries (Theorem 2.6) generate input in
//! reaction to the online algorithm's observable behaviour.

mod ids;
mod instance;
mod request;
mod source;
mod trace;

pub use ids::{RequestId, ResourceId, Round, NO_REQUEST};
pub use instance::Instance;
pub use request::{Alternatives, Hint, Request};
pub use source::{RequestSource, StateView, TraceSource};
pub use trace::{ArrivalBatch, Trace, TraceBuilder};
