//! Requests, their alternative resources and tie-breaking hints.

use crate::ids::{RequestId, ResourceId, Round};
use serde::{Deserialize, Serialize};

/// The alternative resources a request may be served by.
///
/// The paper's core model gives every request exactly **two distinct**
/// alternatives (the two replicas of the requested data item). Observation
/// 3.1 covers the single-alternative case and the text remarks that EDF is
/// `c`-competitive for `c` alternatives, so we support all three shapes. The
/// one- and two-alternative cases are stored inline (no heap allocation on
/// the hot path, per the performance guide); the general case is boxed.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Alternatives {
    /// A single admissible resource (Observation 3.1 setting).
    One([ResourceId; 1]),
    /// The standard two-choice setting of the paper.
    Two([ResourceId; 2]),
    /// `c >= 3` alternatives (the EDF `c`-competitiveness remark).
    Many(Box<[ResourceId]>),
}

impl Alternatives {
    /// Build from an arbitrary list of alternatives.
    ///
    /// # Panics
    /// Panics if the list is empty or contains duplicate resources (the paper
    /// requires the alternatives of a request to be distinct).
    pub fn new(alts: &[ResourceId]) -> Self {
        assert!(!alts.is_empty(), "a request needs at least one alternative");
        for (i, a) in alts.iter().enumerate() {
            for b in &alts[i + 1..] {
                assert_ne!(a, b, "alternative resources must be distinct");
            }
        }
        match alts {
            [a] => Alternatives::One([*a]),
            [a, b] => Alternatives::Two([*a, *b]),
            many => Alternatives::Many(many.to_vec().into_boxed_slice()),
        }
    }

    /// Convenience constructor for the standard two-choice case.
    ///
    /// The order is significant for *local* strategies: `first` is the
    /// resource contacted in the first communication round.
    pub fn two(first: ResourceId, second: ResourceId) -> Self {
        assert_ne!(first, second, "alternative resources must be distinct");
        Alternatives::Two([first, second])
    }

    /// Convenience constructor for the single-alternative case.
    pub fn one(only: ResourceId) -> Self {
        Alternatives::One([only])
    }

    /// All alternatives, in trace order (first alternative first).
    #[inline]
    pub fn as_slice(&self) -> &[ResourceId] {
        match self {
            Alternatives::One(a) => a,
            Alternatives::Two(a) => a,
            Alternatives::Many(a) => a,
        }
    }

    /// Number of alternatives.
    #[inline]
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// `true` iff there are no alternatives (never, by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether `r` is one of the alternatives.
    #[inline]
    pub fn contains(&self, r: ResourceId) -> bool {
        self.as_slice().contains(&r)
    }

    /// The first alternative (the one contacted first by local strategies).
    #[inline]
    pub fn first(&self) -> ResourceId {
        self.as_slice()[0]
    }

    /// For a two-choice request, the alternative that is *not* `r`.
    ///
    /// # Panics
    /// Panics if the request does not have exactly two alternatives or if `r`
    /// is not one of them.
    #[inline]
    pub fn other(&self, r: ResourceId) -> ResourceId {
        match self {
            Alternatives::Two([a, b]) => {
                if *a == r {
                    *b
                } else if *b == r {
                    *a
                } else {
                    panic!("{r:?} is not an alternative of this request")
                }
            }
            _ => panic!("`other` requires exactly two alternatives"),
        }
    }
}

/// Tie-breaking hints attached to a request by an input generator.
///
/// Every strategy in the paper is a *class* of algorithms ("choose **any**
/// maximal/maximum matching such that …"), and the lower bounds are
/// existential: *"the strategy can be implemented in a way that the adversary
/// forces …"*. Hints are how a generator selects that pessimal class member:
/// a hint-guided tie-breaker prefers scheduling high-`priority` (numerically
/// low) requests first and prefers the `prefer`red resource when several
/// assignments are otherwise equally good. Hints never override a strategy's
/// defining rules — they only resolve the freedom the rules leave open.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Hint {
    /// Resource this request should be steered towards when the strategy's
    /// rules leave the choice open.
    pub prefer: Option<ResourceId>,
    /// Scheduling priority; lower values are considered first by hint-guided
    /// tie-breakers. Defaults to `u32::MAX` (= "no opinion", fall back to
    /// request order).
    pub priority: u32,
}

impl Default for Hint {
    fn default() -> Self {
        Hint {
            prefer: None,
            priority: u32::MAX,
        }
    }
}

impl Hint {
    /// A hint that only steers towards a resource.
    pub fn prefer(r: ResourceId) -> Self {
        Hint {
            prefer: Some(r),
            priority: u32::MAX,
        }
    }

    /// A hint that only sets a scheduling priority (lower = earlier).
    pub fn priority(p: u32) -> Self {
        Hint {
            prefer: None,
            priority: p,
        }
    }

    /// A hint with both a preferred resource and a priority.
    pub fn with(r: ResourceId, p: u32) -> Self {
        Hint {
            prefer: Some(r),
            priority: p,
        }
    }
}

/// A real-time request.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Request {
    /// Identifier; equals this request's index in its [`crate::Trace`].
    pub id: RequestId,
    /// Round the request arrives (is revealed to the online algorithm).
    pub arrival: Round,
    /// Admissible resources.
    pub alternatives: Alternatives,
    /// Relative deadline: the request may be served in rounds
    /// `arrival ..= arrival + deadline - 1`. Must be at least 1.
    pub deadline: u32,
    /// Free-form label used by generators (e.g. the colour groups of
    /// Theorem 2.6 or the `R_i` group index of the other constructions).
    pub tag: u32,
    /// Tie-breaking hint selecting the pessimal strategy-class member.
    pub hint: Hint,
}

impl Request {
    /// Last round (inclusive) in which the request may still be served.
    #[inline]
    pub fn expiry(&self) -> Round {
        debug_assert!(self.deadline >= 1);
        self.arrival + (self.deadline as u64 - 1)
    }

    /// Whether the request may be served in `round`.
    #[inline]
    pub fn window_contains(&self, round: Round) -> bool {
        round >= self.arrival && round <= self.expiry()
    }

    /// Whether serving this request on `resource` in `round` is feasible.
    #[inline]
    pub fn can_be_served(&self, resource: ResourceId, round: Round) -> bool {
        self.window_contains(round) && self.alternatives.contains(resource)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(arrival: u64, deadline: u32) -> Request {
        Request {
            id: RequestId(0),
            arrival: Round(arrival),
            alternatives: Alternatives::two(ResourceId(0), ResourceId(1)),
            deadline,
            tag: 0,
            hint: Hint::default(),
        }
    }

    #[test]
    fn expiry_is_inclusive_last_round() {
        let r = req(5, 3);
        assert_eq!(r.expiry(), Round(7));
        assert!(r.window_contains(Round(5)));
        assert!(r.window_contains(Round(7)));
        assert!(!r.window_contains(Round(8)));
        assert!(!r.window_contains(Round(4)));
    }

    #[test]
    fn deadline_one_means_immediate() {
        let r = req(5, 1);
        assert_eq!(r.expiry(), Round(5));
        assert!(r.window_contains(Round(5)));
        assert!(!r.window_contains(Round(6)));
    }

    #[test]
    fn can_be_served_checks_alternatives_and_window() {
        let r = req(0, 2);
        assert!(r.can_be_served(ResourceId(0), Round(0)));
        assert!(r.can_be_served(ResourceId(1), Round(1)));
        assert!(!r.can_be_served(ResourceId(2), Round(0)));
        assert!(!r.can_be_served(ResourceId(0), Round(2)));
    }

    #[test]
    fn alternatives_shapes() {
        let one = Alternatives::one(ResourceId(3));
        assert_eq!(one.as_slice(), &[ResourceId(3)]);
        assert_eq!(one.len(), 1);
        assert_eq!(one.first(), ResourceId(3));

        let two = Alternatives::two(ResourceId(1), ResourceId(2));
        assert_eq!(two.len(), 2);
        assert_eq!(two.other(ResourceId(1)), ResourceId(2));
        assert_eq!(two.other(ResourceId(2)), ResourceId(1));

        let many = Alternatives::new(&[ResourceId(0), ResourceId(1), ResourceId(2)]);
        assert_eq!(many.len(), 3);
        assert!(many.contains(ResourceId(2)));
        assert!(!many.contains(ResourceId(9)));
    }

    #[test]
    #[should_panic]
    fn duplicate_alternatives_rejected() {
        let _ = Alternatives::two(ResourceId(1), ResourceId(1));
    }

    #[test]
    #[should_panic]
    fn other_panics_for_non_alternative() {
        let two = Alternatives::two(ResourceId(1), ResourceId(2));
        let _ = two.other(ResourceId(5));
    }

    #[test]
    fn hint_defaults_and_constructors() {
        let h = Hint::default();
        assert_eq!(h.prefer, None);
        assert_eq!(h.priority, u32::MAX);
        assert_eq!(Hint::prefer(ResourceId(2)).prefer, Some(ResourceId(2)));
        assert_eq!(Hint::priority(3).priority, 3);
        let w = Hint::with(ResourceId(1), 9);
        assert_eq!((w.prefer, w.priority), (Some(ResourceId(1)), 9));
    }
}
