//! Request sources: fixed traces and adaptive adversaries.
//!
//! The constructions of Theorems 2.1–2.5 are *oblivious* — the whole request
//! sequence is fixed in advance, so a [`Trace`] suffices. Theorem 2.6's
//! universal lower bound, however, uses an **adaptive** adversary: in every
//! phase it observes which colour group the online algorithm served least and
//! blocks exactly that group. [`RequestSource`] is the common abstraction the
//! simulation driver consumes; [`TraceSource`] replays a fixed trace, and the
//! adversary crate provides adaptive implementations.

use crate::ids::{RequestId, Round};
use crate::request::Request;
use crate::trace::Trace;

/// What an adaptive adversary may observe about the online algorithm.
///
/// The paper's adversary is deterministic and reacts only to *services
/// actually performed* (a request is "fulfilled" once a resource has executed
/// it), so the view deliberately exposes nothing about the algorithm's
/// internal tentative schedule.
pub trait StateView {
    /// Whether the request has already been served (fulfilled).
    fn is_served(&self, id: RequestId) -> bool;

    /// Number of requests with the given tag that have been served so far.
    fn served_with_tag(&self, tag: u32) -> usize;

    /// Number of requests with the given tag injected so far.
    fn injected_with_tag(&self, tag: u32) -> usize;

    /// The current round.
    fn round(&self) -> Round;
}

/// A source of arrivals, driven one round at a time by the simulator.
pub trait RequestSource {
    /// The arrivals of `round`. Request ids must be assigned consecutively
    /// across the whole run (the simulator checks this). `view` lets adaptive
    /// adversaries react to the algorithm's observable behaviour.
    fn arrivals(&mut self, round: Round, view: &dyn StateView) -> Vec<Request>;

    /// `true` once the source will never produce arrivals again; the
    /// simulator drains remaining deadlines and stops.
    fn exhausted(&self, round: Round) -> bool;

    /// A short human-readable description (for reports).
    fn describe(&self) -> String {
        "request source".to_string()
    }
}

/// Replays a fixed [`Trace`].
///
/// Holds the trace as a [`Cow`](std::borrow::Cow), so simulation drivers can
/// replay a shared instance without cloning the full request sequence per
/// run ([`TraceSource::borrowed`]); owning construction via
/// [`TraceSource::new`] is unchanged.
#[derive(Clone, Debug)]
pub struct TraceSource<'a> {
    trace: std::borrow::Cow<'a, Trace>,
}

impl TraceSource<'static> {
    /// Wrap an owned trace.
    pub fn new(trace: Trace) -> TraceSource<'static> {
        TraceSource {
            trace: std::borrow::Cow::Owned(trace),
        }
    }
}

impl<'a> TraceSource<'a> {
    /// Replay a borrowed trace without cloning it.
    pub fn borrowed(trace: &'a Trace) -> TraceSource<'a> {
        TraceSource {
            trace: std::borrow::Cow::Borrowed(trace),
        }
    }

    /// The underlying trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }
}

impl RequestSource for TraceSource<'_> {
    fn arrivals(&mut self, round: Round, _view: &dyn StateView) -> Vec<Request> {
        self.trace.arrivals_at(round).to_vec()
    }

    fn exhausted(&self, round: Round) -> bool {
        round > self.trace.arrival_horizon()
    }

    fn describe(&self) -> String {
        format!("fixed trace ({} requests)", self.trace.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceBuilder;

    struct NullView;
    impl StateView for NullView {
        fn is_served(&self, _id: RequestId) -> bool {
            false
        }
        fn served_with_tag(&self, _tag: u32) -> usize {
            0
        }
        fn injected_with_tag(&self, _tag: u32) -> usize {
            0
        }
        fn round(&self) -> Round {
            Round::ZERO
        }
    }

    #[test]
    fn trace_source_replays_rounds() {
        let mut b = TraceBuilder::new(2);
        b.push(0u64, 0u32, 1u32);
        b.push(2u64, 1u32, 2u32);
        b.push(2u64, 0u32, 2u32);
        let mut src = TraceSource::new(b.build());
        assert_eq!(src.arrivals(Round(0), &NullView).len(), 1);
        assert_eq!(src.arrivals(Round(1), &NullView).len(), 0);
        assert_eq!(src.arrivals(Round(2), &NullView).len(), 2);
        assert!(!src.exhausted(Round(2)));
        assert!(src.exhausted(Round(3)));
        assert!(src.describe().contains("3 requests"));
    }

    #[test]
    fn borrowed_source_matches_owned() {
        let mut b = TraceBuilder::new(2);
        b.push(0u64, 0u32, 1u32);
        b.push(1u64, 1u32, 2u32);
        let trace = b.build();
        let mut owned = TraceSource::new(trace.clone());
        let mut borrowed = TraceSource::borrowed(&trace);
        for t in 0..3u64 {
            assert_eq!(
                owned.arrivals(Round(t), &NullView),
                borrowed.arrivals(Round(t), &NullView)
            );
            assert_eq!(owned.exhausted(Round(t)), borrowed.exhausted(Round(t)));
        }
    }
}
