//! Adversary input sequences and their builder, including the paper's
//! `block(a, d)` primitive.

use crate::ids::{RequestId, ResourceId, Round};
use crate::request::{Alternatives, Hint, Request};
use serde::{Deserialize, Serialize};

/// A fixed sequence of request arrivals — the adversary's input `σ`.
///
/// Requests are stored sorted by arrival round (primary) and injection order
/// within the round (secondary); a request's [`RequestId`] equals its index
/// in [`Trace::requests`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    requests: Vec<Request>,
    /// Start offsets into `requests` per round `0 ..= horizon`; has length
    /// `horizon + 2` so `offsets[r] .. offsets[r+1]` is round `r`'s batch.
    offsets: Vec<u32>,
    /// Last round in which any request arrives (0 if the trace is empty).
    horizon: Round,
}

/// The batch of requests arriving in one round.
#[derive(Clone, Copy, Debug)]
pub struct ArrivalBatch<'a> {
    /// The round these requests arrive in.
    pub round: Round,
    /// The requests, in injection order.
    pub requests: &'a [Request],
}

impl Trace {
    /// An empty trace.
    pub fn empty() -> Trace {
        Trace {
            requests: Vec::new(),
            offsets: vec![0, 0],
            horizon: Round::ZERO,
        }
    }

    /// All requests, ordered by `(arrival, injection order)`; index = id.
    #[inline]
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// Number of requests in the trace.
    #[inline]
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the trace has no requests.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// The request with the given id.
    #[inline]
    pub fn get(&self, id: RequestId) -> &Request {
        &self.requests[id.index()]
    }

    /// Last round in which any request arrives.
    #[inline]
    pub fn arrival_horizon(&self) -> Round {
        self.horizon
    }

    /// Last round in which any request may still be served
    /// (max over requests of their expiry), or round 0 for an empty trace.
    pub fn service_horizon(&self) -> Round {
        self.requests
            .iter()
            .map(Request::expiry)
            .max()
            .unwrap_or(Round::ZERO)
    }

    /// The arrivals of `round` (empty slice past the horizon).
    pub fn arrivals_at(&self, round: Round) -> &[Request] {
        let r = round.get() as usize;
        if r + 1 >= self.offsets.len() {
            return &[];
        }
        let lo = self.offsets[r] as usize;
        let hi = self.offsets[r + 1] as usize;
        &self.requests[lo..hi]
    }

    /// Iterate over the non-empty arrival batches in round order.
    pub fn batches(&self) -> impl Iterator<Item = ArrivalBatch<'_>> + '_ {
        (0..self.offsets.len() - 1).filter_map(move |r| {
            let lo = self.offsets[r] as usize;
            let hi = self.offsets[r + 1] as usize;
            (lo != hi).then(|| ArrivalBatch {
                round: Round(r as u64),
                requests: &self.requests[lo..hi],
            })
        })
    }

    /// Largest resource index referenced plus one (a lower bound on the
    /// number of resources an [`crate::Instance`] needs).
    pub fn min_resources(&self) -> u32 {
        self.requests
            .iter()
            .flat_map(|r| r.alternatives.as_slice())
            .map(|s| s.0 + 1)
            .max()
            .unwrap_or(0)
    }

    /// Append another trace shifted `shift` rounds into the future.
    ///
    /// Request ids are renumbered to stay equal to trace indices.
    pub fn concat_shifted(&self, other: &Trace, shift: u64) -> Trace {
        let mut b = TraceBuilder::new(1);
        for req in &self.requests {
            b.push_full(
                req.arrival,
                req.alternatives.clone(),
                req.deadline,
                req.tag,
                req.hint,
            );
        }
        for req in &other.requests {
            b.push_full(
                req.arrival + shift,
                req.alternatives.clone(),
                req.deadline,
                req.tag,
                req.hint,
            );
        }
        b.build()
    }
}

/// Builder for [`Trace`]s, used by every generator in the workspace.
///
/// The builder carries a *default deadline* `d` so the common case (all
/// requests share the instance deadline, as in the paper's core model) stays
/// terse, while per-request deadlines remain possible (the paper notes its
/// EDF observations hold for heterogeneous deadlines too).
#[derive(Clone, Debug)]
pub struct TraceBuilder {
    default_deadline: u32,
    /// (arrival, seq) keyed requests; sorted stably at build time.
    pending: Vec<Request>,
}

impl TraceBuilder {
    /// Create a builder whose requests default to deadline `d`.
    ///
    /// # Panics
    /// Panics if `d == 0` (a request must have at least one usable round).
    pub fn new(default_deadline: u32) -> TraceBuilder {
        assert!(default_deadline >= 1, "deadline must be at least 1");
        TraceBuilder {
            default_deadline,
            pending: Vec::new(),
        }
    }

    /// The default deadline `d` of this builder.
    pub fn default_deadline(&self) -> u32 {
        self.default_deadline
    }

    /// Number of requests added so far.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether no requests have been added yet.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Add a two-choice request arriving at `round` with alternatives
    /// `(first, second)` and the default deadline. Returns its id.
    pub fn push(
        &mut self,
        round: impl Into<Round>,
        first: impl Into<ResourceId>,
        second: impl Into<ResourceId>,
    ) -> RequestId {
        self.push_full(
            round.into(),
            Alternatives::two(first.into(), second.into()),
            self.default_deadline,
            0,
            Hint::default(),
        )
    }

    /// Add a two-choice request with a hint.
    pub fn push_hinted(
        &mut self,
        round: impl Into<Round>,
        first: impl Into<ResourceId>,
        second: impl Into<ResourceId>,
        hint: Hint,
    ) -> RequestId {
        self.push_full(
            round.into(),
            Alternatives::two(first.into(), second.into()),
            self.default_deadline,
            0,
            hint,
        )
    }

    /// Add a single-alternative request (Observation 3.1 setting).
    pub fn push_single(
        &mut self,
        round: impl Into<Round>,
        only: impl Into<ResourceId>,
    ) -> RequestId {
        self.push_full(
            round.into(),
            Alternatives::one(only.into()),
            self.default_deadline,
            0,
            Hint::default(),
        )
    }

    /// Add a request with every field spelled out. Returns its id
    /// (valid only if no requests with *earlier* sort position are added
    /// afterwards; generators that interleave rounds should use the id
    /// returned by `build` order instead).
    pub fn push_full(
        &mut self,
        arrival: Round,
        alternatives: Alternatives,
        deadline: u32,
        tag: u32,
        hint: Hint,
    ) -> RequestId {
        assert!(deadline >= 1, "deadline must be at least 1");
        let id = RequestId(self.pending.len() as u32);
        self.pending.push(Request {
            id,
            arrival,
            alternatives,
            deadline,
            tag,
            hint,
        });
        id
    }

    /// The paper's `block(a, d)` primitive: `a * d` requests, all arriving in
    /// `round`, in `a` groups of `d`; group `i` is directed to
    /// `resources[i]` and `resources[(i+1) mod a]`.
    ///
    /// A `block(2, d)` (the "frequently used structure") is `2d` requests
    /// that can each be served by both of two resources; it saturates both
    /// for the next `d` rounds. `block(1, d)` per Theorem 2.5 is expressed by
    /// passing two resources and using [`TraceBuilder::block2`] with `d`
    /// requests — see [`TraceBuilder::block1`].
    ///
    /// Requests are tagged with `tag`. Uses the builder's default deadline as
    /// the block depth `d`.
    ///
    /// # Panics
    /// Panics if fewer than 2 resources are given (with `a = 1` the paper
    /// uses the special `block(1, d)` form instead).
    pub fn block(&mut self, round: impl Into<Round>, resources: &[ResourceId], tag: u32) {
        assert!(
            resources.len() >= 2,
            "block(a, d) needs a >= 2 resources; use block1 for the degenerate form"
        );
        let round = round.into();
        let a = resources.len();
        let d = self.default_deadline;
        for i in 0..a {
            let first = resources[i];
            let second = resources[(i + 1) % a];
            for _ in 0..d {
                self.push_full(
                    round,
                    Alternatives::two(first, second),
                    d,
                    tag,
                    Hint::default(),
                );
            }
        }
    }

    /// `block(2, d)` on two resources: `2d` requests each admissible at both.
    pub fn block2(
        &mut self,
        round: impl Into<Round>,
        a: impl Into<ResourceId>,
        b: impl Into<ResourceId>,
        tag: u32,
    ) {
        let (a, b) = (a.into(), b.into());
        self.block(round, &[a, b], tag);
    }

    /// Theorem 2.5's `block(1, d)`: `d` requests directed to the permanently
    /// blocked resource `s_prime` and one target resource.
    pub fn block1(
        &mut self,
        round: impl Into<Round>,
        target: impl Into<ResourceId>,
        s_prime: impl Into<ResourceId>,
        tag: u32,
    ) {
        let round = round.into();
        let (target, s_prime) = (target.into(), s_prime.into());
        let d = self.default_deadline;
        for _ in 0..d {
            // Directed "to S' and to one other resource": first alternative
            // is the target so hint-free local strategies hit it first.
            self.push_full(
                round,
                Alternatives::two(target, s_prime),
                d,
                tag,
                Hint::default(),
            );
        }
    }

    /// Add `count` identical two-choice requests.
    pub fn push_group(
        &mut self,
        round: impl Into<Round>,
        first: impl Into<ResourceId>,
        second: impl Into<ResourceId>,
        count: u32,
        tag: u32,
        hint: Hint,
    ) {
        let round = round.into();
        let (first, second) = (first.into(), second.into());
        for _ in 0..count {
            self.push_full(
                round,
                Alternatives::two(first, second),
                self.default_deadline,
                tag,
                hint,
            );
        }
    }

    /// Finish the trace: stable-sort by arrival and renumber ids.
    pub fn build(mut self) -> Trace {
        self.pending.sort_by_key(|r| r.arrival);
        for (i, r) in self.pending.iter_mut().enumerate() {
            r.id = RequestId(i as u32);
        }
        let horizon = self
            .pending
            .last()
            .map(|r| r.arrival)
            .unwrap_or(Round::ZERO);
        let nrounds = horizon.get() as usize + 1;
        let mut offsets = vec![0u32; nrounds + 1];
        for r in &self.pending {
            offsets[r.arrival.get() as usize + 1] += 1;
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        Trace {
            requests: self.pending,
            offsets,
            horizon,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_trace() {
        let t = Trace::empty();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.arrivals_at(Round(0)), &[]);
        assert_eq!(t.arrivals_at(Round(99)), &[]);
        assert_eq!(t.min_resources(), 0);
        assert_eq!(t.service_horizon(), Round(0));
        assert_eq!(t.batches().count(), 0);
    }

    #[test]
    fn builder_sorts_by_round_and_renumbers() {
        let mut b = TraceBuilder::new(2);
        b.push(Round(3), 0u32, 1u32);
        b.push(Round(1), 2u32, 3u32);
        b.push(Round(1), 0u32, 2u32);
        let t = b.build();
        assert_eq!(t.len(), 3);
        assert_eq!(t.requests()[0].arrival, Round(1));
        assert_eq!(t.requests()[0].id, RequestId(0));
        assert_eq!(t.requests()[2].arrival, Round(3));
        assert_eq!(t.requests()[2].id, RequestId(2));
        // Stable within a round: (2,3) was pushed before (0,2).
        assert_eq!(
            t.requests()[0].alternatives,
            Alternatives::two(ResourceId(2), ResourceId(3))
        );
        assert_eq!(t.arrival_horizon(), Round(3));
        assert_eq!(t.service_horizon(), Round(4)); // d=2 -> 3+1
    }

    #[test]
    fn arrivals_at_and_batches_agree() {
        let mut b = TraceBuilder::new(1);
        b.push(0u64, 0u32, 1u32);
        b.push(2u64, 0u32, 1u32);
        b.push(2u64, 1u32, 2u32);
        let t = b.build();
        assert_eq!(t.arrivals_at(Round(0)).len(), 1);
        assert_eq!(t.arrivals_at(Round(1)).len(), 0);
        assert_eq!(t.arrivals_at(Round(2)).len(), 2);
        let batches: Vec<_> = t.batches().collect();
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].round, Round(0));
        assert_eq!(batches[1].round, Round(2));
        assert_eq!(batches[1].requests.len(), 2);
    }

    #[test]
    fn block_structure_matches_paper() {
        // block(3, d): 3d requests, group i -> (S_i, S_{(i+1) mod 3}).
        let d = 4;
        let mut b = TraceBuilder::new(d);
        let rs = [ResourceId(0), ResourceId(1), ResourceId(2)];
        b.block(Round(5), &rs, 7);
        let t = b.build();
        assert_eq!(t.len(), 3 * d as usize);
        for (i, chunk) in t.requests().chunks(d as usize).enumerate() {
            for r in chunk {
                assert_eq!(r.arrival, Round(5));
                assert_eq!(r.tag, 7);
                assert_eq!(r.alternatives, Alternatives::two(rs[i], rs[(i + 1) % 3]));
            }
        }
    }

    #[test]
    fn block2_saturates_two_resources() {
        let d = 3;
        let mut b = TraceBuilder::new(d);
        b.block2(Round(0), 4u32, 5u32, 0);
        let t = b.build();
        assert_eq!(t.len(), 2 * d as usize);
        // All requests admissible at both resources.
        for r in t.requests() {
            assert!(r.alternatives.contains(ResourceId(4)));
            assert!(r.alternatives.contains(ResourceId(5)));
        }
        assert_eq!(t.min_resources(), 6);
    }

    #[test]
    fn block1_targets_one_resource_plus_blocked() {
        let d = 5;
        let mut b = TraceBuilder::new(d);
        b.block1(Round(2), 1u32, 9u32, 3);
        let t = b.build();
        assert_eq!(t.len(), d as usize);
        for r in t.requests() {
            assert_eq!(r.alternatives.first(), ResourceId(1));
            assert!(r.alternatives.contains(ResourceId(9)));
            assert_eq!(r.tag, 3);
        }
    }

    #[test]
    fn concat_shifted_renumbers_and_shifts() {
        let mut b1 = TraceBuilder::new(2);
        b1.push(0u64, 0u32, 1u32);
        let t1 = b1.build();
        let mut b2 = TraceBuilder::new(2);
        b2.push(1u64, 2u32, 3u32);
        let t2 = b2.build();
        let t = t1.concat_shifted(&t2, 10);
        assert_eq!(t.len(), 2);
        assert_eq!(t.requests()[1].arrival, Round(11));
        assert_eq!(t.requests()[1].id, RequestId(1));
        assert_eq!(t.arrival_horizon(), Round(11));
    }

    #[test]
    #[should_panic]
    fn zero_deadline_rejected() {
        let _ = TraceBuilder::new(0);
    }

    #[test]
    fn serde_roundtrip() {
        // Passes against the real serde stack; skipped where the offline
        // dev container's stub serde_json is linked in.
        if reqsched_testsupport::skip_if_serde_stubbed("serde round-trip") {
            return;
        }
        let mut b = TraceBuilder::new(3);
        b.push_hinted(0u64, 0u32, 1u32, Hint::with(ResourceId(1), 5));
        b.block2(1u64, 2u32, 3u32, 9);
        let t = b.build();
        let json = serde_json::to_string(&t).unwrap();
        let back: Trace = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
