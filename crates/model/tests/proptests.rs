//! Property-based checks on the model layer: builder invariants, feasibility
//! predicates and serde round-trips for arbitrary traces.

use proptest::prelude::*;
use reqsched_model::{Alternatives, Hint, Instance, Round, Trace, TraceBuilder};

#[derive(Clone, Debug)]
struct Spec {
    round: u64,
    a: u32,
    b: u32,
    deadline: u32,
    tag: u32,
}

fn spec() -> impl Strategy<Value = Spec> {
    (0u64..20, 0u32..6, 0u32..5, 1u32..5, 0u32..4).prop_map(|(round, a, boff, deadline, tag)| {
        Spec {
            round,
            a,
            b: (a + 1 + boff) % 7,
            deadline,
            tag,
        }
    })
}

fn build(specs: &[Spec]) -> Trace {
    let mut b = TraceBuilder::new(8);
    for s in specs {
        let (x, y) = if s.a == s.b {
            (s.a, s.a + 1)
        } else {
            (s.a, s.b)
        };
        b.push_full(
            Round(s.round),
            Alternatives::two(x.into(), y.into()),
            s.deadline,
            s.tag,
            Hint::default(),
        );
    }
    b.build()
}

proptest! {
    #[test]
    fn trace_is_sorted_and_ids_are_indices(specs in proptest::collection::vec(spec(), 0..40)) {
        let t = build(&specs);
        prop_assert_eq!(t.len(), specs.len());
        for (i, r) in t.requests().iter().enumerate() {
            prop_assert_eq!(r.id.index(), i);
            if i > 0 {
                prop_assert!(t.requests()[i - 1].arrival <= r.arrival);
            }
        }
    }

    #[test]
    fn batches_partition_the_trace(specs in proptest::collection::vec(spec(), 0..40)) {
        let t = build(&specs);
        let total: usize = t.batches().map(|b| b.requests.len()).sum();
        prop_assert_eq!(total, t.len());
        // arrivals_at agrees with batches.
        for batch in t.batches() {
            prop_assert_eq!(t.arrivals_at(batch.round), batch.requests);
        }
    }

    #[test]
    fn window_predicates_are_consistent(specs in proptest::collection::vec(spec(), 1..30)) {
        let t = build(&specs);
        for r in t.requests() {
            prop_assert!(r.window_contains(r.arrival));
            prop_assert!(r.window_contains(r.expiry()));
            prop_assert!(!r.window_contains(r.expiry() + 1));
            prop_assert_eq!(
                r.expiry() - r.arrival,
                (r.deadline - 1) as u64
            );
            for &alt in r.alternatives.as_slice() {
                prop_assert!(r.can_be_served(alt, r.arrival));
            }
        }
    }

    #[test]
    fn serde_roundtrip(specs in proptest::collection::vec(spec(), 0..30)) {
        // Passes against the real serde stack; skipped where the offline
        // dev container's stub serde_json is linked in.
        if !reqsched_testsupport::serde_is_stubbed() {
            let t = build(&specs);
            let json = serde_json::to_string(&t).unwrap();
            let back: Trace = serde_json::from_str(&json).unwrap();
            prop_assert_eq!(&t, &back);
            if !t.is_empty() {
                let inst = Instance::new(t.min_resources().max(1), 8, t);
                let json = serde_json::to_string(&inst).unwrap();
                let back: Instance = serde_json::from_str(&json).unwrap();
                prop_assert_eq!(inst, back);
            }
        }
    }

    #[test]
    fn instance_horizon_covers_every_expiry(specs in proptest::collection::vec(spec(), 1..30)) {
        let t = build(&specs);
        let inst = Instance::new(t.min_resources().max(1), 8, t);
        let h = inst.horizon();
        for r in inst.trace.requests() {
            prop_assert!(r.expiry() < h);
        }
    }

    #[test]
    fn concat_shift_preserves_counts(
        a in proptest::collection::vec(spec(), 0..15),
        b in proptest::collection::vec(spec(), 0..15),
        shift in 0u64..50,
    ) {
        let ta = build(&a);
        let tb = build(&b);
        let t = ta.concat_shifted(&tb, shift);
        prop_assert_eq!(t.len(), ta.len() + tb.len());
    }
}
