//! The overload analysis from the paper's upper-bound proofs (Theorems
//! 3.3/3.4), made executable.
//!
//! For an algorithm's outcome, consider any round `t` in which injected
//! requests failed. The paper builds the set `S_t` of **overloaded
//! resources**: start with every alternative of the failed `t`-requests,
//! then keep adding resources that are alternatives of `t`-requests
//! *scheduled at resources already in the set*, until the set is closed.
//! Every execution of a `t`-request at a resource of `S_t` is an
//! **overloaded execution**; resource slots `t .. t+d-1` of an overloaded
//! resource form an **overloaded group**, and maximal unions of consecutive
//! groups on one resource are **overloaded intervals**.
//!
//! Two facts the proofs hinge on are checkable per run (and are checked in
//! tests):
//!
//! * for a strategy that keeps its matching maximal, the *last* slot
//!   `(i, t+d-1)` of every overloaded group is occupied by a request
//!   injected at `t` (otherwise a failed request would still fit);
//! * at most `(d-1)·|S_t|` of the `t`-requests failed, because even an
//!   optimal schedule fits at most `d·|S_t|` of them into the closure.

use crate::OfflineSolution;
use reqsched_model::{Instance, RequestId, ResourceId, Round};
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// Result of the overload analysis of one algorithm outcome.
#[derive(Clone, Debug, Default)]
pub struct OverloadReport {
    /// For every arrival round with at least one failed request: the closed
    /// overloaded resource set `S_t` and the failed `t`-requests.
    pub per_round: Vec<RoundOverload>,
    /// Total number of overloaded executions across the run.
    pub overloaded_executions: usize,
    /// Maximal overloaded intervals `(resource, first_round, last_round)`.
    pub intervals: Vec<(ResourceId, Round, Round)>,
}

/// Overload closure for one arrival round.
#[derive(Clone, Debug)]
pub struct RoundOverload {
    /// The arrival round `t`.
    pub round: Round,
    /// The failed requests injected at `t`.
    pub failed: Vec<RequestId>,
    /// The closed overloaded resource set `S_t`.
    pub resources: Vec<ResourceId>,
}

impl OverloadReport {
    /// Whether any overload occurred at all.
    pub fn is_empty(&self) -> bool {
        self.per_round.is_empty()
    }

    /// Total failed requests counted by the analysis.
    pub fn total_failed(&self) -> usize {
        self.per_round.iter().map(|r| r.failed.len()).sum()
    }
}

/// Run the overload analysis on an algorithm outcome.
///
/// `outcome.assignment[id]` must hold the slot that served request `id`
/// (`None` = failed), as produced by the simulation engine or an offline
/// schedule.
pub fn overload_analysis(inst: &Instance, outcome: &OfflineSolution) -> OverloadReport {
    debug_assert!(outcome.check(inst).is_ok());
    let d = inst.d as u64;

    // Group requests by arrival round.
    let mut by_round: BTreeMap<Round, Vec<RequestId>> = BTreeMap::new();
    for req in inst.trace.requests() {
        by_round.entry(req.arrival).or_default().push(req.id);
    }

    let mut per_round = Vec::new();
    let mut overloaded_executions = 0usize;
    // Per resource: overloaded rounds (union of groups).
    let mut overloaded_slots: BTreeMap<ResourceId, BTreeSet<u64>> = BTreeMap::new();

    for (&t, ids) in &by_round {
        let failed: Vec<RequestId> = ids
            .iter()
            .copied()
            .filter(|id| !outcome.is_served(*id))
            .collect();
        if failed.is_empty() {
            continue;
        }
        // Closure computation.
        let mut set: BTreeSet<ResourceId> = BTreeSet::new();
        for &id in &failed {
            set.extend(inst.trace.get(id).alternatives.as_slice().iter().copied());
        }
        loop {
            let mut grew = false;
            for &id in ids.iter() {
                let Some((res, _)) = outcome.assignment[id.index()] else {
                    continue;
                };
                if set.contains(&res) {
                    for &alt in inst.trace.get(id).alternatives.as_slice() {
                        if set.insert(alt) {
                            grew = true;
                        }
                    }
                }
            }
            if !grew {
                break;
            }
        }
        // Count overloaded executions and record groups.
        for &id in ids.iter() {
            if let Some((res, _)) = outcome.assignment[id.index()] {
                if set.contains(&res) {
                    overloaded_executions += 1;
                }
            }
        }
        for &res in &set {
            let slots = overloaded_slots.entry(res).or_default();
            for round in t.get()..t.get() + d {
                slots.insert(round);
            }
        }
        per_round.push(RoundOverload {
            round: t,
            failed,
            resources: set.into_iter().collect(),
        });
    }

    // Maximal consecutive runs per resource.
    let mut intervals = Vec::new();
    for (res, slots) in overloaded_slots {
        let mut iter = slots.into_iter();
        if let Some(first) = iter.next() {
            let (mut start, mut prev) = (first, first);
            for round in iter {
                if round == prev + 1 {
                    prev = round;
                } else {
                    intervals.push((res, Round(start), Round(prev)));
                    start = round;
                    prev = round;
                }
            }
            intervals.push((res, Round(start), Round(prev)));
        }
    }

    OverloadReport {
        per_round,
        overloaded_executions,
        intervals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reqsched_model::TraceBuilder;

    /// 3 requests on one pair with d = 1: one fails; both resources
    /// overloaded, interval = round 0 only.
    #[test]
    fn simple_overload_closure() {
        let mut b = TraceBuilder::new(1);
        for _ in 0..3 {
            b.push(0u64, 0u32, 1u32);
        }
        let inst = Instance::new(2, 1, b.build());
        let outcome = OfflineSolution {
            assignment: vec![
                Some((ResourceId(0), Round(0))),
                Some((ResourceId(1), Round(0))),
                None,
            ],
        };
        let report = overload_analysis(&inst, &outcome);
        assert_eq!(report.total_failed(), 1);
        assert_eq!(
            report.per_round[0].resources,
            vec![ResourceId(0), ResourceId(1)]
        );
        assert_eq!(report.overloaded_executions, 2);
        assert_eq!(
            report.intervals,
            vec![
                (ResourceId(0), Round(0), Round(0)),
                (ResourceId(1), Round(0), Round(0))
            ]
        );
    }

    /// The closure must follow scheduled requests' other alternatives:
    /// failed request points at S0; a t-request scheduled at S0 has the
    /// other alternative S1, which joins the set.
    #[test]
    fn closure_propagates_through_scheduled_requests() {
        let mut b = TraceBuilder::new(1);
        b.push(0u64, 0u32, 1u32); // scheduled at S0, alt S1
        b.push(0u64, 0u32, 2u32); // failed, alts {S0, S2}
        b.push(0u64, 1u32, 3u32); // scheduled at S1, alt S3
        let inst = Instance::new(4, 1, b.build());
        let outcome = OfflineSolution {
            assignment: vec![
                Some((ResourceId(0), Round(0))),
                None,
                Some((ResourceId(1), Round(0))),
            ],
        };
        let report = overload_analysis(&inst, &outcome);
        // Closure: {S0, S2} from the failed request, then S1 via request 0
        // (scheduled at S0), then S3 via request 2 (scheduled at S1).
        assert_eq!(
            report.per_round[0].resources,
            vec![ResourceId(0), ResourceId(1), ResourceId(2), ResourceId(3)]
        );
    }

    #[test]
    fn lossless_outcome_has_empty_report() {
        let mut b = TraceBuilder::new(2);
        b.push(0u64, 0u32, 1u32);
        let inst = Instance::new(2, 2, b.build());
        let outcome = OfflineSolution {
            assignment: vec![Some((ResourceId(0), Round(0)))],
        };
        let report = overload_analysis(&inst, &outcome);
        assert!(report.is_empty());
        assert_eq!(report.overloaded_executions, 0);
        assert!(report.intervals.is_empty());
    }

    #[test]
    fn groups_merge_into_intervals() {
        // Failures in rounds 0 and 2 with d = 3 on the same pair: groups
        // [0..2] and [2..4] merge into one interval [0..4].
        let mut b = TraceBuilder::new(3);
        for _ in 0..7 {
            b.push(0u64, 0u32, 1u32);
        }
        for _ in 0..7 {
            b.push(2u64, 0u32, 1u32);
        }
        let inst = Instance::new(2, 3, b.build());
        let sol = crate::optimal_schedule(&inst);
        // OPT serves 2/round over rounds 0..=4 = 10 of 14: failures in both
        // arrival rounds.
        let report = overload_analysis(&inst, &sol);
        assert_eq!(report.total_failed(), 4);
        assert_eq!(report.intervals.len(), 2); // one per resource
        for &(_, start, end) in &report.intervals {
            assert_eq!((start, end), (Round(0), Round(4)));
        }
    }
}
