//! # reqsched-offline
//!
//! Offline optimal schedules — the benchmark every competitive ratio in this
//! workspace is measured against.
//!
//! An optimal offline schedule for an [`Instance`] is a maximum-cardinality
//! matching in the full bipartite graph of requests × time slots
//! (paper §1.2); we compute it exactly with Hopcroft–Karp over the horizon
//! graph ([`optimal_schedule`]). The crate also provides:
//!
//! * [`OfflineSolution`] — a feasibility-checkable assignment of requests to
//!   `(resource, round)` slots, with verification ([`OfflineSolution::check`])
//!   used by tests and the simulation driver;
//! * [`greedy_normalize`] — the paper's proof device from Observation 3.1:
//!   transform a solution so every request is served as early as possible
//!   without changing the number of served requests;
//! * [`optimal_count`] — just the optimum value;
//! * [`StreamingOpt`] / [`prefix_optima`] — the optimum of every prefix of a
//!   growing request stream, maintained incrementally at one augmenting
//!   search per arrival instead of one full solve per prefix.

pub mod analysis;
pub mod parallel;
pub mod streaming;

pub use parallel::{
    prefix_optima_faulty, prefix_optima_sharded, prefix_optima_sharded_faulty, ShardedStreamingOpt,
};
pub use streaming::{prefix_optima, StreamingOpt};

use reqsched_core::fit_u32;
use reqsched_faults::FaultPlan;
use reqsched_matching::{hopcroft_karp, BipartiteGraph};
use reqsched_model::{Instance, RequestId, ResourceId, Round};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide count of Hopcroft–Karp horizon-graph solves (see
/// [`horizon_solve_count`]).
static HORIZON_SOLVES: AtomicU64 = AtomicU64::new(0);

/// How many full horizon-graph optimum computations
/// ([`optimal_schedule`] / [`optimal_count`]) this process has performed.
///
/// The horizon solve is the most expensive step of a simulation sweep, so
/// benches and regression tests use deltas of this counter to verify that
/// OPT caching actually eliminates redundant solves.
pub fn horizon_solve_count() -> u64 {
    HORIZON_SOLVES.load(Ordering::Relaxed)
}

/// An offline schedule: per-request slot assignment (`None` = unserved).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OfflineSolution {
    /// `assignment[id]` is the slot serving request `id`, if any.
    pub assignment: Vec<Option<(ResourceId, Round)>>,
}

impl OfflineSolution {
    /// Number of requests served.
    pub fn served_count(&self) -> usize {
        self.assignment.iter().filter(|a| a.is_some()).count()
    }

    /// Whether request `id` is served.
    pub fn is_served(&self, id: RequestId) -> bool {
        self.assignment.get(id.index()).is_some_and(Option::is_some)
    }

    /// Validate feasibility against the instance: every assignment uses an
    /// admissible resource inside the request's deadline window, and no two
    /// requests share a `(resource, round)` slot.
    pub fn check(&self, inst: &Instance) -> Result<(), String> {
        if self.assignment.len() != inst.trace.len() {
            return Err(format!(
                "assignment covers {} requests, trace has {}",
                self.assignment.len(),
                inst.trace.len()
            ));
        }
        let mut used = std::collections::BTreeSet::new();
        for (i, slot) in self.assignment.iter().enumerate() {
            let Some((res, round)) = slot else { continue };
            let req = inst.trace.get(RequestId(i as u32));
            if !req.can_be_served(*res, *round) {
                return Err(format!(
                    "request {:?} infeasibly assigned to {:?}@{:?}",
                    req.id, res, round
                ));
            }
            if !used.insert((*res, *round)) {
                return Err(format!("slot {res:?}@{round:?} double-booked"));
            }
        }
        Ok(())
    }
}

/// Build the full horizon graph of an instance (paper §1.2's
/// `G = (R ∪ S, E)` restricted to rounds up to the service horizon).
///
/// Left vertex `i` = request `i`; right vertex `round * n + resource`.
/// Adjacency is ordered earliest-round-first (irrelevant for the optimum's
/// value, convenient for deterministic output).
pub fn horizon_graph(inst: &Instance) -> BipartiteGraph {
    horizon_graph_masked(inst, None)
}

/// [`horizon_graph`] restricted to the slots a fault plan leaves usable:
/// edges into crashed or stalled `(resource, round)` slots are omitted, so
/// the optimum is computed on exactly the substrate the online strategies
/// ran on.
pub fn horizon_graph_faulty(inst: &Instance, plan: &FaultPlan) -> BipartiteGraph {
    assert_eq!(
        plan.n(),
        inst.n_resources,
        "fault plan resource count mismatch"
    );
    horizon_graph_masked(inst, Some(plan))
}

fn horizon_graph_masked(inst: &Instance, plan: Option<&FaultPlan>) -> BipartiteGraph {
    let n = inst.n_resources;
    let horizon = inst.trace.service_horizon().get() + 1; // rounds 0..horizon
    let n_right = (horizon * n as u64) as u32;
    let mut builder = BipartiteGraph::builder(n_right);
    let mut adj = Vec::new();
    for req in inst.trace.requests() {
        adj.clear();
        for round in req.arrival.get()..=req.expiry().get() {
            for &res in req.alternatives.as_slice() {
                if let Some(plan) = plan {
                    if !plan.slot_usable(res, Round(round)) {
                        continue;
                    }
                }
                adj.push(fit_u32(round * n as u64) + res.0);
            }
        }
        builder.add_left(&adj);
    }
    builder.finish()
}

/// Convert a solution into a matching on [`horizon_graph`]'s vertex
/// numbering (for symmetric-difference analyses against other schedules).
pub fn solution_matching(inst: &Instance, sol: &OfflineSolution) -> reqsched_matching::Matching {
    let n = inst.n_resources;
    let horizon = inst.trace.service_horizon().get() + 1;
    let mut m =
        reqsched_matching::Matching::empty(inst.trace.len() as u32, (horizon * n as u64) as u32);
    for (i, slot) in sol.assignment.iter().enumerate() {
        if let Some((res, round)) = slot {
            m.set(i as u32, fit_u32(round.get() * n as u64) + res.0);
        }
    }
    m
}

/// Compute an optimal offline schedule (maximum matching on the horizon
/// graph).
pub fn optimal_schedule(inst: &Instance) -> OfflineSolution {
    HORIZON_SOLVES.fetch_add(1, Ordering::Relaxed);
    let n = inst.n_resources;
    let g = horizon_graph(inst);
    let m = hopcroft_karp(&g);
    let assignment = (0..inst.trace.len() as u32)
        .map(|l| {
            m.left_mate(l).map(|r| {
                let round = r / n;
                let res = r % n;
                (ResourceId(res), Round(round as u64))
            })
        })
        .collect();
    let sol = OfflineSolution { assignment };
    debug_assert!(sol.check(inst).is_ok());
    sol
}

/// The optimum number of servable requests (`perf_OPT(σ)`).
pub fn optimal_count(inst: &Instance) -> usize {
    HORIZON_SOLVES.fetch_add(1, Ordering::Relaxed);
    hopcroft_karp(&horizon_graph(inst)).size()
}

/// The optimum number of servable requests on a faulty substrate: the
/// maximum matching of [`horizon_graph_faulty`]. This is the denominator's
/// counterpart for fault-aware competitive ratios — ALG and OPT see the
/// same masked feasibility graph.
pub fn optimal_count_faulty(inst: &Instance, plan: &FaultPlan) -> usize {
    HORIZON_SOLVES.fetch_add(1, Ordering::Relaxed);
    hopcroft_karp(&horizon_graph_faulty(inst, plan)).size()
}

/// Normalize a solution into "greedy" form (Observation 3.1's proof device):
/// repeatedly move each served request to the earliest feasible free slot,
/// until a fixpoint. Cardinality is unchanged; afterwards no served request
/// could be served strictly earlier on any of its admissible resources given
/// the other assignments.
pub fn greedy_normalize(inst: &Instance, sol: &OfflineSolution) -> OfflineSolution {
    let mut out = sol.clone();
    let n = inst.n_resources as u64;
    let horizon = inst.trace.service_horizon().get() + 1;
    let mut occupied = vec![false; (horizon * n) as usize];
    let slot_idx = |res: ResourceId, round: Round| (round.get() * n + res.0 as u64) as usize;
    for a in out.assignment.iter().flatten() {
        occupied[slot_idx(a.0, a.1)] = true;
    }
    loop {
        let mut changed = false;
        for i in 0..out.assignment.len() {
            let Some((res, round)) = out.assignment[i] else {
                continue;
            };
            let req = inst.trace.get(RequestId(i as u32));
            'search: for r in req.arrival.get()..round.get() {
                for &alt in req.alternatives.as_slice() {
                    let idx = slot_idx(alt, Round(r));
                    if !occupied[idx] {
                        occupied[slot_idx(res, round)] = false;
                        occupied[idx] = true;
                        out.assignment[i] = Some((alt, Round(r)));
                        changed = true;
                        break 'search;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    debug_assert!(out.check(inst).is_ok());
    debug_assert_eq!(out.served_count(), sol.served_count());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use reqsched_model::TraceBuilder;

    #[test]
    fn opt_serves_everything_when_possible() {
        let mut b = TraceBuilder::new(2);
        b.push(0u64, 0u32, 1u32);
        b.push(0u64, 0u32, 1u32);
        b.push(0u64, 2u32, 3u32);
        let inst = Instance::new(4, 2, b.build());
        let sol = optimal_schedule(&inst);
        assert_eq!(sol.served_count(), 3);
        sol.check(&inst).unwrap();
    }

    #[test]
    fn opt_respects_capacity() {
        // 3d requests on a two-resource pair: capacity is 2 per round over
        // d rounds from round 0 (all arrive at once) -> OPT = 2d.
        let d = 3;
        let mut b = TraceBuilder::new(d);
        b.block2(0u64, 0u32, 1u32, 0);
        b.push_group(0u64, 0u32, 1u32, d, 1, Default::default());
        let inst = Instance::new(2, d, b.build());
        assert_eq!(optimal_count(&inst), 2 * d as usize);
    }

    #[test]
    fn opt_uses_deadline_slack() {
        // 4 requests, pair capacity 2/round, d = 2: all 4 fit.
        let mut b = TraceBuilder::new(2);
        for _ in 0..4 {
            b.push(0u64, 0u32, 1u32);
        }
        let inst = Instance::new(2, 2, b.build());
        assert_eq!(optimal_count(&inst), 4);
    }

    #[test]
    fn empty_instance() {
        let inst = Instance::new(3, 2, reqsched_model::Trace::empty());
        assert_eq!(optimal_count(&inst), 0);
        let sol = optimal_schedule(&inst);
        assert_eq!(sol.served_count(), 0);
        sol.check(&inst).unwrap();
    }

    #[test]
    fn check_rejects_double_booking() {
        let mut b = TraceBuilder::new(2);
        b.push(0u64, 0u32, 1u32);
        b.push(0u64, 0u32, 1u32);
        let inst = Instance::new(2, 2, b.build());
        let sol = OfflineSolution {
            assignment: vec![
                Some((ResourceId(0), Round(0))),
                Some((ResourceId(0), Round(0))),
            ],
        };
        assert!(sol.check(&inst).is_err());
    }

    #[test]
    fn check_rejects_window_violation() {
        let mut b = TraceBuilder::new(2);
        b.push(0u64, 0u32, 1u32);
        let inst = Instance::new(2, 2, b.build());
        let sol = OfflineSolution {
            assignment: vec![Some((ResourceId(0), Round(5)))],
        };
        assert!(sol.check(&inst).is_err());
    }

    #[test]
    fn faulty_opt_loses_only_masked_capacity() {
        // Pair capacity 2/round over d = 3 rounds, 2d requests: OPT = 6.
        // Crash resource 1 for rounds [0, 2): 2 slots gone -> OPT = 4.
        let d = 3;
        let mut b = TraceBuilder::new(d);
        b.block2(0u64, 0u32, 1u32, 0);
        let inst = Instance::new(2, d, b.build());
        assert_eq!(optimal_count(&inst), 6);
        let plan = FaultPlan::empty(2).with_crash(ResourceId(1), Round(0), Round(2));
        assert_eq!(optimal_count_faulty(&inst, &plan), 4);
        // The empty plan changes nothing.
        assert_eq!(optimal_count_faulty(&inst, &FaultPlan::empty(2)), 6);
    }

    #[test]
    fn faulty_opt_degrades_to_surviving_replica() {
        let mut b = TraceBuilder::new(2);
        b.push(0u64, 0u32, 1u32);
        let inst = Instance::new(2, 2, b.build());
        let plan = FaultPlan::empty(2).with_crash(ResourceId(0), Round(0), Round(u64::MAX));
        assert_eq!(optimal_count_faulty(&inst, &plan), 1);
        let both_down = plan.with_crash(ResourceId(1), Round(0), Round(u64::MAX));
        assert_eq!(optimal_count_faulty(&inst, &both_down), 0);
    }

    #[test]
    fn greedy_normalize_moves_service_earlier() {
        let mut b = TraceBuilder::new(3);
        b.push(0u64, 0u32, 1u32);
        let inst = Instance::new(2, 3, b.build());
        let lazy = OfflineSolution {
            assignment: vec![Some((ResourceId(1), Round(2)))],
        };
        lazy.check(&inst).unwrap();
        let greedy = greedy_normalize(&inst, &lazy);
        assert_eq!(greedy.served_count(), 1);
        let (res, round) = greedy.assignment[0].unwrap();
        assert_eq!(round, Round(0));
        assert_eq!(res, ResourceId(0), "earliest slot, first alternative");
    }

    #[test]
    fn greedy_normalize_is_fixpoint_on_packed_solutions() {
        let d = 2;
        let mut b = TraceBuilder::new(d);
        b.block2(0u64, 0u32, 1u32, 0);
        let inst = Instance::new(2, d, b.build());
        let opt = optimal_schedule(&inst);
        let g1 = greedy_normalize(&inst, &opt);
        let g2 = greedy_normalize(&inst, &g1);
        assert_eq!(g1, g2);
        assert_eq!(g1.served_count(), opt.served_count());
    }
}
