//! Sharded streaming optimum: `perf_OPT` of every prefix, decomposed by
//! resource group and stepped in parallel.
//!
//! The horizon graph of an instance never has an edge between two resources:
//! every connected component lives inside the resource set its requests
//! name. Partition the catalog with a [`ShardMap`] and the graph falls apart
//! into one independent subgraph per shard group, so the maximum matching —
//! and therefore the streaming optimum of [`StreamingOpt`] — is the **sum of
//! per-group optima**. [`ShardedStreamingOpt`] maintains one
//! [`IncrementalMatching`] per group, batches each round's arrivals through
//! the Hopcroft–Karp-style batch insertion
//! ([`IncrementalMatching::add_left_batch`]), and steps the groups under
//! Rayon.
//!
//! **Straddlers.** A request whose alternatives span two groups would put an
//! edge across the decomposition, so the groups are *fused* first — the PR 7
//! protocol of the sharded ALG engine, replayed on the OPT side: groups
//! record their ingested arrivals while more than one group is alive; fusion
//! merges the two histories in global request-id order and replays them into
//! a fresh group over the merged resource set. Right vertices are numbered
//! `round * k + rank` with `k` the group's catalog size and `rank` the
//! resource's index within it, so replay is a pure translation of slot ids —
//! cardinality is invariant (the fused optimum is asserted equal to the sum
//! of the halves; see DESIGN.md "OPT shard fusion").
//!
//! **Parity.** After any prefix, [`ShardedStreamingOpt::opt`] equals
//! [`StreamingOpt::opt`] exactly — including under a [`FaultPlan`], which is
//! consulted by *global* resource id and round, unaffected by the local
//! renumbering. `tests/parallel_opt_proptests.rs` pins this across theorem
//! constructions, workload generators, random fault plans and shard counts.

use crate::streaming::StreamingOpt;
use crate::HORIZON_SOLVES;
use rayon::prelude::*;
use reqsched_core::{fit_u32, ShardMap};
use reqsched_faults::FaultPlan;
use reqsched_matching::IncrementalMatching;
use reqsched_model::{Instance, Request, Round};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// One resource group's share of the streaming optimum: an independent
/// incremental matching over the slots of the resources it owns.
#[derive(Debug)]
struct OptGroup {
    /// Global resource ids owned by this group, ascending. A resource's
    /// `rank` (index in this vector) is its local column; local right
    /// vertex = `round * len + rank`.
    resources: Vec<u32>,
    inc: IncrementalMatching,
    /// Ingested arrivals in global id order, kept for fusion replay while
    /// more than one group is alive.
    history: Vec<Request>,
    recording: bool,
    /// The current round's routed arrivals, awaiting [`OptGroup::step`].
    pending: Vec<Request>,
    /// Scratch CSR buffers reused across rounds.
    offsets: Vec<u32>,
    adj: Vec<u32>,
    alt_ranks: Vec<u32>,
}

/// Append the fault-masked adjacency of `req` onto `adj` in local slot ids.
fn push_edges(
    resources: &[u32],
    alt_ranks: &mut Vec<u32>,
    adj: &mut Vec<u32>,
    req: &Request,
    plan: Option<&FaultPlan>,
) {
    let k = resources.len() as u64;
    let alts = req.alternatives.as_slice();
    alt_ranks.clear();
    for &res in alts {
        let rank = resources
            .binary_search(&res.0)
            // lint: routing owns every alternative of this request; a miss is a routing bug, not input error
            .expect("alternative not owned by its routed group");
        alt_ranks.push(rank as u32);
    }
    for round in req.arrival.get()..=req.expiry().get() {
        for (i, &res) in alts.iter().enumerate() {
            if let Some(p) = plan {
                if !p.slot_usable(res, Round(round)) {
                    continue; // the slot doesn't exist for OPT either
                }
            }
            adj.push(fit_u32(round * k) + alt_ranks[i]);
        }
    }
}

impl OptGroup {
    fn new(resources: Vec<u32>, recording: bool) -> OptGroup {
        debug_assert!(resources.windows(2).all(|w| w[0] < w[1]));
        OptGroup {
            resources,
            inc: IncrementalMatching::new(),
            history: Vec::new(),
            recording,
            pending: Vec::new(),
            offsets: Vec::new(),
            adj: Vec::new(),
            alt_ranks: Vec::new(),
        }
    }

    /// Ingest every pending arrival as one batch (Hopcroft–Karp phase when
    /// the round brought more than one), then retire whatever stayed free —
    /// the same unmatched-forever argument as the serial engine, batch-wide.
    fn step(&mut self, plan: Option<&FaultPlan>) {
        if self.pending.is_empty() {
            return;
        }
        let mut pending = std::mem::take(&mut self.pending);
        self.offsets.clear();
        self.offsets.push(0);
        self.adj.clear();
        for req in &pending {
            push_edges(
                &self.resources,
                &mut self.alt_ranks,
                &mut self.adj,
                req,
                plan,
            );
            self.offsets.push(self.adj.len() as u32);
        }
        let first = self.inc.add_left_batch(&self.offsets, &self.adj);
        for l in first..self.inc.n_left() {
            if self.inc.matching().left_free(l) {
                self.inc.retire_left(l);
            }
        }
        if self.recording {
            self.history.append(&mut pending);
        } else {
            pending.clear();
        }
        // Hand the emptied buffer back so its capacity is reused.
        self.pending = pending;
    }

    /// Fuse two resource-disjoint groups: merge catalogs, replay the merged
    /// history (global id order, one batch per arrival round) into a fresh
    /// matching over the translated slot ids. Cardinality is preserved
    /// exactly — asserted, since max-matching size is additive over the
    /// disjoint union. Arrivals already staged for the current round (a
    /// straddler can land mid-batch) are carried over, merged in id order.
    fn fuse(a: OptGroup, b: OptGroup, plan: Option<&FaultPlan>, recording: bool) -> OptGroup {
        let before = a.inc.size() + b.inc.size();
        let mut resources = Vec::with_capacity(a.resources.len() + b.resources.len());
        let (mut i, mut j) = (0, 0);
        while i < a.resources.len() || j < b.resources.len() {
            let take_a = j >= b.resources.len()
                || (i < a.resources.len() && a.resources[i] < b.resources[j]);
            if take_a {
                resources.push(a.resources[i]);
                i += 1;
            } else {
                resources.push(b.resources[j]);
                j += 1;
            }
        }
        let mut fused = OptGroup::new(resources, recording);
        let history = merge_by_id(a.history, b.history);
        // Replay in arrival-round batches; arrivals are nondecreasing in id
        // order, so equal-arrival runs are contiguous.
        let mut k = 0;
        while k < history.len() {
            let round = history[k].arrival;
            let mut end = k;
            while end < history.len() && history[end].arrival == round {
                end += 1;
            }
            fused.pending.extend(history[k..end].iter().cloned());
            fused.step(plan);
            k = end;
        }
        assert_eq!(
            fused.inc.size(),
            before,
            "shard fusion must preserve the optimum (disjoint components are additive)"
        );
        fused.pending = merge_by_id(a.pending, b.pending);
        if recording {
            fused.history = history;
        } else {
            fused.history = Vec::new();
        }
        fused.recording = recording;
        fused
    }
}

/// Merge two request sequences sorted by ascending id into one.
fn merge_by_id(a: Vec<Request>, b: Vec<Request>) -> Vec<Request> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let mut a = a.into_iter().peekable();
    let mut b = b.into_iter().peekable();
    loop {
        let take_a = match (a.peek(), b.peek()) {
            (Some(x), Some(y)) => x.id < y.id,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };
        if take_a {
            out.extend(a.next());
        } else {
            out.extend(b.next());
        }
    }
    out
}

/// Sharded, batch-augmenting drop-in for [`StreamingOpt`]: same optimum
/// after every prefix, maintained as independent per-group matchings that a
/// round's arrivals step in parallel.
///
/// ```
/// use reqsched_core::ShardMap;
/// use reqsched_model::{Instance, TraceBuilder};
/// use reqsched_offline::{optimal_count, ShardedStreamingOpt};
///
/// let mut b = TraceBuilder::new(2);
/// b.push(0u64, 0u32, 1u32);
/// b.push(0u64, 2u32, 3u32);
/// let inst = Instance::new(4, 2, b.build());
///
/// let map = ShardMap::range(4, 2);
/// let mut sopt = ShardedStreamingOpt::new(4, &map);
/// sopt.ingest_round(inst.trace.requests());
/// assert_eq!(sopt.opt(), optimal_count(&inst));
/// ```
#[derive(Debug)]
pub struct ShardedStreamingOpt {
    n: u32,
    map: ShardMap,
    /// Shard index → current group slot (re-pointed by fusion).
    group_of_shard: Vec<u32>,
    groups: Vec<Option<OptGroup>>,
    alive: u32,
    plan: Option<Arc<FaultPlan>>,
    frontier: Round,
    ingested: usize,
    straddlers: u64,
    fusions: u64,
}

impl ShardedStreamingOpt {
    /// A fresh engine over `map`'s resource groups, no requests yet.
    pub fn new(n_resources: u32, map: &ShardMap) -> ShardedStreamingOpt {
        assert!(n_resources > 0, "need at least one resource");
        assert_eq!(map.n(), n_resources, "shard map resource count mismatch");
        let s = map.shards();
        let recording = s > 1;
        let groups = (0..s)
            .map(|i| Some(OptGroup::new(map.members(i), recording)))
            .collect();
        ShardedStreamingOpt {
            n: n_resources,
            map: map.clone(),
            group_of_shard: (0..s).collect(),
            groups,
            alive: s,
            plan: None,
            frontier: Round(0),
            ingested: 0,
            straddlers: 0,
            fusions: 0,
        }
    }

    /// Install a fault plan (see [`StreamingOpt::set_fault_plan`]); the plan
    /// is consulted by global resource id, so masking is identical to the
    /// serial engine's. Must be called before the first ingest.
    pub fn set_fault_plan(&mut self, plan: Arc<FaultPlan>) {
        assert_eq!(plan.n(), self.n, "fault plan resource count mismatch");
        assert_eq!(
            self.ingested, 0,
            "fault plan must be installed before the first ingest"
        );
        self.plan = Some(plan);
    }

    /// Current optimum: the sum of per-group maximum matchings, equal to the
    /// serial [`StreamingOpt::opt`] of the same prefix.
    #[inline]
    pub fn opt(&self) -> usize {
        self.groups.iter().flatten().map(|g| g.inc.size()).sum()
    }

    /// Number of requests ingested so far.
    #[inline]
    pub fn ingested(&self) -> usize {
        self.ingested
    }

    /// Arrival round of the latest ingested request.
    #[inline]
    pub fn frontier(&self) -> Round {
        self.frontier
    }

    /// Groups still running independently (decreases once per fusion).
    #[inline]
    pub fn alive_groups(&self) -> u32 {
        self.alive
    }

    /// Straddler requests routed so far.
    #[inline]
    pub fn straddlers(&self) -> u64 {
        self.straddlers
    }

    /// Group fusions performed so far (at most `shards - 1` over a run).
    #[inline]
    pub fn fusions(&self) -> u64 {
        self.fusions
    }

    /// Total matching edges scanned across all groups (cf.
    /// [`StreamingOpt::edges_scanned`]).
    pub fn edges_scanned(&self) -> u64 {
        self.groups
            .iter()
            .flatten()
            .map(|g| g.inc.edges_scanned())
            .sum()
    }

    /// Route `req` to the group owning all its alternatives, fusing groups
    /// when they straddle. Returns the group slot index.
    fn route(&mut self, req: &Request) -> usize {
        let alts = req.alternatives.as_slice();
        let mut target = self.group_of_shard[self.map.shard_of(alts[0]) as usize] as usize;
        let mut straddled = false;
        for &alt in &alts[1..] {
            let other = self.group_of_shard[self.map.shard_of(alt) as usize] as usize;
            if other != target {
                straddled = true;
                target = self.fuse_groups(target, other);
            }
        }
        if straddled {
            self.straddlers += 1;
        }
        target
    }

    /// Fuse the groups in slots `a` and `b` into `min(a, b)`; re-point every
    /// shard that mapped to the loser. Returns the surviving slot.
    fn fuse_groups(&mut self, a: usize, b: usize) -> usize {
        debug_assert_ne!(a, b);
        let (lo, hi) = (a.min(b), a.max(b));
        let ga = self.groups[lo]
            .take()
            // lint: group_of_shard only ever points at occupied slots
            .expect("fusion target slot occupied");
        let gb = self.groups[hi]
            .take()
            // lint: group_of_shard only ever points at occupied slots
            .expect("fusion source slot occupied");
        self.alive -= 1;
        self.fusions += 1;
        let recording = self.alive > 1;
        let fused = OptGroup::fuse(ga, gb, self.plan.as_deref(), recording);
        self.groups[lo] = Some(fused);
        for s in self.group_of_shard.iter_mut() {
            if *s == hi as u32 {
                *s = lo as u32;
            }
        }
        if !recording {
            // Down to one live solver: no further fusion is possible, so no
            // group needs to keep (or keep growing) a replay history.
            for g in self.groups.iter_mut().flatten() {
                g.recording = false;
                g.history = Vec::new();
            }
        }
        lo
    }

    fn note_arrival(&mut self, req: &Request) {
        debug_assert!(
            req.arrival >= self.frontier,
            "arrivals must be nondecreasing: got {:?} after frontier {:?}",
            req.arrival,
            self.frontier
        );
        debug_assert_eq!(
            req.id.index(),
            self.ingested,
            "requests must be ingested in id order"
        );
        self.frontier = req.arrival;
        self.ingested += 1;
    }

    /// Feed a single arrival and return the updated optimum. Ordering
    /// contract as in [`StreamingOpt::ingest`].
    pub fn ingest(&mut self, req: &Request) -> usize {
        self.note_arrival(req);
        let g = self.route(req);
        let plan = self.plan.clone();
        let group = self.groups[g]
            .as_mut()
            // lint: route() returns an occupied slot by construction
            .expect("routed group slot occupied");
        group.pending.push(req.clone());
        group.step(plan.as_deref());
        self.opt()
    }

    /// Feed one round's arrivals (equal `arrival`, ascending ids) and return
    /// the updated optimum. Routing and fusion run serially in id order —
    /// the deterministic part — then every group with staged arrivals steps
    /// its matching in parallel, each as one batched augmentation.
    pub fn ingest_round(&mut self, reqs: &[Request]) -> usize {
        for req in reqs {
            self.note_arrival(req);
            let g = self.route(req);
            self.groups[g]
                .as_mut()
                // lint: route() returns an occupied slot by construction
                .expect("routed group slot occupied")
                .pending
                .push(req.clone());
        }
        let plan = self.plan.clone();
        let plan_ref = plan.as_deref();
        // Index-preserving parallel step: order of the vector is the group
        // identity, so map (not reduce) keeps determinism trivially.
        let groups = std::mem::take(&mut self.groups);
        self.groups = groups
            .into_par_iter()
            .map(|slot| {
                slot.map(|mut g| {
                    g.step(plan_ref);
                    g
                })
            })
            .collect();
        self.opt()
    }
}

fn prefix_optima_sharded_impl(
    inst: &Instance,
    map: &ShardMap,
    plan: Option<Arc<FaultPlan>>,
) -> Vec<u32> {
    HORIZON_SOLVES.fetch_add(1, Ordering::Relaxed);
    let horizon = inst.trace.service_horizon().get();
    let mut sopt = ShardedStreamingOpt::new(inst.n_resources, map);
    if let Some(plan) = plan {
        sopt.set_fault_plan(plan);
    }
    let reqs = inst.trace.requests();
    let mut out = Vec::with_capacity(horizon as usize + 1);
    let mut opt = 0usize;
    let mut i = 0;
    while i < reqs.len() {
        let arrival = reqs[i].arrival;
        while (out.len() as u64) < arrival.get() {
            out.push(opt as u32); // rounds with no arrivals keep the optimum
        }
        let mut j = i;
        while j < reqs.len() && reqs[j].arrival == arrival {
            j += 1;
        }
        opt = sopt.ingest_round(&reqs[i..j]);
        i = j;
    }
    while (out.len() as u64) <= horizon {
        out.push(opt as u32);
    }
    out
}

/// Sharded, round-batched [`prefix_optima`](crate::prefix_optima):
/// bit-identical output, one batched parallel step per round instead of one
/// augmenting search per arrival. Counts as a single horizon solve.
pub fn prefix_optima_sharded(inst: &Instance, map: &ShardMap) -> Vec<u32> {
    prefix_optima_sharded_impl(inst, map, None)
}

/// [`prefix_optima_sharded`] on a faulty substrate: masked slots never enter
/// any group's feasibility graph, exactly as in
/// [`StreamingOpt::set_fault_plan`].
pub fn prefix_optima_sharded_faulty(
    inst: &Instance,
    map: &ShardMap,
    plan: Arc<FaultPlan>,
) -> Vec<u32> {
    prefix_optima_sharded_impl(inst, map, Some(plan))
}

/// Serial reference for the faulty prefix curve (the plan-aware counterpart
/// of [`prefix_optima`](crate::prefix_optima)), used by parity tests and the
/// paired runners' baseline path.
pub fn prefix_optima_faulty(inst: &Instance, plan: Arc<FaultPlan>) -> Vec<u32> {
    HORIZON_SOLVES.fetch_add(1, Ordering::Relaxed);
    let horizon = inst.trace.service_horizon().get();
    let mut sopt = StreamingOpt::new(inst.n_resources);
    sopt.set_fault_plan(plan);
    let mut out = Vec::with_capacity(horizon as usize + 1);
    let mut opt = 0usize;
    for req in inst.trace.requests() {
        while (out.len() as u64) < req.arrival.get() {
            out.push(opt as u32);
        }
        opt = sopt.ingest(req);
    }
    while (out.len() as u64) <= horizon {
        out.push(opt as u32);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{optimal_count, optimal_count_faulty, prefix_optima};
    use reqsched_model::{ResourceId, Trace, TraceBuilder};

    /// A mixed trace over 8 resources: disjoint pairs, reuse, quiet rounds.
    fn mixed_instance() -> Instance {
        let mut b = TraceBuilder::new(3);
        b.push(0u64, 0u32, 1u32);
        b.push(0u64, 2u32, 3u32);
        b.push(0u64, 0u32, 1u32);
        b.push(1u64, 4u32, 5u32);
        b.push(1u64, 0u32, 1u32);
        b.push(3u64, 6u32, 7u32);
        b.push(3u64, 2u32, 3u32);
        b.push(3u64, 2u32, 3u32);
        b.push(6u64, 0u32, 1u32);
        Instance::new(8, 3, b.build())
    }

    #[test]
    fn sharded_matches_serial_prefix_optima() {
        let inst = mixed_instance();
        let serial = prefix_optima(&inst);
        for s in [1u32, 2, 4, 8] {
            for map in [ShardMap::range(8, s), ShardMap::hash(8, s)] {
                assert_eq!(
                    prefix_optima_sharded(&inst, &map),
                    serial,
                    "shards={s} partitioner differs from serial"
                );
            }
        }
    }

    #[test]
    fn straddlers_fuse_and_preserve_the_optimum() {
        // Pairs (i, i+4) straddle every boundary of range(8, 4): all four
        // groups collapse into one, and parity must survive each fusion.
        let mut b = TraceBuilder::new(2);
        for t in 0..4u64 {
            for i in 0..4u32 {
                b.push(t, i, i + 4);
            }
        }
        let inst = Instance::new(8, 2, b.build());
        let map = ShardMap::range(8, 4);
        let mut sopt = ShardedStreamingOpt::new(8, &map);
        let mut serial = StreamingOpt::new(8);
        let reqs = inst.trace.requests();
        let mut i = 0;
        while i < reqs.len() {
            let mut j = i;
            while j < reqs.len() && reqs[j].arrival == reqs[i].arrival {
                j += 1;
            }
            let got = sopt.ingest_round(&reqs[i..j]);
            let mut want = 0;
            for req in &reqs[i..j] {
                want = serial.ingest(req);
            }
            assert_eq!(got, want, "divergence at round {:?}", reqs[i].arrival);
            i = j;
        }
        // Pairs (i, i + 4) weld {0,1}∪{4,5} and {2,3}∪{6,7}: two fusions,
        // two surviving super-groups.
        assert_eq!(sopt.fusions(), 2);
        assert!(sopt.straddlers() > 0);
        assert_eq!(sopt.alive_groups(), 2);
        assert_eq!(sopt.opt(), optimal_count(&inst));
    }

    #[test]
    fn single_ingest_path_matches_round_path() {
        let inst = mixed_instance();
        let map = ShardMap::range(8, 4);
        let mut one = ShardedStreamingOpt::new(8, &map);
        for req in inst.trace.requests() {
            one.ingest(req);
        }
        assert_eq!(one.opt(), optimal_count(&inst));
        assert_eq!(one.ingested(), inst.trace.len());
    }

    #[test]
    fn faulty_sharded_matches_faulty_serial() {
        let inst = mixed_instance();
        let plan = Arc::new(
            FaultPlan::empty(8)
                .with_crash(ResourceId(1), Round(0), Round(4))
                .with_crash(ResourceId(6), Round(2), Round(9))
                .with_stall(ResourceId(2), Round(3)),
        );
        let serial = prefix_optima_faulty(&inst, plan.clone());
        for s in [1u32, 2, 4] {
            let map = ShardMap::range(8, s);
            assert_eq!(
                prefix_optima_sharded_faulty(&inst, &map, plan.clone()),
                serial,
                "faulty parity at shards={s}"
            );
        }
        assert_eq!(
            *serial.last().unwrap() as usize,
            optimal_count_faulty(&inst, &plan)
        );
    }

    #[test]
    fn empty_instance_and_empty_rounds() {
        let inst = Instance::new(4, 2, Trace::empty());
        let map = ShardMap::range(4, 2);
        assert_eq!(prefix_optima_sharded(&inst, &map), vec![0]);
        let mut sopt = ShardedStreamingOpt::new(4, &map);
        assert_eq!(sopt.ingest_round(&[]), 0);
        assert_eq!(sopt.opt(), 0);
    }
}
