//! Streaming offline optimum: `perf_OPT` of every prefix, one arrival at a
//! time.
//!
//! Ratio curves, adversarial phase generators, and live traces all need the
//! optimum of a *growing* instance — OPT of the requests revealed so far.
//! [`optimal_count`](crate::optimal_count) answers that by rebuilding and
//! re-solving the entire horizon graph, so asking after every arrival costs
//! `O(R)` full Hopcroft–Karp solves over a run of `R` requests.
//! [`StreamingOpt`] instead maintains the maximum matching incrementally
//! ([`IncrementalMatching`]): each arrival triggers exactly one augmenting
//! search over live state, so the whole prefix curve costs about as much as
//! the final solve alone.
//!
//! Parity is exact, not approximate: after ingesting any prefix of an
//! instance's requests, [`StreamingOpt::opt`] equals
//! `optimal_count(&prefix_instance)` — a single maximum matching is
//! maintained, not an estimate (proptests in `tests/streaming_proptests.rs`
//! enforce this on random streams).
//!
//! Frontier advancement: arrivals must be ingested in nondecreasing arrival
//! order (the order [`Trace`] guarantees). A request that comes out of its
//! own insertion search unmatched can never be matched later (augmenting
//! paths only pass through matched vertices), so its adjacency is retired on
//! the spot — searches never rescan columns of long-expired rounds except
//! through genuine alternating paths from live requests.

use crate::{OfflineSolution, HORIZON_SOLVES};
use reqsched_core::fit_u32;
use reqsched_faults::FaultPlan;
use reqsched_matching::IncrementalMatching;
use reqsched_model::{Instance, Request, RequestId, ResourceId, Round, Trace};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Incrementally maintained offline optimum of a growing request stream.
///
/// ```
/// use reqsched_model::{Instance, TraceBuilder};
/// use reqsched_offline::{optimal_count, StreamingOpt};
///
/// let mut b = TraceBuilder::new(2);
/// b.push(0u64, 0u32, 1u32);
/// b.push(1u64, 0u32, 1u32);
/// let inst = Instance::new(2, 2, b.build());
///
/// let mut sopt = StreamingOpt::new(inst.n_resources);
/// for req in inst.trace.requests() {
///     sopt.ingest(req);
/// }
/// assert_eq!(sopt.opt(), optimal_count(&inst));
/// ```
#[derive(Debug)]
pub struct StreamingOpt {
    n: u32,
    inc: IncrementalMatching,
    /// Arrival round of the last ingested request (frontier watermark).
    frontier: Round,
    /// Scratch adjacency buffer, reused across ingests.
    adj: Vec<u32>,
    /// Fault plan masking slots out of the feasibility graph, if any.
    faults: Option<Arc<FaultPlan>>,
}

impl StreamingOpt {
    /// A fresh engine for an `n`-resource system with no requests yet.
    pub fn new(n_resources: u32) -> StreamingOpt {
        assert!(n_resources > 0, "need at least one resource");
        StreamingOpt {
            n: n_resources,
            inc: IncrementalMatching::new(),
            frontier: Round(0),
            adj: Vec::new(),
            faults: None,
        }
    }

    /// Install a fault plan: crashed/stalled slots never enter the
    /// feasibility graph, so the maintained optimum is `perf_OPT` **on the
    /// same faulty substrate the online strategy runs on** — the only
    /// setting in which the ALG/OPT ratio is meaningful under faults.
    ///
    /// Must be called before the first [`StreamingOpt::ingest`].
    pub fn set_fault_plan(&mut self, plan: Arc<FaultPlan>) {
        assert_eq!(plan.n(), self.n, "fault plan resource count mismatch");
        assert_eq!(
            self.ingested(),
            0,
            "fault plan must be installed before the first ingest"
        );
        self.faults = Some(plan);
    }

    /// Current optimum: the maximum number of servable requests among
    /// everything ingested so far (`perf_OPT` of the prefix).
    #[inline]
    pub fn opt(&self) -> usize {
        self.inc.size()
    }

    /// Number of requests ingested so far.
    #[inline]
    pub fn ingested(&self) -> usize {
        self.inc.n_left() as usize
    }

    /// Arrival round of the latest ingested request.
    #[inline]
    pub fn frontier(&self) -> Round {
        self.frontier
    }

    /// Total matching edges scanned since construction — the engine's whole
    /// lifetime cost in the unit a single full solve pays per `O(E)` pass.
    #[inline]
    pub fn edges_scanned(&self) -> u64 {
        self.inc.edges_scanned()
    }

    /// Feed the next arrival and return the updated optimum.
    ///
    /// Requests must arrive in nondecreasing arrival order and must have been
    /// numbered consecutively (`req.id.index() == self.ingested()`), both of
    /// which hold for requests drawn in order from a [`Trace`].
    pub fn ingest(&mut self, req: &Request) -> usize {
        debug_assert!(
            req.arrival >= self.frontier,
            "arrivals must be nondecreasing: got {:?} after frontier {:?}",
            req.arrival,
            self.frontier
        );
        debug_assert_eq!(
            req.id.index(),
            self.ingested(),
            "requests must be ingested in id order"
        );
        self.frontier = req.arrival;
        self.adj.clear();
        for round in req.arrival.get()..=req.expiry().get() {
            for &res in req.alternatives.as_slice() {
                if let Some(plan) = &self.faults {
                    if !plan.slot_usable(res, Round(round)) {
                        continue; // the slot doesn't exist for OPT either
                    }
                }
                self.adj.push(fit_u32(round * self.n as u64) + res.0);
            }
        }
        let l = self.inc.add_left(&self.adj);
        if self.inc.matching().left_free(l) {
            // Unmatched after its own insertion search means unmatched
            // forever; retire the adjacency so the frontier never rescans it.
            self.inc.retire_left(l);
        }
        self.inc.size()
    }

    /// Ingest every request of a trace in order, recording the optimum after
    /// each arrival. `prefix[i]` is OPT of the first `i + 1` requests.
    pub fn ingest_all(&mut self, trace: &Trace) -> Vec<u32> {
        let mut prefix = Vec::with_capacity(trace.len());
        for req in trace.requests() {
            prefix.push(self.ingest(req) as u32);
        }
        prefix
    }

    /// Whether request `id` is served in the maintained optimal schedule.
    ///
    /// Individual assignments may churn as later arrivals reroute alternating
    /// paths, but a served request never becomes unserved.
    #[inline]
    pub fn is_served(&self, id: RequestId) -> bool {
        !self.inc.matching().left_free(id.0)
    }

    /// Snapshot the maintained matching as a checkable offline solution for
    /// the requests ingested so far.
    pub fn solution(&self) -> OfflineSolution {
        let n = self.n as u64;
        let assignment = (0..self.inc.n_left())
            .map(|l| {
                self.inc.matching().left_mate(l).map(|r| {
                    let r = r as u64;
                    (ResourceId((r % n) as u32), Round(r / n))
                })
            })
            .collect();
        OfflineSolution { assignment }
    }
}

/// Per-round prefix optima of a whole instance, computed in one streaming
/// pass: `out[t]` is `perf_OPT` of the sub-instance containing every request
/// with `arrival <= t`, for `t` in `0..=service_horizon`.
///
/// Equivalent to calling [`optimal_count`](crate::optimal_count) on each of
/// the `horizon + 1` prefix instances, at roughly the cost of the last call
/// alone. Counts as a single horizon solve in
/// [`horizon_solve_count`](crate::horizon_solve_count).
pub fn prefix_optima(inst: &Instance) -> Vec<u32> {
    HORIZON_SOLVES.fetch_add(1, Ordering::Relaxed);
    let horizon = inst.trace.service_horizon().get();
    let mut sopt = StreamingOpt::new(inst.n_resources);
    let mut out = Vec::with_capacity(horizon as usize + 1);
    let mut opt = 0usize;
    for req in inst.trace.requests() {
        while (out.len() as u64) < req.arrival.get() {
            out.push(opt as u32); // rounds with no arrivals keep the optimum
        }
        opt = sopt.ingest(req);
    }
    while (out.len() as u64) <= horizon {
        out.push(opt as u32);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimal_count;
    use reqsched_model::TraceBuilder;

    /// Ingest a trace request by request and check the running optimum
    /// against a fresh full solve of each prefix instance.
    fn check_stream_parity(inst: &Instance) {
        let mut sopt = StreamingOpt::new(inst.n_resources);
        let mut b = TraceBuilder::new(1); // deadlines overridden via push_full
        for req in inst.trace.requests() {
            let opt = sopt.ingest(req);
            b.push_full(
                req.arrival,
                req.alternatives.clone(),
                req.deadline,
                req.tag,
                req.hint,
            );
            let prefix = Instance::new(inst.n_resources, inst.d, b.clone().build());
            assert_eq!(
                opt,
                optimal_count(&prefix),
                "prefix of {} requests",
                prefix.trace.len()
            );
            sopt.solution().check(&prefix).unwrap();
        }
    }

    #[test]
    fn streaming_matches_full_solve_on_every_prefix() {
        // Saturated pair: 3d requests on 2 resources, capacity 2/round.
        let d = 3;
        let mut b = TraceBuilder::new(d);
        b.block2(0u64, 0u32, 1u32, 0);
        b.push_group(0u64, 0u32, 1u32, d, 1, Default::default());
        check_stream_parity(&Instance::new(2, d, b.build()));

        // Staggered arrivals across rounds and disjoint resource pairs.
        let mut b = TraceBuilder::new(2);
        b.push(0u64, 0u32, 1u32);
        b.push(0u64, 0u32, 1u32);
        b.push(1u64, 2u32, 3u32);
        b.push(2u64, 0u32, 2u32);
        b.push(2u64, 1u32, 3u32);
        b.push(5u64, 0u32, 1u32);
        check_stream_parity(&Instance::new(4, 2, b.build()));
    }

    #[test]
    fn served_requests_stay_served() {
        let d = 2;
        let mut b = TraceBuilder::new(d);
        b.block2(0u64, 0u32, 1u32, 0);
        b.push_group(1u64, 0u32, 1u32, d, 1, Default::default());
        let inst = Instance::new(2, d, b.build());
        let mut sopt = StreamingOpt::new(inst.n_resources);
        let mut served: Vec<RequestId> = Vec::new();
        for req in inst.trace.requests() {
            sopt.ingest(req);
            for &id in &served {
                assert!(sopt.is_served(id), "{id:?} became unserved");
            }
            if sopt.is_served(req.id) {
                served.push(req.id);
            }
        }
    }

    #[test]
    fn prefix_optima_covers_every_round() {
        let mut b = TraceBuilder::new(2);
        b.push(0u64, 0u32, 1u32);
        b.push(3u64, 0u32, 1u32);
        b.push(3u64, 0u32, 1u32);
        let inst = Instance::new(2, 2, b.build());
        let optima = prefix_optima(&inst);
        let horizon = inst.trace.service_horizon().get() as usize;
        assert_eq!(optima.len(), horizon + 1);
        // Round 0..2 know only the first request; rounds >= 3 know all.
        assert_eq!(&optima[..3], &[1, 1, 1]);
        assert!(optima[horizon] == optimal_count(&inst) as u32);
        // The prefix curve is nondecreasing by construction.
        assert!(optima.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn prefix_optima_on_empty_instance() {
        let inst = Instance::new(2, 2, Trace::empty());
        assert_eq!(prefix_optima(&inst), vec![0]);
    }

    #[test]
    fn streaming_matches_faulty_full_solve() {
        // Random-ish mixed trace; a plan with a crash window and a stall.
        let d = 3;
        let mut b = TraceBuilder::new(d);
        b.block2(0u64, 0u32, 1u32, 0);
        b.push(1u64, 2u32, 3u32);
        b.push(2u64, 0u32, 2u32);
        b.push(4u64, 1u32, 3u32);
        let inst = Instance::new(4, d, b.build());
        let plan = crate::FaultPlan::empty(4)
            .with_crash(ResourceId(1), Round(0), Round(3))
            .with_crash(ResourceId(2), Round(2), Round(5))
            .with_stall(ResourceId(0), Round(1));
        let mut sopt = StreamingOpt::new(4);
        sopt.set_fault_plan(Arc::new(plan.clone()));
        for req in inst.trace.requests() {
            sopt.ingest(req);
        }
        assert_eq!(sopt.opt(), crate::optimal_count_faulty(&inst, &plan));
        // And strictly fewer than the fault-free optimum here.
        assert!(sopt.opt() < crate::optimal_count(&inst));
    }

    #[test]
    fn unmatched_requests_are_retired_not_lost() {
        // Capacity 1 per round, d = 1: only one of the three simultaneous
        // single-alternative requests can ever be served.
        let mut b = TraceBuilder::new(1);
        for _ in 0..3 {
            b.push_single(0u64, 0u32);
        }
        let inst = Instance::new(1, 1, b.build());
        let mut sopt = StreamingOpt::new(1);
        for req in inst.trace.requests() {
            sopt.ingest(req);
        }
        assert_eq!(sopt.opt(), 1);
        assert_eq!(sopt.ingested(), 3);
        assert_eq!(sopt.opt(), optimal_count(&inst));
    }
}
