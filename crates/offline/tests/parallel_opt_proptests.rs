//! Sharded-OPT parity gates: [`prefix_optima_sharded`] must be
//! **bit-identical** to the serial [`prefix_optima`] — every entry of the
//! per-round prefix-optimum curve, not just the final value — across shard
//! counts, partitioners, theorem constructions, workload generators and
//! random fault plans.
//!
//! The families mirror `crates/sim/tests/shard_parity_proptests.rs` (PR 7's
//! ALG-side gates):
//!
//! 1. **Theorem scenarios** — thm2.1–2.5 constructions plus thm2.6's
//!    adaptive trace captured against a probe strategy and replayed.
//! 2. **Every workload generator**, including the cluster-structured ones
//!    whose straddlers force group fusion mid-run.
//! 3. **Random fault plans** — the sharded engine masks slots by *global*
//!    resource id, so the faulty curve must equal the serial faulty curve.
//! 4. **Thread-count independence** — the serial engine is the one-thread
//!    witness; repeated sharded runs must also agree with each other
//!    byte-for-byte. (The dev containers vendor a sequential Rayon stub,
//!    where this trivially holds; under real Rayon the same assertions
//!    exercise the pool.)
//! 5. **Pinned regressions** as plain `#[test]`s (the vendored proptest
//!    stub generates but does not shrink or persist).

use proptest::prelude::*;
use reqsched_adversary::{thm21, thm22, thm23, thm24, thm25, thm26};
use reqsched_core::ShardMap;
use reqsched_faults::{ChaosConfig, FaultPlan};
use reqsched_model::{Alternatives, Hint, Instance, ResourceId, Round, TraceBuilder};
use reqsched_offline::{
    prefix_optima, prefix_optima_faulty, prefix_optima_sharded, prefix_optima_sharded_faulty,
    ShardedStreamingOpt, StreamingOpt,
};
use reqsched_workloads as workloads;
use std::sync::Arc;

fn maps_for(inst: &Instance) -> Vec<ShardMap> {
    let n = inst.n_resources;
    let mut maps = vec![
        ShardMap::range(n, 1), // degenerate: sharded engine, serial layout
        ShardMap::hash(n, 2),
        ShardMap::range(n, 3),
    ];
    if n >= 4 {
        maps.push(ShardMap::pair_affinity(n, 4, &inst.trace));
    }
    maps
}

/// Sharded == serial prefix curve over every partition of `inst`.
fn assert_opt_parity(inst: &Instance, label: &str) {
    let serial = prefix_optima(inst);
    for map in maps_for(inst) {
        let sharded = prefix_optima_sharded(inst, &map);
        assert_eq!(
            sharded,
            serial,
            "{label}: S={} {:?}: sharded prefix_optima diverges",
            map.shards(),
            map
        );
    }
}

/// Faulty twin of [`assert_opt_parity`].
fn assert_faulty_opt_parity(inst: &Instance, plan: &Arc<FaultPlan>, label: &str) {
    let serial = prefix_optima_faulty(inst, plan.clone());
    for map in maps_for(inst) {
        let sharded = prefix_optima_sharded_faulty(inst, &map, plan.clone());
        assert_eq!(
            sharded,
            serial,
            "{label}: S={}: sharded faulty prefix_optima diverges",
            map.shards()
        );
    }
}

/// Every theorem-2 adversarial construction, including 2.6's adaptive trace
/// captured against a probe strategy and replayed as a fixed instance.
#[test]
fn sharded_opt_parity_on_theorem_scenarios() {
    let scenarios = [
        thm21::scenario(4, 4),
        thm22::scenario(3, 2, 3),
        thm23::scenario(4, 4),
        thm24::scenario(6, 4),
        thm25::scenario(2, 3, 3),
    ];
    for sc in scenarios {
        assert_opt_parity(&sc.instance, &sc.name);
    }

    let d = 6;
    let mut adv = thm26::Thm26Adversary::new(d, 3);
    let mut probe = reqsched_sim::AnyStrategy::Global(
        reqsched_core::StrategyKind::ABalance,
        reqsched_core::TieBreak::FirstFit,
    )
    .build(thm26::N_RESOURCES, d);
    let (_, trace) =
        reqsched_sim::run_source_traced(probe.as_mut(), &mut adv, thm26::N_RESOURCES, d);
    let inst = Instance::new(thm26::N_RESOURCES, d, trace);
    assert_opt_parity(&inst, "thm2.6 (captured adaptive trace)");
}

/// Every workload generator.
#[test]
fn sharded_opt_parity_on_every_workload_generator() {
    let insts = [
        ("uniform", workloads::uniform_two_choice(6, 4, 5, 40, 81)),
        ("zipf", workloads::zipf_replicated(6, 3, 30, 1.3, 8, 40, 82)),
        ("flash", workloads::flash_crowd(6, 4, 3, 12, 10, 8, 40, 83)),
        ("c_choice", workloads::c_choice(7, 3, 3, 6, 40, 84)),
        ("mixed", workloads::mixed_deadlines(5, 5, 4, 40, 85)),
        ("single", workloads::single_alternative(4, 3, 5, 40, 86)),
        (
            "clustered",
            workloads::clustered_two_choice(8, 3, 4, 6, 40, 87),
        ),
        ("rotating", workloads::rotating_flash(8, 3, 4, 5, 4, 40, 88)),
    ];
    for (label, inst) in &insts {
        assert_opt_parity(inst, label);
    }
}

/// The serial engine is literally the one-thread run, so parity above is
/// the "1 vs. many" witness; on top, repeated sharded runs must agree with
/// each other byte-for-byte regardless of Rayon's scheduling, and the
/// single-ingest path must match the round-batched one.
#[test]
fn sharded_opt_is_thread_count_independent() {
    let inst = workloads::clustered_two_choice(8, 4, 4, 6, 35, 89);
    let map = ShardMap::pair_affinity(8, 4, &inst.trace);
    let first = prefix_optima_sharded(&inst, &map);
    assert_eq!(first, prefix_optima(&inst));
    for _ in 0..3 {
        assert_eq!(
            first,
            prefix_optima_sharded(&inst, &map),
            "repeated sharded runs diverged"
        );
    }
    let mut one_by_one = ShardedStreamingOpt::new(8, &map);
    let mut serial = StreamingOpt::new(8);
    for req in inst.trace.requests() {
        assert_eq!(one_by_one.ingest(req), serial.ingest(req), "{:?}", req.id);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Sharded == serial on random uniform traces across shard counts and
    /// partitioners.
    #[test]
    fn sharded_opt_parity_on_random_traces(
        n in 2u32..8,
        d in 1u32..6,
        per_round in 1u32..6,
        seed in 0u64..u64::MAX,
        shards in 2u32..6,
    ) {
        let inst = workloads::uniform_two_choice(n, d, per_round, 25, seed);
        let map = match seed % 3 {
            0 => ShardMap::hash(n, shards),
            1 => ShardMap::range(n, shards),
            _ => ShardMap::pair_affinity(n, shards, &inst.trace),
        };
        prop_assert_eq!(
            prefix_optima_sharded(&inst, &map),
            prefix_optima(&inst),
            "n={} d={} S={}: sharded prefix_optima diverges", n, d, shards
        );
    }

    /// Sharded == serial under random crash/stall plans, over generators
    /// with cluster structure (straddlers and fusions happen) and without.
    #[test]
    fn sharded_opt_parity_under_random_fault_plans(
        n in 4u32..8,
        d in 2u32..5,
        per_round in 1u32..5,
        seed in 0u64..u64::MAX,
        crash_permille in 0u32..250,
    ) {
        let insts = [
            workloads::uniform_two_choice(n, d, per_round, 25, seed),
            workloads::clustered_two_choice(n, d, 2, per_round, 25, seed),
            workloads::rotating_flash(n, d, 2, 4, per_round, 25, seed),
        ];
        let cfg = ChaosConfig {
            crash_prob: f64::from(crash_permille) / 1000.0,
            mttr: 3.0,
            stall_prob: 0.1,
            ..ChaosConfig::CALM
        };
        for inst in &insts {
            let plan = Arc::new(FaultPlan::random(inst.n_resources, 30, &cfg, seed ^ 0x0957));
            assert_faulty_opt_parity(inst, &plan, "random faulty trace");
        }
    }
}

// ---------------------------------------------------------------------------
// Pinned regressions (deterministic; the stub proptest does not shrink or
// persist, so corner cases are pinned in code).
// ---------------------------------------------------------------------------

/// Mid-batch fusion: non-straddlers of a round are already staged in their
/// groups' pending buffers when a later straddler of the *same round* fuses
/// those groups — the fused group must carry both staged sets over, merged
/// in id order. (Caught by the initial test run: fusion used to assert the
/// pending buffers were empty.)
#[test]
fn pinned_mid_batch_fusion_carries_staged_arrivals() {
    let mut b = TraceBuilder::new(2);
    b.push(0u64, 0u32, 1u32); // stages into group {0,1}
    b.push(0u64, 2u32, 3u32); // stages into group {2,3}
    b.push(0u64, 1u32, 2u32); // same-round straddler: fuses with both staged
    b.push(1u64, 0u32, 3u32);
    let inst = Instance::new(4, 2, b.build());
    let map = ShardMap::range(4, 2);
    let mut sopt = ShardedStreamingOpt::new(4, &map);
    let reqs = inst.trace.requests();
    assert_eq!(sopt.ingest_round(&reqs[..3]), 3);
    assert_eq!(sopt.fusions(), 1);
    assert_eq!(sopt.ingest_round(&reqs[3..]), 4);
    assert_opt_parity(&inst, "pinned mid-batch fusion");
}

/// A single 3-alternative request spanning three groups triggers two
/// fusions while routing one arrival.
#[test]
fn pinned_triple_fusion_from_one_request() {
    let mut b = TraceBuilder::new(3);
    b.push(0u64, 0u32, 1u32);
    b.push(0u64, 2u32, 3u32);
    b.push(1u64, 4u32, 5u32);
    b.push_full(
        Round(2),
        Alternatives::new(&[ResourceId(0), ResourceId(2), ResourceId(4)]),
        3,
        0,
        Hint::default(),
    );
    b.push(3u64, 1u32, 5u32);
    let inst = Instance::new(6, 3, b.build());
    let map = ShardMap::range(6, 3);
    let mut sopt = ShardedStreamingOpt::new(6, &map);
    for req in inst.trace.requests() {
        sopt.ingest(req);
    }
    assert_eq!(sopt.straddlers(), 1);
    assert_eq!(sopt.fusions(), 2);
    assert_eq!(sopt.alive_groups(), 1);
    assert_opt_parity(&inst, "pinned triple fusion");
}

/// Fusion after an idle gap on one side, with a fault plan crashing part of
/// the other: replay must rebuild both histories under the same global
/// masking.
#[test]
fn pinned_faulty_fusion_across_idle_gap() {
    let mut b = TraceBuilder::new(2);
    b.push(0u64, 0u32, 1u32); // faulted side
    b.push(0u64, 2u32, 3u32); // clean side, then idle rounds
    b.push(6u64, 1u32, 2u32); // straddler after the gap
    b.push(7u64, 0u32, 3u32);
    let inst = Instance::new(4, 2, b.build());
    let plan = Arc::new(FaultPlan::empty(4).with_crash(ResourceId(0), Round(0), Round(3)));
    assert_faulty_opt_parity(&inst, &plan, "pinned faulted+idle fusion");
}

/// Overload with duplicate demand: retirement after batch phases (free
/// batch members pruned) must not disturb later prefixes.
#[test]
fn pinned_overload_retirement_keeps_later_prefixes_exact() {
    let mut b = TraceBuilder::new(1);
    for _ in 0..4 {
        b.push(0u64, 0u32, 1u32); // only 2 of 4 servable in round 0
    }
    b.push(1u64, 0u32, 1u32);
    b.push(1u64, 2u32, 3u32);
    for _ in 0..3 {
        b.push(2u64, 2u32, 3u32);
    }
    let inst = Instance::new(4, 1, b.build());
    assert_opt_parity(&inst, "pinned overload retirement");
}
