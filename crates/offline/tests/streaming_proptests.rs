//! Property-based parity proof for the streaming OPT engine: on random
//! request streams, the incrementally maintained optimum must equal a fresh
//! full `optimal_count` solve on **every** prefix — after each arrival, and
//! per round via [`prefix_optima`]. This is the non-negotiable acceptance
//! property of the incremental engine: it is a maximum matching maintained
//! exactly, never an approximation.
//!
//! Shrunk counterexamples persist to
//! `crates/offline/proptest-regressions/streaming_proptests.txt` and replay
//! automatically; hand-distilled regressions from shrinking live as plain
//! `#[test]`s at the bottom.

use proptest::prelude::*;
use reqsched_model::{Alternatives, Hint, Instance, Round, Trace, TraceBuilder};
use reqsched_offline::{optimal_count, prefix_optima, StreamingOpt};

/// Generator-side description of one request; mirrors the model-layer
/// proptest `Spec`, plus single-alternative requests (`b == a`) to cover the
/// `Alternatives::One` ingestion path.
#[derive(Clone, Debug)]
struct Spec {
    round: u64,
    a: u32,
    b: u32,
    deadline: u32,
}

const N_RESOURCES: u32 = 7;

fn spec() -> impl Strategy<Value = Spec> {
    (0u64..16, 0u32..N_RESOURCES, 0u32..N_RESOURCES, 1u32..5).prop_map(|(round, a, b, deadline)| {
        Spec {
            round,
            a,
            b,
            deadline,
        }
    })
}

fn build(specs: &[Spec]) -> Trace {
    let mut b = TraceBuilder::new(8);
    for s in specs {
        let alts = if s.a == s.b {
            Alternatives::one(s.a.into())
        } else {
            Alternatives::two(s.a.into(), s.b.into())
        };
        b.push_full(Round(s.round), alts, s.deadline, 0, Hint::default());
    }
    b.build()
}

/// The core parity property, shared by the proptests and the pinned
/// regressions: stream the trace one request at a time and compare the
/// incremental optimum against a fresh full solve of every prefix instance.
fn assert_prefix_parity(trace: &Trace) {
    let inst = Instance::new(N_RESOURCES, 8, trace.clone());
    let mut sopt = StreamingOpt::new(inst.n_resources);
    let mut b = TraceBuilder::new(inst.d);
    for req in inst.trace.requests() {
        let streaming = sopt.ingest(req);
        b.push_full(
            req.arrival,
            req.alternatives.clone(),
            req.deadline,
            req.tag,
            req.hint,
        );
        let prefix = Instance::new(inst.n_resources, inst.d, b.clone().build());
        let full = optimal_count(&prefix);
        assert_eq!(
            streaming,
            full,
            "prefix of {} requests: streaming {} != full solve {}",
            prefix.trace.len(),
            streaming,
            full
        );
        // The maintained matching is a feasible schedule, not just a number.
        sopt.solution().check(&prefix).unwrap();
    }
}

proptest! {
    /// After every arrival, streaming OPT == full-solve OPT of the prefix.
    #[test]
    fn streaming_equals_full_solve_on_every_prefix(
        specs in proptest::collection::vec(spec(), 1..40),
    ) {
        assert_prefix_parity(&build(&specs));
    }

    /// The per-round curve from one streaming pass equals one full solve per
    /// round over the round-truncated sub-instances.
    #[test]
    fn per_round_prefix_optima_match_full_solves(
        specs in proptest::collection::vec(spec(), 1..30),
    ) {
        let trace = build(&specs);
        let inst = Instance::new(N_RESOURCES, 8, trace);
        let optima = prefix_optima(&inst);
        let horizon = inst.trace.service_horizon().get();
        prop_assert_eq!(optima.len() as u64, horizon + 1);
        for t in 0..=horizon {
            let mut b = TraceBuilder::new(inst.d);
            for req in inst.trace.requests().iter().filter(|r| r.arrival.get() <= t) {
                b.push_full(
                    req.arrival,
                    req.alternatives.clone(),
                    req.deadline,
                    req.tag,
                    req.hint,
                );
            }
            let prefix = Instance::new(inst.n_resources, inst.d, b.build());
            prop_assert_eq!(
                optima[t as usize] as usize,
                optimal_count(&prefix),
                "round {} of horizon {}",
                t,
                horizon
            );
        }
    }

    /// Structural sanity that needs no reference solver: the prefix curve is
    /// nondecreasing, grows by at most one per arrival, and never exceeds
    /// the number of requests ingested.
    #[test]
    fn streaming_curve_is_monotone_and_bounded(
        specs in proptest::collection::vec(spec(), 0..50),
    ) {
        let trace = build(&specs);
        let mut sopt = StreamingOpt::new(N_RESOURCES);
        let mut prev = 0usize;
        for (i, req) in trace.requests().iter().enumerate() {
            let opt = sopt.ingest(req);
            prop_assert!(opt >= prev, "optimum decreased");
            prop_assert!(opt <= prev + 1, "optimum jumped by more than one");
            prop_assert!(opt <= i + 1, "optimum exceeds ingested requests");
            prev = opt;
        }
    }
}

/// Pinned regressions (hand-shrunk from proptest exploration): saturation
/// with duplicate demand — the third request must fail to augment without
/// corrupting the two existing assignments.
#[test]
fn regression_duplicate_demand_saturation() {
    let specs = [
        Spec {
            round: 0,
            a: 0,
            b: 1,
            deadline: 1,
        },
        Spec {
            round: 0,
            a: 0,
            b: 1,
            deadline: 1,
        },
        Spec {
            round: 0,
            a: 0,
            b: 1,
            deadline: 1,
        },
    ];
    assert_prefix_parity(&build(&specs));
}

/// Pinned regression: a late single-alternative arrival forces an augmenting
/// chain through earlier two-choice requests whose windows straddle rounds.
#[test]
fn regression_cross_round_augmenting_chain() {
    let specs = [
        Spec {
            round: 0,
            a: 0,
            b: 1,
            deadline: 2,
        },
        Spec {
            round: 1,
            a: 1,
            b: 2,
            deadline: 2,
        },
        Spec {
            round: 1,
            a: 0,
            b: 0,
            deadline: 1,
        },
        Spec {
            round: 2,
            a: 1,
            b: 1,
            deadline: 1,
        },
        Spec {
            round: 2,
            a: 2,
            b: 2,
            deadline: 1,
        },
    ];
    assert_prefix_parity(&build(&specs));
}

/// Pinned regression: arrivals in the same round sort stably, so ingestion
/// order must match trace id order even when deadlines interleave.
#[test]
fn regression_same_round_interleaved_deadlines() {
    let specs = [
        Spec {
            round: 3,
            a: 2,
            b: 5,
            deadline: 4,
        },
        Spec {
            round: 3,
            a: 5,
            b: 2,
            deadline: 1,
        },
        Spec {
            round: 3,
            a: 2,
            b: 2,
            deadline: 2,
        },
        Spec {
            round: 5,
            a: 5,
            b: 5,
            deadline: 1,
        },
    ];
    assert_prefix_parity(&build(&specs));
}
