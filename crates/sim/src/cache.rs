//! Memoized offline optima for simulation sweeps.
//!
//! Sweeps run many (instance × strategy × tie-break) jobs, and most jobs
//! share instances — yet each [`crate::run_fixed`] call used to recompute
//! the exact optimum with a full Hopcroft–Karp solve of the horizon graph,
//! by far the most expensive step of a job. [`OptCache`] computes the
//! optimum once per *distinct* instance and shares the value across jobs
//! and threads.
//!
//! Lookup is two-tier:
//!
//! 1. **Pointer fast path** — jobs built with `Arc::clone` of the same
//!    instance hit a lock-guarded `Arc::as_ptr` map without hashing any
//!    request data.
//! 2. **Content fallback** — separately allocated but equal instances (e.g.
//!    a generator invoked with identical parameters per sweep row) are
//!    deduplicated by a content fingerprint plus a full equality check.
//!
//! Each distinct instance maps to one `OnceLock` cell; concurrent Rayon
//! workers that race on a cold cell block in `get_or_init`, so the horizon
//! graph is solved exactly once per instance no matter the interleaving.
//!
//! The pointer map holds a strong `Arc` to every instance it has keyed,
//! which guarantees the pointer keys stay valid: an address can only be
//! reused after its allocation is freed, and the cache keeps every keyed
//! instance alive for its own lifetime. (Holding the first-seen instance
//! per content is *not* enough — a later content-equal `Arc` that was
//! keyed by pointer and then dropped would leave its address free for a
//! brand-new, different instance, which would then hit the stale cell.)

use reqsched_model::Instance;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
// lint: OnceLock cells here live inside an explicitly passed OptCache value, not process globals
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// A keyed instance pinned together with its memoized-optimum cell.
// lint: per-OptCache cell, owned by the cache value the caller shares deliberately
type CachedCell = (Arc<Instance>, Arc<OnceLock<usize>>);

/// Shared cache of exact offline optima, keyed by instance identity with a
/// content-equality fallback. See the module docs.
///
/// Both maps are `BTreeMap`s: lookups are behind a lock anyway, and the
/// deterministic ordering keeps every observable iteration (debug dumps,
/// future eviction policies) reproducible across runs.
#[derive(Debug, Default)]
pub struct OptCache {
    /// `Arc::as_ptr` fast path to the instance's cell. The stored `Arc`
    /// pins the allocation so the address cannot be recycled for a
    /// different instance while this cache lives.
    by_ptr: Mutex<BTreeMap<usize, CachedCell>>,
    /// Content fingerprint → (instance, cell) buckets; full `==` resolves
    /// fingerprint collisions.
    by_content: Mutex<BTreeMap<u64, Vec<CachedCell>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

/// Lock a cache map, ignoring poisoning: every critical section below is a
/// single map read or insert, which cannot be observed half-done.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl OptCache {
    /// An empty cache.
    pub fn new() -> OptCache {
        OptCache::default()
    }

    /// The exact offline optimum of `inst`, computing it on first sight
    /// (of this pointer *or* any equal instance) and replaying it after.
    pub fn opt_for(&self, inst: &Arc<Instance>) -> usize {
        let key = Arc::as_ptr(inst) as usize;
        let cached = lock(&self.by_ptr)
            .get(&key)
            .map(|(_, cell)| Arc::clone(cell));
        let cell = match cached {
            Some(cell) => cell,
            None => {
                let cell = self.content_cell(inst);
                lock(&self.by_ptr).insert(key, (Arc::clone(inst), Arc::clone(&cell)));
                cell
            }
        };
        let mut solved_here = false;
        let opt = *cell.get_or_init(|| {
            solved_here = true;
            reqsched_offline::optimal_count(inst)
        });
        if solved_here {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        opt
    }

    /// Find or create the cell for an instance not yet known by pointer.
    // lint: cell type is instance-owned OptCache state, not a process global
    fn content_cell(&self, inst: &Arc<Instance>) -> Arc<OnceLock<usize>> {
        let fp = fingerprint(inst);
        let mut by_content = lock(&self.by_content);
        let bucket = by_content.entry(fp).or_default();
        if let Some((_, cell)) = bucket.iter().find(|(known, _)| **known == **inst) {
            return Arc::clone(cell);
        }
        // lint: fresh cell stored in this OptCache's own map, not a process global
        let cell = Arc::new(OnceLock::new());
        bucket.push((Arc::clone(inst), Arc::clone(&cell)));
        cell
    }

    /// Lookups answered from an already-solved cell.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that performed the horizon solve (= solves this cache paid).
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct instances cached.
    pub fn len(&self) -> usize {
        lock(&self.by_content).values().map(Vec::len).sum()
    }

    /// Whether the cache has seen no instance yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Order-sensitive content fingerprint of an instance (not a full hash of
/// every field — collisions are resolved by `==` in the bucket).
fn fingerprint(inst: &Instance) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    inst.n_resources.hash(&mut h);
    inst.d.hash(&mut h);
    inst.trace.len().hash(&mut h);
    for req in inst.trace.requests() {
        req.arrival.get().hash(&mut h);
        req.deadline.hash(&mut h);
        req.tag.hash(&mut h);
        req.hint.priority.hash(&mut h);
        req.hint
            .prefer
            .map(|r| r.0)
            .unwrap_or(u32::MAX)
            .hash(&mut h);
        for res in req.alternatives.as_slice() {
            res.0.hash(&mut h);
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use reqsched_model::TraceBuilder;

    fn inst(extra: u32) -> Arc<Instance> {
        let mut b = TraceBuilder::new(2);
        b.block2(0u64, 0u32, 1u32, 0);
        for _ in 0..extra {
            b.push(0u64, 0u32, 1u32);
        }
        Arc::new(Instance::new(2, 2, b.build()))
    }

    #[test]
    fn pointer_hits_skip_resolving() {
        let cache = OptCache::new();
        let i = inst(1);
        let fresh = reqsched_offline::optimal_count(&i);
        assert_eq!(cache.opt_for(&i), fresh);
        assert_eq!(cache.opt_for(&Arc::clone(&i)), fresh);
        assert_eq!(cache.opt_for(&i), fresh);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn equal_content_different_allocation_deduplicates() {
        let cache = OptCache::new();
        let a = inst(2);
        let b = inst(2);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.opt_for(&a), cache.opt_for(&b));
        assert_eq!(cache.misses(), 1, "one solve for two equal instances");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn different_instances_do_not_collide() {
        let cache = OptCache::new();
        let a = inst(0);
        let b = inst(3);
        let opt_a = cache.opt_for(&a);
        let opt_b = cache.opt_for(&b);
        assert_eq!(opt_a, reqsched_offline::optimal_count(&a));
        assert_eq!(opt_b, reqsched_offline::optimal_count(&b));
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 2);
    }
}
