//! Round-driving engine with full feasibility validation.

use reqsched_core::{fit_u32, OnlineScheduler, ShardMap};
use reqsched_faults::FaultPlan;
use reqsched_model::{
    Instance, Request, RequestId, RequestSource, Round, StateView, Trace, TraceBuilder, TraceSource,
};
use reqsched_offline::ShardedStreamingOpt;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::mpsc::{sync_channel, SyncSender};
use std::sync::Arc;

/// Bound of the ALG→OPT round channel in the pipelined paired runners: the
/// ALG thread may run up to this many rounds ahead of the OPT worker before
/// blocking, trading a little memory (buffered arrival batches) for
/// decoupling the two pipelines' per-round jitter.
const OPT_PIPE_DEPTH: usize = 64;

/// Where a run's streaming optimum is maintained.
enum OptSink<'a> {
    /// No optimum during the run (the caller fills [`RunStats::opt`] later).
    Untraced,
    /// In-thread serial [`reqsched_offline::StreamingOpt`] — the traced
    /// engine of PR 2; `opt`/`opt_prefix` filled inline.
    Serial,
    /// Decoupled: each round's arrivals (empty rounds included, one message
    /// per round) are shipped over this bounded channel to a parallel OPT
    /// worker; the paired runner stitches `opt`/`opt_prefix` back in after
    /// joining it.
    Pipe(&'a SyncSender<Vec<Request>>),
}

/// Result of one simulated run.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct RunStats {
    /// Strategy display name.
    pub strategy: String,
    /// Number of resources.
    pub n: u32,
    /// Deadline parameter.
    pub d: u32,
    /// Requests injected.
    pub injected: usize,
    /// Requests served before their deadlines.
    pub served: usize,
    /// Requests lost (deadline expired unserved).
    pub expired: usize,
    /// The exact offline optimum for the same input.
    pub opt: usize,
    /// Rounds simulated.
    pub rounds: u64,
    /// Communication rounds used (local strategies; 0 for global).
    pub comm_rounds: u64,
    /// Messages sent (local strategies; 0 for global).
    pub messages: u64,
    /// Services per round (index = round).
    pub per_round_served: Vec<u32>,
    /// Per-request service slot: `assignment[id] = Some((resource, round))`
    /// iff the strategy served request `id` there. Lets analyses rebuild the
    /// algorithm's matching on the horizon graph (e.g. the augmenting-path
    /// order lemmas of the paper's upper-bound proofs).
    pub assignment: Vec<Option<(u32, u64)>>,
    /// Streaming per-round optimum: `opt_prefix[t]` is `perf_OPT` of the
    /// requests injected in rounds `0..=t` (full deadline windows included).
    /// Filled by the traced runs ([`run_source_traced`] and friends), which
    /// maintain it incrementally; empty for untraced runs.
    pub opt_prefix: Vec<u32>,
}

impl RunStats {
    /// Empirical competitive ratio `OPT / ALG` (`1.0` when both are zero).
    pub fn ratio(&self) -> f64 {
        if self.opt == 0 {
            1.0
        } else if self.served == 0 {
            f64::INFINITY
        } else {
            self.opt as f64 / self.served as f64
        }
    }

    /// Fraction of injected requests served.
    pub fn goodput(&self) -> f64 {
        if self.injected == 0 {
            1.0
        } else {
            self.served as f64 / self.injected as f64
        }
    }

    /// Live competitive-ratio curve: for each simulated round `t`, the ratio
    /// of the streaming prefix optimum to the requests served by the
    /// algorithm through round `t` (`1.0` while the prefix optimum is zero,
    /// `inf` once there is an optimum but no service yet).
    ///
    /// Empty unless the run was traced (see [`RunStats::opt_prefix`]).
    pub fn live_ratios(&self) -> Vec<f64> {
        let mut alg_cum = 0u64;
        self.opt_prefix
            .iter()
            .zip(&self.per_round_served)
            .map(|(&opt, &served)| {
                alg_cum += served as u64;
                if opt == 0 {
                    1.0
                } else if alg_cum == 0 {
                    f64::INFINITY
                } else {
                    opt as f64 / alg_cum as f64
                }
            })
            .collect()
    }
}

/// Engine-side observable state, handed to adaptive adversaries.
struct EngineView {
    round: Round,
    served: Vec<bool>, // indexed by request id
    served_by_tag: BTreeMap<u32, usize>,
    injected_by_tag: BTreeMap<u32, usize>,
}

impl StateView for EngineView {
    fn is_served(&self, id: RequestId) -> bool {
        self.served.get(id.index()).copied().unwrap_or(false)
    }
    fn served_with_tag(&self, tag: u32) -> usize {
        self.served_by_tag.get(&tag).copied().unwrap_or(0)
    }
    fn injected_with_tag(&self, tag: u32) -> usize {
        self.injected_by_tag.get(&tag).copied().unwrap_or(0)
    }
    fn round(&self) -> Round {
        self.round
    }
}

/// Pending (injected, unserved, unexpired) request bookkeeping.
struct Pending {
    expiry: Round,
    request: Request,
}

/// Run a strategy against a request source, validating every service.
///
/// Returns the statistics (without `opt`, computed afterwards over the
/// materialized trace) and the trace of everything the source injected.
///
/// # Panics
/// Panics if the strategy violates the model: serving an unknown, already
/// served or expired request, using an inadmissible resource, or using a
/// resource twice in one round. These are bugs in a strategy, not workload
/// conditions, so the engine fails fast.
pub fn run_source(
    strategy: &mut dyn OnlineScheduler,
    source: &mut dyn RequestSource,
    n: u32,
    d: u32,
) -> (RunStats, Trace) {
    run_source_impl(strategy, source, n, d, OptSink::Untraced, None)
}

/// Like [`run_source`], but under a [`FaultPlan`]: the plan is installed on
/// the strategy before the first round, and every service is additionally
/// validated against it — a strategy that serves a request on a crashed or
/// stalled slot panics the engine, whether or not the strategy claims fault
/// awareness. The plan does **not** change what `opt` means; pair this with
/// [`reqsched_offline::optimal_count_faulty`] (or use the traced variant,
/// which wires the same plan into the streaming optimum) so ALG and OPT see
/// identical feasibility graphs.
pub fn run_source_faulty(
    strategy: &mut dyn OnlineScheduler,
    source: &mut dyn RequestSource,
    n: u32,
    d: u32,
    plan: &Arc<FaultPlan>,
) -> (RunStats, Trace) {
    run_source_impl(strategy, source, n, d, OptSink::Untraced, Some(plan))
}

/// [`run_source_faulty`] with the traced (streaming-optimum) engine: the
/// fault plan is installed on the [`reqsched_offline::StreamingOpt`] before
/// any ingest, so `opt` and `opt_prefix` are exact fault-aware optima.
pub fn run_source_faulty_traced(
    strategy: &mut dyn OnlineScheduler,
    source: &mut dyn RequestSource,
    n: u32,
    d: u32,
    plan: &Arc<FaultPlan>,
) -> (RunStats, Trace) {
    run_source_impl(strategy, source, n, d, OptSink::Serial, Some(plan))
}

/// Like [`run_source`], but additionally maintain the offline optimum of the
/// injected prefix *during* the run via the streaming matching engine: the
/// returned stats carry a filled [`RunStats::opt_prefix`] (one entry per
/// round) and an exact final [`RunStats::opt`] — without a single full
/// horizon-graph solve. Per arrival this costs one augmenting-path search,
/// so the live trace is asymptotically free.
pub fn run_source_traced(
    strategy: &mut dyn OnlineScheduler,
    source: &mut dyn RequestSource,
    n: u32,
    d: u32,
) -> (RunStats, Trace) {
    run_source_impl(strategy, source, n, d, OptSink::Serial, None)
}

/// [`run_source_traced`] with the optimum computed **off the ALG thread**:
/// arrivals are piped round-by-round to a [`ShardedStreamingOpt`] worker
/// over `map`, so the strategy never waits for an augmenting search except
/// at the bounded channel. `opt`, `opt_prefix` and [`RunStats::live_ratios`]
/// are bit-identical to the serial traced run.
pub fn run_source_traced_parallel(
    strategy: &mut dyn OnlineScheduler,
    source: &mut dyn RequestSource,
    n: u32,
    d: u32,
    map: &ShardMap,
) -> (RunStats, Trace) {
    run_source_parallel_impl(strategy, source, n, d, map, None)
}

/// [`run_source_faulty_traced`] with the pipelined parallel optimum: the
/// plan masks the same slots out of every OPT group (by global resource id)
/// that it masks out of the strategy.
pub fn run_source_faulty_traced_parallel(
    strategy: &mut dyn OnlineScheduler,
    source: &mut dyn RequestSource,
    n: u32,
    d: u32,
    map: &ShardMap,
    plan: &Arc<FaultPlan>,
) -> (RunStats, Trace) {
    run_source_parallel_impl(strategy, source, n, d, map, Some(plan))
}

fn run_source_parallel_impl(
    strategy: &mut dyn OnlineScheduler,
    source: &mut dyn RequestSource,
    n: u32,
    d: u32,
    map: &ShardMap,
    plan: Option<&Arc<FaultPlan>>,
) -> (RunStats, Trace) {
    let (tx, rx) = sync_channel::<Vec<Request>>(OPT_PIPE_DEPTH);
    let worker_plan = plan.map(Arc::clone);
    std::thread::scope(|scope| {
        let worker = scope.spawn(move || {
            let mut sopt = ShardedStreamingOpt::new(n, map);
            if let Some(p) = worker_plan {
                sopt.set_fault_plan(p); // OPT sees the same faults as ALG
            }
            let mut prefix: Vec<u32> = Vec::new();
            while let Ok(batch) = rx.recv() {
                prefix.push(fit_u32(sopt.ingest_round(&batch) as u64));
            }
            prefix
        });
        let (mut stats, trace) = run_source_impl(strategy, source, n, d, OptSink::Pipe(&tx), plan);
        drop(tx); // close the round channel so the worker drains and returns
        let prefix = match worker.join() {
            Ok(prefix) => prefix,
            // Re-raise the worker's own panic (e.g. a fusion parity assert)
            // instead of wrapping it in a second, less informative one.
            Err(payload) => std::panic::resume_unwind(payload),
        };
        assert_eq!(
            prefix.len() as u64,
            stats.rounds,
            "one optimum sample per simulated round"
        );
        stats.opt = prefix.last().map_or(0, |&o| o as usize);
        stats.opt_prefix = prefix;
        (stats, trace)
    })
}

fn run_source_impl(
    strategy: &mut dyn OnlineScheduler,
    source: &mut dyn RequestSource,
    n: u32,
    d: u32,
    sink: OptSink<'_>,
    plan: Option<&Arc<FaultPlan>>,
) -> (RunStats, Trace) {
    let mut streaming = matches!(sink, OptSink::Serial).then(|| {
        let mut s = reqsched_offline::StreamingOpt::new(n);
        if let Some(p) = plan {
            s.set_fault_plan(Arc::clone(p)); // OPT sees the same faults as ALG
        }
        s
    });
    if let Some(p) = plan {
        strategy.set_fault_plan(Arc::clone(p));
    }
    let mut opt_prefix: Vec<u32> = Vec::new();
    let mut view = EngineView {
        round: Round::ZERO,
        served: Vec::new(),
        served_by_tag: BTreeMap::new(),
        injected_by_tag: BTreeMap::new(),
    };
    let mut pending: BTreeMap<RequestId, Pending> = BTreeMap::new();
    let mut trace = TraceBuilder::new(d);
    let mut next_id = 0u32;
    let mut injected = 0usize;
    let mut served = 0usize;
    let mut expired = 0usize;
    let mut per_round_served = Vec::new();
    let mut assignment: Vec<Option<(u32, u64)>> = Vec::new();
    let mut last_expiry = Round::ZERO;
    let mut round = Round::ZERO;
    // Per-round duplicate-resource check: a reusable bitset instead of a
    // fresh set per round.
    let mut resources_used = vec![false; n as usize];
    // Expiry wheel: pending ids bucketed by `expiry % d`. A request expires
    // at most `d - 1` rounds after arrival, so the bucket due at the end of
    // round `t` holds exactly the ids with expiry `t` (plus stale entries
    // for already-served requests, which are skipped). This replaces the
    // O(|pending|)-per-round expiry scan.
    let wheel_len = d.max(1) as usize;
    let mut wheel: Vec<Vec<RequestId>> = (0..wheel_len).map(|_| Vec::new()).collect();

    loop {
        view.round = round;
        let arrivals = if source.exhausted(round) {
            Vec::new()
        } else {
            source.arrivals(round, &view)
        };
        for req in &arrivals {
            assert_eq!(
                req.id,
                RequestId(next_id),
                "sources must number requests consecutively"
            );
            assert_eq!(req.arrival, round, "arrival round mismatch");
            assert!(req.deadline <= d, "request deadline exceeds instance d");
            next_id += 1;
            injected += 1;
            *view.injected_by_tag.entry(req.tag).or_insert(0) += 1;
            view.served.push(false);
            assignment.push(None);
            last_expiry = last_expiry.max(req.expiry());
            wheel[(req.expiry().get() % wheel_len as u64) as usize].push(req.id);
            pending.insert(
                req.id,
                Pending {
                    expiry: req.expiry(),
                    request: req.clone(),
                },
            );
            trace.push_full(
                req.arrival,
                req.alternatives.clone(),
                req.deadline,
                req.tag,
                req.hint,
            );
            if let Some(s) = streaming.as_mut() {
                s.ingest(req);
            }
        }

        let services = strategy.on_round(round, &arrivals);

        if let OptSink::Pipe(tx) = &sink {
            // One message per round, empty rounds included, so the worker's
            // prefix indexes line up with per_round_served. A hung-up
            // receiver means the worker panicked; the paired runner's join
            // rethrows the original panic, so the error is ignored here.
            let _ = tx.send(arrivals);
        }

        for s in &services {
            assert!(s.resource.0 < n, "unknown resource {:?}", s.resource);
            if let Some(p) = plan {
                // Independent of any strategy-side checks: no service may
                // land on a crashed or stalled slot, even from a strategy
                // that ignored the installed plan.
                assert!(
                    p.slot_usable(s.resource, round),
                    "service by {:?} at {:?} lands on a crashed or stalled slot",
                    s.resource,
                    round
                );
            }
            assert!(
                !std::mem::replace(&mut resources_used[s.resource.0 as usize], true),
                "{:?} used twice in round {:?}",
                s.resource,
                round
            );
            let p = pending.remove(&s.request).unwrap_or_else(|| {
                panic!(
                    "strategy served {:?} which is not pending (round {round:?})",
                    s.request
                )
            });
            assert!(
                p.request.can_be_served(s.resource, round),
                "infeasible service {:?} by {:?} at {:?}",
                s.request,
                s.resource,
                round
            );
            view.served[s.request.index()] = true;
            *view.served_by_tag.entry(p.request.tag).or_insert(0) += 1;
            assignment[s.request.index()] = Some((s.resource.0, round.get()));
            served += 1;
        }
        per_round_served.push(services.len() as u32);
        if let Some(s) = streaming.as_ref() {
            opt_prefix.push(s.opt() as u32);
        }
        for s in &services {
            resources_used[s.resource.0 as usize] = false;
        }

        // Expire pending requests whose last usable round was this one:
        // exactly the (still-pending) occupants of this round's wheel
        // bucket. The expiry guard skips nothing in practice (ids land in
        // the bucket of their own expiry round) but keeps the drain safe.
        let bucket = (round.get() % wheel_len as u64) as usize;
        let mut due = std::mem::take(&mut wheel[bucket]);
        for id in due.drain(..) {
            if pending.get(&id).is_some_and(|p| p.expiry <= round) {
                pending.remove(&id);
                expired += 1;
            }
        }
        wheel[bucket] = due; // keep the bucket's capacity for reuse

        round = round.next();
        if source.exhausted(round) && pending.is_empty() {
            break;
        }
        // Safety valve against runaway sources in tests.
        assert!(
            round.get() < 10_000_000,
            "simulation exceeded 10M rounds — runaway source?"
        );
    }

    let stats = RunStats {
        strategy: strategy.name().to_string(),
        n,
        d,
        injected,
        served,
        expired,
        // A traced run already knows the exact optimum: the streaming
        // matching over the full injected trace. Untraced runs leave 0 for
        // the caller to fill (run_fixed / run_fixed_cached).
        opt: streaming.as_ref().map_or(0, |s| s.opt()),
        rounds: round.get(),
        comm_rounds: strategy.comm_rounds_total(),
        messages: strategy.messages_total(),
        per_round_served,
        assignment,
        opt_prefix,
    };
    (stats, trace.build())
}

/// Run a strategy over a fixed instance and fill in the exact optimum.
pub fn run_fixed(strategy: &mut dyn OnlineScheduler, inst: &Instance) -> RunStats {
    let mut stats = run_fixed_without_opt(strategy, inst);
    stats.opt = reqsched_offline::optimal_count(inst);
    stats
}

/// Run a strategy over a fixed instance with the streaming optimum engine:
/// `opt` and the per-round [`RunStats::opt_prefix`] come from incremental
/// matching maintenance, so no full horizon solve happens at all.
pub fn run_fixed_traced(strategy: &mut dyn OnlineScheduler, inst: &Instance) -> RunStats {
    let mut source = TraceSource::borrowed(&inst.trace);
    let (stats, trace) = run_source_traced(strategy, &mut source, inst.n_resources, inst.d);
    debug_assert_eq!(trace.len(), inst.trace.len());
    stats
}

/// Run a strategy over a fixed instance under a fault plan, filling `opt`
/// with the exact fault-aware optimum (both sides see the same masked
/// feasibility graph, so the ratio stays meaningful under faults).
pub fn run_fixed_faulty(
    strategy: &mut dyn OnlineScheduler,
    inst: &Instance,
    plan: &Arc<FaultPlan>,
) -> RunStats {
    let mut stats = run_fixed_faulty_without_opt(strategy, inst, plan);
    stats.opt = reqsched_offline::optimal_count_faulty(inst, plan);
    stats
}

/// [`run_fixed_faulty`] with the streaming optimum engine: `opt` and
/// [`RunStats::opt_prefix`] come from the fault-aware incremental matching.
pub fn run_fixed_faulty_traced(
    strategy: &mut dyn OnlineScheduler,
    inst: &Instance,
    plan: &Arc<FaultPlan>,
) -> RunStats {
    let mut source = TraceSource::borrowed(&inst.trace);
    let (stats, trace) =
        run_source_faulty_traced(strategy, &mut source, inst.n_resources, inst.d, plan);
    debug_assert_eq!(trace.len(), inst.trace.len());
    stats
}

/// [`run_fixed_traced`] with the pipelined parallel optimum (see
/// [`run_source_traced_parallel`]): works for **any** strategy — the OPT
/// side is strategy-independent — and returns bit-identical stats.
pub fn run_fixed_traced_parallel(
    strategy: &mut dyn OnlineScheduler,
    inst: &Instance,
    map: &ShardMap,
) -> RunStats {
    let mut source = TraceSource::borrowed(&inst.trace);
    let (stats, trace) =
        run_source_traced_parallel(strategy, &mut source, inst.n_resources, inst.d, map);
    debug_assert_eq!(trace.len(), inst.trace.len());
    stats
}

/// [`run_fixed_faulty_traced`] with the pipelined parallel optimum.
pub fn run_fixed_faulty_traced_parallel(
    strategy: &mut dyn OnlineScheduler,
    inst: &Instance,
    map: &ShardMap,
    plan: &Arc<FaultPlan>,
) -> RunStats {
    let mut source = TraceSource::borrowed(&inst.trace);
    let (stats, trace) = run_source_faulty_traced_parallel(
        strategy,
        &mut source,
        inst.n_resources,
        inst.d,
        map,
        plan,
    );
    debug_assert_eq!(trace.len(), inst.trace.len());
    stats
}

/// The fully parallel paired run: the **sharded ALG engine**
/// ([`crate::ShardedScheduler`]) on the driving thread and the **sharded
/// streaming OPT** on a pipelined worker, both decomposed over the same
/// `map`. This is the ALG∥OPT configuration the BENCH_PR8 gate measures
/// against [`run_fixed_traced`] of the plain strategy; `opt`, `opt_prefix`
/// and every service are bit-identical to that serial baseline.
pub fn run_fixed_pair_parallel(
    kind: reqsched_core::StrategyKind,
    inst: &Instance,
    tie: reqsched_core::TieBreak,
    mode: reqsched_core::SolveMode,
    map: ShardMap,
) -> RunStats {
    let mut s = crate::ShardedScheduler::new(kind, inst.d, tie, mode, map.clone());
    run_fixed_traced_parallel(&mut s, inst, &map)
}

/// [`run_fixed_pair_parallel`] under a fault plan: the plan is installed on
/// the sharded strategy and the sharded optimum alike.
pub fn run_fixed_pair_parallel_faulty(
    kind: reqsched_core::StrategyKind,
    inst: &Instance,
    tie: reqsched_core::TieBreak,
    mode: reqsched_core::SolveMode,
    map: ShardMap,
    plan: &Arc<FaultPlan>,
) -> RunStats {
    let mut s = crate::ShardedScheduler::new(kind, inst.d, tie, mode, map.clone());
    run_fixed_faulty_traced_parallel(&mut s, inst, &map, plan)
}

/// The fault-plan twin of [`run_fixed_without_opt`].
fn run_fixed_faulty_without_opt(
    strategy: &mut dyn OnlineScheduler,
    inst: &Instance,
    plan: &Arc<FaultPlan>,
) -> RunStats {
    let mut source = TraceSource::borrowed(&inst.trace);
    let (stats, trace) = run_source_faulty(strategy, &mut source, inst.n_resources, inst.d, plan);
    debug_assert_eq!(trace.len(), inst.trace.len());
    stats
}

/// Run one strategy kind over a fixed instance in **both** solve modes —
/// the delta round engine and the from-scratch reference — and return
/// `(delta, fresh)` stats. The two runs must agree service-for-service for
/// the replayable tie-breaks; parity tests and the differential benchmark
/// are the consumers.
pub fn run_fixed_pair(
    kind: reqsched_core::StrategyKind,
    inst: &Instance,
    tie: reqsched_core::TieBreak,
) -> (RunStats, RunStats) {
    use reqsched_core::{build_strategy_with_mode, SolveMode};
    let mut delta = build_strategy_with_mode(kind, inst.n_resources, inst.d, tie, SolveMode::Delta);
    let delta_stats = run_fixed_without_opt(delta.as_mut(), inst);
    let mut fresh = build_strategy_with_mode(kind, inst.n_resources, inst.d, tie, SolveMode::Fresh);
    let fresh_stats = run_fixed_without_opt(fresh.as_mut(), inst);
    (delta_stats, fresh_stats)
}

/// [`run_fixed_pair`] under a fault plan: the delta round engine and the
/// from-scratch reference both run with the plan installed and must agree
/// service-for-service — the fault-parity check the audit suite and the
/// chaos harness lean on. Neither side fills `opt`.
pub fn run_fixed_pair_faulty(
    kind: reqsched_core::StrategyKind,
    inst: &Instance,
    tie: reqsched_core::TieBreak,
    plan: &Arc<FaultPlan>,
) -> (RunStats, RunStats) {
    use reqsched_core::{build_strategy_with_mode, SolveMode};
    let mut delta = build_strategy_with_mode(kind, inst.n_resources, inst.d, tie, SolveMode::Delta);
    let delta_stats = run_fixed_faulty_without_opt(delta.as_mut(), inst, plan);
    let mut fresh = build_strategy_with_mode(kind, inst.n_resources, inst.d, tie, SolveMode::Fresh);
    let fresh_stats = run_fixed_faulty_without_opt(fresh.as_mut(), inst, plan);
    (delta_stats, fresh_stats)
}

/// Run one strategy kind over a fixed instance through the **sharded**
/// round engine ([`crate::ShardedScheduler`]) over the given partition.
/// `opt` is left at 0 (parity consumers compare against the unsharded
/// twin, which also skips the offline solve).
pub fn run_fixed_sharded(
    kind: reqsched_core::StrategyKind,
    inst: &Instance,
    tie: reqsched_core::TieBreak,
    mode: reqsched_core::SolveMode,
    map: reqsched_core::ShardMap,
) -> RunStats {
    let mut s = crate::ShardedScheduler::new(kind, inst.d, tie, mode, map);
    run_fixed_without_opt(&mut s, inst)
}

/// [`run_fixed_sharded`] under a fault plan (per-shard fault masking: each
/// group receives the plan's projection onto its owned resources).
pub fn run_fixed_faulty_sharded(
    kind: reqsched_core::StrategyKind,
    inst: &Instance,
    tie: reqsched_core::TieBreak,
    mode: reqsched_core::SolveMode,
    map: reqsched_core::ShardMap,
    plan: &Arc<FaultPlan>,
) -> RunStats {
    let mut s = crate::ShardedScheduler::new(kind, inst.d, tie, mode, map);
    run_fixed_faulty_without_opt(&mut s, inst, plan)
}

/// Sharded-vs-unsharded twin runner: the same kind, tie-break and solve
/// mode driven through the sharded engine and the plain strategy, returning
/// `(sharded, unsharded)` stats. The whole-`RunStats` equality of the two
/// is the sharding parity gate. Neither side fills `opt`.
pub fn run_fixed_pair_sharded(
    kind: reqsched_core::StrategyKind,
    inst: &Instance,
    tie: reqsched_core::TieBreak,
    mode: reqsched_core::SolveMode,
    map: reqsched_core::ShardMap,
) -> (RunStats, RunStats) {
    let sharded = run_fixed_sharded(kind, inst, tie, mode, map);
    let mut plain =
        reqsched_core::build_strategy_with_mode(kind, inst.n_resources, inst.d, tie, mode);
    let plain_stats = run_fixed_without_opt(plain.as_mut(), inst);
    (sharded, plain_stats)
}

/// [`run_fixed_pair_faulty`] routed through the sharded engine: delta and
/// fresh both run sharded over the same partition and must still agree
/// service-for-service under the plan. Neither side fills `opt`.
pub fn run_fixed_pair_faulty_sharded(
    kind: reqsched_core::StrategyKind,
    inst: &Instance,
    tie: reqsched_core::TieBreak,
    map: reqsched_core::ShardMap,
    plan: &Arc<FaultPlan>,
) -> (RunStats, RunStats) {
    use reqsched_core::SolveMode;
    let delta = run_fixed_faulty_sharded(kind, inst, tie, SolveMode::Delta, map.clone(), plan);
    let fresh = run_fixed_faulty_sharded(kind, inst, tie, SolveMode::Fresh, map, plan);
    (delta, fresh)
}

/// Run a strategy over a fixed instance, filling the optimum from `cache`
/// so repeated runs on the same (or an equal) instance solve the horizon
/// graph only once.
pub fn run_fixed_cached(
    strategy: &mut dyn OnlineScheduler,
    inst: &std::sync::Arc<Instance>,
    cache: &crate::OptCache,
) -> RunStats {
    let mut stats = run_fixed_without_opt(strategy, inst);
    stats.opt = cache.opt_for(inst);
    stats
}

/// The shared online part of [`run_fixed`] / [`run_fixed_cached`]: replay
/// the instance's trace (borrowed, not cloned) and leave `opt` at 0.
fn run_fixed_without_opt(strategy: &mut dyn OnlineScheduler, inst: &Instance) -> RunStats {
    let mut source = TraceSource::borrowed(&inst.trace);
    let (stats, trace) = run_source(strategy, &mut source, inst.n_resources, inst.d);
    debug_assert_eq!(trace.len(), inst.trace.len());
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use reqsched_core::{build_strategy, StrategyKind, TieBreak};
    use reqsched_model::TraceBuilder;

    fn tiny_instance() -> Instance {
        let mut b = TraceBuilder::new(2);
        b.push(0u64, 0u32, 1u32);
        b.push(0u64, 0u32, 1u32);
        b.push(1u64, 0u32, 1u32);
        Instance::new(2, 2, b.build())
    }

    #[test]
    fn run_fixed_counts_and_ratio() {
        let inst = tiny_instance();
        let mut s = build_strategy(StrategyKind::ABalance, 2, 2, TieBreak::FirstFit);
        let stats = run_fixed(s.as_mut(), &inst);
        assert_eq!(stats.injected, 3);
        assert_eq!(stats.served, 3);
        assert_eq!(stats.opt, 3);
        assert_eq!(stats.expired, 0);
        assert!((stats.ratio() - 1.0).abs() < 1e-12);
        assert!((stats.goodput() - 1.0).abs() < 1e-12);
        assert_eq!(
            stats.served,
            stats
                .per_round_served
                .iter()
                .map(|&x| x as usize)
                .sum::<usize>()
        );
    }

    #[test]
    fn every_strategy_passes_validation_on_a_block() {
        let d = 3;
        let mut b = TraceBuilder::new(d);
        b.block2(0u64, 0u32, 1u32, 0);
        b.push(1u64, 1u32, 2u32);
        let inst = Instance::new(3, d, b.build());
        for kind in StrategyKind::GLOBAL {
            let mut s = build_strategy(kind, 3, d, TieBreak::FirstFit);
            let stats = run_fixed(s.as_mut(), &inst);
            assert!(stats.served <= stats.opt);
            assert_eq!(stats.served + stats.expired, stats.injected);
        }
    }

    #[test]
    fn edf_strategies_run_too() {
        let inst = tiny_instance();
        for kind in [
            StrategyKind::Edf {
                cancel_sibling: false,
            },
            StrategyKind::Edf {
                cancel_sibling: true,
            },
        ] {
            let mut s = build_strategy(kind, 2, 2, TieBreak::FirstFit);
            let stats = run_fixed(s.as_mut(), &inst);
            assert!(stats.served >= 2, "{}: {}", stats.strategy, stats.served);
        }
    }

    #[test]
    fn ratio_of_empty_run_is_one() {
        let inst = Instance::new(2, 2, reqsched_model::Trace::empty());
        let mut s = build_strategy(StrategyKind::AFix, 2, 2, TieBreak::FirstFit);
        let stats = run_fixed(s.as_mut(), &inst);
        assert_eq!(stats.injected, 0);
        assert!((stats.ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn traced_run_matches_full_solve() {
        let d = 3;
        let mut b = TraceBuilder::new(d);
        b.block2(0u64, 0u32, 1u32, 0);
        b.push(1u64, 1u32, 2u32);
        b.push(4u64, 0u32, 2u32);
        let inst = Instance::new(3, d, b.build());
        for kind in StrategyKind::GLOBAL {
            let mut s = build_strategy(kind, 3, d, TieBreak::FirstFit);
            let traced = run_fixed_traced(s.as_mut(), &inst);
            let mut s2 = build_strategy(kind, 3, d, TieBreak::FirstFit);
            let full = run_fixed(s2.as_mut(), &inst);
            assert_eq!(traced.opt, full.opt, "{}", traced.strategy);
            assert_eq!(traced.served, full.served);
            // One prefix sample per simulated round, ending at the optimum.
            assert_eq!(traced.opt_prefix.len() as u64, traced.rounds);
            assert_eq!(*traced.opt_prefix.last().unwrap() as usize, traced.opt);
            assert!(traced.opt_prefix.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn live_ratio_curve_ends_at_final_ratio() {
        let inst = tiny_instance();
        let mut s = build_strategy(StrategyKind::ABalance, 2, 2, TieBreak::FirstFit);
        let stats = run_fixed_traced(s.as_mut(), &inst);
        let curve = stats.live_ratios();
        assert_eq!(curve.len() as u64, stats.rounds);
        // All requests get served by the end, so the curve settles at the
        // run's overall ratio.
        assert!((curve.last().unwrap() - stats.ratio()).abs() < 1e-12);
        // Untraced runs have no curve.
        let mut s2 = build_strategy(StrategyKind::ABalance, 2, 2, TieBreak::FirstFit);
        let plain = run_fixed(s2.as_mut(), &inst);
        assert!(plain.opt_prefix.is_empty());
        assert!(plain.live_ratios().is_empty());
    }

    #[test]
    fn parallel_traced_run_is_bit_identical_to_serial() {
        let d = 3;
        let mut b = TraceBuilder::new(d);
        b.block2(0u64, 0u32, 1u32, 0);
        b.push(1u64, 1u32, 2u32);
        b.push(4u64, 0u32, 2u32);
        b.push(4u64, 3u32, 4u32);
        let inst = Instance::new(5, d, b.build());
        for shards in [1u32, 2, 4] {
            let map = ShardMap::range(5, shards);
            for kind in StrategyKind::GLOBAL {
                let mut s = build_strategy(kind, 5, d, TieBreak::FirstFit);
                let serial = run_fixed_traced(s.as_mut(), &inst);
                let mut s2 = build_strategy(kind, 5, d, TieBreak::FirstFit);
                let parallel = run_fixed_traced_parallel(s2.as_mut(), &inst, &map);
                assert_eq!(serial, parallel, "{} shards={shards}", serial.strategy);
            }
        }
    }

    #[test]
    fn parallel_faulty_traced_run_is_bit_identical_to_serial() {
        use reqsched_model::ResourceId;
        let d = 3;
        let mut b = TraceBuilder::new(d);
        b.block2(0u64, 0u32, 1u32, 0);
        b.push(1u64, 2u32, 3u32);
        b.push(2u64, 0u32, 2u32);
        let inst = Instance::new(4, d, b.build());
        let plan = Arc::new(
            FaultPlan::empty(4)
                .with_crash(ResourceId(1), Round(0), Round(3))
                .with_stall(ResourceId(2), Round(2)),
        );
        let map = ShardMap::range(4, 2);
        let mut s = build_strategy(StrategyKind::ABalance, 4, d, TieBreak::FirstFit);
        let serial = run_fixed_faulty_traced(s.as_mut(), &inst, &plan);
        let mut s2 = build_strategy(StrategyKind::ABalance, 4, d, TieBreak::FirstFit);
        let parallel = run_fixed_faulty_traced_parallel(s2.as_mut(), &inst, &map, &plan);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn paired_parallel_run_matches_plain_serial_baseline() {
        use reqsched_core::{build_strategy_with_mode, SolveMode};
        let d = 3;
        let mut b = TraceBuilder::new(d);
        b.block2(0u64, 0u32, 1u32, 0);
        b.push(1u64, 2u32, 3u32);
        b.push(2u64, 4u32, 5u32);
        b.push(2u64, 0u32, 1u32);
        let inst = Instance::new(6, d, b.build());
        let map = ShardMap::range(6, 3);
        for kind in [StrategyKind::ABalance, StrategyKind::AFixBalance] {
            let paired = run_fixed_pair_parallel(
                kind,
                &inst,
                TieBreak::FirstFit,
                SolveMode::Delta,
                map.clone(),
            );
            let mut plain =
                build_strategy_with_mode(kind, 6, d, TieBreak::FirstFit, SolveMode::Delta);
            let baseline = run_fixed_traced(plain.as_mut(), &inst);
            assert_eq!(paired, baseline, "{}", baseline.strategy);
        }
    }

    #[test]
    fn adaptive_source_receives_view() {
        use reqsched_model::{Alternatives, Hint, StateView};
        /// Injects one request per round for 3 rounds; round 2's request tag
        /// records how many tag-0 requests had been served when generated.
        struct Probe {
            emitted: u32,
        }
        impl RequestSource for Probe {
            fn arrivals(&mut self, round: Round, view: &dyn StateView) -> Vec<Request> {
                if round.get() >= 3 {
                    return vec![];
                }
                let tag = if round.get() == 2 {
                    100 + view.served_with_tag(0) as u32
                } else {
                    0
                };
                let id = RequestId(self.emitted);
                self.emitted += 1;
                vec![Request {
                    id,
                    arrival: round,
                    alternatives: Alternatives::two(
                        reqsched_model::ResourceId(0),
                        reqsched_model::ResourceId(1),
                    ),
                    deadline: 1,
                    tag,
                    hint: Hint::default(),
                }]
            }
            fn exhausted(&self, round: Round) -> bool {
                round.get() >= 3
            }
        }
        let mut s = build_strategy(StrategyKind::AEager, 2, 1, TieBreak::FirstFit);
        let (stats, trace) = run_source(s.as_mut(), &mut Probe { emitted: 0 }, 2, 1);
        assert_eq!(stats.injected, 3);
        // Rounds 0 and 1 requests are served immediately (d=1, free pair),
        // so the round-2 request's tag must be 102.
        assert_eq!(trace.requests()[2].tag, 102);
    }
}
