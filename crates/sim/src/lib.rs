//! # reqsched-sim
//!
//! The simulation driver: runs any
//! [`OnlineScheduler`](reqsched_core::OnlineScheduler) against any
//! [`RequestSource`](reqsched_model::RequestSource) (fixed traces or adaptive
//! adversaries), **validates every service against the model's physical
//! rules** (one request per resource per round, admissible resource, within
//! the deadline window, no double service), computes the empirical
//! competitive ratio against the exact offline optimum, and fans parameter
//! sweeps out across cores with Rayon.

mod cache;
mod engine;
mod sharded;
mod strategy;
mod sweep;

pub use cache::OptCache;
pub use engine::{
    run_fixed, run_fixed_cached, run_fixed_faulty, run_fixed_faulty_sharded,
    run_fixed_faulty_traced, run_fixed_faulty_traced_parallel, run_fixed_pair,
    run_fixed_pair_faulty, run_fixed_pair_faulty_sharded, run_fixed_pair_parallel,
    run_fixed_pair_parallel_faulty, run_fixed_pair_sharded, run_fixed_sharded, run_fixed_traced,
    run_fixed_traced_parallel, run_source, run_source_faulty, run_source_faulty_traced,
    run_source_faulty_traced_parallel, run_source_traced, run_source_traced_parallel, RunStats,
};
pub use sharded::ShardedScheduler;
pub use strategy::AnyStrategy;
pub use sweep::{par_run, par_run_with_cache, Job, RunRecord};
