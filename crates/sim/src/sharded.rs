//! The sharded parallel round engine.
//!
//! [`ShardedScheduler`] wraps any supported matching-based strategy and runs
//! it over a resource partition (a [`ShardMap`]): every shard *group* owns
//! its resources outright — its own [`ScheduleState`](reqsched_core::ScheduleState)
//! slot rings and request arena, its own `DynamicMatching`, its own window
//! scratch — and is driven as an independent strategy instance. Per round:
//!
//! 1. **Arrival routing** (sequential, request-id order): each arrival goes
//!    to the group owning its alternatives. A *straddler* — alternatives in
//!    different groups — triggers the deterministic cross-shard handoff:
//!    the two groups are **fused** into one (see below) before the request
//!    is routed, so no request is ever split across solvers.
//! 2. **Parallel solve** (Rayon): every group steps one round. Groups are
//!    independent by construction, and results are collected in group-index
//!    order, so the output is bit-identical regardless of thread count.
//! 3. **Deterministic merge**: per-group services are mapped back to global
//!    ids and sorted by resource — exactly the order the unsharded
//!    `finish_round` emits.
//!
//! ## Why this is exact
//!
//! The window matchings of the paper's strategies are **component-local**:
//! augmenting searches, repair augments and saturation exchanges never
//! leave a connected component of the request/slot graph, and requests in
//! different groups share no resource, hence no component. Group-local
//! solves therefore compose to precisely the global solve.
//!
//! ## Idle-shard gating (the single-core win)
//!
//! A group only *runs* a round when it could matter: it has pending work
//! (`round < active_until`, tracked from routed arrivals' deadlines) or new
//! arrivals. Skipped rounds are compressed out of the group's **local
//! clock** — the inner strategy sees a dense, renumbered round sequence and
//! never pays the per-round window churn (column retire/open, front-row
//! recycling) for rounds in which its shard is idle. Because a group always
//! runs on a *contiguous* global interval per busy episode and its state is
//! empty between episodes, the compression is behaviour-preserving: the
//! strategies' decisions depend only on round offsets, never on absolute
//! round numbers. Two exceptions pin the clock to global time:
//!
//! * groups whose [`FaultPlan`] sub-plan contains resource faults (crash and
//!   stall rounds are absolute), and
//! * the `Random` tie-break (its per-round RNG is seeded by the absolute
//!   round), which additionally collapses the partition to a single group.
//!
//! ## Cross-shard handoff by replay
//!
//! Fusing two groups mid-run rebuilds the union group from scratch and
//! **replays** the stored per-round global arrival history through the same
//! gating logic, asserting that the replayed services reproduce both
//! groups' recorded services round for round. Component-locality makes this
//! a pure recomputation — the merged solver must agree with what the two
//! halves already emitted — so the handoff is deterministic and
//! self-checking. Straddlers are routed (and groups fused) strictly in
//! request-id order, and at most `S − 1` fusions can ever happen.
//!
//! A clean group under a fault plan keeps its delta engine even though the
//! unsharded reference (whose global plan has resource faults) falls back
//! to the fresh path: delta and fresh agree on fault-free components, so
//! `RunStats` parity is preserved — the proptests pin this.

use rayon::prelude::*;
use reqsched_core::{
    build_strategy_send_with_mode, OnlineScheduler, Service, ShardMap, SolveMode, StrategyKind,
    TieBreak,
};
use reqsched_faults::FaultPlan;
use reqsched_model::{Alternatives, Hint, Request, RequestId, ResourceId, Round};
use std::sync::Arc;

/// One fused shard group: a strategy instance owning a resource subset,
/// with its own request-id and round renumbering.
struct Group {
    /// Owned global resource ids, ascending. Local resource = position.
    resources: Vec<u32>,
    /// Local request index → global id (append-only, ascending).
    ids: Vec<RequestId>,
    strategy: Box<dyn OnlineScheduler + Send>,
    /// Next local round to feed (only advanced on non-skipped rounds).
    local_clock: u64,
    /// Exclusive upper bound on global rounds where pending work can exist.
    active_until: u64,
    /// Pinned to the global clock: never skip a round.
    never_skip: bool,
    /// Keep histories for potential future fusions (off once one group
    /// remains — no further merge can happen).
    recording: bool,
    /// This round's routed arrivals (global form, ascending id).
    pending: Vec<Request>,
    /// Arrival history per global round (global form), for merge replay.
    history: Vec<(u64, Vec<Request>)>,
    /// Non-empty service batches per global round (global form).
    served_log: Vec<(u64, Vec<Service>)>,
}

impl Group {
    fn new(
        resources: Vec<u32>,
        kind: StrategyKind,
        tie: TieBreak,
        mode: SolveMode,
        d: u32,
        never_skip: bool,
    ) -> Group {
        debug_assert!(!resources.is_empty());
        debug_assert!(resources.windows(2).all(|w| w[0] < w[1]));
        let strategy = build_strategy_send_with_mode(kind, resources.len() as u32, d, tie, mode);
        Group {
            resources,
            ids: Vec::new(),
            strategy,
            local_clock: 0,
            active_until: 0,
            never_skip,
            recording: false,
            pending: Vec::new(),
            history: Vec::new(),
            served_log: Vec::new(),
        }
    }

    /// Install the group's projection of the global fault plan: owned
    /// resources' crash intervals and stalls, remapped to local ids at
    /// their **absolute** rounds — which is why a faulted group never
    /// skips (its local clock must stay the global clock).
    fn install_plan(&mut self, full: &FaultPlan) {
        let mut sub = FaultPlan::empty(self.resources.len() as u32);
        for ci in full.crash_intervals() {
            if let Ok(l) = self.resources.binary_search(&ci.resource.0) {
                sub.add_crash(ResourceId(l as u32), ci.down_from, ci.up_at);
            }
        }
        for (res, round) in full.stall_slots() {
            if let Ok(l) = self.resources.binary_search(&res.0) {
                sub.add_stall(ResourceId(l as u32), round);
            }
        }
        if sub.has_resource_faults() {
            self.never_skip = true;
        }
        self.strategy.set_fault_plan(Arc::new(sub));
    }

    fn local_res(&self, res: ResourceId) -> Option<u32> {
        self.resources.binary_search(&res.0).ok().map(|i| i as u32)
    }

    /// Rewrite a routed request into the group's local id spaces.
    fn localize(&mut self, req: &Request, local_round: Round) -> Request {
        let id = RequestId(self.ids.len() as u32);
        debug_assert!(self.ids.last().is_none_or(|&last| last < req.id));
        self.ids.push(req.id);
        let alts: Vec<ResourceId> = req
            .alternatives
            .as_slice()
            .iter()
            .map(|a| {
                ResourceId(
                    self.local_res(*a)
                        // lint: routing guarantees every alternative is owned by this group
                        .expect("routed request names an owned resource"),
                )
            })
            .collect();
        Request {
            id,
            arrival: local_round,
            alternatives: Alternatives::new(&alts),
            deadline: req.deadline,
            tag: req.tag,
            hint: Hint {
                prefer: req
                    .hint
                    .prefer
                    .and_then(|p| self.local_res(p).map(ResourceId)),
                priority: req.hint.priority,
            },
        }
    }

    /// Whether this group does any work in global round `round`.
    fn should_run(&self, round: u64) -> bool {
        self.never_skip || !self.pending.is_empty() || round < self.active_until
    }

    /// Feed the staged arrivals as one local round and return the services
    /// mapped back to global ids, ascending by global resource.
    fn run_round(&mut self) -> Vec<Service> {
        let local_round = Round(self.local_clock);
        self.local_clock += 1;
        let pending = std::mem::take(&mut self.pending);
        let arrivals: Vec<Request> = pending
            .iter()
            .map(|r| self.localize(r, local_round))
            .collect();
        let served = self.strategy.on_round(local_round, &arrivals);
        served
            .iter()
            .map(|s| Service {
                resource: ResourceId(self.resources[s.resource.index()]),
                request: self.ids[s.request.index()],
            })
            .collect()
    }

    /// One global round: gate, run, log.
    fn step(&mut self, round: u64) -> Vec<Service> {
        if !self.should_run(round) {
            return Vec::new();
        }
        let out = self.run_round();
        if self.recording && !out.is_empty() {
            self.served_log.push((round, out.clone()));
        }
        out
    }

    /// Drive the merged arrival history through rounds `0..upto` with the
    /// same gating logic, asserting the replay reproduces `expected` (the
    /// merged service logs of the two fused halves) round for round.
    fn replay(
        &mut self,
        history: &[(u64, Vec<Request>)],
        expected: &[(u64, Vec<Service>)],
        upto: u64,
    ) {
        let (mut hi, mut ei) = (0usize, 0usize);
        for r in 0..upto {
            if hi < history.len() && history[hi].0 == r {
                for req in &history[hi].1 {
                    self.active_until = self.active_until.max(r + u64::from(req.deadline));
                    self.pending.push(req.clone());
                }
                hi += 1;
            }
            let want: &[Service] = match expected.get(ei) {
                Some((er, w)) if *er == r => {
                    ei += 1;
                    w
                }
                _ => &[],
            };
            if !self.should_run(r) {
                assert!(
                    want.is_empty(),
                    "cross-shard handoff: fused group skips round {r} where a half served"
                );
                continue;
            }
            let out = self.run_round();
            assert_eq!(
                out.as_slice(),
                want,
                "cross-shard handoff: fused group diverges from its halves at round {r}"
            );
        }
        assert_eq!(ei, expected.len(), "handoff replay left services unmatched");
    }
}

/// Run a matching-based strategy over a resource partition, in parallel,
/// with bit-identical results to the unsharded strategy (see module docs).
pub struct ShardedScheduler {
    kind: StrategyKind,
    name: &'static str,
    d: u32,
    tie: TieBreak,
    mode: SolveMode,
    map: ShardMap,
    /// Shard → current group index (fusions re-point entries).
    group_of_shard: Vec<usize>,
    /// Groups; fused-away entries become `None`.
    groups: Vec<Option<Group>>,
    alive: usize,
    plan: Option<Arc<FaultPlan>>,
    round: u64,
    routed: u64,
    straddlers: u64,
    fusions: u64,
}

impl ShardedScheduler {
    /// Whether `kind` can run on the sharded engine. The matching-based
    /// global strategies decompose over resource-disjoint components; the
    /// EDF variants are left on the unsharded path (their independent-copy
    /// bookkeeping is already per-resource and gains nothing here).
    pub fn supported(kind: StrategyKind) -> bool {
        matches!(
            kind,
            StrategyKind::AFix
                | StrategyKind::ACurrent
                | StrategyKind::AFixBalance
                | StrategyKind::AEager
                | StrategyKind::ABalance
                | StrategyKind::LazyMax
        )
    }

    /// A sharded engine for `kind` over `map`'s partition.
    ///
    /// # Panics
    /// Panics if `kind` is not [`ShardedScheduler::supported`].
    pub fn new(kind: StrategyKind, d: u32, tie: TieBreak, mode: SolveMode, map: ShardMap) -> Self {
        assert!(Self::supported(kind), "{} has no sharded port", kind.name());
        // `Random`'s per-round RNG is seeded by the absolute round: neither
        // clock compression nor decomposition preserves it, so the engine
        // degenerates to one never-skipping group — exact by construction.
        let collapse = tie.is_random();
        let mut groups: Vec<Option<Group>> = Vec::new();
        let mut group_of_shard = vec![usize::MAX; map.shards() as usize];
        if collapse {
            let all: Vec<u32> = (0..map.n()).collect();
            groups.push(Some(Group::new(all, kind, tie, mode, d, true)));
            group_of_shard.fill(0);
        } else {
            for s in 0..map.shards() {
                let members = map.members(s);
                if members.is_empty() {
                    continue; // nothing routes here
                }
                let idx = groups.len();
                groups.push(Some(Group::new(members, kind, tie, mode, d, false)));
                group_of_shard[s as usize] = idx;
            }
        }
        let alive = groups.len();
        for g in groups.iter_mut().flatten() {
            g.recording = alive > 1;
        }
        ShardedScheduler {
            kind,
            name: kind.name(),
            d,
            tie,
            mode,
            map,
            group_of_shard,
            groups,
            alive,
            plan: None,
            round: 0,
            routed: 0,
            straddlers: 0,
            fusions: 0,
        }
    }

    /// Requests routed so far.
    pub fn routed(&self) -> u64 {
        self.routed
    }

    /// Requests whose alternatives spanned more than one group at routing
    /// time (each such request fused groups).
    pub fn straddlers(&self) -> u64 {
        self.straddlers
    }

    /// Cross-shard fusions performed (at most `S − 1` over a run).
    pub fn fusions(&self) -> u64 {
        self.fusions
    }

    /// Currently independent solver groups.
    pub fn groups_alive(&self) -> usize {
        self.alive
    }

    /// Fuse groups `a` and `b` (the deterministic handoff): rebuild the
    /// union group and replay both histories through it (see module docs).
    fn fuse(&mut self, a: usize, b: usize, round: u64) -> usize {
        self.fusions += 1;
        // lint: route() only passes live group indices
        let ga = self.groups[a].take().expect("fusing a live group");
        // lint: route() only passes live group indices
        let gb = self.groups[b].take().expect("fusing a live group");
        let mut resources = ga.resources.clone();
        resources.extend_from_slice(&gb.resources);
        resources.sort_unstable();
        let mut fused = Group::new(
            resources,
            self.kind,
            self.tie,
            self.mode,
            self.d,
            ga.never_skip || gb.never_skip,
        );
        if let Some(p) = &self.plan {
            fused.install_plan(p);
        }
        let history = merge_by_round(ga.history, gb.history, |v| v.sort_by_key(|r| r.id));
        let expected = merge_by_round(ga.served_log, gb.served_log, |v| {
            v.sort_unstable_by_key(|s| s.resource.0)
        });
        fused.replay(&history, &expected, round);
        fused.active_until = fused.active_until.max(ga.active_until).max(gb.active_until);
        let mut pending = ga.pending;
        pending.extend(gb.pending);
        pending.sort_by_key(|r| r.id);
        fused.pending = pending;
        self.alive -= 1;
        fused.recording = self.alive > 1;
        if fused.recording {
            fused.history = history;
            fused.served_log = expected;
        }
        let idx = self.groups.len();
        self.groups.push(Some(fused));
        for e in &mut self.group_of_shard {
            if *e == a || *e == b {
                *e = idx;
            }
        }
        idx
    }

    /// Route one arrival to its group, fusing groups if it straddles.
    fn route(&mut self, alts: &[ResourceId], round: u64) -> usize {
        self.routed += 1;
        let mut gidx = self.group_of_shard[self.map.shard_of(alts[0]) as usize];
        let mut straddled = false;
        for alt in &alts[1..] {
            let other = self.group_of_shard[self.map.shard_of(*alt) as usize];
            if other != gidx {
                straddled = true;
                gidx = self.fuse(gidx, other, round);
            }
        }
        if straddled {
            self.straddlers += 1;
        }
        gidx
    }
}

/// Merge two round-keyed logs; same-round entries are concatenated and
/// every round's batch is canonicalized by `fix`.
fn merge_by_round<T>(
    a: Vec<(u64, Vec<T>)>,
    b: Vec<(u64, Vec<T>)>,
    fix: impl Fn(&mut Vec<T>),
) -> Vec<(u64, Vec<T>)> {
    let mut merged: std::collections::BTreeMap<u64, Vec<T>> = std::collections::BTreeMap::new();
    for (r, v) in a.into_iter().chain(b) {
        merged.entry(r).or_default().extend(v);
    }
    merged
        .into_iter()
        .map(|(r, mut v)| {
            fix(&mut v);
            (r, v)
        })
        .collect()
}

impl OnlineScheduler for ShardedScheduler {
    fn name(&self) -> &str {
        // The inner strategy's name: sharding is an execution detail, not a
        // different strategy, and `RunStats` equality leans on this.
        self.name
    }

    fn set_fault_plan(&mut self, plan: Arc<FaultPlan>) {
        assert_eq!(self.round, 0, "fault plans install before the first round");
        for g in self.groups.iter_mut().flatten() {
            g.install_plan(&plan);
        }
        self.plan = Some(plan);
    }

    fn on_round(&mut self, round: Round, arrivals: &[Request]) -> Vec<Service> {
        assert_eq!(round.get(), self.round, "rounds must be consecutive");
        self.round += 1;
        let r = round.get();
        // Phase 1: sequential arrival routing in request-id order (the
        // deterministic handoff order — fusions happen here).
        for req in arrivals {
            let gidx = self.route(req.alternatives.as_slice(), r);
            // lint: route() returns a live group
            let g = self.groups[gidx].as_mut().expect("routed to a live group");
            g.active_until = g.active_until.max(r + u64::from(req.deadline));
            if g.recording {
                match g.history.last_mut() {
                    Some((hr, v)) if *hr == r => v.push(req.clone()),
                    _ => g.history.push((r, vec![req.clone()])),
                }
            }
            g.pending.push(req.clone());
        }
        // Phase 2: parallel per-group solve. The groups vector moves through
        // the parallel iterator and back (an index-preserving collect), so
        // results always arrive in group order: thread count and scheduling
        // cannot reorder anything.
        let stepped: Vec<(Option<Group>, Vec<Service>)> = std::mem::take(&mut self.groups)
            .into_par_iter()
            .map(|g| match g {
                Some(mut g) => {
                    let out = g.step(r);
                    (Some(g), out)
                }
                None => (None, Vec::new()),
            })
            .collect();
        let mut per_group: Vec<Vec<Service>> = Vec::with_capacity(stepped.len());
        for (g, out) in stepped {
            self.groups.push(g);
            per_group.push(out);
        }
        // Phase 3: deterministic merge — global resource order, exactly the
        // order the unsharded `finish_round` serves in.
        let mut out: Vec<Service> = per_group.into_iter().flatten().collect();
        out.sort_unstable_by_key(|s| s.resource.0);
        out
    }

    fn comm_rounds_total(&self) -> u64 {
        self.groups
            .iter()
            .flatten()
            .map(|g| g.strategy.comm_rounds_total())
            .sum()
    }

    fn messages_total(&self) -> u64 {
        self.groups
            .iter()
            .flatten()
            .map(|g| g.strategy.messages_total())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run_fixed_faulty, run_fixed_faulty_sharded, run_fixed_pair_sharded};
    use reqsched_model::{Instance, TraceBuilder};
    use reqsched_workloads as workloads;

    const PORTED: [StrategyKind; 6] = [
        StrategyKind::AFix,
        StrategyKind::ACurrent,
        StrategyKind::AFixBalance,
        StrategyKind::AEager,
        StrategyKind::ABalance,
        StrategyKind::LazyMax,
    ];

    #[test]
    fn sharded_matches_unsharded_on_mixed_workloads() {
        let insts = [
            workloads::uniform_two_choice(6, 4, 5, 30, 91),
            workloads::zipf_replicated(6, 3, 30, 1.3, 8, 30, 92),
            workloads::flash_crowd(6, 4, 3, 12, 10, 8, 30, 93),
        ];
        for inst in &insts {
            for kind in PORTED {
                for tie in [
                    TieBreak::FirstFit,
                    TieBreak::LatestFit,
                    TieBreak::HintGuided,
                ] {
                    let map = ShardMap::hash(inst.n_resources, 3);
                    let (sharded, plain) =
                        run_fixed_pair_sharded(kind, inst, tie, SolveMode::Delta, map);
                    assert_eq!(sharded, plain, "{} {tie:?}", kind.name());
                }
            }
        }
    }

    #[test]
    fn random_tie_collapses_to_one_exact_group() {
        let s = ShardedScheduler::new(
            StrategyKind::ACurrent,
            3,
            TieBreak::Random(7),
            SolveMode::Delta,
            ShardMap::hash(8, 4),
        );
        assert_eq!(s.groups_alive(), 1);
        let inst = workloads::uniform_two_choice(8, 3, 6, 25, 94);
        let (sharded, plain) = run_fixed_pair_sharded(
            StrategyKind::ACurrent,
            &inst,
            TieBreak::Random(7),
            SolveMode::Delta,
            ShardMap::hash(8, 4),
        );
        assert_eq!(sharded, plain);
    }

    /// Drive a scheduler over a trace by hand (the engine's validation layer
    /// is exercised by the pair runners; here we need the counters).
    fn drive(s: &mut ShardedScheduler, inst: &Instance) -> Vec<Vec<Service>> {
        let last = inst.trace.service_horizon().get();
        (0..last)
            .map(|r| s.on_round(Round(r), inst.trace.arrivals_at(Round(r))))
            .collect()
    }

    #[test]
    fn straddler_fuses_groups_and_stays_exact() {
        // Range split of 4 resources into {0,1} and {2,3}; local traffic on
        // both sides, then a straddler (1,2) welds the halves together.
        let mut b = TraceBuilder::new(3);
        b.push(0u64, 0u32, 1u32);
        b.push(0u64, 2u32, 3u32);
        b.push(1u64, 0u32, 1u32);
        b.push(2u64, 1u32, 2u32); // straddler
        b.push(3u64, 0u32, 3u32); // now same group: no further fusion
        let inst = Instance::new(4, 3, b.build());
        let map = ShardMap::range(4, 2);

        let mut s = ShardedScheduler::new(
            StrategyKind::AEager,
            3,
            TieBreak::FirstFit,
            SolveMode::Delta,
            map.clone(),
        );
        assert_eq!(s.groups_alive(), 2);
        let sharded_rounds = drive(&mut s, &inst);
        assert_eq!(s.routed(), 5);
        assert_eq!(s.straddlers(), 1);
        assert_eq!(s.fusions(), 1);
        assert_eq!(s.groups_alive(), 1);

        let mut plain =
            reqsched_core::build_strategy(StrategyKind::AEager, 4, 3, TieBreak::FirstFit);
        let last = inst.trace.service_horizon().get();
        for (r, got) in sharded_rounds.iter().enumerate() {
            let want = plain.on_round(Round(r as u64), inst.trace.arrivals_at(Round(r as u64)));
            assert_eq!(got, &want, "round {r}");
        }
        assert_eq!(last, 5);
    }

    #[test]
    fn idle_groups_skip_rounds() {
        // One early request on the {0,1} side (busy rounds 0..2), steady
        // traffic on the {2,3} side: the idle group's local clock must stop
        // while the busy group tracks the global clock.
        let mut b = TraceBuilder::new(2);
        b.push(0u64, 0u32, 1u32);
        for r in 0..20u64 {
            b.push(r, 2u32, 3u32);
        }
        let inst = Instance::new(4, 2, b.build());
        let mut s = ShardedScheduler::new(
            StrategyKind::ACurrent,
            2,
            TieBreak::FirstFit,
            SolveMode::Delta,
            ShardMap::range(4, 2),
        );
        let rounds = drive(&mut s, &inst);
        let clocks: Vec<u64> = s.groups.iter().flatten().map(|g| g.local_clock).collect();
        assert_eq!(clocks, vec![2, rounds.len() as u64]);
    }

    #[test]
    fn faulty_groups_pin_to_global_clock_and_match_unsharded() {
        // Crash on resource 0 pins the {0,1} group's clock; the {2,3} group
        // keeps skipping. RunStats must still equal the unsharded run.
        let inst = workloads::uniform_two_choice(4, 3, 3, 25, 95);
        let plan = Arc::new(
            FaultPlan::empty(4)
                .with_crash(ResourceId(0), Round(2), Round(9))
                .with_stall(ResourceId(3), Round(4)),
        );
        for kind in PORTED {
            let mut sh = run_fixed_faulty_sharded(
                kind,
                &inst,
                TieBreak::FirstFit,
                SolveMode::Delta,
                ShardMap::range(4, 2),
                &plan,
            );
            let pl = run_fixed_faulty(
                reqsched_core::build_strategy(kind, 4, 3, TieBreak::FirstFit).as_mut(),
                &inst,
                &plan,
            );
            // The sharded runner leaves the offline optimum unfilled.
            assert_eq!(sh.opt, 0);
            sh.opt = pl.opt;
            sh.opt_prefix = pl.opt_prefix.clone();
            assert_eq!(sh, pl, "{}", kind.name());
        }
    }
}
