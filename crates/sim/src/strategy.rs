//! Unified construction over global *and* local strategies.

use reqsched_core::{build_strategy, OnlineScheduler, StrategyKind, TieBreak};
use reqsched_local::{ALocalEager, ALocalFix};

/// Any strategy of the paper, global or local.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AnyStrategy {
    /// One of the global strategies under a tie-break policy.
    Global(StrategyKind, TieBreak),
    /// `A_local_fix` (2 communication rounds, ratio exactly 2).
    LocalFix,
    /// `A_local_eager` (≤ 9 communication rounds, ratio ≤ 5/3).
    LocalEager,
}

impl AnyStrategy {
    /// Display name.
    pub fn name(&self) -> String {
        match self {
            AnyStrategy::Global(k, _) => k.name().to_string(),
            AnyStrategy::LocalFix => "A_local_fix".to_string(),
            AnyStrategy::LocalEager => "A_local_eager".to_string(),
        }
    }

    /// Build an instance of this strategy.
    pub fn build(&self, n: u32, d: u32) -> Box<dyn OnlineScheduler> {
        match self {
            AnyStrategy::Global(k, tie) => build_strategy(*k, n, d, *tie),
            AnyStrategy::LocalFix => Box::new(ALocalFix::new(n, d)),
            AnyStrategy::LocalEager => Box::new(ALocalEager::new(n, d)),
        }
    }

    /// The paper's proven upper bound on the competitive ratio, if stated.
    pub fn upper_bound(&self, d: u32) -> Option<f64> {
        match self {
            AnyStrategy::Global(k, _) => k.upper_bound(d),
            AnyStrategy::LocalFix => Some(2.0),
            AnyStrategy::LocalEager => Some(5.0 / 3.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_names() {
        for s in [
            AnyStrategy::Global(StrategyKind::AEager, TieBreak::FirstFit),
            AnyStrategy::LocalFix,
            AnyStrategy::LocalEager,
        ] {
            let built = s.build(4, 3);
            assert_eq!(built.name(), s.name());
        }
    }

    #[test]
    fn local_bounds() {
        assert_eq!(AnyStrategy::LocalFix.upper_bound(7), Some(2.0));
        assert_eq!(AnyStrategy::LocalEager.upper_bound(7), Some(5.0 / 3.0));
    }
}
