//! Rayon-parallel parameter sweeps over (instance × strategy × tie-break)
//! grids.

use crate::cache::OptCache;
use crate::engine::{run_fixed_cached, RunStats};
use crate::strategy::AnyStrategy;
use rayon::prelude::*;
use reqsched_core::{StrategyKind, TieBreak};
use reqsched_model::Instance;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One sweep job: run `strategy` on `instance`.
#[derive(Clone)]
pub struct Job {
    /// Free-form label propagated into the [`RunRecord`] (e.g. "thm2.1 d=8").
    pub label: String,
    /// The instance to run on (shared across jobs).
    pub instance: Arc<Instance>,
    /// Strategy to instantiate (global or local).
    pub strategy: AnyStrategy,
}

impl Job {
    /// Convenience constructor for global strategies.
    pub fn new(
        label: impl Into<String>,
        instance: Arc<Instance>,
        kind: StrategyKind,
        tie: TieBreak,
    ) -> Job {
        Job {
            label: label.into(),
            instance,
            strategy: AnyStrategy::Global(kind, tie),
        }
    }

    /// Convenience constructor for any strategy.
    pub fn any(label: impl Into<String>, instance: Arc<Instance>, strategy: AnyStrategy) -> Job {
        Job {
            label: label.into(),
            instance,
            strategy,
        }
    }
}

/// One sweep result row.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunRecord {
    /// The job label.
    pub label: String,
    /// Tie-break label ("—" for local strategies, which have none).
    pub tie: String,
    /// Full run statistics (including the exact optimum).
    pub stats: RunStats,
    /// Convenience copy of `stats.ratio()`.
    pub ratio: f64,
}

/// Run all jobs in parallel (Rayon work-stealing; each job is independent).
///
/// Results come back in job order regardless of execution order. The exact
/// optimum is computed once per distinct instance via a per-call
/// [`OptCache`]; pass a cache explicitly with [`par_run_with_cache`] to
/// share optima across several sweep calls.
pub fn par_run(jobs: &[Job]) -> Vec<RunRecord> {
    par_run_with_cache(jobs, &OptCache::new())
}

/// [`par_run`] with a caller-supplied [`OptCache`], so sweeps that revisit
/// the same instances (e.g. one battery per strategy kind) pay for each
/// horizon solve once across all of them.
pub fn par_run_with_cache(jobs: &[Job], cache: &OptCache) -> Vec<RunRecord> {
    jobs.par_iter()
        .map(|job| {
            let inst = &job.instance;
            let mut strategy = job.strategy.build(inst.n_resources, inst.d);
            // lint: OptCache sharing is deterministic — every worker computes the same optimum and the OnceLock fill race is value-identical
            let stats = run_fixed_cached(strategy.as_mut(), inst, cache);
            let ratio = stats.ratio();
            let tie = match job.strategy {
                AnyStrategy::Global(_, tie) => tie.label(),
                _ => "—".to_string(),
            };
            RunRecord {
                label: job.label.clone(),
                tie,
                stats,
                ratio,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use reqsched_model::TraceBuilder;

    fn inst() -> Arc<Instance> {
        let mut b = TraceBuilder::new(2);
        b.block2(0u64, 0u32, 1u32, 0);
        b.push(0u64, 0u32, 1u32);
        Arc::new(Instance::new(2, 2, b.build()))
    }

    #[test]
    fn parallel_results_keep_job_order() {
        let i = inst();
        let jobs: Vec<Job> = StrategyKind::GLOBAL
            .iter()
            .map(|&k| Job::new(k.name(), Arc::clone(&i), k, TieBreak::FirstFit))
            .collect();
        let out = par_run(&jobs);
        assert_eq!(out.len(), jobs.len());
        for (job, rec) in jobs.iter().zip(&out) {
            assert_eq!(job.label, rec.label);
            assert_eq!(rec.stats.strategy, job.strategy.name());
        }
    }

    #[test]
    fn parallel_equals_serial() {
        let i = inst();
        let jobs: Vec<Job> = (0..8)
            .map(|s| {
                Job::new(
                    format!("seed{s}"),
                    Arc::clone(&i),
                    StrategyKind::ABalance,
                    TieBreak::Random(s),
                )
            })
            .collect();
        let a = par_run(&jobs);
        let b = par_run(&jobs);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.stats, y.stats, "sweeps must be deterministic");
        }
    }

    #[test]
    fn cached_sweep_matches_uncached_and_dedupes_solves() {
        let i = inst();
        let jobs: Vec<Job> = StrategyKind::GLOBAL
            .iter()
            .map(|&k| Job::new(k.name(), Arc::clone(&i), k, TieBreak::FirstFit))
            .collect();
        let cache = OptCache::new();
        let cached = par_run_with_cache(&jobs, &cache);
        let fresh = par_run(&jobs);
        for (x, y) in cached.iter().zip(&fresh) {
            assert_eq!(x.stats, y.stats);
        }
        assert_eq!(cache.misses(), 1, "one shared instance -> one solve");
        assert_eq!(cache.hits(), jobs.len() - 1);
    }

    #[test]
    fn shared_cache_survives_concurrent_sweeps() {
        let i = inst();
        let jobs: Vec<Job> = (0..6)
            .map(|s| {
                Job::new(
                    format!("seed{s}"),
                    Arc::clone(&i),
                    StrategyKind::ABalance,
                    TieBreak::Random(s),
                )
            })
            .collect();
        let cache = OptCache::new();
        let (a, b) = std::thread::scope(|s| {
            let ha = s.spawn(|| par_run_with_cache(&jobs, &cache));
            let hb = s.spawn(|| par_run_with_cache(&jobs, &cache));
            (ha.join().unwrap(), hb.join().unwrap())
        });
        let serial = par_run(&jobs);
        for (x, y) in a.iter().zip(&serial) {
            assert_eq!(x.stats, y.stats);
        }
        for (x, y) in b.iter().zip(&serial) {
            assert_eq!(x.stats, y.stats);
        }
        assert_eq!(
            cache.misses(),
            1,
            "racing sweeps still solve each instance once"
        );
    }

    #[test]
    fn records_expose_ratio() {
        let i = inst();
        let out = par_run(&[Job::new("one", i, StrategyKind::AEager, TieBreak::FirstFit)]);
        assert!(out[0].ratio >= 1.0);
        assert_eq!(out[0].tie, "first-fit");
    }
}
