//! Invariant-audited replays of every adversarial construction and workload
//! generator (`cargo test -p reqsched-sim --features audit`).
//!
//! With the `audit` feature on, every round boundary runs the full invariant
//! auditor: `ScheduleState::audit` (slot exclusivity, mate-array symmetry,
//! window feasibility, deadline respect) inside `finish_round`, and
//! `DynamicMatching::audit` (consistency plus a from-scratch Hopcroft–Karp
//! re-solve pinning delta-vs-fresh cardinality) inside the delta engines.
//! These tests contribute no assertions of their own beyond termination and
//! basic sanity — the auditor inside the hot path is the test. The inputs
//! are chosen for coverage: the paper's Thm 2.1–2.6 killer sequences stress
//! exactly the rescheduling machinery the audits guard, and the workload
//! generators cover the benign-input shapes.
#![cfg(feature = "audit")]

use reqsched_adversary::{edf_worst, thm21, thm22, thm23, thm24, thm25, thm26, thm37};
use reqsched_core::{build_strategy, StrategyKind, TieBreak};
use reqsched_faults::{ChaosConfig, FaultPlan};
use reqsched_model::Instance;
use reqsched_sim::{run_fixed, run_fixed_faulty, run_fixed_pair_faulty, run_source};
use reqsched_workloads as workloads;
use std::sync::Arc;

/// Replay `inst` under every global strategy (and two-choice EDF) with the
/// auditor armed at each round boundary.
fn audit_all_strategies(inst: &Instance, label: &str) {
    let n = inst.n_resources;
    let d = inst.d;
    for kind in StrategyKind::GLOBAL {
        for tie in [
            TieBreak::FirstFit,
            TieBreak::LatestFit,
            TieBreak::HintGuided,
        ] {
            let mut s = build_strategy(kind, n, d, tie);
            let stats = run_fixed(s.as_mut(), inst);
            assert!(
                stats.served <= stats.injected,
                "{label}/{kind:?}: served {} of {} injected",
                stats.served,
                stats.injected,
            );
            assert!(
                stats.served <= stats.opt,
                "{label}/{kind:?}: served {} beats the optimum {}",
                stats.served,
                stats.opt,
            );
        }
    }
    let mut edf = build_strategy(
        StrategyKind::Edf {
            cancel_sibling: true,
        },
        n,
        d,
        TieBreak::FirstFit,
    );
    let stats = run_fixed(edf.as_mut(), inst);
    assert!(stats.served <= stats.opt, "{label}/EDF-cancel beat OPT");
}

#[test]
fn thm21_scenarios_pass_audit() {
    for phases in [1, 3, 8] {
        let s = thm21::scenario(4, phases);
        audit_all_strategies(&s.instance, &s.name);
    }
}

#[test]
fn thm22_scenarios_pass_audit() {
    for (l, scale, phases) in [(3, 1, 3), (4, 1, 2), (5, 1, 1)] {
        let s = thm22::scenario(l, scale, phases);
        audit_all_strategies(&s.instance, &s.name);
    }
}

#[test]
fn thm23_scenarios_pass_audit() {
    for d in [2, 4, 6] {
        let s = thm23::scenario(d, 3);
        audit_all_strategies(&s.instance, &s.name);
    }
}

#[test]
fn thm24_scenarios_pass_audit() {
    for phases in [1, 4] {
        let s = thm24::scenario(2, phases);
        audit_all_strategies(&s.instance, &s.name);
    }
}

#[test]
fn thm25_scenarios_pass_audit() {
    for (x, groups, intervals) in [(1, 2, 2), (2, 2, 3)] {
        let s = thm25::scenario(x, groups, intervals);
        audit_all_strategies(&s.instance, &s.name);
    }
}

/// Theorem 2.6's adversary is adaptive (a [`RequestSource`], not a fixed
/// trace), so it exercises `run_source`'s round loop under audit.
///
/// [`RequestSource`]: reqsched_sim::RequestSource
#[test]
fn thm26_adaptive_adversary_passes_audit() {
    let d = 6;
    for kind in StrategyKind::GLOBAL {
        let mut adv = thm26::Thm26Adversary::new(d, 4);
        let mut s = build_strategy(kind, thm26::N_RESOURCES, d, TieBreak::FirstFit);
        let (stats, _trace) = run_source(s.as_mut(), &mut adv, thm26::N_RESOURCES, d);
        assert!(stats.injected > 0, "{kind:?}: adversary emitted nothing");
    }
}

#[test]
fn thm37_and_edf_worst_scenarios_pass_audit() {
    let s = thm37::scenario(4, 3);
    audit_all_strategies(&s.instance, &s.name);
    let s = edf_worst::scenario(4, 3);
    audit_all_strategies(&s.instance, &s.name);
}

#[test]
fn workload_generators_pass_audit() {
    let cases: Vec<(&str, Instance)> = vec![
        (
            "uniform_two_choice",
            workloads::uniform_two_choice(6, 4, 5, 24, 11),
        ),
        (
            "zipf_replicated",
            workloads::zipf_replicated(6, 4, 40, 1.1, 5, 24, 12),
        ),
        (
            "flash_crowd",
            workloads::flash_crowd(6, 4, 2, 12, 8, 4, 24, 13),
        ),
        ("c_choice", workloads::c_choice(6, 4, 3, 4, 24, 14)),
        (
            "mixed_deadlines",
            workloads::mixed_deadlines(6, 4, 5, 24, 15),
        ),
    ];
    for (label, inst) in &cases {
        audit_all_strategies(inst, label);
    }
    // Single-alternative load goes through EDF-1, the remaining scheduler.
    let inst = workloads::single_alternative(6, 4, 5, 24, 16);
    let mut s = build_strategy(StrategyKind::EdfSingle, 6, 4, TieBreak::FirstFit);
    let stats = run_fixed(s.as_mut(), &inst);
    assert!(stats.served <= stats.opt, "EDF-1 beat OPT");
}

/// Fault plans under the armed auditor: `ScheduleState::audit` additionally
/// verifies at every round boundary that no occupied slot is crashed or
/// stalled, and the delta/fresh twins must stay in lockstep while columns
/// vanish under them. Scripted and randomly generated plans both replay.
#[test]
fn fault_plans_pass_audit() {
    use reqsched_model::{ResourceId, Round};

    let inst = workloads::uniform_two_choice(5, 4, 5, 24, 21);
    let plans = [
        (
            "scripted-crashes",
            FaultPlan::empty(5)
                .with_crash(ResourceId(0), Round(2), Round(9))
                .with_crash(ResourceId(3), Round(0), Round(4))
                .with_stall(ResourceId(1), Round(5))
                .with_stall(ResourceId(1), Round(6)),
        ),
        (
            "random-chaos",
            FaultPlan::random(
                5,
                28,
                &ChaosConfig {
                    crash_prob: 0.08,
                    mttr: 3.0,
                    stall_prob: 0.05,
                    ..ChaosConfig::CALM
                },
                99,
            ),
        ),
    ];
    for (label, plan) in plans {
        let plan = Arc::new(plan);
        for kind in StrategyKind::GLOBAL {
            for tie in [TieBreak::FirstFit, TieBreak::LatestFit] {
                let (delta, fresh) = run_fixed_pair_faulty(kind, &inst, tie, &plan);
                assert_eq!(
                    delta, fresh,
                    "{label}/{kind:?}/{tie:?}: delta diverges under faults"
                );
            }
            let mut s = build_strategy(kind, 5, 4, TieBreak::FirstFit);
            let stats = run_fixed_faulty(s.as_mut(), &inst, &plan);
            assert!(
                stats.served <= stats.opt,
                "{label}/{kind:?}: served {} beats fault-aware OPT {}",
                stats.served,
                stats.opt,
            );
        }
    }
}

/// Pinned shrunk regressions: instances that historically stressed the
/// delta engine's repair paths (from the parity proptests' shrinker). Kept
/// tiny so the audited replay stays fast while still visiting removal
/// repair, column retirement, and the saturation passes in one window.
#[test]
fn pinned_shrunk_regressions_pass_audit() {
    use reqsched_model::TraceBuilder;

    // Burst then silence: forces serve-removals and column retirement with
    // a still-populated window.
    let mut b = TraceBuilder::new(3);
    b.block2(0u64, 0u32, 1u32, 4);
    b.push(0u64, 1u32, 2u32);
    b.push(2u64, 0u32, 2u32);
    audit_all_strategies(&Instance::new(3, 3, b.build()), "burst-then-silence");

    // Overload on one pair: expiries every round, exercising the
    // expiry-removal repair search.
    let mut b = TraceBuilder::new(2);
    for t in 0..6u64 {
        b.block2(t, 0u32, 1u32, 0);
        b.block2(t, 0u32, 1u32, 0);
    }
    audit_all_strategies(&Instance::new(2, 2, b.build()), "pair-overload");

    // Deadline-1 stream: every window is a single column, the degenerate
    // case for retire/extend bookkeeping.
    let mut b = TraceBuilder::new(1);
    for t in 0..8u64 {
        b.push(t, (t % 3) as u32, ((t + 1) % 3) as u32);
    }
    audit_all_strategies(&Instance::new(3, 1, b.build()), "deadline-one-stream");
}
