//! Delta-vs-fresh parity: a converted strategy must produce a bit-for-bit
//! identical schedule whether it carries its matching across rounds
//! (`SolveMode::Delta`) or rebuilds the window graph and re-solves from
//! scratch every round (`SolveMode::Fresh`).
//!
//! [`run_fixed_pair`] runs both twins over the same instance; comparing the
//! whole [`RunStats`] (served/expired totals, the per-round served curve,
//! and the full final assignment) pins the two paths round by round. The
//! fresh path asserts internally that its per-round matching is maximum, so
//! equality here also certifies the delta path's per-round cardinality
//! against a from-scratch solve.

use proptest::prelude::*;
use reqsched_adversary::{thm21, thm22, thm23, thm24, thm25};
use reqsched_core::{StrategyKind, TieBreak};
use reqsched_model::Instance;
use reqsched_sim::run_fixed_pair;
use reqsched_workloads as workloads;

/// The strategies with a delta path (all of [`StrategyKind::GLOBAL`] except
/// `A_fix`, which decides per arrival and never re-solves, plus the
/// lazy-maximum ablation).
const CONVERTED: [StrategyKind; 5] = [
    StrategyKind::ACurrent,
    StrategyKind::AFixBalance,
    StrategyKind::AEager,
    StrategyKind::ABalance,
    StrategyKind::LazyMax,
];

/// The tie-breaks the delta engine accepts; the other two fall back to the
/// fresh path internally (checked in `crates/core/src/delta.rs` tests).
const DELTA_TIES: [TieBreak; 2] = [TieBreak::FirstFit, TieBreak::LatestFit];

fn assert_pair_parity(inst: &Instance, label: &str) {
    for kind in CONVERTED {
        for tie in DELTA_TIES {
            let (delta, fresh) = run_fixed_pair(kind, inst, tie);
            assert_eq!(
                delta,
                fresh,
                "{label}: {} {tie:?}: delta and fresh schedules diverge",
                kind.name()
            );
        }
    }
}

#[test]
fn parity_on_adversarial_scenarios() {
    let scenarios = [
        thm21::scenario(4, 4),
        thm22::scenario(3, 2, 3),
        thm23::scenario(4, 4),
        thm24::scenario(6, 4),
        thm25::scenario(2, 3, 3),
    ];
    for sc in scenarios {
        assert_pair_parity(&sc.instance, &sc.name);
    }
}

#[test]
fn parity_on_workload_generators() {
    let insts = [
        ("uniform", workloads::uniform_two_choice(6, 4, 5, 50, 11)),
        ("zipf", workloads::zipf_replicated(6, 3, 30, 1.3, 8, 50, 12)),
        ("flash", workloads::flash_crowd(6, 4, 3, 12, 10, 8, 50, 13)),
        ("c_choice", workloads::c_choice(7, 3, 3, 6, 50, 14)),
        ("mixed", workloads::mixed_deadlines(5, 5, 4, 50, 15)),
        ("single", workloads::single_alternative(4, 3, 5, 50, 16)),
    ];
    for (label, inst) in &insts {
        assert_pair_parity(inst, label);
    }
}

proptest! {
    // Each case runs 5 strategies x 2 tie-breaks x 2 modes over a 30-round
    // trace; 32 cases keep the suite quick while still sweeping (n, d,
    // load, seed) broadly.
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn parity_on_random_mixed_deadline_traces(
        n in 2u32..6,
        d in 1u32..6,
        per_round in 1u32..5,
        seed in 0u64..u64::MAX,
    ) {
        let inst = workloads::mixed_deadlines(n, d, per_round, 30, seed);
        for kind in CONVERTED {
            for tie in DELTA_TIES {
                let (delta, fresh) = run_fixed_pair(kind, &inst, tie);
                prop_assert_eq!(
                    &delta,
                    &fresh,
                    "{} {:?}: delta and fresh schedules diverge",
                    kind.name(),
                    tie
                );
            }
        }
    }

    #[test]
    fn parity_on_random_overloaded_traces(
        n in 2u32..5,
        d in 2u32..5,
        seed in 0u64..u64::MAX,
    ) {
        // Overload (per_round > n) exercises failed arrivals, expiries, and
        // the repair path on every window slide.
        let inst = workloads::uniform_two_choice(n, d, n + 3, 25, seed);
        for kind in CONVERTED {
            for tie in DELTA_TIES {
                let (delta, fresh) = run_fixed_pair(kind, &inst, tie);
                prop_assert_eq!(
                    &delta,
                    &fresh,
                    "{} {:?}: delta and fresh schedules diverge",
                    kind.name(),
                    tie
                );
            }
        }
    }
}

/// Hand-distilled regression (found by the round-parity tests while the
/// delta engine still skipped saturation in arrival-free rounds): under
/// `LatestFit`, `A_eager` parks a request in the last window column; when
/// the window slides with no arrivals, the current-first pass must still
/// run, because the slide promotes a new column into the preferred class
/// and exposes an improving exchange. Skipping it serves the request a
/// round late.
#[test]
fn eager_latestfit_idle_round_exchange() {
    use reqsched_model::TraceBuilder;
    // n = 1, d = 3, two S0-only requests in round 0, then silence. Under
    // LatestFit one request ends round 0 parked in column 2 with column 1
    // free; the improving exchange into column 1 only appears after the
    // slide, in the arrival-free round 1.
    let mut b = TraceBuilder::new(3);
    b.push_single(0u64, 0u32);
    b.push_single(0u64, 0u32);
    let inst = Instance::new(1, 3, b.build());
    for kind in CONVERTED {
        let (delta, fresh) = run_fixed_pair(kind, &inst, TieBreak::LatestFit);
        assert_eq!(delta, fresh, "{}: idle-round exchange missed", kind.name());
    }
}
