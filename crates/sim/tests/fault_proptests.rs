//! Fault-injection invariants of the simulation engine.
//!
//! Three layers of guarantees are pinned here:
//!
//! 1. **The empty plan is free**: running any strategy under
//!    `FaultPlan::empty(n)` is bit-identical (full `RunStats` equality,
//!    including the optimum, the per-round curve and the final assignment)
//!    to running it with no plan installed at all.
//! 2. **Delta/fresh parity survives faults**: the delta round engine and the
//!    from-scratch reference agree service-for-service under arbitrary
//!    crash/stall plans ([`run_fixed_pair_faulty`]).
//! 3. **ALG and OPT share the feasibility graph**: under any plan, no
//!    strategy serves more than the fault-aware optimum.

use proptest::prelude::*;
use reqsched_core::{StrategyKind, TieBreak};
use reqsched_faults::{ChaosConfig, FaultPlan};
use reqsched_model::{Instance, ResourceId, Round, TraceBuilder};
use reqsched_sim::{run_fixed, run_fixed_faulty, run_fixed_pair_faulty, AnyStrategy};
use reqsched_workloads as workloads;
use std::sync::Arc;

/// Strategies with a delta path (mirrors `delta_parity_proptests.rs`).
const CONVERTED: [StrategyKind; 5] = [
    StrategyKind::ACurrent,
    StrategyKind::AFixBalance,
    StrategyKind::AEager,
    StrategyKind::ABalance,
    StrategyKind::LazyMax,
];

const DELTA_TIES: [TieBreak; 2] = [TieBreak::FirstFit, TieBreak::LatestFit];

/// Every strategy the chaos harness can drive: all global kinds plus both
/// local protocols (the workloads used here are two-choice, which the local
/// strategies require).
fn all_strategies() -> Vec<AnyStrategy> {
    let mut v: Vec<AnyStrategy> = StrategyKind::GLOBAL
        .into_iter()
        .map(|k| AnyStrategy::Global(k, TieBreak::FirstFit))
        .collect();
    v.push(AnyStrategy::Global(
        StrategyKind::Edf {
            cancel_sibling: false,
        },
        TieBreak::FirstFit,
    ));
    v.push(AnyStrategy::Global(
        StrategyKind::Edf {
            cancel_sibling: true,
        },
        TieBreak::FirstFit,
    ));
    v.push(AnyStrategy::LocalFix);
    v.push(AnyStrategy::LocalEager);
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Guarantee 1: the empty plan changes no observable bit of a run.
    #[test]
    fn empty_plan_run_is_bit_identical(
        n in 2u32..6,
        d in 1u32..5,
        per_round in 1u32..5,
        seed in 0u64..u64::MAX,
    ) {
        let inst = workloads::uniform_two_choice(n, d, per_round, 25, seed);
        let plan = Arc::new(FaultPlan::empty(n));
        for s in all_strategies() {
            let mut plain = s.build(n, d);
            let baseline = run_fixed(plain.as_mut(), &inst);
            let mut under_plan = s.build(n, d);
            let faulty = run_fixed_faulty(under_plan.as_mut(), &inst, &plan);
            prop_assert_eq!(
                &baseline, &faulty,
                "{}: the empty fault plan perturbed the run", s.name()
            );
        }
    }

    /// Guarantee 2: delta == fresh under random crash/stall plans.
    #[test]
    fn delta_fresh_parity_under_random_fault_plans(
        n in 2u32..5,
        d in 2u32..5,
        per_round in 1u32..5,
        seed in 0u64..u64::MAX,
        crash_permille in 0u32..200,
        stall_permille in 0u32..200,
    ) {
        let inst = workloads::mixed_deadlines(n, d, per_round, 25, seed);
        let cfg = ChaosConfig {
            crash_prob: f64::from(crash_permille) / 1000.0,
            mttr: 3.0,
            stall_prob: f64::from(stall_permille) / 1000.0,
            ..ChaosConfig::CALM
        };
        let plan = Arc::new(FaultPlan::random(n, 30, &cfg, seed ^ 0xDEAD));
        for kind in CONVERTED {
            for tie in DELTA_TIES {
                let (delta, fresh) = run_fixed_pair_faulty(kind, &inst, tie, &plan);
                prop_assert_eq!(
                    &delta, &fresh,
                    "{} {:?}: delta and fresh diverge under faults", kind.name(), tie
                );
            }
        }
    }

    /// Guarantee 3: no strategy beats the fault-aware optimum — ALG and OPT
    /// are judged on the same masked feasibility graph.
    #[test]
    fn no_strategy_beats_the_faulty_opt(
        n in 2u32..5,
        d in 1u32..5,
        per_round in 1u32..6,
        seed in 0u64..u64::MAX,
        crash_permille in 0u32..300,
    ) {
        let inst = workloads::uniform_two_choice(n, d, per_round, 20, seed);
        let cfg = ChaosConfig {
            crash_prob: f64::from(crash_permille) / 1000.0,
            mttr: 2.0,
            stall_prob: 0.1,
            ..ChaosConfig::CALM
        };
        let plan = Arc::new(FaultPlan::random(n, 25, &cfg, seed ^ 0xBEEF));
        for s in all_strategies() {
            let mut strategy = s.build(n, d);
            let stats = run_fixed_faulty(strategy.as_mut(), &inst, &plan);
            prop_assert!(
                stats.served <= stats.opt,
                "{}: served {} > fault-aware OPT {}", s.name(), stats.served, stats.opt
            );
            prop_assert_eq!(stats.served + stats.expired, stats.injected);
        }
    }
}

/// Pinned regression: a crash that begins mid-window. Two requests arrive in
/// round 0 with the full window `0..3` on their side; S0 goes down for
/// rounds `1..3`, so only S0@0 and S1's three slots survive. Both requests
/// must still be served (the plan is static, so no strategy parks anything
/// on a slot that is about to vanish), and delta must agree with fresh.
#[test]
fn crash_during_window_is_masked_up_front() {
    let mut b = TraceBuilder::new(3);
    b.push(0u64, 0u32, 1u32);
    b.push(0u64, 0u32, 1u32);
    let inst = Instance::new(2, 3, b.build());
    let plan = Arc::new(FaultPlan::empty(2).with_crash(ResourceId(0), Round(1), Round(3)));
    for kind in CONVERTED {
        for tie in DELTA_TIES {
            let (delta, fresh) = run_fixed_pair_faulty(kind, &inst, tie, &plan);
            assert_eq!(delta, fresh, "{} {tie:?}", kind.name());
            assert_eq!(
                delta.served,
                2,
                "{} {tie:?}: a surviving slot was wasted",
                kind.name()
            );
        }
    }
}

/// Pinned regression: a one-round crash with recovery in the very next
/// round. The single-alternative request cannot use S0 in its arrival round
/// but must be served right after recovery instead of being dropped.
#[test]
fn crash_then_recover_next_round_degrades_not_drops() {
    let mut b = TraceBuilder::new(2);
    b.push_single(0u64, 0u32);
    let inst = Instance::new(1, 2, b.build());
    let plan = Arc::new(FaultPlan::empty(1).with_crash(ResourceId(0), Round(0), Round(1)));
    for kind in CONVERTED {
        for tie in DELTA_TIES {
            let (delta, fresh) = run_fixed_pair_faulty(kind, &inst, tie, &plan);
            assert_eq!(delta, fresh, "{} {tie:?}", kind.name());
            assert_eq!(
                delta.served,
                1,
                "{} {tie:?}: request not served after same-window recovery",
                kind.name()
            );
            assert_eq!(delta.assignment[0], Some((0, 1)), "{} {tie:?}", kind.name());
        }
    }
}

/// The engine's plan validation is strategy-independent: a scheduler that
/// ignores the installed plan and serves on a crashed slot panics the run.
#[test]
#[should_panic(expected = "crashed or stalled")]
fn engine_rejects_service_on_crashed_slot() {
    use reqsched_core::{OnlineScheduler, Service};
    use reqsched_model::Request;

    /// Serves every arrival on its first alternative immediately, plan or
    /// no plan (deliberately fault-oblivious).
    struct Oblivious;
    impl OnlineScheduler for Oblivious {
        fn name(&self) -> &str {
            "oblivious"
        }
        fn on_round(&mut self, _round: Round, arrivals: &[Request]) -> Vec<Service> {
            arrivals
                .iter()
                .map(|r| Service {
                    request: r.id,
                    resource: r.alternatives.as_slice()[0],
                })
                .collect()
        }
    }

    let mut b = TraceBuilder::new(2);
    b.push_single(0u64, 0u32);
    let inst = Instance::new(1, 2, b.build());
    let plan = Arc::new(FaultPlan::empty(1).with_crash(ResourceId(0), Round(0), Round(1)));
    let mut s = Oblivious;
    let mut source = reqsched_model::TraceSource::borrowed(&inst.trace);
    let _ = reqsched_sim::run_source_faulty(&mut s, &mut source, 1, 2, &plan);
}
