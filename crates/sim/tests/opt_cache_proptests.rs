//! Property-based checks that the OPT cache is transparent: sweeps through
//! a shared [`OptCache`] produce exactly the statistics of fresh,
//! uncached runs, under any mix of shared/duplicated instances and
//! concurrent callers.

use proptest::prelude::*;
use reqsched_core::{StrategyKind, TieBreak};
use reqsched_model::Instance;
use reqsched_sim::{par_run, par_run_with_cache, Job, OptCache};
use std::sync::Arc;

/// A small random instance drawn from the uniform two-choice generator.
fn small_instance() -> impl Strategy<Value = Arc<Instance>> {
    (2u32..=5, 2u32..=4, 1u32..=4, 5u64..=20, 0u64..1000).prop_map(|(n, d, rate, rounds, seed)| {
        Arc::new(reqsched_workloads::uniform_two_choice(
            n, d, rate, rounds, seed,
        ))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cached_opt_equals_fresh_opt(insts in proptest::collection::vec(small_instance(), 1..5)) {
        let cache = OptCache::new();
        for inst in &insts {
            let fresh = reqsched_offline::optimal_count(inst);
            prop_assert_eq!(cache.opt_for(inst), fresh);
            // Second lookup replays the same value without resolving.
            prop_assert_eq!(cache.opt_for(inst), fresh);
            // A content-equal copy in a different allocation also replays.
            let copy = Arc::new(Instance::clone(inst));
            prop_assert_eq!(cache.opt_for(&copy), fresh);
        }
        prop_assert!(cache.misses() <= insts.len(), "at most one solve per distinct instance");
    }

    #[test]
    fn concurrent_cached_sweeps_match_serial(
        inst in small_instance(),
        n_jobs in 2usize..6,
    ) {
        let jobs: Vec<Job> = (0..n_jobs)
            .map(|s| {
                Job::new(
                    format!("job{s}"),
                    Arc::clone(&inst),
                    StrategyKind::GLOBAL[s % StrategyKind::GLOBAL.len()],
                    TieBreak::Random(s as u64),
                )
            })
            .collect();
        let serial = par_run(&jobs);
        let cache = OptCache::new();
        let (a, b) = std::thread::scope(|scope| {
            let ha = scope.spawn(|| par_run_with_cache(&jobs, &cache));
            let hb = scope.spawn(|| par_run_with_cache(&jobs, &cache));
            (ha.join().unwrap(), hb.join().unwrap())
        });
        for out in [&a, &b] {
            prop_assert_eq!(out.len(), serial.len());
            for (x, y) in out.iter().zip(&serial) {
                prop_assert_eq!(&x.stats, &y.stats, "cache changed run statistics");
            }
        }
        prop_assert_eq!(cache.misses(), 1, "one shared instance, one solve across racing sweeps");
    }
}
