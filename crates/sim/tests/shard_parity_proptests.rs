//! Sharded-engine parity gates: running a strategy over a resource
//! partition (any shard count, any partitioner, any thread count) must be
//! **behaviourally invisible** — whole-[`RunStats`] equality with the
//! unsharded strategy, bit for bit: served/expired totals, the per-round
//! served curve, and the complete final assignment.
//!
//! Four families of twins:
//!
//! 1. **Sharded vs. unsharded** — every ported strategy over the theorem-2
//!    adversarial constructions (2.1–2.6, with 2.6's adaptive trace
//!    captured and replayed), every workload generator (including the
//!    clustered/rotating ones built to stress the partitioners), across
//!    hash / range / pair-affinity partitions and shard counts.
//! 2. **Random fault plans** — the same twins under crash/stall chaos;
//!    each shard group receives the plan's projection onto its resources,
//!    pins its local clock to the global one, and the unsharded reference
//!    must still be reproduced exactly. This also pins the asymmetric
//!    solve-mode case: `A_current`'s fault fallback fires per group on its
//!    *sub*-plan, so clean groups keep their delta engine while the
//!    unsharded reference (whose global plan has faults) runs fresh —
//!    delta and fresh agree on fault-free components, so stats still match.
//! 3. **Thread-count independence** — the unsharded reference is literally
//!    a single-threaded run, so sharded == unsharded *is* the
//!    "1 thread vs. many" witness; repeated sharded runs must also be
//!    byte-identical to each other regardless of Rayon's scheduling. (The
//!    dev containers vendor a sequential Rayon stub, where this trivially
//!    holds; under real Rayon the same assertions exercise the pool.)
//! 4. **Pinned regressions** — deterministic handoff corner cases checked
//!    in as plain `#[test]`s (the vendored proptest stub generates but
//!    does not shrink or persist, so pins live in code).

use proptest::prelude::*;
use reqsched_adversary::{thm21, thm22, thm23, thm24, thm25, thm26};
use reqsched_core::{OnlineScheduler, ShardMap, SolveMode, StrategyKind, TieBreak};
use reqsched_faults::{ChaosConfig, FaultPlan};
use reqsched_model::{Alternatives, Hint, Instance, ResourceId, Round, TraceBuilder};
use reqsched_sim::{
    run_fixed_faulty, run_fixed_faulty_sharded, run_fixed_pair_faulty_sharded,
    run_fixed_pair_sharded, AnyStrategy, ShardedScheduler,
};
use reqsched_workloads as workloads;
use std::sync::Arc;

/// Every strategy with a sharded port (the matching-based set; EDF stays
/// on the unsharded path).
const PORTED: [StrategyKind; 6] = [
    StrategyKind::AFix,
    StrategyKind::ACurrent,
    StrategyKind::AFixBalance,
    StrategyKind::AEager,
    StrategyKind::ABalance,
    StrategyKind::LazyMax,
];

const TIES: [TieBreak; 3] = [
    TieBreak::FirstFit,
    TieBreak::LatestFit,
    TieBreak::HintGuided,
];

fn maps_for(inst: &Instance) -> Vec<ShardMap> {
    let n = inst.n_resources;
    let mut maps = vec![ShardMap::hash(n, 2), ShardMap::range(n, 3)];
    if n >= 4 {
        maps.push(ShardMap::pair_affinity(n, 4, &inst.trace));
    }
    maps
}

/// Whole-`RunStats` sharded == unsharded for every ported strategy, both
/// solve modes, across partitions of `inst`.
fn assert_shard_parity(inst: &Instance, label: &str) {
    for map in maps_for(inst) {
        for kind in PORTED {
            for tie in TIES {
                for mode in [SolveMode::Delta, SolveMode::Fresh] {
                    let (sharded, plain) =
                        run_fixed_pair_sharded(kind, inst, tie, mode, map.clone());
                    assert_eq!(
                        sharded,
                        plain,
                        "{label}: {} {tie:?} {mode:?} S={}: sharded diverges from unsharded",
                        kind.name(),
                        map.shards()
                    );
                }
            }
        }
    }
}

/// Every theorem-2 adversarial construction, including 2.6's adaptive
/// trace captured against a probe strategy and replayed as a fixed
/// instance.
#[test]
fn shard_parity_on_theorem_scenarios() {
    let scenarios = [
        thm21::scenario(4, 4),
        thm22::scenario(3, 2, 3),
        thm23::scenario(4, 4),
        thm24::scenario(6, 4),
        thm25::scenario(2, 3, 3),
    ];
    for sc in scenarios {
        assert_shard_parity(&sc.instance, &sc.name);
    }

    let d = 6;
    let mut adv = thm26::Thm26Adversary::new(d, 3);
    let mut probe = AnyStrategy::Global(StrategyKind::ABalance, TieBreak::FirstFit)
        .build(thm26::N_RESOURCES, d);
    let (_, trace) =
        reqsched_sim::run_source_traced(probe.as_mut(), &mut adv, thm26::N_RESOURCES, d);
    let inst = Instance::new(thm26::N_RESOURCES, d, trace);
    assert_shard_parity(&inst, "thm2.6 (captured adaptive trace)");
}

/// Every workload generator, including the cluster-structured ones the
/// partitioners are built for.
#[test]
fn shard_parity_on_every_workload_generator() {
    let insts = [
        ("uniform", workloads::uniform_two_choice(6, 4, 5, 40, 31)),
        ("zipf", workloads::zipf_replicated(6, 3, 30, 1.3, 8, 40, 32)),
        ("flash", workloads::flash_crowd(6, 4, 3, 12, 10, 8, 40, 33)),
        ("c_choice", workloads::c_choice(7, 3, 3, 6, 40, 34)),
        ("mixed", workloads::mixed_deadlines(5, 5, 4, 40, 35)),
        ("single", workloads::single_alternative(4, 3, 5, 40, 36)),
        (
            "clustered",
            workloads::clustered_two_choice(8, 3, 4, 6, 40, 37),
        ),
        ("rotating", workloads::rotating_flash(8, 3, 4, 5, 4, 40, 38)),
    ];
    for (label, inst) in &insts {
        assert_shard_parity(inst, label);
    }
}

/// The `Random` tie-break collapses the partition to one never-skipping
/// group; stats must still equal the unsharded run exactly.
#[test]
fn shard_parity_with_random_tiebreak() {
    let inst = workloads::uniform_two_choice(6, 3, 5, 30, 39);
    for seed in [0u64, 7, 41] {
        for shards in [2u32, 4] {
            let (sharded, plain) = run_fixed_pair_sharded(
                StrategyKind::AEager,
                &inst,
                TieBreak::Random(seed),
                SolveMode::Delta,
                ShardMap::hash(6, shards),
            );
            assert_eq!(sharded, plain, "Random({seed}) S={shards}");
        }
    }
}

/// Thread-count independence: the unsharded reference runs on exactly one
/// thread, so the pair equality is the "1 vs. many" witness; repeated
/// sharded runs must also agree with each other byte for byte no matter
/// how Rayon schedules the per-group solves.
#[test]
fn sharded_stats_are_thread_count_independent() {
    let inst = workloads::clustered_two_choice(8, 4, 4, 6, 35, 40);
    let map = ShardMap::pair_affinity(8, 4, &inst.trace);
    let (first, plain) = run_fixed_pair_sharded(
        StrategyKind::ABalance,
        &inst,
        TieBreak::FirstFit,
        SolveMode::Delta,
        map.clone(),
    );
    assert_eq!(first, plain, "sharded (pooled) != unsharded (1 thread)");
    for _ in 0..3 {
        let (again, _) = run_fixed_pair_sharded(
            StrategyKind::ABalance,
            &inst,
            TieBreak::FirstFit,
            SolveMode::Delta,
            map.clone(),
        );
        assert_eq!(first, again, "repeated sharded runs diverged");
    }
}

/// Random fault plans: sharded == unsharded (per-group sub-plans vs. the
/// global plan), and sharded delta == sharded fresh, for every ported
/// strategy. The unsharded side fills the offline optimum; the sharded
/// runners don't, so the comparison patches it in.
fn assert_faulty_shard_parity(inst: &Instance, plan: &Arc<FaultPlan>, label: &str) {
    for map in maps_for(inst) {
        for kind in PORTED {
            let mut sh = run_fixed_faulty_sharded(
                kind,
                inst,
                TieBreak::FirstFit,
                SolveMode::Delta,
                map.clone(),
                plan,
            );
            let pl = run_fixed_faulty(
                reqsched_core::build_strategy(kind, inst.n_resources, inst.d, TieBreak::FirstFit)
                    .as_mut(),
                inst,
                plan,
            );
            assert_eq!(sh.opt, 0, "sharded runners leave opt unfilled");
            sh.opt = pl.opt;
            sh.opt_prefix = pl.opt_prefix.clone();
            assert_eq!(
                sh,
                pl,
                "{label}: {} S={}: sharded diverges under faults",
                kind.name(),
                map.shards()
            );
            let (delta, fresh) =
                run_fixed_pair_faulty_sharded(kind, inst, TieBreak::FirstFit, map.clone(), plan);
            assert_eq!(
                delta,
                fresh,
                "{label}: {} S={}: sharded delta/fresh diverge under faults",
                kind.name(),
                map.shards()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Sharded == unsharded on random uniform traces across shard counts
    /// and partitioners.
    #[test]
    fn shard_parity_on_random_traces(
        n in 2u32..8,
        d in 1u32..6,
        per_round in 1u32..6,
        seed in 0u64..u64::MAX,
        shards in 2u32..6,
    ) {
        let inst = workloads::uniform_two_choice(n, d, per_round, 25, seed);
        let map = match seed % 3 {
            0 => ShardMap::hash(n, shards),
            1 => ShardMap::range(n, shards),
            _ => ShardMap::pair_affinity(n, shards, &inst.trace),
        };
        for kind in PORTED {
            for tie in [TieBreak::FirstFit, TieBreak::LatestFit] {
                let (sharded, plain) =
                    run_fixed_pair_sharded(kind, &inst, tie, SolveMode::Delta, map.clone());
                prop_assert_eq!(
                    &sharded, &plain,
                    "{} {:?} S={}: sharded diverges", kind.name(), tie, shards
                );
            }
        }
    }

    /// Sharded == unsharded under random crash/stall plans, over the
    /// generators with cluster structure (straddlers and fusions happen)
    /// and without.
    #[test]
    fn shard_parity_under_random_fault_plans(
        n in 4u32..8,
        d in 2u32..5,
        per_round in 1u32..5,
        seed in 0u64..u64::MAX,
        crash_permille in 0u32..250,
    ) {
        let insts = [
            workloads::uniform_two_choice(n, d, per_round, 25, seed),
            workloads::clustered_two_choice(n, d, 2, per_round, 25, seed),
            workloads::rotating_flash(n, d, 2, 4, per_round, 25, seed),
        ];
        let cfg = ChaosConfig {
            crash_prob: f64::from(crash_permille) / 1000.0,
            mttr: 3.0,
            stall_prob: 0.1,
            ..ChaosConfig::CALM
        };
        for inst in &insts {
            let plan = Arc::new(FaultPlan::random(inst.n_resources, 30, &cfg, seed ^ 0x5A4D));
            assert_faulty_shard_parity(inst, &plan, "random faulty trace");
        }
    }
}

// ---------------------------------------------------------------------------
// Pinned handoff corner cases (deterministic; the stub proptest does not
// shrink or persist, so regressions are pinned in code).
// ---------------------------------------------------------------------------

/// A single 3-alternative request spanning three groups triggers two
/// fusions while routing one arrival; the fused group must replay both
/// halves' histories and keep serving exactly like the unsharded run.
#[test]
fn pinned_triple_fusion_from_one_request() {
    let mut b = TraceBuilder::new(3);
    b.push(0u64, 0u32, 1u32);
    b.push(0u64, 2u32, 3u32);
    b.push(1u64, 4u32, 5u32);
    b.push_full(
        Round(2),
        Alternatives::new(&[ResourceId(0), ResourceId(2), ResourceId(4)]),
        3,
        0,
        Hint::default(),
    );
    b.push(3u64, 1u32, 5u32);
    let inst = Instance::new(6, 3, b.build());
    let map = ShardMap::range(6, 3);
    let mut probe = ShardedScheduler::new(
        StrategyKind::ABalance,
        3,
        TieBreak::FirstFit,
        SolveMode::Delta,
        map.clone(),
    );
    let horizon = inst.trace.service_horizon().get();
    for r in 0..horizon {
        probe.on_round(Round(r), inst.trace.arrivals_at(Round(r)));
    }
    assert_eq!(probe.straddlers(), 1);
    assert_eq!(probe.fusions(), 2);
    assert_eq!(probe.groups_alive(), 1);
    assert_shard_parity(&inst, "pinned triple fusion");
}

/// A straddler welds a crash-faulted group (clock pinned to global time)
/// to a clean, skipping group: the fused group inherits `never_skip` and
/// the replay must bridge the clean half's compressed idle gap.
#[test]
fn pinned_fusion_of_faulted_and_idle_groups() {
    let mut b = TraceBuilder::new(2);
    b.push(0u64, 0u32, 1u32); // faulted side
    b.push(0u64, 2u32, 3u32); // clean side, then idle rounds 2..6
    b.push(6u64, 1u32, 2u32); // straddler after the gap
    b.push(7u64, 0u32, 3u32);
    let inst = Instance::new(4, 2, b.build());
    let plan = Arc::new(FaultPlan::empty(4).with_crash(ResourceId(0), Round(0), Round(3)));
    assert_faulty_shard_parity(&inst, &plan, "pinned faulted+idle fusion");
}

/// Both halves served work before fusing: the replay must reproduce every
/// recorded service batch of both halves, across an idle gap on each side.
#[test]
fn pinned_fusion_replays_both_service_histories() {
    let mut b = TraceBuilder::new(2);
    for r in [0u64, 1, 4] {
        b.push(r, 0u32, 1u32);
        b.push(r, 2u32, 3u32);
    }
    b.push(6u64, 1u32, 2u32); // straddler
    let inst = Instance::new(4, 2, b.build());
    assert_shard_parity(&inst, "pinned double-history fusion");
}
