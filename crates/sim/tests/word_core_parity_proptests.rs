//! Word-parallel-core parity gates: the SoA request arena, the u64 bitset
//! adjacency masks, and the EDF bucket ring must be behaviourally invisible.
//!
//! Three families of twins are pinned at full-[`RunStats`] granularity
//! (served/expired totals, the optimum, the per-round served curve, and the
//! complete final assignment — bit-for-bit equality):
//!
//! 1. **Delta vs. fresh on the word core** — the delta engine's bitset
//!    alive/retired columns against a from-scratch window rebuild every
//!    round, across the theorem-2 adversarial constructions (2.1–2.6,
//!    with 2.6's adaptive trace captured and replayed), every workload
//!    generator, and random [`FaultPlan`]s. When the `audit` feature is
//!    armed (CI's chaos leg arms it workspace-wide) the engine replays
//!    the invariant auditor at every round boundary of these runs too.
//! 2. **EDF bucket ring vs. binary heaps** — [`EdfTwoChoice`] (BitMatrix
//!    occupancy, masked `trailing_zeros` scans, wholesale expiry purges)
//!    against the pre-ring heap round loop kept here verbatim, both copy
//!    modes, with and without random fault plans.
//! 3. **Pinned regressions** — shrunk instances checked in as plain
//!    `#[test]`s (the vendored proptest stub generates but does not
//!    shrink or persist, so pins live in code, not in `proptest-regressions`).

use proptest::prelude::*;
use reqsched_adversary::{thm21, thm22, thm23, thm24, thm25, thm26};
use reqsched_core::{EdfTwoChoice, OnlineScheduler, Service, StrategyKind, TieBreak};
use reqsched_faults::{ChaosConfig, FaultPlan};
use reqsched_model::{Instance, Request, RequestId, ResourceId, Round, TraceBuilder};
use reqsched_sim::{
    run_fixed, run_fixed_faulty, run_fixed_pair, run_fixed_pair_faulty, AnyStrategy,
};
use reqsched_workloads as workloads;
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};
use std::sync::Arc;

/// Strategies with a delta path (mirrors `delta_parity_proptests.rs`).
const CONVERTED: [StrategyKind; 5] = [
    StrategyKind::ACurrent,
    StrategyKind::AFixBalance,
    StrategyKind::AEager,
    StrategyKind::ABalance,
    StrategyKind::LazyMax,
];

const DELTA_TIES: [TieBreak; 2] = [TieBreak::FirstFit, TieBreak::LatestFit];

fn assert_pair_parity(inst: &Instance, label: &str) {
    for kind in CONVERTED {
        for tie in DELTA_TIES {
            let (delta, fresh) = run_fixed_pair(kind, inst, tie);
            assert_eq!(
                delta,
                fresh,
                "{label}: {} {tie:?}: delta and fresh diverge on the word core",
                kind.name()
            );
        }
    }
}

/// The pre-ring EDF round loop over plain binary heaps, fault-aware —
/// the behavioural twin the bucket ring is pinned against. Reports the
/// same strategy names as [`EdfTwoChoice`] so whole-`RunStats` equality
/// (which includes the name) is exact.
struct HeapEdf {
    queues: Vec<BinaryHeap<Reverse<(Round, RequestId)>>>,
    served: BTreeSet<RequestId>,
    cancel_sibling: bool,
    faults: Option<Arc<FaultPlan>>,
}

impl HeapEdf {
    fn new(n: u32, cancel_sibling: bool) -> HeapEdf {
        HeapEdf {
            queues: (0..n).map(|_| BinaryHeap::new()).collect(),
            served: BTreeSet::new(),
            cancel_sibling,
            faults: None,
        }
    }
}

impl OnlineScheduler for HeapEdf {
    fn name(&self) -> &str {
        if self.cancel_sibling {
            "EDF-cancel"
        } else {
            "EDF"
        }
    }

    fn set_fault_plan(&mut self, plan: Arc<FaultPlan>) {
        self.faults = Some(plan);
    }

    fn on_round(&mut self, round: Round, arrivals: &[Request]) -> Vec<Service> {
        for req in arrivals {
            for &alt in req.alternatives.as_slice() {
                self.queues[alt.index()].push(Reverse((req.expiry(), req.id)));
            }
        }
        let mut out = Vec::new();
        for (i, q) in self.queues.iter_mut().enumerate() {
            let usable = match &self.faults {
                Some(plan) => plan.slot_usable(ResourceId(i as u32), round),
                None => true,
            };
            if !usable {
                continue;
            }
            while let Some(&Reverse((expiry, id))) = q.peek() {
                if expiry < round {
                    q.pop();
                    continue;
                }
                if self.served.contains(&id) {
                    q.pop();
                    if self.cancel_sibling {
                        continue;
                    }
                    break;
                }
                q.pop();
                self.served.insert(id);
                out.push(Service {
                    resource: ResourceId(i as u32),
                    request: id,
                });
                break;
            }
        }
        out
    }
}

fn assert_edf_parity(inst: &Instance, plan: Option<&Arc<FaultPlan>>, label: &str) {
    for cancel in [false, true] {
        let mut heap = HeapEdf::new(inst.n_resources, cancel);
        let mut ring = EdfTwoChoice::new(inst.n_resources, cancel);
        let (heap_stats, ring_stats) = match plan {
            Some(p) => (
                run_fixed_faulty(&mut heap, inst, p),
                run_fixed_faulty(&mut ring, inst, p),
            ),
            None => (run_fixed(&mut heap, inst), run_fixed(&mut ring, inst)),
        };
        assert_eq!(
            heap_stats, ring_stats,
            "{label}: EDF bucket ring (cancel={cancel}) diverges from the heap loop"
        );
    }
}

/// Theorems 2.1–2.5 are fixed constructions; 2.6 is adaptive, so its trace
/// is captured from a live adversary run and replayed as a fixed instance.
#[test]
fn parity_on_all_theorem2_constructions() {
    let scenarios = [
        thm21::scenario(4, 4),
        thm22::scenario(3, 2, 3),
        thm23::scenario(4, 4),
        thm24::scenario(6, 4),
        thm25::scenario(2, 3, 3),
    ];
    for sc in scenarios {
        assert_pair_parity(&sc.instance, &sc.name);
    }

    let d = 6;
    let mut adv = thm26::Thm26Adversary::new(d, 3);
    let mut probe = AnyStrategy::Global(StrategyKind::ABalance, TieBreak::FirstFit)
        .build(thm26::N_RESOURCES, d);
    let (_, trace) =
        reqsched_sim::run_source_traced(probe.as_mut(), &mut adv, thm26::N_RESOURCES, d);
    let inst = Instance::new(thm26::N_RESOURCES, d, trace);
    assert_pair_parity(&inst, "thm2.6 (captured adaptive trace)");
}

/// Every workload generator, pair parity and ring parity on each.
#[test]
fn parity_on_every_workload_generator() {
    let insts = [
        ("uniform", workloads::uniform_two_choice(6, 4, 5, 40, 21)),
        ("zipf", workloads::zipf_replicated(6, 3, 30, 1.3, 8, 40, 22)),
        ("flash", workloads::flash_crowd(6, 4, 3, 12, 10, 8, 40, 23)),
        ("c_choice", workloads::c_choice(7, 3, 3, 6, 40, 24)),
        ("mixed", workloads::mixed_deadlines(5, 5, 4, 40, 25)),
        ("single", workloads::single_alternative(4, 3, 5, 40, 26)),
    ];
    for (label, inst) in &insts {
        assert_pair_parity(inst, label);
        assert_edf_parity(inst, None, label);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// EDF ring == heap loop on random traces, fault-free. Deadlines up to
    /// 90 force the ring past its initial 64-bucket word (growth on path).
    #[test]
    fn edf_ring_matches_heap_on_random_traces(
        n in 2u32..6,
        d in 1u32..90,
        per_round in 1u32..6,
        seed in 0u64..u64::MAX,
    ) {
        let inst = workloads::mixed_deadlines(n, d, per_round, 30, seed);
        assert_edf_parity(&inst, None, "random mixed-deadline trace");
    }

    /// EDF ring == heap loop under random crash/stall plans: crashed slots
    /// leave the queues intact in both implementations, so recovery rounds
    /// must drain identically.
    #[test]
    fn edf_ring_matches_heap_under_random_fault_plans(
        n in 2u32..5,
        d in 2u32..70,
        per_round in 1u32..5,
        seed in 0u64..u64::MAX,
        crash_permille in 0u32..250,
    ) {
        let inst = workloads::uniform_two_choice(n, d, per_round, 25, seed);
        let cfg = ChaosConfig {
            crash_prob: f64::from(crash_permille) / 1000.0,
            mttr: 3.0,
            stall_prob: 0.1,
            ..ChaosConfig::CALM
        };
        let plan = Arc::new(FaultPlan::random(n, 30, &cfg, seed ^ 0xF00D));
        assert_edf_parity(&inst, Some(&plan), "random faulty trace");
    }

    /// Delta == fresh on the word core under random fault plans, across
    /// generators beyond the uniform one `fault_proptests.rs` sweeps.
    #[test]
    fn word_core_pair_parity_under_faults_across_generators(
        n in 2u32..5,
        d in 2u32..5,
        per_round in 1u32..5,
        seed in 0u64..u64::MAX,
        crash_permille in 0u32..200,
    ) {
        let insts = [
            workloads::zipf_replicated(n, d, 20, 1.3, per_round, 25, seed),
            workloads::flash_crowd(n, d, 2, per_round + 4, 8, u64::from(per_round), 25, seed),
            workloads::c_choice(n.max(3), d, 3, per_round, 25, seed),
        ];
        let cfg = ChaosConfig {
            crash_prob: f64::from(crash_permille) / 1000.0,
            mttr: 2.0,
            stall_prob: 0.15,
            ..ChaosConfig::CALM
        };
        for inst in &insts {
            let plan = Arc::new(FaultPlan::random(inst.n_resources, 30, &cfg, seed ^ 0xA11E));
            for kind in CONVERTED {
                for tie in DELTA_TIES {
                    let (delta, fresh) = run_fixed_pair_faulty(kind, inst, tie, &plan);
                    prop_assert_eq!(
                        &delta, &fresh,
                        "{} {:?}: word-core delta/fresh diverge under faults",
                        kind.name(), tie
                    );
                }
            }
        }
    }
}

/// Pinned regression: ring growth across a crash. A long-deadline request
/// (d = 80, beyond the ring's initial 64 buckets) arrives just before its
/// only resource crashes; the ring must keep the copy queued through the
/// rebuild that growth triggers and serve it on recovery, exactly like the
/// heap. Distilled from `edf_ring_matches_heap_under_random_fault_plans`
/// inputs while the ring's `advance_to` purge raced its `ensure` rebuild.
#[test]
fn pinned_ring_growth_across_crash() {
    let mut b = TraceBuilder::new(80);
    b.push_single(0u64, 0u32); // long window on S0
    b.push_single(0u64, 1u32); // sibling load on S1
    for t in 1..70u64 {
        b.push_single(t, 1u32); // keep S1 busy while S0 is down
    }
    let inst = Instance::new(2, 80, b.build());
    let plan = Arc::new(
        FaultPlan::empty(2)
            .with_crash(ResourceId(0), Round(1), Round(66))
            .with_stall(ResourceId(1), Round(5)),
    );
    assert_edf_parity(&inst, Some(&plan), "pinned ring growth across crash");
}

/// Pinned regression: same-bucket id ordering. Three requests with the same
/// expiry land in one bucket out of id order (later arrivals push smaller
/// alternatives first); the ring's sorted within-bucket insert must replay
/// the heap's `(expiry, id)` order, not arrival order.
#[test]
fn pinned_same_bucket_id_order() {
    let mut b = TraceBuilder::new(3);
    // All three expire at round 2; pushed 0, 1, 2 — served in id order.
    b.push_single(0u64, 0u32);
    b.push_single(0u64, 0u32);
    b.push_single(0u64, 0u32);
    let inst = Instance::new(1, 3, b.build());
    assert_edf_parity(&inst, None, "pinned same-bucket id order");
}

/// Pinned regression: a stall on the very round a duplicate copy surfaces.
/// In independent-copy mode the burnt slot must not be double-counted when
/// the stalled resource resumes — both implementations must agree on the
/// full per-round curve, not just totals.
#[test]
fn pinned_stall_on_duplicate_surface() {
    let mut b = TraceBuilder::new(2);
    b.push(0u64, 0u32, 1u32);
    b.push(0u64, 0u32, 1u32);
    let inst = Instance::new(2, 2, b.build());
    let plan = Arc::new(FaultPlan::empty(2).with_stall(ResourceId(1), Round(0)));
    assert_edf_parity(&inst, Some(&plan), "pinned stall on duplicate surface");
}
