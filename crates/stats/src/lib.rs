//! # reqsched-stats
//!
//! Aggregation and rendering for the experiment harness: summary statistics
//! with confidence intervals, ASCII tables (the `table1` binary's output
//! format), and CSV export for the ratio-curve "figures".

mod summary;
mod table;
mod timeline;

pub use summary::Summary;
pub use table::{render_csv, Table};
pub use timeline::render_timeline;
