//! Summary statistics over repeated measurements.

use serde::{Deserialize, Serialize};

/// Mean / spread summary of a sample of `f64` measurements.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected; 0 for n < 2).
    pub sd: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Half-width of the normal-approximation 95% confidence interval for
    /// the mean (`1.96 · sd / √n`; 0 for n < 2).
    pub ci95: f64,
}

impl Summary {
    /// Summarize a sample. Returns a degenerate all-NaN summary for an
    /// empty slice (so harness code can render "n/a" rather than panic).
    pub fn of(xs: &[f64]) -> Summary {
        let n = xs.len();
        if n == 0 {
            return Summary {
                n: 0,
                mean: f64::NAN,
                sd: f64::NAN,
                min: f64::NAN,
                max: f64::NAN,
                ci95: f64::NAN,
            };
        }
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = if n >= 2 {
            xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0)
        } else {
            0.0
        };
        let sd = var.sqrt();
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let ci95 = if n >= 2 {
            1.96 * sd / (n as f64).sqrt()
        } else {
            0.0
        };
        Summary {
            n,
            mean,
            sd,
            min,
            max,
            ci95,
        }
    }

    /// `"mean ± ci95"` with the given precision.
    pub fn display(&self, precision: usize) -> String {
        if self.n == 0 {
            return "n/a".to_string();
        }
        format!("{:.p$} ± {:.p$}", self.mean, self.ci95, p = precision)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.min - 1.0).abs() < 1e-12);
        assert!((s.max - 4.0).abs() < 1e-12);
        // sd of {1,2,3,4} = sqrt(5/3)
        assert!((s.sd - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!(s.ci95 > 0.0);
    }

    #[test]
    fn singleton_has_zero_spread() {
        let s = Summary::of(&[7.5]);
        assert_eq!(s.n, 1);
        assert_eq!(s.sd, 0.0);
        assert_eq!(s.ci95, 0.0);
        assert_eq!(s.mean, 7.5);
    }

    #[test]
    fn empty_is_nan_not_panic() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert!(s.mean.is_nan());
        assert_eq!(s.display(3), "n/a");
    }

    #[test]
    fn display_formats() {
        let s = Summary::of(&[1.0, 1.0]);
        assert_eq!(s.display(2), "1.00 ± 0.00");
    }

    #[test]
    fn constant_sample() {
        let s = Summary::of(&[3.0; 10]);
        assert_eq!(s.sd, 0.0);
        assert_eq!(s.min, 3.0);
        assert_eq!(s.max, 3.0);
    }
}
