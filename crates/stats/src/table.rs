//! Minimal ASCII table and CSV rendering for harness output.

/// A simple column-aligned ASCII table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must match the header arity.
    pub fn row(&mut self, cells: &[String]) -> &mut Table {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience for string-slice rows.
    pub fn row_strs(&mut self, cells: &[&str]) -> &mut Table {
        let owned: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        self.row(&owned)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns, a separator under the header.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<w$}", cells[i], w = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (RFC-4180-ish: quotes cells containing commas/quotes).
    pub fn to_csv(&self) -> String {
        let mut rows = Vec::with_capacity(self.rows.len() + 1);
        rows.push(self.header.clone());
        rows.extend(self.rows.iter().cloned());
        render_csv(&rows)
    }
}

/// Render rows of cells as CSV with minimal quoting.
pub fn render_csv(rows: &[Vec<String>]) -> String {
    let quote = |s: &str| -> String {
        if s.contains(',') || s.contains('"') || s.contains('\n') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    };
    rows.iter()
        .map(|r| r.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","))
        .collect::<Vec<_>>()
        .join("\n")
        + "\n"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row_strs(&["a", "1"]).row_strs(&["longer", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[3].starts_with("longer"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row_strs(&["only-one"]);
    }

    #[test]
    fn csv_quotes_when_needed() {
        let csv = render_csv(&[
            vec!["a,b".into(), "plain".into()],
            vec!["with \"q\"".into(), "x".into()],
        ]);
        assert_eq!(csv, "\"a,b\",plain\n\"with \"\"q\"\"\",x\n");
    }

    #[test]
    fn table_to_csv_includes_header() {
        let mut t = Table::new(&["h1", "h2"]);
        t.row_strs(&["1", "2"]);
        assert_eq!(t.to_csv(), "h1,h2\n1,2\n");
    }
}
