//! ASCII schedule timelines: one row per resource, one column per round.

/// Render a schedule as an ASCII grid.
///
/// `assignment[id] = Some((resource, round))` marks request `id` served
/// there. Served slots show the request's *tag glyph* (tag mod 26 → 'a'..;
/// pass all-zero tags for a uniform '#'-style view via `glyphs = false`),
/// idle slots show '·'. Rounds `0 ..= horizon` are rendered.
pub fn render_timeline(
    n_resources: u32,
    horizon: u64,
    assignment: &[Option<(u32, u64)>],
    tags: &[u32],
    glyphs: bool,
) -> String {
    assert_eq!(assignment.len(), tags.len());
    let cols = horizon as usize + 1;
    let mut grid = vec![vec!['·'; cols]; n_resources as usize];
    for (i, slot) in assignment.iter().enumerate() {
        let Some((res, round)) = slot else { continue };
        let c = if glyphs {
            (b'a' + (tags[i] % 26) as u8) as char
        } else {
            '#'
        };
        if (*res as usize) < grid.len() && (*round as usize) < cols {
            grid[*res as usize][*round as usize] = c;
        }
    }
    let mut out = String::new();
    // Round ruler (tens digit every 10 columns).
    out.push_str("      ");
    for t in 0..cols {
        out.push(if t % 10 == 0 {
            char::from_digit(((t / 10) % 10) as u32, 10).unwrap_or('?')
        } else {
            ' '
        });
    }
    out.push('\n');
    for (i, row) in grid.iter().enumerate() {
        out.push_str(&format!("S{i:<4} "));
        out.extend(row.iter());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_grid_shape() {
        let assignment = vec![Some((0u32, 0u64)), Some((1, 2)), None];
        let tags = vec![0u32, 1, 2];
        let s = render_timeline(2, 3, &assignment, &tags, true);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3); // ruler + 2 resources
        assert!(lines[1].starts_with("S0"));
        assert!(lines[1].contains('a'));
        assert!(lines[2].contains('b'));
        // Unserved request leaves no mark; idle slots are dots.
        assert_eq!(lines[1].matches('·').count(), 3);
    }

    #[test]
    fn uniform_glyphs() {
        let assignment = vec![Some((0u32, 1u64))];
        let s = render_timeline(1, 1, &assignment, &[5], false);
        assert!(s.contains('#'));
        assert!(!s.contains('f'));
    }

    #[test]
    fn out_of_range_slots_are_ignored() {
        let assignment = vec![Some((9u32, 99u64))];
        let s = render_timeline(1, 1, &assignment, &[0], true);
        assert!(!s.contains('a'));
    }
}
